#include "cma/mutation.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "etc/instance.h"

namespace gridsched {
namespace {

EtcMatrix test_instance(int jobs = 64, int machines = 8) {
  InstanceSpec spec;
  spec.num_jobs = jobs;
  spec.num_machines = machines;
  return generate_instance(spec);
}

TEST(RebalanceMutation, MovesAJobOffTheMakespanMachine) {
  const EtcMatrix etc = test_instance();
  Rng rng(1);
  ScheduleEvaluator eval(etc);
  eval.reset(Schedule::random(etc.num_jobs(), etc.num_machines(), rng));
  for (int trial = 0; trial < 50; ++trial) {
    const double makespan_before = eval.makespan();
    std::vector<MachineId> overloaded;
    for (MachineId m = 0; m < etc.num_machines(); ++m) {
      if (eval.completion(m) >= makespan_before) overloaded.push_back(m);
    }
    const auto move = rebalance_mutation(eval, rng);
    ASSERT_GE(move.job, 0);
    // Source was an overloaded machine.
    EXPECT_TRUE(std::find(overloaded.begin(), overloaded.end(), move.from) !=
                overloaded.end());
    EXPECT_NE(move.from, move.to);
    EXPECT_EQ(eval.schedule()[move.job], move.to);
  }
}

TEST(RebalanceMutation, TargetIsInBottomQuartileOfLoads) {
  const EtcMatrix etc = test_instance(128, 16);
  Rng rng(2);
  ScheduleEvaluator eval(etc);
  eval.reset(Schedule::random(etc.num_jobs(), etc.num_machines(), rng));
  for (int trial = 0; trial < 50; ++trial) {
    // Record the 25% least-loaded machines before mutating (quartile of 16
    // machines = 4).
    std::vector<std::pair<double, MachineId>> loads;
    for (MachineId m = 0; m < 16; ++m) {
      loads.emplace_back(eval.completion(m), m);
    }
    std::sort(loads.begin(), loads.end());
    std::vector<MachineId> bottom;
    for (int i = 0; i < 4; ++i) bottom.push_back(loads[i].second);

    const auto move = rebalance_mutation(eval, rng);
    ASSERT_GE(move.job, 0);
    EXPECT_TRUE(std::find(bottom.begin(), bottom.end(), move.to) !=
                bottom.end())
        << "target " << move.to << " not in bottom quartile";
  }
}

TEST(RebalanceMutation, SingleMachineIsNoop) {
  const EtcMatrix etc = test_instance(8, 1);
  Rng rng(3);
  ScheduleEvaluator eval(etc);
  eval.reset(Schedule(8, 0));
  const auto move = rebalance_mutation(eval, rng);
  EXPECT_EQ(move.job, -1);
}

TEST(MutateMove, ChangesExactlyOneGene) {
  const EtcMatrix etc = test_instance();
  Rng rng(4);
  ScheduleEvaluator eval(etc);
  eval.reset(Schedule::random(etc.num_jobs(), etc.num_machines(), rng));
  for (int trial = 0; trial < 30; ++trial) {
    const Schedule before = eval.schedule();
    mutate(MutationKind::kMove, eval, rng);
    EXPECT_EQ(before.hamming_distance(eval.schedule()), 1);
  }
}

TEST(MutateSwap, ExchangesTwoGenes) {
  const EtcMatrix etc = test_instance();
  Rng rng(5);
  ScheduleEvaluator eval(etc);
  eval.reset(Schedule::random(etc.num_jobs(), etc.num_machines(), rng));
  for (int trial = 0; trial < 30; ++trial) {
    const Schedule before = eval.schedule();
    mutate(MutationKind::kSwap, eval, rng);
    const Schedule& after = eval.schedule();
    std::vector<JobId> changed;
    for (JobId j = 0; j < etc.num_jobs(); ++j) {
      if (before[j] != after[j]) changed.push_back(j);
    }
    // Either a genuine swap (2 jobs trading machines) or the rare
    // fallback Move (1 change).
    ASSERT_TRUE(changed.size() == 2 || changed.size() == 1);
    if (changed.size() == 2) {
      EXPECT_EQ(before[changed[0]], after[changed[1]]);
      EXPECT_EQ(before[changed[1]], after[changed[0]]);
    }
  }
}

TEST(MutateSwap, DegenerateAllOnOneMachineFallsBackToMove) {
  const EtcMatrix etc = test_instance(16, 4);
  Rng rng(6);
  ScheduleEvaluator eval(etc);
  eval.reset(Schedule(16, 2));  // every job on machine 2
  mutate(MutationKind::kSwap, eval, rng);
  Schedule all_same(16, 2);
  EXPECT_EQ(all_same.hamming_distance(eval.schedule()), 1);
}

TEST(Mutate, KeepsSchedulesCompleteAndConsistent) {
  const EtcMatrix etc = test_instance();
  Rng rng(7);
  ScheduleEvaluator eval(etc);
  eval.reset(Schedule::random(etc.num_jobs(), etc.num_machines(), rng));
  for (int trial = 0; trial < 100; ++trial) {
    const auto kind = static_cast<MutationKind>(trial % 3);
    mutate(kind, eval, rng);
    ASSERT_TRUE(eval.schedule().complete(etc.num_machines()));
  }
  eval.check_consistency();
}

TEST(Mutate, DeterministicInSeed) {
  const EtcMatrix etc = test_instance();
  Rng seed_rng(8);
  const Schedule start =
      Schedule::random(etc.num_jobs(), etc.num_machines(), seed_rng);
  ScheduleEvaluator e1(etc);
  ScheduleEvaluator e2(etc);
  e1.reset(start);
  e2.reset(start);
  Rng r1(99);
  Rng r2(99);
  for (int i = 0; i < 20; ++i) {
    mutate(MutationKind::kRebalance, e1, r1);
    mutate(MutationKind::kRebalance, e2, r2);
    ASSERT_EQ(e1.schedule(), e2.schedule());
  }
}

TEST(Mutate, ScratchBuffersDoNotChangeResults) {
  // The scratch-reusing path is a pure allocation optimization: with the
  // same seed it must walk the exact same sequence of schedules as the
  // allocating path, for every operator.
  const EtcMatrix etc = test_instance();
  Rng seed_rng(12);
  const Schedule start =
      Schedule::random(etc.num_jobs(), etc.num_machines(), seed_rng);
  ScheduleEvaluator bare(etc);
  ScheduleEvaluator reused(etc);
  bare.reset(start);
  reused.reset(start);
  Rng r1(314);
  Rng r2(314);
  MutationScratch scratch;
  for (int i = 0; i < 60; ++i) {
    const auto kind = static_cast<MutationKind>(i % 3);
    mutate(kind, bare, r1);
    mutate(kind, reused, r2, &scratch);
    ASSERT_EQ(bare.schedule(), reused.schedule()) << "step " << i;
  }
  bare.canonicalize();
  reused.canonicalize();
  EXPECT_EQ(bare.makespan(), reused.makespan());
  EXPECT_EQ(bare.flowtime(), reused.flowtime());
}

TEST(Mutation, NamesAreStable) {
  EXPECT_EQ(mutation_name(MutationKind::kRebalance), "Rebalance");
  EXPECT_EQ(mutation_name(MutationKind::kMove), "Move");
  EXPECT_EQ(mutation_name(MutationKind::kSwap), "Swap");
}

}  // namespace
}  // namespace gridsched
