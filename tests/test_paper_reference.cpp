#include "etc/paper_reference.h"

#include <gtest/gtest.h>

#include "etc/instance.h"

namespace gridsched {
namespace {

TEST(PaperReference, TwelveRowsInSuiteOrder) {
  const auto& rows = paper_reference_rows();
  const auto suite = braun_benchmark_suite();
  ASSERT_EQ(rows.size(), suite.size());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(rows[i].instance, suite[i].name()) << i;
  }
}

TEST(PaperReference, LookupByLabel) {
  const auto row = paper_reference("u_c_hihi.0");
  ASSERT_TRUE(row.has_value());
  EXPECT_DOUBLE_EQ(row->braun_ga_makespan, 8050844.5);
  EXPECT_DOUBLE_EQ(row->cma_makespan, 7700929.751);
  EXPECT_FALSE(paper_reference("u_c_hihi.7").has_value());
  EXPECT_FALSE(paper_reference("nope").has_value());
}

TEST(PaperReference, AllValuesPositive) {
  for (const auto& row : paper_reference_rows()) {
    EXPECT_GT(row.braun_ga_makespan, 0.0);
    EXPECT_GT(row.cma_makespan, 0.0);
    EXPECT_GT(row.cx_ga_makespan, 0.0);
    EXPECT_GT(row.struggle_ga_makespan, 0.0);
    EXPECT_GT(row.ljfr_sjfr_flowtime, 0.0);
    EXPECT_GT(row.cma_flowtime, 0.0);
    EXPECT_GT(row.struggle_ga_flowtime, 0.0);
  }
}

TEST(PaperReference, FlowtimeDominatesMakespanInMagnitude) {
  // Section 2's motivation for using *mean* flowtime: flowtime is orders of
  // magnitude above makespan on every instance.
  for (const auto& row : paper_reference_rows()) {
    EXPECT_GT(row.cma_flowtime, 10.0 * row.cma_makespan) << row.instance;
  }
}

TEST(PaperReference, Table4ImprovementAlwaysPositive) {
  // The cMA improved the LJFR-SJFR flowtime on every instance (22-90%).
  for (const auto& row : paper_reference_rows()) {
    EXPECT_LT(row.cma_flowtime, row.ljfr_sjfr_flowtime) << row.instance;
  }
}

TEST(PaperReference, Table5CmaBeatsStruggleEverywhere) {
  for (const auto& row : paper_reference_rows()) {
    EXPECT_LT(row.cma_flowtime, row.struggle_ga_flowtime) << row.instance;
  }
}

TEST(PaperReference, Table2ConsistentInstancesFavorCma) {
  // The headline observation of Section 5.1: the cMA beats the Braun GA on
  // all consistent and semi-consistent instances.
  for (const auto& row : paper_reference_rows()) {
    const char family = row.instance[2];
    if (family == 'c' || family == 's') {
      EXPECT_LT(row.cma_makespan, row.braun_ga_makespan) << row.instance;
    }
  }
}

}  // namespace
}  // namespace gridsched
