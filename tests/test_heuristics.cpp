#include "heuristics/constructive.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "core/evaluator.h"
#include "etc/instance.h"

namespace gridsched {
namespace {

double makespan_of(const Schedule& s, const EtcMatrix& etc) {
  ScheduleEvaluator eval(etc);
  eval.reset(s);
  return eval.makespan();
}

double flowtime_of(const Schedule& s, const EtcMatrix& etc) {
  ScheduleEvaluator eval(etc);
  eval.reset(s);
  return eval.flowtime();
}

// --- Hand-verifiable micro-instances. --------------------------------------

TEST(MinMin, PicksGloballySmallestCompletionFirst) {
  //          m0   m1
  // job 0    10    9
  // job 1     4    6
  EtcMatrix etc(2, 2, {10, 9, 4, 6});
  const Schedule s = min_min(etc);
  // First commit: job1 on m0 (completion 4). Then job0: m0 would finish at
  // 14, m1 at 9 -> m1.
  EXPECT_EQ(s[1], 0);
  EXPECT_EQ(s[0], 1);
}

TEST(MinMin, BudgetHonoringFormMatchesPlainMinMinWhileTokenIsQuiet) {
  InstanceSpec spec;
  spec.num_jobs = 40;
  spec.num_machines = 6;
  spec.seed = 9;
  const EtcMatrix etc = generate_instance(spec);
  CancellationSource source;  // never fired, no deadline
  EXPECT_EQ(min_min(etc, source.token()), min_min(etc));
  EXPECT_EQ(min_min(etc, CancellationToken{}), min_min(etc));
}

TEST(MinMin, CancelledBuildStillReturnsACompleteSchedule) {
  InstanceSpec spec;
  spec.num_jobs = 40;
  spec.num_machines = 6;
  spec.seed = 9;
  const EtcMatrix etc = generate_instance(spec);
  CancellationSource source;
  source.request_cancel();
  // Pre-cancelled: zero Min-Min rounds run, the whole schedule is the MCT
  // completion pass — complete, and exactly what plain MCT produces from
  // empty loads (same id order, same earliest-completion rule).
  const Schedule cancelled = min_min(etc, source.token());
  ASSERT_TRUE(cancelled.complete(etc.num_machines()));
  EXPECT_EQ(cancelled, mct(etc));
}

TEST(Heuristics, BudgetHonoringFormsMatchPlainWhileTokenIsQuiet) {
  InstanceSpec spec;
  spec.num_jobs = 40;
  spec.num_machines = 6;
  spec.seed = 9;
  const EtcMatrix etc = generate_instance(spec);
  CancellationSource source;  // never fired, no deadline
  for (HeuristicKind kind : all_heuristics()) {
    Rng plain_rng(21);
    Rng live_rng(21);
    Rng invalid_rng(21);
    const Schedule plain = construct_schedule(kind, etc, plain_rng);
    EXPECT_EQ(construct_schedule(kind, etc, live_rng, source.token()), plain)
        << heuristic_name(kind);
    EXPECT_EQ(construct_schedule(kind, etc, invalid_rng, CancellationToken{}),
              plain)
        << heuristic_name(kind);
  }
}

TEST(Heuristics, CancelledBuildsStillReturnCompleteSchedules) {
  InstanceSpec spec;
  spec.num_jobs = 200;  // past the one-pass poll stride
  spec.num_machines = 6;
  spec.seed = 9;
  const EtcMatrix etc = generate_instance(spec);
  CancellationSource source;
  source.request_cancel();
  for (HeuristicKind kind : all_heuristics()) {
    Rng rng(22);
    const Schedule s = construct_schedule(kind, etc, rng, source.token());
    EXPECT_TRUE(s.complete(etc.num_machines())) << heuristic_name(kind);
  }
}

TEST(Heuristics, CancelledBatchHeuristicsFallBackToTheMctTail) {
  InstanceSpec spec;
  spec.num_jobs = 40;
  spec.num_machines = 6;
  spec.seed = 9;
  const EtcMatrix etc = generate_instance(spec);
  CancellationSource source;
  source.request_cancel();
  // Pre-cancelled: zero commit rounds run, so the whole schedule is the
  // MCT completion pass — exactly plain MCT from empty loads.
  EXPECT_EQ(max_min(etc, source.token()), mct(etc));
  EXPECT_EQ(sufferage(etc, source.token()), mct(etc));
}

TEST(Heuristics, CancelledOnePassHeuristicsFallBackToRoundRobin) {
  InstanceSpec spec;
  spec.num_jobs = 40;
  spec.num_machines = 6;
  spec.seed = 9;
  const EtcMatrix etc = generate_instance(spec);
  CancellationSource source;
  source.request_cancel();
  // Pre-cancelled one-pass heuristics poll before the first assignment and
  // dump everything round-robin: job j on machine j mod m.
  for (const Schedule& s :
       {mct(etc, source.token()), met(etc, source.token()),
        olb(etc, source.token())}) {
    for (JobId j = 0; j < etc.num_jobs(); ++j) {
      EXPECT_EQ(s[j], j % etc.num_machines());
    }
  }
}

TEST(MaxMin, PlacesLongJobFirst) {
  //          m0   m1
  // job 0    10    9
  // job 1     4    6
  EtcMatrix etc(2, 2, {10, 9, 4, 6});
  const Schedule s = max_min(etc);
  // Best completions: job0 -> 9 (m1), job1 -> 4 (m0). Max-min commits job0
  // to m1 first, then job1 (m0: 4 vs m1: 15) to m0.
  EXPECT_EQ(s[0], 1);
  EXPECT_EQ(s[1], 0);
}

TEST(Mct, AccountsForAccumulatedLoad) {
  //          m0   m1
  // job 0     5    6
  // job 1     5    6
  EtcMatrix etc(2, 2, {5, 6, 5, 6});
  const Schedule s = mct(etc);
  EXPECT_EQ(s[0], 0);  // m0 finishes at 5 < 6
  EXPECT_EQ(s[1], 1);  // m0 would now finish at 10 > 6
}

TEST(Met, IgnoresLoadEntirely) {
  EtcMatrix etc(3, 2, {5, 6, 5, 6, 5, 6});
  const Schedule s = met(etc);
  for (JobId j = 0; j < 3; ++j) EXPECT_EQ(s[j], 0);  // always min ETC
}

TEST(Olb, BalancesWithoutLookingAtEtc) {
  EtcMatrix etc(3, 2, {1, 100, 1, 100, 1, 100});
  const Schedule s = olb(etc);
  // j0 -> m0 (both free, lowest id). j1 -> m1 (m0 busy until 1... m1 free at
  // 0). j2 -> m0 (free at 1 < m1's 100).
  EXPECT_EQ(s[0], 0);
  EXPECT_EQ(s[1], 1);
  EXPECT_EQ(s[2], 0);
}

TEST(Sufferage, PrioritizesTheJobWithMostToLose) {
  //          m0   m1
  // job 0     1   10    (sufferage 9)
  // job 1     2   2.5   (sufferage 0.5)
  // Both prefer m0; job0 suffers more and wins it. Job1 then completes
  // earlier on the idle m1 (2.5) than behind job0 on m0 (3).
  EtcMatrix etc(2, 2, {1, 10, 2, 2.5});
  const Schedule s = sufferage(etc);
  EXPECT_EQ(s[0], 0);
  EXPECT_EQ(s[1], 1);
}

TEST(LjfrSjfr, InitialPhaseGivesLongestJobsToFastestMachines) {
  // 3 machines, 3 jobs: degenerate to pure phase 1.
  //            m0   m1   m2       mean
  // job 0       2    4    6        4     (shortest)
  // job 1       4    8   12        8
  // job 2       6   12   18       12     (longest)
  // machine speed order by column mean: m0 (4) < m1 (8) < m2 (12).
  EtcMatrix etc(3, 3, {2, 4, 6, 4, 8, 12, 6, 12, 18});
  const Schedule s = ljfr_sjfr(etc);
  EXPECT_EQ(s[2], 0);  // longest job -> fastest machine
  EXPECT_EQ(s[1], 1);
  EXPECT_EQ(s[0], 2);
}

TEST(LjfrSjfr, AlternatesShortLongAfterInitialPhase) {
  // 1 machine, 3 jobs: phase 1 assigns the longest; then SJFR (shortest)
  // then LJFR. All on machine 0 regardless; just verify completeness.
  EtcMatrix etc(3, 1, {1, 2, 3});
  const Schedule s = ljfr_sjfr(etc);
  EXPECT_TRUE(s.complete(1));
}

// --- Suite-wide properties on every benchmark class. ------------------------

std::string param_name(const ::testing::TestParamInfo<InstanceSpec>& info) {
  std::string name = info.param.name();
  std::replace(name.begin(), name.end(), '.', '_');
  return name;
}

class HeuristicSuiteTest : public ::testing::TestWithParam<InstanceSpec> {
 protected:
  static EtcMatrix instance() {
    InstanceSpec spec = HeuristicSuiteTest::GetParam();
    spec.num_jobs = 128;
    spec.num_machines = 8;
    return generate_instance(spec);
  }
};

INSTANTIATE_TEST_SUITE_P(AllTwelveClasses, HeuristicSuiteTest,
                         ::testing::ValuesIn(braun_benchmark_suite()),
                         param_name);

TEST_P(HeuristicSuiteTest, EveryHeuristicProducesACompleteSchedule) {
  const EtcMatrix etc = instance();
  Rng rng(1);
  for (HeuristicKind kind : all_heuristics()) {
    const Schedule s = construct_schedule(kind, etc, rng);
    EXPECT_EQ(s.num_jobs(), etc.num_jobs()) << heuristic_name(kind);
    EXPECT_TRUE(s.complete(etc.num_machines())) << heuristic_name(kind);
  }
}

TEST_P(HeuristicSuiteTest, MinMinBeatsRandomOnMakespan) {
  const EtcMatrix etc = instance();
  Rng rng(2);
  const double random_mk =
      makespan_of(Schedule::random(etc.num_jobs(), etc.num_machines(), rng),
                  etc);
  EXPECT_LT(makespan_of(min_min(etc), etc), random_mk);
}

TEST_P(HeuristicSuiteTest, MctBeatsOlbOrTies) {
  // MCT sees the ETC values OLB ignores; it should never be meaningfully
  // worse on makespan.
  const EtcMatrix etc = instance();
  EXPECT_LE(makespan_of(mct(etc), etc),
            makespan_of(olb(etc), etc) * 1.001);
}

TEST_P(HeuristicSuiteTest, LjfrSjfrIsDeterministic) {
  const EtcMatrix etc = instance();
  EXPECT_EQ(ljfr_sjfr(etc), ljfr_sjfr(etc));
}

TEST_P(HeuristicSuiteTest, LjfrSjfrReasonableOnBothObjectives) {
  // The seed heuristic targets both objectives; it must beat random
  // assignment on flowtime (its SJFR half) and makespan (its LJFR half).
  const EtcMatrix etc = instance();
  Rng rng(3);
  const Schedule random_s =
      Schedule::random(etc.num_jobs(), etc.num_machines(), rng);
  const Schedule s = ljfr_sjfr(etc);
  EXPECT_LT(flowtime_of(s, etc), flowtime_of(random_s, etc));
  EXPECT_LT(makespan_of(s, etc), makespan_of(random_s, etc));
}

TEST_P(HeuristicSuiteTest, HeuristicsRespectReadyTimes) {
  EtcMatrix etc = instance();
  // Make machine 0 effectively unavailable; load-aware heuristics must
  // avoid it almost entirely.
  etc.set_ready_time(0, 1e12);
  for (HeuristicKind kind :
       {HeuristicKind::kMinMin, HeuristicKind::kMct, HeuristicKind::kOlb}) {
    Rng rng(4);
    const Schedule s = construct_schedule(kind, etc, rng);
    int on_blocked = 0;
    for (JobId j = 0; j < etc.num_jobs(); ++j) {
      on_blocked += (s[j] == 0) ? 1 : 0;
    }
    EXPECT_EQ(on_blocked, 0) << heuristic_name(kind);
  }
}

TEST(Heuristics, NamesAreUniqueAndNonEmpty) {
  std::vector<std::string> names;
  for (HeuristicKind kind : all_heuristics()) {
    names.emplace_back(heuristic_name(kind));
    EXPECT_FALSE(names.back().empty());
  }
  std::sort(names.begin(), names.end());
  EXPECT_EQ(std::unique(names.begin(), names.end()), names.end());
}

TEST(Heuristics, RandomUsesRngDeterministically) {
  InstanceSpec spec;
  spec.num_jobs = 64;
  spec.num_machines = 8;
  const EtcMatrix etc = generate_instance(spec);
  Rng a(10);
  Rng b(10);
  EXPECT_EQ(construct_schedule(HeuristicKind::kRandom, etc, a),
            construct_schedule(HeuristicKind::kRandom, etc, b));
}

}  // namespace
}  // namespace gridsched
