#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "benchutil/bench_args.h"
#include "benchutil/experiment.h"
#include "benchutil/series.h"
#include "benchutil/table.h"
#include "cma/cma.h"
#include "etc/instance.h"

namespace gridsched {
namespace {

// --- TablePrinter. -----------------------------------------------------------

TEST(TablePrinter, RendersHeadersAndRows) {
  TablePrinter table({"Instance", "Makespan"});
  table.add_row({"u_c_hihi.0", "7700929.751"});
  std::ostringstream out;
  table.print(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("Instance"), std::string::npos);
  EXPECT_NE(text.find("u_c_hihi.0"), std::string::npos);
  EXPECT_NE(text.find("7700929.751"), std::string::npos);
  EXPECT_NE(text.find("+-"), std::string::npos);  // rules drawn
}

TEST(TablePrinter, ColumnsAlignToWidestCell) {
  TablePrinter table({"A", "B"});
  table.add_row({"short", "1"});
  table.add_row({"a-much-longer-cell", "2"});
  std::ostringstream out;
  table.print(out);
  std::istringstream lines(out.str());
  std::string line;
  std::size_t width = 0;
  bool first = true;
  while (std::getline(lines, line)) {
    if (first) {
      width = line.size();
      first = false;
    } else {
      EXPECT_EQ(line.size(), width);
    }
  }
}

TEST(TablePrinter, SeparatorAddsARule) {
  TablePrinter table({"X"});
  table.add_row({"1"});
  table.add_separator();
  table.add_row({"2"});
  std::ostringstream out;
  table.print(out);
  // 3 frame rules + 1 separator = 4 lines starting with "+-".
  int rules = 0;
  std::istringstream lines(out.str());
  std::string line;
  while (std::getline(lines, line)) {
    rules += (line.rfind("+-", 0) == 0) ? 1 : 0;
  }
  EXPECT_EQ(rules, 4);
}

TEST(TablePrinter, NumFormatsFixedDecimals) {
  EXPECT_EQ(TablePrinter::num(7700929.7514, 3), "7700929.751");
  EXPECT_EQ(TablePrinter::num(5.0, 2), "5.00");
}

TEST(TablePrinter, PctShowsSign) {
  EXPECT_EQ(TablePrinter::pct(4.349, 2), "+4.35");
  EXPECT_EQ(TablePrinter::pct(-0.591, 2), "-0.59");
}

// --- Series. -----------------------------------------------------------------

std::vector<ProgressPoint> make_trace() {
  std::vector<ProgressPoint> points;
  ProgressPoint p;
  p.time_ms = 0.0;
  p.best_makespan = 100.0;
  points.push_back(p);
  p.time_ms = 10.0;
  p.best_makespan = 80.0;
  points.push_back(p);
  p.time_ms = 50.0;
  p.best_makespan = 60.0;
  points.push_back(p);
  return points;
}

TEST(Series, ValueAtIsAStepFunction) {
  const auto trace = make_trace();
  EXPECT_DOUBLE_EQ(series_value_at(trace, 0.0), 100.0);
  EXPECT_DOUBLE_EQ(series_value_at(trace, 9.9), 100.0);
  EXPECT_DOUBLE_EQ(series_value_at(trace, 10.0), 80.0);
  EXPECT_DOUBLE_EQ(series_value_at(trace, 49.0), 80.0);
  EXPECT_DOUBLE_EQ(series_value_at(trace, 1e9), 60.0);
}

TEST(Series, ValueBeforeFirstSampleIsFirstValue) {
  const auto trace = make_trace();
  EXPECT_DOUBLE_EQ(series_value_at(trace, -5.0), 100.0);
}

TEST(Series, EmptyTraceGivesNaN) {
  EXPECT_TRUE(std::isnan(series_value_at({}, 1.0)));
}

TEST(Series, PrintTableHasOneRowPerSample) {
  std::vector<NamedSeries> series{{"LMCTS", make_trace()}};
  std::ostringstream out;
  print_series_table(out, series, 0.0, 50.0, 6);
  int data_rows = 0;
  std::istringstream lines(out.str());
  std::string line;
  while (std::getline(lines, line)) {
    data_rows += (line.rfind("| ", 0) == 0 &&
                  line.find("time") == std::string::npos)
                     ? 1
                     : 0;
  }
  EXPECT_EQ(data_rows, 6);
}

TEST(Series, CsvRoundTripsGrid) {
  const std::string path = ::testing::TempDir() + "/gridsched_series.csv";
  std::vector<NamedSeries> series{{"A", make_trace()}, {"B", make_trace()}};
  write_series_csv(path, series, 0.0, 50.0, 3);
  std::ifstream in(path);
  std::string header;
  std::getline(in, header);
  EXPECT_EQ(header, "time_ms,A,B");
  int rows = 0;
  std::string line;
  while (std::getline(in, line)) ++rows;
  EXPECT_EQ(rows, 3);
  std::remove(path.c_str());
}

// --- Experiment runner. --------------------------------------------------------

TEST(Experiment, AggregatesAcrossRuns) {
  InstanceSpec spec;
  spec.num_jobs = 32;
  spec.num_machines = 4;
  const EtcMatrix etc = generate_instance(spec);

  const auto result = run_many(4, 100, [&](std::uint64_t seed) {
    CmaConfig config;
    config.stop = StopCondition{.max_evaluations = 300};
    config.seed = seed;
    return CellularMemeticAlgorithm(config).run(etc);
  });
  EXPECT_EQ(result.runs.size(), 4u);
  EXPECT_EQ(result.makespan.count, 4u);
  EXPECT_GT(result.makespan.mean, 0.0);
  // best_run really is the argmin of fitness.
  for (const auto& run : result.runs) {
    EXPECT_GE(run.best.fitness, result.best().best.fitness);
  }
}

TEST(Experiment, ParallelMatchesSequential) {
  InstanceSpec spec;
  spec.num_jobs = 32;
  spec.num_machines = 4;
  const EtcMatrix etc = generate_instance(spec);
  auto runner = [&](std::uint64_t seed) {
    CmaConfig config;
    config.stop = StopCondition{.max_evaluations = 200};
    config.seed = seed;
    return CellularMemeticAlgorithm(config).run(etc);
  };
  ThreadPool pool(4);
  const auto sequential = run_many(6, 7, runner, nullptr);
  const auto parallel = run_many(6, 7, runner, &pool);
  ASSERT_EQ(sequential.runs.size(), parallel.runs.size());
  for (std::size_t i = 0; i < sequential.runs.size(); ++i) {
    EXPECT_EQ(sequential.runs[i].best.schedule,
              parallel.runs[i].best.schedule);
  }
  EXPECT_DOUBLE_EQ(sequential.makespan.mean, parallel.makespan.mean);
}

TEST(Experiment, RejectsZeroRuns) {
  EXPECT_THROW(
      run_many(0, 1, [](std::uint64_t) { return EvolutionResult{}; }),
      std::invalid_argument);
}

TEST(Experiment, RunMatrixMatchesRunManyPerJob) {
  InstanceSpec spec;
  spec.num_jobs = 32;
  spec.num_machines = 4;
  const EtcMatrix etc = generate_instance(spec);
  auto make_runner = [&](std::int64_t evals) {
    return [&, evals](std::uint64_t seed) {
      CmaConfig config;
      config.stop = StopCondition{.max_evaluations = evals};
      config.seed = seed;
      return CellularMemeticAlgorithm(config).run(etc);
    };
  };
  const std::vector<SeededRun> jobs{make_runner(200), make_runner(400)};
  ThreadPool pool(4);
  const auto matrix = run_matrix(jobs, 3, 55, pool);
  ASSERT_EQ(matrix.size(), 2u);
  // Same seeds convention as run_many -> identical outcomes per job.
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    const auto reference = run_many(3, 55, jobs[j]);
    ASSERT_EQ(matrix[j].runs.size(), reference.runs.size());
    for (std::size_t r = 0; r < reference.runs.size(); ++r) {
      EXPECT_EQ(matrix[j].runs[r].best.schedule,
                reference.runs[r].best.schedule)
          << "job " << j << " run " << r;
    }
    EXPECT_DOUBLE_EQ(matrix[j].makespan.mean, reference.makespan.mean);
  }
}

TEST(Experiment, AggregateRunsRejectsEmpty) {
  EXPECT_THROW((void)aggregate_runs({}), std::invalid_argument);
}

TEST(Experiment, AggregateRunsPicksBestByFitness) {
  std::vector<EvolutionResult> runs(3);
  runs[0].best.fitness = 5.0;
  runs[1].best.fitness = 2.0;
  runs[2].best.fitness = 9.0;
  const auto agg = aggregate_runs(std::move(runs));
  EXPECT_EQ(agg.best_run, 1u);
  EXPECT_DOUBLE_EQ(agg.best().best.fitness, 2.0);
  EXPECT_DOUBLE_EQ(agg.fitness.min, 2.0);
  EXPECT_DOUBLE_EQ(agg.fitness.max, 9.0);
}

// --- BenchArgs. ----------------------------------------------------------------

TEST(BenchArgs, DefaultsAreCiScale) {
  CliParser cli("t");
  BenchArgs::register_flags(cli);
  const std::array argv{"prog"};
  ASSERT_TRUE(cli.parse(static_cast<int>(argv.size()), argv.data()));
  const BenchArgs args = BenchArgs::from_cli(cli);
  EXPECT_EQ(args.runs, 3);
  EXPECT_LE(args.time_ms, 10'000.0);
  EXPECT_EQ(args.jobs, 512);
  EXPECT_EQ(args.machines, 16);
  EXPECT_FALSE(args.paper);
}

TEST(BenchArgs, PaperModeRestoresTheProtocol) {
  CliParser cli("t");
  BenchArgs::register_flags(cli);
  const std::array argv{"prog", "--paper"};
  ASSERT_TRUE(cli.parse(static_cast<int>(argv.size()), argv.data()));
  const BenchArgs args = BenchArgs::from_cli(cli);
  EXPECT_DOUBLE_EQ(args.time_ms, 90'000.0);
  EXPECT_EQ(args.runs, 10);
}

TEST(BenchArgs, OverridesParse) {
  CliParser cli("t");
  BenchArgs::register_flags(cli);
  const std::array argv{"prog", "--runs", "7", "--time-ms", "123",
                        "--jobs", "64", "--machines", "8", "--seed", "9"};
  ASSERT_TRUE(cli.parse(static_cast<int>(argv.size()), argv.data()));
  const BenchArgs args = BenchArgs::from_cli(cli);
  EXPECT_EQ(args.runs, 7);
  EXPECT_DOUBLE_EQ(args.time_ms, 123.0);
  EXPECT_EQ(args.jobs, 64);
  EXPECT_EQ(args.machines, 8);
  EXPECT_EQ(args.seed, 9u);
}

}  // namespace
}  // namespace gridsched
