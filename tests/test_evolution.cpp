#include "core/evolution.h"

#include <gtest/gtest.h>

namespace gridsched {
namespace {

Individual with_fitness(double f) {
  Individual ind;
  ind.fitness = f;
  return ind;
}

TEST(StopCondition, AnyEnabledDetectsEachBound) {
  EXPECT_FALSE(StopCondition{}.any_enabled());
  EXPECT_TRUE(StopCondition{.max_time_ms = 1}.any_enabled());
  EXPECT_TRUE(StopCondition{.max_evaluations = 1}.any_enabled());
  EXPECT_TRUE(StopCondition{.max_iterations = 1}.any_enabled());
  EXPECT_TRUE(StopCondition{.max_stagnation = 1}.any_enabled());
}

TEST(EvolutionTracker, OfferTracksTheBest) {
  EvolutionTracker tracker(StopCondition{.max_iterations = 100}, false);
  EXPECT_TRUE(tracker.offer(with_fitness(10.0)));
  EXPECT_FALSE(tracker.offer(with_fitness(12.0)));
  EXPECT_TRUE(tracker.offer(with_fitness(9.0)));
  EXPECT_DOUBLE_EQ(tracker.best().fitness, 9.0);
}

TEST(EvolutionTracker, EqualFitnessDoesNotReplace) {
  EvolutionTracker tracker(StopCondition{.max_iterations = 100}, false);
  Individual first = with_fitness(5.0);
  first.objectives.makespan = 1.0;
  Individual second = with_fitness(5.0);
  second.objectives.makespan = 2.0;
  tracker.offer(first);
  EXPECT_FALSE(tracker.offer(second));
  EXPECT_DOUBLE_EQ(tracker.best().objectives.makespan, 1.0);
}

TEST(EvolutionTracker, EvaluationBudgetStops) {
  EvolutionTracker tracker(StopCondition{.max_evaluations = 10}, false);
  EXPECT_FALSE(tracker.should_stop());
  tracker.count_evaluations(9);
  EXPECT_FALSE(tracker.should_stop());
  tracker.count_evaluations();
  EXPECT_TRUE(tracker.should_stop());
}

TEST(EvolutionTracker, IterationBudgetStops) {
  EvolutionTracker tracker(StopCondition{.max_iterations = 2}, false);
  tracker.end_iteration();
  EXPECT_FALSE(tracker.should_stop());
  tracker.end_iteration();
  EXPECT_TRUE(tracker.should_stop());
}

TEST(EvolutionTracker, StagnationCountsIterationsWithoutImprovement) {
  EvolutionTracker tracker(StopCondition{.max_stagnation = 3}, false);
  tracker.offer(with_fitness(10.0));
  tracker.end_iteration();  // improved this iteration -> stagnation 0
  tracker.end_iteration();  // 1
  tracker.end_iteration();  // 2
  EXPECT_FALSE(tracker.should_stop());
  tracker.end_iteration();  // 3
  EXPECT_TRUE(tracker.should_stop());
}

TEST(EvolutionTracker, ImprovementResetsStagnation) {
  EvolutionTracker tracker(StopCondition{.max_stagnation = 2}, false);
  tracker.offer(with_fitness(10.0));
  tracker.end_iteration();
  tracker.end_iteration();  // stagnation 1
  tracker.offer(with_fitness(5.0));
  tracker.end_iteration();  // reset to 0
  tracker.end_iteration();  // 1
  EXPECT_FALSE(tracker.should_stop());
}

TEST(EvolutionTracker, ProgressRecordsImprovementsWhenEnabled) {
  EvolutionTracker tracker(StopCondition{.max_iterations = 10}, true);
  tracker.offer(with_fitness(10.0));
  tracker.offer(with_fitness(8.0));
  tracker.offer(with_fitness(9.0));  // not an improvement, not sampled
  auto result = tracker.finish();
  ASSERT_EQ(result.progress.size(), 2u);
  EXPECT_DOUBLE_EQ(result.progress[0].best_fitness, 10.0);
  EXPECT_DOUBLE_EQ(result.progress[1].best_fitness, 8.0);
}

TEST(EvolutionTracker, ProgressDisabledRecordsNothing) {
  EvolutionTracker tracker(StopCondition{.max_iterations = 10}, false);
  tracker.offer(with_fitness(10.0));
  tracker.end_iteration();
  EXPECT_TRUE(tracker.finish().progress.empty());
}

TEST(EvolutionTracker, FinishPackagesCounters) {
  EvolutionTracker tracker(StopCondition{.max_iterations = 10}, false);
  tracker.offer(with_fitness(3.0));
  tracker.count_evaluations(7);
  tracker.end_iteration();
  tracker.end_iteration();
  const auto result = tracker.finish();
  EXPECT_DOUBLE_EQ(result.best.fitness, 3.0);
  EXPECT_EQ(result.evaluations, 7);
  EXPECT_EQ(result.iterations, 2);
  EXPECT_GE(result.elapsed_ms, 0.0);
}

TEST(StopCondition, CancellationTokenCountsAsEnabled) {
  CancellationSource source;
  StopCondition stop;
  stop.cancel = source.token();
  EXPECT_TRUE(stop.any_enabled());
  EXPECT_FALSE(StopCondition{}.cancel.valid());
}

TEST(EvolutionTracker, CancellationStopsTheLoop) {
  CancellationSource source;
  StopCondition stop;
  stop.cancel = source.token();
  EvolutionTracker tracker(stop, false);
  EXPECT_FALSE(tracker.should_stop());
  source.request_cancel();
  EXPECT_TRUE(tracker.should_stop());
}

TEST(EvolutionTracker, DeadlineTokenExpires) {
  CancellationSource source;
  source.set_deadline_in_ms(1.0);
  StopCondition stop;
  stop.cancel = source.token();
  EvolutionTracker tracker(stop, false);
  Stopwatch watch;
  while (watch.elapsed_ms() < 2.0) {
  }
  EXPECT_TRUE(tracker.should_stop());
  EXPECT_TRUE(source.cancel_requested());
}

TEST(CancellationToken, DefaultTokenNeverCancels) {
  const CancellationToken token;
  EXPECT_FALSE(token.valid());
  EXPECT_FALSE(token.cancelled());
}

TEST(EvolutionTracker, TimeBudgetEventuallyStops) {
  EvolutionTracker tracker(StopCondition{.max_time_ms = 1.0}, false);
  // Busy-wait just past the budget.
  Stopwatch watch;
  while (watch.elapsed_ms() < 2.0) {
  }
  EXPECT_TRUE(tracker.should_stop());
}

}  // namespace
}  // namespace gridsched
