#include "etc/cvb_instance.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/stats.h"

namespace gridsched {
namespace {

TEST(CvbInstance, ShapeAndPositivity) {
  CvbInstanceSpec spec;
  spec.num_jobs = 64;
  spec.num_machines = 8;
  const EtcMatrix etc = generate_cvb_instance(spec);
  EXPECT_EQ(etc.num_jobs(), 64);
  EXPECT_EQ(etc.num_machines(), 8);
  for (double v : etc.raw()) ASSERT_GT(v, 0.0);
}

TEST(CvbInstance, DeterministicInSpec) {
  CvbInstanceSpec spec;
  spec.num_jobs = 32;
  spec.num_machines = 4;
  const EtcMatrix a = generate_cvb_instance(spec);
  const EtcMatrix b = generate_cvb_instance(spec);
  for (std::size_t i = 0; i < a.raw().size(); ++i) {
    ASSERT_EQ(a.raw()[i], b.raw()[i]);
  }
  spec.seed = 2;
  const EtcMatrix c = generate_cvb_instance(spec);
  EXPECT_NE(a(0, 0), c(0, 0));
}

TEST(CvbInstance, GrandMeanTracksTaskMean) {
  CvbInstanceSpec spec;
  spec.num_jobs = 2'000;
  spec.num_machines = 16;
  spec.consistency = Consistency::kInconsistent;
  spec.task_mean = 1'000.0;
  const EtcMatrix etc = generate_cvb_instance(spec);
  const double grand_mean =
      etc.total() / static_cast<double>(etc.num_jobs() * etc.num_machines());
  EXPECT_NEAR(grand_mean, 1'000.0, 60.0);  // CV 0.9 over 32k samples
}

TEST(CvbInstance, TaskCvControlsRowSpread) {
  auto row_mean_cv = [](const EtcMatrix& etc) {
    RunningStats stats;
    for (JobId j = 0; j < etc.num_jobs(); ++j) stats.add(etc.mean_row(j));
    return stats.cv();
  };
  CvbInstanceSpec hi;
  hi.num_jobs = 1'500;
  hi.num_machines = 8;
  hi.consistency = Consistency::kInconsistent;
  hi.v_task = 0.9;
  hi.v_machine = 0.3;
  CvbInstanceSpec lo = hi;
  lo.v_task = 0.1;
  const double cv_hi = row_mean_cv(generate_cvb_instance(hi));
  const double cv_lo = row_mean_cv(generate_cvb_instance(lo));
  EXPECT_GT(cv_hi, 3.0 * cv_lo);
  EXPECT_NEAR(cv_lo, 0.1, 0.05);
}

TEST(CvbInstance, MachineCvControlsWithinRowSpread) {
  auto within_row_cv = [](const EtcMatrix& etc) {
    double total = 0.0;
    for (JobId j = 0; j < etc.num_jobs(); ++j) {
      RunningStats stats;
      for (double v : etc.row(j)) stats.add(v);
      total += stats.cv();
    }
    return total / etc.num_jobs();
  };
  CvbInstanceSpec hi;
  hi.num_jobs = 400;
  hi.num_machines = 32;
  hi.consistency = Consistency::kInconsistent;
  hi.v_task = 0.3;
  hi.v_machine = 0.9;
  CvbInstanceSpec lo = hi;
  lo.v_machine = 0.1;
  EXPECT_GT(within_row_cv(generate_cvb_instance(hi)),
            3.0 * within_row_cv(generate_cvb_instance(lo)));
}

TEST(CvbInstance, ConsistencyPostPassApplies) {
  CvbInstanceSpec spec;
  spec.num_jobs = 100;
  spec.num_machines = 8;
  spec.consistency = Consistency::kConsistent;
  const EtcMatrix etc = generate_cvb_instance(spec);
  for (JobId j = 0; j < etc.num_jobs(); ++j) {
    for (MachineId m = 0; m + 1 < etc.num_machines(); ++m) {
      ASSERT_LE(etc(j, m), etc(j, m + 1));
    }
  }
}

TEST(CvbInstance, SemiConsistentEvenColumnsSorted) {
  CvbInstanceSpec spec;
  spec.num_jobs = 100;
  spec.num_machines = 8;
  spec.consistency = Consistency::kSemiConsistent;
  const EtcMatrix etc = generate_cvb_instance(spec);
  for (JobId j = 0; j < etc.num_jobs(); ++j) {
    for (MachineId m = 0; m + 2 < etc.num_machines(); m += 2) {
      ASSERT_LE(etc(j, m), etc(j, m + 2));
    }
  }
}

TEST(CvbInstance, NameEncodesParameters) {
  CvbInstanceSpec spec;
  spec.consistency = Consistency::kSemiConsistent;
  spec.v_task = 0.9;
  spec.v_machine = 0.1;
  EXPECT_EQ(spec.name(), "cvb_s_90_10");
}

TEST(CvbInstance, RejectsBadParameters) {
  CvbInstanceSpec bad;
  bad.task_mean = 0.0;
  EXPECT_THROW((void)generate_cvb_instance(bad), std::invalid_argument);
  CvbInstanceSpec bad2;
  bad2.v_task = -1.0;
  EXPECT_THROW((void)generate_cvb_instance(bad2), std::invalid_argument);
  CvbInstanceSpec bad3;
  bad3.num_jobs = 0;
  EXPECT_THROW((void)generate_cvb_instance(bad3), std::invalid_argument);
}

TEST(RngGamma, MeanAndVarianceMatchTheory) {
  Rng rng(7);
  const double shape = 4.0;
  const double scale = 2.5;
  RunningStats stats;
  for (int i = 0; i < 60'000; ++i) stats.add(rng.gamma(shape, scale));
  EXPECT_NEAR(stats.mean(), shape * scale, 0.1);           // 10
  EXPECT_NEAR(stats.variance(), shape * scale * scale, 1.0);  // 25
}

TEST(RngGamma, SmallShapeBranch) {
  Rng rng(11);
  const double shape = 0.5;
  const double scale = 3.0;
  RunningStats stats;
  for (int i = 0; i < 60'000; ++i) {
    const double v = rng.gamma(shape, scale);
    ASSERT_GT(v, 0.0);
    stats.add(v);
  }
  EXPECT_NEAR(stats.mean(), shape * scale, 0.1);
}

}  // namespace
}  // namespace gridsched
