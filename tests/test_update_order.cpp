#include "cma/update_order.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace gridsched {
namespace {

std::vector<int> one_sweep(SweepOrder& order, Rng& rng, int n) {
  std::vector<int> cells;
  for (int i = 0; i < n; ++i) {
    cells.push_back(order.current());
    order.next(rng);
  }
  return cells;
}

bool is_permutation_of_range(const std::vector<int>& cells, int n) {
  const std::set<int> unique(cells.begin(), cells.end());
  return static_cast<int>(cells.size()) == n &&
         static_cast<int>(unique.size()) == n && *unique.begin() == 0 &&
         *unique.rbegin() == n - 1;
}

TEST(SweepOrder, FlsVisitsCellsInLineOrder) {
  Rng rng(1);
  SweepOrder order(SweepKind::kFixedLineSweep, 6, rng);
  const auto sweep = one_sweep(order, rng, 6);
  EXPECT_EQ(sweep, (std::vector<int>{0, 1, 2, 3, 4, 5}));
}

TEST(SweepOrder, FlsRepeatsIdentically) {
  Rng rng(1);
  SweepOrder order(SweepKind::kFixedLineSweep, 4, rng);
  const auto first = one_sweep(order, rng, 4);
  const auto second = one_sweep(order, rng, 4);
  EXPECT_EQ(first, second);
}

TEST(SweepOrder, FrsIsARandomButFixedPermutation) {
  Rng rng(7);
  SweepOrder order(SweepKind::kFixedRandomSweep, 25, rng);
  const auto first = one_sweep(order, rng, 25);
  EXPECT_TRUE(is_permutation_of_range(first, 25));
  // Identical on every subsequent sweep.
  const auto second = one_sweep(order, rng, 25);
  const auto third = one_sweep(order, rng, 25);
  EXPECT_EQ(first, second);
  EXPECT_EQ(first, third);
  // And (overwhelmingly likely) not the identity permutation.
  std::vector<int> identity(25);
  for (int i = 0; i < 25; ++i) identity[static_cast<std::size_t>(i)] = i;
  EXPECT_NE(first, identity);
}

TEST(SweepOrder, NrsReshufflesEverySweep) {
  Rng rng(3);
  SweepOrder order(SweepKind::kNewRandomSweep, 25, rng);
  const auto first = one_sweep(order, rng, 25);
  const auto second = one_sweep(order, rng, 25);
  EXPECT_TRUE(is_permutation_of_range(first, 25));
  EXPECT_TRUE(is_permutation_of_range(second, 25));
  EXPECT_NE(first, second);  // 1/25! chance of collision
}

TEST(SweepOrder, EverySweepIsAPermutationMidCycleToo) {
  // Even when sweeps are consumed in chunks that straddle the wrap point
  // (25 recombinations vs 12 mutations in the paper), each full cycle of n
  // next() calls still covers every cell exactly once.
  Rng rng(5);
  SweepOrder order(SweepKind::kNewRandomSweep, 10, rng);
  for (int chunk = 0; chunk < 7; ++chunk) {
    (void)one_sweep(order, rng, 3);  // desync from sweep boundaries
  }
  // Align back to a boundary: consume until position 0 is next.
  std::vector<int> tail;
  for (int guard = 0; guard < 10; ++guard) {
    tail.push_back(order.current());
    order.next(rng);
  }
  const std::set<int> unique(tail.begin(), tail.end());
  EXPECT_EQ(unique.size(), tail.size());
}

TEST(SweepOrder, DeterministicInSeed) {
  Rng a(11);
  Rng b(11);
  SweepOrder oa(SweepKind::kNewRandomSweep, 16, a);
  SweepOrder ob(SweepKind::kNewRandomSweep, 16, b);
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(oa.current(), ob.current());
    oa.next(a);
    ob.next(b);
  }
}

TEST(SweepOrder, SingleCellPopulation) {
  Rng rng(1);
  SweepOrder order(SweepKind::kNewRandomSweep, 1, rng);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(order.current(), 0);
    order.next(rng);
  }
}

TEST(SweepOrder, RejectsEmptyPopulation) {
  Rng rng(1);
  EXPECT_THROW(SweepOrder(SweepKind::kFixedLineSweep, 0, rng),
               std::invalid_argument);
}

TEST(SweepOrder, NamesMatchPaperAbbreviations) {
  EXPECT_EQ(sweep_name(SweepKind::kFixedLineSweep), "FLS");
  EXPECT_EQ(sweep_name(SweepKind::kFixedRandomSweep), "FRS");
  EXPECT_EQ(sweep_name(SweepKind::kNewRandomSweep), "NRS");
}

}  // namespace
}  // namespace gridsched
