#include "core/pareto.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <vector>

#include "cma/cma.h"
#include "etc/instance.h"

namespace gridsched {
namespace {

Individual point(double makespan, double flowtime) {
  Individual ind;
  ind.objectives = {makespan, flowtime};
  ind.fitness = makespan;  // irrelevant to dominance
  return ind;
}

TEST(Dominates, StrictOnBothObjectives) {
  EXPECT_TRUE(dominates({1.0, 1.0}, {2.0, 2.0}));
  EXPECT_FALSE(dominates({2.0, 2.0}, {1.0, 1.0}));
}

TEST(Dominates, EqualOnOneStrictOnOther) {
  EXPECT_TRUE(dominates({1.0, 5.0}, {1.0, 6.0}));
  EXPECT_TRUE(dominates({1.0, 5.0}, {2.0, 5.0}));
}

TEST(Dominates, IncomparableAndEqualAreFalse) {
  EXPECT_FALSE(dominates({1.0, 9.0}, {2.0, 3.0}));
  EXPECT_FALSE(dominates({2.0, 3.0}, {1.0, 9.0}));
  EXPECT_FALSE(dominates({4.0, 4.0}, {4.0, 4.0}));
}

TEST(ParetoArchive, KeepsNonDominatedSet) {
  ParetoArchive archive;
  EXPECT_TRUE(archive.offer(point(10, 100)));
  EXPECT_TRUE(archive.offer(point(20, 50)));   // incomparable
  EXPECT_TRUE(archive.offer(point(5, 200)));   // incomparable
  EXPECT_EQ(archive.size(), 3u);
}

TEST(ParetoArchive, RejectsDominatedCandidates) {
  ParetoArchive archive;
  archive.offer(point(10, 100));
  EXPECT_FALSE(archive.offer(point(11, 101)));
  EXPECT_FALSE(archive.offer(point(10, 100)));  // duplicate
  EXPECT_EQ(archive.size(), 1u);
}

TEST(ParetoArchive, EvictsNewlyDominatedMembers) {
  ParetoArchive archive;
  archive.offer(point(10, 100));
  archive.offer(point(20, 50));
  // Dominates both members at once.
  EXPECT_TRUE(archive.offer(point(9, 40)));
  EXPECT_EQ(archive.size(), 1u);
  EXPECT_DOUBLE_EQ(archive.front()[0].objectives.makespan, 9.0);
}

TEST(ParetoArchive, FrontSortedByMakespan) {
  ParetoArchive archive;
  archive.offer(point(30, 10));
  archive.offer(point(10, 90));
  archive.offer(point(20, 40));
  const auto front = archive.front();
  ASSERT_EQ(front.size(), 3u);
  EXPECT_DOUBLE_EQ(front[0].objectives.makespan, 10.0);
  EXPECT_DOUBLE_EQ(front[1].objectives.makespan, 20.0);
  EXPECT_DOUBLE_EQ(front[2].objectives.makespan, 30.0);
  // Along a front, flowtime must be descending as makespan ascends.
  EXPECT_GT(front[0].objectives.flowtime, front[1].objectives.flowtime);
  EXPECT_GT(front[1].objectives.flowtime, front[2].objectives.flowtime);
}

TEST(ParetoArchive, WouldRejectMirrorsOffer) {
  ParetoArchive archive;
  archive.offer(point(10, 10));
  EXPECT_TRUE(archive.would_reject({11, 11}));
  EXPECT_TRUE(archive.would_reject({10, 10}));
  EXPECT_FALSE(archive.would_reject({9, 20}));
}

TEST(ParetoFront, FiltersABatch) {
  std::vector<Individual> batch{point(10, 100), point(11, 101), point(5, 200),
                                point(20, 50), point(20, 51)};
  const auto front = pareto_front(batch);
  ASSERT_EQ(front.size(), 3u);  // (5,200), (10,100), (20,50)
  EXPECT_DOUBLE_EQ(front[0].objectives.makespan, 5.0);
  EXPECT_DOUBLE_EQ(front[2].objectives.flowtime, 50.0);
}

TEST(Hypervolume, SinglePointRectangle) {
  const std::vector<Individual> front{point(2, 3)};
  // Box from (2,3) to reference (10, 7): 8 * 4.
  EXPECT_DOUBLE_EQ(hypervolume(front, {10, 7}), 32.0);
}

TEST(Hypervolume, TwoPointStaircase) {
  const std::vector<Individual> front{point(1, 6), point(4, 2)};
  // (4-1)*(10-6) + (10-4)*(10-2) = 12 + 48.
  EXPECT_DOUBLE_EQ(hypervolume(front, {10, 10}), 60.0);
}

TEST(Hypervolume, UnsortedAndDominatedInputIsCleaned) {
  const std::vector<Individual> front{point(4, 2), point(1, 6), point(5, 5)};
  // (5,5) is dominated by (4,2); result equals the staircase above.
  EXPECT_DOUBLE_EQ(hypervolume(front, {10, 10}), 60.0);
}

TEST(Hypervolume, PointsBeyondReferenceAreClipped) {
  const std::vector<Individual> front{point(12, 1), point(1, 6)};
  // (12,1) lies right of the reference wall; only (1,6) counts.
  EXPECT_DOUBLE_EQ(hypervolume(front, {10, 10}), 9.0 * 4.0);
}

TEST(Hypervolume, EmptyFrontIsZero) {
  EXPECT_DOUBLE_EQ(hypervolume({}, {10, 10}), 0.0);
  const std::vector<Individual> beyond{point(20, 20)};
  EXPECT_DOUBLE_EQ(hypervolume(beyond, {10, 10}), 0.0);
}

TEST(Hypervolume, AddingANonDominatedPointGrowsTheVolume) {
  std::vector<Individual> front{point(1, 6), point(4, 2)};
  const double before = hypervolume(front, {10, 10});
  front.push_back(point(2, 4));  // between the two, non-dominated
  EXPECT_GT(hypervolume(front, {10, 10}), before);
}

// ------------------------------------------- N-objective generalization --

using Point = std::vector<double>;

TEST(DominatesSpan, SingleObjectiveDegeneratesToLessThan) {
  EXPECT_TRUE(dominates(Point{1.0}, Point{2.0}));
  EXPECT_FALSE(dominates(Point{2.0}, Point{1.0}));
  EXPECT_FALSE(dominates(Point{1.0}, Point{1.0}));
}

TEST(DominatesSpan, ThreeObjectivesNeedStrictImprovementSomewhere) {
  EXPECT_TRUE(dominates(Point{1.0, 2.0, 3.0}, Point{1.0, 2.0, 4.0}));
  EXPECT_FALSE(dominates(Point{1.0, 2.0, 3.0}, Point{1.0, 2.0, 3.0}));
  // Incomparable: better on one axis, worse on another.
  EXPECT_FALSE(dominates(Point{1.0, 5.0, 3.0}, Point{2.0, 2.0, 3.0}));
  EXPECT_FALSE(dominates(Point{2.0, 2.0, 3.0}, Point{1.0, 5.0, 3.0}));
}

TEST(ParetoFrontIndices, KeepsEveryDuplicateOfANonDominatedPoint) {
  // Duplicates never dominate each other, so both copies stay — a
  // portfolio racing two members to the same outcome keeps both eligible.
  const std::vector<Point> points{{1.0, 2.0}, {1.0, 2.0}, {3.0, 4.0}};
  const std::vector<std::size_t> front = pareto_front_indices(points);
  ASSERT_EQ(front.size(), 2u);
  EXPECT_EQ(front[0], 0u);
  EXPECT_EQ(front[1], 1u);
}

TEST(ParetoFrontIndices, FiltersDominatedThreeObjectivePoints) {
  const std::vector<Point> points{
      {10.0, 0.0, 5.0},   // front: best missed
      {8.0, 2.0, 5.0},    // front: best makespan
      {10.0, 1.0, 6.0},   // dominated by 0
      {9.0, 1.0, 4.0},    // front: best cost
  };
  const std::vector<std::size_t> front = pareto_front_indices(points);
  EXPECT_EQ(front, (std::vector<std::size_t>{0, 1, 3}));
}

TEST(ParetoFrontIndices, EmptyAndSingletonInputs) {
  EXPECT_TRUE(pareto_front_indices({}).empty());
  const std::vector<Point> one{{4.0, 2.0}};
  EXPECT_EQ(pareto_front_indices(one), (std::vector<std::size_t>{0}));
}

TEST(CrowdingDistances, BoundaryPointsAreInfinite) {
  const std::vector<Point> points{{1.0, 9.0}, {5.0, 5.0}, {9.0, 1.0}};
  const std::vector<double> crowding = crowding_distances(points);
  ASSERT_EQ(crowding.size(), 3u);
  EXPECT_TRUE(std::isinf(crowding[0]));
  EXPECT_TRUE(std::isinf(crowding[2]));
  EXPECT_TRUE(std::isfinite(crowding[1]));
  EXPECT_GT(crowding[1], 0.0);
}

TEST(CrowdingDistances, ZeroSpreadObjectiveContributesNothing) {
  // All points tie on the second objective: that axis must be skipped
  // entirely (naive normalization divides by zero and poisons every
  // distance with NaN).
  const std::vector<Point> points{{1.0, 7.0}, {2.0, 7.0}, {4.0, 7.0}};
  const std::vector<double> crowding = crowding_distances(points);
  ASSERT_EQ(crowding.size(), 3u);
  for (const double d : crowding) EXPECT_FALSE(std::isnan(d));
  EXPECT_TRUE(std::isinf(crowding[0]));
  EXPECT_TRUE(std::isinf(crowding[2]));
  EXPECT_TRUE(std::isfinite(crowding[1]));
}

TEST(CrowdingDistances, ExactDuplicatesCrowdToZero) {
  const std::vector<Point> points{
      {1.0, 9.0}, {5.0, 5.0}, {5.0, 5.0}, {5.0, 5.0}, {9.0, 1.0}};
  const std::vector<double> crowding = crowding_distances(points);
  ASSERT_EQ(crowding.size(), 5u);
  // At least one interior duplicate is fully surrounded by its twins.
  EXPECT_DOUBLE_EQ(crowding[2], 0.0);
}

TEST(ParetoFront, LambdaSweepProducesANontrivialFront) {
  // Integration: extreme lambda weights should produce solutions that
  // trade the objectives against each other, all mutually non-dominated
  // after filtering.
  InstanceSpec spec;
  spec.num_jobs = 96;
  spec.num_machines = 8;
  const EtcMatrix etc = generate_instance(spec);

  std::vector<Individual> outcomes;
  for (double lambda : {0.0, 0.5, 1.0}) {
    CmaConfig config;
    config.stop = StopCondition{.max_evaluations = 2'000};
    config.seed = 11;
    config.weights.lambda = lambda;
    outcomes.push_back(CellularMemeticAlgorithm(config).run(etc).best);
  }
  const auto front = pareto_front(outcomes);
  ASSERT_GE(front.size(), 1u);
  for (std::size_t i = 0; i < front.size(); ++i) {
    for (std::size_t j = 0; j < front.size(); ++j) {
      if (i == j) continue;
      EXPECT_FALSE(dominates(front[i].objectives, front[j].objectives));
    }
  }
}

}  // namespace
}  // namespace gridsched
