#include "portfolio/portfolio.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <thread>

#include "etc/instance.h"
#include "sim/grid_simulator.h"

namespace gridsched {
namespace {

EtcMatrix small_instance(int jobs = 48, int machines = 8,
                         std::uint64_t seed = 3) {
  InstanceSpec spec;
  spec.num_jobs = jobs;
  spec.num_machines = machines;
  spec.seed = seed;
  return generate_instance(spec);
}

/// A deterministic portfolio: generous wall budget, hard evaluation bound.
PortfolioConfig deterministic_config() {
  PortfolioConfig config;
  config.budget_ms = 60'000.0;
  config.threads = 2;
  config.member_stop = StopCondition{.max_evaluations = 200};
  config.seed = 11;
  return config;
}

// ---------------------------------------------------------------- cache --

TEST(PopulationCache, EmptyUntilStored) {
  PopulationCache cache(4);
  EXPECT_TRUE(cache.empty());
  const EtcMatrix etc = small_instance(4, 2);
  EXPECT_TRUE(cache.warm_start(etc, BatchContext::identity(etc)).empty());
}

TEST(PopulationCache, StoreKeepsOnlyTheBestCapacity) {
  PopulationCache cache(2);
  const EtcMatrix etc = small_instance(4, 2);
  std::vector<Individual> elites;
  for (int i = 0; i < 5; ++i) {
    Individual ind;
    ind.schedule = Schedule(4, static_cast<MachineId>(i % 2));
    ind.fitness = 10.0 - i;  // later ones are better
    elites.push_back(ind);
  }
  cache.store(BatchContext::identity(etc), elites);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(PopulationCache, RequeuedJobKeepsItsMachineAcrossRemap) {
  PopulationCache cache(4);
  // Old batch: jobs {10, 11, 12} on grid machines {0, 1, 2}.
  EtcMatrix old_etc(3, 3);
  BatchContext old_ctx;
  old_ctx.job_ids = {10, 11, 12};
  old_ctx.machine_ids = {0, 1, 2};
  Individual elite;
  elite.schedule = Schedule(3);
  elite.schedule[0] = 0;  // job 10 -> machine 0
  elite.schedule[1] = 1;  // job 11 -> machine 1
  elite.schedule[2] = 2;  // job 12 -> machine 2
  elite.fitness = 1.0;
  cache.store(old_ctx, {&elite, 1});

  // New batch: job 12 re-queued plus a fresh job 20; machine 1 died, so
  // columns now map to grid machines {0, 2}.
  EtcMatrix new_etc(2, 2);
  new_etc.set(0, 0, 5.0);
  new_etc.set(0, 1, 1.0);
  new_etc.set(1, 0, 1.0);
  new_etc.set(1, 1, 5.0);
  BatchContext new_ctx;
  new_ctx.job_ids = {12, 20};
  new_ctx.machine_ids = {0, 2};

  const std::vector<Schedule> warm = cache.warm_start(new_etc, new_ctx);
  ASSERT_EQ(warm.size(), 1u);
  ASSERT_TRUE(warm[0].complete(2));
  // Job 12 ran on grid machine 2, which is now column 1.
  EXPECT_EQ(warm[0][0], 1);
}

TEST(PopulationCache, DeadMachineFallsBackToFastestColumn) {
  PopulationCache cache(4);
  EtcMatrix old_etc(1, 2);
  BatchContext old_ctx;
  old_ctx.job_ids = {7};
  old_ctx.machine_ids = {4, 5};
  Individual elite;
  elite.schedule = Schedule(1);
  elite.schedule[0] = 1;  // job 7 -> grid machine 5
  elite.fitness = 1.0;
  cache.store(old_ctx, {&elite, 1});

  // Machine 5 is gone; the new batch sees machines {4, 6}; job 7 is
  // fastest on column 1 (machine 6).
  EtcMatrix new_etc(1, 2);
  new_etc.set(0, 0, 9.0);
  new_etc.set(0, 1, 2.0);
  BatchContext new_ctx;
  new_ctx.job_ids = {7};
  new_ctx.machine_ids = {4, 6};

  const std::vector<Schedule> warm = cache.warm_start(new_etc, new_ctx);
  ASSERT_EQ(warm.size(), 1u);
  EXPECT_EQ(warm[0][0], 1);
}

TEST(PopulationCache, NewJobsInheritThePatternAndStayComplete) {
  PopulationCache cache(4);
  EtcMatrix old_etc(2, 2);
  BatchContext old_ctx = BatchContext::identity(old_etc);
  Individual elite;
  elite.schedule = Schedule(2);
  elite.schedule[0] = 1;
  elite.schedule[1] = 0;
  elite.fitness = 1.0;
  cache.store(old_ctx, {&elite, 1});

  // Entirely fresh jobs, same machines: pattern transfer by row index.
  EtcMatrix new_etc(5, 2);
  BatchContext new_ctx;
  new_ctx.job_ids = {100, 101, 102, 103, 104};
  new_ctx.machine_ids = {0, 1};
  const std::vector<Schedule> warm = cache.warm_start(new_etc, new_ctx);
  ASSERT_EQ(warm.size(), 1u);
  ASSERT_TRUE(warm[0].complete(2));
  EXPECT_EQ(warm[0][0], 1);  // row 0 copies old row 0
  EXPECT_EQ(warm[0][1], 0);  // row 1 copies old row 1
  EXPECT_EQ(warm[0][2], 1);  // row 2 wraps to old row 0
}

TEST(PopulationCache, EraseJobDropsTheRowEverywhere) {
  PopulationCache cache(4);
  EtcMatrix old_etc(3, 2);
  BatchContext old_ctx;
  old_ctx.job_ids = {10, 11, 12};
  old_ctx.machine_ids = {0, 1};
  Individual elite;
  elite.schedule = Schedule(3);
  elite.schedule[0] = 0;
  elite.schedule[1] = 1;
  elite.schedule[2] = 0;
  elite.fitness = 1.0;
  cache.store(old_ctx, {&elite, 1});

  EXPECT_FALSE(cache.erase_job(99));  // unknown job: no-op
  EXPECT_TRUE(cache.erase_job(11));
  ASSERT_EQ(cache.stored_job_ids(), (std::vector<int>{10, 12}));
  // Re-queued job 12 still remaps to its machine after the erase: the
  // surviving rows shifted coherently.
  EtcMatrix new_etc(1, 2);
  BatchContext new_ctx;
  new_ctx.job_ids = {12};
  new_ctx.machine_ids = {0, 1};
  const std::vector<Schedule> warm = cache.warm_start(new_etc, new_ctx);
  ASSERT_EQ(warm.size(), 1u);
  EXPECT_EQ(warm[0][0], 0);
}

TEST(PopulationCache, AdoptJobAddsOrReassignsOnEveryElite) {
  PopulationCache cache(4);
  EtcMatrix old_etc(2, 2);
  BatchContext old_ctx;
  old_ctx.job_ids = {10, 11};
  old_ctx.machine_ids = {0, 1};
  Individual elite;
  elite.schedule = Schedule(2);
  elite.schedule[0] = 0;
  elite.schedule[1] = 1;
  elite.fitness = 1.0;
  cache.store(old_ctx, {&elite, 1});

  // A stolen job lands on grid machine 5 — new to this cache's batch.
  cache.adopt_job(42, 5);
  ASSERT_EQ(cache.stored_job_ids(), (std::vector<int>{10, 11, 42}));
  ASSERT_EQ(cache.stored_machine_ids(), (std::vector<int>{0, 1, 5}));
  // A re-queue of job 42 with machine 5 alive warm-starts onto it.
  EtcMatrix new_etc(1, 2);
  BatchContext new_ctx;
  new_ctx.job_ids = {42};
  new_ctx.machine_ids = {1, 5};
  std::vector<Schedule> warm = cache.warm_start(new_etc, new_ctx);
  ASSERT_EQ(warm.size(), 1u);
  EXPECT_EQ(warm[0][0], 1);  // machine 5 = new column 1

  // Adopting a job the cache already stores reassigns it in place.
  cache.adopt_job(10, 1);
  ASSERT_EQ(cache.stored_job_ids(), (std::vector<int>{10, 11, 42}));
  new_ctx.job_ids = {10};
  new_ctx.machine_ids = {0, 1};
  warm = cache.warm_start(new_etc, new_ctx);
  ASSERT_EQ(warm.size(), 1u);
  EXPECT_EQ(warm[0][0], 1);

  // An empty cache has no elite to extend: adopt is a documented no-op.
  PopulationCache fresh(2);
  fresh.adopt_job(1, 2);
  EXPECT_TRUE(fresh.empty());
  EXPECT_TRUE(fresh.stored_job_ids().empty());
}

// --------------------------------------------------------------- policy --

TEST(UcbPolicy, ColdStartEventuallyPlaysEveryArm) {
  UcbPolicy policy(UcbConfig{.exploration = 0.5, .max_active = 2});
  std::vector<bool> played(4, false);
  for (int round = 0; round < 4; ++round) {
    const std::vector<double> shares = policy.plan(4);
    for (std::size_t i = 0; i < shares.size(); ++i) {
      if (shares[i] > 0) {
        played[i] = true;
        policy.record(i, 0.5, 1.0);
      }
    }
  }
  EXPECT_TRUE(std::all_of(played.begin(), played.end(),
                          [](bool p) { return p; }));
}

TEST(UcbPolicy, RecordAccumulatesCredit) {
  UcbPolicy policy;
  (void)policy.plan(2);
  policy.record(0, 1.0, 10.0);
  policy.record(0, 0.5, 20.0);
  policy.record(1, 0.25, 5.0);
  ASSERT_EQ(policy.arms().size(), 2u);
  EXPECT_EQ(policy.arms()[0].plays, 2);
  EXPECT_DOUBLE_EQ(policy.arms()[0].mean_reward(), 0.75);
  EXPECT_DOUBLE_EQ(policy.arms()[0].total_cost_ms, 30.0);
  EXPECT_EQ(policy.arms()[1].plays, 1);
  EXPECT_DOUBLE_EQ(policy.arms()[1].mean_reward(), 0.25);
}

TEST(UcbPolicy, ConcentratesOnTheRewardingArm) {
  UcbPolicy policy(UcbConfig{.exploration = 0.05, .max_active = 1});
  // Warm-up: every arm gets played once via the +inf cold-start score.
  for (int round = 0; round < 3; ++round) {
    const std::vector<double> shares = policy.plan(3);
    for (std::size_t i = 0; i < shares.size(); ++i) {
      if (shares[i] > 0) policy.record(i, i == 1 ? 1.0 : 0.1, 1.0);
    }
  }
  // With low exploration, arm 1 must dominate the next rounds.
  int arm1_plays = 0;
  for (int round = 0; round < 10; ++round) {
    const std::vector<double> shares = policy.plan(3);
    for (std::size_t i = 0; i < shares.size(); ++i) {
      if (shares[i] > 0) {
        if (i == 1) ++arm1_plays;
        policy.record(i, i == 1 ? 1.0 : 0.1, 1.0);
      }
    }
  }
  EXPECT_GE(arm1_plays, 9);
}

TEST(UcbPolicy, CostAwareCreditPrefersTheCheapNearWinner) {
  // Arm 0 nearly wins for 5 ms; arm 1 barely wins for 50 ms. Cost-blind
  // UCB ranks 1 above 0; cost-aware credit inverts that.
  const auto feed = [](UcbPolicy& policy) {
    for (int round = 0; round < 5; ++round) {
      policy.record(0, 0.9, 5.0);
      policy.record(1, 1.0, 50.0);
    }
  };
  UcbPolicy cost_aware(
      UcbConfig{.exploration = 0.0, .max_active = 1, .cost_aware = true});
  (void)cost_aware.plan(2);
  feed(cost_aware);
  EXPECT_GT(cost_aware.score(0), cost_aware.score(1));

  UcbPolicy cost_blind(
      UcbConfig{.exploration = 0.0, .max_active = 1, .cost_aware = false});
  (void)cost_blind.plan(2);
  feed(cost_blind);
  EXPECT_LT(cost_blind.score(0), cost_blind.score(1));
}

TEST(UcbPolicy, CostAwareReducesToMeanRewardOnEqualCosts) {
  UcbPolicy policy(
      UcbConfig{.exploration = 0.0, .max_active = 1, .cost_aware = true});
  (void)policy.plan(2);
  for (int round = 0; round < 4; ++round) {
    policy.record(0, 0.8, 10.0);
    policy.record(1, 0.5, 10.0);
  }
  EXPECT_NEAR(policy.score(0), 0.8, 1e-12);
  EXPECT_NEAR(policy.score(1), 0.5, 1e-12);
}

TEST(UcbPolicy, UnplayedArmScoresInfinite) {
  UcbPolicy policy;
  (void)policy.plan(2);
  policy.record(0, 1.0, 1.0);
  EXPECT_TRUE(std::isinf(policy.score(1)));
  EXPECT_FALSE(std::isinf(policy.score(0)));
}

TEST(UcbPolicy, RejectsBadConfig) {
  EXPECT_THROW(UcbPolicy(UcbConfig{.max_active = 0}), std::invalid_argument);
  EXPECT_THROW(UcbPolicy(UcbConfig{.exploration = -1.0}),
               std::invalid_argument);
}

// ------------------------------------------------------------ portfolio --

// ----------------------------------------------------------------- lahc --

TEST(LahcMember, PreCancelledTokenStillReturnsACompleteSchedule) {
  // Mirrors the cancellation contract every member honors: a token that
  // fired before solve() must still yield a complete schedule (the
  // constructive seed at worst), near-instantly.
  const EtcMatrix etc = small_instance(64, 8);
  CancellationSource source;
  source.request_cancel();
  StopCondition stop;
  stop.cancel = source.token();
  LahcMember member;
  const MemberResult result = member.solve(etc, stop, {}, 5);
  EXPECT_TRUE(result.best.schedule.complete(etc.num_machines()));
  EXPECT_TRUE(std::isfinite(result.best.fitness));
}

TEST(LahcMember, NeverWorseThanItsSeed) {
  // Without warm starts LAHC seeds from MCT; the best-so-far tracking
  // guarantees the result never falls behind that seed, whatever the
  // late-acceptance walk wanders through.
  const EtcMatrix etc = small_instance(64, 8);
  Rng rng(17);
  const Individual seed_individual =
      make_individual(construct_schedule(HeuristicKind::kMct, etc, rng),
                      etc, FitnessWeights{});
  LahcMember member;
  StopCondition stop;
  stop.max_evaluations = 2'000;
  const MemberResult result = member.solve(etc, stop, {}, 17);
  EXPECT_LE(result.best.fitness, seed_individual.fitness);
  EXPECT_TRUE(result.best.schedule.complete(etc.num_machines()));
}

TEST(LahcMember, SeedsFromTheBestWarmElite) {
  // Hand the member a warm schedule that is better than anything a short
  // budget could find from scratch: the result must be at least that good.
  const EtcMatrix etc = small_instance(48, 6);
  Rng rng(23);
  const Schedule warm_best =
      construct_schedule(HeuristicKind::kMinMin, etc, rng);
  const Schedule warm_other =
      Schedule::random(etc.num_jobs(), etc.num_machines(), rng);
  const double warm_fitness =
      make_individual(warm_best, etc, FitnessWeights{}).fitness;
  const std::vector<Schedule> warm{warm_other, warm_best};
  LahcMember member;
  StopCondition stop;
  stop.max_evaluations = 500;
  const MemberResult result = member.solve(etc, stop, warm, 23);
  EXPECT_LE(result.best.fitness, warm_fitness);
}

TEST(LahcMember, ImprovesOnItsSeedGivenBudget) {
  const EtcMatrix etc = small_instance(96, 8);
  Rng rng(29);
  const double seed_fitness =
      make_individual(construct_schedule(HeuristicKind::kMct, etc, rng),
                      etc, FitnessWeights{}).fitness;
  LahcMember member;
  StopCondition stop;
  stop.max_evaluations = 20'000;
  const MemberResult result = member.solve(etc, stop, {}, 29);
  EXPECT_LT(result.best.fitness, seed_fitness);
  EXPECT_LE(result.evaluations, 20'000 + 1);
}

TEST(LahcMember, DeterministicInSeed) {
  const EtcMatrix etc = small_instance(48, 6);
  LahcMember member;
  StopCondition stop;
  stop.max_evaluations = 3'000;
  const MemberResult a = member.solve(etc, stop, {}, 41);
  const MemberResult b = member.solve(etc, stop, {}, 41);
  EXPECT_EQ(a.best.schedule, b.best.schedule);
  EXPECT_EQ(a.best.fitness, b.best.fitness);
  EXPECT_EQ(a.evaluations, b.evaluations);
}

TEST(Portfolio, DefaultMembersIncludeLahc) {
  const PortfolioConfig config;
  const auto members = PortfolioBatchScheduler::default_members(config);
  EXPECT_TRUE(std::any_of(members.begin(), members.end(),
                          [](const auto& m) { return m->name() == "LAHC"; }));
}

TEST(Portfolio, DeterministicUnderFixedSeed) {
  const EtcMatrix etc = small_instance();
  PortfolioConfig config = deterministic_config();

  PortfolioBatchScheduler a(config,
                            PortfolioBatchScheduler::default_members(config));
  PortfolioBatchScheduler b(config,
                            PortfolioBatchScheduler::default_members(config));
  const Schedule plan_a = a.schedule_batch(etc);
  const Schedule plan_b = b.schedule_batch(etc);
  EXPECT_EQ(plan_a, plan_b);
  ASSERT_EQ(a.activations().size(), 1u);
  ASSERT_EQ(b.activations().size(), 1u);
  EXPECT_EQ(a.activations()[0].winner, b.activations()[0].winner);
  EXPECT_DOUBLE_EQ(a.activations()[0].best_fitness,
                   b.activations()[0].best_fitness);

  // And across consecutive activations (warm start included).
  EXPECT_EQ(a.schedule_batch(etc), b.schedule_batch(etc));
}

TEST(Portfolio, NeverLosesToItsConstructiveMembers) {
  const EtcMatrix etc = small_instance(64, 8);
  PortfolioConfig config = deterministic_config();
  config.member_stop = StopCondition{.max_evaluations = 60};  // starved
  PortfolioBatchScheduler portfolio(
      config, PortfolioBatchScheduler::default_members(config));
  const Schedule plan = portfolio.schedule_batch(etc);
  const Individual planned = make_individual(plan, etc, config.weights);
  const Individual minmin =
      make_individual(min_min(etc), etc, config.weights);
  const Individual from_mct = make_individual(mct(etc), etc, config.weights);
  EXPECT_LE(planned.fitness, minmin.fitness + 1e-9);
  EXPECT_LE(planned.fitness, from_mct.fitness + 1e-9);
}

TEST(Portfolio, MembersRespectTheActivationBudget) {
  const EtcMatrix etc = small_instance(96, 12);
  PortfolioConfig config;
  config.budget_ms = 50.0;
  config.threads = 2;  // no member_stop: only the deadline bounds them
  PortfolioBatchScheduler portfolio(
      config, PortfolioBatchScheduler::default_members(config));
  const Schedule plan = portfolio.schedule_batch(etc);
  EXPECT_TRUE(plan.complete(etc.num_machines()));
  // Cooperative cancellation: a member overshoots by at most one
  // local-search pass plus scheduling jitter. The tolerance is deliberately
  // loose (CI runners get preempted); what it must catch is a member
  // ignoring the deadline and running to its own stop condition.
  const double tolerance_ms = 2'000.0;
  for (const MemberStats& stat : portfolio.member_stats()) {
    if (stat.runs == 0) continue;
    EXPECT_LE(stat.total_ms, config.budget_ms + tolerance_ms)
        << stat.name << " overshot the activation budget";
  }
}

TEST(Portfolio, WarmStartCacheFillsAndFeedsTheNextActivation) {
  const EtcMatrix etc = small_instance(32, 6);
  PortfolioConfig config = deterministic_config();
  PortfolioBatchScheduler portfolio(
      config, PortfolioBatchScheduler::default_members(config));
  EXPECT_TRUE(portfolio.cache().empty());
  (void)portfolio.schedule_batch(etc);
  EXPECT_FALSE(portfolio.cache().empty());
  // Second activation consumes the cache without blowing up, and still
  // returns a complete schedule.
  const Schedule plan = portfolio.schedule_batch(etc);
  EXPECT_TRUE(plan.complete(etc.num_machines()));
}

TEST(Portfolio, UcbPolicySkipsMembersAndStillSchedules) {
  const EtcMatrix etc = small_instance(32, 6);
  PortfolioConfig config = deterministic_config();
  config.policy = PolicyKind::kUcb;
  config.ucb = UcbConfig{.exploration = 0.2, .max_active = 1};
  PortfolioBatchScheduler portfolio(
      config, PortfolioBatchScheduler::default_members(config));
  EXPECT_EQ(portfolio.name(), "Portfolio(ucb)");
  for (int i = 0; i < 4; ++i) {
    const Schedule plan = portfolio.schedule_batch(etc);
    EXPECT_TRUE(plan.complete(etc.num_machines()));
  }
  // Exactly one expensive member races per activation (plus the two free
  // heuristics): per-activation runs sum to 3 members.
  int expensive_runs = 0;
  for (const MemberStats& stat : portfolio.member_stats()) {
    if (stat.name != "MCT" && stat.name != "Min-Min") {
      expensive_runs += stat.runs;
    }
  }
  EXPECT_EQ(expensive_runs, 4);
}

TEST(Portfolio, SharedPoolMatchesOwnedPool) {
  const EtcMatrix etc = small_instance();
  PortfolioConfig config = deterministic_config();
  PortfolioBatchScheduler owned(
      config, PortfolioBatchScheduler::default_members(config));
  ThreadPool shared(2);
  PortfolioBatchScheduler on_shared(
      config, PortfolioBatchScheduler::default_members(config), shared);
  // Evaluation-bounded members are deterministic regardless of which pool
  // executes them, so the two portfolios must agree bitwise.
  EXPECT_EQ(owned.schedule_batch(etc), on_shared.schedule_batch(etc));
  EXPECT_EQ(owned.schedule_batch(etc), on_shared.schedule_batch(etc));
}

TEST(Portfolio, TwoPortfoliosRaceConcurrentlyOnOneSharedPool) {
  // Group-scoped racing is what makes this legal: each schedule_batch
  // waits on its own TaskGroup instead of draining the shared pool, so
  // two portfolios may race at the same time — the sharded service's
  // concurrent shard activation relies on exactly this.
  const EtcMatrix etc_a = small_instance(48, 8, 3);
  const EtcMatrix etc_b = small_instance(40, 6, 9);
  PortfolioConfig config = deterministic_config();

  // Reference answers from solo runs.
  PortfolioBatchScheduler solo_a(
      config, PortfolioBatchScheduler::default_members(config));
  PortfolioBatchScheduler solo_b(
      config, PortfolioBatchScheduler::default_members(config));
  const Schedule want_a = solo_a.schedule_batch(etc_a);
  const Schedule want_b = solo_b.schedule_batch(etc_b);

  ThreadPool shared(2);
  PortfolioBatchScheduler concurrent_a(
      config, PortfolioBatchScheduler::default_members(config), shared);
  PortfolioBatchScheduler concurrent_b(
      config, PortfolioBatchScheduler::default_members(config), shared);
  Schedule got_a;
  std::thread racer([&] { got_a = concurrent_a.schedule_batch(etc_a); });
  const Schedule got_b = concurrent_b.schedule_batch(etc_b);
  racer.join();
  // Evaluation-bounded members are deterministic regardless of pool
  // sharing and interleaving, so both concurrent races must agree bitwise
  // with their solo references.
  EXPECT_EQ(got_a, want_a);
  EXPECT_EQ(got_b, want_b);
}

TEST(Portfolio, SetBudgetRearmsTheDeadline) {
  PortfolioConfig config = deterministic_config();
  PortfolioBatchScheduler portfolio(
      config, PortfolioBatchScheduler::default_members(config));
  portfolio.set_budget_ms(123.0);
  EXPECT_DOUBLE_EQ(portfolio.config().budget_ms, 123.0);
  EXPECT_THROW(portfolio.set_budget_ms(0.0), std::invalid_argument);
}

TEST(Portfolio, SingleJobBatchShortcut) {
  EtcMatrix etc(1, 3, {30, 10, 20});
  PortfolioConfig config = deterministic_config();
  PortfolioBatchScheduler portfolio(
      config, PortfolioBatchScheduler::default_members(config));
  const Schedule s = portfolio.schedule_batch(etc);
  EXPECT_EQ(s[0], 1);
}

TEST(Portfolio, RejectsBadConfigs) {
  PortfolioConfig config = deterministic_config();
  EXPECT_THROW(PortfolioBatchScheduler(config, {}), std::invalid_argument);
  config.budget_ms = 0.0;
  EXPECT_THROW(PortfolioBatchScheduler(
                   config, PortfolioBatchScheduler::default_members(config)),
               std::invalid_argument);
}

TEST(Portfolio, RunsTheDynamicGridEndToEnd) {
  SimConfig sim_config;
  sim_config.horizon = 300.0;
  sim_config.arrival_rate = 0.4;
  sim_config.scheduler_period = 50.0;
  sim_config.num_machines = 5;
  sim_config.machine_mtbf = 120.0;  // churn exercises the machine remap
  sim_config.machine_mttr = 40.0;
  sim_config.seed = 17;
  GridSimulator sim(sim_config);

  PortfolioConfig config = deterministic_config();
  config.member_stop = StopCondition{.max_evaluations = 120};
  PortfolioBatchScheduler portfolio(
      config, PortfolioBatchScheduler::default_members(config));
  const SimMetrics metrics = sim.run(portfolio);
  EXPECT_EQ(metrics.jobs_completed, metrics.jobs_arrived);
  EXPECT_FALSE(portfolio.activations().empty());
  for (const ActivationRecord& record : portfolio.activations()) {
    EXPECT_GE(record.winner, 0);
    EXPECT_FALSE(record.winner_name.empty());
    EXPECT_GT(record.best_fitness, 0.0);
  }
}

TEST(BatchContext, IdentityCoversTheMatrix) {
  EtcMatrix etc(3, 2);
  const BatchContext ctx = BatchContext::identity(etc, 5);
  EXPECT_EQ(ctx.job_ids, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(ctx.machine_ids, (std::vector<int>{0, 1}));
  EXPECT_EQ(ctx.activation, 5u);
}

// --------------------------------------------------- warm-started engine --

TEST(CmaWarmStart, SeededScheduleBoundsTheResult) {
  const EtcMatrix etc = small_instance(40, 8);
  CmaConfig config;
  config.stop = StopCondition{.max_evaluations = 30};
  const Schedule seed_schedule = min_min(etc);
  const Individual seeded =
      make_individual(seed_schedule, etc, config.weights);
  const std::vector<Schedule> warm{seed_schedule};
  const EvolutionResult result =
      CellularMemeticAlgorithm(config).run(etc, warm);
  // The warm elite enters the mesh and is only ever improved.
  EXPECT_LE(result.best.fitness, seeded.fitness + 1e-9);
}

TEST(CmaWarmStart, RejectsIllFittingSchedules) {
  const EtcMatrix etc = small_instance(10, 4);
  CmaConfig config;
  config.stop = StopCondition{.max_evaluations = 10};
  const std::vector<Schedule> wrong_size{Schedule(3, 0)};
  EXPECT_THROW((void)CellularMemeticAlgorithm(config).run(etc, wrong_size),
               std::invalid_argument);
}

TEST(CmaWarmStart, FinalPopulationExportedOnRequest) {
  const EtcMatrix etc = small_instance(12, 4);
  CmaConfig config;
  config.stop = StopCondition{.max_evaluations = 40};
  config.keep_final_population = true;
  const EvolutionResult result = CellularMemeticAlgorithm(config).run(etc);
  EXPECT_EQ(result.population.size(),
            static_cast<std::size_t>(config.pop_height * config.pop_width));
  CmaConfig plain = config;
  plain.keep_final_population = false;
  EXPECT_TRUE(CellularMemeticAlgorithm(plain).run(etc).population.empty());
}

}  // namespace
}  // namespace gridsched
