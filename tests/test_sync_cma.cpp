#include "cma/sync_cma.h"

#include <gtest/gtest.h>

#include "cma/cma.h"
#include "etc/instance.h"
#include "heuristics/constructive.h"

namespace gridsched {
namespace {

EtcMatrix small_instance() {
  InstanceSpec spec;
  spec.num_jobs = 64;
  spec.num_machines = 8;
  return generate_instance(spec);
}

CmaConfig fast_config(std::int64_t iterations = 12) {
  CmaConfig config;
  config.stop = StopCondition{.max_iterations = iterations};
  config.seed = 777;
  return config;
}

TEST(SyncCma, ProducesCompleteScheduleWithConsistentObjectives) {
  const EtcMatrix etc = small_instance();
  const auto result = SynchronousCellularMa(fast_config()).run(etc);
  EXPECT_TRUE(result.best.schedule.complete(etc.num_machines()));
  const Individual check =
      make_individual(result.best.schedule, etc, FitnessWeights{});
  EXPECT_DOUBLE_EQ(check.fitness, result.best.fitness);
}

TEST(SyncCma, ImprovesOnTheSeed) {
  const EtcMatrix etc = small_instance();
  const Individual seed =
      make_individual(ljfr_sjfr(etc), etc, FitnessWeights{});
  const auto result = SynchronousCellularMa(fast_config(40)).run(etc);
  EXPECT_LT(result.best.fitness, seed.fitness);
}

TEST(SyncCma, DeterministicForFixedSeed) {
  const EtcMatrix etc = small_instance();
  const auto a = SynchronousCellularMa(fast_config()).run(etc);
  const auto b = SynchronousCellularMa(fast_config()).run(etc);
  EXPECT_EQ(a.best.schedule, b.best.schedule);
  EXPECT_EQ(a.evaluations, b.evaluations);
}

TEST(SyncCma, BitwiseIdenticalAcrossThreadCounts) {
  // The signature property of the synchronous engine: per-cell RNG streams
  // make the parallel schedule irrelevant to the result.
  const EtcMatrix etc = small_instance();
  const auto sequential = SynchronousCellularMa(fast_config(), 0).run(etc);
  const auto two_threads = SynchronousCellularMa(fast_config(), 2).run(etc);
  const auto eight_threads = SynchronousCellularMa(fast_config(), 8).run(etc);
  EXPECT_EQ(sequential.best.schedule, two_threads.best.schedule);
  EXPECT_EQ(sequential.best.schedule, eight_threads.best.schedule);
  EXPECT_DOUBLE_EQ(sequential.best.fitness, eight_threads.best.fitness);
  EXPECT_EQ(sequential.evaluations, eight_threads.evaluations);
}

TEST(SyncCma, EvaluationCountIsOneGenerationPerIteration) {
  const EtcMatrix etc = small_instance();
  const auto result = SynchronousCellularMa(fast_config(5)).run(etc);
  // 25 init + 5 generations x 25 cells.
  EXPECT_EQ(result.evaluations, 25 + 5 * 25);
  EXPECT_EQ(result.iterations, 5);
}

TEST(SyncCma, BestFitnessNeverWorsensAcrossGenerations) {
  const EtcMatrix etc = small_instance();
  CmaConfig config = fast_config(30);
  config.record_progress = true;
  const auto result = SynchronousCellularMa(config).run(etc);
  for (std::size_t i = 1; i < result.progress.size(); ++i) {
    EXPECT_LE(result.progress[i].best_fitness,
              result.progress[i - 1].best_fitness + 1e-9);
  }
}

TEST(SyncCma, ObserverSeesEveryGeneration) {
  const EtcMatrix etc = small_instance();
  CmaConfig config = fast_config(7);
  int calls = 0;
  config.observer = [&](std::int64_t iteration,
                        std::span<const Individual> population) {
    ++calls;
    EXPECT_EQ(population.size(), 25u);
    EXPECT_EQ(iteration, calls);
  };
  (void)SynchronousCellularMa(config).run(etc);
  EXPECT_EQ(calls, 7);
}

TEST(SyncCma, InvalidConfigsThrow) {
  CmaConfig no_stop;
  no_stop.stop = StopCondition{};
  EXPECT_THROW(SynchronousCellularMa{no_stop}, std::invalid_argument);
  EXPECT_THROW(SynchronousCellularMa(fast_config(), -1),
               std::invalid_argument);
}

TEST(SyncCma, ComparableQualityToAsyncAtEqualEvaluations) {
  // Not a strict dominance claim — just that the synchronous variant is a
  // working optimizer in the same league, not a broken port.
  const EtcMatrix etc = small_instance();
  CmaConfig sync_config = fast_config(40);  // 25 + 1000 evals
  const auto sync_result = SynchronousCellularMa(sync_config).run(etc);

  CmaConfig async_config;
  async_config.stop = StopCondition{.max_evaluations = 1'025};
  async_config.seed = 777;
  const auto async_result = CellularMemeticAlgorithm(async_config).run(etc);

  const Individual seed =
      make_individual(ljfr_sjfr(etc), etc, FitnessWeights{});
  EXPECT_LT(sync_result.best.fitness, seed.fitness);
  EXPECT_LT(sync_result.best.fitness, 2.0 * async_result.best.fitness);
}

}  // namespace
}  // namespace gridsched
