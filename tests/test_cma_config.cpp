// Pins the library defaults to Table 1 of the paper. If any default drifts,
// this test names the parameter that no longer matches the publication.
#include "cma/config.h"

#include <gtest/gtest.h>

namespace gridsched {
namespace {

TEST(CmaConfigTable1, PopulationIsFiveByFive) {
  const CmaConfig config;
  EXPECT_EQ(config.pop_height, 5);
  EXPECT_EQ(config.pop_width, 5);
}

TEST(CmaConfigTable1, NeighborhoodIsC9) {
  EXPECT_EQ(CmaConfig{}.neighborhood, NeighborhoodKind::kC9);
}

TEST(CmaConfigTable1, RecombinationOrderIsFls) {
  EXPECT_EQ(CmaConfig{}.recombination_order, SweepKind::kFixedLineSweep);
}

TEST(CmaConfigTable1, MutationOrderIsNrs) {
  EXPECT_EQ(CmaConfig{}.mutation_order, SweepKind::kNewRandomSweep);
}

TEST(CmaConfigTable1, TwentyFiveRecombinationsTwelveMutations) {
  const CmaConfig config;
  EXPECT_EQ(config.recombinations_per_iteration, 25);
  EXPECT_EQ(config.mutations_per_iteration, 12);
}

TEST(CmaConfigTable1, ThreeSolutionsToRecombine) {
  EXPECT_EQ(CmaConfig{}.parents_per_recombination, 3);
}

TEST(CmaConfigTable1, ThreeTournamentSelection) {
  const CmaConfig config;
  EXPECT_EQ(config.selection.kind, SelectionKind::kTournament);
  EXPECT_EQ(config.selection.tournament_size, 3);
}

TEST(CmaConfigTable1, OnePointRecombination) {
  EXPECT_EQ(CmaConfig{}.crossover, CrossoverKind::kOnePoint);
}

TEST(CmaConfigTable1, RebalanceMutation) {
  EXPECT_EQ(CmaConfig{}.mutation, MutationKind::kRebalance);
}

TEST(CmaConfigTable1, LmctsLocalSearchWithFiveIterations) {
  const CmaConfig config;
  EXPECT_EQ(config.local_search.kind, LocalSearchKind::kLmcts);
  EXPECT_EQ(config.local_search.iterations, 5);
}

TEST(CmaConfigTable1, AddOnlyIfBetter) {
  EXPECT_TRUE(CmaConfig{}.add_only_if_better);
}

TEST(CmaConfigTable1, StartChoiceIsLjfrSjfr) {
  EXPECT_EQ(CmaConfig{}.init, InitKind::kLjfrSjfr);
}

TEST(CmaConfigTable1, LambdaIsThreeQuarters) {
  EXPECT_DOUBLE_EQ(CmaConfig{}.weights.lambda, 0.75);
}

TEST(CmaConfigTable1, MaxExecTimeIsNinetySeconds) {
  EXPECT_DOUBLE_EQ(CmaConfig{}.stop.max_time_ms, 90'000.0);
}

TEST(CmaConfig, DescribeMentionsKeyParameters) {
  const std::string text = CmaConfig{}.describe();
  for (const char* token : {"5x5", "C9", "FLS", "NRS", "OnePoint",
                            "Rebalance", "LMCTS", "0.75"}) {
    EXPECT_NE(text.find(token), std::string::npos) << token;
  }
}

}  // namespace
}  // namespace gridsched
