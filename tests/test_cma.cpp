#include "cma/cma.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "etc/instance.h"
#include "heuristics/constructive.h"

namespace gridsched {
namespace {

EtcMatrix small_instance(Consistency consistency = Consistency::kConsistent) {
  InstanceSpec spec;
  spec.num_jobs = 64;
  spec.num_machines = 8;
  spec.consistency = consistency;
  return generate_instance(spec);
}

/// Evaluation-bounded config so tests are timing-independent.
CmaConfig fast_config(std::int64_t evaluations = 2'000) {
  CmaConfig config;
  config.stop = StopCondition{.max_evaluations = evaluations};
  config.seed = 12345;
  return config;
}

TEST(Cma, ProducesCompleteScheduleWithConsistentObjectives) {
  const EtcMatrix etc = small_instance();
  const auto result = CellularMemeticAlgorithm(fast_config()).run(etc);
  EXPECT_TRUE(result.best.schedule.complete(etc.num_machines()));
  const Individual check =
      make_individual(result.best.schedule, etc, FitnessWeights{});
  EXPECT_DOUBLE_EQ(check.fitness, result.best.fitness);
  EXPECT_DOUBLE_EQ(check.objectives.makespan, result.best.objectives.makespan);
  EXPECT_DOUBLE_EQ(check.objectives.flowtime, result.best.objectives.flowtime);
}

TEST(Cma, ImprovesOnTheLjfrSjfrSeed) {
  const EtcMatrix etc = small_instance();
  const Individual seed =
      make_individual(ljfr_sjfr(etc), etc, FitnessWeights{});
  const auto result = CellularMemeticAlgorithm(fast_config(4'000)).run(etc);
  EXPECT_LT(result.best.fitness, seed.fitness);
}

TEST(Cma, BeatsPureRandomSearchAtEqualEvaluations) {
  const EtcMatrix etc = small_instance(Consistency::kInconsistent);
  const std::int64_t budget = 3'000;
  const auto result =
      CellularMemeticAlgorithm(fast_config(budget)).run(etc);

  Rng rng(777);
  double best_random = std::numeric_limits<double>::infinity();
  for (std::int64_t i = 0; i < budget; ++i) {
    const auto ind = make_individual(
        Schedule::random(etc.num_jobs(), etc.num_machines(), rng), etc,
        FitnessWeights{});
    best_random = std::min(best_random, ind.fitness);
  }
  EXPECT_LT(result.best.fitness, best_random);
}

TEST(Cma, DeterministicForFixedSeed) {
  const EtcMatrix etc = small_instance();
  const auto a = CellularMemeticAlgorithm(fast_config()).run(etc);
  const auto b = CellularMemeticAlgorithm(fast_config()).run(etc);
  EXPECT_EQ(a.best.schedule, b.best.schedule);
  EXPECT_DOUBLE_EQ(a.best.fitness, b.best.fitness);
  EXPECT_EQ(a.evaluations, b.evaluations);
  EXPECT_EQ(a.iterations, b.iterations);
}

TEST(Cma, DifferentSeedsExploreDifferently) {
  const EtcMatrix etc = small_instance();
  CmaConfig c1 = fast_config();
  CmaConfig c2 = fast_config();
  c2.seed = 54321;
  const auto a = CellularMemeticAlgorithm(c1).run(etc);
  const auto b = CellularMemeticAlgorithm(c2).run(etc);
  EXPECT_NE(a.best.schedule, b.best.schedule);
}

TEST(Cma, RespectsEvaluationBudget) {
  const EtcMatrix etc = small_instance();
  const auto result = CellularMemeticAlgorithm(fast_config(500)).run(etc);
  // The engine checks the budget between offspring, so overshoot is at
  // most one offspring.
  EXPECT_GE(result.evaluations, 500);
  EXPECT_LE(result.evaluations, 502);
}

TEST(Cma, RespectsIterationBudget) {
  const EtcMatrix etc = small_instance();
  CmaConfig config = fast_config();
  config.stop = StopCondition{.max_iterations = 3};
  const auto result = CellularMemeticAlgorithm(config).run(etc);
  EXPECT_EQ(result.iterations, 3);
  // 25 initial + 3 * (25 recombinations + 12 mutations).
  EXPECT_EQ(result.evaluations, 25 + 3 * 37);
}

TEST(Cma, RespectsWallClockBudget) {
  const EtcMatrix etc = small_instance();
  CmaConfig config = fast_config();
  config.stop = StopCondition{.max_time_ms = 50.0};
  const auto result = CellularMemeticAlgorithm(config).run(etc);
  EXPECT_LT(result.elapsed_ms, 500.0);  // generous CI slack
}

TEST(Cma, ProgressTraceIsMonotoneNonIncreasing) {
  const EtcMatrix etc = small_instance();
  CmaConfig config = fast_config(3'000);
  config.record_progress = true;
  const auto result = CellularMemeticAlgorithm(config).run(etc);
  ASSERT_FALSE(result.progress.empty());
  for (std::size_t i = 1; i < result.progress.size(); ++i) {
    EXPECT_LE(result.progress[i].best_fitness,
              result.progress[i - 1].best_fitness + 1e-9);
    EXPECT_GE(result.progress[i].time_ms,
              result.progress[i - 1].time_ms - 1e-9);
  }
  EXPECT_DOUBLE_EQ(result.progress.back().best_fitness, result.best.fitness);
}

TEST(Cma, ProgressOffByDefaultKeepsTraceEmpty) {
  const EtcMatrix etc = small_instance();
  const auto result = CellularMemeticAlgorithm(fast_config(600)).run(etc);
  EXPECT_TRUE(result.progress.empty());
}

TEST(Cma, AllNeighborhoodsRun) {
  const EtcMatrix etc = small_instance();
  for (NeighborhoodKind kind :
       {NeighborhoodKind::kPanmictic, NeighborhoodKind::kL5,
        NeighborhoodKind::kL9, NeighborhoodKind::kC9,
        NeighborhoodKind::kC13}) {
    CmaConfig config = fast_config(800);
    config.neighborhood = kind;
    const auto result = CellularMemeticAlgorithm(config).run(etc);
    EXPECT_TRUE(result.best.schedule.complete(etc.num_machines()))
        << neighborhood_name(kind);
  }
}

TEST(Cma, AllSweepOrdersRun) {
  const EtcMatrix etc = small_instance();
  for (SweepKind kind : {SweepKind::kFixedLineSweep,
                         SweepKind::kFixedRandomSweep,
                         SweepKind::kNewRandomSweep}) {
    CmaConfig config = fast_config(800);
    config.recombination_order = kind;
    config.mutation_order = kind;
    const auto result = CellularMemeticAlgorithm(config).run(etc);
    EXPECT_TRUE(result.best.schedule.complete(etc.num_machines()))
        << sweep_name(kind);
  }
}

TEST(Cma, AllLocalSearchMethodsRun) {
  const EtcMatrix etc = small_instance();
  for (LocalSearchKind kind :
       {LocalSearchKind::kNone, LocalSearchKind::kLocalMove,
        LocalSearchKind::kSteepestLocalMove, LocalSearchKind::kLmcts}) {
    CmaConfig config = fast_config(800);
    config.local_search.kind = kind;
    const auto result = CellularMemeticAlgorithm(config).run(etc);
    EXPECT_TRUE(result.best.schedule.complete(etc.num_machines()))
        << local_search_name(kind);
  }
}

TEST(Cma, RandomInitAlsoWorks) {
  const EtcMatrix etc = small_instance();
  CmaConfig config = fast_config(1'000);
  config.init = InitKind::kRandom;
  const auto result = CellularMemeticAlgorithm(config).run(etc);
  EXPECT_TRUE(result.best.schedule.complete(etc.num_machines()));
}

TEST(Cma, InitialPopulationSeedsWithLjfrSjfr) {
  const EtcMatrix etc = small_instance();
  const CellularMemeticAlgorithm cma(fast_config());
  Rng rng(1);
  const auto population = cma.initialize_population(etc, rng);
  ASSERT_EQ(population.size(), 25u);
  EXPECT_EQ(population[0].schedule, ljfr_sjfr(etc));
  // The rest are perturbed copies, not duplicates of the seed.
  int identical = 0;
  for (std::size_t i = 1; i < population.size(); ++i) {
    identical += (population[i].schedule == population[0].schedule) ? 1 : 0;
  }
  EXPECT_EQ(identical, 0);
}

TEST(Cma, AddOnlyIfBetterKeepsPopulationFromWorsening) {
  // With replacement gated on improvement, the best individual can only
  // improve; sanity-check by comparing against the seed's fitness at a few
  // budget checkpoints.
  const EtcMatrix etc = small_instance();
  double previous = std::numeric_limits<double>::infinity();
  for (std::int64_t budget : {200, 800, 2'400}) {
    const auto result =
        CellularMemeticAlgorithm(fast_config(budget)).run(etc);
    EXPECT_LE(result.best.fitness, previous + 1e-9);
    previous = result.best.fitness;
  }
}

TEST(Cma, InvalidConfigsThrow) {
  CmaConfig no_stop;
  no_stop.stop = StopCondition{};
  EXPECT_THROW(CellularMemeticAlgorithm{no_stop}, std::invalid_argument);

  CmaConfig one_parent = fast_config();
  one_parent.parents_per_recombination = 1;
  EXPECT_THROW(CellularMemeticAlgorithm{one_parent}, std::invalid_argument);

  CmaConfig empty_pop = fast_config();
  empty_pop.pop_height = 0;
  EXPECT_THROW(CellularMemeticAlgorithm{empty_pop}, std::invalid_argument);
}

TEST(Cma, TinyInstancesDoNotCrash) {
  InstanceSpec spec;
  spec.num_jobs = 2;
  spec.num_machines = 2;
  const EtcMatrix etc = generate_instance(spec);
  const auto result = CellularMemeticAlgorithm(fast_config(300)).run(etc);
  EXPECT_TRUE(result.best.schedule.complete(2));
}

TEST(Cma, ObserverSeesEveryIteration) {
  const EtcMatrix etc = small_instance();
  CmaConfig config = fast_config();
  config.stop = StopCondition{.max_iterations = 6};
  int calls = 0;
  config.observer = [&](std::int64_t iteration,
                        std::span<const Individual> population) {
    ++calls;
    EXPECT_EQ(iteration, calls);
    EXPECT_EQ(population.size(), 25u);
    for (const auto& individual : population) {
      EXPECT_TRUE(individual.schedule.complete(etc.num_machines()));
    }
  };
  (void)CellularMemeticAlgorithm(config).run(etc);
  EXPECT_EQ(calls, 6);
}

TEST(Cma, ReadyTimesAreRespected) {
  // Batch-mode deployment: machines carry backlogs. The cMA must produce
  // schedules whose objectives account for them (makespan can never fall
  // below the largest backlog).
  EtcMatrix etc = small_instance();
  etc.set_ready_time(0, 1e9);
  const auto result = CellularMemeticAlgorithm(fast_config(800)).run(etc);
  EXPECT_GE(result.best.objectives.makespan, 1e9);
  // And the optimizer should learn to avoid the blocked machine almost
  // entirely (any job there only raises completion beyond the backlog).
  int on_blocked = 0;
  for (JobId j = 0; j < etc.num_jobs(); ++j) {
    on_blocked += (result.best.schedule[j] == 0) ? 1 : 0;
  }
  EXPECT_LT(on_blocked, etc.num_jobs() / 4);
}

TEST(Cma, WorksOnEveryBenchmarkClass) {
  for (const InstanceSpec& base : braun_benchmark_suite()) {
    InstanceSpec spec = base;
    spec.num_jobs = 48;
    spec.num_machines = 6;
    const EtcMatrix etc = generate_instance(spec);
    const auto result = CellularMemeticAlgorithm(fast_config(600)).run(etc);
    EXPECT_TRUE(result.best.schedule.complete(6)) << base.name();
    const Individual seed =
        make_individual(ljfr_sjfr(etc), etc, FitnessWeights{});
    EXPECT_LE(result.best.fitness, seed.fitness) << base.name();
  }
}

}  // namespace
}  // namespace gridsched
