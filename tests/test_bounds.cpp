#include "core/bounds.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "cma/cma.h"
#include "core/evaluator.h"
#include "etc/instance.h"
#include "heuristics/constructive.h"

namespace gridsched {
namespace {

TEST(Bounds, HandComputedTinyInstance) {
  //          m0   m1
  // job 0     2    4
  // job 1     3    1
  // job 2     5    2
  EtcMatrix etc(3, 2, {2, 4, 3, 1, 5, 2});
  EXPECT_DOUBLE_EQ(ready_time_bound(etc), 0.0);
  // min per job: 2, 1, 2 -> job bound 2; load bound (2+1+2)/2 = 2.5.
  EXPECT_DOUBLE_EQ(job_lower_bound(etc), 2.0);
  EXPECT_DOUBLE_EQ(load_lower_bound(etc), 2.5);
  EXPECT_DOUBLE_EQ(makespan_lower_bound(etc), 2.5);
  EXPECT_DOUBLE_EQ(flowtime_lower_bound(etc), 5.0);
}

TEST(Bounds, ReadyTimesRaiseTheFloor) {
  EtcMatrix etc(1, 2, {10, 10});
  etc.set_ready_time(0, 100.0);
  // The job can run on m1 (completion 10), but m0 still finishes its
  // backlog at 100 -> makespan >= 100.
  EXPECT_DOUBLE_EQ(ready_time_bound(etc), 100.0);
  EXPECT_DOUBLE_EQ(makespan_lower_bound(etc), 100.0);
}

TEST(Bounds, JobBoundDominatesWhenOneJobIsHuge) {
  EtcMatrix etc(2, 2, {1, 1, 1'000, 2'000});
  EXPECT_DOUBLE_EQ(job_lower_bound(etc), 1'000.0);
  EXPECT_DOUBLE_EQ(load_lower_bound(etc), 500.5);
  EXPECT_DOUBLE_EQ(makespan_lower_bound(etc), 1'000.0);
}

std::string param_name(const ::testing::TestParamInfo<InstanceSpec>& info) {
  std::string name = info.param.name();
  std::replace(name.begin(), name.end(), '.', '_');
  return name;
}

class BoundsSuiteTest : public ::testing::TestWithParam<InstanceSpec> {};

INSTANTIATE_TEST_SUITE_P(AllTwelveClasses, BoundsSuiteTest,
                         ::testing::ValuesIn(braun_benchmark_suite()),
                         param_name);

TEST_P(BoundsSuiteTest, EverySchedulerRespectsTheBounds) {
  InstanceSpec spec = GetParam();
  spec.num_jobs = 96;
  spec.num_machines = 8;
  const EtcMatrix etc = generate_instance(spec);
  const double makespan_floor = makespan_lower_bound(etc);
  const double flowtime_floor = flowtime_lower_bound(etc);
  ASSERT_GT(makespan_floor, 0.0);

  ScheduleEvaluator eval(etc);
  Rng rng(3);
  for (HeuristicKind kind : all_heuristics()) {
    eval.reset(construct_schedule(kind, etc, rng));
    EXPECT_GE(eval.makespan(), makespan_floor * (1 - 1e-12))
        << heuristic_name(kind);
    EXPECT_GE(eval.flowtime(), flowtime_floor * (1 - 1e-12))
        << heuristic_name(kind);
  }

  CmaConfig config;
  config.stop = StopCondition{.max_evaluations = 1'000};
  config.seed = 9;
  const auto result = CellularMemeticAlgorithm(config).run(etc);
  EXPECT_GE(result.best.objectives.makespan, makespan_floor * (1 - 1e-12));
  EXPECT_GE(result.best.objectives.flowtime, flowtime_floor * (1 - 1e-12));
}

TEST(Bounds, LoadBoundTightForUniformInstances) {
  // All ETC equal: LB = n*e/m; a balanced schedule achieves it exactly
  // when n is a multiple of m.
  EtcMatrix etc(8, 4, std::vector<double>(32, 5.0));
  EXPECT_DOUBLE_EQ(makespan_lower_bound(etc), 10.0);
  Schedule balanced(8);
  for (JobId j = 0; j < 8; ++j) balanced[j] = j % 4;
  ScheduleEvaluator eval(etc);
  eval.reset(balanced);
  EXPECT_DOUBLE_EQ(eval.makespan(), 10.0);
}

}  // namespace
}  // namespace gridsched
