#include "core/bounds.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "bounds/lower_bound.h"
#include "bounds/simplex.h"
#include "cma/cma.h"
#include "core/evaluator.h"
#include "etc/instance.h"
#include "heuristics/constructive.h"

namespace gridsched {
namespace {

TEST(Bounds, HandComputedTinyInstance) {
  //          m0   m1
  // job 0     2    4
  // job 1     3    1
  // job 2     5    2
  EtcMatrix etc(3, 2, {2, 4, 3, 1, 5, 2});
  EXPECT_DOUBLE_EQ(ready_time_bound(etc), 0.0);
  // min per job: 2, 1, 2 -> job bound 2; load bound (2+1+2)/2 = 2.5.
  EXPECT_DOUBLE_EQ(job_lower_bound(etc), 2.0);
  EXPECT_DOUBLE_EQ(load_lower_bound(etc), 2.5);
  EXPECT_DOUBLE_EQ(makespan_lower_bound(etc), 2.5);
  EXPECT_DOUBLE_EQ(flowtime_lower_bound(etc), 5.0);
}

TEST(Bounds, ReadyTimesRaiseTheFloor) {
  EtcMatrix etc(1, 2, {10, 10});
  etc.set_ready_time(0, 100.0);
  // The job can run on m1 (completion 10), but m0 still finishes its
  // backlog at 100 -> makespan >= 100.
  EXPECT_DOUBLE_EQ(ready_time_bound(etc), 100.0);
  EXPECT_DOUBLE_EQ(makespan_lower_bound(etc), 100.0);
}

TEST(Bounds, JobBoundDominatesWhenOneJobIsHuge) {
  EtcMatrix etc(2, 2, {1, 1, 1'000, 2'000});
  EXPECT_DOUBLE_EQ(job_lower_bound(etc), 1'000.0);
  EXPECT_DOUBLE_EQ(load_lower_bound(etc), 500.5);
  EXPECT_DOUBLE_EQ(makespan_lower_bound(etc), 1'000.0);
}

std::string param_name(const ::testing::TestParamInfo<InstanceSpec>& info) {
  std::string name = info.param.name();
  std::replace(name.begin(), name.end(), '.', '_');
  return name;
}

class BoundsSuiteTest : public ::testing::TestWithParam<InstanceSpec> {};

INSTANTIATE_TEST_SUITE_P(AllTwelveClasses, BoundsSuiteTest,
                         ::testing::ValuesIn(braun_benchmark_suite()),
                         param_name);

TEST_P(BoundsSuiteTest, EverySchedulerRespectsTheBounds) {
  InstanceSpec spec = GetParam();
  spec.num_jobs = 96;
  spec.num_machines = 8;
  const EtcMatrix etc = generate_instance(spec);
  // The LP-relaxation bound dominates the cheap floors wherever the
  // simplex proves optimality (it does at this size), so assert against
  // the combined bound — the strictest floor the library can state.
  const auto bound = bounds::makespan_bound(etc);
  ASSERT_EQ(bound.lp_status, bounds::LpBoundStatus::kOptimal);
  const double makespan_floor = bound.value;
  const double flowtime_floor = flowtime_lower_bound(etc);
  ASSERT_GT(makespan_floor, 0.0);
  EXPECT_GE(bound.value, makespan_lower_bound(etc));

  ScheduleEvaluator eval(etc);
  Rng rng(3);
  for (HeuristicKind kind : all_heuristics()) {
    eval.reset(construct_schedule(kind, etc, rng));
    EXPECT_GE(eval.makespan(), makespan_floor * (1 - 1e-9))
        << heuristic_name(kind);
    EXPECT_GE(eval.flowtime(), flowtime_floor * (1 - 1e-12))
        << heuristic_name(kind);
  }

  CmaConfig config;
  config.stop = StopCondition{.max_evaluations = 1'000};
  config.seed = 9;
  const auto result = CellularMemeticAlgorithm(config).run(etc);
  EXPECT_GE(result.best.objectives.makespan, makespan_floor * (1 - 1e-9));
  EXPECT_GE(result.best.objectives.flowtime, flowtime_floor * (1 - 1e-12));
}

// ---------------------------------------------------------------------------
// The dense two-phase simplex behind the LP-relaxation bound.

TEST(Simplex, SolvesAKnownTinyLp) {
  // min -x - 2y  s.t.  x + y <= 3, x <= 2, y <= 2  ->  x=1, y=2, obj -5.
  bounds::LinearProgram lp;
  lp.objective = {-1.0, -2.0};
  lp.constraints.push_back({{1.0, 1.0}, bounds::Relation::kLessEqual, 3.0});
  lp.constraints.push_back({{1.0, 0.0}, bounds::Relation::kLessEqual, 2.0});
  lp.constraints.push_back({{0.0, 1.0}, bounds::Relation::kLessEqual, 2.0});
  const auto result = bounds::solve_simplex(lp);
  ASSERT_EQ(result.status, bounds::SimplexStatus::kOptimal);
  EXPECT_NEAR(result.objective, -5.0, 1e-9);
  ASSERT_EQ(result.x.size(), 2u);
  EXPECT_NEAR(result.x[0], 1.0, 1e-9);
  EXPECT_NEAR(result.x[1], 2.0, 1e-9);
}

TEST(Simplex, HandlesEqualityAndGreaterEqualRows) {
  // min x + y  s.t.  x + y = 2, x >= 0.5  ->  x=0.5 (any split), obj 2.
  bounds::LinearProgram lp;
  lp.objective = {1.0, 1.0};
  lp.constraints.push_back({{1.0, 1.0}, bounds::Relation::kEqual, 2.0});
  lp.constraints.push_back({{1.0, 0.0}, bounds::Relation::kGreaterEqual, 0.5});
  const auto result = bounds::solve_simplex(lp);
  ASSERT_EQ(result.status, bounds::SimplexStatus::kOptimal);
  EXPECT_NEAR(result.objective, 2.0, 1e-9);
}

TEST(Simplex, DetectsInfeasible) {
  bounds::LinearProgram lp;
  lp.objective = {1.0};
  lp.constraints.push_back({{1.0}, bounds::Relation::kGreaterEqual, 2.0});
  lp.constraints.push_back({{1.0}, bounds::Relation::kLessEqual, 1.0});
  EXPECT_EQ(bounds::solve_simplex(lp).status,
            bounds::SimplexStatus::kInfeasible);
}

TEST(Simplex, DetectsUnbounded) {
  // min -x  s.t.  x >= 1: x can grow forever.
  bounds::LinearProgram lp;
  lp.objective = {-1.0};
  lp.constraints.push_back({{1.0}, bounds::Relation::kGreaterEqual, 1.0});
  EXPECT_EQ(bounds::solve_simplex(lp).status,
            bounds::SimplexStatus::kUnbounded);
}

TEST(Simplex, PivotBudgetIsAFirstClassStatus) {
  bounds::LinearProgram lp;
  lp.objective = {-1.0, -2.0};
  lp.constraints.push_back({{1.0, 1.0}, bounds::Relation::kLessEqual, 3.0});
  lp.constraints.push_back({{1.0, 0.0}, bounds::Relation::kLessEqual, 2.0});
  bounds::SimplexOptions options;
  options.max_pivots = 0;
  EXPECT_EQ(bounds::solve_simplex(lp, options).status,
            bounds::SimplexStatus::kPivotLimit);
}

// ---------------------------------------------------------------------------
// The combined makespan bound (cheap floors + LP relaxation).

/// Exhaustive R||Cmax optimum: all m^n assignments. Only for tiny n.
double exhaustive_optimal_makespan(const EtcMatrix& etc) {
  const int n = etc.num_jobs();
  const int m = etc.num_machines();
  std::vector<int> assign(static_cast<std::size_t>(n), 0);
  std::vector<double> load(static_cast<std::size_t>(m));
  double best = std::numeric_limits<double>::infinity();
  for (;;) {
    for (int k = 0; k < m; ++k) {
      load[static_cast<std::size_t>(k)] = etc.ready_time(k);
    }
    for (int j = 0; j < n; ++j) {
      load[static_cast<std::size_t>(assign[static_cast<std::size_t>(j)])] +=
          etc(j, assign[static_cast<std::size_t>(j)]);
    }
    best = std::min(best, *std::max_element(load.begin(), load.end()));
    int digit = 0;
    while (digit < n && ++assign[static_cast<std::size_t>(digit)] == m) {
      assign[static_cast<std::size_t>(digit)] = 0;
      ++digit;
    }
    if (digit == n) break;
  }
  return best;
}

TEST(LpBound, NeverExceedsTheExhaustiveOptimum) {
  // 6 jobs x 3 machines: 729 schedules, brute-forceable, across all 12
  // Braun classes. The LP value and the combined bound must both sit at
  // or below the true optimum.
  for (InstanceSpec spec : braun_benchmark_suite()) {
    spec.num_jobs = 6;
    spec.num_machines = 3;
    const EtcMatrix etc = generate_instance(spec);
    const double optimal = exhaustive_optimal_makespan(etc);
    const auto bound = bounds::makespan_bound(etc);
    ASSERT_EQ(bound.lp_status, bounds::LpBoundStatus::kOptimal) << spec.name();
    EXPECT_LE(bound.lp, optimal * (1 + 1e-9)) << spec.name();
    EXPECT_LE(bound.value, optimal * (1 + 1e-9)) << spec.name();
    EXPECT_GT(bound.value, 0.0) << spec.name();
  }
}

TEST(LpBound, MatchesTheLoadBoundOnUniformInstances) {
  // All-equal ETC: the LP splits every job evenly, T = n·e/m exactly, and
  // that equals the fractional load bound (here it is tight).
  EtcMatrix etc(8, 4, std::vector<double>(32, 5.0));
  const auto bound = bounds::makespan_bound(etc);
  ASSERT_EQ(bound.lp_status, bounds::LpBoundStatus::kOptimal);
  EXPECT_NEAR(bound.lp, 10.0, 1e-9);
  EXPECT_NEAR(bound.value, 10.0, 1e-9);
}

TEST(LpBound, DominatesTheLoadAndReadyBounds) {
  // Weak LP duality: uniform machine weights recover the load bound and a
  // single-machine weight recovers the ready bound, so the LP optimum can
  // never sit below either (it CAN sit below the per-job bound — next
  // test). Checked across all classes at an odd shape.
  for (InstanceSpec spec : braun_benchmark_suite()) {
    spec.num_jobs = 40;
    spec.num_machines = 7;
    const EtcMatrix etc = generate_instance(spec);
    const auto bound = bounds::makespan_bound(etc);
    ASSERT_EQ(bound.lp_status, bounds::LpBoundStatus::kOptimal) << spec.name();
    EXPECT_GE(bound.lp, load_lower_bound(etc) * (1 - 1e-9)) << spec.name();
    EXPECT_GE(bound.lp, ready_time_bound(etc) * (1 - 1e-9)) << spec.name();
    EXPECT_GE(bound.value, makespan_lower_bound(etc)) << spec.name();
  }
}

TEST(LpBound, CanSitBelowTheJobBoundAndTheMaxStillWins) {
  // One unit job on two machines: the LP splits it (T = 0.5) but no real
  // schedule finishes before 1.0 — which is why the combined bound takes
  // max(cheap, LP) instead of trusting the LP alone.
  EtcMatrix etc(1, 2, {1.0, 1.0});
  const auto bound = bounds::makespan_bound(etc);
  ASSERT_EQ(bound.lp_status, bounds::LpBoundStatus::kOptimal);
  EXPECT_NEAR(bound.lp, 0.5, 1e-9);
  EXPECT_DOUBLE_EQ(bound.value, 1.0);
}

TEST(LpBound, TightensTheCheapBoundOnHeterogeneousMachines) {
  // Three jobs that run 100x slower on m1: the load bound pretends the
  // fast machine can absorb everything, the LP knows the split is lossy.
  EtcMatrix etc(3, 2, {10, 1000, 10, 1000, 10, 1000});
  const auto bound = bounds::makespan_bound(etc);
  ASSERT_EQ(bound.lp_status, bounds::LpBoundStatus::kOptimal);
  EXPECT_GT(bound.lp, makespan_lower_bound(etc) * 1.5);
  // Exhaustive optimum at this size confirms validity.
  EXPECT_LE(bound.value,
            exhaustive_optimal_makespan(etc) * (1 + 1e-9));
}

TEST(LpBound, PivotOrderIsDeterministic) {
  // Bland's rule makes the pivot sequence a pure function of the input:
  // two solves must agree bitwise, pivots included.
  InstanceSpec spec;
  spec.num_jobs = 48;
  spec.num_machines = 6;
  const EtcMatrix etc = generate_instance(spec);
  const auto a = bounds::makespan_bound(etc);
  const auto b = bounds::makespan_bound(etc);
  ASSERT_EQ(a.lp_status, bounds::LpBoundStatus::kOptimal);
  EXPECT_EQ(a.lp, b.lp);        // bitwise, not NEAR
  EXPECT_EQ(a.value, b.value);  // bitwise
  EXPECT_EQ(a.lp_pivots, b.lp_pivots);
}

TEST(LpBound, BudgetKnobsFallBackToTheCheapBound) {
  InstanceSpec spec;
  spec.num_jobs = 24;
  spec.num_machines = 4;
  const EtcMatrix etc = generate_instance(spec);
  const double cheap = makespan_lower_bound(etc);

  bounds::LpOptions disabled;
  disabled.enabled = false;
  auto result = bounds::makespan_bound(etc, disabled);
  EXPECT_EQ(result.lp_status, bounds::LpBoundStatus::kDisabled);
  EXPECT_DOUBLE_EQ(result.value, cheap);

  bounds::LpOptions starved;
  starved.max_pivots = 1;
  result = bounds::makespan_bound(etc, starved);
  EXPECT_EQ(result.lp_status, bounds::LpBoundStatus::kPivotLimit);
  EXPECT_DOUBLE_EQ(result.value, cheap);

  bounds::LpOptions cramped;
  cramped.max_tableau_cells = 16;
  result = bounds::makespan_bound(etc, cramped);
  EXPECT_EQ(result.lp_status, bounds::LpBoundStatus::kTooLarge);
  EXPECT_DOUBLE_EQ(result.value, cheap);
}

TEST(LpBound, GapHelperDefinition) {
  EXPECT_DOUBLE_EQ(bounds::optimality_gap_pct(110.0, 100.0), 10.0);
  EXPECT_DOUBLE_EQ(bounds::optimality_gap_pct(100.0, 100.0), 0.0);
  EXPECT_TRUE(std::isnan(bounds::optimality_gap_pct(100.0, 0.0)));
  EXPECT_TRUE(std::isnan(bounds::optimality_gap_pct(100.0, -1.0)));
}

TEST(Bounds, LoadBoundTightForUniformInstances) {
  // All ETC equal: LB = n*e/m; a balanced schedule achieves it exactly
  // when n is a multiple of m.
  EtcMatrix etc(8, 4, std::vector<double>(32, 5.0));
  EXPECT_DOUBLE_EQ(makespan_lower_bound(etc), 10.0);
  Schedule balanced(8);
  for (JobId j = 0; j < 8; ++j) balanced[j] = j % 4;
  ScheduleEvaluator eval(etc);
  eval.reset(balanced);
  EXPECT_DOUBLE_EQ(eval.makespan(), 10.0);
}

}  // namespace
}  // namespace gridsched
