#include "common/csv.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

namespace gridsched {
namespace {

class CsvTest : public ::testing::Test {
 protected:
  std::string path_ = ::testing::TempDir() + "/gridsched_csv_test.csv";

  void TearDown() override { std::remove(path_.c_str()); }

  std::string slurp() const {
    std::ifstream in(path_);
    std::stringstream ss;
    ss << in.rdbuf();
    return ss.str();
  }
};

TEST_F(CsvTest, PlainRows) {
  {
    CsvWriter csv(path_);
    csv.write_row({"a", "b", "c"});
    csv.write_row({"1", "2", "3"});
  }
  EXPECT_EQ(slurp(), "a,b,c\n1,2,3\n");
}

TEST_F(CsvTest, QuotesFieldsWithCommas) {
  {
    CsvWriter csv(path_);
    csv.write_row({"x,y", "plain"});
  }
  EXPECT_EQ(slurp(), "\"x,y\",plain\n");
}

TEST_F(CsvTest, DoublesEmbeddedQuotes) {
  {
    CsvWriter csv(path_);
    csv.write_row({"say \"hi\""});
  }
  EXPECT_EQ(slurp(), "\"say \"\"hi\"\"\"\n");
}

TEST_F(CsvTest, QuotesNewlines) {
  {
    CsvWriter csv(path_);
    csv.write_row({"two\nlines", "z"});
  }
  EXPECT_EQ(slurp(), "\"two\nlines\",z\n");
}

TEST_F(CsvTest, VectorOverload) {
  {
    CsvWriter csv(path_);
    csv.write_row(std::vector<std::string>{"p", "q"});
  }
  EXPECT_EQ(slurp(), "p,q\n");
}

TEST(CsvField, DoubleRoundTrips) {
  const double v = 7700929.751;
  EXPECT_EQ(std::stod(CsvWriter::field(v)), v);
}

TEST(CsvField, IntegerFormat) {
  EXPECT_EQ(CsvWriter::field(123456789LL), "123456789");
}

TEST(CsvWriterErrors, UnwritablePathThrows) {
  EXPECT_THROW(CsvWriter("/nonexistent-dir-xyz/file.csv"),
               std::runtime_error);
}

}  // namespace
}  // namespace gridsched
