#include "sim/grid_simulator.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "etc/instance.h"

namespace gridsched {
namespace {

SimConfig fast_sim() {
  SimConfig config;
  config.horizon = 400.0;
  config.arrival_rate = 0.5;
  config.scheduler_period = 40.0;
  config.num_machines = 6;
  config.seed = 42;
  return config;
}

TEST(GridSimulator, AllJobsCompleteWithDrain) {
  GridSimulator sim(fast_sim());
  HeuristicBatchScheduler scheduler(HeuristicKind::kMct);
  const SimMetrics metrics = sim.run(scheduler);
  EXPECT_GT(metrics.jobs_arrived, 0);
  EXPECT_EQ(metrics.jobs_completed, metrics.jobs_arrived);
  for (const auto& record : sim.job_records()) {
    EXPECT_GE(record.start, record.arrival);
    EXPECT_GT(record.finish, record.start);
    EXPECT_GE(record.machine, 0);
    EXPECT_EQ(record.attempts, 1);
  }
}

TEST(GridSimulator, DeterministicForSameSeedAndScheduler) {
  GridSimulator sim_a(fast_sim());
  GridSimulator sim_b(fast_sim());
  HeuristicBatchScheduler sched_a(HeuristicKind::kMinMin);
  HeuristicBatchScheduler sched_b(HeuristicKind::kMinMin);
  const SimMetrics a = sim_a.run(sched_a);
  const SimMetrics b = sim_b.run(sched_b);
  EXPECT_EQ(a.jobs_arrived, b.jobs_arrived);
  EXPECT_EQ(a.activations, b.activations);
  EXPECT_DOUBLE_EQ(a.mean_flowtime, b.mean_flowtime);
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
}

TEST(GridSimulator, JobsNeverStartBeforeTheirActivation) {
  SimConfig config = fast_sim();
  GridSimulator sim(config);
  HeuristicBatchScheduler scheduler(HeuristicKind::kOlb);
  (void)sim.run(scheduler);
  for (const auto& record : sim.job_records()) {
    // A job arriving in period k is scheduled at the earliest at the next
    // activation boundary.
    const double activation =
        std::ceil(record.arrival / config.scheduler_period) *
        config.scheduler_period;
    EXPECT_GE(record.start, activation - 1e-9);
  }
}

TEST(GridSimulator, BatchesRespectPeriodBoundaries) {
  GridSimulator sim(fast_sim());
  HeuristicBatchScheduler scheduler(HeuristicKind::kMct);
  const SimMetrics metrics = sim.run(scheduler);
  EXPECT_GT(metrics.activations, 0);
  EXPECT_GT(metrics.mean_batch_size, 0.0);
  // Mean batch size ~ arrival_rate * period.
  EXPECT_NEAR(metrics.mean_batch_size, 0.5 * 40.0, 15.0);
}

TEST(GridSimulator, SlowdownIsAtLeastOne) {
  GridSimulator sim(fast_sim());
  HeuristicBatchScheduler scheduler(HeuristicKind::kMct);
  const SimMetrics metrics = sim.run(scheduler);
  // A job can never finish faster than its ideal dedicated-best-machine
  // run, and batching adds waits, so the mean is strictly above 1.
  EXPECT_GT(metrics.mean_slowdown, 1.0);
}

TEST(GridSimulator, BetterSchedulerGivesLowerSlowdown) {
  SimConfig config = fast_sim();
  config.consistency_noise = 0.6;
  config.arrival_rate = 1.0;
  GridSimulator sim_mct(config);
  HeuristicBatchScheduler mct_sched(HeuristicKind::kMct);
  const double mct_slowdown = sim_mct.run(mct_sched).mean_slowdown;
  GridSimulator sim_olb(config);
  HeuristicBatchScheduler olb_sched(HeuristicKind::kOlb);
  const double olb_slowdown = sim_olb.run(olb_sched).mean_slowdown;
  EXPECT_LT(mct_slowdown, olb_slowdown);
}

TEST(GridSimulator, UtilizationIsAFraction) {
  GridSimulator sim(fast_sim());
  HeuristicBatchScheduler scheduler(HeuristicKind::kMct);
  const SimMetrics metrics = sim.run(scheduler);
  EXPECT_GT(metrics.utilization, 0.0);
  EXPECT_LE(metrics.utilization, 1.0);
}

TEST(GridSimulator, LoadAwareSchedulerBeatsBlindOne) {
  // An inconsistent grid punishes OLB (ignores ETC); MCT must deliver
  // lower mean flowtime.
  SimConfig config = fast_sim();
  config.consistency_noise = 0.6;
  config.arrival_rate = 1.0;

  GridSimulator sim_mct(config);
  HeuristicBatchScheduler mct_sched(HeuristicKind::kMct);
  const double mct_flow = sim_mct.run(mct_sched).mean_flowtime;

  GridSimulator sim_olb(config);
  HeuristicBatchScheduler olb_sched(HeuristicKind::kOlb);
  const double olb_flow = sim_olb.run(olb_sched).mean_flowtime;

  EXPECT_LT(mct_flow, olb_flow);
}

TEST(GridSimulator, CmaBatchSchedulerRunsEndToEnd) {
  SimConfig config = fast_sim();
  config.horizon = 150.0;
  GridSimulator sim(config);
  CmaConfig cma_config;
  cma_config.stop = StopCondition{.max_evaluations = 300};
  CmaBatchScheduler scheduler(cma_config, /*budget_ms=*/15.0);
  const SimMetrics metrics = sim.run(scheduler);
  EXPECT_EQ(metrics.jobs_completed, metrics.jobs_arrived);
  EXPECT_GT(metrics.scheduler_cpu_ms, 0.0);
}

TEST(GridSimulator, MachineChurnRequeuesAndStillCompletes) {
  SimConfig config = fast_sim();
  config.machine_mtbf = 120.0;
  config.machine_mttr = 30.0;
  config.seed = 7;
  GridSimulator sim(config);
  HeuristicBatchScheduler scheduler(HeuristicKind::kMct);
  const SimMetrics metrics = sim.run(scheduler);
  EXPECT_EQ(metrics.jobs_completed, metrics.jobs_arrived);
  // With MTBF ~ 3 periods over a 10-period horizon and 6 machines, some
  // failures are overwhelmingly likely.
  EXPECT_GT(metrics.jobs_requeued, 0);
  int retried = 0;
  for (const auto& record : sim.job_records()) {
    retried += (record.attempts > 1) ? 1 : 0;
  }
  EXPECT_GT(retried, 0);
}

TEST(GridSimulator, ChurnConfigValidation) {
  SimConfig config = fast_sim();
  config.machine_mtbf = 100.0;  // mttr left 0
  EXPECT_THROW(GridSimulator{config}, std::invalid_argument);
}

TEST(GridSimulator, BadConfigsThrow) {
  SimConfig no_machines = fast_sim();
  no_machines.num_machines = 0;
  EXPECT_THROW(GridSimulator{no_machines}, std::invalid_argument);
  SimConfig no_rate = fast_sim();
  no_rate.arrival_rate = 0.0;
  EXPECT_THROW(GridSimulator{no_rate}, std::invalid_argument);
}

TEST(BatchSchedulers, NamesAreMeaningful) {
  HeuristicBatchScheduler h(HeuristicKind::kMinMin);
  EXPECT_EQ(h.name(), "Min-Min");
  CmaConfig cma_config;
  cma_config.stop = StopCondition{.max_evaluations = 10};
  CmaBatchScheduler c(cma_config, 5.0);
  EXPECT_EQ(c.name(), "cMA");
  StruggleGaConfig sg_config;
  StruggleGaBatchScheduler s(sg_config, 5.0);
  EXPECT_EQ(s.name(), "StruggleGA");
}

TEST(GridSimulator, NoDrainLeavesLateArrivalsUnscheduled) {
  SimConfig config = fast_sim();
  config.drain = false;
  // A slow machine set guarantees a backlog at the horizon.
  config.mips_min = 1.0;
  config.mips_max = 2.0;
  GridSimulator sim(config);
  HeuristicBatchScheduler scheduler(HeuristicKind::kMct);
  const SimMetrics metrics = sim.run(scheduler);
  EXPECT_GT(metrics.jobs_arrived, 0);
  // Every *scheduled* job still has consistent records.
  for (const auto& record : sim.job_records()) {
    if (record.finish >= 0) {
      EXPECT_GE(record.start, record.arrival);
      EXPECT_GT(record.finish, record.start);
    }
  }
}

TEST(GridSimulator, CmaFallbackNeverLosesToMinMinOnABatch) {
  // The ensemble rule inside CmaBatchScheduler: its batch fitness is at
  // most Min-Min's, whatever the budget.
  InstanceSpec spec;
  spec.num_jobs = 40;
  spec.num_machines = 8;
  const EtcMatrix etc = generate_instance(spec);
  CmaConfig config;
  config.stop = StopCondition{.max_evaluations = 50};  // starved on purpose
  CmaBatchScheduler scheduler(config, 1.0);
  const Schedule plan = scheduler.schedule_batch(etc);
  const Individual planned = make_individual(plan, etc, FitnessWeights{});
  const Individual minmin =
      make_individual(min_min(etc), etc, FitnessWeights{});
  EXPECT_LE(planned.fitness, minmin.fitness + 1e-9);
}

TEST(BatchSchedulers, SingleJobBatchShortcut) {
  EtcMatrix etc(1, 3, {30, 10, 20});
  CmaConfig cma_config;
  cma_config.stop = StopCondition{.max_evaluations = 10};
  CmaBatchScheduler scheduler(cma_config, 5.0);
  const Schedule s = scheduler.schedule_batch(etc);
  EXPECT_EQ(s[0], 1);  // MCT: minimum completion time machine
}

}  // namespace
}  // namespace gridsched
