#include "common/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

namespace gridsched {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a() == b()) ? 1 : 0;
  EXPECT_LT(equal, 5);
}

TEST(Rng, ZeroSeedIsValid) {
  Rng rng(0);
  // xoshiro state must never be all-zero; drawing should produce variation.
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 64; ++i) seen.insert(rng());
  EXPECT_GT(seen.size(), 60u);
}

TEST(Rng, UniformIntCoversInclusiveRange) {
  Rng rng(7);
  std::set<int> seen;
  for (int i = 0; i < 2000; ++i) {
    const int v = rng.uniform_int(3, 7);
    ASSERT_GE(v, 3);
    ASSERT_LE(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all of 3..7 hit
}

TEST(Rng, UniformIntDegenerateRange) {
  Rng rng(7);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(5, 5), 5);
}

TEST(Rng, BoundedStaysBelowBound) {
  Rng rng(11);
  for (int i = 0; i < 5000; ++i) ASSERT_LT(rng.bounded(13), 13u);
}

TEST(Rng, BoundedZeroAndOne) {
  Rng rng(11);
  EXPECT_EQ(rng.bounded(0), 0u);
  EXPECT_EQ(rng.bounded(1), 0u);
}

TEST(Rng, BoundedIsRoughlyUniform) {
  Rng rng(3);
  std::vector<int> counts(8, 0);
  const int draws = 80'000;
  for (int i = 0; i < draws; ++i) ++counts[rng.bounded(8)];
  for (int c : counts) {
    EXPECT_NEAR(c, draws / 8, draws / 8 * 0.1);  // within 10%
  }
}

TEST(Rng, UniformRealInRange) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(2.5, 9.5);
    ASSERT_GE(v, 2.5);
    ASSERT_LT(v, 9.5);
  }
}

TEST(Rng, UniformMeanIsCentered) {
  Rng rng(5);
  double sum = 0.0;
  const int draws = 50'000;
  for (int i = 0; i < draws; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / draws, 0.5, 0.01);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(9);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ChanceProbabilityRoughlyHonored) {
  Rng rng(9);
  int hits = 0;
  const int draws = 50'000;
  for (int i = 0; i < draws; ++i) hits += rng.chance(0.25) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / draws, 0.25, 0.01);
}

TEST(Rng, ExponentialHasExpectedMean) {
  Rng rng(13);
  double sum = 0.0;
  const int draws = 50'000;
  for (int i = 0; i < draws; ++i) sum += rng.exponential(2.0);
  EXPECT_NEAR(sum / draws, 0.5, 0.02);  // mean = 1/rate
}

TEST(Rng, NormalMoments) {
  Rng rng(17);
  double sum = 0.0;
  double sq = 0.0;
  const int draws = 50'000;
  for (int i = 0; i < draws; ++i) {
    const double v = rng.normal(10.0, 2.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / draws;
  const double var = sq / draws - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.15);
}

TEST(Rng, PermutationIsAPermutation) {
  Rng rng(23);
  const auto perm = rng.permutation(100);
  std::set<int> seen(perm.begin(), perm.end());
  EXPECT_EQ(seen.size(), 100u);
  EXPECT_EQ(*seen.begin(), 0);
  EXPECT_EQ(*seen.rbegin(), 99);
}

TEST(Rng, ShufflePreservesMultiset) {
  Rng rng(29);
  std::vector<int> v{1, 2, 2, 3, 5, 8, 13};
  auto sorted = v;
  rng.shuffle(std::span<int>{v});
  std::sort(v.begin(), v.end());
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, SplitProducesIndependentStreams) {
  Rng parent(31);
  Rng child1 = parent.split();
  Rng child2 = parent.split();
  // Children differ from each other and from the parent.
  int same12 = 0;
  int same1p = 0;
  for (int i = 0; i < 100; ++i) {
    const auto c1 = child1();
    const auto c2 = child2();
    const auto p = parent();
    same12 += (c1 == c2) ? 1 : 0;
    same1p += (c1 == p) ? 1 : 0;
  }
  EXPECT_LT(same12, 3);
  EXPECT_LT(same1p, 3);
}

TEST(Rng, SplitIsDeterministic) {
  Rng a(99);
  Rng b(99);
  Rng ca = a.split();
  Rng cb = b.split();
  for (int i = 0; i < 100; ++i) EXPECT_EQ(ca(), cb());
}

TEST(Rng, PickReturnsElementFromSpan) {
  Rng rng(37);
  const std::vector<int> items{10, 20, 30};
  for (int i = 0; i < 100; ++i) {
    const int v = rng.pick(std::span<const int>{items});
    EXPECT_TRUE(v == 10 || v == 20 || v == 30);
  }
}

TEST(Splitmix64, KnownSequenceIsStable) {
  // Regression pin: instance generation depends on these exact values.
  std::uint64_t state = 0;
  const auto a = splitmix64(state);
  const auto b = splitmix64(state);
  EXPECT_NE(a, b);
  std::uint64_t state2 = 0;
  EXPECT_EQ(splitmix64(state2), a);
  EXPECT_EQ(splitmix64(state2), b);
}

}  // namespace
}  // namespace gridsched
