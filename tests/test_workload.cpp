#include "workload/workload_source.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>
#include <string>

#include "sim/grid_simulator.h"
#include "workload/swf_io.h"
#include "workload/trace_io.h"

namespace gridsched {
namespace {

std::string fixture(const std::string& name) {
  return std::string(GRIDSCHED_TEST_DATA_DIR) + "/" + name;
}

bool sorted_by_arrival(const std::vector<TraceJob>& jobs) {
  return std::is_sorted(jobs.begin(), jobs.end(),
                        [](const TraceJob& a, const TraceJob& b) {
                          return a.arrival < b.arrival;
                        });
}

// ------------------------------------------------------- trace parsing --

TEST(TraceIo, ReadsTwoColumnFixture) {
  const std::vector<TraceJob> jobs =
      read_trace_file(fixture("trace_no_class.csv"));
  ASSERT_EQ(jobs.size(), 3u);
  EXPECT_DOUBLE_EQ(jobs[0].arrival, 0.5);
  EXPECT_DOUBLE_EQ(jobs[0].workload_mi, 1000.0);
  EXPECT_EQ(jobs[0].job_class, -1);
  EXPECT_DOUBLE_EQ(jobs[1].workload_mi, 2500.75);
  EXPECT_DOUBLE_EQ(jobs[2].arrival, 7.0);
}

TEST(TraceIo, ReadsClassColumnWithEmptyFieldAsUnclassed) {
  const std::vector<TraceJob> jobs =
      read_trace_file(fixture("trace_with_class.csv"));
  ASSERT_EQ(jobs.size(), 4u);
  EXPECT_EQ(jobs[0].job_class, 0);
  EXPECT_EQ(jobs[1].job_class, 2);
  EXPECT_EQ(jobs[2].job_class, -1);  // empty field
  EXPECT_EQ(jobs[3].job_class, 1);
}

TEST(TraceIo, SortsOutOfOrderArrivalsStably) {
  const std::vector<TraceJob> jobs =
      read_trace_file(fixture("trace_out_of_order.csv"));
  ASSERT_EQ(jobs.size(), 4u);
  EXPECT_TRUE(sorted_by_arrival(jobs));
  // Stable: the two ties at t=1 keep their file order (200 before 400).
  EXPECT_DOUBLE_EQ(jobs[0].workload_mi, 200.0);
  EXPECT_DOUBLE_EQ(jobs[1].workload_mi, 400.0);
  EXPECT_DOUBLE_EQ(jobs[3].arrival, 5.0);
}

TEST(TraceIo, MalformedRowThrowsNamingTheLine) {
  try {
    (void)read_trace_file(fixture("trace_malformed.csv"));
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& error) {
    EXPECT_NE(std::string(error.what()).find("line 3"), std::string::npos)
        << error.what();
  }
}

TEST(TraceIo, EmptyTraceIsValid) {
  EXPECT_TRUE(read_trace_file(fixture("trace_empty.csv")).empty());
}

TEST(TraceIo, HeaderIsOptional) {
  std::istringstream in("0.5,100\n1.5,200\n");
  const std::vector<TraceJob> jobs = read_trace(in);
  ASSERT_EQ(jobs.size(), 2u);
  EXPECT_DOUBLE_EQ(jobs[1].arrival, 1.5);
}

TEST(TraceIo, RejectsBadRows) {
  std::istringstream wrong_columns("arrival,workload_mi\n1.0,2.0,3,4\n");
  EXPECT_THROW((void)read_trace(wrong_columns), std::runtime_error);
  std::istringstream mixed_columns("0.5,100,1\n1.0,200\n");
  EXPECT_THROW((void)read_trace(mixed_columns), std::runtime_error);
  std::istringstream negative_arrival("-1.0,100\n");
  EXPECT_THROW((void)read_trace(negative_arrival), std::runtime_error);
  std::istringstream zero_size("1.0,0\n");
  EXPECT_THROW((void)read_trace(zero_size), std::runtime_error);
  std::istringstream bad_class("1.0,100,fast\n");
  EXPECT_THROW((void)read_trace(bad_class), std::runtime_error);
  // from_chars parses "nan"/"inf" as doubles; the validator must still
  // reject them (a NaN arrival breaks sorting and strands the job) —
  // even in the first row, which the optional-header heuristic must not
  // swallow (a header is a row that does NOT parse as a double).
  std::istringstream nan_arrival("0.5,100\nnan,100\n");
  EXPECT_THROW((void)read_trace(nan_arrival), std::runtime_error);
  std::istringstream nan_first_row("nan,100\n");
  EXPECT_THROW((void)read_trace(nan_first_row), std::runtime_error);
  std::istringstream inf_size("1.0,inf\n");
  EXPECT_THROW((void)read_trace(inf_size), std::runtime_error);
  std::istringstream empty_first_field(",100\n");
  EXPECT_THROW((void)read_trace(empty_first_field), std::runtime_error);
}

TEST(TraceIo, WriteReadRoundTripIsExact) {
  std::vector<TraceJob> jobs;
  Rng rng(33);
  for (int i = 0; i < 50; ++i) {
    TraceJob job;
    job.arrival = static_cast<double>(i) + rng.uniform();
    job.workload_mi = std::exp(rng.normal(10.0, 0.8));
    job.job_class = i % 3 == 0 ? -1 : i % 3;
    jobs.push_back(job);
  }
  std::ostringstream out;
  write_trace(out, jobs);
  std::istringstream in(out.str());
  const std::vector<TraceJob> back = read_trace(in);
  ASSERT_EQ(back.size(), jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(back[i], jobs[i]) << "job " << i << " mutated in round-trip";
  }
}

TEST(TraceIo, ClasslessTraceOmitsTheClassColumn) {
  const std::vector<TraceJob> jobs = {{1.0, 100.0, -1}, {2.0, 200.0, -1}};
  std::ostringstream out;
  write_trace(out, jobs);
  EXPECT_EQ(out.str().find("class"), std::string::npos);
}

// ------------------------------------------------- trace robustness --

TEST(TraceIo, CrlfAndMissingFinalNewlineParse) {
  // Golden CRLF fixture: DOS line endings on every row and no newline
  // after the last one — the shape of real SWF/cluster logs.
  const std::vector<TraceJob> jobs =
      read_trace_file(fixture("trace_crlf.csv"));
  ASSERT_EQ(jobs.size(), 3u);
  EXPECT_DOUBLE_EQ(jobs[0].arrival, 0.5);
  EXPECT_DOUBLE_EQ(jobs[0].workload_mi, 22026.465794806718);
  EXPECT_EQ(jobs[0].job_class, 1);
  EXPECT_EQ(jobs[1].job_class, -1);  // empty field before the \r
  EXPECT_DOUBLE_EQ(jobs[2].arrival, 2.0);  // final row, no newline
  EXPECT_DOUBLE_EQ(jobs[2].workload_mi, 5000.0);
}

TEST(TraceIo, ErrorLineNumbersCountCommentAndBlankLines) {
  // trace_comments.csv interleaves '#'/';' comments and a blank line;
  // the bad row (NaN size) sits on PHYSICAL line 8 and the error must
  // say so — an editor's goto-line lands on the culprit.
  try {
    (void)read_trace_file(fixture("trace_comments.csv"));
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& error) {
    EXPECT_NE(std::string(error.what()).find("trace line 8"),
              std::string::npos)
        << error.what();
  }
}

TEST(TraceIo, Utf8BomIsIgnored) {
  std::istringstream in("\xEF\xBB\xBF"
                        "arrival,workload_mi\n0.5,100\n");
  const std::vector<TraceJob> jobs = read_trace(in);
  ASSERT_EQ(jobs.size(), 1u);
  EXPECT_DOUBLE_EQ(jobs[0].arrival, 0.5);
}

TEST(TraceIo, MalformedCorpusThrowsNamingTheLine) {
  // Each corpus entry is (input, line the error must name). Covers the
  // trace-I/O bug-sweep shapes: truncated row, NaN/inf arrival, negative
  // size, mixed column counts.
  const struct {
    const char* label;
    std::string input;
    const char* line;
  } corpus[] = {
      {"truncated row", "0.5,100\n1.5,\n", "trace line 2"},
      {"nan arrival", "0.5,100\nnan,100\n", "trace line 2"},
      {"inf arrival", "inf,100\n", "trace line 1"},
      {"negative size", "# hdr\n0.5,-7\n", "trace line 2"},
      {"mixed columns", "0.5,100,1\n1.0,200\n", "trace line 2"},
      {"single column", "arrival\n", "trace line 1"},
  };
  for (const auto& bad : corpus) {
    std::istringstream in(bad.input);
    try {
      (void)read_trace(in);
      FAIL() << bad.label << ": expected std::runtime_error";
    } catch (const std::runtime_error& error) {
      EXPECT_NE(std::string(error.what()).find(bad.line), std::string::npos)
          << bad.label << ": " << error.what();
    }
  }
}

TEST(TraceIo, OversizedLineThrowsNamingTheLine) {
  // A corrupt (or binary) "line" past kMaxTraceLineBytes must throw with
  // the line number instead of ballooning memory mid-stream.
  std::string input = "0.5,100\n1.5,";
  input.append(kMaxTraceLineBytes + 10, '9');
  std::istringstream in(input);
  try {
    (void)read_trace(in);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& error) {
    EXPECT_NE(std::string(error.what()).find("trace line 2"),
              std::string::npos)
        << error.what();
  }
}

// ------------------------------------------------- streaming reader --

TEST(StreamingTrace, ChunkedPullMatchesReadTrace) {
  // Same bytes through the streaming reader (pulled in small time
  // slices) and through read_trace: identical job sequence, including
  // the stable order of equal arrivals.
  std::ifstream materialized(fixture("trace_out_of_order.csv"));
  const std::vector<TraceJob> expected = read_trace(materialized);
  std::ifstream in(fixture("trace_out_of_order.csv"));
  StreamingTraceReader reader(in, /*reorder_window=*/4);
  std::vector<TraceJob> streamed;
  double until = 0.0;
  bool more = true;
  while (more) {
    more = reader.next_chunk(until, streamed);
    until += 1.0;
  }
  EXPECT_EQ(streamed, expected);
  EXPECT_EQ(reader.name(), "trace_stream");
}

TEST(StreamingTrace, OutOfOrderBeyondTheWindowThrows) {
  // Row at t=1 lands after 4 later rows have flushed a released row
  // past it — the bounded window cannot absorb it, so the reader names
  // the line instead of silently reordering.
  std::istringstream in("10,100\n11,100\n12,100\n13,100\n14,100\n1,100\n");
  StreamingTraceReader reader(in, /*reorder_window=*/2);
  std::vector<TraceJob> out;
  try {
    while (reader.next_chunk(1e9, out)) {
    }
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& error) {
    EXPECT_NE(std::string(error.what()).find("reorder window"),
              std::string::npos)
        << error.what();
  }
}

TEST(StreamingTrace, QosFlagsFollowTheColumnCount) {
  std::istringstream plain("0.5,100,1\n");
  StreamingTraceReader no_qos(plain);
  EXPECT_FALSE(no_qos.qos().deadlines);
  EXPECT_FALSE(no_qos.qos().budgets);
  std::istringstream deadlines("0.5,100,1,9.5\n");
  StreamingTraceReader with_deadlines(deadlines);
  EXPECT_TRUE(with_deadlines.qos().deadlines);
  EXPECT_FALSE(with_deadlines.qos().budgets);
  std::istringstream budgets("0.5,100,1,9.5,12\n");
  StreamingTraceReader with_budgets(budgets);
  EXPECT_TRUE(with_budgets.qos().deadlines);
  EXPECT_TRUE(with_budgets.qos().budgets);
}

TEST(StreamingTrace, PeakBufferedStaysWithinTheWindowBound) {
  std::ostringstream out;
  std::vector<TraceJob> jobs;
  for (int i = 0; i < 5'000; ++i) {
    jobs.push_back({static_cast<double>(i) * 0.1, 100.0, -1});
  }
  write_trace(out, jobs);
  std::istringstream in(out.str());
  StreamingTraceReader reader(in, /*reorder_window=*/64);
  std::vector<TraceJob> streamed;
  while (reader.next_chunk(1e9, streamed)) {
  }
  ASSERT_EQ(streamed.size(), jobs.size());
  // The O(1)-memory contract: never more than window + 1 rows resident.
  EXPECT_LE(reader.peak_buffered(), 65u);
}

// ----------------------------------------------- churn sidecar trace --

TEST(ChurnTraceIo, RoundTripPreservesOrderAndValues) {
  // Application order is the replay contract, so the reader must NOT
  // sort: these events interleave machines with non-monotonic fail_at
  // inside a window, exactly like a recorded run.
  const std::vector<ChurnEvent> events = {
      {3, 47.25, 61.5},
      {1, 42.125, 90.0},
      {3, 95.5, 95.5},  // zero-length outage is legal
      {0, 130.0, 171.25},
  };
  std::ostringstream out;
  write_churn_trace(out, events);
  std::istringstream in(out.str());
  const std::vector<ChurnEvent> back = read_churn_trace(in);
  EXPECT_EQ(back, events);
}

TEST(ChurnTraceIo, RejectsMalformedRows) {
  const struct {
    const char* label;
    std::string input;
    const char* line;
  } corpus[] = {
      {"wrong columns", "3,47.5\n", "trace line 1"},
      {"negative machine", "machine,fail_at,repair_at\n-2,1,2\n",
       "trace line 2"},
      {"repair before fail", "1,10,4\n", "trace line 1"},
      {"nan fail", "1,nan,4\n", "trace line 1"},
      {"negative fail", "1,-3,4\n", "trace line 1"},
  };
  for (const auto& bad : corpus) {
    std::istringstream in(bad.input);
    try {
      (void)read_churn_trace(in);
      FAIL() << bad.label << ": expected std::runtime_error";
    } catch (const std::runtime_error& error) {
      EXPECT_NE(std::string(error.what()).find(bad.line), std::string::npos)
          << bad.label << ": " << error.what();
    }
  }
}

TEST(ChurnTraceIo, EmptyTraceIsValid) {
  std::istringstream in("# gridsched churn trace v1, 0 events\n");
  EXPECT_TRUE(read_churn_trace(in).empty());
}

// ------------------------------------------------------- SWF import --

TEST(SwfIo, ExcerptFixtureMapsTheColumns) {
  std::size_t skipped = 0;
  const std::vector<TraceJob> jobs =
      read_swf_file(fixture("swf_excerpt.swf"), SwfMapping{}, &skipped);
  // 24 rows, two unusable (cancelled run time / missing submit).
  ASSERT_EQ(jobs.size(), 22u);
  EXPECT_EQ(skipped, 2u);
  EXPECT_TRUE(sorted_by_arrival(jobs));
  // Rebase: the first job's submit time becomes arrival 0.
  EXPECT_DOUBLE_EQ(jobs[0].arrival, 0.0);
  // run time 118 s * reference 1000 MIPS.
  EXPECT_DOUBLE_EQ(jobs[0].workload_mi, 118'000.0);
  // requested time 600 -> absolute deadline arrival + 600.
  EXPECT_DOUBLE_EQ(jobs[0].deadline, 600.0);
  EXPECT_EQ(jobs[0].user, 11);
  EXPECT_EQ(jobs[0].job_class, 0);  // queue column
  EXPECT_DOUBLE_EQ(jobs[0].budget, -1.0);  // SWF has no budget column
  // Log row 6 (submit ...829) interleaves before row 5 (...831): the
  // stable sort puts it first.
  EXPECT_DOUBLE_EQ(jobs[4].arrival, 29.0);
  EXPECT_DOUBLE_EQ(jobs[4].workload_mi, 201'000.0);
  EXPECT_DOUBLE_EQ(jobs[5].arrival, 31.0);
  // Requested time -1 -> no deadline (log row 4).
  EXPECT_DOUBLE_EQ(jobs[3].arrival, 22.0);
  EXPECT_DOUBLE_EQ(jobs[3].deadline, -1.0);
  // User -1 -> anonymous (log row 8).
  EXPECT_DOUBLE_EQ(jobs[6].arrival, 51.0);
  EXPECT_EQ(jobs[6].user, -1);
}

TEST(SwfIo, MappingKnobsSelectClassSourceAndToggles) {
  SwfMapping mapping;
  mapping.reference_mips = 500.0;
  mapping.class_from = SwfMapping::ClassFrom::kPartition;
  mapping.map_deadline = false;
  mapping.map_user = false;
  mapping.rebase_arrivals = false;
  const std::vector<TraceJob> jobs =
      read_swf_file(fixture("swf_excerpt.swf"), mapping);
  ASSERT_EQ(jobs.size(), 22u);
  EXPECT_DOUBLE_EQ(jobs[0].arrival, 1117564800.0);  // raw epoch kept
  EXPECT_DOUBLE_EQ(jobs[0].workload_mi, 59'000.0);  // 118 s * 500 MIPS
  EXPECT_EQ(jobs[0].job_class, 1);                  // partition column
  EXPECT_DOUBLE_EQ(jobs[0].deadline, -1.0);
  EXPECT_EQ(jobs[0].user, -1);
}

TEST(SwfIo, StreamingReaderMatchesTheMaterializedImport) {
  std::size_t skipped = 0;
  const std::vector<TraceJob> expected =
      read_swf_file(fixture("swf_excerpt.swf"), SwfMapping{}, &skipped);
  std::ifstream in(fixture("swf_excerpt.swf"));
  SwfStreamReader reader(in);
  std::vector<TraceJob> streamed;
  double until = 0.0;
  bool more = true;
  while (more) {
    more = reader.next_chunk(until, streamed);
    until += 13.0;
  }
  EXPECT_EQ(streamed, expected);
  EXPECT_EQ(reader.skipped_rows(), skipped);
  EXPECT_TRUE(reader.qos().deadlines);
  // No budget column, but mapped user ids ride the budget context —
  // declared so streaming matches the materialized QoS scan.
  EXPECT_TRUE(reader.qos().budgets);
}

TEST(SwfIo, MalformedRowsThrowNamingTheLine) {
  const struct {
    const char* label;
    std::string input;
    const char* line;
  } corpus[] = {
      {"wrong column count", "; hdr\n1 0 -1 10 1 -1 -1 1\n", "trace line 2"},
      {"non-numeric submit",
       "1 zero -1 10 1 -1 -1 1 60 -1 1 2 3 -1 0 1 -1 -1\n", "trace line 1"},
      {"nan run time",
       "1 0 -1 nan 1 -1 -1 1 60 -1 1 2 3 -1 0 1 -1 -1\n", "trace line 1"},
  };
  for (const auto& bad : corpus) {
    std::istringstream in(bad.input);
    try {
      (void)read_swf(in);
      FAIL() << bad.label << ": expected std::runtime_error";
    } catch (const std::runtime_error& error) {
      EXPECT_NE(std::string(error.what()).find(bad.line), std::string::npos)
          << bad.label << ": " << error.what();
    }
  }
  EXPECT_THROW((void)read_swf_file("/nonexistent.swf"), std::runtime_error);
  std::istringstream ok("1 0 -1 10 1 -1 -1 1 60 -1 1 2 3 -1 0 1 -1 -1\n");
  SwfMapping bad_mapping;
  bad_mapping.reference_mips = 0.0;
  EXPECT_THROW((void)read_swf(ok, bad_mapping), std::invalid_argument);
}

TEST(SwfIo, WriteSwfRowRoundTripsThroughTheImporter) {
  std::ostringstream out;
  write_swf_row(out, 1, 100.0, 50.0, /*procs=*/4, /*user=*/7, /*queue=*/2,
                /*requested=*/300.0);
  write_swf_row(out, 2, 160.0, 25.0, 1, -1, 0, -1.0);
  std::istringstream in(out.str());
  SwfMapping mapping;
  mapping.rebase_arrivals = false;
  const std::vector<TraceJob> jobs = read_swf(in, mapping);
  ASSERT_EQ(jobs.size(), 2u);
  EXPECT_DOUBLE_EQ(jobs[0].arrival, 100.0);
  EXPECT_DOUBLE_EQ(jobs[0].workload_mi, 50'000.0);
  EXPECT_EQ(jobs[0].job_class, 2);
  EXPECT_DOUBLE_EQ(jobs[0].deadline, 400.0);
  EXPECT_EQ(jobs[0].user, 7);
  EXPECT_DOUBLE_EQ(jobs[1].deadline, -1.0);
  EXPECT_EQ(jobs[1].user, -1);
}

// -------------------------------------------------- synthetic sources --

std::vector<TraceJob> generate(WorkloadSource& source, double horizon,
                               std::uint64_t seed = 5) {
  Rng rng(seed);
  Rng arrival_rng = rng.split();
  Rng workload_rng = rng.split();
  return source.generate(horizon, arrival_rng, workload_rng);
}

TEST(WorkloadSources, EveryKindGeneratesAValidStreamAtMatchedLoad) {
  const double horizon = 2'000.0;
  const double rate = 0.5;
  for (const WorkloadKind kind : all_workload_kinds()) {
    const auto source = make_workload(kind, rate, horizon);
    EXPECT_EQ(source->name(), workload_name(kind));
    const std::vector<TraceJob> jobs = generate(*source, horizon);
    ASSERT_FALSE(jobs.empty()) << workload_name(kind);
    EXPECT_TRUE(sorted_by_arrival(jobs)) << workload_name(kind);
    for (const TraceJob& job : jobs) {
      ASSERT_GE(job.arrival, 0.0);
      ASSERT_LT(job.arrival, horizon);
      ASSERT_GT(job.workload_mi, 0.0);
    }
    // Calibration: expected volume = rate * horizon = 1000 jobs. Bursty
    // gets a much wider band — its phases scale with the horizon (~3
    // on/off cycles whatever the length), so phase luck moves the
    // realized count by multiples, not percent.
    const double count = static_cast<double>(jobs.size());
    const bool bursty = kind == WorkloadKind::kBursty;
    EXPECT_GT(count, (bursty ? 0.2 : 0.45) * rate * horizon)
        << workload_name(kind);
    EXPECT_LT(count, (bursty ? 4.0 : 1.8) * rate * horizon)
        << workload_name(kind);
  }
}

TEST(WorkloadSources, GenerationIsDeterministicInTheSeed) {
  for (const WorkloadKind kind : all_workload_kinds()) {
    const auto source = make_workload(kind, 0.5, 500.0);
    EXPECT_EQ(generate(*source, 500.0, 9), generate(*source, 500.0, 9))
        << workload_name(kind);
  }
}

TEST(WorkloadSources, BurstyConcentratesArrivalsMoreThanPoisson) {
  // Dispersion test: cut the horizon into windows; an on/off process has a
  // much higher variance-to-mean ratio of per-window counts than Poisson
  // (for which it is ~1).
  const double horizon = 4'000.0;
  const auto dispersion = [&](WorkloadKind kind) {
    const auto source = make_workload(kind, 0.5, horizon);
    const std::vector<TraceJob> jobs = generate(*source, horizon, 3);
    const int windows = 40;
    std::vector<double> counts(windows, 0.0);
    for (const TraceJob& job : jobs) {
      const int w = std::min(
          windows - 1, static_cast<int>(job.arrival / horizon *
                                        static_cast<double>(windows)));
      counts[static_cast<std::size_t>(w)] += 1.0;
    }
    double mean = 0.0;
    for (const double c : counts) mean += c;
    mean /= windows;
    double var = 0.0;
    for (const double c : counts) var += (c - mean) * (c - mean);
    var /= windows - 1;
    return var / mean;
  };
  EXPECT_GT(dispersion(WorkloadKind::kBursty),
            3.0 * dispersion(WorkloadKind::kPoisson));
}

TEST(WorkloadSources, DiurnalPeaksWhereTheSineDoes) {
  // period = horizon / 2 and phase 0: the first quarter-cycle [0, h/8) is
  // the rising peak, [h/4, 3h/8) the trough.
  const double horizon = 8'000.0;
  const auto source = make_workload(WorkloadKind::kDiurnal, 0.5, horizon);
  const std::vector<TraceJob> jobs = generate(*source, horizon, 11);
  int peak = 0;
  int trough = 0;
  for (const TraceJob& job : jobs) {
    if (job.arrival < horizon / 8.0) ++peak;
    if (job.arrival >= horizon / 4.0 && job.arrival < 3.0 * horizon / 8.0) {
      ++trough;
    }
  }
  EXPECT_GT(peak, 2 * trough);
}

TEST(WorkloadSources, FlashCrowdSpikesInsideItsWindow) {
  const double horizon = 4'000.0;
  const auto source = make_workload(WorkloadKind::kFlashCrowd, 0.5, horizon);
  const std::vector<TraceJob> jobs = generate(*source, horizon, 13);
  // Default window [0.4, 0.5) * horizon at 5x the base rate; compare with
  // the same-sized window right before it.
  int inside = 0;
  int before = 0;
  for (const TraceJob& job : jobs) {
    const double frac = job.arrival / horizon;
    if (frac >= 0.4 && frac < 0.5) ++inside;
    if (frac >= 0.3 && frac < 0.4) ++before;
  }
  EXPECT_GT(inside, 3 * before);
}

TEST(WorkloadSources, HeavyTailHasElephants) {
  const double horizon = 4'000.0;
  const auto pareto = make_workload(WorkloadKind::kHeavyTail, 0.5, horizon);
  const std::vector<TraceJob> jobs = generate(*pareto, horizon, 17);
  std::vector<double> sizes;
  for (const TraceJob& job : jobs) sizes.push_back(job.workload_mi);
  std::sort(sizes.begin(), sizes.end());
  const double median = sizes[sizes.size() / 2];
  const double max = sizes.back();
  // A LogNormal(10, 0.8) max/median over ~2000 draws sits around 10-20x;
  // the bounded Pareto's elephants dwarf that.
  EXPECT_GT(max / median, 50.0);
}

TEST(TraceWorkloadSource, FiltersToTheHorizonAndIgnoresRngs) {
  TraceWorkloadSource source({{1.0, 10.0, -1}, {5.0, 20.0, -1},
                              {50.0, 30.0, -1}});
  const std::vector<TraceJob> jobs = generate(source, 10.0);
  ASSERT_EQ(jobs.size(), 2u);
  EXPECT_DOUBLE_EQ(jobs[1].arrival, 5.0);
}

// --------------------------------------------- simulator integration --

SimConfig replay_sim() {
  SimConfig config;
  config.horizon = 400.0;
  config.arrival_rate = 0.5;
  config.scheduler_period = 40.0;
  config.num_machines = 6;
  config.consistency_noise = 0.2;
  config.num_job_classes = 3;
  config.machine_mtbf = 150.0;  // churn must survive the round-trip too
  config.machine_mttr = 30.0;
  config.seed = 42;
  return config;
}

void expect_identical_runs(const SimMetrics& a, const SimMetrics& b,
                           const GridSimulator& sim_a,
                           const GridSimulator& sim_b) {
  // Bit-identical, not approximately equal: everything but the wall-clock
  // scheduler_cpu_ms must reproduce exactly.
  EXPECT_EQ(a.jobs_arrived, b.jobs_arrived);
  EXPECT_EQ(a.jobs_completed, b.jobs_completed);
  EXPECT_EQ(a.jobs_requeued, b.jobs_requeued);
  EXPECT_EQ(a.activations, b.activations);
  EXPECT_EQ(a.mean_flowtime, b.mean_flowtime);
  EXPECT_EQ(a.mean_wait, b.mean_wait);
  EXPECT_EQ(a.mean_slowdown, b.mean_slowdown);
  EXPECT_EQ(a.max_flowtime, b.max_flowtime);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.utilization, b.utilization);
  const auto& records_a = sim_a.job_records();
  const auto& records_b = sim_b.job_records();
  ASSERT_EQ(records_a.size(), records_b.size());
  for (std::size_t i = 0; i < records_a.size(); ++i) {
    EXPECT_EQ(records_a[i].id, records_b[i].id);
    EXPECT_EQ(records_a[i].arrival, records_b[i].arrival);
    EXPECT_EQ(records_a[i].start, records_b[i].start);
    EXPECT_EQ(records_a[i].finish, records_b[i].finish);
    EXPECT_EQ(records_a[i].machine, records_b[i].machine);
    EXPECT_EQ(records_a[i].attempts, records_b[i].attempts);
  }
}

TEST(DeterministicReplay, RecordedPoissonRunReplaysBitForBit) {
  // The tentpole regression: record a run (classes + noise + churn all
  // on), serialize the trace through text, replay it, and demand the
  // identical per-job records and metrics.
  const SimConfig config = replay_sim();
  GridSimulator recorded(config);
  HeuristicBatchScheduler sched_a(HeuristicKind::kMinMin);
  const SimMetrics original = recorded.run(sched_a);
  ASSERT_GT(original.jobs_arrived, 0);
  ASSERT_GT(original.jobs_requeued, 0) << "churn never fired; weak test";

  std::ostringstream out;
  write_trace(out, recorded.arrival_trace());
  std::istringstream in(out.str());

  SimConfig replay_config = config;
  replay_config.workload =
      std::make_shared<TraceWorkloadSource>(read_trace(in));
  GridSimulator replayed(replay_config);
  HeuristicBatchScheduler sched_b(HeuristicKind::kMinMin);
  const SimMetrics replay = replayed.run(sched_b);

  expect_identical_runs(original, replay, recorded, replayed);
}

// ----------------------------------------------------------- class mix --

TEST(ClassMixWorkload, AssignsClassesByRateWeights) {
  ClassMixWorkload mix(std::make_shared<PoissonWorkload>(5.0, LogNormalSize{}),
                       {3.0, 1.0});
  EXPECT_EQ(mix.name(), "class-mix(poisson)");
  EXPECT_EQ(mix.num_classes(), 2);
  Rng arrivals(7);
  Rng sizes(8);
  const std::vector<TraceJob> jobs = mix.generate(2'000.0, arrivals, sizes);
  ASSERT_GT(jobs.size(), 1'000u);
  int class_zero = 0;
  for (const TraceJob& job : jobs) {
    ASSERT_GE(job.job_class, 0);
    ASSERT_LT(job.job_class, 2);
    if (job.job_class == 0) ++class_zero;
  }
  // 75/25 split: with ~10k draws the observed share sits well within a
  // few percent of the weight ratio.
  const double share = static_cast<double>(class_zero) /
                       static_cast<double>(jobs.size());
  EXPECT_NEAR(share, 0.75, 0.05);
}

TEST(ClassMixWorkload, ZeroWeightClassesAreNeverDrawn) {
  ClassMixWorkload mix(std::make_shared<PoissonWorkload>(2.0, LogNormalSize{}),
                       {0.0, 1.0, 0.0});
  Rng arrivals(3);
  Rng sizes(4);
  for (const TraceJob& job : mix.generate(500.0, arrivals, sizes)) {
    EXPECT_EQ(job.job_class, 1);
  }
}

TEST(ClassMixWorkload, WrappingDoesNotPerturbTheBaseStream) {
  // The wrapper draws classes only after the base stream is materialized,
  // so arrivals and sizes are bit-identical to the unwrapped source.
  Rng arrivals_a(11);
  Rng sizes_a(12);
  PoissonWorkload plain(1.0, LogNormalSize{});
  const std::vector<TraceJob> bare = plain.generate(300.0, arrivals_a,
                                                    sizes_a);
  Rng arrivals_b(11);
  Rng sizes_b(12);
  ClassMixWorkload mix(std::make_shared<PoissonWorkload>(1.0,
                                                         LogNormalSize{}),
                       {1.0, 1.0});
  const std::vector<TraceJob> mixed = mix.generate(300.0, arrivals_b,
                                                   sizes_b);
  ASSERT_EQ(bare.size(), mixed.size());
  for (std::size_t i = 0; i < bare.size(); ++i) {
    EXPECT_EQ(bare[i].arrival, mixed[i].arrival);
    EXPECT_EQ(bare[i].workload_mi, mixed[i].workload_mi);
  }
}

TEST(ClassMixWorkload, RejectsBadWeightsAndNullBase) {
  const auto base = std::make_shared<PoissonWorkload>(1.0, LogNormalSize{});
  EXPECT_THROW(ClassMixWorkload(nullptr, {1.0}), std::invalid_argument);
  EXPECT_THROW(ClassMixWorkload(base, {}), std::invalid_argument);
  EXPECT_THROW(ClassMixWorkload(base, {1.0, -0.5}), std::invalid_argument);
  EXPECT_THROW(ClassMixWorkload(base, {0.0, 0.0}), std::invalid_argument);
}

TEST(DeterministicReplay, ClassMixRoundTripsThroughTheTraceClassColumn) {
  // The class-mix classes must survive record -> CSV -> replay verbatim:
  // trace-supplied classes win over the id hash, so the replayed run is
  // bit-identical, ETCs and all.
  SimConfig config = replay_sim();
  config.workload = std::make_shared<ClassMixWorkload>(
      std::make_shared<PoissonWorkload>(
          config.arrival_rate,
          LogNormalSize{config.workload_log_mean, config.workload_log_sigma}),
      std::vector<double>{0.6, 0.3, 0.1});
  GridSimulator recorded(config);
  HeuristicBatchScheduler sched_a(HeuristicKind::kMinMin);
  const SimMetrics original = recorded.run(sched_a);
  ASSERT_GT(original.jobs_arrived, 0);

  std::ostringstream out;
  write_trace(out, recorded.arrival_trace());
  std::istringstream in(out.str());

  SimConfig replay_config = config;
  replay_config.workload =
      std::make_shared<TraceWorkloadSource>(read_trace(in));
  GridSimulator replayed(replay_config);
  HeuristicBatchScheduler sched_b(HeuristicKind::kMinMin);
  const SimMetrics replay = replayed.run(sched_b);

  expect_identical_runs(original, replay, recorded, replayed);
  // The skew survives: class 0 dominates the recorded trace.
  int class_zero = 0;
  for (const TraceJob& job : recorded.arrival_trace()) {
    if (job.job_class == 0) ++class_zero;
  }
  EXPECT_GT(class_zero, static_cast<int>(
      recorded.arrival_trace().size() / 3));
}

TEST(DeterministicReplay, ExplicitPoissonSourceMatchesTheLegacyDefault) {
  // A SimConfig without a source and one with the equivalent
  // PoissonWorkload must be the same simulation.
  const SimConfig config = replay_sim();
  GridSimulator legacy(config);
  HeuristicBatchScheduler sched_a(HeuristicKind::kMct);
  const SimMetrics a = legacy.run(sched_a);

  SimConfig explicit_config = config;
  explicit_config.workload = std::make_shared<PoissonWorkload>(
      config.arrival_rate,
      LogNormalSize{config.workload_log_mean, config.workload_log_sigma});
  GridSimulator with_source(explicit_config);
  HeuristicBatchScheduler sched_b(HeuristicKind::kMct);
  const SimMetrics b = with_source.run(sched_b);

  expect_identical_runs(a, b, legacy, with_source);
}

TEST(GridSimulator, ArrivalTraceRecordsEffectiveClasses) {
  SimConfig config = replay_sim();
  config.machine_mtbf = 0.0;
  config.machine_mttr = 0.0;
  GridSimulator sim(config);
  HeuristicBatchScheduler scheduler(HeuristicKind::kMct);
  (void)sim.run(scheduler);
  ASSERT_FALSE(sim.arrival_trace().empty());
  for (const TraceJob& job : sim.arrival_trace()) {
    EXPECT_GE(job.job_class, 0);
    EXPECT_LT(job.job_class, config.num_job_classes);
  }
}

TEST(GridSimulator, TraceSuppliedClassesWinOverTheHash) {
  SimConfig config;
  config.horizon = 100.0;
  config.scheduler_period = 20.0;
  config.num_machines = 4;
  config.num_job_classes = 2;
  config.workload = std::make_shared<TraceWorkloadSource>(std::vector<TraceJob>{
      {1.0, 500.0, 1}, {2.0, 600.0, -1}, {3.0, 700.0, 5}});
  GridSimulator sim(config);
  HeuristicBatchScheduler scheduler(HeuristicKind::kMct);
  (void)sim.run(scheduler);
  const auto& trace = sim.arrival_trace();
  ASSERT_EQ(trace.size(), 3u);
  EXPECT_EQ(trace[0].job_class, 1);   // explicit, kept
  EXPECT_GE(trace[1].job_class, 0);   // unclassed, hash filled one in
  EXPECT_LT(trace[1].job_class, 2);
  EXPECT_EQ(trace[2].job_class, 1);   // out of range, wrapped modulo
}

TEST(GridSimulator, EmptyTraceRunsToCompletionWithZeroJobs) {
  SimConfig config;
  config.horizon = 100.0;
  config.scheduler_period = 20.0;
  config.num_machines = 2;
  config.arrival_rate = 0.0;  // meaningless (and allowed) with a source
  config.workload =
      std::make_shared<TraceWorkloadSource>(std::vector<TraceJob>{});
  GridSimulator sim(config);
  HeuristicBatchScheduler scheduler(HeuristicKind::kMct);
  const SimMetrics metrics = sim.run(scheduler);
  EXPECT_EQ(metrics.jobs_arrived, 0);
  EXPECT_EQ(metrics.jobs_completed, 0);
  EXPECT_EQ(metrics.activations, 0);
}

TEST(GridSimulator, RejectsAnInvalidSourceStream) {
  SimConfig config;
  config.horizon = 100.0;
  config.num_machines = 2;
  // TraceWorkloadSource sorts, so feed the simulator a broken stream via a
  // stub source instead.
  class BrokenSource final : public WorkloadSource {
   public:
    [[nodiscard]] std::string_view name() const noexcept override {
      return "broken";
    }
    [[nodiscard]] std::vector<TraceJob> generate(double, Rng&,
                                                 Rng&) override {
      return {{5.0, 100.0, -1}, {1.0, 100.0, -1}};  // unsorted
    }
  };
  config.workload = std::make_shared<BrokenSource>();
  GridSimulator sim(config);
  HeuristicBatchScheduler scheduler(HeuristicKind::kMct);
  EXPECT_THROW((void)sim.run(scheduler), std::runtime_error);
}

// ------------------------------------------------ horizon convention --

TEST(HorizonBoundary, ArrivalWindowIsHalfOpenEverywhere) {
  // THE pinned convention: [0, horizon). A job arriving exactly at the
  // horizon is dropped by every path — materialized source filtering and
  // the streaming pull alike — so record -> replay can never disagree
  // about the boundary job.
  const std::vector<TraceJob> jobs = {{9.9, 100.0, -1}, {10.0, 100.0, -1}};
  TraceWorkloadSource source(jobs);
  EXPECT_EQ(generate(source, 10.0).size(), 1u);

  SimConfig config;
  config.horizon = 10.0;
  config.scheduler_period = 5.0;
  config.num_machines = 2;
  config.workload = std::make_shared<TraceWorkloadSource>(jobs);
  GridSimulator materialized(config);
  HeuristicBatchScheduler sched_a(HeuristicKind::kMct);
  EXPECT_EQ(materialized.run(sched_a).jobs_arrived, 1);

  SimConfig stream_config = config;
  stream_config.workload.reset();
  stream_config.stream = std::make_shared<MaterializedStream>(jobs);
  GridSimulator streamed(stream_config);
  HeuristicBatchScheduler sched_b(HeuristicKind::kMct);
  EXPECT_EQ(streamed.run(sched_b).jobs_arrived, 1);
}

// ----------------------------------------------------- churn replay --

TEST(ChurnReplay, RecordedChurnRoundTripsThroughTheSidecar) {
  // Close the record -> replay loop for the failure process: record a
  // churny run, serialize arrivals AND churn through text, replay with
  // the drawn process off — identical per-job records, metrics, and
  // churn sequence.
  const SimConfig config = replay_sim();
  GridSimulator recorded(config);
  HeuristicBatchScheduler sched_a(HeuristicKind::kMinMin);
  const SimMetrics original = recorded.run(sched_a);
  ASSERT_GT(original.jobs_requeued, 0) << "churn never fired; weak test";
  ASSERT_FALSE(recorded.churn_trace().empty());

  std::ostringstream arrivals_out;
  write_trace(arrivals_out, recorded.arrival_trace());
  std::ostringstream churn_out;
  write_churn_trace(churn_out, recorded.churn_trace());

  SimConfig replay_config = config;
  replay_config.machine_mtbf = 0.0;
  replay_config.machine_mttr = 0.0;
  std::istringstream arrivals_in(arrivals_out.str());
  replay_config.workload =
      std::make_shared<TraceWorkloadSource>(read_trace(arrivals_in));
  std::istringstream churn_in(churn_out.str());
  replay_config.churn_replay = std::make_shared<const std::vector<ChurnEvent>>(
      read_churn_trace(churn_in));
  GridSimulator replayed(replay_config);
  HeuristicBatchScheduler sched_b(HeuristicKind::kMinMin);
  const SimMetrics replay = replayed.run(sched_b);

  expect_identical_runs(original, replay, recorded, replayed);
  EXPECT_EQ(replayed.churn_trace(), recorded.churn_trace());
  EXPECT_EQ(replay.jobs_requeued, original.jobs_requeued);
}

TEST(ChurnReplay, ReplayedFailuresAreSchedulerIndependent) {
  // The point of the sidecar: the failure sequence no longer depends on
  // how long the scheduler under test drains. Replaying under a
  // DIFFERENT scheduler applies the same failures (a prefix, if that
  // run drains before the last recorded window).
  const SimConfig config = replay_sim();
  GridSimulator recorded(config);
  HeuristicBatchScheduler sched_a(HeuristicKind::kMinMin);
  (void)recorded.run(sched_a);
  const std::vector<ChurnEvent> events = recorded.churn_trace();
  ASSERT_FALSE(events.empty());

  SimConfig replay_config = config;
  replay_config.machine_mtbf = 0.0;
  replay_config.machine_mttr = 0.0;
  replay_config.workload = std::make_shared<TraceWorkloadSource>(
      recorded.arrival_trace());
  replay_config.churn_replay =
      std::make_shared<const std::vector<ChurnEvent>>(events);
  GridSimulator replayed(replay_config);
  HeuristicBatchScheduler sched_b(HeuristicKind::kMct);
  const SimMetrics metrics = replayed.run(sched_b);
  EXPECT_GT(metrics.jobs_requeued, 0);
  const std::vector<ChurnEvent>& applied = replayed.churn_trace();
  ASSERT_FALSE(applied.empty());
  ASSERT_LE(applied.size(), events.size());
  for (std::size_t i = 0; i < applied.size(); ++i) {
    EXPECT_EQ(applied[i], events[i]);
  }
}

TEST(ChurnReplay, RejectsInvalidEventSequences) {
  SimConfig config = replay_sim();
  config.machine_mtbf = 0.0;
  config.machine_mttr = 0.0;
  config.workload = std::make_shared<TraceWorkloadSource>(
      std::vector<TraceJob>{{1.0, 500.0, -1}});
  const auto run_with = [&](std::vector<ChurnEvent> events) {
    SimConfig bad = config;
    bad.churn_replay = std::make_shared<const std::vector<ChurnEvent>>(
        std::move(events));
    GridSimulator sim(bad);
    HeuristicBatchScheduler scheduler(HeuristicKind::kMct);
    return sim.run(scheduler);
  };
  // Unknown machine (grid has 6).
  EXPECT_THROW((void)run_with({{99, 10.0, 20.0}}), std::runtime_error);
  // Repair before failure.
  EXPECT_THROW((void)run_with({{0, 10.0, 5.0}}), std::runtime_error);
  // Events out of recorded order (windows 3 then 1 at period 40).
  EXPECT_THROW((void)run_with({{0, 100.0, 110.0}, {1, 10.0, 20.0}}),
               std::runtime_error);
  // Double failure: machine 0 is still down (repair at 1000) when the
  // second event targets it in a later window.
  EXPECT_THROW((void)run_with({{0, 10.0, 1000.0}, {0, 50.0, 60.0}}),
               std::runtime_error);
}

// ---------------------------------------------------- streaming sim --

// Everything except the wall-clock scheduler_cpu_ms and the
// mode-dependent peak_resident_jobs must match bit for bit.
void expect_identical_metrics(const SimMetrics& a, const SimMetrics& b) {
  EXPECT_EQ(a.jobs_arrived, b.jobs_arrived);
  EXPECT_EQ(a.jobs_completed, b.jobs_completed);
  EXPECT_EQ(a.jobs_requeued, b.jobs_requeued);
  EXPECT_EQ(a.activations, b.activations);
  EXPECT_EQ(a.mean_batch_size, b.mean_batch_size);
  EXPECT_EQ(a.mean_flowtime, b.mean_flowtime);
  EXPECT_EQ(a.mean_wait, b.mean_wait);
  EXPECT_EQ(a.mean_slowdown, b.mean_slowdown);
  EXPECT_EQ(a.max_flowtime, b.max_flowtime);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.utilization, b.utilization);
  EXPECT_EQ(a.jobs_rejected, b.jobs_rejected);
  EXPECT_EQ(a.deadline_jobs, b.deadline_jobs);
  EXPECT_EQ(a.deadline_missed, b.deadline_missed);
  EXPECT_EQ(a.total_tardiness, b.total_tardiness);
  EXPECT_EQ(a.total_cost, b.total_cost);
  EXPECT_EQ(a.flowtime_hist.p50(), b.flowtime_hist.p50());
  EXPECT_EQ(a.flowtime_hist.p99(), b.flowtime_hist.p99());
}

std::vector<TraceJob> qos_decorated_trace(const SimConfig& config) {
  Rng rng(config.seed);
  Rng arrival_rng = rng.split();
  Rng workload_rng = rng.split();
  PoissonWorkload poisson(
      config.arrival_rate,
      LogNormalSize{config.workload_log_mean, config.workload_log_sigma});
  std::vector<TraceJob> jobs =
      poisson.generate(config.horizon, arrival_rng, workload_rng);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    if (i % 3 == 0) jobs[i].deadline = jobs[i].arrival + 120.0;
    if (i % 4 != 3) {
      jobs[i].user = static_cast<int>(i % 4);
      jobs[i].budget = 5'000.0;
    }
  }
  return jobs;
}

TEST(StreamingSim, MatchesTheMaterializedRunBitForBit) {
  // The tentpole parity gate at unit scale: the same churny QoS trace
  // through SimConfig::workload and through SimConfig::stream must yield
  // identical per-job records, normalized jobs, metrics, and churn.
  SimConfig config = replay_sim();
  config.machine_cost_rate = 0.4;
  const std::vector<TraceJob> jobs = qos_decorated_trace(config);

  SimConfig materialized_config = config;
  materialized_config.workload = std::make_shared<TraceWorkloadSource>(jobs);
  GridSimulator materialized(materialized_config);
  HeuristicBatchScheduler sched_a(HeuristicKind::kMinMin);
  const SimMetrics metrics_a = materialized.run(sched_a);
  ASSERT_GT(metrics_a.jobs_requeued, 0) << "churn never fired; weak test";
  ASSERT_GT(metrics_a.deadline_jobs, 0);
  ASSERT_GT(metrics_a.total_cost, 0.0);

  SimConfig streaming_config = config;
  streaming_config.stream = std::make_shared<MaterializedStream>(jobs);
  GridSimulator streamed(streaming_config);
  std::vector<SimJobRecord> observed_records;
  std::vector<TraceJob> observed_jobs;
  streamed.set_job_observer(
      [&](const SimJobRecord& record, const TraceJob& job) {
        observed_records.push_back(record);
        observed_jobs.push_back(job);
      });
  HeuristicBatchScheduler sched_b(HeuristicKind::kMinMin);
  const SimMetrics metrics_b = streamed.run(sched_b);

  expect_identical_metrics(metrics_a, metrics_b);
  EXPECT_EQ(streamed.churn_trace(), materialized.churn_trace());
  EXPECT_EQ(streamed.machine_busy(), materialized.machine_busy());
  // Streaming leaves the bulk arrays empty and reports through the
  // observer instead — in id order, against the normalized jobs.
  EXPECT_TRUE(streamed.job_records().empty());
  EXPECT_TRUE(streamed.arrival_trace().empty());
  const auto& records = materialized.job_records();
  ASSERT_EQ(observed_records.size(), records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(observed_records[i].id, records[i].id);
    EXPECT_EQ(observed_records[i].arrival, records[i].arrival);
    EXPECT_EQ(observed_records[i].start, records[i].start);
    EXPECT_EQ(observed_records[i].finish, records[i].finish);
    EXPECT_EQ(observed_records[i].machine, records[i].machine);
    EXPECT_EQ(observed_records[i].attempts, records[i].attempts);
    EXPECT_EQ(observed_records[i].rejected, records[i].rejected);
    EXPECT_EQ(observed_jobs[i], materialized.arrival_trace()[i]);
  }
  // The O(1)-memory contract at this scale: the in-flight window peaks
  // well below the full trace (materialized reports the whole trace).
  EXPECT_EQ(metrics_a.peak_resident_jobs, metrics_a.jobs_arrived);
  EXPECT_GT(metrics_b.peak_resident_jobs, 0);
  EXPECT_LT(metrics_b.peak_resident_jobs, metrics_b.jobs_arrived);
}

TEST(StreamingSim, PoissonAdapterMatchesTheLegacyDefault) {
  // MaterializedStream over the default Poisson source, seeded exactly
  // like the simulator seeds itself, is the same simulation as a bare
  // SimConfig — the adapter path costs nothing in fidelity.
  const SimConfig config = replay_sim();
  GridSimulator legacy(config);
  HeuristicBatchScheduler sched_a(HeuristicKind::kMct);
  const SimMetrics a = legacy.run(sched_a);

  SimConfig streaming_config = config;
  Rng rng(config.seed);
  Rng arrival_rng = rng.split();
  Rng workload_rng = rng.split();
  PoissonWorkload poisson(
      config.arrival_rate,
      LogNormalSize{config.workload_log_mean, config.workload_log_sigma});
  streaming_config.stream = std::make_shared<MaterializedStream>(
      poisson, config.horizon, arrival_rng, workload_rng);
  GridSimulator streamed(streaming_config);
  HeuristicBatchScheduler sched_b(HeuristicKind::kMct);
  const SimMetrics b = streamed.run(sched_b);
  expect_identical_metrics(a, b);
  EXPECT_EQ(streamed.churn_trace(), legacy.churn_trace());
  EXPECT_EQ(streamed.workload_name(), "stream(poisson)");
}

TEST(StreamingSim, StreamAndWorkloadAreMutuallyExclusive) {
  SimConfig config;
  config.workload = std::make_shared<TraceWorkloadSource>(
      std::vector<TraceJob>{});
  config.stream =
      std::make_shared<MaterializedStream>(std::vector<TraceJob>{});
  EXPECT_THROW(GridSimulator sim(config), std::invalid_argument);
}

TEST(StreamingSim, RejectsAnInvalidStream) {
  // A stream violating the sorted/finite/positive contract must throw,
  // naming the streaming path.
  class BrokenStream final : public StreamingWorkloadSource {
   public:
    [[nodiscard]] std::string_view name() const noexcept override {
      return "broken";
    }
    bool next_chunk(double, std::vector<TraceJob>& out) override {
      out.push_back({5.0, 100.0, -1});
      out.push_back({1.0, 100.0, -1});  // unsorted
      return false;
    }
  };
  SimConfig config;
  config.horizon = 100.0;
  config.num_machines = 2;
  config.stream = std::make_shared<BrokenStream>();
  GridSimulator sim(config);
  HeuristicBatchScheduler scheduler(HeuristicKind::kMct);
  try {
    (void)sim.run(scheduler);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& error) {
    EXPECT_NE(std::string(error.what()).find("streaming source"),
              std::string::npos)
        << error.what();
  }
}

TEST(StreamingSim, DeclaredButUnsetQosColumnsAreInert) {
  // A stream may declare QoS columns that turn out to hold only
  // sentinels (an SWF whose requested-time column is all -1): the run
  // must be bit-identical to one that never declared them.
  class DeclaredQosStream final : public StreamingWorkloadSource {
   public:
    DeclaredQosStream(std::vector<TraceJob> jobs, StreamQos qos)
        : inner_(std::move(jobs)), qos_(qos) {}
    [[nodiscard]] std::string_view name() const noexcept override {
      return "declared-qos";
    }
    bool next_chunk(double until, std::vector<TraceJob>& out) override {
      return inner_.next_chunk(until, out);
    }
    [[nodiscard]] StreamQos qos() const noexcept override { return qos_; }

   private:
    MaterializedStream inner_;
    StreamQos qos_;
  };

  SimConfig config = replay_sim();
  config.machine_mtbf = 0.0;
  config.machine_mttr = 0.0;
  Rng rng(config.seed);
  Rng arrival_rng = rng.split();
  Rng workload_rng = rng.split();
  PoissonWorkload poisson(
      config.arrival_rate,
      LogNormalSize{config.workload_log_mean, config.workload_log_sigma});
  const std::vector<TraceJob> jobs =
      poisson.generate(config.horizon, arrival_rng, workload_rng);

  SimConfig plain_config = config;
  plain_config.stream = std::make_shared<MaterializedStream>(jobs);
  GridSimulator plain(plain_config);
  HeuristicBatchScheduler sched_a(HeuristicKind::kMinMin);
  const SimMetrics a = plain.run(sched_a);

  SimConfig declared_config = config;
  declared_config.stream = std::make_shared<DeclaredQosStream>(
      jobs, StreamQos{true, true});
  GridSimulator declared(declared_config);
  HeuristicBatchScheduler sched_b(HeuristicKind::kMinMin);
  const SimMetrics b = declared.run(sched_b);

  expect_identical_metrics(a, b);
  EXPECT_EQ(b.deadline_jobs, 0);  // sentinels never became deadlines
}

}  // namespace
}  // namespace gridsched
