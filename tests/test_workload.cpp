#include "workload/workload_source.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <sstream>
#include <string>

#include "sim/grid_simulator.h"
#include "workload/trace_io.h"

namespace gridsched {
namespace {

std::string fixture(const std::string& name) {
  return std::string(GRIDSCHED_TEST_DATA_DIR) + "/" + name;
}

bool sorted_by_arrival(const std::vector<TraceJob>& jobs) {
  return std::is_sorted(jobs.begin(), jobs.end(),
                        [](const TraceJob& a, const TraceJob& b) {
                          return a.arrival < b.arrival;
                        });
}

// ------------------------------------------------------- trace parsing --

TEST(TraceIo, ReadsTwoColumnFixture) {
  const std::vector<TraceJob> jobs =
      read_trace_file(fixture("trace_no_class.csv"));
  ASSERT_EQ(jobs.size(), 3u);
  EXPECT_DOUBLE_EQ(jobs[0].arrival, 0.5);
  EXPECT_DOUBLE_EQ(jobs[0].workload_mi, 1000.0);
  EXPECT_EQ(jobs[0].job_class, -1);
  EXPECT_DOUBLE_EQ(jobs[1].workload_mi, 2500.75);
  EXPECT_DOUBLE_EQ(jobs[2].arrival, 7.0);
}

TEST(TraceIo, ReadsClassColumnWithEmptyFieldAsUnclassed) {
  const std::vector<TraceJob> jobs =
      read_trace_file(fixture("trace_with_class.csv"));
  ASSERT_EQ(jobs.size(), 4u);
  EXPECT_EQ(jobs[0].job_class, 0);
  EXPECT_EQ(jobs[1].job_class, 2);
  EXPECT_EQ(jobs[2].job_class, -1);  // empty field
  EXPECT_EQ(jobs[3].job_class, 1);
}

TEST(TraceIo, SortsOutOfOrderArrivalsStably) {
  const std::vector<TraceJob> jobs =
      read_trace_file(fixture("trace_out_of_order.csv"));
  ASSERT_EQ(jobs.size(), 4u);
  EXPECT_TRUE(sorted_by_arrival(jobs));
  // Stable: the two ties at t=1 keep their file order (200 before 400).
  EXPECT_DOUBLE_EQ(jobs[0].workload_mi, 200.0);
  EXPECT_DOUBLE_EQ(jobs[1].workload_mi, 400.0);
  EXPECT_DOUBLE_EQ(jobs[3].arrival, 5.0);
}

TEST(TraceIo, MalformedRowThrowsNamingTheLine) {
  try {
    (void)read_trace_file(fixture("trace_malformed.csv"));
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& error) {
    EXPECT_NE(std::string(error.what()).find("line 3"), std::string::npos)
        << error.what();
  }
}

TEST(TraceIo, EmptyTraceIsValid) {
  EXPECT_TRUE(read_trace_file(fixture("trace_empty.csv")).empty());
}

TEST(TraceIo, HeaderIsOptional) {
  std::istringstream in("0.5,100\n1.5,200\n");
  const std::vector<TraceJob> jobs = read_trace(in);
  ASSERT_EQ(jobs.size(), 2u);
  EXPECT_DOUBLE_EQ(jobs[1].arrival, 1.5);
}

TEST(TraceIo, RejectsBadRows) {
  std::istringstream wrong_columns("arrival,workload_mi\n1.0,2.0,3,4\n");
  EXPECT_THROW((void)read_trace(wrong_columns), std::runtime_error);
  std::istringstream mixed_columns("0.5,100,1\n1.0,200\n");
  EXPECT_THROW((void)read_trace(mixed_columns), std::runtime_error);
  std::istringstream negative_arrival("-1.0,100\n");
  EXPECT_THROW((void)read_trace(negative_arrival), std::runtime_error);
  std::istringstream zero_size("1.0,0\n");
  EXPECT_THROW((void)read_trace(zero_size), std::runtime_error);
  std::istringstream bad_class("1.0,100,fast\n");
  EXPECT_THROW((void)read_trace(bad_class), std::runtime_error);
  // from_chars parses "nan"/"inf" as doubles; the validator must still
  // reject them (a NaN arrival breaks sorting and strands the job) —
  // even in the first row, which the optional-header heuristic must not
  // swallow (a header is a row that does NOT parse as a double).
  std::istringstream nan_arrival("0.5,100\nnan,100\n");
  EXPECT_THROW((void)read_trace(nan_arrival), std::runtime_error);
  std::istringstream nan_first_row("nan,100\n");
  EXPECT_THROW((void)read_trace(nan_first_row), std::runtime_error);
  std::istringstream inf_size("1.0,inf\n");
  EXPECT_THROW((void)read_trace(inf_size), std::runtime_error);
  std::istringstream empty_first_field(",100\n");
  EXPECT_THROW((void)read_trace(empty_first_field), std::runtime_error);
}

TEST(TraceIo, WriteReadRoundTripIsExact) {
  std::vector<TraceJob> jobs;
  Rng rng(33);
  for (int i = 0; i < 50; ++i) {
    TraceJob job;
    job.arrival = static_cast<double>(i) + rng.uniform();
    job.workload_mi = std::exp(rng.normal(10.0, 0.8));
    job.job_class = i % 3 == 0 ? -1 : i % 3;
    jobs.push_back(job);
  }
  std::ostringstream out;
  write_trace(out, jobs);
  std::istringstream in(out.str());
  const std::vector<TraceJob> back = read_trace(in);
  ASSERT_EQ(back.size(), jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(back[i], jobs[i]) << "job " << i << " mutated in round-trip";
  }
}

TEST(TraceIo, ClasslessTraceOmitsTheClassColumn) {
  const std::vector<TraceJob> jobs = {{1.0, 100.0, -1}, {2.0, 200.0, -1}};
  std::ostringstream out;
  write_trace(out, jobs);
  EXPECT_EQ(out.str().find("class"), std::string::npos);
}

// -------------------------------------------------- synthetic sources --

std::vector<TraceJob> generate(WorkloadSource& source, double horizon,
                               std::uint64_t seed = 5) {
  Rng rng(seed);
  Rng arrival_rng = rng.split();
  Rng workload_rng = rng.split();
  return source.generate(horizon, arrival_rng, workload_rng);
}

TEST(WorkloadSources, EveryKindGeneratesAValidStreamAtMatchedLoad) {
  const double horizon = 2'000.0;
  const double rate = 0.5;
  for (const WorkloadKind kind : all_workload_kinds()) {
    const auto source = make_workload(kind, rate, horizon);
    EXPECT_EQ(source->name(), workload_name(kind));
    const std::vector<TraceJob> jobs = generate(*source, horizon);
    ASSERT_FALSE(jobs.empty()) << workload_name(kind);
    EXPECT_TRUE(sorted_by_arrival(jobs)) << workload_name(kind);
    for (const TraceJob& job : jobs) {
      ASSERT_GE(job.arrival, 0.0);
      ASSERT_LT(job.arrival, horizon);
      ASSERT_GT(job.workload_mi, 0.0);
    }
    // Calibration: expected volume = rate * horizon = 1000 jobs. Bursty
    // gets a much wider band — its phases scale with the horizon (~3
    // on/off cycles whatever the length), so phase luck moves the
    // realized count by multiples, not percent.
    const double count = static_cast<double>(jobs.size());
    const bool bursty = kind == WorkloadKind::kBursty;
    EXPECT_GT(count, (bursty ? 0.2 : 0.45) * rate * horizon)
        << workload_name(kind);
    EXPECT_LT(count, (bursty ? 4.0 : 1.8) * rate * horizon)
        << workload_name(kind);
  }
}

TEST(WorkloadSources, GenerationIsDeterministicInTheSeed) {
  for (const WorkloadKind kind : all_workload_kinds()) {
    const auto source = make_workload(kind, 0.5, 500.0);
    EXPECT_EQ(generate(*source, 500.0, 9), generate(*source, 500.0, 9))
        << workload_name(kind);
  }
}

TEST(WorkloadSources, BurstyConcentratesArrivalsMoreThanPoisson) {
  // Dispersion test: cut the horizon into windows; an on/off process has a
  // much higher variance-to-mean ratio of per-window counts than Poisson
  // (for which it is ~1).
  const double horizon = 4'000.0;
  const auto dispersion = [&](WorkloadKind kind) {
    const auto source = make_workload(kind, 0.5, horizon);
    const std::vector<TraceJob> jobs = generate(*source, horizon, 3);
    const int windows = 40;
    std::vector<double> counts(windows, 0.0);
    for (const TraceJob& job : jobs) {
      const int w = std::min(
          windows - 1, static_cast<int>(job.arrival / horizon *
                                        static_cast<double>(windows)));
      counts[static_cast<std::size_t>(w)] += 1.0;
    }
    double mean = 0.0;
    for (const double c : counts) mean += c;
    mean /= windows;
    double var = 0.0;
    for (const double c : counts) var += (c - mean) * (c - mean);
    var /= windows - 1;
    return var / mean;
  };
  EXPECT_GT(dispersion(WorkloadKind::kBursty),
            3.0 * dispersion(WorkloadKind::kPoisson));
}

TEST(WorkloadSources, DiurnalPeaksWhereTheSineDoes) {
  // period = horizon / 2 and phase 0: the first quarter-cycle [0, h/8) is
  // the rising peak, [h/4, 3h/8) the trough.
  const double horizon = 8'000.0;
  const auto source = make_workload(WorkloadKind::kDiurnal, 0.5, horizon);
  const std::vector<TraceJob> jobs = generate(*source, horizon, 11);
  int peak = 0;
  int trough = 0;
  for (const TraceJob& job : jobs) {
    if (job.arrival < horizon / 8.0) ++peak;
    if (job.arrival >= horizon / 4.0 && job.arrival < 3.0 * horizon / 8.0) {
      ++trough;
    }
  }
  EXPECT_GT(peak, 2 * trough);
}

TEST(WorkloadSources, FlashCrowdSpikesInsideItsWindow) {
  const double horizon = 4'000.0;
  const auto source = make_workload(WorkloadKind::kFlashCrowd, 0.5, horizon);
  const std::vector<TraceJob> jobs = generate(*source, horizon, 13);
  // Default window [0.4, 0.5) * horizon at 5x the base rate; compare with
  // the same-sized window right before it.
  int inside = 0;
  int before = 0;
  for (const TraceJob& job : jobs) {
    const double frac = job.arrival / horizon;
    if (frac >= 0.4 && frac < 0.5) ++inside;
    if (frac >= 0.3 && frac < 0.4) ++before;
  }
  EXPECT_GT(inside, 3 * before);
}

TEST(WorkloadSources, HeavyTailHasElephants) {
  const double horizon = 4'000.0;
  const auto pareto = make_workload(WorkloadKind::kHeavyTail, 0.5, horizon);
  const std::vector<TraceJob> jobs = generate(*pareto, horizon, 17);
  std::vector<double> sizes;
  for (const TraceJob& job : jobs) sizes.push_back(job.workload_mi);
  std::sort(sizes.begin(), sizes.end());
  const double median = sizes[sizes.size() / 2];
  const double max = sizes.back();
  // A LogNormal(10, 0.8) max/median over ~2000 draws sits around 10-20x;
  // the bounded Pareto's elephants dwarf that.
  EXPECT_GT(max / median, 50.0);
}

TEST(TraceWorkloadSource, FiltersToTheHorizonAndIgnoresRngs) {
  TraceWorkloadSource source({{1.0, 10.0, -1}, {5.0, 20.0, -1},
                              {50.0, 30.0, -1}});
  const std::vector<TraceJob> jobs = generate(source, 10.0);
  ASSERT_EQ(jobs.size(), 2u);
  EXPECT_DOUBLE_EQ(jobs[1].arrival, 5.0);
}

// --------------------------------------------- simulator integration --

SimConfig replay_sim() {
  SimConfig config;
  config.horizon = 400.0;
  config.arrival_rate = 0.5;
  config.scheduler_period = 40.0;
  config.num_machines = 6;
  config.consistency_noise = 0.2;
  config.num_job_classes = 3;
  config.machine_mtbf = 150.0;  // churn must survive the round-trip too
  config.machine_mttr = 30.0;
  config.seed = 42;
  return config;
}

void expect_identical_runs(const SimMetrics& a, const SimMetrics& b,
                           const GridSimulator& sim_a,
                           const GridSimulator& sim_b) {
  // Bit-identical, not approximately equal: everything but the wall-clock
  // scheduler_cpu_ms must reproduce exactly.
  EXPECT_EQ(a.jobs_arrived, b.jobs_arrived);
  EXPECT_EQ(a.jobs_completed, b.jobs_completed);
  EXPECT_EQ(a.jobs_requeued, b.jobs_requeued);
  EXPECT_EQ(a.activations, b.activations);
  EXPECT_EQ(a.mean_flowtime, b.mean_flowtime);
  EXPECT_EQ(a.mean_wait, b.mean_wait);
  EXPECT_EQ(a.mean_slowdown, b.mean_slowdown);
  EXPECT_EQ(a.max_flowtime, b.max_flowtime);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.utilization, b.utilization);
  const auto& records_a = sim_a.job_records();
  const auto& records_b = sim_b.job_records();
  ASSERT_EQ(records_a.size(), records_b.size());
  for (std::size_t i = 0; i < records_a.size(); ++i) {
    EXPECT_EQ(records_a[i].id, records_b[i].id);
    EXPECT_EQ(records_a[i].arrival, records_b[i].arrival);
    EXPECT_EQ(records_a[i].start, records_b[i].start);
    EXPECT_EQ(records_a[i].finish, records_b[i].finish);
    EXPECT_EQ(records_a[i].machine, records_b[i].machine);
    EXPECT_EQ(records_a[i].attempts, records_b[i].attempts);
  }
}

TEST(DeterministicReplay, RecordedPoissonRunReplaysBitForBit) {
  // The tentpole regression: record a run (classes + noise + churn all
  // on), serialize the trace through text, replay it, and demand the
  // identical per-job records and metrics.
  const SimConfig config = replay_sim();
  GridSimulator recorded(config);
  HeuristicBatchScheduler sched_a(HeuristicKind::kMinMin);
  const SimMetrics original = recorded.run(sched_a);
  ASSERT_GT(original.jobs_arrived, 0);
  ASSERT_GT(original.jobs_requeued, 0) << "churn never fired; weak test";

  std::ostringstream out;
  write_trace(out, recorded.arrival_trace());
  std::istringstream in(out.str());

  SimConfig replay_config = config;
  replay_config.workload =
      std::make_shared<TraceWorkloadSource>(read_trace(in));
  GridSimulator replayed(replay_config);
  HeuristicBatchScheduler sched_b(HeuristicKind::kMinMin);
  const SimMetrics replay = replayed.run(sched_b);

  expect_identical_runs(original, replay, recorded, replayed);
}

// ----------------------------------------------------------- class mix --

TEST(ClassMixWorkload, AssignsClassesByRateWeights) {
  ClassMixWorkload mix(std::make_shared<PoissonWorkload>(5.0, LogNormalSize{}),
                       {3.0, 1.0});
  EXPECT_EQ(mix.name(), "class-mix(poisson)");
  EXPECT_EQ(mix.num_classes(), 2);
  Rng arrivals(7);
  Rng sizes(8);
  const std::vector<TraceJob> jobs = mix.generate(2'000.0, arrivals, sizes);
  ASSERT_GT(jobs.size(), 1'000u);
  int class_zero = 0;
  for (const TraceJob& job : jobs) {
    ASSERT_GE(job.job_class, 0);
    ASSERT_LT(job.job_class, 2);
    if (job.job_class == 0) ++class_zero;
  }
  // 75/25 split: with ~10k draws the observed share sits well within a
  // few percent of the weight ratio.
  const double share = static_cast<double>(class_zero) /
                       static_cast<double>(jobs.size());
  EXPECT_NEAR(share, 0.75, 0.05);
}

TEST(ClassMixWorkload, ZeroWeightClassesAreNeverDrawn) {
  ClassMixWorkload mix(std::make_shared<PoissonWorkload>(2.0, LogNormalSize{}),
                       {0.0, 1.0, 0.0});
  Rng arrivals(3);
  Rng sizes(4);
  for (const TraceJob& job : mix.generate(500.0, arrivals, sizes)) {
    EXPECT_EQ(job.job_class, 1);
  }
}

TEST(ClassMixWorkload, WrappingDoesNotPerturbTheBaseStream) {
  // The wrapper draws classes only after the base stream is materialized,
  // so arrivals and sizes are bit-identical to the unwrapped source.
  Rng arrivals_a(11);
  Rng sizes_a(12);
  PoissonWorkload plain(1.0, LogNormalSize{});
  const std::vector<TraceJob> bare = plain.generate(300.0, arrivals_a,
                                                    sizes_a);
  Rng arrivals_b(11);
  Rng sizes_b(12);
  ClassMixWorkload mix(std::make_shared<PoissonWorkload>(1.0,
                                                         LogNormalSize{}),
                       {1.0, 1.0});
  const std::vector<TraceJob> mixed = mix.generate(300.0, arrivals_b,
                                                   sizes_b);
  ASSERT_EQ(bare.size(), mixed.size());
  for (std::size_t i = 0; i < bare.size(); ++i) {
    EXPECT_EQ(bare[i].arrival, mixed[i].arrival);
    EXPECT_EQ(bare[i].workload_mi, mixed[i].workload_mi);
  }
}

TEST(ClassMixWorkload, RejectsBadWeightsAndNullBase) {
  const auto base = std::make_shared<PoissonWorkload>(1.0, LogNormalSize{});
  EXPECT_THROW(ClassMixWorkload(nullptr, {1.0}), std::invalid_argument);
  EXPECT_THROW(ClassMixWorkload(base, {}), std::invalid_argument);
  EXPECT_THROW(ClassMixWorkload(base, {1.0, -0.5}), std::invalid_argument);
  EXPECT_THROW(ClassMixWorkload(base, {0.0, 0.0}), std::invalid_argument);
}

TEST(DeterministicReplay, ClassMixRoundTripsThroughTheTraceClassColumn) {
  // The class-mix classes must survive record -> CSV -> replay verbatim:
  // trace-supplied classes win over the id hash, so the replayed run is
  // bit-identical, ETCs and all.
  SimConfig config = replay_sim();
  config.workload = std::make_shared<ClassMixWorkload>(
      std::make_shared<PoissonWorkload>(
          config.arrival_rate,
          LogNormalSize{config.workload_log_mean, config.workload_log_sigma}),
      std::vector<double>{0.6, 0.3, 0.1});
  GridSimulator recorded(config);
  HeuristicBatchScheduler sched_a(HeuristicKind::kMinMin);
  const SimMetrics original = recorded.run(sched_a);
  ASSERT_GT(original.jobs_arrived, 0);

  std::ostringstream out;
  write_trace(out, recorded.arrival_trace());
  std::istringstream in(out.str());

  SimConfig replay_config = config;
  replay_config.workload =
      std::make_shared<TraceWorkloadSource>(read_trace(in));
  GridSimulator replayed(replay_config);
  HeuristicBatchScheduler sched_b(HeuristicKind::kMinMin);
  const SimMetrics replay = replayed.run(sched_b);

  expect_identical_runs(original, replay, recorded, replayed);
  // The skew survives: class 0 dominates the recorded trace.
  int class_zero = 0;
  for (const TraceJob& job : recorded.arrival_trace()) {
    if (job.job_class == 0) ++class_zero;
  }
  EXPECT_GT(class_zero, static_cast<int>(
      recorded.arrival_trace().size() / 3));
}

TEST(DeterministicReplay, ExplicitPoissonSourceMatchesTheLegacyDefault) {
  // A SimConfig without a source and one with the equivalent
  // PoissonWorkload must be the same simulation.
  const SimConfig config = replay_sim();
  GridSimulator legacy(config);
  HeuristicBatchScheduler sched_a(HeuristicKind::kMct);
  const SimMetrics a = legacy.run(sched_a);

  SimConfig explicit_config = config;
  explicit_config.workload = std::make_shared<PoissonWorkload>(
      config.arrival_rate,
      LogNormalSize{config.workload_log_mean, config.workload_log_sigma});
  GridSimulator with_source(explicit_config);
  HeuristicBatchScheduler sched_b(HeuristicKind::kMct);
  const SimMetrics b = with_source.run(sched_b);

  expect_identical_runs(a, b, legacy, with_source);
}

TEST(GridSimulator, ArrivalTraceRecordsEffectiveClasses) {
  SimConfig config = replay_sim();
  config.machine_mtbf = 0.0;
  config.machine_mttr = 0.0;
  GridSimulator sim(config);
  HeuristicBatchScheduler scheduler(HeuristicKind::kMct);
  (void)sim.run(scheduler);
  ASSERT_FALSE(sim.arrival_trace().empty());
  for (const TraceJob& job : sim.arrival_trace()) {
    EXPECT_GE(job.job_class, 0);
    EXPECT_LT(job.job_class, config.num_job_classes);
  }
}

TEST(GridSimulator, TraceSuppliedClassesWinOverTheHash) {
  SimConfig config;
  config.horizon = 100.0;
  config.scheduler_period = 20.0;
  config.num_machines = 4;
  config.num_job_classes = 2;
  config.workload = std::make_shared<TraceWorkloadSource>(std::vector<TraceJob>{
      {1.0, 500.0, 1}, {2.0, 600.0, -1}, {3.0, 700.0, 5}});
  GridSimulator sim(config);
  HeuristicBatchScheduler scheduler(HeuristicKind::kMct);
  (void)sim.run(scheduler);
  const auto& trace = sim.arrival_trace();
  ASSERT_EQ(trace.size(), 3u);
  EXPECT_EQ(trace[0].job_class, 1);   // explicit, kept
  EXPECT_GE(trace[1].job_class, 0);   // unclassed, hash filled one in
  EXPECT_LT(trace[1].job_class, 2);
  EXPECT_EQ(trace[2].job_class, 1);   // out of range, wrapped modulo
}

TEST(GridSimulator, EmptyTraceRunsToCompletionWithZeroJobs) {
  SimConfig config;
  config.horizon = 100.0;
  config.scheduler_period = 20.0;
  config.num_machines = 2;
  config.arrival_rate = 0.0;  // meaningless (and allowed) with a source
  config.workload =
      std::make_shared<TraceWorkloadSource>(std::vector<TraceJob>{});
  GridSimulator sim(config);
  HeuristicBatchScheduler scheduler(HeuristicKind::kMct);
  const SimMetrics metrics = sim.run(scheduler);
  EXPECT_EQ(metrics.jobs_arrived, 0);
  EXPECT_EQ(metrics.jobs_completed, 0);
  EXPECT_EQ(metrics.activations, 0);
}

TEST(GridSimulator, RejectsAnInvalidSourceStream) {
  SimConfig config;
  config.horizon = 100.0;
  config.num_machines = 2;
  // TraceWorkloadSource sorts, so feed the simulator a broken stream via a
  // stub source instead.
  class BrokenSource final : public WorkloadSource {
   public:
    [[nodiscard]] std::string_view name() const noexcept override {
      return "broken";
    }
    [[nodiscard]] std::vector<TraceJob> generate(double, Rng&,
                                                 Rng&) override {
      return {{5.0, 100.0, -1}, {1.0, 100.0, -1}};  // unsorted
    }
  };
  config.workload = std::make_shared<BrokenSource>();
  GridSimulator sim(config);
  HeuristicBatchScheduler scheduler(HeuristicKind::kMct);
  EXPECT_THROW((void)sim.run(scheduler), std::runtime_error);
}

}  // namespace
}  // namespace gridsched
