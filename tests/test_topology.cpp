#include "cma/topology.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace gridsched {
namespace {

bool contains(std::span<const int> cells, int cell) {
  return std::find(cells.begin(), cells.end(), cell) != cells.end();
}

TEST(Topology, SizesMatchFig1Patterns) {
  // On the paper's 5x5 mesh every pattern realizes its nominal size.
  const Topology l5(5, 5, NeighborhoodKind::kL5);
  const Topology l9(5, 5, NeighborhoodKind::kL9);
  const Topology c9(5, 5, NeighborhoodKind::kC9);
  const Topology c13(5, 5, NeighborhoodKind::kC13);
  const Topology pan(5, 5, NeighborhoodKind::kPanmictic);
  for (int cell = 0; cell < 25; ++cell) {
    EXPECT_EQ(l5.neighbors(cell).size(), 5u);
    EXPECT_EQ(l9.neighbors(cell).size(), 9u);
    EXPECT_EQ(c9.neighbors(cell).size(), 9u);
    EXPECT_EQ(c13.neighbors(cell).size(), 13u);
    EXPECT_EQ(pan.neighbors(cell).size(), 25u);
  }
}

TEST(Topology, NeighborhoodsIncludeTheCenter) {
  for (NeighborhoodKind kind :
       {NeighborhoodKind::kPanmictic, NeighborhoodKind::kL5,
        NeighborhoodKind::kL9, NeighborhoodKind::kC9,
        NeighborhoodKind::kC13}) {
    const Topology topo(5, 5, kind);
    for (int cell = 0; cell < topo.size(); ++cell) {
      EXPECT_TRUE(contains(topo.neighbors(cell), cell))
          << neighborhood_name(kind) << " cell " << cell;
    }
  }
}

TEST(Topology, NoDuplicateNeighbors) {
  for (NeighborhoodKind kind :
       {NeighborhoodKind::kL5, NeighborhoodKind::kL9, NeighborhoodKind::kC9,
        NeighborhoodKind::kC13}) {
    for (auto [h, w] : {std::pair{5, 5}, std::pair{3, 3}, std::pair{2, 4},
                        std::pair{1, 6}, std::pair{4, 2}}) {
      const Topology topo(h, w, kind);
      for (int cell = 0; cell < topo.size(); ++cell) {
        const auto n = topo.neighbors(cell);
        const std::set<int> unique(n.begin(), n.end());
        EXPECT_EQ(unique.size(), n.size())
            << neighborhood_name(kind) << " " << h << "x" << w;
      }
    }
  }
}

TEST(Topology, L5IsVonNeumannWithWraparound) {
  const Topology topo(5, 5, NeighborhoodKind::kL5);
  // Corner cell 0 = (0,0): wraps to (4,0)=20, (1,0)=5, (0,4)=4, (0,1)=1.
  const auto n = topo.neighbors(0);
  EXPECT_TRUE(contains(n, 0));
  EXPECT_TRUE(contains(n, 20));
  EXPECT_TRUE(contains(n, 5));
  EXPECT_TRUE(contains(n, 4));
  EXPECT_TRUE(contains(n, 1));
}

TEST(Topology, C9IsMooreBlock) {
  const Topology topo(5, 5, NeighborhoodKind::kC9);
  // Interior cell (2,2) = 12: the 3x3 block around it.
  const auto n = topo.neighbors(12);
  for (int cell : {6, 7, 8, 11, 12, 13, 16, 17, 18}) {
    EXPECT_TRUE(contains(n, cell)) << cell;
  }
}

TEST(Topology, L9AddsDistanceTwoAxials) {
  const Topology topo(5, 5, NeighborhoodKind::kL9);
  const auto n = topo.neighbors(12);  // (2,2)
  for (int cell : {12, 7, 17, 11, 13, 2, 22, 10, 14}) {
    EXPECT_TRUE(contains(n, cell)) << cell;
  }
}

TEST(Topology, C13IsC9PlusAxials) {
  const Topology topo(5, 5, NeighborhoodKind::kC13);
  const auto n = topo.neighbors(12);
  for (int cell : {6, 7, 8, 11, 12, 13, 16, 17, 18, 2, 22, 10, 14}) {
    EXPECT_TRUE(contains(n, cell)) << cell;
  }
}

TEST(Topology, NeighborhoodIsSymmetric) {
  // All patterns are symmetric offsets: a in N(b) <=> b in N(a).
  for (NeighborhoodKind kind :
       {NeighborhoodKind::kL5, NeighborhoodKind::kL9, NeighborhoodKind::kC9,
        NeighborhoodKind::kC13}) {
    const Topology topo(5, 5, kind);
    for (int a = 0; a < topo.size(); ++a) {
      for (int b : topo.neighbors(a)) {
        EXPECT_TRUE(contains(topo.neighbors(b), a))
            << neighborhood_name(kind) << " " << a << "<->" << b;
      }
    }
  }
}

TEST(Topology, RowColConversions) {
  const Topology topo(4, 6, NeighborhoodKind::kL5);
  EXPECT_EQ(topo.size(), 24);
  EXPECT_EQ(topo.cell_at(2, 3), 15);
  EXPECT_EQ(topo.row_of(15), 2);
  EXPECT_EQ(topo.col_of(15), 3);
}

TEST(Topology, TinyMeshesCollapseDuplicates) {
  // 1x3 ring: L5's {N,S} wrap onto the center -> neighborhood is {self,
  // left, right} = 3 cells.
  const Topology topo(1, 3, NeighborhoodKind::kL5);
  EXPECT_EQ(topo.neighbors(0).size(), 3u);
  // 1x1: everything degenerates to the single cell.
  const Topology dot(1, 1, NeighborhoodKind::kC13);
  EXPECT_EQ(dot.neighbors(0).size(), 1u);
}

TEST(Topology, RejectsEmptyMesh) {
  EXPECT_THROW(Topology(0, 5, NeighborhoodKind::kL5), std::invalid_argument);
  EXPECT_THROW(Topology(5, -1, NeighborhoodKind::kL5), std::invalid_argument);
}

TEST(Topology, PanmicticCoversWholePopulation) {
  const Topology topo(3, 4, NeighborhoodKind::kPanmictic);
  for (int cell = 0; cell < topo.size(); ++cell) {
    const auto n = topo.neighbors(cell);
    EXPECT_EQ(n.size(), 12u);
    EXPECT_EQ(n[0], cell);  // center first
  }
}

TEST(Topology, NamesAreStable) {
  EXPECT_EQ(neighborhood_name(NeighborhoodKind::kPanmictic), "Panmictic");
  EXPECT_EQ(neighborhood_name(NeighborhoodKind::kL5), "L5");
  EXPECT_EQ(neighborhood_name(NeighborhoodKind::kL9), "L9");
  EXPECT_EQ(neighborhood_name(NeighborhoodKind::kC9), "C9");
  EXPECT_EQ(neighborhood_name(NeighborhoodKind::kC13), "C13");
}

}  // namespace
}  // namespace gridsched
