#include "core/evaluator.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>
#include <vector>

#include "cma/crossover.h"
#include "cma/local_search.h"
#include "cma/mutation.h"
#include "core/individual.h"
#include "etc/instance.h"

namespace gridsched {
namespace {

/// 3 jobs x 2 machines with hand-computable objective values.
EtcMatrix tiny_instance() {
  //          m0   m1
  // job 0     2    4
  // job 1     3    1
  // job 2     5    2
  return EtcMatrix(3, 2, {2, 4, 3, 1, 5, 2});
}

Schedule tiny_schedule() {
  Schedule s(3);
  s[0] = 0;
  s[1] = 0;
  s[2] = 1;
  return s;
}

TEST(Evaluator, HandComputedCompletionAndMakespan) {
  const EtcMatrix etc = tiny_instance();
  ScheduleEvaluator eval(etc);
  eval.reset(tiny_schedule());
  EXPECT_DOUBLE_EQ(eval.completion(0), 5.0);  // 2 + 3
  EXPECT_DOUBLE_EQ(eval.completion(1), 2.0);
  EXPECT_DOUBLE_EQ(eval.makespan(), 5.0);
  EXPECT_EQ(eval.makespan_machine(), 0);
}

TEST(Evaluator, HandComputedSptFlowtime) {
  const EtcMatrix etc = tiny_instance();
  ScheduleEvaluator eval(etc);
  eval.reset(tiny_schedule());
  // m0 runs j0 (etc 2) before j1 (etc 3): finishing times 2 and 5.
  EXPECT_DOUBLE_EQ(eval.machine_flow(0), 7.0);
  EXPECT_DOUBLE_EQ(eval.machine_flow(1), 2.0);
  EXPECT_DOUBLE_EQ(eval.flowtime(), 9.0);
}

TEST(Evaluator, FitnessMatchesPaperFormula) {
  const EtcMatrix etc = tiny_instance();
  ScheduleEvaluator eval(etc);
  eval.reset(tiny_schedule());
  const FitnessWeights w{0.75};
  // 0.75 * 5 + 0.25 * (9 / 2)
  EXPECT_DOUBLE_EQ(eval.fitness(w), 4.875);
}

TEST(Evaluator, ReadyTimesShiftCompletionAndFlow) {
  EtcMatrix etc = tiny_instance();
  etc.set_ready_time(0, 1.0);
  etc.set_ready_time(1, 2.0);
  ScheduleEvaluator eval(etc);
  eval.reset(tiny_schedule());
  EXPECT_DOUBLE_EQ(eval.completion(0), 6.0);
  EXPECT_DOUBLE_EQ(eval.completion(1), 4.0);
  EXPECT_DOUBLE_EQ(eval.makespan(), 6.0);
  // m0: finishes at 3 and 6 -> 9. m1: finishes at 4 -> 4.
  EXPECT_DOUBLE_EQ(eval.flowtime(), 13.0);
}

TEST(Evaluator, EmptyMachineContributesReadyTimeToMakespanOnly) {
  EtcMatrix etc = tiny_instance();
  etc.set_ready_time(1, 50.0);
  ScheduleEvaluator eval(etc);
  Schedule s(3, 0);  // everything on m0
  eval.reset(s);
  EXPECT_DOUBLE_EQ(eval.completion(1), 50.0);
  EXPECT_DOUBLE_EQ(eval.makespan(), 50.0);
  EXPECT_DOUBLE_EQ(eval.machine_flow(1), 0.0);  // no jobs, no flow
}

TEST(Evaluator, ApplyMoveUpdatesEverything) {
  const EtcMatrix etc = tiny_instance();
  ScheduleEvaluator eval(etc);
  eval.reset(tiny_schedule());
  eval.apply_move(1, 1);  // j1: m0 -> m1 (etc 1)
  EXPECT_EQ(eval.schedule()[1], 1);
  EXPECT_DOUBLE_EQ(eval.completion(0), 2.0);
  EXPECT_DOUBLE_EQ(eval.completion(1), 3.0);
  EXPECT_DOUBLE_EQ(eval.makespan(), 3.0);
  // m1 SPT: j1 (1) then j2 (2): finishes 1 and 3 -> 4; m0: 2.
  EXPECT_DOUBLE_EQ(eval.flowtime(), 6.0);
  eval.check_consistency();
}

TEST(Evaluator, ApplySwapUpdatesEverything) {
  const EtcMatrix etc = tiny_instance();
  ScheduleEvaluator eval(etc);
  eval.reset(tiny_schedule());
  eval.apply_swap(0, 2);  // j0 -> m1 (etc 4), j2 -> m0 (etc 5)
  EXPECT_EQ(eval.schedule()[0], 1);
  EXPECT_EQ(eval.schedule()[2], 0);
  EXPECT_DOUBLE_EQ(eval.completion(0), 8.0);  // 3 + 5
  EXPECT_DOUBLE_EQ(eval.completion(1), 4.0);
  EXPECT_DOUBLE_EQ(eval.makespan(), 8.0);
  // m0 SPT: j1(3) F=3, j2(5) F=8 -> 11; m1: j0(4) F=4.
  EXPECT_DOUBLE_EQ(eval.flowtime(), 15.0);
  eval.check_consistency();
}

TEST(Evaluator, PreviewMoveMatchesApply) {
  const EtcMatrix etc = tiny_instance();
  ScheduleEvaluator eval(etc);
  eval.reset(tiny_schedule());
  const auto preview = eval.preview_move(1, 1);
  eval.apply_move(1, 1);
  EXPECT_DOUBLE_EQ(preview.objectives.makespan, eval.makespan());
  EXPECT_DOUBLE_EQ(preview.objectives.flowtime, eval.flowtime());
}

TEST(Evaluator, PreviewSwapMatchesApply) {
  const EtcMatrix etc = tiny_instance();
  ScheduleEvaluator eval(etc);
  eval.reset(tiny_schedule());
  const auto preview = eval.preview_swap(0, 2);
  eval.apply_swap(0, 2);
  EXPECT_DOUBLE_EQ(preview.objectives.makespan, eval.makespan());
  EXPECT_DOUBLE_EQ(preview.objectives.flowtime, eval.flowtime());
}

TEST(Evaluator, PreviewMoveToSameMachineIsIdentity) {
  const EtcMatrix etc = tiny_instance();
  ScheduleEvaluator eval(etc);
  eval.reset(tiny_schedule());
  const auto preview = eval.preview_move(0, 0);
  EXPECT_DOUBLE_EQ(preview.objectives.makespan, eval.makespan());
  EXPECT_DOUBLE_EQ(preview.objectives.flowtime, eval.flowtime());
}

TEST(Evaluator, SwapOnSameMachineThrows) {
  const EtcMatrix etc = tiny_instance();
  ScheduleEvaluator eval(etc);
  eval.reset(tiny_schedule());
  EXPECT_THROW((void)eval.preview_swap(0, 1), std::invalid_argument);
  EXPECT_THROW(eval.apply_swap(0, 1), std::invalid_argument);
}

TEST(Evaluator, ResetRejectsIncompleteOrMismatched) {
  const EtcMatrix etc = tiny_instance();
  ScheduleEvaluator eval(etc);
  EXPECT_THROW(eval.reset(Schedule(3)), std::invalid_argument);       // -1s
  EXPECT_THROW(eval.reset(Schedule(2, 0)), std::invalid_argument);    // size
  Schedule bad(3, 0);
  bad[2] = 2;  // machine out of range
  EXPECT_THROW(eval.reset(bad), std::invalid_argument);
}

TEST(Evaluator, MachineJobsSortedAscendingByEtc) {
  InstanceSpec spec;
  spec.num_jobs = 40;
  spec.num_machines = 4;
  const EtcMatrix etc = generate_instance(spec);
  Rng rng(1);
  ScheduleEvaluator eval(etc);
  eval.reset(Schedule::random(40, 4, rng));
  for (MachineId m = 0; m < 4; ++m) {
    const auto& jobs = eval.machine_jobs(m);
    EXPECT_TRUE(std::is_sorted(jobs.begin(), jobs.end()));
    for (const auto& [cost, job] : jobs) {
      EXPECT_EQ(eval.schedule()[job], m);
      EXPECT_DOUBLE_EQ(cost, etc(job, m));
    }
  }
}

TEST(Evaluator, ZeroMachineMakespanThrows) {
  // A default EtcMatrix has no machines, so there is no completion time to
  // report: makespan()/makespan_machine() must refuse instead of reading
  // an empty top-k cache.
  const EtcMatrix etc;
  ScheduleEvaluator eval(etc);
  EXPECT_THROW((void)eval.makespan(), std::logic_error);
  EXPECT_THROW((void)eval.makespan_machine(), std::logic_error);
  EXPECT_DOUBLE_EQ(eval.flowtime(), 0.0);  // an empty sum is still a sum
}

// The preview contract is EXACT: preview_move/preview_swap must equal
// apply-then-measure bit for bit, because the applies adopt the preview's
// closed-form scalars. A long random walk interleaving previews, applies
// and periodic canonicalize() pins that contract — including on an
// all-integer instance where equal-ETC ties force the id-ordered
// tie-break through the insertion-rank fast path.
void fuzz_walk(const EtcMatrix& etc, std::uint64_t seed, int steps) {
  Rng rng(seed);
  ScheduleEvaluator eval(etc);
  eval.reset(Schedule::random(etc.num_jobs(), etc.num_machines(), rng));
  ScheduleEvaluator fresh(etc);

  for (int step = 0; step < steps; ++step) {
    const JobId a = rng.uniform_int(0, etc.num_jobs() - 1);
    if (rng.chance(0.5)) {
      MachineId to = rng.uniform_int(0, etc.num_machines() - 2);
      if (to >= eval.schedule()[a]) ++to;
      const auto preview = eval.preview_move(a, to);
      eval.apply_move(a, to);
      ASSERT_EQ(preview.objectives.makespan, eval.makespan()) << step;
      ASSERT_EQ(preview.objectives.flowtime, eval.flowtime()) << step;
    } else {
      const JobId b = rng.uniform_int(0, etc.num_jobs() - 1);
      if (b == a || eval.schedule()[a] == eval.schedule()[b]) continue;
      const auto preview = eval.preview_swap(a, b);
      eval.apply_swap(a, b);
      ASSERT_EQ(preview.objectives.makespan, eval.makespan()) << step;
      ASSERT_EQ(preview.objectives.flowtime, eval.flowtime()) << step;
    }

    if (step % 256 == 255) {
      ASSERT_NO_THROW(eval.check_consistency()) << step;
      // After canonicalize() the state must be bitwise identical to a
      // fresh reset of the same schedule — fast scalars included.
      eval.canonicalize();
      fresh.reset(eval.schedule());
      ASSERT_EQ(fresh.makespan(), eval.makespan()) << step;
      ASSERT_EQ(fresh.flowtime(), eval.flowtime()) << step;
      for (MachineId m = 0; m < etc.num_machines(); ++m) {
        ASSERT_EQ(fresh.completion(m), eval.completion(m)) << step;
        ASSERT_EQ(fresh.machine_flow(m), eval.machine_flow(m)) << step;
      }
    }
  }
  eval.check_consistency();
}

TEST(Evaluator, FuzzWalkPreviewExactlyEqualsApply) {
  InstanceSpec spec;
  spec.num_jobs = 80;
  spec.num_machines = 10;
  EtcMatrix etc = generate_instance(spec);
  Rng ready_rng(11);
  for (MachineId m = 0; m < etc.num_machines(); ++m) {
    etc.set_ready_time(m, ready_rng.uniform(0.0, 50.0));
  }
  fuzz_walk(etc, 2024, 4096);
}

TEST(Evaluator, FuzzWalkSurvivesEqualEtcTies) {
  // Small-integer ETC values make duplicate keys the common case, so the
  // strictly-less insertion count plus the id-ordered tie walk is
  // exercised on nearly every step.
  EtcMatrix etc(48, 6);
  Rng rng(77);
  for (JobId j = 0; j < etc.num_jobs(); ++j) {
    for (MachineId m = 0; m < etc.num_machines(); ++m) {
      etc.set(j, m, static_cast<double>(rng.uniform_int(1, 4)));
    }
  }
  fuzz_walk(etc, 4242, 4096);
}

// ---------------------------------------------------------------------------
// reset_to: the gene-diff replay must be indistinguishable from a fresh
// rebuild — bitwise, not approximately.
// ---------------------------------------------------------------------------

TEST(Evaluator, ResetToMatchesFreshResetBitwise) {
  InstanceSpec spec;
  spec.num_jobs = 60;
  spec.num_machines = 8;
  const EtcMatrix etc = generate_instance(spec);
  Rng rng(31);
  const Schedule base = Schedule::random(60, 8, rng);

  ScheduleEvaluator delta(etc);
  delta.reset(base);
  ScheduleEvaluator fresh(etc);

  for (const int diff_genes : {0, 1, 4, 17, 60}) {
    Schedule target = base;
    for (int d = 0; d < diff_genes; ++d) {
      target[rng.uniform_int(0, 59)] = rng.uniform_int(0, 7);
    }
    delta.reset_to(target);
    fresh.reset(target);
    ASSERT_EQ(fresh.makespan(), delta.makespan()) << diff_genes;
    ASSERT_EQ(fresh.flowtime(), delta.flowtime()) << diff_genes;
    ASSERT_EQ(fresh.makespan_machine(), delta.makespan_machine());
    for (MachineId m = 0; m < 8; ++m) {
      ASSERT_EQ(fresh.completion(m), delta.completion(m));
      ASSERT_EQ(fresh.machine_flow(m), delta.machine_flow(m));
      ASSERT_EQ(fresh.machine_jobs(m), delta.machine_jobs(m));
    }
    delta.check_consistency();
  }
}

TEST(Evaluator, ResetToChainStaysCanonical) {
  // A long chain of reset_to calls (the offspring pipeline's life) must
  // never drift from the fresh-reset state it claims to reproduce.
  InstanceSpec spec;
  spec.num_jobs = 50;
  spec.num_machines = 7;
  const EtcMatrix etc = generate_instance(spec);
  Rng rng(93);
  ScheduleEvaluator delta(etc);
  delta.reset(Schedule::random(50, 7, rng));
  ScheduleEvaluator fresh(etc);
  Schedule target = delta.schedule();
  for (int round = 0; round < 200; ++round) {
    const int flips = rng.uniform_int(1, 10);
    for (int f = 0; f < flips; ++f) {
      target[rng.uniform_int(0, 49)] = rng.uniform_int(0, 6);
    }
    delta.reset_to(target);
    fresh.reset(target);
    ASSERT_EQ(fresh.makespan(), delta.makespan()) << round;
    ASSERT_EQ(fresh.flowtime(), delta.flowtime()) << round;
  }
  delta.check_consistency();
}

// ---------------------------------------------------------------------------
// Diff-replay offspring pipeline: for every crossover x mutation x local
// search combination, the allocation-free delta path (crossover_into +
// reset_to + scratch-reusing mutate) must produce offspring bitwise equal
// to the allocating full-reset path under the same RNG seed.
// ---------------------------------------------------------------------------

TEST(Evaluator, DeltaOffspringPipelineBitwiseEqualsFullReset) {
  InstanceSpec spec;
  spec.num_jobs = 60;
  spec.num_machines = 8;
  const EtcMatrix etc = generate_instance(spec);
  const FitnessWeights weights;
  Rng parent_rng(55);
  const Schedule pa = Schedule::random(60, 8, parent_rng);
  const Schedule pb = Schedule::random(60, 8, parent_rng);

  MutationScratch scratch;
  Schedule delta_child;
  Individual delta_offspring;
  std::uint64_t seed = 1000;
  for (const CrossoverKind ck :
       {CrossoverKind::kOnePoint, CrossoverKind::kTwoPoint,
        CrossoverKind::kUniform}) {
    for (const MutationKind mk :
         {MutationKind::kRebalance, MutationKind::kMove, MutationKind::kSwap}) {
      for (const LocalSearchKind lk :
           {LocalSearchKind::kNone, LocalSearchKind::kLocalMove,
            LocalSearchKind::kSteepestLocalMove, LocalSearchKind::kLmcts}) {
        ++seed;
        LocalSearchConfig ls;
        ls.kind = lk;
        ls.iterations = 2;

        // Reference arm: fresh allocations, full reset.
        Rng rng_full(seed);
        ScheduleEvaluator eval_full(etc);
        eval_full.reset(crossover(ck, pa, pb, rng_full));
        mutate(mk, eval_full, rng_full);
        local_search(ls, weights, eval_full, rng_full);
        Individual full;
        assign_from_evaluator(full, eval_full, weights);

        // Delta arm: warm evaluator re-targeted via reset_to, reused
        // child/offspring buffers, shared mutation scratch.
        Rng rng_delta(seed);
        ScheduleEvaluator eval_delta(etc);
        eval_delta.reset(pa);
        crossover_into(delta_child, ck, pa, pb, rng_delta);
        eval_delta.reset_to(delta_child);
        mutate(mk, eval_delta, rng_delta, &scratch);
        local_search(ls, weights, eval_delta, rng_delta);
        assign_from_evaluator(delta_offspring, eval_delta, weights);

        const std::string combo =
            std::string(crossover_name(ck)) + "/" +
            std::string(mutation_name(mk)) + "/" +
            std::string(local_search_name(lk));
        ASSERT_TRUE(full.schedule == delta_offspring.schedule) << combo;
        ASSERT_EQ(full.objectives.makespan,
                  delta_offspring.objectives.makespan)
            << combo;
        ASSERT_EQ(full.objectives.flowtime,
                  delta_offspring.objectives.flowtime)
            << combo;
        ASSERT_EQ(full.fitness, delta_offspring.fitness) << combo;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Property tests: incremental updates equal full recomputation on every
// benchmark class, across long random edit sequences.
// ---------------------------------------------------------------------------

std::string param_name(const ::testing::TestParamInfo<InstanceSpec>& info) {
  std::string name = info.param.name();
  std::replace(name.begin(), name.end(), '.', '_');
  return name;
}

class EvaluatorPropertyTest : public ::testing::TestWithParam<InstanceSpec> {
 protected:
  static InstanceSpec small(const InstanceSpec& base) {
    InstanceSpec spec = base;
    spec.num_jobs = 60;
    spec.num_machines = 8;
    return spec;
  }
};

INSTANTIATE_TEST_SUITE_P(AllTwelveClasses, EvaluatorPropertyTest,
                         ::testing::ValuesIn(braun_benchmark_suite()),
                         param_name);

TEST_P(EvaluatorPropertyTest, IncrementalMatchesRecomputeUnderRandomEdits) {
  const InstanceSpec spec = small(GetParam());
  EtcMatrix etc = generate_instance(spec);
  // Exercise non-zero ready times too.
  Rng ready_rng(7);
  for (MachineId m = 0; m < etc.num_machines(); ++m) {
    etc.set_ready_time(m, ready_rng.uniform(0.0, 100.0));
  }

  Rng rng(GetParam().seed + 99);
  ScheduleEvaluator incremental(etc);
  incremental.reset(
      Schedule::random(etc.num_jobs(), etc.num_machines(), rng));

  ScheduleEvaluator fresh(etc);
  for (int step = 0; step < 300; ++step) {
    const JobId a = rng.uniform_int(0, etc.num_jobs() - 1);
    if (rng.chance(0.5)) {
      MachineId to = rng.uniform_int(0, etc.num_machines() - 2);
      if (to >= incremental.schedule()[a]) ++to;
      const auto preview = incremental.preview_move(a, to);
      incremental.apply_move(a, to);
      ASSERT_NEAR(preview.objectives.makespan, incremental.makespan(),
                  1e-9 * incremental.makespan());
      ASSERT_NEAR(preview.objectives.flowtime, incremental.flowtime(),
                  1e-9 * incremental.flowtime());
    } else {
      const JobId b = rng.uniform_int(0, etc.num_jobs() - 1);
      if (b == a || incremental.schedule()[a] == incremental.schedule()[b]) {
        continue;
      }
      const auto preview = incremental.preview_swap(a, b);
      incremental.apply_swap(a, b);
      ASSERT_NEAR(preview.objectives.makespan, incremental.makespan(),
                  1e-9 * incremental.makespan());
      ASSERT_NEAR(preview.objectives.flowtime, incremental.flowtime(),
                  1e-9 * incremental.flowtime());
    }

    fresh.reset(incremental.schedule());
    ASSERT_NEAR(fresh.makespan(), incremental.makespan(),
                1e-9 * fresh.makespan())
        << "step " << step;
    ASSERT_NEAR(fresh.flowtime(), incremental.flowtime(),
                1e-9 * fresh.flowtime())
        << "step " << step;
  }
  incremental.check_consistency();
}

TEST_P(EvaluatorPropertyTest, MakespanIsMaxCompletionAndFlowtimeIsSum) {
  const InstanceSpec spec = small(GetParam());
  const EtcMatrix etc = generate_instance(spec);
  Rng rng(5);
  ScheduleEvaluator eval(etc);
  eval.reset(Schedule::random(etc.num_jobs(), etc.num_machines(), rng));

  double max_completion = 0.0;
  double flow_sum = 0.0;
  for (MachineId m = 0; m < etc.num_machines(); ++m) {
    max_completion = std::max(max_completion, eval.completion(m));
    flow_sum += eval.machine_flow(m);
  }
  EXPECT_DOUBLE_EQ(eval.makespan(), max_completion);
  EXPECT_DOUBLE_EQ(eval.flowtime(), flow_sum);
}

TEST_P(EvaluatorPropertyTest, SptOrderingMinimizesPerMachineFlow) {
  // Any single adjacent transposition away from SPT order cannot decrease
  // a machine's flowtime: verify the closed-form against a brute-force
  // FIFO evaluation of the SPT permutation.
  const InstanceSpec spec = small(GetParam());
  const EtcMatrix etc = generate_instance(spec);
  Rng rng(3);
  ScheduleEvaluator eval(etc);
  eval.reset(Schedule::random(etc.num_jobs(), etc.num_machines(), rng));

  for (MachineId m = 0; m < etc.num_machines(); ++m) {
    const auto& jobs = eval.machine_jobs(m);
    double cursor = etc.ready_time(m);
    double flow = 0.0;
    for (const auto& [cost, job] : jobs) {
      cursor += cost;
      flow += cursor;
    }
    ASSERT_NEAR(eval.machine_flow(m), flow, 1e-9 * std::max(1.0, flow));
  }
}

}  // namespace
}  // namespace gridsched
