#include "core/evaluator.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>

#include "etc/instance.h"

namespace gridsched {
namespace {

/// 3 jobs x 2 machines with hand-computable objective values.
EtcMatrix tiny_instance() {
  //          m0   m1
  // job 0     2    4
  // job 1     3    1
  // job 2     5    2
  return EtcMatrix(3, 2, {2, 4, 3, 1, 5, 2});
}

Schedule tiny_schedule() {
  Schedule s(3);
  s[0] = 0;
  s[1] = 0;
  s[2] = 1;
  return s;
}

TEST(Evaluator, HandComputedCompletionAndMakespan) {
  const EtcMatrix etc = tiny_instance();
  ScheduleEvaluator eval(etc);
  eval.reset(tiny_schedule());
  EXPECT_DOUBLE_EQ(eval.completion(0), 5.0);  // 2 + 3
  EXPECT_DOUBLE_EQ(eval.completion(1), 2.0);
  EXPECT_DOUBLE_EQ(eval.makespan(), 5.0);
  EXPECT_EQ(eval.makespan_machine(), 0);
}

TEST(Evaluator, HandComputedSptFlowtime) {
  const EtcMatrix etc = tiny_instance();
  ScheduleEvaluator eval(etc);
  eval.reset(tiny_schedule());
  // m0 runs j0 (etc 2) before j1 (etc 3): finishing times 2 and 5.
  EXPECT_DOUBLE_EQ(eval.machine_flow(0), 7.0);
  EXPECT_DOUBLE_EQ(eval.machine_flow(1), 2.0);
  EXPECT_DOUBLE_EQ(eval.flowtime(), 9.0);
}

TEST(Evaluator, FitnessMatchesPaperFormula) {
  const EtcMatrix etc = tiny_instance();
  ScheduleEvaluator eval(etc);
  eval.reset(tiny_schedule());
  const FitnessWeights w{0.75};
  // 0.75 * 5 + 0.25 * (9 / 2)
  EXPECT_DOUBLE_EQ(eval.fitness(w), 4.875);
}

TEST(Evaluator, ReadyTimesShiftCompletionAndFlow) {
  EtcMatrix etc = tiny_instance();
  etc.set_ready_time(0, 1.0);
  etc.set_ready_time(1, 2.0);
  ScheduleEvaluator eval(etc);
  eval.reset(tiny_schedule());
  EXPECT_DOUBLE_EQ(eval.completion(0), 6.0);
  EXPECT_DOUBLE_EQ(eval.completion(1), 4.0);
  EXPECT_DOUBLE_EQ(eval.makespan(), 6.0);
  // m0: finishes at 3 and 6 -> 9. m1: finishes at 4 -> 4.
  EXPECT_DOUBLE_EQ(eval.flowtime(), 13.0);
}

TEST(Evaluator, EmptyMachineContributesReadyTimeToMakespanOnly) {
  EtcMatrix etc = tiny_instance();
  etc.set_ready_time(1, 50.0);
  ScheduleEvaluator eval(etc);
  Schedule s(3, 0);  // everything on m0
  eval.reset(s);
  EXPECT_DOUBLE_EQ(eval.completion(1), 50.0);
  EXPECT_DOUBLE_EQ(eval.makespan(), 50.0);
  EXPECT_DOUBLE_EQ(eval.machine_flow(1), 0.0);  // no jobs, no flow
}

TEST(Evaluator, ApplyMoveUpdatesEverything) {
  const EtcMatrix etc = tiny_instance();
  ScheduleEvaluator eval(etc);
  eval.reset(tiny_schedule());
  eval.apply_move(1, 1);  // j1: m0 -> m1 (etc 1)
  EXPECT_EQ(eval.schedule()[1], 1);
  EXPECT_DOUBLE_EQ(eval.completion(0), 2.0);
  EXPECT_DOUBLE_EQ(eval.completion(1), 3.0);
  EXPECT_DOUBLE_EQ(eval.makespan(), 3.0);
  // m1 SPT: j1 (1) then j2 (2): finishes 1 and 3 -> 4; m0: 2.
  EXPECT_DOUBLE_EQ(eval.flowtime(), 6.0);
  eval.check_consistency();
}

TEST(Evaluator, ApplySwapUpdatesEverything) {
  const EtcMatrix etc = tiny_instance();
  ScheduleEvaluator eval(etc);
  eval.reset(tiny_schedule());
  eval.apply_swap(0, 2);  // j0 -> m1 (etc 4), j2 -> m0 (etc 5)
  EXPECT_EQ(eval.schedule()[0], 1);
  EXPECT_EQ(eval.schedule()[2], 0);
  EXPECT_DOUBLE_EQ(eval.completion(0), 8.0);  // 3 + 5
  EXPECT_DOUBLE_EQ(eval.completion(1), 4.0);
  EXPECT_DOUBLE_EQ(eval.makespan(), 8.0);
  // m0 SPT: j1(3) F=3, j2(5) F=8 -> 11; m1: j0(4) F=4.
  EXPECT_DOUBLE_EQ(eval.flowtime(), 15.0);
  eval.check_consistency();
}

TEST(Evaluator, PreviewMoveMatchesApply) {
  const EtcMatrix etc = tiny_instance();
  ScheduleEvaluator eval(etc);
  eval.reset(tiny_schedule());
  const auto preview = eval.preview_move(1, 1);
  eval.apply_move(1, 1);
  EXPECT_DOUBLE_EQ(preview.objectives.makespan, eval.makespan());
  EXPECT_DOUBLE_EQ(preview.objectives.flowtime, eval.flowtime());
}

TEST(Evaluator, PreviewSwapMatchesApply) {
  const EtcMatrix etc = tiny_instance();
  ScheduleEvaluator eval(etc);
  eval.reset(tiny_schedule());
  const auto preview = eval.preview_swap(0, 2);
  eval.apply_swap(0, 2);
  EXPECT_DOUBLE_EQ(preview.objectives.makespan, eval.makespan());
  EXPECT_DOUBLE_EQ(preview.objectives.flowtime, eval.flowtime());
}

TEST(Evaluator, PreviewMoveToSameMachineIsIdentity) {
  const EtcMatrix etc = tiny_instance();
  ScheduleEvaluator eval(etc);
  eval.reset(tiny_schedule());
  const auto preview = eval.preview_move(0, 0);
  EXPECT_DOUBLE_EQ(preview.objectives.makespan, eval.makespan());
  EXPECT_DOUBLE_EQ(preview.objectives.flowtime, eval.flowtime());
}

TEST(Evaluator, SwapOnSameMachineThrows) {
  const EtcMatrix etc = tiny_instance();
  ScheduleEvaluator eval(etc);
  eval.reset(tiny_schedule());
  EXPECT_THROW((void)eval.preview_swap(0, 1), std::invalid_argument);
  EXPECT_THROW(eval.apply_swap(0, 1), std::invalid_argument);
}

TEST(Evaluator, ResetRejectsIncompleteOrMismatched) {
  const EtcMatrix etc = tiny_instance();
  ScheduleEvaluator eval(etc);
  EXPECT_THROW(eval.reset(Schedule(3)), std::invalid_argument);       // -1s
  EXPECT_THROW(eval.reset(Schedule(2, 0)), std::invalid_argument);    // size
  Schedule bad(3, 0);
  bad[2] = 2;  // machine out of range
  EXPECT_THROW(eval.reset(bad), std::invalid_argument);
}

TEST(Evaluator, MachineJobsSortedAscendingByEtc) {
  InstanceSpec spec;
  spec.num_jobs = 40;
  spec.num_machines = 4;
  const EtcMatrix etc = generate_instance(spec);
  Rng rng(1);
  ScheduleEvaluator eval(etc);
  eval.reset(Schedule::random(40, 4, rng));
  for (MachineId m = 0; m < 4; ++m) {
    const auto& jobs = eval.machine_jobs(m);
    EXPECT_TRUE(std::is_sorted(jobs.begin(), jobs.end()));
    for (const auto& [cost, job] : jobs) {
      EXPECT_EQ(eval.schedule()[job], m);
      EXPECT_DOUBLE_EQ(cost, etc(job, m));
    }
  }
}

// ---------------------------------------------------------------------------
// Property tests: incremental updates equal full recomputation on every
// benchmark class, across long random edit sequences.
// ---------------------------------------------------------------------------

std::string param_name(const ::testing::TestParamInfo<InstanceSpec>& info) {
  std::string name = info.param.name();
  std::replace(name.begin(), name.end(), '.', '_');
  return name;
}

class EvaluatorPropertyTest : public ::testing::TestWithParam<InstanceSpec> {
 protected:
  static InstanceSpec small(const InstanceSpec& base) {
    InstanceSpec spec = base;
    spec.num_jobs = 60;
    spec.num_machines = 8;
    return spec;
  }
};

INSTANTIATE_TEST_SUITE_P(AllTwelveClasses, EvaluatorPropertyTest,
                         ::testing::ValuesIn(braun_benchmark_suite()),
                         param_name);

TEST_P(EvaluatorPropertyTest, IncrementalMatchesRecomputeUnderRandomEdits) {
  const InstanceSpec spec = small(GetParam());
  EtcMatrix etc = generate_instance(spec);
  // Exercise non-zero ready times too.
  Rng ready_rng(7);
  for (MachineId m = 0; m < etc.num_machines(); ++m) {
    etc.set_ready_time(m, ready_rng.uniform(0.0, 100.0));
  }

  Rng rng(GetParam().seed + 99);
  ScheduleEvaluator incremental(etc);
  incremental.reset(
      Schedule::random(etc.num_jobs(), etc.num_machines(), rng));

  ScheduleEvaluator fresh(etc);
  for (int step = 0; step < 300; ++step) {
    const JobId a = rng.uniform_int(0, etc.num_jobs() - 1);
    if (rng.chance(0.5)) {
      MachineId to = rng.uniform_int(0, etc.num_machines() - 2);
      if (to >= incremental.schedule()[a]) ++to;
      const auto preview = incremental.preview_move(a, to);
      incremental.apply_move(a, to);
      ASSERT_NEAR(preview.objectives.makespan, incremental.makespan(),
                  1e-9 * incremental.makespan());
      ASSERT_NEAR(preview.objectives.flowtime, incremental.flowtime(),
                  1e-9 * incremental.flowtime());
    } else {
      const JobId b = rng.uniform_int(0, etc.num_jobs() - 1);
      if (b == a || incremental.schedule()[a] == incremental.schedule()[b]) {
        continue;
      }
      const auto preview = incremental.preview_swap(a, b);
      incremental.apply_swap(a, b);
      ASSERT_NEAR(preview.objectives.makespan, incremental.makespan(),
                  1e-9 * incremental.makespan());
      ASSERT_NEAR(preview.objectives.flowtime, incremental.flowtime(),
                  1e-9 * incremental.flowtime());
    }

    fresh.reset(incremental.schedule());
    ASSERT_NEAR(fresh.makespan(), incremental.makespan(),
                1e-9 * fresh.makespan())
        << "step " << step;
    ASSERT_NEAR(fresh.flowtime(), incremental.flowtime(),
                1e-9 * fresh.flowtime())
        << "step " << step;
  }
  incremental.check_consistency();
}

TEST_P(EvaluatorPropertyTest, MakespanIsMaxCompletionAndFlowtimeIsSum) {
  const InstanceSpec spec = small(GetParam());
  const EtcMatrix etc = generate_instance(spec);
  Rng rng(5);
  ScheduleEvaluator eval(etc);
  eval.reset(Schedule::random(etc.num_jobs(), etc.num_machines(), rng));

  double max_completion = 0.0;
  double flow_sum = 0.0;
  for (MachineId m = 0; m < etc.num_machines(); ++m) {
    max_completion = std::max(max_completion, eval.completion(m));
    flow_sum += eval.machine_flow(m);
  }
  EXPECT_DOUBLE_EQ(eval.makespan(), max_completion);
  EXPECT_DOUBLE_EQ(eval.flowtime(), flow_sum);
}

TEST_P(EvaluatorPropertyTest, SptOrderingMinimizesPerMachineFlow) {
  // Any single adjacent transposition away from SPT order cannot decrease
  // a machine's flowtime: verify the closed-form against a brute-force
  // FIFO evaluation of the SPT permutation.
  const InstanceSpec spec = small(GetParam());
  const EtcMatrix etc = generate_instance(spec);
  Rng rng(3);
  ScheduleEvaluator eval(etc);
  eval.reset(Schedule::random(etc.num_jobs(), etc.num_machines(), rng));

  for (MachineId m = 0; m < etc.num_machines(); ++m) {
    const auto& jobs = eval.machine_jobs(m);
    double cursor = etc.ready_time(m);
    double flow = 0.0;
    for (const auto& [cost, job] : jobs) {
      cursor += cost;
      flow += cursor;
    }
    ASSERT_NEAR(eval.machine_flow(m), flow, 1e-9 * std::max(1.0, flow));
  }
}

}  // namespace
}  // namespace gridsched
