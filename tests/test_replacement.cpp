// The pluggable replacement policies of the steady-state GA (the study of
// the paper's reference [21]).
#include <gtest/gtest.h>

#include "etc/instance.h"
#include "ga/steady_state_ga.h"

namespace gridsched {
namespace {

EtcMatrix small_instance() {
  InstanceSpec spec;
  spec.num_jobs = 48;
  spec.num_machines = 6;
  return generate_instance(spec);
}

SteadyStateGaConfig config_with(ReplacementPolicy policy,
                                std::int64_t evals = 2'000) {
  SteadyStateGaConfig config;
  config.replacement = policy;
  config.stop = StopCondition{.max_evaluations = evals};
  config.seed = 31;
  return config;
}

TEST(Replacement, NamesAreStable) {
  EXPECT_EQ(replacement_name(ReplacementPolicy::kWorst), "ReplaceWorst");
  EXPECT_EQ(replacement_name(ReplacementPolicy::kRandom), "ReplaceRandom");
  EXPECT_EQ(replacement_name(ReplacementPolicy::kOldest), "ReplaceOldest");
  EXPECT_EQ(replacement_name(ReplacementPolicy::kMostSimilar), "Struggle");
  EXPECT_EQ(replacement_name(ReplacementPolicy::kDeterministicCrowding),
            "DeterministicCrowding");
}

TEST(Replacement, EveryPolicyRunsAndImprovesOnSeeds) {
  const EtcMatrix etc = small_instance();
  const Individual seed =
      make_individual(ljfr_sjfr(etc), etc, FitnessWeights{});
  for (ReplacementPolicy policy :
       {ReplacementPolicy::kWorst, ReplacementPolicy::kRandom,
        ReplacementPolicy::kOldest, ReplacementPolicy::kMostSimilar,
        ReplacementPolicy::kDeterministicCrowding}) {
    const auto result = SteadyStateGa(config_with(policy)).run(etc);
    EXPECT_TRUE(result.best.schedule.complete(etc.num_machines()))
        << replacement_name(policy);
    EXPECT_LE(result.best.fitness, seed.fitness) << replacement_name(policy);
  }
}

TEST(Replacement, PoliciesAreDeterministicInSeed) {
  const EtcMatrix etc = small_instance();
  for (ReplacementPolicy policy :
       {ReplacementPolicy::kWorst, ReplacementPolicy::kMostSimilar,
        ReplacementPolicy::kDeterministicCrowding}) {
    const auto a = SteadyStateGa(config_with(policy, 800)).run(etc);
    const auto b = SteadyStateGa(config_with(policy, 800)).run(etc);
    EXPECT_EQ(a.best.schedule, b.best.schedule) << replacement_name(policy);
  }
}

TEST(Replacement, PoliciesActuallyDiffer) {
  // Same seed, different policies: the search trajectories must diverge.
  const EtcMatrix etc = small_instance();
  const auto worst =
      SteadyStateGa(config_with(ReplacementPolicy::kWorst)).run(etc);
  const auto similar =
      SteadyStateGa(config_with(ReplacementPolicy::kMostSimilar)).run(etc);
  EXPECT_NE(worst.best.schedule, similar.best.schedule);
}

TEST(Replacement, DefaultPolicyIsReplaceWorst) {
  EXPECT_EQ(SteadyStateGaConfig{}.replacement, ReplacementPolicy::kWorst);
}

TEST(Replacement, GatedOnImprovement) {
  // With a tiny budget the best individual can never get worse, whatever
  // the victim rule — replacement only happens when the child is fitter.
  const EtcMatrix etc = small_instance();
  for (ReplacementPolicy policy :
       {ReplacementPolicy::kRandom, ReplacementPolicy::kOldest}) {
    SteadyStateGaConfig config = config_with(policy, 3'000);
    config.record_progress = true;
    const auto result = SteadyStateGa(config).run(etc);
    for (std::size_t i = 1; i < result.progress.size(); ++i) {
      ASSERT_LE(result.progress[i].best_fitness,
                result.progress[i - 1].best_fitness + 1e-9)
          << replacement_name(policy);
    }
  }
}

}  // namespace
}  // namespace gridsched
