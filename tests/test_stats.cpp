#include "common/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <vector>

namespace gridsched {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(42.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.mean(), 42.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 42.0);
  EXPECT_EQ(s.max(), 42.0);
}

TEST(RunningStats, KnownSample) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1 = 7: sum of squared devs = 32.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
}

TEST(RunningStats, CvIsRelative) {
  RunningStats s;
  s.add(90.0);
  s.add(110.0);
  EXPECT_NEAR(s.cv(), s.stddev() / 100.0, 1e-12);
}

TEST(RunningStats, MergeMatchesSequential) {
  RunningStats whole;
  RunningStats left;
  RunningStats right;
  const std::vector<double> values{1.5, 2.5, -3.0, 8.0, 0.0, 12.25, -7.5};
  for (std::size_t i = 0; i < values.size(); ++i) {
    whole.add(values[i]);
    (i < 3 ? left : right).add(values[i]);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-12);
  EXPECT_EQ(left.min(), whole.min());
  EXPECT_EQ(left.max(), whole.max());
}

TEST(RunningStats, MergeWithEmptySides) {
  RunningStats a;
  RunningStats b;
  b.add(3.0);
  a.merge(b);  // empty.merge(non-empty)
  EXPECT_EQ(a.count(), 1u);
  EXPECT_EQ(a.mean(), 3.0);
  RunningStats c;
  a.merge(c);  // non-empty.merge(empty)
  EXPECT_EQ(a.count(), 1u);
}

TEST(Summarize, ComputesAllFields) {
  const std::vector<double> values{5.0, 1.0, 3.0, 2.0, 4.0};
  const Summary s = summarize(values);
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_EQ(s.min, 1.0);
  EXPECT_EQ(s.max, 5.0);
  EXPECT_NEAR(s.stddev, std::sqrt(2.5), 1e-12);
}

TEST(Summarize, EmptyInput) {
  const Summary s = summarize(std::vector<double>{});
  EXPECT_EQ(s.count, 0u);
}

TEST(Percentile, MedianOfEvenCountInterpolates) {
  const std::vector<double> values{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(values, 50.0), 2.5);
}

TEST(Percentile, Extremes) {
  const std::vector<double> values{9.0, 1.0, 5.0};
  EXPECT_DOUBLE_EQ(percentile(values, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(values, 100.0), 9.0);
}

TEST(Percentile, SingleElement) {
  const std::vector<double> values{7.0};
  EXPECT_DOUBLE_EQ(percentile(values, 30.0), 7.0);
}

TEST(Percentile, ClampsOutOfRangeP) {
  const std::vector<double> values{1.0, 2.0};
  EXPECT_DOUBLE_EQ(percentile(values, -5.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(values, 150.0), 2.0);
}

TEST(Ci95, ZeroBelowTwoSamples) {
  EXPECT_EQ(ci95_half_width(0, 5.0), 0.0);
  EXPECT_EQ(ci95_half_width(1, 5.0), 0.0);
}

TEST(Ci95, MatchesTheStudentTTable) {
  // n = 2 -> df = 1 -> t = 12.706; half width = t * s / sqrt(2).
  EXPECT_NEAR(ci95_half_width(2, 1.0), 12.706 / std::sqrt(2.0), 1e-9);
  // n = 10 -> df = 9 -> t = 2.262.
  EXPECT_NEAR(ci95_half_width(10, 2.0), 2.262 * 2.0 / std::sqrt(10.0), 1e-9);
  // Large n falls back to the normal quantile.
  EXPECT_NEAR(ci95_half_width(100, 1.0), 1.96 / 10.0, 1e-9);
}

TEST(Ci95, AccumulatorOverloadAgreesWithTheScalarForm) {
  RunningStats stats;
  for (const double x : {1.0, 2.0, 3.0, 4.0, 5.0}) stats.add(x);
  EXPECT_DOUBLE_EQ(ci95_half_width(stats),
                   ci95_half_width(stats.count(), stats.stddev()));
  EXPECT_GT(ci95_half_width(stats), 0.0);
}

TEST(PercentDelta, MatchesPaperConvention) {
  // Table 2 reports |GA - cMA| style percentages; percent_delta(a, b) is
  // the signed (a-b)/b * 100.
  EXPECT_NEAR(percent_delta(104.0, 100.0), 4.0, 1e-12);
  EXPECT_NEAR(percent_delta(96.0, 100.0), -4.0, 1e-12);
  EXPECT_EQ(percent_delta(5.0, 0.0), 0.0);
}

// --- LatencyHistogram observability surface (PR 7). The behavioral
// basics (clamping, percentile resolution, merge counts) live in
// test_qos.cpp next to the subsystem that introduced the histogram;
// these cover the exporter-facing API. ---

TEST(LatencyHistogram, MergeIsAssociative) {
  LatencyHistogram a;
  LatencyHistogram b;
  LatencyHistogram c;
  for (double v : {0.01, 0.5, 3.0}) a.add(v);
  for (double v : {10.0, 250.0}) b.add(v);
  for (double v : {1e4, 2e5, 0.0}) c.add(v);  // one overflow, one underflow

  LatencyHistogram ab = a;
  ab.merge(b);
  LatencyHistogram ab_c = ab;
  ab_c.merge(c);

  LatencyHistogram bc = b;
  bc.merge(c);
  LatencyHistogram a_bc = a;
  a_bc.merge(bc);

  EXPECT_EQ(ab_c, a_bc);
  EXPECT_EQ(ab_c.count(), 8u);
  EXPECT_EQ(ab_c.overflow_count(), 1u);
}

TEST(LatencyHistogram, MergeWithEmptyIsIdentity) {
  LatencyHistogram a;
  a.add(1.0);
  a.add(2e5);
  const LatencyHistogram before = a;
  LatencyHistogram empty;
  a.merge(empty);
  EXPECT_EQ(a, before);
  empty.merge(a);
  EXPECT_EQ(empty, a);
}

TEST(LatencyHistogram, EmptyPercentileEdgeCases) {
  const LatencyHistogram hist;
  EXPECT_EQ(hist.percentile(0.0), 0.0);
  EXPECT_EQ(hist.percentile(100.0), 0.0);
  EXPECT_FALSE(hist.percentile_overflows(99.0));
  EXPECT_EQ(hist.overflow_count(), 0u);
}

TEST(LatencyHistogram, OverflowCountsOnlyRangeEndSamples) {
  LatencyHistogram hist;
  hist.add(LatencyHistogram::kMaxValue * 0.5);  // in range
  hist.add(LatencyHistogram::kMaxValue);        // == max counts as overflow
  hist.add(LatencyHistogram::kMaxValue * 10.0);
  EXPECT_EQ(hist.count(), 3u);
  EXPECT_EQ(hist.overflow_count(), 2u);
}

TEST(LatencyHistogram, PercentileOverflowsFlagsOnlyTheClampedTail) {
  LatencyHistogram hist;
  for (int i = 0; i < 98; ++i) hist.add(1.0);
  hist.add(2e5);
  hist.add(3e5);
  // p50 sits among the in-range samples; p99 lands on the clamped tail.
  EXPECT_FALSE(hist.percentile_overflows(50.0));
  EXPECT_TRUE(hist.percentile_overflows(99.0));
  EXPECT_TRUE(hist.percentile_overflows(100.0));
}

TEST(LatencyHistogram, AllOverflowFlagsEveryPercentile) {
  LatencyHistogram hist;
  hist.add(2e5);
  EXPECT_TRUE(hist.percentile_overflows(0.0));
  EXPECT_TRUE(hist.percentile_overflows(50.0));
  EXPECT_TRUE(hist.percentile_overflows(100.0));
}

TEST(LatencyHistogram, FromBucketsRoundTrips) {
  LatencyHistogram original;
  for (double v : {0.002, 0.5, 7.0, 300.0, 2e5, 5e5}) original.add(v);
  const LatencyHistogram rebuilt = LatencyHistogram::from_buckets(
      original.bucket_counts(), original.overflow_count());
  EXPECT_EQ(rebuilt, original);
  EXPECT_EQ(rebuilt.count(), original.count());
  EXPECT_DOUBLE_EQ(rebuilt.p99(), original.p99());
}

TEST(LatencyHistogram, FromBucketsRejectsBadShapes) {
  const std::vector<std::uint64_t> short_counts(
      LatencyHistogram::kBuckets - 1, 0);
  EXPECT_THROW((void)LatencyHistogram::from_buckets(short_counts, 0),
               std::invalid_argument);

  // Overflow larger than the last bucket's occupancy is impossible: every
  // overflow sample clamps into the last bucket.
  std::vector<std::uint64_t> counts(LatencyHistogram::kBuckets, 0);
  counts.back() = 1;
  EXPECT_THROW((void)LatencyHistogram::from_buckets(counts, 2),
               std::invalid_argument);
  EXPECT_NO_THROW((void)LatencyHistogram::from_buckets(counts, 1));
}

}  // namespace
}  // namespace gridsched
