#include "common/cli.h"

#include <gtest/gtest.h>

#include <array>
#include <stdexcept>

namespace gridsched {
namespace {

CliParser make_parser() {
  CliParser cli("test tool");
  cli.flag("runs", "3", "number of runs")
      .flag("time-ms", "400", "budget")
      .flag("name", "hello", "a string")
      .flag("fast", "false", "a boolean");
  return cli;
}

TEST(Cli, DefaultsApplyWithoutArgs) {
  auto cli = make_parser();
  const std::array argv{"prog"};
  ASSERT_TRUE(cli.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_EQ(cli.get_int("runs"), 3);
  EXPECT_EQ(cli.get_double("time-ms"), 400.0);
  EXPECT_EQ(cli.get("name"), "hello");
  EXPECT_FALSE(cli.get_bool("fast"));
}

TEST(Cli, SpaceSeparatedValues) {
  auto cli = make_parser();
  const std::array argv{"prog", "--runs", "10", "--name", "world"};
  ASSERT_TRUE(cli.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_EQ(cli.get_int("runs"), 10);
  EXPECT_EQ(cli.get("name"), "world");
}

TEST(Cli, EqualsSeparatedValues) {
  auto cli = make_parser();
  const std::array argv{"prog", "--time-ms=2500.5"};
  ASSERT_TRUE(cli.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_DOUBLE_EQ(cli.get_double("time-ms"), 2500.5);
}

TEST(Cli, BareBooleanFlag) {
  auto cli = make_parser();
  const std::array argv{"prog", "--fast"};
  ASSERT_TRUE(cli.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_TRUE(cli.get_bool("fast"));
}

TEST(Cli, BooleanExplicitValue) {
  auto cli = make_parser();
  const std::array argv{"prog", "--fast=true"};
  ASSERT_TRUE(cli.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_TRUE(cli.get_bool("fast"));
}

TEST(Cli, UnknownFlagThrows) {
  auto cli = make_parser();
  const std::array argv{"prog", "--bogus", "1"};
  EXPECT_THROW(cli.parse(static_cast<int>(argv.size()), argv.data()),
               std::invalid_argument);
}

TEST(Cli, PositionalArgumentThrows) {
  auto cli = make_parser();
  const std::array argv{"prog", "stray"};
  EXPECT_THROW(cli.parse(static_cast<int>(argv.size()), argv.data()),
               std::invalid_argument);
}

TEST(Cli, MissingValueThrows) {
  auto cli = make_parser();
  const std::array argv{"prog", "--runs"};
  EXPECT_THROW(cli.parse(static_cast<int>(argv.size()), argv.data()),
               std::invalid_argument);
}

TEST(Cli, HelpReturnsFalse) {
  auto cli = make_parser();
  const std::array argv{"prog", "--help"};
  EXPECT_FALSE(cli.parse(static_cast<int>(argv.size()), argv.data()));
}

TEST(Cli, HelpTextMentionsAllFlags) {
  auto cli = make_parser();
  const std::string help = cli.help_text();
  for (const char* flag : {"--runs", "--time-ms", "--name", "--fast"}) {
    EXPECT_NE(help.find(flag), std::string::npos) << flag;
  }
}

TEST(Cli, UnregisteredGetThrows) {
  auto cli = make_parser();
  EXPECT_THROW((void)cli.get("nope"), std::invalid_argument);
}

}  // namespace
}  // namespace gridsched
