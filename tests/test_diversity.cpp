#include "cma/diversity.h"

#include <gtest/gtest.h>

#include "cma/cma.h"
#include "etc/instance.h"

namespace gridsched {
namespace {

Individual with_schedule(Schedule s, double fitness = 1.0) {
  Individual ind;
  ind.schedule = std::move(s);
  ind.fitness = fitness;
  return ind;
}

TEST(Diversity, IdenticalPopulationHasZeroDistance) {
  std::vector<Individual> population;
  for (int i = 0; i < 4; ++i) {
    population.push_back(with_schedule(Schedule(10, 3)));
  }
  EXPECT_DOUBLE_EQ(mean_pairwise_distance(population), 0.0);
}

TEST(Diversity, MaximallyDifferentPairIsOne) {
  std::vector<Individual> population;
  population.push_back(with_schedule(Schedule(10, 0)));
  population.push_back(with_schedule(Schedule(10, 1)));
  EXPECT_DOUBLE_EQ(mean_pairwise_distance(population), 1.0);
}

TEST(Diversity, HalfDifferentIsHalf) {
  Schedule a(10, 0);
  Schedule b(10, 0);
  for (JobId j = 0; j < 5; ++j) b[j] = 1;
  std::vector<Individual> population{with_schedule(a), with_schedule(b)};
  EXPECT_DOUBLE_EQ(mean_pairwise_distance(population), 0.5);
}

TEST(Diversity, SingletonAndEmptyAreZero) {
  std::vector<Individual> one{with_schedule(Schedule(5, 0))};
  EXPECT_DOUBLE_EQ(mean_pairwise_distance(one), 0.0);
  EXPECT_DOUBLE_EQ(mean_pairwise_distance({}), 0.0);
}

TEST(Diversity, RandomPopulationIsNearTheoreticalValue) {
  Rng rng(42);
  std::vector<Individual> population;
  for (int i = 0; i < 30; ++i) {
    population.push_back(with_schedule(Schedule::random(200, 8, rng)));
  }
  // P(two uniform genes differ) = 1 - 1/8 = 0.875.
  EXPECT_NEAR(mean_pairwise_distance(population), 0.875, 0.02);
}

TEST(FitnessSpread, ZeroWhenConverged) {
  std::vector<Individual> population{with_schedule(Schedule(3, 0), 5.0),
                                     with_schedule(Schedule(3, 0), 5.0)};
  EXPECT_DOUBLE_EQ(fitness_spread(population), 0.0);
}

TEST(FitnessSpread, RelativeToBest) {
  std::vector<Individual> population{with_schedule(Schedule(3, 0), 10.0),
                                     with_schedule(Schedule(3, 0), 15.0)};
  EXPECT_DOUBLE_EQ(fitness_spread(population), 0.5);
}

TEST(GeneEntropy, ZeroForIdenticalPopulation) {
  std::vector<Individual> population;
  for (int i = 0; i < 4; ++i) {
    population.push_back(with_schedule(Schedule(6, 2)));
  }
  EXPECT_DOUBLE_EQ(mean_gene_entropy(population, 4), 0.0);
}

TEST(GeneEntropy, OneForUniformAlleles) {
  // 4 individuals, each gene takes each of 4 machines exactly once.
  std::vector<Individual> population;
  for (int m = 0; m < 4; ++m) {
    population.push_back(with_schedule(Schedule(6, m)));
  }
  EXPECT_NEAR(mean_gene_entropy(population, 4), 1.0, 1e-12);
}

TEST(GeneEntropy, EmptyOrDegenerateInputs) {
  EXPECT_DOUBLE_EQ(mean_gene_entropy({}, 4), 0.0);
  std::vector<Individual> population{with_schedule(Schedule(3, 0))};
  EXPECT_DOUBLE_EQ(mean_gene_entropy(population, 1), 0.0);
}

TEST(Diversity, ObserverTracksDiversityDuringARun) {
  // End-to-end: the observer hook feeds the diversity helpers; diversity
  // must start high (perturbed seeds) and not increase over a converging
  // run on a small instance.
  InstanceSpec spec;
  spec.num_jobs = 48;
  spec.num_machines = 6;
  const EtcMatrix etc = generate_instance(spec);

  std::vector<double> trace;
  CmaConfig config;
  config.stop = StopCondition{.max_iterations = 15};
  config.seed = 5;
  config.observer = [&](std::int64_t, std::span<const Individual> population) {
    trace.push_back(mean_pairwise_distance(population));
  };
  (void)CellularMemeticAlgorithm(config).run(etc);
  ASSERT_EQ(trace.size(), 15u);
  EXPECT_GT(trace.front(), 0.1);        // perturbed init is diverse
  EXPECT_LE(trace.back(), trace.front() + 0.05);  // no diversity explosion
}

}  // namespace
}  // namespace gridsched
