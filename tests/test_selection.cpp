#include "cma/selection.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <numeric>
#include <vector>

namespace gridsched {
namespace {

/// Population whose individual i has fitness = i (0 is the best).
std::vector<Individual> ladder_population(int n) {
  std::vector<Individual> population(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    population[static_cast<std::size_t>(i)].fitness = static_cast<double>(i);
  }
  return population;
}

TEST(Selection, BestAlwaysPicksTheFittestCandidate) {
  const auto population = ladder_population(10);
  const std::vector<int> candidates{7, 3, 9, 5};
  Rng rng(1);
  const SelectionConfig config{SelectionKind::kBest, 3};
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(select_one(config, candidates, population, rng), 3);
  }
}

TEST(Selection, UniformOnlyReturnsCandidates) {
  const auto population = ladder_population(10);
  const std::vector<int> candidates{2, 4, 8};
  Rng rng(2);
  const SelectionConfig config{SelectionKind::kUniform, 3};
  std::map<int, int> counts;
  for (int i = 0; i < 3000; ++i) {
    ++counts[select_one(config, candidates, population, rng)];
  }
  ASSERT_EQ(counts.size(), 3u);
  for (int c : candidates) {
    EXPECT_NEAR(counts[c], 1000, 150);
  }
}

TEST(Selection, TournamentPrefersFitterCandidates) {
  const auto population = ladder_population(10);
  std::vector<int> candidates(10);
  std::iota(candidates.begin(), candidates.end(), 0);
  Rng rng(3);
  const SelectionConfig config{SelectionKind::kTournament, 3};
  double mean_pick = 0.0;
  const int draws = 5000;
  for (int i = 0; i < draws; ++i) {
    mean_pick += select_one(config, candidates, population, rng);
  }
  mean_pick /= draws;
  // Uniform would give 4.5; min-of-3 gives E ~ 2.1.
  EXPECT_LT(mean_pick, 3.0);
  EXPECT_GT(mean_pick, 1.2);
}

TEST(Selection, LargerTournamentsIncreasePressure) {
  const auto population = ladder_population(25);
  std::vector<int> candidates(25);
  std::iota(candidates.begin(), candidates.end(), 0);
  Rng rng(4);
  auto mean_with_n = [&](int n) {
    const SelectionConfig config{SelectionKind::kTournament, n};
    double mean = 0.0;
    const int draws = 4000;
    for (int i = 0; i < draws; ++i) {
      mean += select_one(config, candidates, population, rng);
    }
    return mean / draws;
  };
  const double m3 = mean_with_n(3);
  const double m7 = mean_with_n(7);
  EXPECT_LT(m7, m3);  // N=7 concentrates harder on the best
}

TEST(Selection, TournamentOfOneIsUniform) {
  const auto population = ladder_population(5);
  const std::vector<int> candidates{0, 4};
  Rng rng(5);
  const SelectionConfig config{SelectionKind::kTournament, 1};
  int picked_worst = 0;
  for (int i = 0; i < 2000; ++i) {
    picked_worst += (select_one(config, candidates, population, rng) == 4);
  }
  EXPECT_NEAR(picked_worst, 1000, 150);
}

TEST(Selection, EmptyCandidatesThrows) {
  const auto population = ladder_population(3);
  Rng rng(6);
  const SelectionConfig config{SelectionKind::kTournament, 3};
  EXPECT_THROW((void)select_one(config, {}, population, rng),
               std::invalid_argument);
}

TEST(Selection, SelectManyReturnsRequestedCount) {
  const auto population = ladder_population(9);
  std::vector<int> candidates(9);
  std::iota(candidates.begin(), candidates.end(), 0);
  Rng rng(7);
  const SelectionConfig config{SelectionKind::kTournament, 3};
  const auto picks = select_many(config, 3, candidates, population, rng);
  EXPECT_EQ(picks.size(), 3u);
}

TEST(Selection, SelectManyPrefersDistinctParents) {
  const auto population = ladder_population(9);
  std::vector<int> candidates(9);
  std::iota(candidates.begin(), candidates.end(), 0);
  Rng rng(8);
  const SelectionConfig config{SelectionKind::kTournament, 2};
  int distinct_runs = 0;
  for (int i = 0; i < 200; ++i) {
    auto picks = select_many(config, 3, candidates, population, rng);
    std::sort(picks.begin(), picks.end());
    distinct_runs +=
        (std::unique(picks.begin(), picks.end()) == picks.end()) ? 1 : 0;
  }
  EXPECT_GT(distinct_runs, 150);  // retries make duplicates rare
}

TEST(Selection, SelectManyToleratesTinyPools) {
  const auto population = ladder_population(2);
  const std::vector<int> candidates{1};
  Rng rng(9);
  const SelectionConfig config{SelectionKind::kTournament, 3};
  const auto picks = select_many(config, 3, candidates, population, rng);
  EXPECT_EQ(picks, (std::vector<int>{1, 1, 1}));
}

TEST(Selection, DeterministicInSeed) {
  const auto population = ladder_population(12);
  std::vector<int> candidates(12);
  std::iota(candidates.begin(), candidates.end(), 0);
  Rng a(10);
  Rng b(10);
  const SelectionConfig config{SelectionKind::kTournament, 3};
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(select_one(config, candidates, population, a),
              select_one(config, candidates, population, b));
  }
}

}  // namespace
}  // namespace gridsched
