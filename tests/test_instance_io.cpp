#include "etc/instance_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "etc/instance.h"

namespace gridsched {
namespace {

TEST(InstanceIo, StreamRoundTrip) {
  InstanceSpec spec;
  spec.num_jobs = 20;
  spec.num_machines = 4;
  const EtcMatrix original = generate_instance(spec);

  std::stringstream buffer;
  write_instance(buffer, original);
  const EtcMatrix loaded = read_instance(buffer);

  ASSERT_EQ(loaded.num_jobs(), original.num_jobs());
  ASSERT_EQ(loaded.num_machines(), original.num_machines());
  for (JobId j = 0; j < original.num_jobs(); ++j) {
    for (MachineId m = 0; m < original.num_machines(); ++m) {
      ASSERT_EQ(loaded(j, m), original(j, m)) << j << "," << m;
    }
  }
}

TEST(InstanceIo, ReadyTimesRoundTripWhenNonZero) {
  EtcMatrix etc(2, 3, {1, 2, 3, 4, 5, 6});
  etc.set_ready_time(0, 1.5);
  etc.set_ready_time(2, 2.75);

  std::stringstream buffer;
  write_instance(buffer, etc);
  const EtcMatrix loaded = read_instance(buffer);
  EXPECT_EQ(loaded.ready_time(0), 1.5);
  EXPECT_EQ(loaded.ready_time(1), 0.0);
  EXPECT_EQ(loaded.ready_time(2), 2.75);
}

TEST(InstanceIo, ZeroReadyTimesOmitTrailer) {
  EtcMatrix etc(1, 2, {1, 2});
  std::stringstream buffer;
  write_instance(buffer, etc);
  EXPECT_EQ(buffer.str().find("ready:"), std::string::npos);
}

TEST(InstanceIo, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/gridsched_inst_test.txt";
  InstanceSpec spec;
  spec.num_jobs = 8;
  spec.num_machines = 2;
  const EtcMatrix original = generate_instance(spec);
  save_instance(path, original);
  const EtcMatrix loaded = load_instance(path);
  EXPECT_EQ(loaded.num_jobs(), 8);
  EXPECT_EQ(loaded(7, 1), original(7, 1));
  std::remove(path.c_str());
}

TEST(InstanceIo, MalformedHeaderThrows) {
  std::stringstream buffer("abc def");
  EXPECT_THROW(read_instance(buffer), std::runtime_error);
}

TEST(InstanceIo, NonPositiveShapeThrows) {
  std::stringstream buffer("0 4\n");
  EXPECT_THROW(read_instance(buffer), std::runtime_error);
}

TEST(InstanceIo, TruncatedBodyThrows) {
  std::stringstream buffer("2 2\n1.0 2.0 3.0");
  EXPECT_THROW(read_instance(buffer), std::runtime_error);
}

TEST(InstanceIo, NegativeValueThrows) {
  std::stringstream buffer("1 2\n1.0 -2.0\n");
  EXPECT_THROW(read_instance(buffer), std::runtime_error);
}

TEST(InstanceIo, GarbageTrailerThrows) {
  std::stringstream buffer("1 1\n5.0\nbogus");
  EXPECT_THROW(read_instance(buffer), std::runtime_error);
}

TEST(InstanceIo, TruncatedReadyLineThrows) {
  std::stringstream buffer("1 2\n5.0 6.0\nready: 1.0");
  EXPECT_THROW(read_instance(buffer), std::runtime_error);
}

TEST(InstanceIo, MissingFileThrows) {
  EXPECT_THROW(load_instance("/definitely/not/here.txt"), std::runtime_error);
}

TEST(InstanceIo, BraunFormatIsPlainWhitespaceNumbers) {
  // Interop: a hand-written Braun-style file loads fine.
  std::stringstream buffer("2 2\n10 20\n30 40\n");
  const EtcMatrix etc = read_instance(buffer);
  EXPECT_EQ(etc(0, 1), 20.0);
  EXPECT_EQ(etc(1, 0), 30.0);
}

}  // namespace
}  // namespace gridsched
