#include "core/fitness.h"

#include <gtest/gtest.h>

#include "core/individual.h"
#include "etc/instance.h"

namespace gridsched {
namespace {

TEST(Fitness, CombineIsWeightedSum) {
  const FitnessWeights w{0.75};
  EXPECT_DOUBLE_EQ(w.combine(100.0, 40.0), 85.0);
}

TEST(Fitness, LambdaOneIsPureMakespan) {
  const FitnessWeights w{1.0};
  EXPECT_DOUBLE_EQ(w.combine(100.0, 40.0), 100.0);
}

TEST(Fitness, LambdaZeroIsPureMeanFlowtime) {
  const FitnessWeights w{0.0};
  EXPECT_DOUBLE_EQ(w.combine(100.0, 40.0), 40.0);
}

TEST(Fitness, DefaultLambdaMatchesPaper) {
  const FitnessWeights w{};
  EXPECT_DOUBLE_EQ(w.lambda, 0.75);
}

TEST(Objectives, MeanFlowtimeDividesByMachines) {
  const Objectives o{50.0, 160.0};
  EXPECT_DOUBLE_EQ(o.mean_flowtime(16), 10.0);
}

TEST(Objectives, FitnessUsesMeanFlowtime) {
  const Objectives o{100.0, 320.0};
  const FitnessWeights w{0.75};
  // 0.75*100 + 0.25*(320/8) = 75 + 10
  EXPECT_DOUBLE_EQ(o.fitness(w, 8), 85.0);
}

TEST(Individual, MakeIndividualEvaluates) {
  InstanceSpec spec;
  spec.num_jobs = 30;
  spec.num_machines = 4;
  const EtcMatrix etc = generate_instance(spec);
  Rng rng(2);
  const Individual ind = make_individual(
      Schedule::random(30, 4, rng), etc, FitnessWeights{});
  EXPECT_GT(ind.objectives.makespan, 0.0);
  EXPECT_GT(ind.objectives.flowtime, ind.objectives.makespan);
  EXPECT_DOUBLE_EQ(ind.fitness,
                   ind.objectives.fitness(FitnessWeights{}, 4));
}

TEST(Individual, BetterThanComparesFitness) {
  Individual a;
  Individual b;
  a.fitness = 1.0;
  b.fitness = 2.0;
  EXPECT_TRUE(a.better_than(b));
  EXPECT_FALSE(b.better_than(a));
  EXPECT_FALSE(a.better_than(a));
}

TEST(Individual, DefaultFitnessIsInfinite) {
  const Individual fresh;
  Individual real;
  real.fitness = 1e18;
  EXPECT_TRUE(real.better_than(fresh));
}

TEST(Individual, FromEvaluatorMatchesMakeIndividual) {
  InstanceSpec spec;
  spec.num_jobs = 20;
  spec.num_machines = 3;
  const EtcMatrix etc = generate_instance(spec);
  Rng rng(4);
  const Schedule s = Schedule::random(20, 3, rng);
  ScheduleEvaluator eval(etc);
  eval.reset(s);
  const Individual from_eval =
      individual_from_evaluator(eval, FitnessWeights{});
  const Individual direct = make_individual(s, etc, FitnessWeights{});
  EXPECT_EQ(from_eval.schedule, direct.schedule);
  EXPECT_DOUBLE_EQ(from_eval.fitness, direct.fitness);
  EXPECT_DOUBLE_EQ(from_eval.objectives.makespan,
                   direct.objectives.makespan);
}

}  // namespace
}  // namespace gridsched
