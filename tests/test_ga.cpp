#include <gtest/gtest.h>

#include <limits>
#include <numeric>

#include "etc/instance.h"
#include "ga/braun_ga.h"
#include "ga/ga_common.h"
#include "ga/steady_state_ga.h"
#include "ga/struggle_ga.h"

namespace gridsched {
namespace {

EtcMatrix small_instance() {
  InstanceSpec spec;
  spec.num_jobs = 64;
  spec.num_machines = 8;
  return generate_instance(spec);
}

// --- Shared helpers. --------------------------------------------------------

TEST(GaCommon, SeedPopulationInjectsHeuristicsThenRandom) {
  const EtcMatrix etc = small_instance();
  Rng rng(1);
  const GaSeeding seeding{{HeuristicKind::kMinMin, HeuristicKind::kLjfrSjfr}};
  const auto population =
      seed_population(10, seeding, etc, FitnessWeights{}, rng);
  ASSERT_EQ(population.size(), 10u);
  EXPECT_EQ(population[0].schedule, min_min(etc));
  EXPECT_EQ(population[1].schedule, ljfr_sjfr(etc));
  for (const auto& individual : population) {
    EXPECT_TRUE(individual.schedule.complete(etc.num_machines()));
    EXPECT_LT(individual.fitness, std::numeric_limits<double>::infinity());
  }
}

TEST(GaCommon, SeedPopulationCancelledFallsBackToRandomFill) {
  const EtcMatrix etc = small_instance();
  Rng rng(3);
  const GaSeeding seeding{{HeuristicKind::kMinMin, HeuristicKind::kLjfrSjfr}};
  CancellationSource source;
  source.request_cancel();
  // A fired budget skips the heuristic seeds entirely; the population is
  // still full-size and fully evaluated (random schedules are cheap).
  const auto population =
      seed_population(6, seeding, etc, FitnessWeights{}, rng, source.token());
  ASSERT_EQ(population.size(), 6u);
  for (const auto& individual : population) {
    EXPECT_TRUE(individual.schedule.complete(etc.num_machines()));
    EXPECT_LT(individual.fitness, std::numeric_limits<double>::infinity());
  }
}

TEST(GaCommon, SeedPopulationTruncatesExcessSeeds) {
  const EtcMatrix etc = small_instance();
  Rng rng(2);
  const GaSeeding seeding{
      {HeuristicKind::kMinMin, HeuristicKind::kMaxMin, HeuristicKind::kMct}};
  const auto population =
      seed_population(2, seeding, etc, FitnessWeights{}, rng);
  EXPECT_EQ(population.size(), 2u);
}

TEST(GaCommon, RouletteFavorsFitterIndividuals) {
  std::vector<Individual> population(4);
  population[0].fitness = 1.0;   // best
  population[1].fitness = 100.0;
  population[2].fitness = 100.0;
  population[3].fitness = 100.0;
  Rng rng(3);
  int best_picked = 0;
  const int draws = 4000;
  for (int i = 0; i < draws; ++i) {
    best_picked += (roulette_select(population, rng) == 0) ? 1 : 0;
  }
  // Weights: best ~ 99+eps, others ~ eps; best dominates.
  EXPECT_GT(best_picked, draws * 9 / 10);
}

TEST(GaCommon, RouletteUniformWhenAllEqual) {
  std::vector<Individual> population(4);
  for (auto& ind : population) ind.fitness = 5.0;
  Rng rng(4);
  std::vector<int> counts(4, 0);
  for (int i = 0; i < 8000; ++i) ++counts[roulette_select(population, rng)];
  for (int c : counts) EXPECT_NEAR(c, 2000, 300);
}

TEST(GaCommon, BestAndWorstIndices) {
  std::vector<Individual> population(3);
  population[0].fitness = 5.0;
  population[1].fitness = 1.0;
  population[2].fitness = 9.0;
  EXPECT_EQ(best_index(population), 1u);
  EXPECT_EQ(worst_index(population), 2u);
}

TEST(GaCommon, MostSimilarUsesHammingDistance) {
  std::vector<Individual> population(3);
  population[0].schedule = Schedule(6, 0);
  population[1].schedule = Schedule(6, 1);
  population[2].schedule = Schedule(6, 2);
  Schedule probe(6, 1);
  probe[0] = 0;  // distance 1 to population[1]
  EXPECT_EQ(most_similar_index(population, probe), 1u);
}

// --- Engines. ----------------------------------------------------------------

template <typename Config>
Config eval_bounded(std::int64_t evals) {
  Config config;
  config.stop = StopCondition{.max_evaluations = evals};
  config.seed = 2024;
  return config;
}

TEST(BraunGa, ImprovesOnItsMinMinSeed) {
  const EtcMatrix etc = small_instance();
  const Individual seed = make_individual(min_min(etc), etc, FitnessWeights{});
  const auto result =
      BraunGa(eval_bounded<BraunGaConfig>(6'000)).run(etc);
  EXPECT_TRUE(result.best.schedule.complete(etc.num_machines()));
  EXPECT_LE(result.best.fitness, seed.fitness);
}

TEST(BraunGa, DeterministicInSeed) {
  const EtcMatrix etc = small_instance();
  const auto a = BraunGa(eval_bounded<BraunGaConfig>(2'000)).run(etc);
  const auto b = BraunGa(eval_bounded<BraunGaConfig>(2'000)).run(etc);
  EXPECT_EQ(a.best.schedule, b.best.schedule);
  EXPECT_EQ(a.evaluations, b.evaluations);
}

TEST(BraunGa, StagnationStopsTheRun) {
  const EtcMatrix etc = small_instance();
  BraunGaConfig config;
  config.stop = StopCondition{.max_evaluations = 1'000'000,
                              .max_stagnation = 3};
  config.seed = 7;
  const auto result = BraunGa(config).run(etc);
  // Far fewer evaluations than the budget: stagnation kicked in.
  EXPECT_LT(result.evaluations, 1'000'000);
}

TEST(BraunGa, InvalidConfigsThrow) {
  BraunGaConfig tiny;
  tiny.population_size = 1;
  EXPECT_THROW(BraunGa{tiny}, std::invalid_argument);
  BraunGaConfig bad_elite;
  bad_elite.elite_count = 500;
  EXPECT_THROW(BraunGa{bad_elite}, std::invalid_argument);
  BraunGaConfig no_stop;
  no_stop.stop = StopCondition{};
  EXPECT_THROW(BraunGa{no_stop}, std::invalid_argument);
}

TEST(SteadyStateGa, ImprovesOnItsSeeds) {
  const EtcMatrix etc = small_instance();
  const Individual seed =
      make_individual(ljfr_sjfr(etc), etc, FitnessWeights{});
  const auto result =
      SteadyStateGa(eval_bounded<SteadyStateGaConfig>(4'000)).run(etc);
  EXPECT_LE(result.best.fitness, seed.fitness);
}

TEST(SteadyStateGa, DeterministicInSeed) {
  const EtcMatrix etc = small_instance();
  const auto a = SteadyStateGa(eval_bounded<SteadyStateGaConfig>(1'500)).run(etc);
  const auto b = SteadyStateGa(eval_bounded<SteadyStateGaConfig>(1'500)).run(etc);
  EXPECT_EQ(a.best.schedule, b.best.schedule);
}

TEST(StruggleGa, ImprovesOnItsSeeds) {
  const EtcMatrix etc = small_instance();
  const Individual seed =
      make_individual(ljfr_sjfr(etc), etc, FitnessWeights{});
  const auto result =
      StruggleGa(eval_bounded<StruggleGaConfig>(4'000)).run(etc);
  EXPECT_LE(result.best.fitness, seed.fitness);
}

TEST(StruggleGa, DeterministicInSeed) {
  const EtcMatrix etc = small_instance();
  const auto a = StruggleGa(eval_bounded<StruggleGaConfig>(1'500)).run(etc);
  const auto b = StruggleGa(eval_bounded<StruggleGaConfig>(1'500)).run(etc);
  EXPECT_EQ(a.best.schedule, b.best.schedule);
}

TEST(AllGas, BeatRandomSearchAtEqualEvaluations) {
  const EtcMatrix etc = small_instance();
  const std::int64_t budget = 3'000;

  Rng rng(555);
  double best_random = std::numeric_limits<double>::infinity();
  for (std::int64_t i = 0; i < budget; ++i) {
    best_random = std::min(
        best_random,
        make_individual(
            Schedule::random(etc.num_jobs(), etc.num_machines(), rng), etc,
            FitnessWeights{})
            .fitness);
  }

  EXPECT_LT(BraunGa(eval_bounded<BraunGaConfig>(budget)).run(etc).best.fitness,
            best_random);
  EXPECT_LT(
      SteadyStateGa(eval_bounded<SteadyStateGaConfig>(budget)).run(etc)
          .best.fitness,
      best_random);
  EXPECT_LT(
      StruggleGa(eval_bounded<StruggleGaConfig>(budget)).run(etc).best.fitness,
      best_random);
}

TEST(AllGas, ProgressTracesAreMonotone) {
  const EtcMatrix etc = small_instance();
  auto check = [](const EvolutionResult& result) {
    ASSERT_FALSE(result.progress.empty());
    for (std::size_t i = 1; i < result.progress.size(); ++i) {
      ASSERT_LE(result.progress[i].best_fitness,
                result.progress[i - 1].best_fitness + 1e-9);
    }
  };
  auto braun_config = eval_bounded<BraunGaConfig>(2'000);
  braun_config.record_progress = true;
  check(BraunGa(braun_config).run(etc));

  auto ss_config = eval_bounded<SteadyStateGaConfig>(2'000);
  ss_config.record_progress = true;
  check(SteadyStateGa(ss_config).run(etc));

  auto struggle_config = eval_bounded<StruggleGaConfig>(2'000);
  struggle_config.record_progress = true;
  check(StruggleGa(struggle_config).run(etc));
}

}  // namespace
}  // namespace gridsched
