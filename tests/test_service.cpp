#include "service/grid_scheduling_service.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>
#include <vector>

#include "etc/instance.h"
#include "service/sharded_driver.h"
#include "sim/grid_simulator.h"
#include "workload/workload_source.h"

namespace gridsched {
namespace {

EtcMatrix small_instance(int jobs, int machines, std::uint64_t seed = 3) {
  InstanceSpec spec;
  spec.num_jobs = jobs;
  spec.num_machines = machines;
  spec.seed = seed;
  return generate_instance(spec);
}

/// Deterministic service: generous wall budget, hard evaluation bound.
ServiceConfig deterministic_config(int shards) {
  ServiceConfig config;
  config.num_shards = shards;
  config.total_budget_ms = 60'000.0;
  config.threads = 2;
  config.member_stop = StopCondition{.max_evaluations = 150};
  config.seed = 11;
  return config;
}

/// The canonical dying-queue shape: every job is fastest on machine 0, so
/// an affinity router piles the whole batch onto machine 0's shard while
/// the rest of the pool idles — the fixture behind the rebalancing and
/// drain-steal tests.
EtcMatrix dying_queue_etc(int jobs = 12, int machines = 4) {
  EtcMatrix etc(jobs, machines);
  for (JobId job = 0; job < etc.num_jobs(); ++job) {
    for (MachineId machine = 0; machine < etc.num_machines(); ++machine) {
      etc.set(job, machine, machine == 0 ? 10.0 : 40.0);
    }
  }
  return etc;
}

ShardSnapshot snapshot(int shard, std::vector<int> columns, double ready_sum,
                       double routed_work = 0.0) {
  ShardSnapshot s;
  s.shard = shard;
  s.columns = std::move(columns);
  s.ready_sum = ready_sum;
  s.routed_work = routed_work;
  return s;
}

// ---------------------------------------------------------------- router --

TEST(RoutingPolicy, RoundRobinCyclesOverAvailableShards) {
  RoundRobinRouting router;
  const EtcMatrix etc(4, 3);
  const std::vector<ShardSnapshot> shards = {
      snapshot(0, {0}, 0.0), snapshot(2, {1, 2}, 0.0)};
  EXPECT_EQ(router.route(0, etc, shards), 0u);
  EXPECT_EQ(router.route(1, etc, shards), 1u);
  EXPECT_EQ(router.route(2, etc, shards), 0u);
  EXPECT_EQ(router.route(3, etc, shards), 1u);
}

TEST(RoutingPolicy, LeastBacklogIsDeterministicGivenFixedBacklogs) {
  LeastBacklogRouting router;
  const EtcMatrix etc(1, 4);
  const std::vector<ShardSnapshot> shards = {
      snapshot(0, {0}, 30.0), snapshot(1, {1}, 10.0), snapshot(2, {2}, 20.0)};
  // Smallest ready-time sum wins; repeated calls with the same snapshots
  // give the same answer (the policy is stateless).
  EXPECT_EQ(router.route(0, etc, shards), 1u);
  EXPECT_EQ(router.route(0, etc, shards), 1u);
}

TEST(RoutingPolicy, LeastBacklogCountsWorkRoutedThisActivation) {
  LeastBacklogRouting router;
  const EtcMatrix etc(1, 2);
  // Shard 1 has the lower ready sum but already absorbed 15s of routed
  // work this activation, so shard 0 is now the lighter queue.
  const std::vector<ShardSnapshot> shards = {
      snapshot(0, {0}, 12.0, 0.0), snapshot(1, {1}, 5.0, 15.0)};
  EXPECT_EQ(router.route(0, etc, shards), 0u);
}

TEST(RoutingPolicy, LeastBacklogTieBreaksTowardLowerIndex) {
  LeastBacklogRouting router;
  const EtcMatrix etc(1, 2);
  const std::vector<ShardSnapshot> shards = {
      snapshot(3, {0}, 7.0), snapshot(5, {1}, 7.0)};
  EXPECT_EQ(router.route(0, etc, shards), 0u);
}

TEST(RoutingPolicy, BestFitPicksTheShardWithTheLowestEtc) {
  BestFitRouting router;
  EtcMatrix etc(2, 4);
  etc.set(0, 0, 9.0);
  etc.set(0, 1, 8.0);
  etc.set(0, 2, 1.0);  // job 0 is fastest on column 2 (shard 1)
  etc.set(0, 3, 7.0);
  etc.set(1, 0, 2.0);  // job 1 is fastest on column 0 (shard 0)
  etc.set(1, 1, 6.0);
  etc.set(1, 2, 5.0);
  etc.set(1, 3, 4.0);
  const std::vector<ShardSnapshot> shards = {
      snapshot(0, {0, 1}, 0.0), snapshot(1, {2, 3}, 0.0)};
  EXPECT_EQ(router.route(0, etc, shards), 1u);
  EXPECT_EQ(router.route(1, etc, shards), 0u);
}

TEST(RoutingPolicy, ShardMctBalancesAffinityAgainstBacklog) {
  ShardMctRouting router;
  EtcMatrix etc(1, 2);
  etc.set(0, 0, 2.0);   // shard 0 is faster for the job...
  etc.set(0, 1, 10.0);  // ...but shard 1 is idle
  // Light backlog: affinity wins (5/1 + 2 = 7 < 0 + 10).
  const std::vector<ShardSnapshot> light = {
      snapshot(0, {0}, 5.0), snapshot(1, {1}, 0.0)};
  EXPECT_EQ(router.route(0, etc, light), 0u);
  // Deep backlog on the fast shard: the idle shard's completion wins
  // (20/1 + 2 = 22 > 0 + 10).
  const std::vector<ShardSnapshot> deep = {
      snapshot(0, {0}, 20.0), snapshot(1, {1}, 0.0)};
  EXPECT_EQ(router.route(0, etc, deep), 1u);
}

TEST(RoutingPolicy, FactoryAndNamesCoverEveryKind) {
  for (const RoutingKind kind : all_routing_kinds()) {
    const auto policy = make_routing_policy(kind);
    EXPECT_EQ(policy->name(), routing_name(kind));
  }
}

TEST(RoutingPolicy, ShardWorkEstimateIsTheBestEtcInTheShard) {
  EtcMatrix etc(1, 3);
  etc.set(0, 0, 2.0);
  etc.set(0, 1, 4.0);
  etc.set(0, 2, 100.0);
  EXPECT_DOUBLE_EQ(shard_work_estimate(etc, 0, snapshot(0, {0, 1}, 0.0)),
                   2.0);
  EXPECT_DOUBLE_EQ(shard_work_estimate(etc, 0, snapshot(1, {2}, 0.0)), 100.0);
}

TEST(RoutingPolicy, ShardWorkEstimateNormalizesClassStarvedShards) {
  EtcMatrix etc(1, 2);
  etc.set(0, 0, 30.0);  // off-class machine: 3x the matched cost
  etc.set(0, 1, 10.0);
  ShardSnapshot starved = snapshot(0, {0}, 0.0);
  starved.class_machines = {0, 1};  // no machine of class 0 here
  starved.class_speedup = 3.0;
  ShardSnapshot matched = snapshot(1, {1}, 0.0);
  matched.class_machines = {1, 0};
  matched.class_speedup = 3.0;
  // A class-0 job books matched-machine seconds on BOTH shards: the
  // starved shard's off-class minimum is divided by the speedup, so
  // least-backlog compares like with like instead of reading the starved
  // shard as 3x busier per routed job.
  EXPECT_DOUBLE_EQ(shard_work_estimate(etc, RoutedJob(0, 0), starved), 10.0);
  EXPECT_DOUBLE_EQ(shard_work_estimate(etc, RoutedJob(0, 0), matched), 10.0);
  // Classless jobs and classless grids keep the raw minimum.
  EXPECT_DOUBLE_EQ(shard_work_estimate(etc, RoutedJob(0, -1), starved), 30.0);
  EXPECT_DOUBLE_EQ(shard_work_estimate(etc, 0, snapshot(0, {0}, 0.0)), 30.0);
}

TEST(RoutingPolicy, ClassBacklogPrefersTheShardWithTheClassQueueFree) {
  ClassBacklogRouting router;
  EtcMatrix etc(1, 2);
  etc.set(0, 0, 10.0);  // class-0 job runs equally fast on both shards...
  etc.set(0, 1, 10.0);
  ShardSnapshot busy_for_class = snapshot(0, {0}, 0.0);
  busy_for_class.class_machines = {1, 0};
  busy_for_class.class_routed_work = {50.0, 0.0};  // class 0 queue is deep
  busy_for_class.routed_work = 50.0;
  ShardSnapshot free_for_class = snapshot(1, {1}, 40.0);
  free_for_class.class_machines = {1, 0};
  free_for_class.class_routed_work = {0.0, 0.0};
  // Total backlogs are comparable (50 vs 40) but shard 0's class-0 lane is
  // saturated; the class router must see past the totals.
  EXPECT_EQ(router.route(RoutedJob(0, 0), etc,
                         std::vector<ShardSnapshot>{busy_for_class,
                                                    free_for_class}),
            1u);
  // A classless job degrades to least-backlog and picks the lighter total.
  EXPECT_EQ(router.route(RoutedJob(0, -1), etc,
                         std::vector<ShardSnapshot>{busy_for_class,
                                                    free_for_class}),
            1u);
}

TEST(RoutingPolicy, ClassBacklogAvoidsClassStarvedShardsWhenCostly) {
  ClassBacklogRouting router;
  EtcMatrix etc(1, 2);
  etc.set(0, 0, 30.0);  // shard 0 lacks the class: 3x slower
  etc.set(0, 1, 10.0);
  ShardSnapshot starved = snapshot(0, {0}, 0.0);
  starved.class_machines = {0, 1};
  starved.class_routed_work = {0.0, 0.0};
  starved.class_speedup = 3.0;
  ShardSnapshot matched = snapshot(1, {1}, 0.0);
  matched.class_machines = {1, 0};
  matched.class_routed_work = {0.0, 0.0};
  matched.class_speedup = 3.0;
  EXPECT_EQ(router.route(RoutedJob(0, 0), etc,
                         std::vector<ShardSnapshot>{starved, matched}),
            1u);
}

TEST(RoutingPolicy, PlanDrainStealsSpreadsTheStragglerQueue) {
  // Four equal jobs piled on shard 0's lone machine while shard 1 idles:
  // the steal pass must level the pair — two jobs move, and the third
  // candidate is rejected because the thief would become the straggler.
  EtcMatrix etc(4, 2);
  for (JobId job = 0; job < etc.num_jobs(); ++job) {
    etc.set(job, 0, 10.0);
    etc.set(job, 1, 10.0);
  }
  const Schedule plan(4, 0);
  const std::vector<int> column_shard = {0, 1};
  const std::vector<StealMove> moves =
      plan_drain_steals(etc, plan, column_shard, 100);
  ASSERT_EQ(moves.size(), 2u);
  for (const StealMove& move : moves) {
    EXPECT_EQ(move.from_column, 0);
    EXPECT_EQ(move.to_column, 1);
    EXPECT_EQ(move.from_shard, 0);
    EXPECT_EQ(move.to_shard, 1);
  }
  EXPECT_NE(moves[0].row, moves[1].row);
}

TEST(RoutingPolicy, PlanDrainStealsIsCrossShardOnly) {
  // Same straggler pile-up, but both machines belong to one shard:
  // intra-shard placement is the portfolio's job, so nothing moves.
  EtcMatrix etc(4, 2);
  for (JobId job = 0; job < etc.num_jobs(); ++job) {
    etc.set(job, 0, 10.0);
    etc.set(job, 1, 10.0);
  }
  const Schedule plan(4, 0);
  const std::vector<int> same_shard = {0, 0};
  EXPECT_TRUE(plan_drain_steals(etc, plan, same_shard, 100).empty());
}

TEST(RoutingPolicy, PlanDrainStealsRespectsClassAffinity) {
  // The neighbor is off-class (3x slower): it only wins the steal when
  // its queue is short enough that even the off-class cost still beats
  // the straggler's drain time — the real-ETC scoring carries the class
  // structure for free.
  EtcMatrix short_queue(3, 2);
  for (JobId job = 0; job < short_queue.num_jobs(); ++job) {
    short_queue.set(job, 0, 10.0);  // matched machine
    short_queue.set(job, 1, 30.0);  // off-class machine
  }
  const std::vector<int> column_shard = {0, 1};
  // Three matched jobs drain at 30; the off-class alternative ties at 30
  // and a tie is no gain: stay home.
  EXPECT_TRUE(plan_drain_steals(short_queue, Schedule(3, 0), column_shard,
                                100)
                  .empty());
  // A fourth job pushes the matched drain to 40: now one off-class steal
  // (finishing at 30) strictly helps, and exactly one fires.
  EtcMatrix long_queue(4, 2);
  for (JobId job = 0; job < long_queue.num_jobs(); ++job) {
    long_queue.set(job, 0, 10.0);
    long_queue.set(job, 1, 30.0);
  }
  const std::vector<StealMove> moves =
      plan_drain_steals(long_queue, Schedule(4, 0), column_shard, 100);
  ASSERT_EQ(moves.size(), 1u);
  EXPECT_EQ(moves[0].to_column, 1);
}

TEST(RoutingPolicy, PlanDrainStealsPrefersTheMatchedNeighbor) {
  // Two idle foreign machines, one matched and one off-class: the steal
  // lands on the matched one (earliest finish), not just any idle slot.
  EtcMatrix etc(4, 3);
  for (JobId job = 0; job < etc.num_jobs(); ++job) {
    etc.set(job, 0, 10.0);  // the straggler shard's machine
    etc.set(job, 1, 30.0);  // off-class neighbor
    etc.set(job, 2, 10.0);  // matched neighbor
  }
  const std::vector<int> column_shard = {0, 1, 2};
  const std::vector<StealMove> moves =
      plan_drain_steals(etc, Schedule(4, 0), column_shard, 100);
  ASSERT_FALSE(moves.empty());
  EXPECT_EQ(moves.front().to_column, 2);
  EXPECT_EQ(moves.front().to_shard, 2);
}

TEST(RoutingPolicy, RoutingKindRoundTripsThroughItsName) {
  for (const RoutingKind kind : all_routing_kinds()) {
    EXPECT_EQ(routing_kind_from_name(routing_name(kind)), kind);
  }
  EXPECT_THROW((void)routing_kind_from_name("no-such-policy"),
               std::invalid_argument);
}

// --------------------------------------------------------------- service --

TEST(Service, RejectsBadConfigs) {
  ServiceConfig config = deterministic_config(2);
  config.num_shards = 0;
  EXPECT_THROW(GridSchedulingService{config}, std::invalid_argument);
  config = deterministic_config(2);
  config.total_budget_ms = 0.0;
  EXPECT_THROW(GridSchedulingService{config}, std::invalid_argument);
  config = deterministic_config(2);
  config.imbalance_factor = 0.5;  // must be 0 (off) or >= 1
  EXPECT_THROW(GridSchedulingService{config}, std::invalid_argument);
}

TEST(Service, SchedulesEveryJobOntoItsOwnShard) {
  const EtcMatrix etc = small_instance(24, 8);
  GridSchedulingService service(deterministic_config(2));
  const Schedule plan = service.schedule_batch(etc);
  ASSERT_TRUE(plan.complete(etc.num_machines()));
  // The cardinal shard invariant: a job routed to shard s runs on one of
  // shard s's machines (identity context: machine id = column).
  for (JobId job = 0; job < etc.num_jobs(); ++job) {
    const int shard = service.shard_of_job(job);
    ASSERT_GE(shard, 0);
    EXPECT_EQ(service.shard_of_machine(plan[job]), shard)
        << "job " << job << " escaped its shard";
  }
}

TEST(Service, RoundRobinAssignmentIsDeterministic) {
  const EtcMatrix etc = small_instance(8, 4);
  ServiceConfig config = deterministic_config(2);
  config.routing = RoutingKind::kRoundRobin;
  config.imbalance_factor = 0.0;  // keep the routing decision untouched
  GridSchedulingService service(config);
  (void)service.schedule_batch(etc);
  // Machines 0..3 map to shards {0, 1, 0, 1}; round-robin alternates the
  // two available shards in arrival order.
  for (JobId job = 0; job < etc.num_jobs(); ++job) {
    EXPECT_EQ(service.shard_of_job(job), job % 2);
  }
}

TEST(Service, NeverLosesToConstructiveHeuristics) {
  const EtcMatrix etc = small_instance(40, 8);
  ServiceConfig config = deterministic_config(4);
  GridSchedulingService service(config);
  const Schedule plan = service.schedule_batch(etc);
  ASSERT_TRUE(plan.complete(etc.num_machines()));
  // Sharding restricts each job to its shard's machines, so the service
  // cannot be compared against the unrestricted Min-Min directly; what it
  // must never lose is each shard's own safety net. The per-shard
  // portfolios assert exactly that internally; here we check the plan is
  // evaluable and finite end to end.
  const Individual planned = make_individual(plan, etc, config.weights);
  EXPECT_GT(planned.fitness, 0.0);
  EXPECT_TRUE(std::isfinite(planned.fitness));
}

TEST(Service, BudgetIsSplitAcrossShardsWithWork) {
  const EtcMatrix etc = small_instance(24, 8);
  ServiceConfig config = deterministic_config(2);
  config.total_budget_ms = 1'000.0;
  GridSchedulingService service(config);
  (void)service.schedule_batch(etc);
  ASSERT_EQ(service.shard_activations().size(), 2u);
  for (const ShardActivationRecord& record : service.shard_activations()) {
    EXPECT_DOUBLE_EQ(record.budget_ms, 500.0);
  }
}

TEST(Service, RebalancingShedsTheHotShard) {
  // Jobs are uniformly fastest on machine 0, so best-fit piles the whole
  // batch onto shard 0 while shard 1 idles — exactly the starvation case
  // rebalancing exists for.
  const EtcMatrix etc = dying_queue_etc();
  ServiceConfig config = deterministic_config(2);
  config.routing = RoutingKind::kBestFit;
  config.imbalance_factor = 1.5;
  GridSchedulingService service(config);
  const Schedule plan = service.schedule_batch(etc);
  ASSERT_TRUE(plan.complete(etc.num_machines()));

  int migrated_out = 0;
  int migrated_in = 0;
  std::vector<int> jobs_per_shard(2, 0);
  for (const ShardStats& stat : service.shard_stats()) {
    migrated_out += stat.migrated_out;
    migrated_in += stat.migrated_in;
    jobs_per_shard[static_cast<std::size_t>(stat.shard)] +=
        stat.jobs_scheduled;
  }
  EXPECT_GT(migrated_out, 0) << "hot shard never shed a job";
  EXPECT_EQ(migrated_out, migrated_in);
  EXPECT_GT(jobs_per_shard[1], 0) << "light shard stayed starved";

  // Identity through migration: every job is still scheduled exactly once,
  // on a machine of the shard that finally owns it.
  for (JobId job = 0; job < etc.num_jobs(); ++job) {
    EXPECT_EQ(service.shard_of_machine(plan[job]), service.shard_of_job(job));
  }
}

TEST(Service, DisabledRebalancingNeverMigrates) {
  const EtcMatrix etc = dying_queue_etc();
  ServiceConfig config = deterministic_config(2);
  config.routing = RoutingKind::kBestFit;
  config.imbalance_factor = 0.0;
  GridSchedulingService service(config);
  (void)service.schedule_batch(etc);
  for (const ShardStats& stat : service.shard_stats()) {
    EXPECT_EQ(stat.migrated_out, 0);
    EXPECT_EQ(stat.migrated_in, 0);
  }
}

TEST(Service, WarmStartCachesAreShardIsolated) {
  const EtcMatrix etc = small_instance(30, 6);
  GridSchedulingService service(deterministic_config(2));
  (void)service.schedule_batch(etc);

  std::set<int> seen_jobs;
  for (int shard = 0; shard < service.num_shards(); ++shard) {
    const PopulationCache& cache = service.shard_scheduler(shard).cache();
    ASSERT_FALSE(cache.empty()) << "shard " << shard << " cache never fed";
    for (const int machine : cache.stored_machine_ids()) {
      EXPECT_EQ(service.shard_of_machine(machine), shard)
          << "shard " << shard << " cached a foreign machine";
    }
    for (const int job : cache.stored_job_ids()) {
      EXPECT_EQ(service.shard_of_job(job), shard);
      EXPECT_TRUE(seen_jobs.insert(job).second)
          << "job " << job << " leaked into two shard caches";
    }
  }

  // A second activation consumes the warm caches without cross-talk and
  // still produces a complete schedule.
  const Schedule plan = service.schedule_batch(etc);
  EXPECT_TRUE(plan.complete(etc.num_machines()));
}

TEST(Service, AllJobsOnOneShardLosesAndDuplicatesNothing) {
  // Best-fit with rebalancing off funnels the whole batch onto shard 0
  // (machine 0 dominates); the starved shard must simply sit out, with
  // every job scheduled exactly once on the hot shard.
  EtcMatrix etc(15, 4);
  for (JobId job = 0; job < etc.num_jobs(); ++job) {
    for (MachineId machine = 0; machine < etc.num_machines(); ++machine) {
      etc.set(job, machine, machine == 0 ? 5.0 : 50.0);
    }
  }
  ServiceConfig config = deterministic_config(2);
  config.routing = RoutingKind::kBestFit;
  config.imbalance_factor = 0.0;
  GridSchedulingService service(config);
  const Schedule plan = service.schedule_batch(etc);
  ASSERT_TRUE(plan.complete(etc.num_machines()));
  int scheduled = 0;
  for (const ShardStats& stat : service.shard_stats()) {
    scheduled += stat.jobs_scheduled;
    if (stat.shard == 1) {
      EXPECT_EQ(stat.jobs_scheduled, 0);
    }
  }
  EXPECT_EQ(scheduled, etc.num_jobs());
  for (JobId job = 0; job < etc.num_jobs(); ++job) {
    EXPECT_EQ(service.shard_of_job(job), 0);
    EXPECT_EQ(service.shard_of_machine(plan[job]), 0);
  }
}

TEST(Service, ShardWithNoMachinesNeverReceivesAJob) {
  // 4 shards over 3 machines: shard 3 owns no machine at all, ever — the
  // degenerate partition a mis-sized deployment produces. The router must
  // skip it and still place the full batch.
  const EtcMatrix etc = small_instance(18, 3);
  for (const RoutingKind routing : all_routing_kinds()) {
    ServiceConfig config = deterministic_config(4);
    config.routing = routing;
    GridSchedulingService service(config);
    const Schedule plan = service.schedule_batch(etc);
    ASSERT_TRUE(plan.complete(etc.num_machines()))
        << routing_name(routing);
    int scheduled = 0;
    for (const ShardStats& stat : service.shard_stats()) {
      scheduled += stat.jobs_scheduled;
      if (stat.shard == 3) {
        EXPECT_EQ(stat.jobs_scheduled, 0) << routing_name(routing);
        EXPECT_EQ(stat.activations, 0) << routing_name(routing);
      }
    }
    EXPECT_EQ(scheduled, etc.num_jobs()) << routing_name(routing);
    for (JobId job = 0; job < etc.num_jobs(); ++job) {
      EXPECT_EQ(service.shard_of_machine(plan[job]),
                service.shard_of_job(job))
          << routing_name(routing);
    }
  }
}

TEST(Service, RebalancingWithAnEmptyHotShardIsANoOp) {
  // Shard 0 is hottest by backlog (huge ready times) yet holds zero queued
  // jobs this activation — there is nothing to shed, and the rebalancer
  // must neither crash nor conjure migrations from the empty queue.
  EtcMatrix etc(10, 4);
  for (JobId job = 0; job < etc.num_jobs(); ++job) {
    for (MachineId machine = 0; machine < etc.num_machines(); ++machine) {
      // Shard 1's machines (1, 3) dominate for every job.
      etc.set(job, machine, machine % 2 == 1 ? 4.0 : 40.0);
    }
  }
  etc.set_ready_time(0, 500.0);  // shard 0 drowning in old backlog
  etc.set_ready_time(2, 500.0);
  ServiceConfig config = deterministic_config(2);
  config.routing = RoutingKind::kBestFit;
  config.imbalance_factor = 1.5;
  GridSchedulingService service(config);
  const Schedule plan = service.schedule_batch(etc);
  ASSERT_TRUE(plan.complete(etc.num_machines()));
  int scheduled = 0;
  for (const ShardStats& stat : service.shard_stats()) {
    scheduled += stat.jobs_scheduled;
    if (stat.shard == 0) {
      EXPECT_EQ(stat.migrated_out, 0) << "shed from an empty queue";
      EXPECT_EQ(stat.jobs_scheduled, 0);
    }
  }
  EXPECT_EQ(scheduled, etc.num_jobs());
  for (JobId job = 0; job < etc.num_jobs(); ++job) {
    EXPECT_EQ(service.shard_of_job(job), 1);
  }
}

TEST(Service, SingleShardDegeneratesToOnePortfolio) {
  const EtcMatrix etc = small_instance(16, 4);
  GridSchedulingService service(deterministic_config(1));
  const Schedule plan = service.schedule_batch(etc);
  ASSERT_TRUE(plan.complete(etc.num_machines()));
  ASSERT_EQ(service.shard_activations().size(), 1u);
  EXPECT_EQ(service.shard_activations()[0].jobs, etc.num_jobs());
  EXPECT_DOUBLE_EQ(service.shard_activations()[0].budget_ms,
                   service.config().total_budget_ms);
}

TEST(Service, ConcurrentAndSequentialActivationAgree) {
  // With evaluation-bounded members the committed schedules are
  // deterministic, so overlapping the shard races must not change them —
  // the no-job-lost-or-duplicated contract of concurrent activation.
  const EtcMatrix etc = small_instance(36, 8);
  ServiceConfig sequential = deterministic_config(4);
  sequential.concurrent_shards = false;
  ServiceConfig concurrent = deterministic_config(4);
  concurrent.concurrent_shards = true;
  GridSchedulingService service_seq(sequential);
  GridSchedulingService service_conc(concurrent);
  for (int round = 0; round < 3; ++round) {
    const Schedule plan_seq = service_seq.schedule_batch(etc);
    const Schedule plan_conc = service_conc.schedule_batch(etc);
    EXPECT_EQ(plan_seq, plan_conc) << "round " << round;
  }
  ASSERT_FALSE(service_conc.service_activations().empty());
  for (const ServiceActivationRecord& record :
       service_conc.service_activations()) {
    EXPECT_TRUE(record.concurrent);
    EXPECT_GT(record.shards_raced, 1);
  }
  for (const ServiceActivationRecord& record :
       service_seq.service_activations()) {
    EXPECT_FALSE(record.concurrent);
  }
}

TEST(Service, ClassBacklogRoutingKeepsClassedJobsOnMatchedShards) {
  // 2 shards x 2 classes with the interleaved conventions: shard 0 owns
  // machines {0, 2} — but classes also alternate, so make the partition
  // class-pure by hand: machines 0,2 (class 0) vs 1,3 (class 1) happen to
  // be exactly the static id%2 shards. Matched pairs run 3x faster.
  EtcMatrix etc(8, 4);
  BatchContext context = BatchContext::identity(etc);
  context.num_job_classes = 2;
  context.class_speedup = 3.0;
  for (JobId job = 0; job < etc.num_jobs(); ++job) {
    const int job_class = job % 2;
    context.job_classes.push_back(job_class);
    for (MachineId machine = 0; machine < etc.num_machines(); ++machine) {
      const bool matched = machine % 2 == job_class;
      etc.set(job, machine, matched ? 10.0 : 30.0);
    }
  }
  ServiceConfig config = deterministic_config(2);
  config.routing = RoutingKind::kClassBacklog;
  config.imbalance_factor = 0.0;  // keep the routing decision untouched
  GridSchedulingService service(config);
  const Schedule plan = service.schedule_batch(etc, context);
  ASSERT_TRUE(plan.complete(etc.num_machines()));
  for (JobId job = 0; job < etc.num_jobs(); ++job) {
    // Machine m has class m % 2; shard s == class s here.
    EXPECT_EQ(service.shard_of_job(job), job % 2)
        << "job " << job << " routed off its class shard";
    EXPECT_EQ(plan[job] % 2, job % 2) << "job " << job << " ran off-class";
  }
}

TEST(Service, RejectsIncoherentJobClasses) {
  const EtcMatrix etc = small_instance(4, 4);
  GridSchedulingService service(deterministic_config(2));
  BatchContext context = BatchContext::identity(etc);
  context.num_job_classes = 2;
  context.class_speedup = 3.0;
  context.job_classes = {0, 1, 5, 0};  // 5 is out of range
  EXPECT_THROW((void)service.schedule_batch(etc, context),
               std::invalid_argument);
  context.job_classes = {0, 1};  // wrong length
  EXPECT_THROW((void)service.schedule_batch(etc, context),
               std::invalid_argument);
  context.job_classes = {0, 1, -1, 0};  // -1 = unclassed is legal
  EXPECT_TRUE(
      service.schedule_batch(etc, context).complete(etc.num_machines()));
}

TEST(Service, SplitGrowsThePartitionWhenThePoolOutgrowsTheBound) {
  ServiceConfig config = deterministic_config(2);
  config.split_above_machines = 4;
  config.max_shards = 4;
  GridSchedulingService service(config);
  const EtcMatrix etc = small_instance(32, 16);
  const Schedule plan = service.schedule_batch(etc);
  ASSERT_TRUE(plan.complete(etc.num_machines()));
  // 16 machines / 2 shards = 8 > 4 -> split; 16/3 = 5.3 > 4 -> split;
  // 16/4 = 4, not above the bound -> stop at the cap.
  EXPECT_EQ(service.num_shards(), 4);
  ASSERT_EQ(service.resize_events().size(), 2u);
  for (const ShardResizeEvent& event : service.resize_events()) {
    EXPECT_TRUE(event.split);
    EXPECT_GT(event.machines_moved, 0);
    EXPECT_EQ(event.alive_machines, 16);
  }
  // No job lost or duplicated across the resized partition.
  int scheduled = 0;
  for (const ShardStats& stat : service.shard_stats()) {
    scheduled += stat.jobs_scheduled;
  }
  EXPECT_EQ(scheduled, etc.num_jobs());
  for (JobId job = 0; job < etc.num_jobs(); ++job) {
    EXPECT_EQ(service.shard_of_machine(plan[job]), service.shard_of_job(job));
  }
}

TEST(Service, SplitMovesAliveCapacityNotJustCorpses) {
  ServiceConfig config = deterministic_config(1);
  config.split_above_machines = 4;
  config.max_shards = 2;
  GridSchedulingService service(config);
  // Batch 1: machines 0..3 — exactly at the bound, no split; the
  // partition map learns them.
  const EtcMatrix first = small_instance(8, 4);
  (void)service.schedule_batch(first);
  ASSERT_TRUE(service.resize_events().empty());
  // Batch 2: machines 1 and 3 are dead, 4/6/8 joined — 5 alive machines
  // on one shard trips the split. A parity cut over the MIXED owned list
  // {0,1,2,3,4,6,8} would hand the child {1,3,6}: two corpses and one
  // machine. The cut must run over the alive list, so the child inherits
  // real capacity.
  const EtcMatrix second = small_instance(10, 5, 7);
  BatchContext context = BatchContext::identity(second);
  context.machine_ids = {0, 2, 4, 6, 8};
  const Schedule plan = service.schedule_batch(second, context);
  ASSERT_TRUE(plan.complete(second.num_machines()));
  ASSERT_EQ(service.resize_events().size(), 1u);
  const ShardResizeEvent& split = service.resize_events().front();
  EXPECT_TRUE(split.split);
  int child_alive = 0;
  for (const int machine : context.machine_ids) {
    if (service.shard_of_machine(machine) == split.to_shard) ++child_alive;
  }
  EXPECT_EQ(child_alive, 2);
  EXPECT_EQ(service.shard_of_machine(2), split.to_shard);
  EXPECT_EQ(service.shard_of_machine(6), split.to_shard);
}

TEST(Service, MergeFoldsTheLightShardsWhenMachinesVanish) {
  ServiceConfig config = deterministic_config(4);
  config.merge_below_machines = 3;
  GridSchedulingService service(config);
  // Only 4 machines for 4 shards: mean 1 < 3 -> merge until the mean
  // clears the bound (4/2 = 2 < 3, 4/1 = 4 -> one shard absorbs all).
  const EtcMatrix etc = small_instance(12, 4);
  const Schedule plan = service.schedule_batch(etc);
  ASSERT_TRUE(plan.complete(etc.num_machines()));
  ASSERT_EQ(service.resize_events().size(), 3u);
  for (const ShardResizeEvent& event : service.resize_events()) {
    EXPECT_FALSE(event.split);
  }
  // Every machine now lives on one shard, and the whole batch ran there.
  const int owner = service.shard_of_machine(0);
  for (int machine = 1; machine < etc.num_machines(); ++machine) {
    EXPECT_EQ(service.shard_of_machine(machine), owner);
  }
  int scheduled = 0;
  for (const ShardStats& stat : service.shard_stats()) {
    scheduled += stat.jobs_scheduled;
    if (stat.shard != owner) {
      EXPECT_EQ(stat.jobs_scheduled, 0);
    }
  }
  EXPECT_EQ(scheduled, etc.num_jobs());
}

TEST(Service, SplitMigratesTheWarmStartCache) {
  ServiceConfig config = deterministic_config(2);
  config.split_above_machines = 6;
  config.max_shards = 3;
  GridSchedulingService service(config);
  // First activation: 8 machines / 2 shards = 4, under the bound — the
  // caches fill without any resize.
  const EtcMatrix small = small_instance(24, 8);
  (void)service.schedule_batch(small);
  EXPECT_EQ(service.num_shards(), 2);
  EXPECT_FALSE(service.shard_scheduler(0).cache().empty());
  // Second activation arrives with 16 machines: 16/2 = 8 > 6 -> split.
  // The child shard must inherit a COPY of the parent's elites, not start
  // cold.
  const EtcMatrix big = small_instance(48, 16, 5);
  (void)service.schedule_batch(big);
  ASSERT_EQ(service.num_shards(), 3);
  ASSERT_FALSE(service.resize_events().empty());
  const ShardResizeEvent& split = service.resize_events().front();
  EXPECT_TRUE(split.split);
  EXPECT_EQ(split.to_shard, 2);
  EXPECT_FALSE(service.shard_scheduler(2).cache().empty())
      << "split child started with a cold cache";
}

TEST(Service, RejectsOscillatingScalingBounds) {
  ServiceConfig config = deterministic_config(2);
  config.split_above_machines = 5;
  config.merge_below_machines = 4;  // less than twice the merge bound
  EXPECT_THROW(GridSchedulingService{config}, std::invalid_argument);
}

TEST(Service, DrainStealSpreadsTheDyingQueueOverThePool) {
  // Best-fit with rebalancing off piles the whole batch onto shard 0
  // (machine 0 dominates): the canonical drain-tail shape — one dying
  // queue, idle neighbors. With stealing on, the straggler machine's jobs
  // spill onto shard 1's idle machines, each job still executed exactly
  // once on the machine the (post-steal) job map names.
  const EtcMatrix etc = dying_queue_etc();
  ServiceConfig config = deterministic_config(2);
  config.routing = RoutingKind::kBestFit;
  config.imbalance_factor = 0.0;
  config.drain_steal = true;
  GridSchedulingService service(config);
  const Schedule plan = service.schedule_batch(etc);
  ASSERT_TRUE(plan.complete(etc.num_machines()));

  int stolen_out = 0;
  int stolen_in = 0;
  for (const ShardStats& stat : service.shard_stats()) {
    stolen_out += stat.stolen_out;
    stolen_in += stat.stolen_in;
  }
  EXPECT_GT(stolen_out, 0) << "the dying queue never borrowed a neighbor";
  EXPECT_EQ(stolen_out, stolen_in);
  ASSERT_FALSE(service.service_activations().empty());
  EXPECT_EQ(service.service_activations().back().jobs_stolen, stolen_out);
  // Post-steal coherence: the job map names the shard whose machine runs
  // each job, and at least one job genuinely crossed the partition.
  int crossed = 0;
  for (JobId job = 0; job < etc.num_jobs(); ++job) {
    EXPECT_EQ(service.shard_of_machine(plan[job]), service.shard_of_job(job));
    if (service.shard_of_job(job) == 1) ++crossed;
  }
  EXPECT_GT(crossed, 0);
}

TEST(Service, DrainStealOffKeepsTheStrictPartition) {
  // The identical pile-up with stealing off (the default) must keep every
  // job inside its routed shard — the PR 2 partition contract, bitwise.
  const EtcMatrix etc = dying_queue_etc();
  ServiceConfig config = deterministic_config(2);
  config.routing = RoutingKind::kBestFit;
  config.imbalance_factor = 0.0;
  GridSchedulingService service(config);
  const Schedule plan = service.schedule_batch(etc);
  ASSERT_TRUE(plan.complete(etc.num_machines()));
  for (const ShardStats& stat : service.shard_stats()) {
    EXPECT_EQ(stat.stolen_out, 0);
    EXPECT_EQ(stat.stolen_in, 0);
  }
  for (JobId job = 0; job < etc.num_jobs(); ++job) {
    EXPECT_EQ(service.shard_of_job(job), 0);
  }
  ASSERT_FALSE(service.service_activations().empty());
  EXPECT_EQ(service.service_activations().back().jobs_stolen, 0);
}

TEST(Service, DrainStealHandsOffTheWarmStartCache) {
  // Activation 1 (balanced) fills both shard caches; activation 2 piles
  // everything onto shard 0 and steals spill onto shard 1. Every stolen
  // job must move cache homes: adopted by the thief, erased from the
  // victim — one cache per job, even across steals.
  ServiceConfig config = deterministic_config(2);
  config.routing = RoutingKind::kBestFit;
  config.imbalance_factor = 0.0;
  config.drain_steal = true;
  GridSchedulingService service(config);
  // Half the jobs are fastest on shard 0's machine 0, half on shard 1's
  // machine 1, so best-fit splits the batch evenly and both races store
  // elites (and the level completion profile leaves nothing to steal).
  EtcMatrix balanced(16, 4);
  for (JobId job = 0; job < balanced.num_jobs(); ++job) {
    const MachineId home = job < 8 ? 1 : 0;
    for (MachineId machine = 0; machine < balanced.num_machines();
         ++machine) {
      balanced.set(job, machine, machine == home ? 10.0 : 20.0);
    }
  }
  (void)service.schedule_batch(balanced);
  ASSERT_FALSE(service.shard_scheduler(1).cache().empty());

  const EtcMatrix skewed = dying_queue_etc();
  (void)service.schedule_batch(skewed);
  std::vector<int> stolen_jobs;
  for (JobId job = 0; job < skewed.num_jobs(); ++job) {
    if (service.shard_of_job(job) == 1) stolen_jobs.push_back(job);
  }
  ASSERT_FALSE(stolen_jobs.empty()) << "no steal to hand a cache entry off";
  const auto& victim_jobs = service.shard_scheduler(0).cache().stored_job_ids();
  const auto& thief_jobs = service.shard_scheduler(1).cache().stored_job_ids();
  for (const int job : stolen_jobs) {
    EXPECT_EQ(std::count(victim_jobs.begin(), victim_jobs.end(), job), 0)
        << "job " << job << " still cached on the victim shard";
    EXPECT_EQ(std::count(thief_jobs.begin(), thief_jobs.end(), job), 1)
        << "job " << job << " not adopted by the thief shard";
  }
}

TEST(Service, StealOnWithChurnAndClassesReplaysExactly) {
  // The record -> replay equality check under the full production mix:
  // machine churn (re-queues), job classes, class-aware routing and
  // stealing on. Every job executes exactly once per attempt chain, and
  // replaying the recorded arrival trace through a fresh service
  // reproduces the run record for record — stealing is deterministic.
  SimConfig sim_config;
  sim_config.horizon = 300.0;
  sim_config.arrival_rate = 0.5;
  sim_config.scheduler_period = 50.0;
  sim_config.num_machines = 8;
  sim_config.machine_mtbf = 150.0;
  sim_config.machine_mttr = 40.0;
  sim_config.num_job_classes = 2;
  sim_config.class_speedup = 3.0;
  sim_config.seed = 23;

  ServiceConfig config = deterministic_config(2);
  config.routing = RoutingKind::kClassBacklog;
  config.drain_steal = true;
  config.member_stop = StopCondition{.max_evaluations = 120};

  GridSimulator sim(sim_config);
  GridSchedulingService service(config);
  const ShardedSimReport report = run_sharded(sim, service);
  EXPECT_EQ(report.global.jobs_completed, report.global.jobs_arrived);
  EXPECT_GT(report.steals, 0) << "scenario never exercised the steal path";
  const std::vector<SimJobRecord> recorded = sim.job_records();

  SimConfig replay_config = sim_config;
  replay_config.workload =
      std::make_shared<TraceWorkloadSource>(sim.arrival_trace());
  GridSimulator replayed(replay_config);
  GridSchedulingService fresh(config);
  const ShardedSimReport replay = run_sharded(replayed, fresh);
  EXPECT_EQ(replay.global.jobs_completed, report.global.jobs_completed);
  EXPECT_EQ(replay.steals, report.steals);
  ASSERT_EQ(replayed.job_records().size(), recorded.size());
  for (std::size_t i = 0; i < recorded.size(); ++i) {
    const SimJobRecord& a = recorded[i];
    const SimJobRecord& b = replayed.job_records()[i];
    EXPECT_EQ(a.machine, b.machine) << "job " << i;
    EXPECT_EQ(a.attempts, b.attempts) << "job " << i;
    EXPECT_DOUBLE_EQ(a.start, b.start) << "job " << i;
    EXPECT_DOUBLE_EQ(a.finish, b.finish) << "job " << i;
  }
}

TEST(Service, DrainStealKeepsTheEntryWhenTheThiefCacheIsEmpty) {
  // The canonical donor shape: shard 1 idles, never races, so its cache
  // is empty and cannot adopt. The handoff must then leave the stolen
  // jobs' entries with the victim instead of erasing them from every
  // cache — at most one cache knows a job, never zero by accident.
  const EtcMatrix etc = dying_queue_etc();
  ServiceConfig config = deterministic_config(2);
  config.routing = RoutingKind::kBestFit;
  config.imbalance_factor = 0.0;
  config.drain_steal = true;
  GridSchedulingService service(config);
  (void)service.schedule_batch(etc);
  int stolen = 0;
  for (const ShardStats& stat : service.shard_stats()) stolen += stat.stolen_out;
  ASSERT_GT(stolen, 0);
  EXPECT_TRUE(service.shard_scheduler(1).cache().empty());
  const auto& victim_jobs = service.shard_scheduler(0).cache().stored_job_ids();
  for (JobId job = 0; job < etc.num_jobs(); ++job) {
    if (service.shard_of_job(job) != 1) continue;
    EXPECT_EQ(std::count(victim_jobs.begin(), victim_jobs.end(), job), 1)
        << "stolen job " << job << " vanished from every cache";
  }
}

TEST(Service, RejectsMismatchedMachineMips) {
  const EtcMatrix etc = small_instance(4, 4);
  GridSchedulingService service(deterministic_config(2));
  BatchContext context = BatchContext::identity(etc);
  context.machine_mips = {1000.0, 1000.0};  // 2 entries for 4 machines
  EXPECT_THROW((void)service.schedule_batch(etc, context),
               std::invalid_argument);
  // Zero, negative and NaN ratings would freeze the greedy split cut.
  context.machine_mips = {1000.0, 0.0, 1000.0, 1000.0};
  EXPECT_THROW((void)service.schedule_batch(etc, context),
               std::invalid_argument);
  context.machine_mips = {1000.0, 1000.0,
                          std::numeric_limits<double>::quiet_NaN(), 1000.0};
  EXPECT_THROW((void)service.schedule_batch(etc, context),
               std::invalid_argument);
  context.machine_mips = {1000.0, 1000.0, 1000.0, 1000.0};
  EXPECT_TRUE(
      service.schedule_batch(etc, context).complete(etc.num_machines()));
}

TEST(Service, ResizeCooldownSuppressesFlapping) {
  // A pool that collapses right after a split would, without hysteresis,
  // merge at the very next activation — the flap the cooldown exists to
  // stop. The merge must wait out the window, then fire.
  ServiceConfig config = deterministic_config(1);
  config.split_above_machines = 4;
  config.merge_below_machines = 2;
  config.max_shards = 2;
  config.resize_cooldown = 3;
  config.resize_band = 0.0;
  GridSchedulingService service(config);

  // Activation 1: 10 machines on one shard -> split.
  (void)service.schedule_batch(small_instance(20, 10));
  ASSERT_EQ(service.resize_events().size(), 1u);
  EXPECT_TRUE(service.resize_events().front().split);

  // Activations 2-4: the pool collapses to 3 machines (mean 1.5 < 2 would
  // merge immediately) — the cooldown holds the partition still.
  const EtcMatrix shrunk = small_instance(6, 3, 9);
  BatchContext context = BatchContext::identity(shrunk);
  context.machine_ids = {0, 1, 2};
  for (int activation = 2; activation <= 4; ++activation) {
    (void)service.schedule_batch(shrunk, context);
    EXPECT_EQ(service.resize_events().size(), 1u)
        << "resize fired inside the cooldown window (activation "
        << activation << ")";
  }

  // Activation 5: the window has passed and the shrunken pool is still
  // below the bound -> the merge finally fires.
  (void)service.schedule_batch(shrunk, context);
  ASSERT_EQ(service.resize_events().size(), 2u);
  EXPECT_FALSE(service.resize_events().back().split);
}

TEST(Service, ResizeBandWidensTheTriggers) {
  // split_above 4 with a 25% band means the census must exceed 5, not 4:
  // a pool hovering just past the raw bound stays put.
  ServiceConfig config = deterministic_config(1);
  config.split_above_machines = 4;
  config.resize_cooldown = 0;
  config.resize_band = 0.25;
  GridSchedulingService service(config);
  (void)service.schedule_batch(small_instance(10, 5));
  EXPECT_TRUE(service.resize_events().empty())
      << "split fired inside the threshold band";
  (void)service.schedule_batch(small_instance(12, 6, 5));
  ASSERT_EQ(service.resize_events().size(), 1u);
  EXPECT_TRUE(service.resize_events().front().split);
}

TEST(Service, SplitCutsBalanceMipsWhenReported) {
  // One 3000-MIPS machine against five smaller ones: an id-parity cut
  // would hand the child 2000 MIPS and leave 4000 behind; the weighted
  // cut isolates the heavyweight and gives the child the other five —
  // both halves at exactly 3000 MIPS.
  ServiceConfig config = deterministic_config(1);
  config.split_above_machines = 4;
  config.resize_band = 0.0;
  config.max_shards = 2;
  GridSchedulingService service(config);
  const EtcMatrix etc = small_instance(12, 6);
  BatchContext context = BatchContext::identity(etc);
  context.machine_mips = {3000.0, 500.0, 500.0, 500.0, 500.0, 1000.0};
  const Schedule plan = service.schedule_batch(etc, context);
  ASSERT_TRUE(plan.complete(etc.num_machines()));
  ASSERT_EQ(service.resize_events().size(), 1u);
  const ShardResizeEvent& split = service.resize_events().front();
  EXPECT_TRUE(split.split);
  EXPECT_EQ(split.machines_moved, 5);
  EXPECT_EQ(service.shard_of_machine(0), split.from_shard);
  for (int machine = 1; machine < 6; ++machine) {
    EXPECT_EQ(service.shard_of_machine(machine), split.to_shard)
        << "machine " << machine;
  }
}

TEST(Service, SplitCutKeepsEveryClassOnBothSides) {
  // One heavyweight class-0 machine against three class-1 machines: a
  // purely global MIPS balance would hand ALL of class 1 to the child and
  // leave the parent class-starved for it. The per-class greedy must put
  // class 1 on both sides (the singleton class 0 cannot split) while
  // still weighting the cut.
  ServiceConfig config = deterministic_config(1);
  config.split_above_machines = 3;
  config.resize_band = 0.0;
  config.max_shards = 2;
  GridSchedulingService service(config);
  const EtcMatrix etc = small_instance(10, 4);
  BatchContext context = BatchContext::identity(etc);
  context.machine_ids = {0, 1, 3, 5};  // class = id % 2: one 0, three 1s
  context.num_job_classes = 2;
  context.class_speedup = 3.0;
  context.machine_mips = {2000.0, 700.0, 700.0, 700.0};
  const Schedule plan = service.schedule_batch(etc, context);
  ASSERT_TRUE(plan.complete(etc.num_machines()));
  ASSERT_EQ(service.resize_events().size(), 1u);
  const ShardResizeEvent& split = service.resize_events().front();
  int parent_class1 = 0;
  int child_class1 = 0;
  for (const int machine : {1, 3, 5}) {
    (service.shard_of_machine(machine) == split.to_shard ? child_class1
                                                         : parent_class1) += 1;
  }
  EXPECT_GT(parent_class1, 0) << "parent lost its whole class-1 slice";
  EXPECT_GT(child_class1, 0) << "child received no class-1 machine";
}

TEST(Service, RejectsBadHysteresis) {
  ServiceConfig config = deterministic_config(2);
  config.resize_cooldown = -1;
  EXPECT_THROW(GridSchedulingService{config}, std::invalid_argument);
  config = deterministic_config(2);
  config.resize_band = 1.0;
  EXPECT_THROW(GridSchedulingService{config}, std::invalid_argument);
  config = deterministic_config(2);
  config.resize_band = -0.1;
  EXPECT_THROW(GridSchedulingService{config}, std::invalid_argument);
  config = deterministic_config(2);
  config.resize_band = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(GridSchedulingService{config}, std::invalid_argument);
}

// ---------------------------------------------------------------- driver --

TEST(ShardedDriver, RunsTheDynamicGridAndSplitsMetricsPerShard) {
  SimConfig sim_config;
  sim_config.horizon = 300.0;
  sim_config.arrival_rate = 0.4;
  sim_config.scheduler_period = 50.0;
  sim_config.num_machines = 6;
  sim_config.machine_mtbf = 150.0;  // churn exercises shard-set shrinkage
  sim_config.machine_mttr = 40.0;
  sim_config.seed = 17;
  GridSimulator sim(sim_config);

  ServiceConfig config = deterministic_config(3);
  config.member_stop = StopCondition{.max_evaluations = 120};
  GridSchedulingService service(config);
  const ShardedSimReport report = run_sharded(sim, service);

  EXPECT_EQ(report.global.jobs_completed, report.global.jobs_arrived);
  ASSERT_EQ(report.per_shard.size(), 3u);
  int completed = 0;
  int activations = 0;
  for (const SimMetrics& shard : report.per_shard) {
    completed += shard.jobs_completed;
    activations += shard.activations;
    // Under churn, work aborted by a failure still counts as busy time
    // (matching the global utilization metric), so the ratio may exceed 1;
    // it must stay non-negative and sane.
    EXPECT_GE(shard.utilization, 0.0);
    EXPECT_LT(shard.utilization, 10.0);
    if (shard.jobs_completed > 0) {
      EXPECT_GT(shard.mean_flowtime, 0.0);
      EXPECT_LE(shard.makespan, report.global.makespan + 1e-9);
    }
  }
  EXPECT_EQ(completed, report.global.jobs_completed);
  EXPECT_GT(activations, 0);
}

TEST(ShardedDriver, StreamingReportMatchesTheMaterializedReport) {
  // The driver's observer-based fold against the classic end-of-run fold:
  // the same churny QoS trace through SimConfig::workload and through
  // SimConfig::stream must yield the same sharded report, bit for bit
  // (static partition, so shard attribution cannot drift either).
  SimConfig sim_config;
  sim_config.horizon = 300.0;
  sim_config.arrival_rate = 0.4;
  sim_config.scheduler_period = 50.0;
  sim_config.num_machines = 6;
  sim_config.machine_mtbf = 150.0;
  sim_config.machine_mttr = 40.0;
  sim_config.num_job_classes = 2;
  sim_config.seed = 17;

  Rng rng(sim_config.seed);
  Rng arrival_rng = rng.split();
  Rng workload_rng = rng.split();
  PoissonWorkload poisson(
      sim_config.arrival_rate,
      LogNormalSize{sim_config.workload_log_mean,
                    sim_config.workload_log_sigma});
  std::vector<TraceJob> jobs =
      poisson.generate(sim_config.horizon, arrival_rng, workload_rng);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    if (i % 3 == 0) jobs[i].deadline = jobs[i].arrival + 150.0;
  }

  SimConfig materialized_config = sim_config;
  materialized_config.workload = std::make_shared<TraceWorkloadSource>(jobs);
  GridSimulator materialized(materialized_config);
  GridSchedulingService service_a(deterministic_config(2));
  const ShardedSimReport a = run_sharded(materialized, service_a);
  ASSERT_GT(a.global.jobs_requeued, 0) << "churn never fired; weak test";
  ASSERT_GT(a.global_slo.deadline_jobs, 0);

  SimConfig streaming_config = sim_config;
  streaming_config.stream = std::make_shared<MaterializedStream>(jobs);
  GridSimulator streamed(streaming_config);
  GridSchedulingService service_b(deterministic_config(2));
  const ShardedSimReport b = run_sharded(streamed, service_b);

  const auto expect_same_view = [](const SimMetrics& lhs,
                                   const SimMetrics& rhs) {
    EXPECT_EQ(lhs.jobs_arrived, rhs.jobs_arrived);
    EXPECT_EQ(lhs.jobs_completed, rhs.jobs_completed);
    EXPECT_EQ(lhs.jobs_requeued, rhs.jobs_requeued);
    EXPECT_EQ(lhs.mean_flowtime, rhs.mean_flowtime);
    EXPECT_EQ(lhs.mean_wait, rhs.mean_wait);
    EXPECT_EQ(lhs.max_flowtime, rhs.max_flowtime);
    EXPECT_EQ(lhs.makespan, rhs.makespan);
    EXPECT_EQ(lhs.utilization, rhs.utilization);
  };
  expect_same_view(a.global, b.global);
  ASSERT_EQ(b.per_shard.size(), a.per_shard.size());
  for (std::size_t shard = 0; shard < a.per_shard.size(); ++shard) {
    expect_same_view(a.per_shard[shard], b.per_shard[shard]);
  }
  ASSERT_EQ(b.per_class.size(), a.per_class.size());
  for (std::size_t job_class = 0; job_class < a.per_class.size();
       ++job_class) {
    expect_same_view(a.per_class[job_class], b.per_class[job_class]);
  }
  EXPECT_EQ(b.global_slo.deadline_jobs, a.global_slo.deadline_jobs);
  EXPECT_EQ(b.global_slo.missed, a.global_slo.missed);
  EXPECT_EQ(b.global_slo.tardiness_p50, a.global_slo.tardiness_p50);
  EXPECT_EQ(b.global_slo.tardiness_p99, a.global_slo.tardiness_p99);
  ASSERT_EQ(b.per_class_slo.size(), a.per_class_slo.size());
  for (std::size_t job_class = 0; job_class < a.per_class_slo.size();
       ++job_class) {
    EXPECT_EQ(b.per_class_slo[job_class].deadline_jobs,
              a.per_class_slo[job_class].deadline_jobs);
    EXPECT_EQ(b.per_class_slo[job_class].missed,
              a.per_class_slo[job_class].missed);
  }
  EXPECT_EQ(b.migrations, a.migrations);
  EXPECT_EQ(b.steals, a.steals);
  EXPECT_EQ(b.workload, "materialized");
  // Streaming keeps only the in-flight window resident.
  EXPECT_LT(b.global.peak_resident_jobs, b.global.jobs_arrived);
}

TEST(ShardedDriver, MachineBusyTimesAreExposedBySimulator) {
  SimConfig sim_config;
  sim_config.horizon = 200.0;
  sim_config.arrival_rate = 0.3;
  sim_config.num_machines = 4;
  sim_config.seed = 5;
  GridSimulator sim(sim_config);
  GridSchedulingService service(deterministic_config(2));
  (void)sim.run(service);
  ASSERT_EQ(sim.machine_busy().size(), 4u);
  ASSERT_EQ(sim.machine_mips().size(), 4u);
  double busy = 0.0;
  for (const double b : sim.machine_busy()) busy += b;
  EXPECT_GT(busy, 0.0);
}

}  // namespace
}  // namespace gridsched
