#include "service/grid_scheduling_service.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "etc/instance.h"
#include "service/sharded_driver.h"
#include "sim/grid_simulator.h"

namespace gridsched {
namespace {

EtcMatrix small_instance(int jobs, int machines, std::uint64_t seed = 3) {
  InstanceSpec spec;
  spec.num_jobs = jobs;
  spec.num_machines = machines;
  spec.seed = seed;
  return generate_instance(spec);
}

/// Deterministic service: generous wall budget, hard evaluation bound.
ServiceConfig deterministic_config(int shards) {
  ServiceConfig config;
  config.num_shards = shards;
  config.total_budget_ms = 60'000.0;
  config.threads = 2;
  config.member_stop = StopCondition{.max_evaluations = 150};
  config.seed = 11;
  return config;
}

ShardSnapshot snapshot(int shard, std::vector<int> columns, double ready_sum,
                       double routed_work = 0.0) {
  ShardSnapshot s;
  s.shard = shard;
  s.columns = std::move(columns);
  s.ready_sum = ready_sum;
  s.routed_work = routed_work;
  return s;
}

// ---------------------------------------------------------------- router --

TEST(RoutingPolicy, RoundRobinCyclesOverAvailableShards) {
  RoundRobinRouting router;
  const EtcMatrix etc(4, 3);
  const std::vector<ShardSnapshot> shards = {
      snapshot(0, {0}, 0.0), snapshot(2, {1, 2}, 0.0)};
  EXPECT_EQ(router.route(0, etc, shards), 0u);
  EXPECT_EQ(router.route(1, etc, shards), 1u);
  EXPECT_EQ(router.route(2, etc, shards), 0u);
  EXPECT_EQ(router.route(3, etc, shards), 1u);
}

TEST(RoutingPolicy, LeastBacklogIsDeterministicGivenFixedBacklogs) {
  LeastBacklogRouting router;
  const EtcMatrix etc(1, 4);
  const std::vector<ShardSnapshot> shards = {
      snapshot(0, {0}, 30.0), snapshot(1, {1}, 10.0), snapshot(2, {2}, 20.0)};
  // Smallest ready-time sum wins; repeated calls with the same snapshots
  // give the same answer (the policy is stateless).
  EXPECT_EQ(router.route(0, etc, shards), 1u);
  EXPECT_EQ(router.route(0, etc, shards), 1u);
}

TEST(RoutingPolicy, LeastBacklogCountsWorkRoutedThisActivation) {
  LeastBacklogRouting router;
  const EtcMatrix etc(1, 2);
  // Shard 1 has the lower ready sum but already absorbed 15s of routed
  // work this activation, so shard 0 is now the lighter queue.
  const std::vector<ShardSnapshot> shards = {
      snapshot(0, {0}, 12.0, 0.0), snapshot(1, {1}, 5.0, 15.0)};
  EXPECT_EQ(router.route(0, etc, shards), 0u);
}

TEST(RoutingPolicy, LeastBacklogTieBreaksTowardLowerIndex) {
  LeastBacklogRouting router;
  const EtcMatrix etc(1, 2);
  const std::vector<ShardSnapshot> shards = {
      snapshot(3, {0}, 7.0), snapshot(5, {1}, 7.0)};
  EXPECT_EQ(router.route(0, etc, shards), 0u);
}

TEST(RoutingPolicy, BestFitPicksTheShardWithTheLowestEtc) {
  BestFitRouting router;
  EtcMatrix etc(2, 4);
  etc(0, 0) = 9.0;
  etc(0, 1) = 8.0;
  etc(0, 2) = 1.0;  // job 0 is fastest on column 2 (shard 1)
  etc(0, 3) = 7.0;
  etc(1, 0) = 2.0;  // job 1 is fastest on column 0 (shard 0)
  etc(1, 1) = 6.0;
  etc(1, 2) = 5.0;
  etc(1, 3) = 4.0;
  const std::vector<ShardSnapshot> shards = {
      snapshot(0, {0, 1}, 0.0), snapshot(1, {2, 3}, 0.0)};
  EXPECT_EQ(router.route(0, etc, shards), 1u);
  EXPECT_EQ(router.route(1, etc, shards), 0u);
}

TEST(RoutingPolicy, ShardMctBalancesAffinityAgainstBacklog) {
  ShardMctRouting router;
  EtcMatrix etc(1, 2);
  etc(0, 0) = 2.0;   // shard 0 is faster for the job...
  etc(0, 1) = 10.0;  // ...but shard 1 is idle
  // Light backlog: affinity wins (5/1 + 2 = 7 < 0 + 10).
  const std::vector<ShardSnapshot> light = {
      snapshot(0, {0}, 5.0), snapshot(1, {1}, 0.0)};
  EXPECT_EQ(router.route(0, etc, light), 0u);
  // Deep backlog on the fast shard: the idle shard's completion wins
  // (20/1 + 2 = 22 > 0 + 10).
  const std::vector<ShardSnapshot> deep = {
      snapshot(0, {0}, 20.0), snapshot(1, {1}, 0.0)};
  EXPECT_EQ(router.route(0, etc, deep), 1u);
}

TEST(RoutingPolicy, FactoryAndNamesCoverEveryKind) {
  for (const RoutingKind kind : all_routing_kinds()) {
    const auto policy = make_routing_policy(kind);
    EXPECT_EQ(policy->name(), routing_name(kind));
  }
}

TEST(RoutingPolicy, ShardWorkEstimateIsTheBestEtcInTheShard) {
  EtcMatrix etc(1, 3);
  etc(0, 0) = 2.0;
  etc(0, 1) = 4.0;
  etc(0, 2) = 100.0;
  EXPECT_DOUBLE_EQ(shard_work_estimate(etc, 0, snapshot(0, {0, 1}, 0.0)),
                   2.0);
  EXPECT_DOUBLE_EQ(shard_work_estimate(etc, 0, snapshot(1, {2}, 0.0)), 100.0);
}

TEST(RoutingPolicy, ShardWorkEstimateNormalizesClassStarvedShards) {
  EtcMatrix etc(1, 2);
  etc(0, 0) = 30.0;  // off-class machine: 3x the matched cost
  etc(0, 1) = 10.0;
  ShardSnapshot starved = snapshot(0, {0}, 0.0);
  starved.class_machines = {0, 1};  // no machine of class 0 here
  starved.class_speedup = 3.0;
  ShardSnapshot matched = snapshot(1, {1}, 0.0);
  matched.class_machines = {1, 0};
  matched.class_speedup = 3.0;
  // A class-0 job books matched-machine seconds on BOTH shards: the
  // starved shard's off-class minimum is divided by the speedup, so
  // least-backlog compares like with like instead of reading the starved
  // shard as 3x busier per routed job.
  EXPECT_DOUBLE_EQ(shard_work_estimate(etc, RoutedJob(0, 0), starved), 10.0);
  EXPECT_DOUBLE_EQ(shard_work_estimate(etc, RoutedJob(0, 0), matched), 10.0);
  // Classless jobs and classless grids keep the raw minimum.
  EXPECT_DOUBLE_EQ(shard_work_estimate(etc, RoutedJob(0, -1), starved), 30.0);
  EXPECT_DOUBLE_EQ(shard_work_estimate(etc, 0, snapshot(0, {0}, 0.0)), 30.0);
}

TEST(RoutingPolicy, ClassBacklogPrefersTheShardWithTheClassQueueFree) {
  ClassBacklogRouting router;
  EtcMatrix etc(1, 2);
  etc(0, 0) = 10.0;  // class-0 job runs equally fast on both shards...
  etc(0, 1) = 10.0;
  ShardSnapshot busy_for_class = snapshot(0, {0}, 0.0);
  busy_for_class.class_machines = {1, 0};
  busy_for_class.class_routed_work = {50.0, 0.0};  // class 0 queue is deep
  busy_for_class.routed_work = 50.0;
  ShardSnapshot free_for_class = snapshot(1, {1}, 40.0);
  free_for_class.class_machines = {1, 0};
  free_for_class.class_routed_work = {0.0, 0.0};
  // Total backlogs are comparable (50 vs 40) but shard 0's class-0 lane is
  // saturated; the class router must see past the totals.
  EXPECT_EQ(router.route(RoutedJob(0, 0), etc,
                         std::vector<ShardSnapshot>{busy_for_class,
                                                    free_for_class}),
            1u);
  // A classless job degrades to least-backlog and picks the lighter total.
  EXPECT_EQ(router.route(RoutedJob(0, -1), etc,
                         std::vector<ShardSnapshot>{busy_for_class,
                                                    free_for_class}),
            1u);
}

TEST(RoutingPolicy, ClassBacklogAvoidsClassStarvedShardsWhenCostly) {
  ClassBacklogRouting router;
  EtcMatrix etc(1, 2);
  etc(0, 0) = 30.0;  // shard 0 lacks the class: 3x slower
  etc(0, 1) = 10.0;
  ShardSnapshot starved = snapshot(0, {0}, 0.0);
  starved.class_machines = {0, 1};
  starved.class_routed_work = {0.0, 0.0};
  starved.class_speedup = 3.0;
  ShardSnapshot matched = snapshot(1, {1}, 0.0);
  matched.class_machines = {1, 0};
  matched.class_routed_work = {0.0, 0.0};
  matched.class_speedup = 3.0;
  EXPECT_EQ(router.route(RoutedJob(0, 0), etc,
                         std::vector<ShardSnapshot>{starved, matched}),
            1u);
}

TEST(RoutingPolicy, RoutingKindRoundTripsThroughItsName) {
  for (const RoutingKind kind : all_routing_kinds()) {
    EXPECT_EQ(routing_kind_from_name(routing_name(kind)), kind);
  }
  EXPECT_THROW((void)routing_kind_from_name("no-such-policy"),
               std::invalid_argument);
}

// --------------------------------------------------------------- service --

TEST(Service, RejectsBadConfigs) {
  ServiceConfig config = deterministic_config(2);
  config.num_shards = 0;
  EXPECT_THROW(GridSchedulingService{config}, std::invalid_argument);
  config = deterministic_config(2);
  config.total_budget_ms = 0.0;
  EXPECT_THROW(GridSchedulingService{config}, std::invalid_argument);
  config = deterministic_config(2);
  config.imbalance_factor = 0.5;  // must be 0 (off) or >= 1
  EXPECT_THROW(GridSchedulingService{config}, std::invalid_argument);
}

TEST(Service, SchedulesEveryJobOntoItsOwnShard) {
  const EtcMatrix etc = small_instance(24, 8);
  GridSchedulingService service(deterministic_config(2));
  const Schedule plan = service.schedule_batch(etc);
  ASSERT_TRUE(plan.complete(etc.num_machines()));
  // The cardinal shard invariant: a job routed to shard s runs on one of
  // shard s's machines (identity context: machine id = column).
  for (JobId job = 0; job < etc.num_jobs(); ++job) {
    const int shard = service.shard_of_job(job);
    ASSERT_GE(shard, 0);
    EXPECT_EQ(service.shard_of_machine(plan[job]), shard)
        << "job " << job << " escaped its shard";
  }
}

TEST(Service, RoundRobinAssignmentIsDeterministic) {
  const EtcMatrix etc = small_instance(8, 4);
  ServiceConfig config = deterministic_config(2);
  config.routing = RoutingKind::kRoundRobin;
  config.imbalance_factor = 0.0;  // keep the routing decision untouched
  GridSchedulingService service(config);
  (void)service.schedule_batch(etc);
  // Machines 0..3 map to shards {0, 1, 0, 1}; round-robin alternates the
  // two available shards in arrival order.
  for (JobId job = 0; job < etc.num_jobs(); ++job) {
    EXPECT_EQ(service.shard_of_job(job), job % 2);
  }
}

TEST(Service, NeverLosesToConstructiveHeuristics) {
  const EtcMatrix etc = small_instance(40, 8);
  ServiceConfig config = deterministic_config(4);
  GridSchedulingService service(config);
  const Schedule plan = service.schedule_batch(etc);
  ASSERT_TRUE(plan.complete(etc.num_machines()));
  // Sharding restricts each job to its shard's machines, so the service
  // cannot be compared against the unrestricted Min-Min directly; what it
  // must never lose is each shard's own safety net. The per-shard
  // portfolios assert exactly that internally; here we check the plan is
  // evaluable and finite end to end.
  const Individual planned = make_individual(plan, etc, config.weights);
  EXPECT_GT(planned.fitness, 0.0);
  EXPECT_TRUE(std::isfinite(planned.fitness));
}

TEST(Service, BudgetIsSplitAcrossShardsWithWork) {
  const EtcMatrix etc = small_instance(24, 8);
  ServiceConfig config = deterministic_config(2);
  config.total_budget_ms = 1'000.0;
  GridSchedulingService service(config);
  (void)service.schedule_batch(etc);
  ASSERT_EQ(service.shard_activations().size(), 2u);
  for (const ShardActivationRecord& record : service.shard_activations()) {
    EXPECT_DOUBLE_EQ(record.budget_ms, 500.0);
  }
}

TEST(Service, RebalancingShedsTheHotShard) {
  // Jobs are uniformly fastest on machine 0, so best-fit piles the whole
  // batch onto shard 0 while shard 1 idles — exactly the starvation case
  // rebalancing exists for.
  EtcMatrix etc(12, 4);
  for (JobId job = 0; job < etc.num_jobs(); ++job) {
    for (MachineId machine = 0; machine < etc.num_machines(); ++machine) {
      etc(job, machine) = machine == 0 ? 10.0 : 40.0;
    }
  }
  ServiceConfig config = deterministic_config(2);
  config.routing = RoutingKind::kBestFit;
  config.imbalance_factor = 1.5;
  GridSchedulingService service(config);
  const Schedule plan = service.schedule_batch(etc);
  ASSERT_TRUE(plan.complete(etc.num_machines()));

  int migrated_out = 0;
  int migrated_in = 0;
  std::vector<int> jobs_per_shard(2, 0);
  for (const ShardStats& stat : service.shard_stats()) {
    migrated_out += stat.migrated_out;
    migrated_in += stat.migrated_in;
    jobs_per_shard[static_cast<std::size_t>(stat.shard)] +=
        stat.jobs_scheduled;
  }
  EXPECT_GT(migrated_out, 0) << "hot shard never shed a job";
  EXPECT_EQ(migrated_out, migrated_in);
  EXPECT_GT(jobs_per_shard[1], 0) << "light shard stayed starved";

  // Identity through migration: every job is still scheduled exactly once,
  // on a machine of the shard that finally owns it.
  for (JobId job = 0; job < etc.num_jobs(); ++job) {
    EXPECT_EQ(service.shard_of_machine(plan[job]), service.shard_of_job(job));
  }
}

TEST(Service, DisabledRebalancingNeverMigrates) {
  EtcMatrix etc(12, 4);
  for (JobId job = 0; job < etc.num_jobs(); ++job) {
    for (MachineId machine = 0; machine < etc.num_machines(); ++machine) {
      etc(job, machine) = machine == 0 ? 10.0 : 40.0;
    }
  }
  ServiceConfig config = deterministic_config(2);
  config.routing = RoutingKind::kBestFit;
  config.imbalance_factor = 0.0;
  GridSchedulingService service(config);
  (void)service.schedule_batch(etc);
  for (const ShardStats& stat : service.shard_stats()) {
    EXPECT_EQ(stat.migrated_out, 0);
    EXPECT_EQ(stat.migrated_in, 0);
  }
}

TEST(Service, WarmStartCachesAreShardIsolated) {
  const EtcMatrix etc = small_instance(30, 6);
  GridSchedulingService service(deterministic_config(2));
  (void)service.schedule_batch(etc);

  std::set<int> seen_jobs;
  for (int shard = 0; shard < service.num_shards(); ++shard) {
    const PopulationCache& cache = service.shard_scheduler(shard).cache();
    ASSERT_FALSE(cache.empty()) << "shard " << shard << " cache never fed";
    for (const int machine : cache.stored_machine_ids()) {
      EXPECT_EQ(service.shard_of_machine(machine), shard)
          << "shard " << shard << " cached a foreign machine";
    }
    for (const int job : cache.stored_job_ids()) {
      EXPECT_EQ(service.shard_of_job(job), shard);
      EXPECT_TRUE(seen_jobs.insert(job).second)
          << "job " << job << " leaked into two shard caches";
    }
  }

  // A second activation consumes the warm caches without cross-talk and
  // still produces a complete schedule.
  const Schedule plan = service.schedule_batch(etc);
  EXPECT_TRUE(plan.complete(etc.num_machines()));
}

TEST(Service, AllJobsOnOneShardLosesAndDuplicatesNothing) {
  // Best-fit with rebalancing off funnels the whole batch onto shard 0
  // (machine 0 dominates); the starved shard must simply sit out, with
  // every job scheduled exactly once on the hot shard.
  EtcMatrix etc(15, 4);
  for (JobId job = 0; job < etc.num_jobs(); ++job) {
    for (MachineId machine = 0; machine < etc.num_machines(); ++machine) {
      etc(job, machine) = machine == 0 ? 5.0 : 50.0;
    }
  }
  ServiceConfig config = deterministic_config(2);
  config.routing = RoutingKind::kBestFit;
  config.imbalance_factor = 0.0;
  GridSchedulingService service(config);
  const Schedule plan = service.schedule_batch(etc);
  ASSERT_TRUE(plan.complete(etc.num_machines()));
  int scheduled = 0;
  for (const ShardStats& stat : service.shard_stats()) {
    scheduled += stat.jobs_scheduled;
    if (stat.shard == 1) {
      EXPECT_EQ(stat.jobs_scheduled, 0);
    }
  }
  EXPECT_EQ(scheduled, etc.num_jobs());
  for (JobId job = 0; job < etc.num_jobs(); ++job) {
    EXPECT_EQ(service.shard_of_job(job), 0);
    EXPECT_EQ(service.shard_of_machine(plan[job]), 0);
  }
}

TEST(Service, ShardWithNoMachinesNeverReceivesAJob) {
  // 4 shards over 3 machines: shard 3 owns no machine at all, ever — the
  // degenerate partition a mis-sized deployment produces. The router must
  // skip it and still place the full batch.
  const EtcMatrix etc = small_instance(18, 3);
  for (const RoutingKind routing : all_routing_kinds()) {
    ServiceConfig config = deterministic_config(4);
    config.routing = routing;
    GridSchedulingService service(config);
    const Schedule plan = service.schedule_batch(etc);
    ASSERT_TRUE(plan.complete(etc.num_machines()))
        << routing_name(routing);
    int scheduled = 0;
    for (const ShardStats& stat : service.shard_stats()) {
      scheduled += stat.jobs_scheduled;
      if (stat.shard == 3) {
        EXPECT_EQ(stat.jobs_scheduled, 0) << routing_name(routing);
        EXPECT_EQ(stat.activations, 0) << routing_name(routing);
      }
    }
    EXPECT_EQ(scheduled, etc.num_jobs()) << routing_name(routing);
    for (JobId job = 0; job < etc.num_jobs(); ++job) {
      EXPECT_EQ(service.shard_of_machine(plan[job]),
                service.shard_of_job(job))
          << routing_name(routing);
    }
  }
}

TEST(Service, RebalancingWithAnEmptyHotShardIsANoOp) {
  // Shard 0 is hottest by backlog (huge ready times) yet holds zero queued
  // jobs this activation — there is nothing to shed, and the rebalancer
  // must neither crash nor conjure migrations from the empty queue.
  EtcMatrix etc(10, 4);
  for (JobId job = 0; job < etc.num_jobs(); ++job) {
    for (MachineId machine = 0; machine < etc.num_machines(); ++machine) {
      // Shard 1's machines (1, 3) dominate for every job.
      etc(job, machine) = machine % 2 == 1 ? 4.0 : 40.0;
    }
  }
  etc.set_ready_time(0, 500.0);  // shard 0 drowning in old backlog
  etc.set_ready_time(2, 500.0);
  ServiceConfig config = deterministic_config(2);
  config.routing = RoutingKind::kBestFit;
  config.imbalance_factor = 1.5;
  GridSchedulingService service(config);
  const Schedule plan = service.schedule_batch(etc);
  ASSERT_TRUE(plan.complete(etc.num_machines()));
  int scheduled = 0;
  for (const ShardStats& stat : service.shard_stats()) {
    scheduled += stat.jobs_scheduled;
    if (stat.shard == 0) {
      EXPECT_EQ(stat.migrated_out, 0) << "shed from an empty queue";
      EXPECT_EQ(stat.jobs_scheduled, 0);
    }
  }
  EXPECT_EQ(scheduled, etc.num_jobs());
  for (JobId job = 0; job < etc.num_jobs(); ++job) {
    EXPECT_EQ(service.shard_of_job(job), 1);
  }
}

TEST(Service, SingleShardDegeneratesToOnePortfolio) {
  const EtcMatrix etc = small_instance(16, 4);
  GridSchedulingService service(deterministic_config(1));
  const Schedule plan = service.schedule_batch(etc);
  ASSERT_TRUE(plan.complete(etc.num_machines()));
  ASSERT_EQ(service.shard_activations().size(), 1u);
  EXPECT_EQ(service.shard_activations()[0].jobs, etc.num_jobs());
  EXPECT_DOUBLE_EQ(service.shard_activations()[0].budget_ms,
                   service.config().total_budget_ms);
}

TEST(Service, ConcurrentAndSequentialActivationAgree) {
  // With evaluation-bounded members the committed schedules are
  // deterministic, so overlapping the shard races must not change them —
  // the no-job-lost-or-duplicated contract of concurrent activation.
  const EtcMatrix etc = small_instance(36, 8);
  ServiceConfig sequential = deterministic_config(4);
  sequential.concurrent_shards = false;
  ServiceConfig concurrent = deterministic_config(4);
  concurrent.concurrent_shards = true;
  GridSchedulingService service_seq(sequential);
  GridSchedulingService service_conc(concurrent);
  for (int round = 0; round < 3; ++round) {
    const Schedule plan_seq = service_seq.schedule_batch(etc);
    const Schedule plan_conc = service_conc.schedule_batch(etc);
    EXPECT_EQ(plan_seq, plan_conc) << "round " << round;
  }
  ASSERT_FALSE(service_conc.service_activations().empty());
  for (const ServiceActivationRecord& record :
       service_conc.service_activations()) {
    EXPECT_TRUE(record.concurrent);
    EXPECT_GT(record.shards_raced, 1);
  }
  for (const ServiceActivationRecord& record :
       service_seq.service_activations()) {
    EXPECT_FALSE(record.concurrent);
  }
}

TEST(Service, ClassBacklogRoutingKeepsClassedJobsOnMatchedShards) {
  // 2 shards x 2 classes with the interleaved conventions: shard 0 owns
  // machines {0, 2} — but classes also alternate, so make the partition
  // class-pure by hand: machines 0,2 (class 0) vs 1,3 (class 1) happen to
  // be exactly the static id%2 shards. Matched pairs run 3x faster.
  EtcMatrix etc(8, 4);
  BatchContext context = BatchContext::identity(etc);
  context.num_job_classes = 2;
  context.class_speedup = 3.0;
  for (JobId job = 0; job < etc.num_jobs(); ++job) {
    const int job_class = job % 2;
    context.job_classes.push_back(job_class);
    for (MachineId machine = 0; machine < etc.num_machines(); ++machine) {
      const bool matched = machine % 2 == job_class;
      etc(job, machine) = matched ? 10.0 : 30.0;
    }
  }
  ServiceConfig config = deterministic_config(2);
  config.routing = RoutingKind::kClassBacklog;
  config.imbalance_factor = 0.0;  // keep the routing decision untouched
  GridSchedulingService service(config);
  const Schedule plan = service.schedule_batch(etc, context);
  ASSERT_TRUE(plan.complete(etc.num_machines()));
  for (JobId job = 0; job < etc.num_jobs(); ++job) {
    // Machine m has class m % 2; shard s == class s here.
    EXPECT_EQ(service.shard_of_job(job), job % 2)
        << "job " << job << " routed off its class shard";
    EXPECT_EQ(plan[job] % 2, job % 2) << "job " << job << " ran off-class";
  }
}

TEST(Service, RejectsIncoherentJobClasses) {
  const EtcMatrix etc = small_instance(4, 4);
  GridSchedulingService service(deterministic_config(2));
  BatchContext context = BatchContext::identity(etc);
  context.num_job_classes = 2;
  context.class_speedup = 3.0;
  context.job_classes = {0, 1, 5, 0};  // 5 is out of range
  EXPECT_THROW((void)service.schedule_batch(etc, context),
               std::invalid_argument);
  context.job_classes = {0, 1};  // wrong length
  EXPECT_THROW((void)service.schedule_batch(etc, context),
               std::invalid_argument);
  context.job_classes = {0, 1, -1, 0};  // -1 = unclassed is legal
  EXPECT_TRUE(
      service.schedule_batch(etc, context).complete(etc.num_machines()));
}

TEST(Service, SplitGrowsThePartitionWhenThePoolOutgrowsTheBound) {
  ServiceConfig config = deterministic_config(2);
  config.split_above_machines = 4;
  config.max_shards = 4;
  GridSchedulingService service(config);
  const EtcMatrix etc = small_instance(32, 16);
  const Schedule plan = service.schedule_batch(etc);
  ASSERT_TRUE(plan.complete(etc.num_machines()));
  // 16 machines / 2 shards = 8 > 4 -> split; 16/3 = 5.3 > 4 -> split;
  // 16/4 = 4, not above the bound -> stop at the cap.
  EXPECT_EQ(service.num_shards(), 4);
  ASSERT_EQ(service.resize_events().size(), 2u);
  for (const ShardResizeEvent& event : service.resize_events()) {
    EXPECT_TRUE(event.split);
    EXPECT_GT(event.machines_moved, 0);
    EXPECT_EQ(event.alive_machines, 16);
  }
  // No job lost or duplicated across the resized partition.
  int scheduled = 0;
  for (const ShardStats& stat : service.shard_stats()) {
    scheduled += stat.jobs_scheduled;
  }
  EXPECT_EQ(scheduled, etc.num_jobs());
  for (JobId job = 0; job < etc.num_jobs(); ++job) {
    EXPECT_EQ(service.shard_of_machine(plan[job]), service.shard_of_job(job));
  }
}

TEST(Service, SplitMovesAliveCapacityNotJustCorpses) {
  ServiceConfig config = deterministic_config(1);
  config.split_above_machines = 4;
  config.max_shards = 2;
  GridSchedulingService service(config);
  // Batch 1: machines 0..3 — exactly at the bound, no split; the
  // partition map learns them.
  const EtcMatrix first = small_instance(8, 4);
  (void)service.schedule_batch(first);
  ASSERT_TRUE(service.resize_events().empty());
  // Batch 2: machines 1 and 3 are dead, 4/6/8 joined — 5 alive machines
  // on one shard trips the split. A parity cut over the MIXED owned list
  // {0,1,2,3,4,6,8} would hand the child {1,3,6}: two corpses and one
  // machine. The cut must run over the alive list, so the child inherits
  // real capacity.
  const EtcMatrix second = small_instance(10, 5, 7);
  BatchContext context = BatchContext::identity(second);
  context.machine_ids = {0, 2, 4, 6, 8};
  const Schedule plan = service.schedule_batch(second, context);
  ASSERT_TRUE(plan.complete(second.num_machines()));
  ASSERT_EQ(service.resize_events().size(), 1u);
  const ShardResizeEvent& split = service.resize_events().front();
  EXPECT_TRUE(split.split);
  int child_alive = 0;
  for (const int machine : context.machine_ids) {
    if (service.shard_of_machine(machine) == split.to_shard) ++child_alive;
  }
  EXPECT_EQ(child_alive, 2);
  EXPECT_EQ(service.shard_of_machine(2), split.to_shard);
  EXPECT_EQ(service.shard_of_machine(6), split.to_shard);
}

TEST(Service, MergeFoldsTheLightShardsWhenMachinesVanish) {
  ServiceConfig config = deterministic_config(4);
  config.merge_below_machines = 3;
  GridSchedulingService service(config);
  // Only 4 machines for 4 shards: mean 1 < 3 -> merge until the mean
  // clears the bound (4/2 = 2 < 3, 4/1 = 4 -> one shard absorbs all).
  const EtcMatrix etc = small_instance(12, 4);
  const Schedule plan = service.schedule_batch(etc);
  ASSERT_TRUE(plan.complete(etc.num_machines()));
  ASSERT_EQ(service.resize_events().size(), 3u);
  for (const ShardResizeEvent& event : service.resize_events()) {
    EXPECT_FALSE(event.split);
  }
  // Every machine now lives on one shard, and the whole batch ran there.
  const int owner = service.shard_of_machine(0);
  for (int machine = 1; machine < etc.num_machines(); ++machine) {
    EXPECT_EQ(service.shard_of_machine(machine), owner);
  }
  int scheduled = 0;
  for (const ShardStats& stat : service.shard_stats()) {
    scheduled += stat.jobs_scheduled;
    if (stat.shard != owner) {
      EXPECT_EQ(stat.jobs_scheduled, 0);
    }
  }
  EXPECT_EQ(scheduled, etc.num_jobs());
}

TEST(Service, SplitMigratesTheWarmStartCache) {
  ServiceConfig config = deterministic_config(2);
  config.split_above_machines = 6;
  config.max_shards = 3;
  GridSchedulingService service(config);
  // First activation: 8 machines / 2 shards = 4, under the bound — the
  // caches fill without any resize.
  const EtcMatrix small = small_instance(24, 8);
  (void)service.schedule_batch(small);
  EXPECT_EQ(service.num_shards(), 2);
  EXPECT_FALSE(service.shard_scheduler(0).cache().empty());
  // Second activation arrives with 16 machines: 16/2 = 8 > 6 -> split.
  // The child shard must inherit a COPY of the parent's elites, not start
  // cold.
  const EtcMatrix big = small_instance(48, 16, 5);
  (void)service.schedule_batch(big);
  ASSERT_EQ(service.num_shards(), 3);
  ASSERT_FALSE(service.resize_events().empty());
  const ShardResizeEvent& split = service.resize_events().front();
  EXPECT_TRUE(split.split);
  EXPECT_EQ(split.to_shard, 2);
  EXPECT_FALSE(service.shard_scheduler(2).cache().empty())
      << "split child started with a cold cache";
}

TEST(Service, RejectsOscillatingScalingBounds) {
  ServiceConfig config = deterministic_config(2);
  config.split_above_machines = 5;
  config.merge_below_machines = 4;  // less than twice the merge bound
  EXPECT_THROW(GridSchedulingService{config}, std::invalid_argument);
}

// ---------------------------------------------------------------- driver --

TEST(ShardedDriver, RunsTheDynamicGridAndSplitsMetricsPerShard) {
  SimConfig sim_config;
  sim_config.horizon = 300.0;
  sim_config.arrival_rate = 0.4;
  sim_config.scheduler_period = 50.0;
  sim_config.num_machines = 6;
  sim_config.machine_mtbf = 150.0;  // churn exercises shard-set shrinkage
  sim_config.machine_mttr = 40.0;
  sim_config.seed = 17;
  GridSimulator sim(sim_config);

  ServiceConfig config = deterministic_config(3);
  config.member_stop = StopCondition{.max_evaluations = 120};
  GridSchedulingService service(config);
  const ShardedSimReport report = run_sharded(sim, service);

  EXPECT_EQ(report.global.jobs_completed, report.global.jobs_arrived);
  ASSERT_EQ(report.per_shard.size(), 3u);
  int completed = 0;
  int activations = 0;
  for (const SimMetrics& shard : report.per_shard) {
    completed += shard.jobs_completed;
    activations += shard.activations;
    // Under churn, work aborted by a failure still counts as busy time
    // (matching the global utilization metric), so the ratio may exceed 1;
    // it must stay non-negative and sane.
    EXPECT_GE(shard.utilization, 0.0);
    EXPECT_LT(shard.utilization, 10.0);
    if (shard.jobs_completed > 0) {
      EXPECT_GT(shard.mean_flowtime, 0.0);
      EXPECT_LE(shard.makespan, report.global.makespan + 1e-9);
    }
  }
  EXPECT_EQ(completed, report.global.jobs_completed);
  EXPECT_GT(activations, 0);
}

TEST(ShardedDriver, MachineBusyTimesAreExposedBySimulator) {
  SimConfig sim_config;
  sim_config.horizon = 200.0;
  sim_config.arrival_rate = 0.3;
  sim_config.num_machines = 4;
  sim_config.seed = 5;
  GridSimulator sim(sim_config);
  GridSchedulingService service(deterministic_config(2));
  (void)sim.run(service);
  ASSERT_EQ(sim.machine_busy().size(), 4u);
  ASSERT_EQ(sim.machine_mips().size(), 4u);
  double busy = 0.0;
  for (const double b : sim.machine_busy()) busy += b;
  EXPECT_GT(busy, 0.0);
}

}  // namespace
}  // namespace gridsched
