// Fixed-seed end-to-end pins for the evolutionary loops.
//
// The evaluator's delta machinery (O(1) previews, closed-form applies,
// reset_to gene replay) promises BITWISE-identical results to the naive
// full-recompute path. These pins hold five fixed-seed runs — cMA under
// three operator configurations, the synchronous cMA and the Struggle GA —
// to exact gene hashes and %.17g objective values captured from a
// from-scratch evaluation. Any rounding drift anywhere in the preview /
// apply / canonicalize / reset_to pipeline, or an RNG draw added or
// removed from an operator, flips a pin.
//
// Refreshing: a pin may only change together with an intentional,
// documented behavior change (new operator semantics, RNG stream change).
// A perf-only PR that moves one of these values has a bug.
//
// Build caveat: the expected values assume the default Release flags (-O3,
// no -march/-ffast-math); FMA contraction or reassociation would
// legitimately perturb the last ULPs (docs/performance.md).
#include <gtest/gtest.h>

#include <cstdint>

#include "cma/cma.h"
#include "cma/sync_cma.h"
#include "etc/instance.h"
#include "ga/struggle_ga.h"

namespace gridsched {
namespace {

/// FNV-1a over the gene sequence: a stable fingerprint of the best
/// schedule that fails loudly on any assignment difference.
std::uint64_t schedule_hash(const Schedule& s) {
  std::uint64_t h = 1469598103934665603ULL;
  for (MachineId g : s.genes()) {
    h ^= static_cast<std::uint64_t>(static_cast<std::uint32_t>(g));
    h *= 1099511628211ULL;
  }
  return h;
}

/// 128x16 inconsistent instance, the main pin target.
EtcMatrix pinned_instance() {
  InstanceSpec spec;
  spec.num_jobs = 128;
  spec.num_machines = 16;
  spec.consistency = Consistency::kInconsistent;
  return generate_instance(spec);
}

/// 96x8 consistent lo-hi instance for the LMCTS all-critical pin.
EtcMatrix pinned_instance_lohi() {
  InstanceSpec spec;
  spec.num_jobs = 96;
  spec.num_machines = 8;
  spec.consistency = Consistency::kConsistent;
  spec.job_heterogeneity = Heterogeneity::kLow;
  return generate_instance(spec);
}

struct Pin {
  std::uint64_t hash;
  double makespan;
  double flowtime;
  double fitness;
  std::int64_t evaluations;
};

void expect_pin(const EvolutionResult& r, const Pin& pin) {
  EXPECT_EQ(schedule_hash(r.best.schedule), pin.hash);
  EXPECT_EQ(r.best.objectives.makespan, pin.makespan);
  EXPECT_EQ(r.best.objectives.flowtime, pin.flowtime);
  EXPECT_EQ(r.best.fitness, pin.fitness);
  EXPECT_EQ(r.evaluations, pin.evaluations);
}

TEST(GoldenPins, CmaDefaultOperatorsInconsistentHiHi) {
  CmaConfig cfg;
  cfg.pop_height = 4;
  cfg.pop_width = 4;
  cfg.stop = StopCondition{.max_evaluations = 2000};
  cfg.seed = 7;
  expect_pin(CellularMemeticAlgorithm(cfg).run(pinned_instance()),
             {10295074483163045571ULL, 956588.47267384967, 30731156.361125588,
              1197615.6726479745, 2000});
}

TEST(GoldenPins, CmaSteepestMoveUniformSwap) {
  CmaConfig cfg;
  cfg.pop_height = 4;
  cfg.pop_width = 4;
  cfg.stop = StopCondition{.max_evaluations = 2000};
  cfg.seed = 7;
  cfg.local_search = LocalSearchConfig{LocalSearchKind::kSteepestLocalMove, 8};
  cfg.crossover = CrossoverKind::kUniform;
  cfg.mutation = MutationKind::kSwap;
  expect_pin(CellularMemeticAlgorithm(cfg).run(pinned_instance()),
             {13412213410814480008ULL, 818786.0243488634, 25304459.520476583,
              1009471.6982690941, 2000});
}

TEST(GoldenPins, CmaLmctsAllCriticalConsistentLoHi) {
  CmaConfig cfg;
  cfg.pop_height = 3;
  cfg.pop_width = 3;
  cfg.stop = StopCondition{.max_evaluations = 1500};
  cfg.seed = 11;
  cfg.local_search.scan = LmctsScan::kCriticalAllJobs;
  cfg.crossover = CrossoverKind::kTwoPoint;
  expect_pin(CellularMemeticAlgorithm(cfg).run(pinned_instance_lohi()),
             {11872154960642159625ULL, 126825.79469424207, 3751298.6416417672,
              212347.42857198679, 1500});
}

TEST(GoldenPins, SynchronousCmaDefault) {
  CmaConfig cfg;
  cfg.pop_height = 4;
  cfg.pop_width = 4;
  cfg.stop = StopCondition{.max_evaluations = 2000};
  cfg.seed = 7;
  expect_pin(SynchronousCellularMa(cfg, 0).run(pinned_instance()),
             {12215915701544311963ULL, 806567.47494147578, 27795466.673021756,
              1039229.7729720718, 2000});
}

TEST(GoldenPins, StruggleGa) {
  StruggleGaConfig cfg;
  cfg.population_size = 40;
  cfg.stop = StopCondition{.max_evaluations = 3000};
  cfg.seed = 13;
  expect_pin(StruggleGa(cfg).run(pinned_instance()),
             {14955291288071606980ULL, 884780.27614783857, 25346491.925600864,
              1059624.1434483924, 3000});
}

}  // namespace
}  // namespace gridsched
