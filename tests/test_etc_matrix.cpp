#include "etc/etc_matrix.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace gridsched {
namespace {

TEST(EtcMatrix, ConstructsZeroed) {
  EtcMatrix etc(3, 2);
  EXPECT_EQ(etc.num_jobs(), 3);
  EXPECT_EQ(etc.num_machines(), 2);
  for (JobId j = 0; j < 3; ++j) {
    for (MachineId m = 0; m < 2; ++m) EXPECT_EQ(etc(j, m), 0.0);
  }
  for (MachineId m = 0; m < 2; ++m) EXPECT_EQ(etc.ready_time(m), 0.0);
}

TEST(EtcMatrix, RejectsBadShape) {
  EXPECT_THROW(EtcMatrix(0, 3), std::invalid_argument);
  EXPECT_THROW(EtcMatrix(3, 0), std::invalid_argument);
  EXPECT_THROW(EtcMatrix(-1, 2), std::invalid_argument);
}

TEST(EtcMatrix, FromValuesRowMajor) {
  EtcMatrix etc(2, 3, {1, 2, 3, 4, 5, 6});
  EXPECT_EQ(etc(0, 0), 1.0);
  EXPECT_EQ(etc(0, 2), 3.0);
  EXPECT_EQ(etc(1, 0), 4.0);
  EXPECT_EQ(etc(1, 2), 6.0);
}

TEST(EtcMatrix, FromValuesRejectsWrongCount) {
  EXPECT_THROW(EtcMatrix(2, 2, {1, 2, 3}), std::invalid_argument);
}

TEST(EtcMatrix, WriteThroughAccessor) {
  EtcMatrix etc(2, 2);
  etc.set(1, 0, 42.5);
  EXPECT_EQ(etc(1, 0), 42.5);
  EXPECT_EQ(etc(0, 0), 0.0);
}

TEST(EtcMatrix, RowSpanViewsCorrectSlice) {
  EtcMatrix etc(2, 3, {1, 2, 3, 4, 5, 6});
  const auto r1 = etc.row(1);
  ASSERT_EQ(r1.size(), 3u);
  EXPECT_EQ(r1[0], 4.0);
  EXPECT_EQ(r1[2], 6.0);
}

TEST(EtcMatrix, ReadyTimes) {
  EtcMatrix etc(2, 2);
  etc.set_ready_time(1, 7.25);
  EXPECT_EQ(etc.ready_time(0), 0.0);
  EXPECT_EQ(etc.ready_time(1), 7.25);
  EXPECT_EQ(etc.ready_times()[1], 7.25);
}

TEST(EtcMatrix, MeanAndMinRow) {
  EtcMatrix etc(2, 4, {2, 4, 6, 8, 5, 5, 5, 5});
  EXPECT_DOUBLE_EQ(etc.mean_row(0), 5.0);
  EXPECT_DOUBLE_EQ(etc.min_row(0), 2.0);
  EXPECT_DOUBLE_EQ(etc.mean_row(1), 5.0);
  EXPECT_DOUBLE_EQ(etc.min_row(1), 5.0);
}

TEST(EtcMatrix, TotalSumsAllEntries) {
  EtcMatrix etc(2, 2, {1, 2, 3, 4});
  EXPECT_DOUBLE_EQ(etc.total(), 10.0);
}

TEST(EtcMatrix, MachineRowIsTheMatrixColumn) {
  EtcMatrix etc(3, 2, {1, 2, 3, 4, 5, 6});
  for (MachineId m = 0; m < 2; ++m) {
    const auto column = etc.machine_row(m);
    ASSERT_EQ(column.size(), 3u);
    for (JobId j = 0; j < 3; ++j) EXPECT_EQ(column[j], etc(j, m));
  }
}

TEST(EtcMatrix, SetKeepsMachineMajorMirrorCoherent) {
  // set() must write through to both layouts; a stale mirror would
  // silently skew every column reduction (LJFR-SJFR means, heat-maps).
  EtcMatrix etc(4, 3);
  etc.set(0, 2, 1.5);
  etc.set(3, 0, 2.5);
  etc.set(2, 1, 3.5);
  etc.set(2, 1, 4.5);  // overwrite
  for (MachineId m = 0; m < 3; ++m) {
    const auto column = etc.machine_row(m);
    for (JobId j = 0; j < 4; ++j) {
      EXPECT_EQ(column[j], etc(j, m)) << "job " << j << " machine " << m;
    }
  }
  EXPECT_EQ(etc(2, 1), 4.5);
}

}  // namespace
}  // namespace gridsched
