#include "etc/instance.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

namespace gridsched {
namespace {

/// gtest-safe name for a parameterized instance spec ('.' is not allowed).
std::string param_name(const ::testing::TestParamInfo<InstanceSpec>& info) {
  std::string name = info.param.name();
  std::replace(name.begin(), name.end(), '.', '_');
  return name;
}

class BraunClassTest : public ::testing::TestWithParam<InstanceSpec> {};

INSTANTIATE_TEST_SUITE_P(AllTwelveClasses, BraunClassTest,
                         ::testing::ValuesIn(braun_benchmark_suite()),
                         param_name);

TEST_P(BraunClassTest, ShapeIs512By16) {
  const EtcMatrix etc = generate_instance(GetParam());
  EXPECT_EQ(etc.num_jobs(), 512);
  EXPECT_EQ(etc.num_machines(), 16);
}

TEST_P(BraunClassTest, EntriesWithinRangeBounds) {
  const InstanceSpec spec = GetParam();
  const EtcMatrix etc = generate_instance(spec);
  const double upper = job_range_bound(spec.job_heterogeneity) *
                       machine_range_bound(spec.machine_heterogeneity);
  for (JobId j = 0; j < etc.num_jobs(); ++j) {
    for (MachineId m = 0; m < etc.num_machines(); ++m) {
      ASSERT_GE(etc(j, m), 1.0);
      ASSERT_LE(etc(j, m), upper);
    }
  }
}

TEST_P(BraunClassTest, DeterministicAcrossCalls) {
  const EtcMatrix a = generate_instance(GetParam());
  const EtcMatrix b = generate_instance(GetParam());
  ASSERT_EQ(a.raw().size(), b.raw().size());
  for (std::size_t i = 0; i < a.raw().size(); ++i) {
    ASSERT_EQ(a.raw()[i], b.raw()[i]);
  }
}

TEST_P(BraunClassTest, ReplicasDiffer) {
  const EtcMatrix a = generate_instance(GetParam(), 0);
  const EtcMatrix b = generate_instance(GetParam(), 1);
  int diff = 0;
  for (std::size_t i = 0; i < a.raw().size(); ++i) {
    diff += (a.raw()[i] != b.raw()[i]) ? 1 : 0;
  }
  EXPECT_GT(diff, static_cast<int>(a.raw().size() / 2));
}

TEST_P(BraunClassTest, ConsistencyStructureHolds) {
  const InstanceSpec spec = GetParam();
  const EtcMatrix etc = generate_instance(spec);
  if (spec.consistency == Consistency::kConsistent) {
    // Every row non-decreasing => machine i dominates machine i+1 for all
    // jobs, the definition of consistency.
    for (JobId j = 0; j < etc.num_jobs(); ++j) {
      for (MachineId m = 0; m + 1 < etc.num_machines(); ++m) {
        ASSERT_LE(etc(j, m), etc(j, m + 1)) << "row " << j;
      }
    }
  } else if (spec.consistency == Consistency::kSemiConsistent) {
    // Even-indexed columns form the consistent sub-matrix.
    for (JobId j = 0; j < etc.num_jobs(); ++j) {
      for (MachineId m = 0; m + 2 < etc.num_machines(); m += 2) {
        ASSERT_LE(etc(j, m), etc(j, m + 2)) << "row " << j;
      }
    }
  }
}

TEST(InstanceGenerator, InconsistentHasNoTotalOrder) {
  InstanceSpec spec;  // defaults: 512x16, hihi
  spec.consistency = Consistency::kInconsistent;
  const EtcMatrix etc = generate_instance(spec);
  // There must exist adjacent-column inversions in some rows.
  int inversions = 0;
  for (JobId j = 0; j < etc.num_jobs(); ++j) {
    for (MachineId m = 0; m + 1 < etc.num_machines(); ++m) {
      inversions += (etc(j, m) > etc(j, m + 1)) ? 1 : 0;
    }
  }
  EXPECT_GT(inversions, 1000);  // ~half of 512*15 in expectation
}

TEST(InstanceGenerator, HeterogeneityAffectsSpread) {
  InstanceSpec hi;
  hi.consistency = Consistency::kInconsistent;
  InstanceSpec lo = hi;
  lo.job_heterogeneity = Heterogeneity::kLow;
  lo.machine_heterogeneity = Heterogeneity::kLow;
  const EtcMatrix ehi = generate_instance(hi);
  const EtcMatrix elo = generate_instance(lo);
  double max_hi = 0;
  double max_lo = 0;
  for (double v : ehi.raw()) max_hi = std::max(max_hi, v);
  for (double v : elo.raw()) max_lo = std::max(max_lo, v);
  // hihi upper bound 3000*1000 vs lolo 100*10.
  EXPECT_GT(max_hi, 100'000.0);
  EXPECT_LE(max_lo, 1'000.0);
}

TEST(InstanceGenerator, ExplicitSeedOverridesClassSeed) {
  InstanceSpec spec;
  spec.seed = 12345;
  const EtcMatrix a = generate_instance(spec);
  spec.seed = 54321;
  const EtcMatrix b = generate_instance(spec);
  EXPECT_NE(a(0, 0), b(0, 0));
}

TEST(InstanceGenerator, CustomShape) {
  InstanceSpec spec;
  spec.num_jobs = 10;
  spec.num_machines = 3;
  const EtcMatrix etc = generate_instance(spec);
  EXPECT_EQ(etc.num_jobs(), 10);
  EXPECT_EQ(etc.num_machines(), 3);
}

TEST(InstanceSpec, NameRoundTripsThroughParse) {
  for (const InstanceSpec& spec : braun_benchmark_suite()) {
    const auto parsed = parse_instance_name(spec.name());
    ASSERT_TRUE(parsed.has_value()) << spec.name();
    EXPECT_EQ(parsed->consistency, spec.consistency);
    EXPECT_EQ(parsed->job_heterogeneity, spec.job_heterogeneity);
    EXPECT_EQ(parsed->machine_heterogeneity, spec.machine_heterogeneity);
  }
}

TEST(InstanceSpec, NamesMatchPaperLabels) {
  const auto suite = braun_benchmark_suite();
  EXPECT_EQ(suite[0].name(), "u_c_hihi.0");
  EXPECT_EQ(suite[1].name(), "u_c_hilo.0");
  EXPECT_EQ(suite[2].name(), "u_c_lohi.0");
  EXPECT_EQ(suite[3].name(), "u_c_lolo.0");
  EXPECT_EQ(suite[4].name(), "u_i_hihi.0");
  EXPECT_EQ(suite[8].name(), "u_s_hihi.0");
  EXPECT_EQ(suite[11].name(), "u_s_lolo.0");
}

TEST(InstanceSpec, ParseRejectsMalformedLabels) {
  EXPECT_FALSE(parse_instance_name("").has_value());
  EXPECT_FALSE(parse_instance_name("u_x_hihi.0").has_value());
  EXPECT_FALSE(parse_instance_name("u_c_xxhi.0").has_value());
  EXPECT_FALSE(parse_instance_name("u_c_hihi").has_value());
  EXPECT_FALSE(parse_instance_name("u_c_hihi.x").has_value());
  EXPECT_FALSE(parse_instance_name("v_c_hihi.0").has_value());
}

TEST(InstanceSpec, SuiteCoversAllCombinations) {
  const auto suite = braun_benchmark_suite();
  int consistent = 0;
  int inconsistent = 0;
  int semi = 0;
  for (const auto& spec : suite) {
    switch (spec.consistency) {
      case Consistency::kConsistent: ++consistent; break;
      case Consistency::kInconsistent: ++inconsistent; break;
      case Consistency::kSemiConsistent: ++semi; break;
    }
  }
  EXPECT_EQ(consistent, 4);
  EXPECT_EQ(inconsistent, 4);
  EXPECT_EQ(semi, 4);
}

}  // namespace
}  // namespace gridsched
