#include "core/schedule.h"

#include <gtest/gtest.h>

namespace gridsched {
namespace {

TEST(Schedule, DefaultFillIsUnassigned) {
  Schedule s(4);
  EXPECT_EQ(s.num_jobs(), 4);
  for (JobId j = 0; j < 4; ++j) EXPECT_EQ(s[j], -1);
  EXPECT_FALSE(s.complete(8));
}

TEST(Schedule, CompleteRequiresAllGenesInRange) {
  Schedule s(3, 0);
  EXPECT_TRUE(s.complete(1));
  s[1] = 2;
  EXPECT_FALSE(s.complete(2));
  EXPECT_TRUE(s.complete(3));
}

TEST(Schedule, EmptyScheduleIsNotComplete) {
  Schedule s;
  EXPECT_FALSE(s.complete(4));
}

TEST(Schedule, HammingDistance) {
  Schedule a(5, 0);
  Schedule b(5, 0);
  EXPECT_EQ(a.hamming_distance(b), 0);
  b[0] = 1;
  b[4] = 3;
  EXPECT_EQ(a.hamming_distance(b), 2);
  EXPECT_EQ(b.hamming_distance(a), 2);
}

TEST(Schedule, EqualityComparesGenes) {
  Schedule a(3, 1);
  Schedule b(3, 1);
  EXPECT_EQ(a, b);
  b[2] = 0;
  EXPECT_NE(a, b);
}

TEST(Schedule, RandomIsCompleteAndSpread) {
  Rng rng(5);
  const Schedule s = Schedule::random(1000, 7, rng);
  EXPECT_TRUE(s.complete(7));
  // All 7 machines should be used with ~143 jobs each.
  std::vector<int> counts(7, 0);
  for (JobId j = 0; j < 1000; ++j) ++counts[static_cast<std::size_t>(s[j])];
  for (int c : counts) EXPECT_GT(c, 80);
}

TEST(Schedule, RandomDeterministicInSeed) {
  Rng a(9);
  Rng b(9);
  EXPECT_EQ(Schedule::random(64, 4, a), Schedule::random(64, 4, b));
}

TEST(Schedule, PerturbZeroRateIsIdentity) {
  Rng rng(3);
  Schedule s = Schedule::random(50, 5, rng);
  Schedule copy = s;
  s.perturb(0.0, 5, rng);
  EXPECT_EQ(s, copy);
}

TEST(Schedule, PerturbFullRateRandomizesKeepingValidity) {
  Rng rng(3);
  Schedule s = Schedule::random(200, 5, rng);
  Schedule copy = s;
  s.perturb(1.0, 5, rng);
  EXPECT_TRUE(s.complete(5));
  // With 5 machines ~20% of re-rolled genes coincide by chance.
  EXPECT_GT(s.hamming_distance(copy), 100);
}

TEST(Schedule, PerturbHalfRateChangesRoughlyHalf) {
  Rng rng(11);
  Schedule s = Schedule::random(1000, 16, rng);
  Schedule copy = s;
  s.perturb(0.5, 16, rng);
  const int d = s.hamming_distance(copy);
  // Expected changed fraction = 0.5 * 15/16 ~ 0.47.
  EXPECT_GT(d, 380);
  EXPECT_LT(d, 560);
}

TEST(Schedule, GenesSpanMatchesOperator) {
  Schedule s(3, 2);
  s[1] = 0;
  const auto genes = s.genes();
  ASSERT_EQ(genes.size(), 3u);
  EXPECT_EQ(genes[0], 2);
  EXPECT_EQ(genes[1], 0);
  EXPECT_EQ(genes[2], 2);
}

}  // namespace
}  // namespace gridsched
