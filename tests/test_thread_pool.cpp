#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace gridsched {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { ++counter; });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, SizeDefaultsToAtLeastOne) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(257);
  pool.parallel_for(hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForZeroItemsIsNoop) {
  ThreadPool pool(2);
  pool.parallel_for(0, [](std::size_t) { FAIL() << "must not be called"; });
}

TEST(ThreadPool, ParallelForWithMoreItemsThanThreads) {
  ThreadPool pool(2);
  std::atomic<long> sum{0};
  pool.parallel_for(1000, [&](std::size_t i) {
    sum += static_cast<long>(i);
  });
  EXPECT_EQ(sum.load(), 999L * 1000 / 2);
}

TEST(ThreadPool, TaskExceptionSurfacesInWaitIdle) {
  ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  // The pool stays usable after an exception.
  std::atomic<int> counter{0};
  pool.submit([&counter] { ++counter; });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPool, SingleFailureRethrowsTheOriginalType) {
  ThreadPool pool(2);
  pool.submit([] { throw std::invalid_argument("typed"); });
  EXPECT_THROW(pool.wait_idle(), std::invalid_argument);
}

TEST(ThreadPool, ConcurrentFailuresAllSurface) {
  ThreadPool pool(4);
  for (int i = 0; i < 3; ++i) {
    pool.submit([i] { throw std::runtime_error("boom " + std::to_string(i)); });
  }
  try {
    pool.wait_idle();
    FAIL() << "wait_idle must throw";
  } catch (const TaskGroupError& group) {
    EXPECT_EQ(group.errors().size(), 3u);
    // The aggregate message names every failure.
    const std::string what = group.what();
    for (int i = 0; i < 3; ++i) {
      EXPECT_NE(what.find("boom " + std::to_string(i)), std::string::npos)
          << what;
    }
    for (const std::exception_ptr& error : group.errors()) {
      EXPECT_THROW(std::rethrow_exception(error), std::runtime_error);
    }
  }
}

TEST(ThreadPool, ErrorSlateIsWipedAfterGroupError) {
  ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("a"); });
  pool.submit([] { throw std::runtime_error("b"); });
  EXPECT_THROW(pool.wait_idle(), TaskGroupError);
  // Pool stays usable and forgets the old errors.
  std::atomic<int> counter{0};
  pool.submit([&counter] { ++counter; });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPool, FailuresDoNotEatSucceedingTasks) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 20; ++i) {
    if (i % 5 == 0) {
      pool.submit([] { throw std::runtime_error("x"); });
    } else {
      pool.submit([&counter] { ++counter; });
    }
  }
  EXPECT_THROW(pool.wait_idle(), TaskGroupError);
  EXPECT_EQ(counter.load(), 16);
}

TEST(ThreadPool, WaitIdleWithNothingQueuedReturns) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ThreadPool, ManyWaves) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int wave = 0; wave < 10; ++wave) {
    for (int i = 0; i < 50; ++i) pool.submit([&counter] { ++counter; });
    pool.wait_idle();
  }
  EXPECT_EQ(counter.load(), 500);
}

}  // namespace
}  // namespace gridsched
