#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

namespace gridsched {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { ++counter; });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, SizeDefaultsToAtLeastOne) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(257);
  pool.parallel_for(hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForZeroItemsIsNoop) {
  ThreadPool pool(2);
  pool.parallel_for(0, [](std::size_t) { FAIL() << "must not be called"; });
}

TEST(ThreadPool, ParallelForWithMoreItemsThanThreads) {
  ThreadPool pool(2);
  std::atomic<long> sum{0};
  pool.parallel_for(1000, [&](std::size_t i) {
    sum += static_cast<long>(i);
  });
  EXPECT_EQ(sum.load(), 999L * 1000 / 2);
}

TEST(ThreadPool, TaskExceptionSurfacesInWaitIdle) {
  ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  // The pool stays usable after an exception.
  std::atomic<int> counter{0};
  pool.submit([&counter] { ++counter; });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPool, SingleFailureRethrowsTheOriginalType) {
  ThreadPool pool(2);
  pool.submit([] { throw std::invalid_argument("typed"); });
  EXPECT_THROW(pool.wait_idle(), std::invalid_argument);
}

TEST(ThreadPool, ConcurrentFailuresAllSurface) {
  ThreadPool pool(4);
  for (int i = 0; i < 3; ++i) {
    pool.submit([i] { throw std::runtime_error("boom " + std::to_string(i)); });
  }
  try {
    pool.wait_idle();
    FAIL() << "wait_idle must throw";
  } catch (const TaskGroupError& group) {
    EXPECT_EQ(group.errors().size(), 3u);
    // The aggregate message names every failure.
    const std::string what = group.what();
    for (int i = 0; i < 3; ++i) {
      EXPECT_NE(what.find("boom " + std::to_string(i)), std::string::npos)
          << what;
    }
    for (const std::exception_ptr& error : group.errors()) {
      EXPECT_THROW(std::rethrow_exception(error), std::runtime_error);
    }
  }
}

TEST(ThreadPool, ErrorSlateIsWipedAfterGroupError) {
  ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("a"); });
  pool.submit([] { throw std::runtime_error("b"); });
  EXPECT_THROW(pool.wait_idle(), TaskGroupError);
  // Pool stays usable and forgets the old errors.
  std::atomic<int> counter{0};
  pool.submit([&counter] { ++counter; });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPool, FailuresDoNotEatSucceedingTasks) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 20; ++i) {
    if (i % 5 == 0) {
      pool.submit([] { throw std::runtime_error("x"); });
    } else {
      pool.submit([&counter] { ++counter; });
    }
  }
  EXPECT_THROW(pool.wait_idle(), TaskGroupError);
  EXPECT_EQ(counter.load(), 16);
}

TEST(ThreadPool, WaitIdleWithNothingQueuedReturns) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ThreadPool, ManyWaves) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int wave = 0; wave < 10; ++wave) {
    for (int i = 0; i < 50; ++i) pool.submit([&counter] { ++counter; });
    pool.wait_idle();
  }
  EXPECT_EQ(counter.load(), 500);
}

// ------------------------------------------------------------ task groups --

TEST(TaskGroup, RunsSubmittedTasksAndWaits) {
  ThreadPool pool(4);
  TaskGroup group = pool.make_group();
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit(group, [&counter] { ++counter; });
  }
  group.wait();
  EXPECT_EQ(counter.load(), 100);
  EXPECT_EQ(group.pending(), 0u);
}

TEST(TaskGroup, WaitWithNoTasksReturnsImmediately) {
  ThreadPool pool(2);
  TaskGroup group = pool.make_group();
  group.wait();  // must not hang
  SUCCEED();
}

TEST(TaskGroup, TwoGroupsOnOnePoolWaitIndependently) {
  ThreadPool pool(2);
  TaskGroup slow = pool.make_group();
  TaskGroup fast = pool.make_group();
  std::atomic<bool> slow_started{false};
  std::atomic<bool> release{false};
  std::atomic<int> fast_done{0};
  pool.submit(slow, [&] {
    slow_started = true;
    while (!release) std::this_thread::yield();
  });
  // Only submit the fast task once the blocker is RUNNING (not queued), so
  // the fast wait below cannot pick it up while helping.
  while (!slow_started) std::this_thread::yield();
  pool.submit(fast, [&] { ++fast_done; });
  fast.wait();  // must return while the slow group is still in flight
  EXPECT_EQ(fast_done.load(), 1);
  EXPECT_EQ(fast.pending(), 0u);
  EXPECT_EQ(slow.pending(), 1u);
  release = true;
  slow.wait();
  EXPECT_EQ(slow.pending(), 0u);
}

TEST(TaskGroup, FailureInOneGroupNeverSurfacesInAnother) {
  ThreadPool pool(2);
  TaskGroup failing = pool.make_group();
  TaskGroup clean = pool.make_group();
  pool.submit(failing, [] { throw std::invalid_argument("group A boom"); });
  std::atomic<int> counter{0};
  pool.submit(clean, [&counter] { ++counter; });
  clean.wait();  // B's wait is untouched by A's failure
  EXPECT_EQ(counter.load(), 1);
  EXPECT_THROW(failing.wait(), std::invalid_argument);
  // A's slate is wiped by the throw; the group stays reusable.
  pool.submit(failing, [&counter] { ++counter; });
  failing.wait();
  EXPECT_EQ(counter.load(), 2);
}

TEST(TaskGroup, MultiFailureWithinOneGroupThrowsTaskGroupError) {
  ThreadPool pool(4);
  TaskGroup group = pool.make_group();
  for (int i = 0; i < 3; ++i) {
    pool.submit(group, [i] {
      throw std::runtime_error("boom " + std::to_string(i));
    });
  }
  try {
    group.wait();
    FAIL() << "wait must throw";
  } catch (const TaskGroupError& error) {
    EXPECT_EQ(error.errors().size(), 3u);
    const std::string what = error.what();
    for (int i = 0; i < 3; ++i) {
      EXPECT_NE(what.find("boom " + std::to_string(i)), std::string::npos)
          << what;
    }
  }
}

TEST(TaskGroup, GroupErrorsDoNotLeakIntoWaitIdle) {
  ThreadPool pool(2);
  TaskGroup group = pool.make_group();
  pool.submit(group, [] { throw std::runtime_error("grouped"); });
  pool.wait_idle();  // drains the task but must NOT report its failure
  EXPECT_THROW(group.wait(), std::runtime_error);  // the group still does
}

TEST(TaskGroup, ReusableAcrossWaves) {
  ThreadPool pool(4);
  TaskGroup group = pool.make_group();
  std::atomic<int> counter{0};
  for (int wave = 0; wave < 10; ++wave) {
    for (int i = 0; i < 20; ++i) pool.submit(group, [&counter] { ++counter; });
    group.wait();
  }
  EXPECT_EQ(counter.load(), 200);
}

TEST(TaskGroup, NestedGroupWaitDoesNotDeadlockOnAOneThreadPool) {
  // The sharded-service pattern: a task running ON the pool mints its own
  // subgroup, submits into it and waits. With one worker this can only
  // complete if waiting threads help run queued tasks.
  ThreadPool pool(1);
  TaskGroup outer = pool.make_group();
  std::atomic<int> inner_done{0};
  for (int task = 0; task < 3; ++task) {
    pool.submit(outer, [&pool, &inner_done] {
      TaskGroup inner = pool.make_group();
      for (int i = 0; i < 4; ++i) {
        pool.submit(inner, [&inner_done] { ++inner_done; });
      }
      inner.wait();
    });
  }
  outer.wait();
  EXPECT_EQ(inner_done.load(), 12);
}

TEST(TaskGroup, WaitingThreadHelpsRunItsOwnGroup) {
  // Zero free workers: the lone worker is parked on a blocker, so the
  // group's tasks can only run on the waiting (main) thread.
  ThreadPool pool(1);
  std::atomic<bool> blocker_started{false};
  std::atomic<bool> release{false};
  pool.submit([&] {
    blocker_started = true;
    while (!release) std::this_thread::yield();
  });
  while (!blocker_started) std::this_thread::yield();
  TaskGroup group = pool.make_group();
  std::atomic<int> counter{0};
  for (int i = 0; i < 8; ++i) pool.submit(group, [&counter] { ++counter; });
  group.wait();
  EXPECT_EQ(counter.load(), 8);
  release = true;
  pool.wait_idle();
}

TEST(TaskGroup, WaitIdleStillDrainsGroupTasks) {
  // wait_idle is the whole-pool wrapper: it waits for group tasks too,
  // it just does not adopt their errors.
  ThreadPool pool(2);
  TaskGroup group = pool.make_group();
  std::atomic<int> counter{0};
  for (int i = 0; i < 16; ++i) pool.submit(group, [&counter] { ++counter; });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 16);
  group.wait();  // nothing pending, nothing thrown
}

}  // namespace
}  // namespace gridsched
