#include "cma/crossover.h"

#include <gtest/gtest.h>

#include <vector>

namespace gridsched {
namespace {

Schedule filled(int n, MachineId value) { return Schedule(n, value); }

TEST(Crossover, OnePointChildIsPrefixOfAThenSuffixOfB) {
  const Schedule a = filled(10, 0);
  const Schedule b = filled(10, 1);
  Rng rng(1);
  const Schedule child = crossover(CrossoverKind::kOnePoint, a, b, rng);
  // Exactly one switch point from 0-genes to 1-genes, both sides non-empty.
  int switches = 0;
  for (JobId j = 1; j < 10; ++j) {
    switches += (child[j] != child[j - 1]) ? 1 : 0;
  }
  EXPECT_EQ(switches, 1);
  EXPECT_EQ(child[0], 0);
  EXPECT_EQ(child[9], 1);
}

TEST(Crossover, OnePointCutCoversAllInteriorPositions) {
  const Schedule a = filled(6, 0);
  const Schedule b = filled(6, 1);
  Rng rng(2);
  std::vector<int> cut_seen(7, 0);
  for (int i = 0; i < 2000; ++i) {
    const Schedule child = crossover(CrossoverKind::kOnePoint, a, b, rng);
    int cut = 0;
    while (cut < 6 && child[cut] == 0) ++cut;
    ++cut_seen[static_cast<std::size_t>(cut)];
  }
  EXPECT_EQ(cut_seen[0], 0);  // child never all-b
  EXPECT_EQ(cut_seen[6], 0);  // child never all-a
  for (int cut = 1; cut <= 5; ++cut) {
    EXPECT_GT(cut_seen[static_cast<std::size_t>(cut)], 0) << cut;
  }
}

TEST(Crossover, GenesComeOnlyFromParents) {
  Rng rng(3);
  Schedule a = Schedule::random(64, 8, rng);
  Schedule b = Schedule::random(64, 8, rng);
  for (CrossoverKind kind : {CrossoverKind::kOnePoint,
                             CrossoverKind::kTwoPoint,
                             CrossoverKind::kUniform}) {
    const Schedule child = crossover(kind, a, b, rng);
    for (JobId j = 0; j < 64; ++j) {
      EXPECT_TRUE(child[j] == a[j] || child[j] == b[j])
          << crossover_name(kind) << " gene " << j;
    }
  }
}

TEST(Crossover, TwoPointKeepsBothEndsFromFirstParent) {
  const Schedule a = filled(10, 0);
  const Schedule b = filled(10, 1);
  Rng rng(4);
  for (int i = 0; i < 200; ++i) {
    const Schedule child = crossover(CrossoverKind::kTwoPoint, a, b, rng);
    EXPECT_EQ(child[0], 0);
    EXPECT_EQ(child[9], 0);
  }
}

TEST(Crossover, UniformMixesRoughlyHalf) {
  const Schedule a = filled(1000, 0);
  const Schedule b = filled(1000, 1);
  Rng rng(5);
  const Schedule child = crossover(CrossoverKind::kUniform, a, b, rng);
  int from_b = 0;
  for (JobId j = 0; j < 1000; ++j) from_b += child[j];
  EXPECT_GT(from_b, 400);
  EXPECT_LT(from_b, 600);
}

TEST(Crossover, SizeMismatchThrows) {
  Rng rng(6);
  EXPECT_THROW(
      (void)crossover(CrossoverKind::kOnePoint, filled(4, 0), filled(5, 0),
                      rng),
      std::invalid_argument);
}

TEST(Crossover, TwoGeneSchedules) {
  Rng rng(7);
  const Schedule a = filled(2, 0);
  const Schedule b = filled(2, 1);
  const Schedule one = crossover(CrossoverKind::kOnePoint, a, b, rng);
  EXPECT_EQ(one[0], 0);
  EXPECT_EQ(one[1], 1);
  const Schedule two = crossover(CrossoverKind::kTwoPoint, a, b, rng);
  EXPECT_EQ(two[0], 0);
  EXPECT_EQ(two[1], 1);
}

TEST(Crossover, DeterministicInSeed) {
  Rng seed_a(8);
  Schedule a = Schedule::random(32, 4, seed_a);
  Schedule b = Schedule::random(32, 4, seed_a);
  Rng r1(9);
  Rng r2(9);
  EXPECT_EQ(crossover(CrossoverKind::kOnePoint, a, b, r1),
            crossover(CrossoverKind::kOnePoint, a, b, r2));
}

TEST(RecombineFold, SingleParentIsIdentity) {
  Rng rng(10);
  const Schedule a = Schedule::random(16, 4, rng);
  const std::vector<const Schedule*> parents{&a};
  EXPECT_EQ(recombine_fold(CrossoverKind::kOnePoint, parents, rng), a);
}

TEST(RecombineFold, ThreeParentsContributeOnlyTheirGenes) {
  Rng rng(11);
  const Schedule a = filled(30, 0);
  const Schedule b = filled(30, 1);
  const Schedule c = filled(30, 2);
  const std::vector<const Schedule*> parents{&a, &b, &c};
  const Schedule child =
      recombine_fold(CrossoverKind::kOnePoint, parents, rng);
  for (JobId j = 0; j < 30; ++j) {
    EXPECT_TRUE(child[j] == 0 || child[j] == 1 || child[j] == 2);
  }
  // The last fold always contributes a non-empty suffix of parent c.
  EXPECT_EQ(child[29], 2);
}

TEST(RecombineFold, EmptyParentListThrows) {
  Rng rng(12);
  EXPECT_THROW(
      (void)recombine_fold(CrossoverKind::kOnePoint, {}, rng),
      std::invalid_argument);
}

}  // namespace
}  // namespace gridsched
