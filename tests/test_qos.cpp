#include "qos/qos.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>
#include <sstream>
#include <vector>

#include "common/stats.h"
#include "etc/instance.h"
#include "portfolio/portfolio.h"
#include "qos/admission.h"
#include "qos/qos_workload.h"
#include "service/grid_scheduling_service.h"
#include "service/sharded_driver.h"
#include "sim/grid_simulator.h"
#include "workload/trace_io.h"
#include "workload/workload_source.h"

namespace gridsched {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

EtcMatrix small_instance(int jobs, int machines, std::uint64_t seed = 3) {
  InstanceSpec spec;
  spec.num_jobs = jobs;
  spec.num_machines = machines;
  spec.seed = seed;
  return generate_instance(spec);
}

/// Deterministic service: generous wall budget, hard evaluation bound.
ServiceConfig deterministic_config(int shards) {
  ServiceConfig config;
  config.num_shards = shards;
  config.total_budget_ms = 60'000.0;
  config.threads = 2;
  config.member_stop = StopCondition{.max_evaluations = 150};
  config.seed = 11;
  return config;
}

Individual point(double makespan, double fitness) {
  Individual ind;
  ind.objectives = {makespan, makespan};
  ind.fitness = fitness;
  return ind;
}

QosOutcome outcome(int missed, double cost) {
  QosOutcome out;
  out.missed = missed;
  out.total_cost = cost;
  return out;
}

// ------------------------------------------------------------- QosSpec --

TEST(QosSpec, MirrorsTheTraceJobColumns) {
  TraceJob job;
  job.arrival = 3.0;
  job.workload_mi = 500.0;
  job.job_class = 2;
  job.deadline = 17.5;
  job.budget = 40.0;
  job.user = 4;
  const QosSpec spec = QosSpec::from_trace(job);
  EXPECT_DOUBLE_EQ(spec.deadline, 17.5);
  EXPECT_DOUBLE_EQ(spec.budget, 40.0);
  EXPECT_EQ(spec.user, 4);
  EXPECT_EQ(spec.job_class, 2);
  EXPECT_TRUE(spec.has_deadline());
  EXPECT_TRUE(spec.has_budget());
  const QosSpec none = QosSpec::from_trace(TraceJob{});
  EXPECT_FALSE(none.has_deadline());
  EXPECT_FALSE(none.has_budget());
}

TEST(TraceIo, QosColumnsRoundTripExactly) {
  std::vector<TraceJob> jobs;
  Rng rng(77);
  for (int i = 0; i < 60; ++i) {
    TraceJob job;
    job.arrival = static_cast<double>(i) + rng.uniform();
    job.workload_mi = std::exp(rng.normal(10.0, 0.8));
    job.job_class = i % 4 == 0 ? -1 : i % 4;
    // Mix every sentinel combination with irrational-looking values so the
    // CSV formatting is what carries (or loses) the bits.
    job.deadline = i % 3 == 0 ? -1.0 : job.arrival + 5.0 * rng.uniform();
    job.user = i % 5 == 0 ? -1 : i % 5;
    job.budget = job.user < 0 ? -1.0 : 100.0 + rng.uniform();
    jobs.push_back(job);
  }
  std::ostringstream out;
  write_trace(out, jobs);
  std::istringstream in(out.str());
  const std::vector<TraceJob> back = read_trace(in);
  ASSERT_EQ(back.size(), jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(back[i], jobs[i]) << "job " << i << " mutated in round-trip";
  }
}

// -------------------------------------------------------- evaluate_qos --

TEST(EvaluateQos, ScoresSptCompletionsAgainstRelativeDeadlines) {
  // One machine, ready at 2, three jobs with ETCs 10/5/20. SPT order runs
  // job 1 first (finish 7), then job 0 (17), then job 2 (37).
  EtcMatrix etc(3, 1);
  etc.set(0, 0, 10.0);
  etc.set(1, 0, 5.0);
  etc.set(2, 0, 20.0);
  etc.set_ready_time(0, 2.0);
  Schedule plan(3, 0);
  const std::vector<double> deadlines{20.0, kInf, 30.0};
  const QosOutcome out = evaluate_qos(plan, etc, deadlines, {});
  EXPECT_EQ(out.deadline_jobs, 2);
  EXPECT_EQ(out.missed, 1);  // job 2 finishes at 37 > 30
  EXPECT_DOUBLE_EQ(out.total_tardiness, 7.0);
  EXPECT_DOUBLE_EQ(out.max_tardiness, 7.0);
  EXPECT_DOUBLE_EQ(out.miss_rate(), 0.5);
}

TEST(EvaluateQos, PricesExecutedWorkByColumnRates) {
  EtcMatrix etc(2, 2);
  etc.set(0, 0, 10.0);
  etc.set(0, 1, 4.0);
  etc.set(1, 0, 6.0);
  etc.set(1, 1, 8.0);
  Schedule plan(2);
  plan[0] = 1;
  plan[1] = 0;
  const std::vector<double> rates{2.0, 0.5};
  const QosOutcome priced = evaluate_qos(plan, etc, {}, rates);
  // job 0 on machine 1: 4 * 0.5; job 1 on machine 0: 6 * 2.
  EXPECT_DOUBLE_EQ(priced.total_cost, 14.0);
  const QosOutcome free = evaluate_qos(plan, etc, {}, {});
  EXPECT_DOUBLE_EQ(free.total_cost, 0.0);
}

TEST(EvaluateQos, SkipsRejectedAndUnassignedGenes) {
  EtcMatrix etc(3, 1);
  etc.set(0, 0, 10.0);
  etc.set(1, 0, 10.0);
  etc.set(2, 0, 10.0);
  Schedule plan(3);
  plan[0] = 0;
  plan[1] = Schedule::kRejected;
  plan[2] = -1;
  const std::vector<double> deadlines{100.0, 1.0, 1.0};
  const std::vector<double> rates{1.0};
  const QosOutcome out = evaluate_qos(plan, etc, deadlines, rates);
  // Only row 0 executes: the rejected and unassigned rows contribute
  // neither cost nor deadline accounting (the schedule does not run them).
  EXPECT_EQ(out.deadline_jobs, 1);
  EXPECT_EQ(out.missed, 0);
  EXPECT_DOUBLE_EQ(out.total_cost, 10.0);
}

TEST(EvaluateQos, EmptyDeadlinesMeanNoQos) {
  EtcMatrix etc(2, 1);
  etc.set(0, 0, 5.0);
  etc.set(1, 0, 5.0);
  const Schedule plan(2, 0);
  const QosOutcome out = evaluate_qos(plan, etc, {}, {});
  EXPECT_EQ(out.deadline_jobs, 0);
  EXPECT_EQ(out.missed, 0);
  EXPECT_DOUBLE_EQ(out.miss_rate(), 0.0);
}

TEST(QosActive, RequiresAFiniteDeadline) {
  EXPECT_FALSE(qos_active({}));
  const std::vector<double> all_inf{kInf, kInf};
  EXPECT_FALSE(qos_active(all_inf));
  const std::vector<double> one_finite{kInf, 12.0};
  EXPECT_TRUE(qos_active(one_finite));
}

// ----------------------------------------------------- pick_qos_winner --

TEST(PickQosWinner, PrefersKeptPromisesOverMakespan) {
  // B is slower but keeps every deadline; both sit on the front, and the
  // lexicographic (missed, ...) tie-break must pick B.
  const std::vector<Individual> candidates{point(10.0, 10.0),
                                           point(12.0, 12.0)};
  const std::vector<QosOutcome> outcomes{outcome(2, 0.0), outcome(0, 0.0)};
  EXPECT_EQ(pick_qos_winner(candidates, outcomes), 1u);
}

TEST(PickQosWinner, DominatedCandidatesNeverWin) {
  // Candidate 1 is dominated by candidate 0 on every objective; candidate
  // 2 trades makespan for cost and stays on the front.
  const std::vector<Individual> candidates{point(10.0, 10.0),
                                           point(11.0, 11.0),
                                           point(12.0, 12.0)};
  const std::vector<QosOutcome> outcomes{outcome(1, 5.0), outcome(1, 6.0),
                                         outcome(1, 1.0)};
  const std::size_t winner = pick_qos_winner(candidates, outcomes);
  EXPECT_NE(winner, 1u);
}

TEST(PickQosWinner, TieBreaksOnFitnessThenCostThenIndex) {
  // Equal missed counts: scalar fitness decides; then cost; then the
  // lower slot, so selection is deterministic under exact duplicates.
  const std::vector<Individual> by_fitness{point(10.0, 9.0),
                                           point(10.0, 8.0)};
  const std::vector<QosOutcome> same{outcome(0, 3.0), outcome(0, 3.0)};
  EXPECT_EQ(pick_qos_winner(by_fitness, same), 1u);

  const std::vector<Individual> equal_fitness{point(10.0, 8.0),
                                              point(10.0, 8.0)};
  const std::vector<QosOutcome> by_cost{outcome(0, 3.0), outcome(0, 2.0)};
  EXPECT_EQ(pick_qos_winner(equal_fitness, by_cost), 1u);
  EXPECT_EQ(pick_qos_winner(equal_fitness, same), 0u);
}

// ----------------------------------------------------------- admission --

TEST(Admission, DisabledAcceptsEverything) {
  AdmissionController off(AdmissionConfig{});
  EXPECT_EQ(off.admit(0.1, 50.0, 1e9, 1, 0.0, 10.0),
            AdmissionDecision::kAccept);
  EXPECT_EQ(off.stats().accepted, 1);
}

TEST(Admission, BudgetGateRejectsExhaustedAccounts) {
  AdmissionController admission(AdmissionConfig{.enabled = true});
  EXPECT_EQ(admission.admit(kInf, 5.0, 0.0, 1, 15.0, 10.0),
            AdmissionDecision::kAccept);
  EXPECT_DOUBLE_EQ(admission.spent(1), 10.0);
  EXPECT_EQ(admission.admit(kInf, 5.0, 0.0, 1, 15.0, 10.0),
            AdmissionDecision::kReject);
  EXPECT_EQ(admission.stats().rejected_budget, 1);
  // Another user's account is untouched; anonymous jobs are never charged.
  EXPECT_EQ(admission.admit(kInf, 5.0, 0.0, 2, 15.0, 10.0),
            AdmissionDecision::kAccept);
  EXPECT_EQ(admission.admit(kInf, 5.0, 0.0, -1, 15.0, 10.0),
            AdmissionDecision::kAccept);
  EXPECT_DOUBLE_EQ(admission.spent(-1), 0.0);
}

TEST(Admission, DoomedJobsDegradeAndShedOnlyUnderOverload) {
  AdmissionController admission(
      AdmissionConfig{.enabled = true, .overload_backlog = 5.0});
  // Doomed (slack 1 < best ETC 10) but the grid is calm: degrade.
  EXPECT_EQ(admission.admit(1.0, 10.0, 2.0, -1, -1.0, 0.0),
            AdmissionDecision::kBestEffort);
  EXPECT_EQ(admission.stats().degraded, 1);
  // Doomed AND overloaded: shed.
  EXPECT_EQ(admission.admit(1.0, 10.0, 50.0, -1, -1.0, 0.0),
            AdmissionDecision::kReject);
  EXPECT_EQ(admission.stats().rejected_overload, 1);
  // A feasible deadline sails through even under overload.
  EXPECT_EQ(admission.admit(100.0, 10.0, 50.0, -1, -1.0, 0.0),
            AdmissionDecision::kAccept);
  // Best-effort jobs are never shed, whatever the backlog.
  EXPECT_EQ(admission.admit(kInf, 10.0, 1e9, -1, -1.0, 0.0),
            AdmissionDecision::kAccept);
}

// --------------------------------------------------- latency histogram --

TEST(LatencyHistogram, EmptyAnswersZero) {
  const LatencyHistogram hist;
  EXPECT_TRUE(hist.empty());
  EXPECT_DOUBLE_EQ(hist.p50(), 0.0);
  EXPECT_DOUBLE_EQ(hist.p99(), 0.0);
}

TEST(LatencyHistogram, PercentilesLandWithinBucketResolution) {
  LatencyHistogram hist;
  for (int i = 0; i < 1'000; ++i) hist.add(42.0);
  EXPECT_EQ(hist.count(), 1'000u);
  // ~15% geometric bucket width: the midpoint answer must stay close.
  EXPECT_NEAR(hist.p50(), 42.0, 0.16 * 42.0);
  EXPECT_NEAR(hist.p99(), 42.0, 0.16 * 42.0);
}

TEST(LatencyHistogram, TailPercentileDominatesTheMedian) {
  LatencyHistogram hist;
  for (int i = 0; i < 90; ++i) hist.add(1.0);
  for (int i = 0; i < 10; ++i) hist.add(1'000.0);
  EXPECT_NEAR(hist.p50(), 1.0, 0.16);
  EXPECT_GT(hist.p99(), 100.0);
}

TEST(LatencyHistogram, ClampsOutOfRangeSamplesInsteadOfDropping) {
  LatencyHistogram hist;
  hist.add(-5.0);
  hist.add(std::numeric_limits<double>::quiet_NaN());
  hist.add(1e12);
  EXPECT_EQ(hist.count(), 3u);
  EXPECT_LE(hist.percentile(0.0), LatencyHistogram::kMinValue * 1.2);
  EXPECT_GE(hist.p99(), LatencyHistogram::kMaxValue * 0.8);
}

TEST(LatencyHistogram, MergeSumsCounts) {
  LatencyHistogram a;
  LatencyHistogram b;
  for (int i = 0; i < 10; ++i) a.add(1.0);
  for (int i = 0; i < 10; ++i) b.add(100.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 20u);
  EXPECT_NEAR(a.percentile(25.0), 1.0, 0.16);
  EXPECT_NEAR(a.percentile(75.0), 100.0, 16.0);
}

// -------------------------------------------- class-mix size scaling --

TEST(ClassMixWorkload, SizeScalesMultiplyPerClassSizes) {
  // Same seeds through the scaled and unscaled wrapper: arrivals and class
  // draws are identical, so each job's size must differ by exactly its
  // class's scale.
  Rng arrivals_a(21);
  Rng sizes_a(22);
  ClassMixWorkload plain(
      std::make_shared<PoissonWorkload>(1.0, LogNormalSize{}), {1.0, 1.0});
  const std::vector<TraceJob> bare = plain.generate(500.0, arrivals_a,
                                                    sizes_a);
  Rng arrivals_b(21);
  Rng sizes_b(22);
  ClassMixWorkload scaled(
      std::make_shared<PoissonWorkload>(1.0, LogNormalSize{}), {1.0, 1.0},
      {1.0, 10.0});
  const std::vector<TraceJob> heavy = scaled.generate(500.0, arrivals_b,
                                                      sizes_b);
  ASSERT_EQ(bare.size(), heavy.size());
  int scaled_jobs = 0;
  for (std::size_t i = 0; i < bare.size(); ++i) {
    EXPECT_EQ(bare[i].arrival, heavy[i].arrival);
    EXPECT_EQ(bare[i].job_class, heavy[i].job_class);
    const double scale = heavy[i].job_class == 1 ? 10.0 : 1.0;
    EXPECT_DOUBLE_EQ(heavy[i].workload_mi, scale * bare[i].workload_mi);
    if (heavy[i].job_class == 1) ++scaled_jobs;
  }
  EXPECT_GT(scaled_jobs, 0) << "class 1 never drawn; scaling untested";
}

TEST(ClassMixWorkload, RejectsBadSizeScales) {
  const auto base = std::make_shared<PoissonWorkload>(1.0, LogNormalSize{});
  const std::vector<double> weights{1.0, 1.0};
  EXPECT_THROW(ClassMixWorkload(base, weights, {1.0}),
               std::invalid_argument);  // one scale per weight
  EXPECT_THROW(ClassMixWorkload(base, weights, {1.0, 0.0}),
               std::invalid_argument);
  EXPECT_THROW(ClassMixWorkload(base, weights, {1.0, -2.0}),
               std::invalid_argument);
  EXPECT_THROW(ClassMixWorkload(base, weights, {1.0, kInf}),
               std::invalid_argument);
}

// -------------------------------------------------------- qos workload --

TEST(QosWorkload, StampsDeadlinesAtTheConfiguredFractionAndSlack) {
  QosWorkloadConfig config;
  config.deadline_fraction = 0.5;
  config.slack_min = 2.0;
  config.slack_max = 3.0;
  config.reference_mips = 1'000.0;
  QosWorkload qos(std::make_shared<PoissonWorkload>(1.0, LogNormalSize{}),
                  config);
  EXPECT_EQ(qos.name(), "qos(poisson)");
  Rng arrivals(31);
  Rng sizes(32);
  const std::vector<TraceJob> jobs = qos.generate(2'000.0, arrivals, sizes);
  ASSERT_GT(jobs.size(), 500u);
  int with_deadline = 0;
  for (const TraceJob& job : jobs) {
    if (job.deadline < 0) continue;
    ++with_deadline;
    const double reference = job.workload_mi / config.reference_mips;
    const double slack = (job.deadline - job.arrival) / reference;
    EXPECT_GE(slack, config.slack_min - 1e-9);
    EXPECT_LE(slack, config.slack_max + 1e-9);
  }
  const double fraction = static_cast<double>(with_deadline) /
                          static_cast<double>(jobs.size());
  EXPECT_NEAR(fraction, 0.5, 0.06);
}

TEST(QosWorkload, AttributesUsersAndBudgets) {
  QosWorkloadConfig config;
  config.num_users = 3;
  config.user_budget = 50.0;
  QosWorkload qos(std::make_shared<PoissonWorkload>(1.0, LogNormalSize{}),
                  config);
  Rng arrivals(41);
  Rng sizes(42);
  for (const TraceJob& job : qos.generate(500.0, arrivals, sizes)) {
    EXPECT_GE(job.user, 0);
    EXPECT_LT(job.user, 3);
    EXPECT_DOUBLE_EQ(job.budget, 50.0);
  }
  QosWorkload anonymous(
      std::make_shared<PoissonWorkload>(1.0, LogNormalSize{}),
      QosWorkloadConfig{});
  Rng arrivals_b(41);
  Rng sizes_b(42);
  for (const TraceJob& job : anonymous.generate(500.0, arrivals_b, sizes_b)) {
    EXPECT_EQ(job.user, -1);
    EXPECT_DOUBLE_EQ(job.budget, -1.0);
  }
}

TEST(QosWorkload, WrappingDoesNotPerturbTheBaseStream) {
  Rng arrivals_a(51);
  Rng sizes_a(52);
  PoissonWorkload plain(1.0, LogNormalSize{});
  const std::vector<TraceJob> bare = plain.generate(300.0, arrivals_a,
                                                    sizes_a);
  Rng arrivals_b(51);
  Rng sizes_b(52);
  QosWorkload qos(std::make_shared<PoissonWorkload>(1.0, LogNormalSize{}),
                  QosWorkloadConfig{});
  const std::vector<TraceJob> annotated = qos.generate(300.0, arrivals_b,
                                                       sizes_b);
  ASSERT_EQ(bare.size(), annotated.size());
  for (std::size_t i = 0; i < bare.size(); ++i) {
    EXPECT_EQ(bare[i].arrival, annotated[i].arrival);
    EXPECT_EQ(bare[i].workload_mi, annotated[i].workload_mi);
  }
}

TEST(QosWorkload, GenerationIsDeterministicInTheSeed) {
  QosWorkloadConfig config;
  config.num_users = 2;
  config.user_budget = 10.0;
  const auto make = [&] {
    return QosWorkload(
        std::make_shared<PoissonWorkload>(1.0, LogNormalSize{}), config);
  };
  Rng arrivals_a(61);
  Rng sizes_a(62);
  Rng arrivals_b(61);
  Rng sizes_b(62);
  QosWorkload a = make();
  QosWorkload b = make();
  EXPECT_EQ(a.generate(400.0, arrivals_a, sizes_a),
            b.generate(400.0, arrivals_b, sizes_b));
}

// ------------------------------------------- portfolio winner selection --

TEST(Portfolio, AllInfiniteDeadlinesFallBackToTheScalarWinner) {
  // The integration contract behind qos_active(): a QoS vector with no
  // finite deadline must leave the portfolio's winner — and its schedule —
  // bitwise identical to the no-QoS run.
  const EtcMatrix etc = small_instance(24, 6);
  PortfolioConfig config;
  config.budget_ms = 60'000.0;
  config.threads = 2;
  config.member_stop = StopCondition{.max_evaluations = 150};
  config.seed = 11;

  PortfolioBatchScheduler plain(config,
                                PortfolioBatchScheduler::default_members(
                                    config));
  const Schedule baseline = plain.schedule_batch(etc);

  BatchContext context = BatchContext::identity(etc);
  context.job_deadlines.assign(static_cast<std::size_t>(etc.num_jobs()),
                               kNoDeadline);
  PortfolioBatchScheduler with_qos(config,
                                   PortfolioBatchScheduler::default_members(
                                       config));
  const Schedule annotated = with_qos.schedule_batch(etc, context);

  EXPECT_EQ(baseline, annotated);
  ASSERT_FALSE(with_qos.activations().empty());
  EXPECT_FALSE(with_qos.activations().back().qos_pareto);
}

TEST(Portfolio, FiniteDeadlinesSwitchOnParetoSelection) {
  const EtcMatrix etc = small_instance(24, 6);
  PortfolioConfig config;
  config.budget_ms = 60'000.0;
  config.threads = 2;
  config.member_stop = StopCondition{.max_evaluations = 150};
  config.seed = 11;
  BatchContext context = BatchContext::identity(etc);
  context.job_deadlines.assign(static_cast<std::size_t>(etc.num_jobs()),
                               kNoDeadline);
  context.job_deadlines[0] = 1e-6;  // one doomed promise flips the switch
  PortfolioBatchScheduler portfolio(
      config, PortfolioBatchScheduler::default_members(config));
  const Schedule plan = portfolio.schedule_batch(etc, context);
  EXPECT_TRUE(plan.complete(etc.num_machines()));
  ASSERT_FALSE(portfolio.activations().empty());
  const ActivationRecord& record = portfolio.activations().back();
  EXPECT_TRUE(record.qos_pareto);
  EXPECT_GE(record.winner_missed, 1);  // the doomed row cannot be saved
}

// ------------------------------------------------- service integration --

TEST(Service, AdmissionShedsDoomedJobsUnderOverload) {
  EtcMatrix etc(8, 4);
  for (JobId job = 0; job < etc.num_jobs(); ++job) {
    for (MachineId machine = 0; machine < etc.num_machines(); ++machine) {
      etc.set(job, machine, 10.0);
    }
  }
  for (MachineId machine = 0; machine < etc.num_machines(); ++machine) {
    etc.set_ready_time(machine, 50.0);  // mean backlog 50 >> threshold
  }
  BatchContext context = BatchContext::identity(etc);
  context.job_deadlines.assign(8, kNoDeadline);
  for (std::size_t row = 0; row < 4; ++row) {
    context.job_deadlines[row] = 5.0;  // slack 5 < best ETC 10: doomed
  }
  ServiceConfig config = deterministic_config(2);
  config.admission.enabled = true;
  config.admission.overload_backlog = 10.0;
  GridSchedulingService service(config);
  const Schedule plan = service.schedule_batch(etc, context);
  ASSERT_TRUE(plan.complete(etc.num_machines()));
  for (JobId job = 0; job < 4; ++job) {
    EXPECT_EQ(plan[job], Schedule::kRejected) << "doomed row " << job;
  }
  for (JobId job = 4; job < 8; ++job) {
    EXPECT_GE(plan[job], 0) << "best-effort row " << job;
    EXPECT_LT(plan[job], etc.num_machines());
  }
  EXPECT_EQ(service.admission_stats().rejected_overload, 4);
  ASSERT_FALSE(service.service_activations().empty());
  EXPECT_EQ(service.service_activations().back().jobs_rejected, 4);
}

TEST(Service, AdmissionDegradesDoomedJobsWhenTheGridIsCalm) {
  EtcMatrix etc(6, 4);
  for (JobId job = 0; job < etc.num_jobs(); ++job) {
    for (MachineId machine = 0; machine < etc.num_machines(); ++machine) {
      etc.set(job, machine, 10.0);
    }
  }
  BatchContext context = BatchContext::identity(etc);
  context.job_deadlines.assign(6, kNoDeadline);
  context.job_deadlines[0] = 5.0;  // doomed but backlog is zero
  ServiceConfig config = deterministic_config(2);
  config.admission.enabled = true;
  config.admission.overload_backlog = 10.0;
  GridSchedulingService service(config);
  const Schedule plan = service.schedule_batch(etc, context);
  // Degraded, not shed: the job still runs somewhere.
  EXPECT_GE(plan[0], 0);
  EXPECT_EQ(service.admission_stats().degraded, 1);
  EXPECT_EQ(service.admission_stats().rejected(), 0);
}

TEST(Service, AdmissionChargesBudgetsPerUser) {
  EtcMatrix etc(3, 2);
  for (JobId job = 0; job < etc.num_jobs(); ++job) {
    for (MachineId machine = 0; machine < etc.num_machines(); ++machine) {
      etc.set(job, machine, 10.0);
    }
  }
  BatchContext context = BatchContext::identity(etc);
  context.machine_cost_rates = {1.0, 1.0};  // cost estimate = 10 per job
  context.job_users = {7, 7, 8};
  context.job_budgets = {15.0, 15.0, 15.0};
  ServiceConfig config = deterministic_config(2);
  config.admission.enabled = true;
  GridSchedulingService service(config);
  const Schedule plan = service.schedule_batch(etc, context);
  EXPECT_GE(plan[0], 0);                       // user 7 spends 10 of 15
  EXPECT_EQ(plan[1], Schedule::kRejected);     // 10 + 10 > 15: shed
  EXPECT_GE(plan[2], 0);                       // user 8's account is fresh
  EXPECT_EQ(service.admission_stats().rejected_budget, 1);
}

TEST(Service, RejectsMismatchedQosVectors) {
  const EtcMatrix etc = small_instance(4, 4);
  GridSchedulingService service(deterministic_config(2));
  BatchContext context = BatchContext::identity(etc);
  context.job_deadlines.assign(3, kNoDeadline);  // 3 != 4 rows
  EXPECT_THROW((void)service.schedule_batch(etc, context),
               std::invalid_argument);
  context = BatchContext::identity(etc);
  context.machine_cost_rates.assign(5, 1.0);  // 5 != 4 columns
  EXPECT_THROW((void)service.schedule_batch(etc, context),
               std::invalid_argument);
  context = BatchContext::identity(etc);
  context.job_users.assign(4, 0);
  context.job_budgets.assign(2, 1.0);  // 2 != 4 rows
  EXPECT_THROW((void)service.schedule_batch(etc, context),
               std::invalid_argument);
}

SimConfig qos_sim() {
  SimConfig config;
  config.horizon = 300.0;
  config.arrival_rate = 0.5;
  config.scheduler_period = 50.0;
  config.num_machines = 8;
  config.machine_mtbf = 150.0;
  config.machine_mttr = 40.0;
  config.num_job_classes = 2;
  config.class_speedup = 3.0;
  config.machine_cost_rate = 1.0;
  config.seed = 23;
  QosWorkloadConfig qos;
  qos.deadline_fraction = 0.6;
  qos.num_users = 2;
  config.workload = std::make_shared<QosWorkload>(
      std::make_shared<PoissonWorkload>(
          config.arrival_rate,
          LogNormalSize{config.workload_log_mean, config.workload_log_sigma}),
      qos);
  return config;
}

TEST(Service, QosRunUnderChurnReplaysBitForBit) {
  // The PR's record -> replay contract: deadline-aware routing, admission,
  // budgets, classes, churn and stealing all on; serialize the trace
  // through CSV text and demand the identical run back — deadlines,
  // rejections, costs and all.
  const SimConfig sim_config = qos_sim();
  ServiceConfig config = deterministic_config(2);
  config.routing = RoutingKind::kDeadlineAware;
  config.drain_steal = true;
  config.admission.enabled = true;
  config.admission.overload_backlog = 30.0;
  config.member_stop = StopCondition{.max_evaluations = 120};

  GridSimulator sim(sim_config);
  GridSchedulingService service(config);
  const ShardedSimReport report = run_sharded(sim, service);
  ASSERT_GT(report.global.jobs_arrived, 0);
  ASSERT_GT(report.global_slo.deadline_jobs, 0);
  EXPECT_GT(report.global.total_cost, 0.0);
  // Lossless accounting: every arrival either completed or was rejected.
  EXPECT_EQ(report.global.jobs_completed + report.global.jobs_rejected,
            report.global.jobs_arrived);

  std::ostringstream out;
  write_trace(out, sim.arrival_trace());
  std::istringstream in(out.str());
  const std::vector<TraceJob> replayed_trace = read_trace(in);
  ASSERT_EQ(replayed_trace.size(), sim.arrival_trace().size());
  for (std::size_t i = 0; i < replayed_trace.size(); ++i) {
    EXPECT_EQ(replayed_trace[i], sim.arrival_trace()[i])
        << "trace job " << i << " mutated in the CSV";
  }

  SimConfig replay_config = sim_config;
  replay_config.workload =
      std::make_shared<TraceWorkloadSource>(replayed_trace);
  GridSimulator replayed(replay_config);
  GridSchedulingService fresh(config);
  const ShardedSimReport replay = run_sharded(replayed, fresh);

  EXPECT_EQ(replay.global.jobs_completed, report.global.jobs_completed);
  EXPECT_EQ(replay.global.jobs_rejected, report.global.jobs_rejected);
  EXPECT_EQ(replay.global.deadline_missed, report.global.deadline_missed);
  EXPECT_EQ(replay.global.total_cost, report.global.total_cost);
  EXPECT_EQ(replay.global_slo.missed, report.global_slo.missed);
  const std::vector<SimJobRecord>& recorded = sim.job_records();
  ASSERT_EQ(replayed.job_records().size(), recorded.size());
  for (std::size_t i = 0; i < recorded.size(); ++i) {
    const SimJobRecord& a = recorded[i];
    const SimJobRecord& b = replayed.job_records()[i];
    EXPECT_EQ(a.machine, b.machine) << "job " << i;
    EXPECT_EQ(a.attempts, b.attempts) << "job " << i;
    EXPECT_EQ(a.rejected, b.rejected) << "job " << i;
    EXPECT_DOUBLE_EQ(a.start, b.start) << "job " << i;
    EXPECT_DOUBLE_EQ(a.finish, b.finish) << "job " << i;
  }
}

TEST(Service, ChurnNeverStrandsARoutedJob) {
  // Regression for the stranded-row guard: under heavy churn (machines
  // dying mid-activation, re-queued jobs re-routed into a shrinking pool)
  // every arrival must still complete or be explicitly rejected — a plan
  // row silently left unassigned would surface here as a lost job.
  SimConfig sim_config = qos_sim();
  sim_config.machine_mtbf = 60.0;
  sim_config.machine_mttr = 30.0;
  sim_config.num_machines = 6;
  ServiceConfig config = deterministic_config(3);
  config.routing = RoutingKind::kDeadlineAware;
  config.admission.enabled = true;
  config.admission.overload_backlog = 20.0;
  config.member_stop = StopCondition{.max_evaluations = 100};
  GridSimulator sim(sim_config);
  GridSchedulingService service(config);
  const ShardedSimReport report = run_sharded(sim, service);
  ASSERT_GT(report.global.jobs_arrived, 0);
  EXPECT_EQ(report.global.jobs_completed + report.global.jobs_rejected,
            report.global.jobs_arrived);
  for (const SimJobRecord& record : sim.job_records()) {
    EXPECT_TRUE(record.finish >= 0 || record.rejected)
        << "job " << record.id << " stranded";
  }
}

TEST(ShardedDriver, PerClassSlosFollowTheSimulatorsAccounting) {
  const SimConfig sim_config = qos_sim();
  ServiceConfig config = deterministic_config(2);
  config.routing = RoutingKind::kDeadlineAware;
  config.member_stop = StopCondition{.max_evaluations = 100};
  GridSimulator sim(sim_config);
  GridSchedulingService service(config);
  const ShardedSimReport report = run_sharded(sim, service);
  ASSERT_GT(report.global_slo.deadline_jobs, 0);
  // The driver's SLO view and the simulator's metrics must agree exactly.
  EXPECT_EQ(report.global_slo.deadline_jobs, report.global.deadline_jobs);
  EXPECT_EQ(report.global_slo.missed, report.global.deadline_missed);
  ASSERT_EQ(report.per_class_slo.size(), 2u);
  int class_deadline_jobs = 0;
  int class_missed = 0;
  for (const ClassSlo& slo : report.per_class_slo) {
    class_deadline_jobs += slo.deadline_jobs;
    class_missed += slo.missed;
    EXPECT_GE(slo.tardiness_p99, slo.tardiness_p50);
    EXPECT_GE(slo.miss_rate(), 0.0);
    EXPECT_LE(slo.miss_rate(), 1.0);
  }
  EXPECT_EQ(class_deadline_jobs, report.global_slo.deadline_jobs);
  EXPECT_EQ(class_missed, report.global_slo.missed);
}

}  // namespace
}  // namespace gridsched
