// Observability layer: JSON round trips, trace span balance, registry
// snapshot determinism, histogram export, and the bench_diff regression
// gate (including the injected-synthetic-regression acceptance check).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "etc/instance.h"
#include "obs/bench_diff.h"
#include "obs/bench_report.h"
#include "obs/json.h"
#include "obs/metrics_registry.h"
#include "obs/trace_recorder.h"
#include "service/grid_scheduling_service.h"

namespace gridsched {
namespace {

using obs::JsonValue;

// ------------------------------------------------------------------ json --

TEST(Json, ParsesAndDumpsNestedDocument) {
  const std::string text =
      R"({"a": 1.5, "b": [true, null, "x"], "c": {"d": -2e3}})";
  const auto parsed = JsonValue::parse(text);
  ASSERT_TRUE(parsed.has_value());
  ASSERT_TRUE(parsed->is_object());
  EXPECT_DOUBLE_EQ(parsed->find("a")->as_number(), 1.5);
  const JsonValue* b = parsed->find("b");
  ASSERT_TRUE(b != nullptr && b->is_array());
  ASSERT_EQ(b->as_array().size(), 3u);
  EXPECT_TRUE(b->as_array()[0].as_bool());
  EXPECT_TRUE(b->as_array()[1].is_null());
  EXPECT_EQ(b->as_array()[2].as_string(), "x");
  EXPECT_DOUBLE_EQ(parsed->find("c")->find("d")->as_number(), -2000.0);

  // Dump -> parse is stable (insertion order preserved).
  const auto reparsed = JsonValue::parse(parsed->dump());
  ASSERT_TRUE(reparsed.has_value());
  EXPECT_EQ(reparsed->dump(), parsed->dump());
}

TEST(Json, StringEscapesRoundTrip) {
  JsonValue doc;
  doc.set("k", JsonValue(std::string("a\"b\\c\nd\te\x01")));
  const auto parsed = JsonValue::parse(doc.dump());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->find("k")->as_string(), "a\"b\\c\nd\te\x01");
}

TEST(Json, DecodesUnicodeEscapesToUtf8) {
  const auto escaped = JsonValue::parse("[\"A\\u00e9\"]");
  ASSERT_TRUE(escaped.has_value());
  EXPECT_EQ(escaped->as_array()[0].as_string(), "A\xc3\xa9");
  const auto parsed = JsonValue::parse(R"(["Aé"])");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->as_array()[0].as_string(), "A\xc3\xa9");
}

TEST(Json, RejectsMalformedInput) {
  std::string error;
  EXPECT_FALSE(JsonValue::parse("{", &error).has_value());
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(JsonValue::parse("[1,]").has_value());
  EXPECT_FALSE(JsonValue::parse("true false").has_value());  // trailing
  EXPECT_FALSE(JsonValue::parse("nul").has_value());
  EXPECT_FALSE(JsonValue::parse("").has_value());
}

TEST(Json, NonFiniteNumbersSerializeAsNull) {
  EXPECT_EQ(obs::json_number(std::numeric_limits<double>::quiet_NaN()),
            "null");
  EXPECT_EQ(obs::json_number(std::numeric_limits<double>::infinity()),
            "null");
  EXPECT_EQ(obs::json_number(2.5), "2.5");
}

// ----------------------------------------------------------------- trace --

struct EventView {
  std::string name;
  std::string cat;
  std::string phase;
  std::int64_t tid = 0;
};

std::vector<EventView> parse_trace(const std::string& text) {
  const auto parsed = JsonValue::parse(text);
  EXPECT_TRUE(parsed.has_value()) << "trace output is not valid JSON";
  std::vector<EventView> events;
  if (!parsed.has_value()) return events;
  const JsonValue* list = parsed->find("traceEvents");
  EXPECT_TRUE(list != nullptr && list->is_array());
  if (list == nullptr || !list->is_array()) return events;
  for (const JsonValue& entry : list->as_array()) {
    EventView view;
    view.name = entry.find("name")->as_string();
    view.phase = entry.find("ph")->as_string();
    if (const JsonValue* cat = entry.find("cat")) view.cat = cat->as_string();
    view.tid = static_cast<std::int64_t>(entry.find("tid")->as_number());
    events.push_back(std::move(view));
  }
  return events;
}

/// Asserts B/E stack discipline per tid: every end closes the most recent
/// open begin of the same name on that thread.
void expect_balanced(const std::vector<EventView>& events) {
  std::map<std::int64_t, std::vector<std::string>> stacks;
  for (const EventView& event : events) {
    if (event.phase == "B") {
      stacks[event.tid].push_back(event.name);
    } else if (event.phase == "E") {
      auto& stack = stacks[event.tid];
      ASSERT_FALSE(stack.empty())
          << "'" << event.name << "' ended with no open span on tid "
          << event.tid;
      EXPECT_EQ(stack.back(), event.name) << "mismatched span nesting";
      stack.pop_back();
    }
  }
  for (const auto& [tid, stack] : stacks) {
    EXPECT_TRUE(stack.empty()) << stack.size() << " unclosed span(s) on tid "
                               << tid;
  }
}

TEST(TraceRecorder, NullRecorderSpansAreNoOps) {
  const obs::TraceSpan span(nullptr, "anything", "cat", {{"k", 1}});
  // Destruction must be a no-op too; nothing to assert beyond not crashing.
}

TEST(TraceRecorder, SingleThreadSpansBalanceAndNest) {
  obs::TraceRecorder recorder;
  {
    const obs::TraceSpan outer(&recorder, "activation", "service",
                               {{"jobs", 12}});
    {
      const obs::TraceSpan inner(&recorder, "shard_race", "shard",
                                 {{"shard", 0}});
    }
    recorder.instant("split", "resize", {{"from", 1}, {"to", 2}});
  }
  recorder.flush();
  EXPECT_EQ(recorder.event_count(), 5u);  // 2 B + 2 E + 1 i

  std::ostringstream out;
  recorder.write(out);
  const std::vector<EventView> events = parse_trace(out.str());
  ASSERT_EQ(events.size(), 5u);
  expect_balanced(events);
  // One thread recorded everything, in scope order.
  EXPECT_EQ(events[0].name, "activation");
  EXPECT_EQ(events[0].phase, "B");
  EXPECT_EQ(events[1].name, "shard_race");
  EXPECT_EQ(events[2].phase, "E");
  EXPECT_EQ(events[3].name, "split");
  EXPECT_EQ(events[3].phase, "i");
  EXPECT_EQ(events[4].name, "activation");
  EXPECT_EQ(events[4].phase, "E");
}

TEST(TraceRecorder, ConcurrentThreadsKeepPerThreadOrder) {
  obs::TraceRecorder recorder;
  constexpr int kThreads = 4;
  constexpr int kSpansPerThread = 50;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&recorder, t] {
      for (int i = 0; i < kSpansPerThread; ++i) {
        const obs::TraceSpan span(&recorder, "work", "test",
                                  {{"thread", t}, {"i", i}});
        recorder.instant("tick", "test");
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  recorder.flush();
  EXPECT_EQ(recorder.event_count(),
            static_cast<std::size_t>(kThreads * kSpansPerThread * 3));

  std::ostringstream out;
  recorder.write(out);
  const std::vector<EventView> events = parse_trace(out.str());
  expect_balanced(events);
  std::map<std::int64_t, int> per_tid;
  for (const EventView& event : events) ++per_tid[event.tid];
  EXPECT_EQ(per_tid.size(), static_cast<std::size_t>(kThreads));
  for (const auto& [tid, count] : per_tid) {
    EXPECT_EQ(count, kSpansPerThread * 3) << "tid " << tid;
  }
}

TEST(TraceRecorder, FlushMidSpanSplitsBeginAndEndAcrossFlushes) {
  obs::TraceRecorder recorder;
  recorder.begin("span", "test");
  recorder.flush();
  EXPECT_EQ(recorder.event_count(), 1u);
  recorder.end("span");
  recorder.flush();
  EXPECT_EQ(recorder.event_count(), 2u);
  std::ostringstream out;
  recorder.write(out);
  expect_balanced(parse_trace(out.str()));
}

// -------------------------------------------------------------- registry --

TEST(MetricsRegistry, HandlesAreStableAndFindable) {
  obs::MetricsRegistry registry;
  obs::Counter& counter = registry.counter("service.jobs_routed");
  counter.add(3);
  EXPECT_EQ(&registry.counter("service.jobs_routed"), &counter);
  ASSERT_NE(registry.find_counter("service.jobs_routed"), nullptr);
  EXPECT_EQ(registry.find_counter("service.jobs_routed")->value(), 3);
  EXPECT_EQ(registry.find_counter("absent"), nullptr);
  EXPECT_EQ(registry.find_gauge("absent"), nullptr);
  EXPECT_EQ(registry.find_histogram("absent"), nullptr);
}

TEST(MetricsRegistry, SnapshotSortsKeysAndCarriesAllKinds) {
  obs::MetricsRegistry registry;
  registry.counter("z.last").add(1);
  registry.counter("a.first").add(2);
  registry.gauge("m.gauge").set(0.5);
  registry.histogram("h.latency").add(4.0);

  const JsonValue snap = registry.snapshot();
  const JsonValue* counters = snap.find("counters");
  ASSERT_TRUE(counters != nullptr && counters->is_object());
  ASSERT_EQ(counters->as_object().size(), 2u);
  EXPECT_EQ(counters->as_object()[0].first, "a.first");
  EXPECT_EQ(counters->as_object()[1].first, "z.last");
  EXPECT_DOUBLE_EQ(snap.find("gauges")->find("m.gauge")->as_number(), 0.5);
  const JsonValue* latency = snap.find("histograms")->find("h.latency");
  ASSERT_NE(latency, nullptr);
  EXPECT_DOUBLE_EQ(latency->find("count")->as_number(), 1.0);
  EXPECT_DOUBLE_EQ(latency->find("mean")->as_number(), 4.0);
}

TEST(MetricsRegistry, JsonlLinePrependsExtraAndParses) {
  obs::MetricsRegistry registry;
  registry.counter("c").add(7);
  JsonValue extra;
  extra.set("activation", JsonValue(3.0));
  std::ostringstream out;
  registry.write_jsonl_line(out, extra);
  const std::string line = out.str();
  ASSERT_FALSE(line.empty());
  EXPECT_EQ(line.back(), '\n');
  const auto parsed = JsonValue::parse(line);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->as_object().front().first, "activation");
  EXPECT_DOUBLE_EQ(parsed->find("counters")->find("c")->as_number(), 7.0);
}

TEST(MetricsRegistry, ConcurrentCountersLoseNothing) {
  obs::MetricsRegistry registry;
  obs::Counter& counter = registry.counter("hits");
  constexpr int kThreads = 4;
  constexpr int kAddsPerThread = 10'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kAddsPerThread; ++i) counter.add();
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(counter.value(), kThreads * kAddsPerThread);
}

// ------------------------------------------------------ histogram export --

TEST(HistogramJson, RoundTripsBitExactly) {
  LatencyHistogram histogram;
  for (double v : {0.002, 0.5, 7.0, 300.0, 2e5}) histogram.add(v);
  const auto rebuilt = obs::histogram_from_json(
      obs::histogram_to_json(histogram));
  ASSERT_TRUE(rebuilt.has_value());
  EXPECT_EQ(*rebuilt, histogram);
  EXPECT_EQ(rebuilt->overflow_count(), 1u);
}

TEST(HistogramJson, EmptyHistogramRoundTrips) {
  const auto rebuilt =
      obs::histogram_from_json(obs::histogram_to_json(LatencyHistogram{}));
  ASSERT_TRUE(rebuilt.has_value());
  EXPECT_TRUE(rebuilt->empty());
}

TEST(HistogramJson, RejectsForeignOrCorruptDocuments) {
  EXPECT_FALSE(obs::histogram_from_json(JsonValue()).has_value());

  LatencyHistogram histogram;
  histogram.add(1.0);
  // A histogram recorded under different constants must not be adopted.
  JsonValue wrong_range = obs::histogram_to_json(histogram);
  wrong_range.as_object()[0].second = JsonValue(1e-6);  // "min"
  EXPECT_FALSE(obs::histogram_from_json(wrong_range).has_value());

  // Bucket totals disagreeing with the recorded count means corruption.
  JsonValue wrong_count = obs::histogram_to_json(histogram);
  wrong_count.as_object()[3].second = JsonValue(5.0);  // "count"
  EXPECT_FALSE(obs::histogram_from_json(wrong_count).has_value());

  // Non-integral bucket occupancy is malformed. "buckets" is the last
  // member histogram_to_json writes.
  JsonValue fractional = obs::histogram_to_json(histogram);
  fractional.as_object().back().second.as_array()[0].as_array()[1] =
      JsonValue(0.5);
  EXPECT_FALSE(obs::histogram_from_json(fractional).has_value());
}

// ------------------------------------------------------------ bench_diff --

JsonValue make_bench(const std::string& bench, bool ok,
                     const std::string& verdicts_json) {
  const std::string text = "{\"bench\": \"" + bench + "\", \"ok\": " +
                           (ok ? "true" : "false") +
                           ", \"verdicts\": " + verdicts_json + "}";
  auto parsed = JsonValue::parse(text);
  EXPECT_TRUE(parsed.has_value()) << text;
  return *parsed;
}

TEST(BenchDiff, ClassifiesMetricNames) {
  const obs::DiffOptions options;
  using obs::MetricClass;
  EXPECT_EQ(obs::classify_metric("makespan", options), MetricClass::kGated);
  EXPECT_EQ(obs::classify_metric("overhead_bound_ms", options),
            MetricClass::kInformational);  // bound echoes configuration
  EXPECT_EQ(obs::classify_metric("activation_wall_ms", options),
            MetricClass::kInformational);  // wall clock, foreign hardware
  EXPECT_EQ(obs::classify_metric("max_overshoot_pct", options),
            MetricClass::kInformational);
  EXPECT_EQ(obs::classify_metric("shed_per_run", options),
            MetricClass::kInformational);
  // Micro-benchmark timings (micro_ops emits *_ns metrics) follow the same
  // rule as *_ms: informational on foreign hardware, gated under
  // --gate-time (the CI micro-ops smoke relies on this).
  EXPECT_EQ(obs::classify_metric("BM_PreviewMove_16_ns", options),
            MetricClass::kInformational);
  EXPECT_EQ(obs::classify_metric("parse_us", options),
            MetricClass::kInformational);
  obs::DiffOptions gate_time = options;
  gate_time.gate_time = true;
  EXPECT_EQ(obs::classify_metric("activation_wall_ms", gate_time),
            MetricClass::kGated);
  EXPECT_EQ(obs::classify_metric("BM_PreviewMove_16_ns", gate_time),
            MetricClass::kGated);
  EXPECT_EQ(obs::classify_metric("offspring_speedup", options),
            MetricClass::kGated);  // a ratio, not a wall-clock time

  EXPECT_TRUE(obs::metric_higher_is_better("speedup_vs_sequential"));
  EXPECT_TRUE(obs::metric_higher_is_better("utilization"));
  EXPECT_TRUE(obs::metric_higher_is_better("best_effort_delta"));
  EXPECT_FALSE(obs::metric_higher_is_better("makespan_pct"));
  EXPECT_FALSE(obs::metric_higher_is_better("miss_pp"));

  // The optimality-gap pair every --gap bench emits (add_gap_metric):
  // the gap itself gates lower-is-better, the bound echo stays
  // informational ("bound" in the name). CI's table2 leg relies on this.
  EXPECT_EQ(obs::classify_metric("cma_makespan_gap_pct", options),
            MetricClass::kGated);
  EXPECT_FALSE(obs::metric_higher_is_better("cma_makespan_gap_pct"));
  EXPECT_EQ(obs::classify_metric("makespan_lower_bound", options),
            MetricClass::kInformational);
}

TEST(BenchReport, AddGapMetricEmitsTheGatedPair) {
  obs::BenchVerdict verdict;
  obs::add_gap_metric(verdict, "cma_makespan", 110.0, 100.0);
  ASSERT_EQ(verdict.metrics.size(), 2u);
  EXPECT_EQ(verdict.metrics[0].first, "cma_makespan_gap_pct");
  EXPECT_DOUBLE_EQ(verdict.metrics[0].second, 10.0);
  EXPECT_EQ(verdict.metrics[1].first, "cma_makespan_lower_bound");
  EXPECT_DOUBLE_EQ(verdict.metrics[1].second, 100.0);

  // A non-positive bound must not fabricate a gated gap: both serialize
  // as null (NaN) instead.
  obs::BenchVerdict degenerate;
  obs::add_gap_metric(degenerate, "x", 5.0, 0.0);
  EXPECT_TRUE(std::isnan(degenerate.metrics[0].second));
  EXPECT_TRUE(std::isnan(degenerate.metrics[1].second));
}

TEST(BenchDiff, InjectedRegressionBeyondToleranceGates) {
  // The acceptance-criteria check: a synthetic 20% makespan regression
  // with no CI companion must exit the diff in the REGRESSION state.
  const JsonValue baseline = make_bench(
      "b", true, R"([{"name": "p", "ok": true,
                      "metrics": {"makespan": 100.0}}])");
  const JsonValue candidate = make_bench(
      "b", true, R"([{"name": "p", "ok": true,
                      "metrics": {"makespan": 120.0}}])");
  const auto report =
      obs::diff_bench_reports(baseline, candidate, obs::DiffOptions{});
  ASSERT_TRUE(report.has_value());
  EXPECT_TRUE(report->regression);
  ASSERT_EQ(report->rows.size(), 1u);
  EXPECT_EQ(report->rows[0].status, "REGRESSION");
  EXPECT_NEAR(report->rows[0].delta_pct, 20.0, 1e-9);

  std::ostringstream out;
  obs::print_diff_report(*report, out);
  EXPECT_NE(out.str().find("bench_diff: REGRESSION"), std::string::npos);
}

TEST(BenchDiff, DriftWithinToleranceIsOk) {
  const JsonValue baseline = make_bench(
      "b", true,
      R"([{"name": "p", "ok": true, "metrics": {"makespan": 100.0}}])");
  const JsonValue candidate = make_bench(
      "b", true,
      R"([{"name": "p", "ok": true, "metrics": {"makespan": 103.0}}])");
  const auto report =
      obs::diff_bench_reports(baseline, candidate, obs::DiffOptions{});
  ASSERT_TRUE(report.has_value());
  EXPECT_FALSE(report->regression);
  EXPECT_EQ(report->rows[0].status, "ok");
}

TEST(BenchDiff, OverlappingCiSuppressesTheRegression) {
  // 20% worse, but both sides carry CI95 half-widths wide enough to
  // overlap — seed noise, not a regression.
  const JsonValue baseline = make_bench(
      "b", true,
      R"([{"name": "p", "ok": true,
           "metrics": {"flowtime": 100.0, "flowtime_ci": 15.0}}])");
  const JsonValue candidate = make_bench(
      "b", true,
      R"([{"name": "p", "ok": true,
           "metrics": {"flowtime": 120.0, "flowtime_ci": 15.0}}])");
  const auto report =
      obs::diff_bench_reports(baseline, candidate, obs::DiffOptions{});
  ASSERT_TRUE(report.has_value());
  EXPECT_FALSE(report->regression);
  ASSERT_EQ(report->rows.size(), 1u);
  ASSERT_TRUE(report->rows[0].ci_overlap.has_value());
  EXPECT_TRUE(*report->rows[0].ci_overlap);
  EXPECT_EQ(report->rows[0].status, "ok");
}

TEST(BenchDiff, DisjointCiKeepsTheRegression) {
  const JsonValue baseline = make_bench(
      "b", true,
      R"([{"name": "p", "ok": true,
           "metrics": {"flowtime": 100.0, "flowtime_ci": 2.0}}])");
  const JsonValue candidate = make_bench(
      "b", true,
      R"([{"name": "p", "ok": true,
           "metrics": {"flowtime": 120.0, "flowtime_ci": 2.0}}])");
  const auto report =
      obs::diff_bench_reports(baseline, candidate, obs::DiffOptions{});
  ASSERT_TRUE(report.has_value());
  EXPECT_TRUE(report->regression);
}

TEST(BenchDiff, HigherIsBetterMetricsGateDownwardMoves) {
  const JsonValue baseline = make_bench(
      "b", true,
      R"([{"name": "p", "ok": true, "metrics": {"speedup": 2.0}}])");
  const JsonValue worse = make_bench(
      "b", true,
      R"([{"name": "p", "ok": true, "metrics": {"speedup": 1.5}}])");
  const auto down =
      obs::diff_bench_reports(baseline, worse, obs::DiffOptions{});
  ASSERT_TRUE(down.has_value());
  EXPECT_TRUE(down->regression);

  const auto up = obs::diff_bench_reports(worse, baseline, obs::DiffOptions{});
  ASSERT_TRUE(up.has_value());
  EXPECT_FALSE(up->regression);
  EXPECT_EQ(up->rows[0].status, "improved");
}

TEST(BenchDiff, OkFlipIsAlwaysARegression) {
  const JsonValue baseline = make_bench(
      "b", true,
      R"([{"name": "p", "ok": true, "metrics": {"makespan": 100.0}}])");
  const JsonValue candidate = make_bench(
      "b", false,
      R"([{"name": "p", "ok": false, "metrics": {"makespan": 100.0}}])");
  const auto report =
      obs::diff_bench_reports(baseline, candidate, obs::DiffOptions{});
  ASSERT_TRUE(report.has_value());
  EXPECT_TRUE(report->regression);
  EXPECT_FALSE(report->notes.empty());
}

TEST(BenchDiff, MissingVerdictsAndMetricsAreNotesNotRegressions) {
  const JsonValue baseline = make_bench(
      "b", true,
      R"([{"name": "gone", "ok": true, "metrics": {"makespan": 1.0}},
          {"name": "p", "ok": true, "metrics": {"old_metric": 1.0}}])");
  const JsonValue candidate = make_bench(
      "b", true,
      R"([{"name": "p", "ok": true, "metrics": {"new_metric": 1.0}},
          {"name": "fresh", "ok": true, "metrics": {}}])");
  const auto report =
      obs::diff_bench_reports(baseline, candidate, obs::DiffOptions{});
  ASSERT_TRUE(report.has_value());
  EXPECT_FALSE(report->regression);
  EXPECT_EQ(report->notes.size(), 4u);  // lost verdict, lost metric,
                                        // new metric, new verdict
}

TEST(BenchDiff, MalformedDocumentsReportAnError) {
  std::string error;
  const auto report = obs::diff_bench_reports(
      JsonValue(), make_bench("b", true, "[]"), obs::DiffOptions{}, &error);
  EXPECT_FALSE(report.has_value());
  EXPECT_NE(error.find("baseline"), std::string::npos);
}

TEST(BenchReport, WritesTheArtifactSchema) {
  obs::BenchReport report;
  report.bench = "demo";
  report.ok = false;
  LatencyHistogram histogram;
  histogram.add(1.0);
  report.verdicts.push_back(obs::BenchVerdict{
      .name = "point",
      .ok = true,
      .metrics = {{"makespan", 12.5},
                  {"bad", std::numeric_limits<double>::quiet_NaN()}},
      .histograms = {{"flow", histogram}}});
  std::ostringstream out;
  report.write(out);
  const auto parsed = JsonValue::parse(out.str());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->find("bench")->as_string(), "demo");
  EXPECT_FALSE(parsed->find("ok")->as_bool());
  const JsonValue& verdict = parsed->find("verdicts")->as_array()[0];
  EXPECT_DOUBLE_EQ(verdict.find("metrics")->find("makespan")->as_number(),
                   12.5);
  EXPECT_TRUE(verdict.find("metrics")->find("bad")->is_null());
  const auto hist =
      obs::histogram_from_json(*verdict.find("histograms")->find("flow"));
  ASSERT_TRUE(hist.has_value());
  EXPECT_EQ(hist->count(), 1u);
}

// ------------------------------------------------- service integration --

EtcMatrix obs_instance(int jobs, int machines) {
  InstanceSpec spec;
  spec.num_jobs = jobs;
  spec.num_machines = machines;
  spec.seed = 17;
  return generate_instance(spec);
}

ServiceConfig traced_config(int shards) {
  ServiceConfig config;
  config.num_shards = shards;
  config.total_budget_ms = 60'000.0;
  config.threads = 2;
  config.member_stop = StopCondition{.max_evaluations = 120};
  config.seed = 11;
  return config;
}

TEST(ServiceObservability, TracedActivationEmitsNestedBalancedSpans) {
  obs::TraceRecorder recorder;
  ServiceConfig config = traced_config(2);
  config.trace = &recorder;
  config.drain_steal = true;
  GridSchedulingService service(config);
  const EtcMatrix etc = obs_instance(24, 8);
  ASSERT_TRUE(service.schedule_batch(etc).complete(etc.num_machines()));

  std::ostringstream out;
  recorder.write(out);
  const std::vector<EventView> events = parse_trace(out.str());
  expect_balanced(events);

  std::map<std::string, int> begins_by_cat;
  for (const EventView& event : events) {
    if (event.phase == "B") ++begins_by_cat[event.cat];
  }
  EXPECT_EQ(begins_by_cat["service"], 1);  // one activation span
  EXPECT_EQ(begins_by_cat["shard"], 2);    // one race per shard
  EXPECT_GT(begins_by_cat["member"], 0);   // portfolio members ran inside
  EXPECT_EQ(begins_by_cat["steal"], 1);    // drain_steal pass
}

TEST(ServiceObservability, UntracedServiceRecordsNoEvents) {
  GridSchedulingService service(traced_config(2));
  const EtcMatrix etc = obs_instance(12, 4);
  (void)service.schedule_batch(etc);
  // No recorder was attached; the registry still counts.
  EXPECT_EQ(service.metrics().find_counter("service.jobs_routed")->value(),
            12);
}

TEST(ServiceObservability, RegistrySnapshotsAreDeterministicAcrossRuns) {
  // Two identical deterministic services (evaluation-bounded members,
  // concurrent shards) must land byte-identical counter snapshots — the
  // property that makes registry counters diffable across commits.
  const EtcMatrix etc = obs_instance(30, 8);
  const auto run = [&etc] {
    GridSchedulingService service(traced_config(4));
    (void)service.schedule_batch(etc);
    (void)service.schedule_batch(etc);
    return service.metrics().snapshot().find("counters")->dump();
  };
  const std::string first = run();
  const std::string second = run();
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second);
}

TEST(ServiceObservability, PortfolioWinCountersSumToRaces) {
  GridSchedulingService service(traced_config(2));
  const EtcMatrix etc = obs_instance(20, 6);
  (void)service.schedule_batch(etc);
  const obs::MetricsRegistry& metrics = service.metrics();
  for (int shard = 0; shard < 2; ++shard) {
    const std::string prefix = "portfolio.shard" + std::to_string(shard);
    const obs::Counter* races = metrics.find_counter(prefix + ".races");
    ASSERT_NE(races, nullptr) << prefix;
    EXPECT_EQ(races->value(), 1);
    std::int64_t wins = 0;
    // Named on purpose: find()'s pointer must not outlive the snapshot.
    const JsonValue snap = metrics.snapshot();
    for (const auto& [key, value] : snap.find("counters")->as_object()) {
      if (key.rfind(prefix + ".wins.", 0) == 0) {
        wins += static_cast<std::int64_t>(value.as_number());
      }
    }
    EXPECT_EQ(wins, races->value()) << prefix;
  }
}

}  // namespace
}  // namespace gridsched
