#include "cma/local_search.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <tuple>

#include "etc/instance.h"

namespace gridsched {
namespace {

EtcMatrix test_instance(int jobs = 64, int machines = 8) {
  InstanceSpec spec;
  spec.num_jobs = jobs;
  spec.num_machines = machines;
  return generate_instance(spec);
}

const FitnessWeights kWeights{};

TEST(LocalSearch, NoneIsANoop) {
  const EtcMatrix etc = test_instance();
  Rng rng(1);
  ScheduleEvaluator eval(etc);
  eval.reset(Schedule::random(etc.num_jobs(), etc.num_machines(), rng));
  const Schedule before = eval.schedule();
  const LocalSearchConfig config{LocalSearchKind::kNone, 5};
  const auto stats = local_search(config, kWeights, eval, rng);
  EXPECT_EQ(stats.iterations_run, 0);
  EXPECT_EQ(eval.schedule(), before);
}

TEST(LocalSearch, EveryMethodNeverWorsensFitness) {
  const EtcMatrix etc = test_instance();
  for (LocalSearchKind kind :
       {LocalSearchKind::kLocalMove, LocalSearchKind::kSteepestLocalMove,
        LocalSearchKind::kLmcts}) {
    Rng rng(2);
    ScheduleEvaluator eval(etc);
    for (int trial = 0; trial < 10; ++trial) {
      eval.reset(Schedule::random(etc.num_jobs(), etc.num_machines(), rng));
      const double before = eval.fitness(kWeights);
      const LocalSearchConfig config{kind, 5};
      local_search(config, kWeights, eval, rng);
      EXPECT_LE(eval.fitness(kWeights), before + 1e-9)
          << local_search_name(kind);
      eval.check_consistency();
    }
  }
}

TEST(LocalSearch, MakespanObjectiveNeverWorsensMakespan) {
  const EtcMatrix etc = test_instance();
  for (LocalSearchKind kind :
       {LocalSearchKind::kLocalMove, LocalSearchKind::kSteepestLocalMove,
        LocalSearchKind::kLmcts}) {
    Rng rng(3);
    ScheduleEvaluator eval(etc);
    eval.reset(Schedule::random(etc.num_jobs(), etc.num_machines(), rng));
    const double before = eval.makespan();
    LocalSearchConfig config{kind, 8};
    config.objective = LsObjective::kMakespan;
    local_search(config, kWeights, eval, rng);
    EXPECT_LE(eval.makespan(), before + 1e-9) << local_search_name(kind);
  }
}

TEST(LocalSearch, LmctsExhaustiveScanFixesAnUnbalancedSchedule) {
  EtcMatrix etc(4, 2, {1, 100,   // job 0: fast on m0
                       100, 1,   // job 1: fast on m1
                       1, 100,   // job 2
                       100, 1}); // job 3
  // Anti-optimal: the slow machine everywhere.
  Schedule bad(4);
  bad[0] = 1;
  bad[1] = 0;
  bad[2] = 1;
  bad[3] = 0;
  ScheduleEvaluator eval(etc);
  eval.reset(bad);
  EXPECT_DOUBLE_EQ(eval.makespan(), 200.0);
  Rng rng(4);
  LocalSearchConfig config{LocalSearchKind::kLmcts, 5};
  config.scan = LmctsScan::kCriticalAllJobs;
  const auto stats = local_search(config, kWeights, eval, rng);
  EXPECT_GT(stats.improvements, 0);
  // Two swaps fix everything: makespan 2.
  EXPECT_DOUBLE_EQ(eval.makespan(), 2.0);
}

TEST(LocalSearch, LmctsDefaultScanImprovesTheSameSchedule) {
  // Same instance as above, default (random-critical-job) scan: with a few
  // iterations it must at least improve substantially, whichever focus
  // jobs the RNG draws.
  EtcMatrix etc(4, 2, {1, 100, 100, 1, 1, 100, 100, 1});
  Schedule bad(4);
  bad[0] = 1;
  bad[1] = 0;
  bad[2] = 1;
  bad[3] = 0;
  ScheduleEvaluator eval(etc);
  eval.reset(bad);
  Rng rng(4);
  const LocalSearchConfig config{LocalSearchKind::kLmcts, 8};
  const auto stats = local_search(config, kWeights, eval, rng);
  EXPECT_GT(stats.improvements, 0);
  EXPECT_LT(eval.makespan(), 200.0);
}

TEST(LocalSearch, SteepestMoveFindsTheBestMachineForItsJob) {
  // One job, three machines: SLM must land it on the global best.
  EtcMatrix etc(1, 3, {50, 10, 30});
  Schedule s(1, 0);
  ScheduleEvaluator eval(etc);
  eval.reset(s);
  Rng rng(5);
  const LocalSearchConfig config{LocalSearchKind::kSteepestLocalMove, 1};
  local_search(config, kWeights, eval, rng);
  EXPECT_EQ(eval.schedule()[0], 1);
}

TEST(LocalSearch, IterationBudgetIsRespected) {
  const EtcMatrix etc = test_instance();
  Rng rng(6);
  ScheduleEvaluator eval(etc);
  eval.reset(Schedule::random(etc.num_jobs(), etc.num_machines(), rng));
  for (int budget : {1, 3, 7}) {
    const LocalSearchConfig config{LocalSearchKind::kLocalMove, budget};
    const auto stats = local_search(config, kWeights, eval, rng);
    EXPECT_EQ(stats.iterations_run, budget);
  }
}

TEST(LocalSearch, LmctsDeterministicScansStopEarlyAtLocalOptimum) {
  // Tiny instance that is already optimal: exhaustive scans must notice
  // and break out of the iteration budget.
  EtcMatrix etc(4, 2, {1, 2, 2, 1, 1, 2, 2, 1});
  Schedule s(4);
  s[0] = 0;
  s[1] = 1;
  s[2] = 0;
  s[3] = 1;  // already optimal
  for (LmctsScan scan : {LmctsScan::kCriticalAllJobs, LmctsScan::kFull}) {
    ScheduleEvaluator eval(etc);
    eval.reset(s);
    Rng rng(7);
    LocalSearchConfig config{LocalSearchKind::kLmcts, 50};
    config.scan = scan;
    const auto stats = local_search(config, kWeights, eval, rng);
    EXPECT_LT(stats.iterations_run, 50);  // broke out early
    EXPECT_EQ(stats.improvements, 0);
  }
}

TEST(LocalSearch, FullScanFindsStrictlyMoreOrEqualImprovement) {
  const EtcMatrix etc = test_instance(48, 6);
  Rng seed_rng(8);
  const Schedule start =
      Schedule::random(etc.num_jobs(), etc.num_machines(), seed_rng);

  auto run_scan = [&](LmctsScan scan) {
    ScheduleEvaluator eval(etc);
    eval.reset(start);
    Rng rng(9);
    LocalSearchConfig config{LocalSearchKind::kLmcts, 1};
    config.scan = scan;
    local_search(config, kWeights, eval, rng);
    return eval.fitness(kWeights);
  };
  // A single full-scan step picks the best swap overall; the restricted
  // scans choose from candidate subsets and cannot beat it.
  EXPECT_LE(run_scan(LmctsScan::kFull),
            run_scan(LmctsScan::kCriticalAllJobs) + 1e-9);
  EXPECT_LE(run_scan(LmctsScan::kFull),
            run_scan(LmctsScan::kCriticalRandomJob) + 1e-9);
}

TEST(LocalSearch, SampledScanImprovesWithinBudget) {
  const EtcMatrix etc = test_instance();
  Rng rng(10);
  ScheduleEvaluator eval(etc);
  eval.reset(Schedule::random(etc.num_jobs(), etc.num_machines(), rng));
  const double before = eval.fitness(kWeights);
  LocalSearchConfig config{LocalSearchKind::kLmcts, 3};
  config.scan = LmctsScan::kSampled;
  config.sampled_pairs = 256;
  const auto stats = local_search(config, kWeights, eval, rng);
  EXPECT_LE(eval.fitness(kWeights), before);
  EXPECT_LE(stats.previews, 3 * 256);
}

TEST(LocalSearch, StatsCountPreviews) {
  const EtcMatrix etc = test_instance(32, 4);
  Rng rng(11);
  ScheduleEvaluator eval(etc);
  eval.reset(Schedule::random(etc.num_jobs(), etc.num_machines(), rng));
  const LocalSearchConfig config{LocalSearchKind::kSteepestLocalMove, 2};
  const auto stats = local_search(config, kWeights, eval, rng);
  // SLM previews every other machine once per iteration.
  EXPECT_EQ(stats.previews, 2 * (4 - 1));
}

TEST(LocalSearch, DeterministicInSeed) {
  const EtcMatrix etc = test_instance();
  Rng seed_rng(12);
  const Schedule start =
      Schedule::random(etc.num_jobs(), etc.num_machines(), seed_rng);
  auto run = [&](std::uint64_t seed) {
    ScheduleEvaluator eval(etc);
    eval.reset(start);
    Rng rng(seed);
    const LocalSearchConfig config{LocalSearchKind::kLmcts, 5};
    local_search(config, kWeights, eval, rng);
    return eval.schedule();
  };
  EXPECT_EQ(run(42), run(42));
}

TEST(LocalSearch, PreCancelledTokenStopsBeforeTheFirstMove) {
  const EtcMatrix etc = test_instance(32, 4);
  Rng rng(7);
  ScheduleEvaluator eval(etc);
  const Schedule start =
      Schedule::random(etc.num_jobs(), etc.num_machines(), rng);
  eval.reset(start);
  CancellationSource source;
  source.request_cancel();
  const LocalSearchConfig config{LocalSearchKind::kLmcts, 5};
  const auto stats = local_search(config, kWeights, eval, rng, source.token());
  // The poll fires between neighborhood moves, so an already-expired
  // budget costs zero previews and leaves the schedule untouched.
  EXPECT_EQ(stats.iterations_run, 0);
  EXPECT_EQ(stats.previews, 0);
  EXPECT_EQ(eval.schedule(), start);
}

TEST(LocalSearch, InvalidTokenKeepsTheFullWalk) {
  const EtcMatrix etc = test_instance(32, 4);
  Rng rng(7);
  ScheduleEvaluator eval(etc);
  eval.reset(Schedule::random(etc.num_jobs(), etc.num_machines(), rng));
  const LocalSearchConfig config{LocalSearchKind::kSteepestLocalMove, 3};
  const auto stats =
      local_search(config, kWeights, eval, rng, CancellationToken{});
  EXPECT_EQ(stats.iterations_run, 3);
}

TEST(LocalSearch, NamesAreStable) {
  EXPECT_EQ(local_search_name(LocalSearchKind::kNone), "None");
  EXPECT_EQ(local_search_name(LocalSearchKind::kLocalMove), "LM");
  EXPECT_EQ(local_search_name(LocalSearchKind::kSteepestLocalMove), "SLM");
  EXPECT_EQ(local_search_name(LocalSearchKind::kLmcts), "LMCTS");
  EXPECT_EQ(local_search_name(LocalSearchKind::kVns), "VNS");
}

TEST(Vns, LadderWithEscalationDisabledIsBitwiseSteepestMove) {
  // With vns_max_rung = 0 the ladder never leaves rung 0, which delegates
  // to the SLM step: same RNG draws, same previews, same applies — the
  // walks must agree bitwise (schedule, objectives, stats).
  const EtcMatrix etc = test_instance();
  Rng seed_rng(20);
  const Schedule start =
      Schedule::random(etc.num_jobs(), etc.num_machines(), seed_rng);

  auto run = [&](LocalSearchKind kind) {
    ScheduleEvaluator eval(etc);
    eval.reset(start);
    Rng rng(21);
    LocalSearchConfig config{kind, 12};
    config.vns_max_rung = 0;
    const auto stats = local_search(config, kWeights, eval, rng);
    return std::tuple{eval.schedule(), eval.makespan(), eval.flowtime(),
                      stats.iterations_run, stats.improvements,
                      stats.previews};
  };
  EXPECT_EQ(run(LocalSearchKind::kVns),
            run(LocalSearchKind::kSteepestLocalMove));
}

TEST(Vns, NeverWorsensAndLeavesAConsistentState) {
  const EtcMatrix etc = test_instance();
  Rng rng(22);
  ScheduleEvaluator eval(etc);
  for (int trial = 0; trial < 10; ++trial) {
    eval.reset(Schedule::random(etc.num_jobs(), etc.num_machines(), rng));
    const double before = eval.fitness(kWeights);
    LocalSearchConfig config{LocalSearchKind::kVns, 20};
    const auto stats = local_search(config, kWeights, eval, rng);
    EXPECT_LE(eval.fitness(kWeights), before + 1e-9);
    EXPECT_EQ(stats.iterations_run, 20);  // no deterministic early break
    eval.check_consistency();
  }
}

TEST(Vns, EjectionChainRungFixesWhatSingleMovesCannot) {
  // Start anti-optimal on a 2-machine instance where single moves off the
  // critical machine stall (every relocation overloads the target) but
  // the two-move chain — move a critical job over, eject one back —
  // makes progress. Force the chain rung by running enough iterations.
  EtcMatrix etc(4, 2, {1, 100, 100, 1, 1, 100, 100, 1});
  Schedule bad(4);
  bad[0] = 1;
  bad[1] = 0;
  bad[2] = 1;
  bad[3] = 0;
  ScheduleEvaluator eval(etc);
  eval.reset(bad);
  EXPECT_DOUBLE_EQ(eval.makespan(), 200.0);
  Rng rng(23);
  LocalSearchConfig config{LocalSearchKind::kVns, 40};
  const auto stats = local_search(config, kWeights, eval, rng);
  EXPECT_GT(stats.improvements, 0);
  EXPECT_DOUBLE_EQ(eval.makespan(), 2.0);  // the optimum for this instance
  eval.check_consistency();
}

TEST(Vns, PreCancelledTokenCostsNothing) {
  const EtcMatrix etc = test_instance(32, 4);
  Rng rng(24);
  ScheduleEvaluator eval(etc);
  const Schedule start =
      Schedule::random(etc.num_jobs(), etc.num_machines(), rng);
  eval.reset(start);
  CancellationSource source;
  source.request_cancel();
  const LocalSearchConfig config{LocalSearchKind::kVns, 20};
  const auto stats = local_search(config, kWeights, eval, rng, source.token());
  EXPECT_EQ(stats.iterations_run, 0);
  EXPECT_EQ(stats.previews, 0);
  EXPECT_EQ(eval.schedule(), start);
}

TEST(Vns, DeterministicInSeed) {
  const EtcMatrix etc = test_instance();
  Rng seed_rng(25);
  const Schedule start =
      Schedule::random(etc.num_jobs(), etc.num_machines(), seed_rng);
  auto run = [&] {
    ScheduleEvaluator eval(etc);
    eval.reset(start);
    Rng rng(26);
    const LocalSearchConfig config{LocalSearchKind::kVns, 15};
    local_search(config, kWeights, eval, rng);
    return eval.schedule();
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace gridsched
