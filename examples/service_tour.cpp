// Tour of the sharded scheduling service.
//
//   $ ./service_tour [--shards 3] [--routing least-backlog] [--minutes 5]
//
// Builds a GridSchedulingService over a class-structured heterogeneous
// grid, replays a dynamic workload through it, and prints the per-shard
// story: how the router spread the jobs, what rebalancing migrated, how
// each shard's portfolio spent its budget slice, and the per-shard slice
// of the end-to-end metrics next to the global ones.
#include <iostream>
#include <string>

#include "benchutil/table.h"
#include "common/cli.h"
#include "service/sharded_driver.h"

int main(int argc, char** argv) {
  using namespace gridsched;

  CliParser cli("Sharded scheduling service tour");
  cli.flag("shards", "3", "number of machine shards");
  cli.flag("routing", "least-backlog",
           "round-robin | least-backlog | best-fit | shard-mct");
  cli.flag("minutes", "5", "simulated minutes of job arrivals");
  cli.flag("rate", "4", "job arrivals per simulated second");
  cli.flag("machines", "24", "grid machines");
  cli.flag("budget-ms", "24", "total scheduling budget per activation");
  if (!cli.parse(argc, argv)) return 0;

  RoutingKind routing = RoutingKind::kLeastBacklog;
  bool known = false;
  for (const RoutingKind kind : all_routing_kinds()) {
    if (cli.get("routing") == routing_name(kind)) {
      routing = kind;
      known = true;
    }
  }
  if (!known) {
    std::cerr << "unknown routing policy: " << cli.get("routing") << "\n";
    return 1;
  }

  SimConfig sim_config;
  sim_config.horizon = cli.get_double("minutes") * 60.0;
  sim_config.arrival_rate = cli.get_double("rate");
  sim_config.scheduler_period = 45.0;
  sim_config.num_machines = static_cast<int>(cli.get_int("machines"));
  sim_config.mips_min = 500.0;
  sim_config.mips_max = 2'000.0;
  sim_config.num_job_classes = 3;   // interleaved machine types
  sim_config.consistency_noise = 0.15;
  sim_config.machine_mtbf = 600.0;  // churn: shards shrink and recover
  sim_config.machine_mttr = 90.0;
  sim_config.seed = 42;

  ServiceConfig service_config;
  service_config.num_shards = static_cast<int>(cli.get_int("shards"));
  service_config.routing = routing;
  service_config.total_budget_ms = cli.get_double("budget-ms");
  service_config.seed = sim_config.seed;

  GridSimulator sim(sim_config);
  GridSchedulingService service(service_config);
  const ShardedSimReport report = run_sharded(sim, service);

  std::cout << "=== " << service.name() << " on a " << sim_config.num_machines
            << "-machine class-structured grid ===\n"
            << "router " << service.router_name() << ", "
            << service_config.total_budget_ms
            << " ms total budget per activation, machine churn enabled\n\n";

  TablePrinter shard_table({"shard", "machines", "activations", "jobs",
                            "migr in", "migr out", "mean race (ms)",
                            "max race (ms)", "completed", "flowtime (s)",
                            "util"});
  for (const ShardStats& stat : service.shard_stats()) {
    int machines = 0;
    for (int m = 0; m < sim_config.num_machines; ++m) {
      if (service.shard_of_machine(m) == stat.shard) ++machines;
    }
    const SimMetrics& slice =
        report.per_shard[static_cast<std::size_t>(stat.shard)];
    shard_table.add_row(
        {std::to_string(stat.shard), std::to_string(machines),
         std::to_string(stat.activations), std::to_string(stat.jobs_scheduled),
         std::to_string(stat.migrated_in), std::to_string(stat.migrated_out),
         TablePrinter::num(stat.activations > 0
                               ? stat.total_race_ms / stat.activations
                               : 0.0,
                           2),
         TablePrinter::num(stat.max_race_ms, 2),
         std::to_string(slice.jobs_completed),
         TablePrinter::num(slice.mean_flowtime, 1),
         TablePrinter::num(slice.utilization, 2)});
  }
  shard_table.print(std::cout);

  std::cout << "\nglobal: " << report.global.jobs_completed << "/"
            << report.global.jobs_arrived << " jobs, makespan "
            << report.global.makespan << " s, mean flowtime "
            << report.global.mean_flowtime << " s, " << report.migrations
            << " rebalancing migration(s), "
            << report.global.jobs_requeued << " churn re-queue(s)\n\n";

  // Peek inside one shard's portfolio: the same scoreboard the
  // single-queue example prints, but per shard.
  const PortfolioBatchScheduler& shard0 = service.shard_scheduler(0);
  TablePrinter member_table({"member", "runs", "wins", "mean reward",
                             "total ms"});
  for (const MemberStats& stat : shard0.member_stats()) {
    member_table.add_row({stat.name, std::to_string(stat.runs),
                          std::to_string(stat.wins),
                          TablePrinter::num(stat.mean_reward(), 3),
                          TablePrinter::num(stat.total_ms, 1)});
  }
  std::cout << "shard 0 portfolio scoreboard ("
            << shard0.activations().size() << " activations):\n";
  member_table.print(std::cout);
  return 0;
}
