// Tour of the workload subsystem: what each arrival pattern looks like,
// and the record -> replay loop every trace-driven experiment builds on.
//
//   $ ./workload_tour
//
// For each synthetic scenario (all calibrated to the same offered load)
// we print the realized arrival stream's shape — count, burstiest window,
// largest job — then record one simulated run to a trace, replay it, and
// show that the replay reproduced the run exactly.
#include <algorithm>
#include <iostream>
#include <sstream>
#include <vector>

#include "benchutil/table.h"
#include "sim/grid_simulator.h"
#include "workload/trace_io.h"

int main() {
  using namespace gridsched;

  const double horizon = 1'200.0;
  const double rate = 2.0;

  std::cout << "=== workload scenarios at " << rate << " jobs/s over "
            << horizon << " s ===\n\n";
  TablePrinter table({"scenario", "jobs", "peak 30s window", "mean 30s",
                      "largest job (MI)"});
  for (const WorkloadKind kind : all_workload_kinds()) {
    const auto source = make_workload(kind, rate, horizon);
    Rng rng(11);
    Rng arrival_rng = rng.split();
    Rng workload_rng = rng.split();
    const std::vector<TraceJob> jobs =
        source->generate(horizon, arrival_rng, workload_rng);

    const int windows = static_cast<int>(horizon / 30.0);
    std::vector<int> counts(static_cast<std::size_t>(windows), 0);
    double largest = 0.0;
    for (const TraceJob& job : jobs) {
      const int w = std::min(windows - 1,
                             static_cast<int>(job.arrival / 30.0));
      ++counts[static_cast<std::size_t>(w)];
      largest = std::max(largest, job.workload_mi);
    }
    const int peak = *std::max_element(counts.begin(), counts.end());
    table.add_row({std::string(workload_name(kind)),
                   std::to_string(jobs.size()), std::to_string(peak),
                   TablePrinter::num(static_cast<double>(jobs.size()) /
                                         windows, 1),
                   TablePrinter::num(largest, 0)});
  }
  table.print(std::cout);

  // --- Record one bursty run, replay it from the serialized trace. ---
  std::cout << "\n=== record -> replay ===\n";
  SimConfig config;
  config.horizon = 600.0;
  config.scheduler_period = 30.0;
  config.num_machines = 12;
  config.num_job_classes = 3;
  config.seed = 5;
  config.workload = make_workload(WorkloadKind::kBursty, rate, config.horizon);

  GridSimulator recorded(config);
  HeuristicBatchScheduler record_sched(HeuristicKind::kMinMin);
  const SimMetrics original = recorded.run(record_sched);

  std::ostringstream trace_text;
  write_trace(trace_text, recorded.arrival_trace());
  std::cout << "recorded " << recorded.arrival_trace().size()
            << " jobs (" << trace_text.str().size() << " bytes of trace)\n";

  std::istringstream in(trace_text.str());
  SimConfig replay_config = config;
  replay_config.workload =
      std::make_shared<TraceWorkloadSource>(read_trace(in));
  GridSimulator replayed(replay_config);
  HeuristicBatchScheduler replay_sched(HeuristicKind::kMinMin);
  const SimMetrics replay = replayed.run(replay_sched);

  std::cout << "original: makespan " << original.makespan << " s, flowtime "
            << original.mean_flowtime << " s\n"
            << "replay:   makespan " << replay.makespan << " s, flowtime "
            << replay.mean_flowtime << " s\n"
            << (original.makespan == replay.makespan &&
                        original.mean_flowtime == replay.mean_flowtime
                    ? "bit-identical replay\n"
                    : "REPLAY DIVERGED\n");
  return 0;
}
