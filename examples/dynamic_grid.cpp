// Dynamic grid: the deployment scenario from the paper's abstract — "run
// the cMA-based scheduler in batch mode for a very short time to schedule
// jobs arriving to the system since the last activation".
//
//   $ ./dynamic_grid [--hours 1] [--budget-ms 25] [--churn]
//
// An event-driven grid receives a Poisson stream of jobs; every activation
// period the pending batch is handed to a scheduler. We compare an
// immediate-mode heuristic (MCT), Min-Min, the cMA with a small
// per-activation budget, and the racing portfolio in UCB mode: MCT and
// Min-Min always race as the safety net, while the UCB policy
// (max_active = 1) gives the whole budget to the historically best of
// {Struggle GA, async cMA, sync cMA}, warm-started from the previous
// activation's elites. All runs share the arrival trace; --churn adds
// machine failures and repairs.
#include <algorithm>
#include <iostream>

#include "benchutil/table.h"
#include "common/cli.h"
#include "portfolio/portfolio.h"
#include "sim/grid_simulator.h"

int main(int argc, char** argv) {
  using namespace gridsched;

  CliParser cli("Dynamic grid with periodic batch scheduling");
  cli.flag("hours", "0.5", "simulated hours of job arrivals");
  cli.flag("budget-ms", "25", "real CPU budget per cMA activation");
  cli.flag("rate", "0.6", "job arrivals per simulated second");
  cli.flag("period", "120", "scheduler activation period (simulated s)");
  cli.flag("churn", "false", "enable machine failures (MTBF 20 min)");
  if (!cli.parse(argc, argv)) return 0;

  // A grid at ~70% load with ~70-job batches: heavy enough that placement
  // matters, light enough that queueing does not drown the scheduler out.
  SimConfig sim_config;
  sim_config.horizon = cli.get_double("hours") * 3600.0;
  sim_config.arrival_rate = cli.get_double("rate");
  sim_config.scheduler_period = cli.get_double("period");
  sim_config.num_machines = 16;
  sim_config.mips_min = 500.0;
  sim_config.mips_max = 2'000.0;
  sim_config.consistency_noise = 0.4;  // a mildly inconsistent grid
  sim_config.seed = 99;
  if (cli.get_bool("churn")) {
    sim_config.machine_mtbf = 1200.0;
    sim_config.machine_mttr = 180.0;
  }

  std::cout << "grid: " << sim_config.num_machines << " machines, "
            << sim_config.arrival_rate << " jobs/s for "
            << sim_config.horizon << " s, activation every "
            << sim_config.scheduler_period << " s"
            << (cli.get_bool("churn") ? ", with machine churn" : "") << "\n\n";

  TablePrinter table({"scheduler", "jobs", "makespan (s)",
                      "mean flowtime (s)", "mean wait (s)", "slowdown",
                      "utilization", "scheduler CPU (ms)"});

  auto simulate = [&](BatchScheduler& scheduler) {
    GridSimulator sim(sim_config);  // same seed -> same arrival trace
    const SimMetrics metrics = sim.run(scheduler);
    table.add_row({std::string(scheduler.name()),
                   std::to_string(metrics.jobs_completed),
                   TablePrinter::num(metrics.makespan, 1),
                   TablePrinter::num(metrics.mean_flowtime, 1),
                   TablePrinter::num(metrics.mean_wait, 1),
                   TablePrinter::num(metrics.mean_slowdown, 2),
                   TablePrinter::num(metrics.utilization, 3),
                   TablePrinter::num(metrics.scheduler_cpu_ms, 0)});
    return metrics;
  };

  HeuristicBatchScheduler mct_sched(HeuristicKind::kMct);
  const SimMetrics mct_metrics = simulate(mct_sched);

  HeuristicBatchScheduler minmin_sched(HeuristicKind::kMinMin);
  const SimMetrics minmin_metrics = simulate(minmin_sched);

  CmaConfig cma_config;  // Table 1 defaults
  CmaBatchScheduler cma_sched(cma_config, cli.get_double("budget-ms"));
  const SimMetrics cma_metrics = simulate(cma_sched);

  PortfolioConfig portfolio_config;
  portfolio_config.budget_ms = cli.get_double("budget-ms");
  portfolio_config.policy = PolicyKind::kUcb;
  portfolio_config.ucb = UcbConfig{.exploration = 0.3, .max_active = 1};
  portfolio_config.seed = sim_config.seed;
  PortfolioBatchScheduler portfolio(
      portfolio_config,
      PortfolioBatchScheduler::default_members(portfolio_config));
  const SimMetrics portfolio_metrics = simulate(portfolio);

  table.print(std::cout);

  // --- Who won each activation inside the portfolio? ---
  std::cout << "\nportfolio activations (winner per batch):\n";
  TablePrinter race({"activation", "batch jobs", "winner", "batch fitness",
                     "race (ms)"});
  const auto& activations = portfolio.activations();
  const std::size_t shown = std::min<std::size_t>(activations.size(), 12);
  for (std::size_t i = 0; i < shown; ++i) {
    const ActivationRecord& r = activations[i];
    race.add_row({std::to_string(r.activation),
                  std::to_string(r.batch_jobs), r.winner_name,
                  TablePrinter::num(r.best_fitness, 1),
                  TablePrinter::num(r.race_ms, 1)});
  }
  race.print(std::cout);
  if (activations.size() > shown) {
    std::cout << "... (" << activations.size() - shown << " more)\n";
  }
  std::cout << "member scoreboard:";
  for (const MemberStats& stat : portfolio.member_stats()) {
    std::cout << "  " << stat.name << " " << stat.wins << "/" << stat.runs;
  }
  std::cout << "  (wins/races)\n";

  // --- Cumulative outcome: portfolio vs the plain budgeted cMA. ---
  const double cma_total_flow =
      cma_metrics.mean_flowtime * cma_metrics.jobs_completed;
  const double portfolio_total_flow =
      portfolio_metrics.mean_flowtime * portfolio_metrics.jobs_completed;
  std::cout << "\nportfolio vs cMA alone: cumulative makespan "
            << TablePrinter::num(portfolio_metrics.makespan, 1) << " vs "
            << TablePrinter::num(cma_metrics.makespan, 1)
            << " s, cumulative flowtime "
            << TablePrinter::num(portfolio_total_flow, 0) << " vs "
            << TablePrinter::num(cma_total_flow, 0) << " s ("
            << TablePrinter::pct((cma_total_flow - portfolio_total_flow) /
                                     cma_total_flow * 100.0,
                                 1)
            << "% flowtime, positive = portfolio better)\n";
  const double best_heuristic_flow =
      std::min(mct_metrics.mean_flowtime, minmin_metrics.mean_flowtime);
  const double best_heuristic_makespan =
      std::min(mct_metrics.makespan, minmin_metrics.makespan);
  std::cout << "\nthe cMA spends "
            << TablePrinter::num(
                   cma_metrics.scheduler_cpu_ms /
                       std::max(1, cma_metrics.activations),
                   1)
            << " ms of real CPU per activation; vs the best one-shot "
               "heuristic: makespan "
            << TablePrinter::pct((best_heuristic_makespan -
                                  cma_metrics.makespan) /
                                     best_heuristic_makespan * 100.0,
                                 1)
            << "%, mean flowtime "
            << TablePrinter::pct(
                   (best_heuristic_flow - cma_metrics.mean_flowtime) /
                       best_heuristic_flow * 100.0,
                   1)
            << "% (positive = cMA better). lambda = 0.75 favors throughput; "
               "lower it in CmaConfig for QoS-leaning schedules, and raise "
               "--budget-ms to widen both gaps\n";
  return 0;
}
