// Quickstart: generate a benchmark instance, run the paper's tuned cMA for
// half a second, and print what it found.
//
//   $ ./quickstart
//
// This is the smallest end-to-end use of the library's public API:
//   1. describe an instance (etc/instance.h),
//   2. configure the algorithm (cma/config.h — defaults are Table 1),
//   3. run it (cma/cma.h),
//   4. inspect the best schedule (core/evaluator.h).
#include <iostream>

#include "cma/cma.h"
#include "etc/instance.h"
#include "heuristics/constructive.h"

int main() {
  using namespace gridsched;

  // 1. A consistent, highly heterogeneous grid: 512 jobs on 16 machines
  //    (the paper's u_c_hihi class).
  InstanceSpec spec;
  spec.consistency = Consistency::kConsistent;
  spec.job_heterogeneity = Heterogeneity::kHigh;
  spec.machine_heterogeneity = Heterogeneity::kHigh;
  const EtcMatrix etc = generate_instance(spec);
  std::cout << "instance " << spec.name() << ": " << etc.num_jobs()
            << " jobs x " << etc.num_machines() << " machines\n";

  // A constructive baseline for scale.
  const Individual seed = make_individual(ljfr_sjfr(etc), etc, {});
  std::cout << "LJFR-SJFR seed: makespan " << seed.objectives.makespan
            << ", flowtime " << seed.objectives.flowtime << "\n";

  // 2 & 3. Run the Table 1 configuration for 500 ms of wall clock.
  CmaConfig config;  // defaults = the paper's tuned parameters
  config.stop = StopCondition{.max_time_ms = 500.0};
  config.seed = 42;
  const EvolutionResult result = CellularMemeticAlgorithm(config).run(etc);

  std::cout << "cMA best:       makespan " << result.best.objectives.makespan
            << ", flowtime " << result.best.objectives.flowtime << "\n"
            << "                (" << result.evaluations << " evaluations in "
            << result.elapsed_ms << " ms, " << result.iterations
            << " iterations)\n";

  // 4. Inspect the winning schedule: per-machine load balance.
  ScheduleEvaluator eval(etc);
  eval.reset(result.best.schedule);
  std::cout << "per-machine completion times (load factors):\n";
  for (MachineId m = 0; m < etc.num_machines(); ++m) {
    std::cout << "  machine " << m << ": " << eval.completion(m) << "  ("
              << eval.completion(m) / eval.makespan() << ")\n";
  }

  const double improvement =
      (seed.objectives.makespan - result.best.objectives.makespan) /
      seed.objectives.makespan * 100.0;
  std::cout << "makespan improved " << improvement
            << "% over the constructive seed\n";
  return 0;
}
