// Heuristic tour: every constructive heuristic in the library plus the
// three baseline GAs and the cMA on one instance of each consistency class,
// printed as a league table over both objectives.
//
//   $ ./heuristic_tour [--time-ms 300]
//
// This is the "which scheduler should I use?" example: it shows (a) how
// much the batch heuristics differ, and (b) what another few hundred
// milliseconds of metaheuristic search buys on top.
#include <iostream>
#include <string>

#include "benchutil/table.h"
#include "cma/cma.h"
#include "common/cli.h"
#include "core/individual.h"
#include "etc/instance.h"
#include "ga/braun_ga.h"
#include "ga/struggle_ga.h"
#include "heuristics/constructive.h"

int main(int argc, char** argv) {
  using namespace gridsched;

  CliParser cli("League table of every scheduler in the library");
  cli.flag("time-ms", "300", "budget per metaheuristic run");
  cli.flag("jobs", "256", "jobs per instance");
  cli.flag("machines", "16", "machines per instance");
  if (!cli.parse(argc, argv)) return 0;
  const double budget = cli.get_double("time-ms");

  for (Consistency consistency :
       {Consistency::kConsistent, Consistency::kInconsistent,
        Consistency::kSemiConsistent}) {
    InstanceSpec spec;
    spec.consistency = consistency;
    spec.num_jobs = static_cast<int>(cli.get_int("jobs"));
    spec.num_machines = static_cast<int>(cli.get_int("machines"));
    const EtcMatrix etc = generate_instance(spec);

    std::cout << "\n### instance " << spec.name() << " ###\n";
    TablePrinter table({"scheduler", "makespan", "flowtime", "fitness"});

    Rng rng(7);
    for (HeuristicKind kind : all_heuristics()) {
      const Individual ind =
          make_individual(construct_schedule(kind, etc, rng), etc, {});
      table.add_row({std::string(heuristic_name(kind)),
                     TablePrinter::num(ind.objectives.makespan, 1),
                     TablePrinter::num(ind.objectives.flowtime, 1),
                     TablePrinter::num(ind.fitness, 1)});
    }
    table.add_separator();

    BraunGaConfig braun;
    braun.stop = StopCondition{.max_time_ms = budget};
    const auto braun_result = BraunGa(braun).run(etc);
    table.add_row({"Braun GA",
                   TablePrinter::num(braun_result.best.objectives.makespan, 1),
                   TablePrinter::num(braun_result.best.objectives.flowtime, 1),
                   TablePrinter::num(braun_result.best.fitness, 1)});

    StruggleGaConfig struggle;
    struggle.stop = StopCondition{.max_time_ms = budget};
    const auto struggle_result = StruggleGa(struggle).run(etc);
    table.add_row(
        {"Struggle GA",
         TablePrinter::num(struggle_result.best.objectives.makespan, 1),
         TablePrinter::num(struggle_result.best.objectives.flowtime, 1),
         TablePrinter::num(struggle_result.best.fitness, 1)});

    CmaConfig cma;
    cma.stop = StopCondition{.max_time_ms = budget};
    const auto cma_result = CellularMemeticAlgorithm(cma).run(etc);
    table.add_row({"cMA (Table 1)",
                   TablePrinter::num(cma_result.best.objectives.makespan, 1),
                   TablePrinter::num(cma_result.best.objectives.flowtime, 1),
                   TablePrinter::num(cma_result.best.fitness, 1)});

    table.print(std::cout);
  }
  std::cout << "\nconstructive rows cost microseconds; the metaheuristic "
               "rows each had the same wall-clock budget\n";
  return 0;
}
