// Instance workshop: generate, inspect, save and reload ETC benchmark
// instances — the data side of the library.
//
//   $ ./instance_workshop                          # tour the 12 classes
//   $ ./instance_workshop --save u_i_lohi.0 --path /tmp/inst.txt
//   $ ./instance_workshop --load /tmp/inst.txt
//
// Files use the classic Braun benchmark text layout, so instances exported
// here can be consumed by other ETC-model tools and vice versa.
#include <iostream>

#include "benchutil/table.h"
#include "common/cli.h"
#include "core/individual.h"
#include "etc/instance.h"
#include "etc/instance_io.h"
#include "heuristics/constructive.h"

namespace {

void describe(const gridsched::EtcMatrix& etc, const std::string& label) {
  using namespace gridsched;
  double lo = etc(0, 0);
  double hi = lo;
  for (double v : etc.raw()) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  const Individual minmin = make_individual(min_min(etc), etc, {});
  const Individual seed = make_individual(ljfr_sjfr(etc), etc, {});
  std::cout << label << ": " << etc.num_jobs() << "x" << etc.num_machines()
            << ", ETC range [" << TablePrinter::num(lo, 2) << ", "
            << TablePrinter::num(hi, 2) << "]"
            << ", Min-Min makespan " << TablePrinter::num(
                   minmin.objectives.makespan, 1)
            << ", LJFR-SJFR makespan "
            << TablePrinter::num(seed.objectives.makespan, 1) << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gridsched;

  CliParser cli("Generate / inspect / save / load ETC instances");
  cli.flag("save", "", "class label to generate and save (e.g. u_c_hihi.0)");
  cli.flag("load", "", "path of an instance file to load and describe");
  cli.flag("path", "instance.txt", "output path for --save");
  cli.flag("jobs", "512", "jobs (for generation)");
  cli.flag("machines", "16", "machines (for generation)");
  if (!cli.parse(argc, argv)) return 0;

  if (!cli.get("load").empty()) {
    const EtcMatrix etc = load_instance(cli.get("load"));
    describe(etc, cli.get("load"));
    return 0;
  }

  if (!cli.get("save").empty()) {
    const auto spec = parse_instance_name(cli.get("save"));
    if (!spec) {
      std::cerr << "bad label '" << cli.get("save")
                << "' (expected e.g. u_c_hihi.0)\n";
      return 1;
    }
    InstanceSpec full = *spec;
    full.num_jobs = static_cast<int>(cli.get_int("jobs"));
    full.num_machines = static_cast<int>(cli.get_int("machines"));
    const EtcMatrix etc = generate_instance(full);
    save_instance(cli.get("path"), etc);
    std::cout << "wrote " << cli.get("save") << " (" << etc.num_jobs() << "x"
              << etc.num_machines() << ") to " << cli.get("path") << "\n";
    describe(etc, cli.get("save"));
    return 0;
  }

  // Default: tour the whole canonical suite.
  std::cout << "the 12 canonical benchmark classes (fresh samples of the "
               "Braun et al. generative process):\n\n";
  for (const InstanceSpec& spec : braun_benchmark_suite()) {
    InstanceSpec sized = spec;
    sized.num_jobs = static_cast<int>(cli.get_int("jobs"));
    sized.num_machines = static_cast<int>(cli.get_int("machines"));
    describe(generate_instance(sized), sized.name());
  }
  std::cout << "\nconsistent rows sort machines identically for every job; "
               "inconsistent rows do not; semi-consistent rows sort the "
               "even-indexed machines only\n";
  return 0;
}
