// Tuning playground: re-run the paper's Section 4 parameter study on any
// single knob and see the effect within seconds.
//
//   $ ./tuning_playground --knob neighborhood
//   $ ./tuning_playground --knob local-search --time-ms 800
//   $ ./tuning_playground --knob mutations
//
// Knobs: neighborhood | local-search | tournament | order | mutations |
// recombinations | population.
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "benchutil/experiment.h"
#include "benchutil/table.h"
#include "cma/cma.h"
#include "common/cli.h"
#include "etc/instance.h"

int main(int argc, char** argv) {
  using namespace gridsched;

  CliParser cli("Sweep one cMA parameter on a benchmark instance");
  cli.flag("knob", "neighborhood", "which parameter to sweep (see header)");
  cli.flag("time-ms", "300", "budget per run");
  cli.flag("runs", "3", "runs per configuration");
  cli.flag("jobs", "256", "jobs");
  cli.flag("machines", "16", "machines");
  cli.flag("instance", "u_c_hihi.0",
           "Braun-style class label to sweep on (e.g. u_i_lohi.0)");
  if (!cli.parse(argc, argv)) return 0;

  auto parsed = parse_instance_name(cli.get("instance"));
  if (!parsed) {
    std::cerr << "bad --instance label '" << cli.get("instance") << "'\n";
    return 1;
  }
  InstanceSpec spec = *parsed;
  spec.num_jobs = static_cast<int>(cli.get_int("jobs"));
  spec.num_machines = static_cast<int>(cli.get_int("machines"));
  const EtcMatrix etc = generate_instance(spec);
  const std::string knob = cli.get("knob");

  using Variant = std::pair<std::string, std::function<void(CmaConfig&)>>;
  std::vector<Variant> variants;
  if (knob == "neighborhood") {
    for (NeighborhoodKind k :
         {NeighborhoodKind::kPanmictic, NeighborhoodKind::kL5,
          NeighborhoodKind::kL9, NeighborhoodKind::kC9,
          NeighborhoodKind::kC13}) {
      variants.emplace_back(std::string(neighborhood_name(k)),
                            [k](CmaConfig& c) { c.neighborhood = k; });
    }
  } else if (knob == "local-search") {
    for (LocalSearchKind k :
         {LocalSearchKind::kNone, LocalSearchKind::kLocalMove,
          LocalSearchKind::kSteepestLocalMove, LocalSearchKind::kLmcts,
          LocalSearchKind::kVns}) {
      variants.emplace_back(std::string(local_search_name(k)),
                            [k](CmaConfig& c) { c.local_search.kind = k; });
    }
  } else if (knob == "tournament") {
    for (int n : {2, 3, 5, 7}) {
      variants.emplace_back("N=" + std::to_string(n), [n](CmaConfig& c) {
        c.selection.tournament_size = n;
      });
    }
  } else if (knob == "order") {
    for (SweepKind k : {SweepKind::kFixedLineSweep,
                        SweepKind::kFixedRandomSweep,
                        SweepKind::kNewRandomSweep}) {
      variants.emplace_back(std::string(sweep_name(k)), [k](CmaConfig& c) {
        c.recombination_order = k;
      });
    }
  } else if (knob == "mutations") {
    for (int n : {0, 6, 12, 25}) {
      variants.emplace_back("mutations=" + std::to_string(n),
                            [n](CmaConfig& c) {
                              c.mutations_per_iteration = n;
                            });
    }
  } else if (knob == "recombinations") {
    for (int n : {5, 12, 25, 50}) {
      variants.emplace_back("recombinations=" + std::to_string(n),
                            [n](CmaConfig& c) {
                              c.recombinations_per_iteration = n;
                            });
    }
  } else if (knob == "scan") {
    using Scan = LmctsScan;
    for (auto [name, scan] :
         {std::pair{"critical-random-job", Scan::kCriticalRandomJob},
          std::pair{"critical-all-jobs", Scan::kCriticalAllJobs},
          std::pair{"sampled", Scan::kSampled},
          std::pair{"full", Scan::kFull}}) {
      variants.emplace_back(name, [scan](CmaConfig& c) {
        c.local_search.scan = scan;
      });
    }
  } else if (knob == "population") {
    for (int side : {3, 5, 8}) {
      variants.emplace_back(
          std::to_string(side) + "x" + std::to_string(side),
          [side](CmaConfig& c) {
            c.pop_height = side;
            c.pop_width = side;
          });
    }
  } else {
    std::cerr << "unknown knob '" << knob << "'\n" << cli.help_text();
    return 1;
  }

  std::cout << "sweeping " << knob << " on " << spec.name() << " ("
            << cli.get("runs") << " runs x " << cli.get("time-ms")
            << " ms)\n\n";
  ThreadPool pool;
  TablePrinter table({knob, "makespan (mean)", "makespan (best)",
                      "flowtime (mean)", "fitness (mean)"});
  for (const auto& [name, tweak] : variants) {
    const auto result = run_many(
        static_cast<int>(cli.get_int("runs")), 7,
        [&, tweak = tweak](std::uint64_t seed) {
          CmaConfig config;
          config.stop =
              StopCondition{.max_time_ms = cli.get_double("time-ms")};
          config.seed = seed;
          tweak(config);
          return CellularMemeticAlgorithm(config).run(etc);
        },
        &pool);
    table.add_row({name, TablePrinter::num(result.makespan.mean, 1),
                   TablePrinter::num(result.makespan.min, 1),
                   TablePrinter::num(result.flowtime.mean, 1),
                   TablePrinter::num(result.fitness.mean, 1)});
  }
  table.print(std::cout);
  return 0;
}
