// QoS model: per-job promises and the objective layer that scores them.
//
// The paper's scheduler minimizes makespan/flowtime, which treats every
// job as equally urgent and every machine-second as free. A production
// grid sells *promises*: a deadline ("finish by t"), a cost budget ("my
// jobs may consume at most B cost units"), and a job class (affinity with
// part of the fleet). This header defines
//
//   QosSpec       one job's promises, carried by TraceJob through the
//                 trace CSV (workload/trace_io.h) so QoS-annotated runs
//                 record -> replay bit for bit, and
//   QosOutcome    what a candidate schedule would do to those promises:
//                 deadline-miss count/rate, tardiness, and cost, computed
//                 under the same per-machine SPT commit order the
//                 simulator uses (core/evaluator.h conventions), and
//   pick_qos_winner  portfolio winner selection on the (makespan,
//                 missed, cost) Pareto front (core/pareto.h) instead of
//                 scalar fitness alone — the first consumer of the
//                 multi-objective machinery.
//
// Deadlines are passed to schedulers as *relative* slack (absolute
// deadline minus the activation time) in BatchContext::job_deadlines, so
// completion times — which are relative to the activation — compare
// against them directly. An entry of +infinity (or any non-finite value)
// means "no deadline"; an empty vector means the run carries no QoS at
// all. Costs come from BatchContext::machine_cost_rates (cost units per
// busy second, typically proportional to machine speed a la Buyya's
// cost-time optimisation); an empty vector prices every machine at zero.
#pragma once

#include <limits>
#include <span>
#include <vector>

#include "core/individual.h"
#include "core/schedule.h"
#include "etc/etc_matrix.h"
#include "workload/workload_source.h"

namespace gridsched {

/// One job's QoS promises, mirroring the optional TraceJob fields.
struct QosSpec {
  double deadline = -1.0;  // absolute sim seconds; < 0 = best effort
  double budget = -1.0;    // user's cost budget; < 0 = unlimited
  int user = -1;           // budget account; -1 = anonymous
  int job_class = -1;

  [[nodiscard]] bool has_deadline() const noexcept { return deadline >= 0; }
  [[nodiscard]] bool has_budget() const noexcept { return budget >= 0; }

  [[nodiscard]] static QosSpec from_trace(const TraceJob& job) noexcept {
    return {job.deadline, job.budget, job.user, job.job_class};
  }
};

/// What one schedule does to a batch's promises.
struct QosOutcome {
  int deadline_jobs = 0;     // rows with a finite relative deadline
  int missed = 0;            // of those, completions past the deadline
  double total_tardiness = 0.0;
  double max_tardiness = 0.0;
  double total_cost = 0.0;   // sum over rows of ETC * machine cost rate

  [[nodiscard]] double miss_rate() const noexcept {
    return deadline_jobs > 0
               ? static_cast<double>(missed) / deadline_jobs
               : 0.0;
  }
};

/// True when at least one entry is a real (finite) deadline — the switch
/// that turns on Pareto winner selection in the portfolio.
[[nodiscard]] bool qos_active(std::span<const double> job_deadlines) noexcept;

/// Scores `schedule` against relative deadlines and machine cost rates.
/// Completion times follow the simulator's commit convention: each
/// machine runs its assigned rows in SPT (ascending ETC) order starting
/// from its ready time. `job_deadlines` is per-row (empty = none
/// anywhere; non-finite entry = no deadline for that row);
/// `machine_cost_rates` is per-column (empty = all zero). Rows with an
/// unassigned/rejected gene are skipped.
[[nodiscard]] QosOutcome evaluate_qos(
    const Schedule& schedule, const EtcMatrix& etc,
    std::span<const double> job_deadlines,
    std::span<const double> machine_cost_rates);

/// Picks the portfolio winner among raced candidates on (makespan,
/// missed, cost) dominance: the non-dominated subset is computed with
/// core/pareto.h's n-objective front, then ties inside the front break
/// lexicographically by (missed, scalar fitness, cost, slot index) — the
/// service would rather keep a promise than shave a second of makespan.
/// `candidates` and `outcomes` are parallel arrays; requires both
/// non-empty and the same length.
[[nodiscard]] std::size_t pick_qos_winner(
    std::span<const Individual> candidates,
    std::span<const QosOutcome> outcomes);

/// Sentinel for "no deadline" inside a non-empty deadline vector.
inline constexpr double kNoDeadline = std::numeric_limits<double>::infinity();

}  // namespace gridsched
