// Admission control at service ingress.
//
// Under overload a scheduler that admits everything misses *every*
// deadline a little instead of keeping most of them: doomed jobs occupy
// machines that promised work needed. The AdmissionController triages
// each job at routing time into one of three states:
//
//   kAccept      scheduled normally (deadline jobs keep deadline-aware
//                treatment downstream).
//   kBestEffort  deadline stripped for scheduling purposes: the job still
//                runs, but no longer competes as urgent. Applied to
//                deadline jobs that cannot possibly finish in time even
//                if started immediately on the best machine — honesty
//                about a promise already broken. Degraded jobs still
//                count as misses in SLO reports; degradation protects the
//                *other* deadlines, it does not hide the miss.
//   kReject      dropped at ingress. Two triggers: (a) the submitting
//                user's cost budget is exhausted (Buyya-style
//                deadline-and-budget constraint), charged per admitted
//                job from an estimated cost; (b) overload shedding — the
//                batch backlog exceeds `overload_backlog` seconds per
//                machine AND the job's deadline cannot be met even at the
//                mean backlog, i.e. the job is both doomed and arriving
//                at the worst time. Best-effort jobs (no deadline) are
//                never rejected, so admission cannot trade throughput of
//                patient work for SLO optics.
//
// Rejected jobs surface as Schedule::kRejected genes in the service's
// plan; the simulator records them (`SimJobRecord::rejected`, counted in
// `SimMetrics::jobs_rejected`) and SLO reports count their deadlines as
// missed.
#pragma once

#include <cstdint>
#include <unordered_map>

namespace gridsched {

enum class AdmissionDecision { kAccept, kBestEffort, kReject };

struct AdmissionConfig {
  bool enabled = false;
  /// Mean per-machine backlog (seconds of queued work) above which the
  /// service counts as overloaded and sheds doomed deadline jobs.
  /// <= 0 disables overload shedding (budget rejection still applies).
  double overload_backlog = 0.0;
};

struct AdmissionStats {
  std::int64_t accepted = 0;
  std::int64_t degraded = 0;
  std::int64_t rejected_budget = 0;
  std::int64_t rejected_overload = 0;

  [[nodiscard]] std::int64_t rejected() const noexcept {
    return rejected_budget + rejected_overload;
  }
};

class AdmissionController {
 public:
  explicit AdmissionController(AdmissionConfig config) : config_(config) {}

  /// Triage one job at an activation.
  ///   deadline_rel   deadline minus now (relative slack); non-finite or
  ///                  negative-infinite semantics: +inf = no deadline.
  ///   best_etc       smallest ETC of the job across live machines.
  ///   mean_backlog   mean per-machine ready time of the batch.
  ///   user/budget    budget account; user < 0 or budget < 0 = unlimited.
  ///   cost_estimate  cost charged to the user's account if admitted.
  [[nodiscard]] AdmissionDecision admit(double deadline_rel, double best_etc,
                                        double mean_backlog, int user,
                                        double budget, double cost_estimate);

  [[nodiscard]] const AdmissionStats& stats() const noexcept { return stats_; }
  [[nodiscard]] double spent(int user) const noexcept;

 private:
  AdmissionConfig config_;
  AdmissionStats stats_;
  std::unordered_map<int, double> spent_;  // user -> charged cost
};

}  // namespace gridsched
