// QoS-annotating workload wrapper.
//
// Takes any WorkloadSource and stamps QoS promises onto its jobs:
// a fraction of jobs get a deadline proportional to their own service
// time (deadline = arrival + slack * workload_mi / reference_mips, slack
// uniform in [slack_min, slack_max]), and jobs are attributed to a small
// user population for budget accounting. Like ClassMixWorkload, every
// QoS draw happens AFTER the base source materialized its stream, so
// wrapping never perturbs the base arrivals/sizes/classes, and the
// annotations ride the trace CSV's deadline/budget/user columns —
// a QoS run records -> replays bit for bit.
#pragma once

#include <memory>
#include <string>

#include "workload/workload_source.h"

namespace gridsched {

struct QosWorkloadConfig {
  /// Fraction of jobs carrying a deadline, in [0, 1].
  double deadline_fraction = 0.7;
  /// Deadline slack multipliers over the job's reference service time.
  double slack_min = 1.5;
  double slack_max = 4.0;
  /// MIPS used to turn workload_mi into the reference service time a
  /// deadline scales from. Pick a fast machine's rating for tight
  /// deadlines, a slow one's for loose.
  double reference_mips = 1000.0;
  /// Users jobs are attributed to (round-robin accounts, uniform draw).
  /// 0 leaves every job anonymous.
  int num_users = 0;
  /// Per-user cost budget stamped on every attributed job; < 0 =
  /// unlimited (no budget column emitted).
  double user_budget = -1.0;
};

class QosWorkload final : public WorkloadSource {
 public:
  QosWorkload(std::shared_ptr<WorkloadSource> base, QosWorkloadConfig config);

  [[nodiscard]] std::string_view name() const noexcept override {
    return name_;
  }
  [[nodiscard]] std::vector<TraceJob> generate(double horizon,
                                               Rng& arrival_rng,
                                               Rng& workload_rng) override;

 private:
  std::shared_ptr<WorkloadSource> base_;
  QosWorkloadConfig config_;
  std::string name_;  // "qos(<base>)"
};

}  // namespace gridsched
