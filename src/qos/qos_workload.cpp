#include "qos/qos_workload.h"

#include <cmath>
#include <stdexcept>
#include <utility>

namespace gridsched {
namespace {

void require(bool ok, const char* message) {
  if (!ok) throw std::invalid_argument(message);
}

}  // namespace

QosWorkload::QosWorkload(std::shared_ptr<WorkloadSource> base,
                         QosWorkloadConfig config)
    : base_(std::move(base)), config_(config) {
  require(base_ != nullptr, "QosWorkload: base source must not be null");
  require(config_.deadline_fraction >= 0 && config_.deadline_fraction <= 1,
          "QosWorkload: deadline_fraction must be in [0, 1]");
  require(config_.slack_min > 0 && config_.slack_max >= config_.slack_min,
          "QosWorkload: need 0 < slack_min <= slack_max");
  require(config_.reference_mips > 0,
          "QosWorkload: reference_mips must be > 0");
  require(config_.num_users >= 0, "QosWorkload: num_users must be >= 0");
  name_ = "qos(" + std::string(base_->name()) + ")";
}

std::vector<TraceJob> QosWorkload::generate(double horizon, Rng& arrival_rng,
                                            Rng& workload_rng) {
  std::vector<TraceJob> jobs = base_->generate(horizon, arrival_rng,
                                               workload_rng);
  // All QoS draws come after the base stream is fully materialized (same
  // discipline as ClassMixWorkload): the wrapped source sees exactly the
  // generator states it would see unwrapped.
  for (TraceJob& job : jobs) {
    if (workload_rng.chance(config_.deadline_fraction)) {
      const double service = job.workload_mi / config_.reference_mips;
      const double slack =
          workload_rng.uniform(config_.slack_min, config_.slack_max);
      job.deadline = job.arrival + slack * service;
    }
    if (config_.num_users > 0) {
      job.user = workload_rng.uniform_int(0, config_.num_users - 1);
      if (config_.user_budget >= 0) job.budget = config_.user_budget;
    }
  }
  return jobs;
}

}  // namespace gridsched
