#include "qos/admission.h"

#include <cmath>

namespace gridsched {

double AdmissionController::spent(int user) const noexcept {
  const auto it = spent_.find(user);
  return it != spent_.end() ? it->second : 0.0;
}

AdmissionDecision AdmissionController::admit(double deadline_rel,
                                            double best_etc,
                                            double mean_backlog, int user,
                                            double budget,
                                            double cost_estimate) {
  if (!config_.enabled) {
    ++stats_.accepted;
    return AdmissionDecision::kAccept;
  }
  // Budget gate first: an exhausted account is rejected no matter how
  // generous its deadline — the user already consumed what they paid for.
  if (user >= 0 && budget >= 0 && spent(user) + cost_estimate > budget) {
    ++stats_.rejected_budget;
    return AdmissionDecision::kReject;
  }
  const bool has_deadline = std::isfinite(deadline_rel);
  // A job is "doomed" when it cannot finish by its deadline even if it
  // started this instant on its best machine. Shedding is restricted to
  // doomed jobs so every rejection frees capacity without costing a
  // deadline that could still have been met.
  const bool doomed = has_deadline && deadline_rel < best_etc;
  const bool overloaded = config_.overload_backlog > 0 &&
                          mean_backlog > config_.overload_backlog;
  if (doomed && overloaded) {
    ++stats_.rejected_overload;
    return AdmissionDecision::kReject;
  }
  if (user >= 0) spent_[user] += cost_estimate;
  if (doomed) {
    ++stats_.degraded;
    return AdmissionDecision::kBestEffort;
  }
  ++stats_.accepted;
  return AdmissionDecision::kAccept;
}

}  // namespace gridsched
