#include "qos/qos.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <tuple>
#include <utility>

#include "core/pareto.h"

namespace gridsched {

bool qos_active(std::span<const double> job_deadlines) noexcept {
  return std::any_of(job_deadlines.begin(), job_deadlines.end(),
                     [](double d) { return std::isfinite(d); });
}

QosOutcome evaluate_qos(const Schedule& schedule, const EtcMatrix& etc,
                        std::span<const double> job_deadlines,
                        std::span<const double> machine_cost_rates) {
  if (!job_deadlines.empty() &&
      job_deadlines.size() != static_cast<std::size_t>(etc.num_jobs())) {
    throw std::invalid_argument("evaluate_qos: deadlines/jobs mismatch");
  }
  if (!machine_cost_rates.empty() &&
      machine_cost_rates.size() !=
          static_cast<std::size_t>(etc.num_machines())) {
    throw std::invalid_argument("evaluate_qos: cost rates/machines mismatch");
  }

  QosOutcome outcome;
  // Per-machine job lists in SPT order — the commit order both the
  // simulator and ScheduleEvaluator use, so "would this assignment miss
  // the deadline" agrees with what the simulator will actually record.
  std::vector<std::vector<std::pair<double, JobId>>> per_machine(
      static_cast<std::size_t>(etc.num_machines()));
  for (JobId job = 0; job < etc.num_jobs(); ++job) {
    const MachineId machine = schedule[job];
    if (machine < 0 || machine >= etc.num_machines()) continue;  // rejected
    const double cost_rate =
        machine_cost_rates.empty()
            ? 0.0
            : machine_cost_rates[static_cast<std::size_t>(machine)];
    outcome.total_cost += etc(job, machine) * cost_rate;
    per_machine[static_cast<std::size_t>(machine)].emplace_back(
        etc(job, machine), job);
  }
  for (MachineId machine = 0; machine < etc.num_machines(); ++machine) {
    auto& jobs = per_machine[static_cast<std::size_t>(machine)];
    std::sort(jobs.begin(), jobs.end());
    double cursor = etc.ready_time(machine);
    for (const auto& [cost, job] : jobs) {
      cursor += cost;
      if (job_deadlines.empty()) continue;
      const double deadline = job_deadlines[static_cast<std::size_t>(job)];
      if (!std::isfinite(deadline)) continue;
      ++outcome.deadline_jobs;
      if (cursor > deadline) {
        ++outcome.missed;
        const double tardiness = cursor - deadline;
        outcome.total_tardiness += tardiness;
        outcome.max_tardiness = std::max(outcome.max_tardiness, tardiness);
      }
    }
  }
  return outcome;
}

std::size_t pick_qos_winner(std::span<const Individual> candidates,
                            std::span<const QosOutcome> outcomes) {
  if (candidates.empty() || candidates.size() != outcomes.size()) {
    throw std::invalid_argument(
        "pick_qos_winner: need parallel non-empty candidates/outcomes");
  }
  std::vector<std::vector<double>> points;
  points.reserve(candidates.size());
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    points.push_back({candidates[i].objectives.makespan,
                      static_cast<double>(outcomes[i].missed),
                      outcomes[i].total_cost});
  }
  const std::vector<std::size_t> front = pareto_front_indices(points);
  // Within the front, promises first: fewest misses, then scalar fitness
  // (the pre-QoS ranking), then cost; the index itself makes ties total.
  std::size_t best = front.front();
  for (const std::size_t i : front) {
    const auto key = [&](std::size_t k) {
      return std::make_tuple(outcomes[k].missed, candidates[k].fitness,
                             outcomes[k].total_cost, k);
    };
    if (key(i) < key(best)) best = i;
  }
  return best;
}

}  // namespace gridsched
