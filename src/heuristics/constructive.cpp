#include "heuristics/constructive.h"

#include <algorithm>
#include <array>
#include <limits>
#include <numeric>
#include <stdexcept>
#include <utility>
#include <vector>

namespace gridsched {
namespace {

/// Tracks machine completion times while a heuristic builds a schedule.
///
/// Structure-of-arrays hot path: `completion_` is one contiguous double
/// array, and every per-job scan walks it in lockstep with the job's
/// contiguous ETC row. The scans are split into branch-light passes (a
/// pure min-reduction the compiler can vectorize, then an index-recovery
/// pass) instead of one branchy argmin loop. Both passes compare the exact
/// same `completion + etc` doubles the one-pass scan would, and FP min is
/// exact, so the split reproduces the classic first-strict-minimum result
/// bitwise — test_heuristics pins that equivalence.
class MachineLoads {
 public:
  explicit MachineLoads(const EtcMatrix& etc) : etc_(&etc) {
    completion_.assign(etc.ready_times().begin(), etc.ready_times().end());
  }

  [[nodiscard]] double completion(MachineId m) const noexcept {
    return completion_[static_cast<std::size_t>(m)];
  }

  [[nodiscard]] double completion_with(JobId j, MachineId m) const noexcept {
    return completion(m) + (*etc_)(j, m);
  }

  /// Argmin machine plus its completion time, fused in one scan pair.
  struct Best {
    MachineId machine;
    double completion;
  };

  /// Best plus the runner-up completion over the *other* machines
  /// (Sufferage's "second-best earliest completion").
  struct BestAndSecond {
    MachineId machine;
    double completion;
    double second;  // +infinity on single-machine instances
  };

  /// Machine minimizing the completion time of job j (ties: lowest id),
  /// together with that completion time.
  [[nodiscard]] Best best(JobId j) const noexcept {
    const std::span<const double> row = etc_->row(j);
    const std::size_t m = completion_.size();
    double best_c = completion_[0] + row[0];
    for (std::size_t i = 1; i < m; ++i) {
      best_c = std::min(best_c, completion_[i] + row[i]);
    }
    std::size_t arg = 0;
    while (arg + 1 < m && completion_[arg] + row[arg] != best_c) ++arg;
    return {static_cast<MachineId>(arg), best_c};
  }

  [[nodiscard]] MachineId best_machine(JobId j) const noexcept {
    return best(j).machine;
  }

  /// best() plus the minimum completion over the remaining machines.
  /// Later duplicates of the minimum feed the runner-up, exactly like the
  /// skip-the-argmin rescan they replace.
  [[nodiscard]] BestAndSecond best_and_second(JobId j) const noexcept {
    const Best b = best(j);
    const std::span<const double> row = etc_->row(j);
    const std::size_t m = completion_.size();
    const std::size_t skip = static_cast<std::size_t>(b.machine);
    double second = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < m; ++i) {
      if (i == skip) continue;
      second = std::min(second, completion_[i] + row[i]);
    }
    return {b.machine, b.completion, second};
  }

  /// Machine with the lowest current completion time (ties: lowest id).
  [[nodiscard]] MachineId earliest_free() const noexcept {
    return static_cast<MachineId>(std::distance(
        completion_.begin(),
        std::min_element(completion_.begin(), completion_.end())));
  }

  void assign(Schedule& schedule, JobId j, MachineId m) noexcept {
    schedule[j] = m;
    completion_[static_cast<std::size_t>(m)] += (*etc_)(j, m);
  }

 private:
  const EtcMatrix* etc_;
  std::vector<double> completion_;
};

/// Deadline tail of the O(n^2 m) batch heuristics: one MCT pass over the
/// not-yet-committed jobs (id order, earliest completion given the loads
/// built so far). O(n m) — always affordable, and the schedule stays
/// complete.
void mct_tail(Schedule& schedule, MachineLoads& loads,
              std::vector<JobId>& unassigned) {
  std::sort(unassigned.begin(), unassigned.end());
  for (const JobId j : unassigned) {
    loads.assign(schedule, j, loads.best_machine(j));
  }
  unassigned.clear();
}

/// How often the O(n m) one-pass heuristics poll the token: rarely enough
/// that the clock read disappears against the per-job column scan.
constexpr JobId kPollStride = 64;

/// Deadline tail of the one-pass heuristics: remaining jobs round-robin
/// over the machines, O(1) per job and load-blind — the cheapest complete
/// assignment there is.
void round_robin_tail(Schedule& schedule, MachineLoads& loads,
                      const EtcMatrix& etc, JobId from) {
  for (JobId j = from; j < etc.num_jobs(); ++j) {
    loads.assign(schedule, j, j % etc.num_machines());
  }
}

/// Shared skeleton of Max-Min / Sufferage: repeatedly score every
/// unassigned job (the score function returns the target machine and the
/// job's score in one fused scan) and commit the highest-scoring one; once
/// `cancel` fires, the remaining jobs fall to the MCT tail.
template <typename ScoreFn>
Schedule greedy_batch(const EtcMatrix& etc, const CancellationToken& cancel,
                      ScoreFn score_job) {
  Schedule schedule(etc.num_jobs());
  MachineLoads loads(etc);
  std::vector<JobId> unassigned(static_cast<std::size_t>(etc.num_jobs()));
  std::iota(unassigned.begin(), unassigned.end(), 0);

  while (!unassigned.empty() && !cancel.cancelled()) {
    std::size_t pick_idx = 0;
    double pick_score = -std::numeric_limits<double>::infinity();
    MachineId pick_machine = 0;
    for (std::size_t i = 0; i < unassigned.size(); ++i) {
      const JobId j = unassigned[i];
      const auto [machine, score] = score_job(loads, j);
      if (score > pick_score) {
        pick_score = score;
        pick_idx = i;
        pick_machine = machine;
      }
    }
    loads.assign(schedule, unassigned[pick_idx], pick_machine);
    unassigned[pick_idx] = unassigned.back();
    unassigned.pop_back();
  }
  mct_tail(schedule, loads, unassigned);
  return schedule;
}

}  // namespace

std::string_view heuristic_name(HeuristicKind kind) noexcept {
  switch (kind) {
    case HeuristicKind::kLjfrSjfr: return "LJFR-SJFR";
    case HeuristicKind::kMinMin: return "Min-Min";
    case HeuristicKind::kMaxMin: return "Max-Min";
    case HeuristicKind::kMct: return "MCT";
    case HeuristicKind::kMet: return "MET";
    case HeuristicKind::kOlb: return "OLB";
    case HeuristicKind::kSufferage: return "Sufferage";
    case HeuristicKind::kRandom: return "Random";
  }
  return "?";
}

std::span<const HeuristicKind> all_heuristics() noexcept {
  static constexpr std::array<HeuristicKind, 8> kAll = {
      HeuristicKind::kLjfrSjfr, HeuristicKind::kMinMin,
      HeuristicKind::kMaxMin,   HeuristicKind::kMct,
      HeuristicKind::kMet,      HeuristicKind::kOlb,
      HeuristicKind::kSufferage, HeuristicKind::kRandom,
  };
  return kAll;
}

Schedule construct_schedule(HeuristicKind kind, const EtcMatrix& etc,
                            Rng& rng) {
  return construct_schedule(kind, etc, rng, CancellationToken{});
}

Schedule construct_schedule(HeuristicKind kind, const EtcMatrix& etc,
                            Rng& rng, const CancellationToken& cancel) {
  switch (kind) {
    case HeuristicKind::kLjfrSjfr: return ljfr_sjfr(etc, cancel);
    case HeuristicKind::kMinMin: return min_min(etc, cancel);
    case HeuristicKind::kMaxMin: return max_min(etc, cancel);
    case HeuristicKind::kMct: return mct(etc, cancel);
    case HeuristicKind::kMet: return met(etc, cancel);
    case HeuristicKind::kOlb: return olb(etc, cancel);
    case HeuristicKind::kSufferage: return sufferage(etc, cancel);
    case HeuristicKind::kRandom:
      return Schedule::random(etc.num_jobs(), etc.num_machines(), rng);
  }
  throw std::invalid_argument("construct_schedule: unknown heuristic");
}

Schedule ljfr_sjfr(const EtcMatrix& etc) {
  return ljfr_sjfr(etc, CancellationToken{});
}

Schedule ljfr_sjfr(const EtcMatrix& etc, const CancellationToken& cancel) {
  const int n = etc.num_jobs();
  const int m = etc.num_machines();
  Schedule schedule(n);
  MachineLoads loads(etc);

  // Jobs ascending by workload (mean-ETC proxy); machines descending by
  // speed (smaller mean column ETC = faster machine).
  std::vector<JobId> jobs(static_cast<std::size_t>(n));
  std::iota(jobs.begin(), jobs.end(), 0);
  std::vector<double> workload(static_cast<std::size_t>(n));
  for (JobId j = 0; j < n; ++j) {
    workload[static_cast<std::size_t>(j)] = etc.mean_row(j);
  }
  std::sort(jobs.begin(), jobs.end(), [&](JobId a, JobId b) {
    const double wa = workload[static_cast<std::size_t>(a)];
    const double wb = workload[static_cast<std::size_t>(b)];
    return wa != wb ? wa < wb : a < b;
  });

  // Column means over the machine-major mirror: one contiguous
  // accumulate per machine (same j-ascending summation order as the old
  // row-major double loop, so the means are bitwise unchanged).
  std::vector<double> column_mean(static_cast<std::size_t>(m), 0.0);
  for (MachineId mm = 0; mm < m; ++mm) {
    const auto col = etc.machine_row(mm);
    column_mean[static_cast<std::size_t>(mm)] =
        std::accumulate(col.begin(), col.end(), 0.0);
  }
  std::vector<MachineId> machines_by_speed(static_cast<std::size_t>(m));
  std::iota(machines_by_speed.begin(), machines_by_speed.end(), 0);
  std::sort(machines_by_speed.begin(), machines_by_speed.end(),
            [&](MachineId a, MachineId b) {
              const double ca = column_mean[static_cast<std::size_t>(a)];
              const double cb = column_mean[static_cast<std::size_t>(b)];
              return ca != cb ? ca < cb : a < b;
            });

  // Phase 1 (pure LJFR): the m longest jobs, longest to the fastest machine.
  std::size_t lo = 0;                         // shortest unassigned
  std::size_t hi = jobs.size();               // one past longest unassigned
  const std::size_t initial = std::min<std::size_t>(
      static_cast<std::size_t>(m), jobs.size());
  for (std::size_t i = 0; i < initial; ++i) {
    loads.assign(schedule, jobs[--hi], machines_by_speed[i]);
  }

  // Phase 2: each step the least-loaded machine takes, alternately, the
  // shortest remaining job (SJFR) then the longest (LJFR).
  bool take_shortest = true;
  JobId since_poll = 0;
  while (lo < hi) {
    if (++since_poll >= kPollStride) {
      since_poll = 0;
      if (cancel.cancelled()) break;
    }
    const MachineId target = loads.earliest_free();
    const JobId job = take_shortest ? jobs[lo++] : jobs[--hi];
    loads.assign(schedule, job, target);
    take_shortest = !take_shortest;
  }
  // Deadline fired: the remaining window goes round-robin over machines.
  for (std::size_t i = lo; i < hi; ++i) {
    loads.assign(schedule, jobs[i],
                 static_cast<MachineId>(i - lo) % etc.num_machines());
  }
  return schedule;
}

Schedule min_min(const EtcMatrix& etc) {
  // Delegation keeps the budget-honoring variant bit-identical by
  // construction (an invalid token never fires, so the whole schedule is
  // the committed prefix).
  return min_min(etc, CancellationToken{});
}

Schedule min_min(const EtcMatrix& etc, const CancellationToken& cancel) {
  Schedule schedule(etc.num_jobs());
  MachineLoads loads(etc);
  std::vector<JobId> unassigned(static_cast<std::size_t>(etc.num_jobs()));
  std::iota(unassigned.begin(), unassigned.end(), 0);

  while (!unassigned.empty() && !cancel.cancelled()) {
    std::size_t pick_idx = 0;
    double pick_score = std::numeric_limits<double>::infinity();
    MachineId pick_machine = 0;
    for (std::size_t i = 0; i < unassigned.size(); ++i) {
      const auto b = loads.best(unassigned[i]);
      if (b.completion < pick_score) {
        pick_score = b.completion;
        pick_idx = i;
        pick_machine = b.machine;
      }
    }
    loads.assign(schedule, unassigned[pick_idx], pick_machine);
    unassigned[pick_idx] = unassigned.back();
    unassigned.pop_back();
  }

  mct_tail(schedule, loads, unassigned);
  return schedule;
}

Schedule max_min(const EtcMatrix& etc) {
  return max_min(etc, CancellationToken{});
}

Schedule max_min(const EtcMatrix& etc, const CancellationToken& cancel) {
  return greedy_batch(etc, cancel, [](const MachineLoads& loads, JobId j) {
    const auto b = loads.best(j);
    return std::pair<MachineId, double>{b.machine, b.completion};
  });
}

Schedule sufferage(const EtcMatrix& etc) {
  return sufferage(etc, CancellationToken{});
}

Schedule sufferage(const EtcMatrix& etc, const CancellationToken& cancel) {
  return greedy_batch(etc, cancel, [](const MachineLoads& loads, JobId j) {
    const auto bs = loads.best_and_second(j);
    // Single-machine instances have no second-best; sufferage degenerates
    // to arbitrary order there.
    const double score =
        bs.second == std::numeric_limits<double>::infinity()
            ? 0.0
            : bs.second - bs.completion;
    return std::pair<MachineId, double>{bs.machine, score};
  });
}

Schedule mct(const EtcMatrix& etc) { return mct(etc, CancellationToken{}); }

Schedule mct(const EtcMatrix& etc, const CancellationToken& cancel) {
  Schedule schedule(etc.num_jobs());
  MachineLoads loads(etc);
  for (JobId j = 0; j < etc.num_jobs(); ++j) {
    if (j % kPollStride == 0 && cancel.cancelled()) {
      round_robin_tail(schedule, loads, etc, j);
      return schedule;
    }
    loads.assign(schedule, j, loads.best_machine(j));
  }
  return schedule;
}

Schedule met(const EtcMatrix& etc) { return met(etc, CancellationToken{}); }

Schedule met(const EtcMatrix& etc, const CancellationToken& cancel) {
  Schedule schedule(etc.num_jobs());
  MachineLoads loads(etc);
  for (JobId j = 0; j < etc.num_jobs(); ++j) {
    if (j % kPollStride == 0 && cancel.cancelled()) {
      round_robin_tail(schedule, loads, etc, j);
      return schedule;
    }
    const auto row = etc.row(j);
    const auto it = std::min_element(row.begin(), row.end());
    loads.assign(schedule, j,
                 static_cast<MachineId>(std::distance(row.begin(), it)));
  }
  return schedule;
}

Schedule olb(const EtcMatrix& etc) { return olb(etc, CancellationToken{}); }

Schedule olb(const EtcMatrix& etc, const CancellationToken& cancel) {
  Schedule schedule(etc.num_jobs());
  MachineLoads loads(etc);
  for (JobId j = 0; j < etc.num_jobs(); ++j) {
    if (j % kPollStride == 0 && cancel.cancelled()) {
      round_robin_tail(schedule, loads, etc, j);
      return schedule;
    }
    loads.assign(schedule, j, loads.earliest_free());
  }
  return schedule;
}

}  // namespace gridsched
