// Constructive (one-pass) scheduling heuristics.
//
// LJFR-SJFR is the paper's population seed and the Table 4 baseline. The
// rest are the classic immediate/batch heuristics of Braun et al. (2001),
// provided both as comparison baselines and as alternative population seeds:
//
//   MCT       assign each job (in id order) to the machine that completes
//             it earliest given current loads.
//   MET       machine with the smallest ETC for the job, ignoring load.
//   OLB       machine that becomes free earliest, ignoring ETC.
//   Min-Min   repeatedly commit the (job, machine) pair with the globally
//             smallest completion time.
//   Max-Min   like Min-Min but commits the job whose best completion time
//             is largest (places long jobs first).
//   Sufferage commits the job that would "suffer" most if denied its best
//             machine (largest best-vs-second-best gap).
//   Random    uniform assignment (control baseline).
//
// LJFR-SJFR (Abraham, Buyya & Nath 2000), as described in Section 3.2 of
// the paper: jobs are sorted by workload; the m longest jobs go to the m
// machines, longest job to fastest machine; each remaining step picks the
// machine with the least completion time and gives it alternately the
// shortest (SJFR) or the longest (LJFR) remaining job. Workload and machine
// speed use the mean-ETC proxies documented in DESIGN.md section 3.
#pragma once

#include <span>
#include <string_view>

#include "common/cancellation.h"
#include "common/rng.h"
#include "core/schedule.h"
#include "etc/etc_matrix.h"

namespace gridsched {

enum class HeuristicKind {
  kLjfrSjfr,
  kMinMin,
  kMaxMin,
  kMct,
  kMet,
  kOlb,
  kSufferage,
  kRandom,
};

[[nodiscard]] std::string_view heuristic_name(HeuristicKind kind) noexcept;

/// All heuristics, in a stable display order.
[[nodiscard]] std::span<const HeuristicKind> all_heuristics() noexcept;

/// Runs one heuristic. `rng` is only consumed by kRandom (and for
/// deterministic tie-breaking elsewhere it is not needed: ties break toward
/// the lowest machine id so results are reproducible without randomness).
[[nodiscard]] Schedule construct_schedule(HeuristicKind kind,
                                          const EtcMatrix& etc, Rng& rng);

[[nodiscard]] Schedule ljfr_sjfr(const EtcMatrix& etc);
[[nodiscard]] Schedule min_min(const EtcMatrix& etc);

/// Budget-honoring Min-Min: polls `cancel` between commit rounds and, once
/// it fires, completes the remaining jobs with the MCT rule (each in id
/// order to the machine that finishes it earliest given the loads built so
/// far). Min-Min is O(n^2 m) — "negligible" only while batches are small;
/// at production batch sizes an uncancellable Min-Min would bust any
/// activation budget, silently converting a latency contract into a lie.
/// The prefix it did commit is exactly plain Min-Min's, so an unfired
/// token yields the identical schedule.
[[nodiscard]] Schedule min_min(const EtcMatrix& etc,
                               const CancellationToken& cancel);
[[nodiscard]] Schedule max_min(const EtcMatrix& etc);
[[nodiscard]] Schedule mct(const EtcMatrix& etc);
[[nodiscard]] Schedule met(const EtcMatrix& etc);
[[nodiscard]] Schedule olb(const EtcMatrix& etc);
[[nodiscard]] Schedule sufferage(const EtcMatrix& etc);

}  // namespace gridsched
