// Constructive (one-pass) scheduling heuristics.
//
// LJFR-SJFR is the paper's population seed and the Table 4 baseline. The
// rest are the classic immediate/batch heuristics of Braun et al. (2001),
// provided both as comparison baselines and as alternative population seeds:
//
//   MCT       assign each job (in id order) to the machine that completes
//             it earliest given current loads.
//   MET       machine with the smallest ETC for the job, ignoring load.
//   OLB       machine that becomes free earliest, ignoring ETC.
//   Min-Min   repeatedly commit the (job, machine) pair with the globally
//             smallest completion time.
//   Max-Min   like Min-Min but commits the job whose best completion time
//             is largest (places long jobs first).
//   Sufferage commits the job that would "suffer" most if denied its best
//             machine (largest best-vs-second-best gap).
//   Random    uniform assignment (control baseline).
//
// LJFR-SJFR (Abraham, Buyya & Nath 2000), as described in Section 3.2 of
// the paper: jobs are sorted by workload; the m longest jobs go to the m
// machines, longest job to fastest machine; each remaining step picks the
// machine with the least completion time and gives it alternately the
// shortest (SJFR) or the longest (LJFR) remaining job. Workload and machine
// speed use the mean-ETC proxies documented in DESIGN.md section 3.
#pragma once

#include <span>
#include <string_view>

#include "common/cancellation.h"
#include "common/rng.h"
#include "core/schedule.h"
#include "etc/etc_matrix.h"

namespace gridsched {

enum class HeuristicKind {
  kLjfrSjfr,
  kMinMin,
  kMaxMin,
  kMct,
  kMet,
  kOlb,
  kSufferage,
  kRandom,
};

[[nodiscard]] std::string_view heuristic_name(HeuristicKind kind) noexcept;

/// All heuristics, in a stable display order.
[[nodiscard]] std::span<const HeuristicKind> all_heuristics() noexcept;

/// Runs one heuristic. `rng` is only consumed by kRandom (and for
/// deterministic tie-breaking elsewhere it is not needed: ties break toward
/// the lowest machine id so results are reproducible without randomness).
[[nodiscard]] Schedule construct_schedule(HeuristicKind kind,
                                          const EtcMatrix& etc, Rng& rng);

/// Budget-honoring variant: threads `cancel` into the heuristic (see the
/// per-function contracts below). kRandom is O(n) and ignores the token.
[[nodiscard]] Schedule construct_schedule(HeuristicKind kind,
                                          const EtcMatrix& etc, Rng& rng,
                                          const CancellationToken& cancel);

// Every heuristic has a budget-honoring overload taking a
// CancellationToken. The shared contract, mirrored from Min-Min's: the
// committed prefix is exactly what the plain form would have built, so an
// unfired (or invalid) token yields the identical schedule, and a fired
// one still returns a COMPLETE schedule via a strictly cheaper tail rule:
//
//   * the O(n^2 m) batch heuristics (Min-Min, Max-Min, Sufferage) poll
//     between commit rounds and finish the tail with one O(n m) MCT pass
//     (remaining jobs in id order, each to the machine that completes it
//     earliest given the loads built so far);
//   * the O(n m) one-pass heuristics (MCT, MET, OLB, LJFR-SJFR) poll
//     every few jobs and dump the tail round-robin over the machines —
//     O(1) per job, load-blind, but any complete answer beats busting
//     the activation deadline (the portfolio's ensemble rule discards a
//     degraded member result whenever a better one finished in time).

[[nodiscard]] Schedule ljfr_sjfr(const EtcMatrix& etc);
[[nodiscard]] Schedule ljfr_sjfr(const EtcMatrix& etc,
                                 const CancellationToken& cancel);
[[nodiscard]] Schedule min_min(const EtcMatrix& etc);
[[nodiscard]] Schedule min_min(const EtcMatrix& etc,
                               const CancellationToken& cancel);
[[nodiscard]] Schedule max_min(const EtcMatrix& etc);
[[nodiscard]] Schedule max_min(const EtcMatrix& etc,
                               const CancellationToken& cancel);
[[nodiscard]] Schedule mct(const EtcMatrix& etc);
[[nodiscard]] Schedule mct(const EtcMatrix& etc,
                           const CancellationToken& cancel);
[[nodiscard]] Schedule met(const EtcMatrix& etc);
[[nodiscard]] Schedule met(const EtcMatrix& etc,
                           const CancellationToken& cancel);
[[nodiscard]] Schedule olb(const EtcMatrix& etc);
[[nodiscard]] Schedule olb(const EtcMatrix& etc,
                           const CancellationToken& cancel);
[[nodiscard]] Schedule sufferage(const EtcMatrix& etc);
[[nodiscard]] Schedule sufferage(const EtcMatrix& etc,
                                 const CancellationToken& cancel);

}  // namespace gridsched
