#include "core/bounds.h"

#include <algorithm>
#include <limits>

namespace gridsched {

double ready_time_bound(const EtcMatrix& etc) noexcept {
  double bound = 0.0;
  for (MachineId m = 0; m < etc.num_machines(); ++m) {
    bound = std::max(bound, etc.ready_time(m));
  }
  return bound;
}

double job_lower_bound(const EtcMatrix& etc) noexcept {
  double bound = 0.0;
  for (JobId j = 0; j < etc.num_jobs(); ++j) {
    double best = std::numeric_limits<double>::infinity();
    for (MachineId m = 0; m < etc.num_machines(); ++m) {
      best = std::min(best, etc.ready_time(m) + etc(j, m));
    }
    bound = std::max(bound, best);
  }
  return bound;
}

double load_lower_bound(const EtcMatrix& etc) noexcept {
  double total = 0.0;
  for (JobId j = 0; j < etc.num_jobs(); ++j) total += etc.min_row(j);
  for (MachineId m = 0; m < etc.num_machines(); ++m) {
    total += etc.ready_time(m);
  }
  return total / static_cast<double>(etc.num_machines());
}

double makespan_lower_bound(const EtcMatrix& etc) noexcept {
  return std::max({ready_time_bound(etc), job_lower_bound(etc),
                   load_lower_bound(etc)});
}

double flowtime_lower_bound(const EtcMatrix& etc) noexcept {
  double total = 0.0;
  for (JobId j = 0; j < etc.num_jobs(); ++j) total += etc.min_row(j);
  return total;
}

}  // namespace gridsched
