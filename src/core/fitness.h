// The paper's scalarized bi-objective fitness (Section 2, Eq. 3):
//
//   fitness = lambda * makespan + (1 - lambda) * flowtime / num_machines
//
// Mean flowtime (rather than raw flowtime) keeps the two terms in comparable
// magnitude; lambda = 0.75 is the paper's tuned weight.
#pragma once

namespace gridsched {

struct FitnessWeights {
  double lambda = 0.75;

  [[nodiscard]] constexpr double combine(double makespan,
                                         double mean_flowtime) const noexcept {
    return lambda * makespan + (1.0 - lambda) * mean_flowtime;
  }
};

/// The two raw objective values of a schedule.
struct Objectives {
  double makespan = 0.0;
  double flowtime = 0.0;

  [[nodiscard]] constexpr double mean_flowtime(int num_machines) const noexcept {
    return flowtime / static_cast<double>(num_machines);
  }

  [[nodiscard]] constexpr double fitness(const FitnessWeights& w,
                                         int num_machines) const noexcept {
    return w.combine(makespan, mean_flowtime(num_machines));
  }
};

}  // namespace gridsched
