// An evaluated solution: the unit every evolutionary algorithm in the
// library (cMA, Braun GA, steady-state GA, Struggle GA) manipulates.
#pragma once

#include <limits>

#include "core/evaluator.h"
#include "core/fitness.h"
#include "core/schedule.h"

namespace gridsched {

struct Individual {
  Schedule schedule;
  Objectives objectives;
  double fitness = std::numeric_limits<double>::infinity();

  /// Minimization: lower fitness is better.
  [[nodiscard]] bool better_than(const Individual& other) const noexcept {
    return fitness < other.fitness;
  }
};

/// Fully evaluates `schedule` against `etc` and packages it. O(n log n).
[[nodiscard]] Individual make_individual(Schedule schedule,
                                         const EtcMatrix& etc,
                                         const FitnessWeights& weights);

/// Re-evaluates an individual in place (after its schedule was mutated).
void evaluate_individual(Individual& individual, const EtcMatrix& etc,
                         const FitnessWeights& weights);

/// Copies the evaluator's current state (schedule + objectives) into an
/// Individual without re-evaluating.
[[nodiscard]] Individual individual_from_evaluator(
    const ScheduleEvaluator& evaluator, const FitnessWeights& weights);

/// In-place variant for the offspring pipeline: canonicalizes the
/// evaluator (so the published objectives are bitwise identical to a
/// from-scratch evaluation) and overwrites `out`, reusing its schedule
/// capacity — allocation-free at steady state.
void assign_from_evaluator(Individual& out, ScheduleEvaluator& evaluator,
                           const FitnessWeights& weights);

}  // namespace gridsched
