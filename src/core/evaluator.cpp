#include "core/evaluator.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace gridsched {
namespace {

/// Branchless lower bound over a sorted (etc, job) list: same result as
/// std::lower_bound, but the halving step compiles to a conditional move
/// instead of a data-dependent branch. Previews sit on this search four
/// times per call, and the lists are short (tens of entries) — exactly the
/// regime where branch mispredicts dominate a classic binary search.
inline std::size_t sorted_pos(const std::vector<std::pair<double, JobId>>& v,
                              const std::pair<double, JobId>& key) noexcept {
  const std::pair<double, JobId>* base = v.data();
  std::size_t n = v.size();
  while (n > 1) {
    const std::size_t half = n / 2;
    base += (base[half - 1] < key) ? half : 0;
    n -= half;
  }
  return static_cast<std::size_t>(base - v.data()) +
         ((n == 1 && *base < key) ? 1 : 0);
}

}  // namespace

ScheduleEvaluator::ScheduleEvaluator(const EtcMatrix& etc) : etc_(&etc) {
  machines_.resize(static_cast<std::size_t>(etc.num_machines()));
  dirty_flag_.assign(static_cast<std::size_t>(etc.num_machines()), 0);
  dirty_list_.reserve(8);
  job_pos_.assign(static_cast<std::size_t>(etc.num_jobs()), 0);
  rebuild_caches();
}

void ScheduleEvaluator::reset(const Schedule& schedule) {
  if (schedule.num_jobs() != etc_->num_jobs()) {
    throw std::invalid_argument("ScheduleEvaluator: schedule size mismatch");
  }
  if (!schedule.complete(etc_->num_machines())) {
    throw std::invalid_argument("ScheduleEvaluator: incomplete schedule");
  }
  schedule_ = schedule;
  for (auto& m : machines_) m.jobs.clear();
  for (JobId j = 0; j < etc_->num_jobs(); ++j) {
    const MachineId m = schedule_[j];
    machines_[static_cast<std::size_t>(m)].jobs.emplace_back((*etc_)(j, m), j);
  }
  for (MachineId m = 0; m < num_machines(); ++m) {
    auto& state = machines_[static_cast<std::size_t>(m)];
    std::sort(state.jobs.begin(), state.jobs.end());
    recompute_machine(m);
  }
  rebuild_caches();
}

void ScheduleEvaluator::reset_to(const Schedule& target) {
  const int n = etc_->num_jobs();
  if (schedule_.num_jobs() != n || target.num_jobs() != n) {
    reset(target);
    return;
  }
  const auto cur = schedule_.genes();
  const auto tgt = target.genes();
  int diff = 0;
  for (int j = 0; j < n; ++j) diff += cur[j] != tgt[j] ? 1 : 0;
  // Past ~n/4 changed genes the per-gene list surgery (O(k) each) loses to
  // one O(n log n) rebuild. The threshold cannot affect results: both
  // paths end in the same canonical state.
  if (4 * diff >= n) {
    reset(target);
    return;
  }
  for (int j = 0; j < n; ++j) {
    const MachineId g_old = cur[j];
    const MachineId g_new = tgt[j];
    if (g_old == g_new) continue;
    if (g_new < 0 || g_new >= num_machines()) {
      throw std::invalid_argument("ScheduleEvaluator: reset_to gene out of range");
    }
    list_erase(machines_[static_cast<std::size_t>(g_old)], (*etc_)(j, g_old),
               j);
    list_insert(machines_[static_cast<std::size_t>(g_new)], (*etc_)(j, g_new),
                j);
    mark_dirty(g_old);
    mark_dirty(g_new);
    schedule_[j] = g_new;
  }
  canonicalize();
}

double ScheduleEvaluator::makespan() const {
  if (machines_.empty()) {
    throw std::logic_error("ScheduleEvaluator::makespan: no machines");
  }
  return std::max(0.0, topk_[0].completion);
}

MachineId ScheduleEvaluator::makespan_machine() const {
  if (machines_.empty()) {
    throw std::logic_error("ScheduleEvaluator::makespan_machine: no machines");
  }
  return topk_[0].machine;
}

double ScheduleEvaluator::rest_completion(MachineId x,
                                          MachineId y) const noexcept {
  // Invariant: entries are sorted best-first and dominate every non-cached
  // machine, so the first entry not owned by x or y is the exact maximum
  // over all other machines. With fewer than 3 machines there may be no
  // such entry; 0.0 matches the empty-fold convention of the objectives.
  for (int i = 0; i < topk_size_; ++i) {
    if (topk_[i].machine != x && topk_[i].machine != y) {
      return topk_[i].completion;
    }
  }
  return 0.0;
}

void ScheduleEvaluator::topk_offer(double completion, MachineId m) {
  const int cap = top_capacity();
  int pos = topk_size_;
  while (pos > 0 && top_better(completion, m, topk_[static_cast<std::size_t>(
                                                  pos - 1)].completion,
                               topk_[static_cast<std::size_t>(pos - 1)]
                                   .machine)) {
    --pos;
  }
  if (pos >= cap) return;
  const int last = topk_size_ < cap - 1 ? topk_size_ : cap - 1;
  for (int i = last; i > pos; --i) {
    topk_[static_cast<std::size_t>(i)] = topk_[static_cast<std::size_t>(i - 1)];
  }
  topk_[static_cast<std::size_t>(pos)] = {completion, m};
  if (topk_size_ < cap) ++topk_size_;
}

void ScheduleEvaluator::topk_update(MachineId m, double completion) {
  int idx = -1;
  for (int i = 0; i < topk_size_; ++i) {
    if (topk_[static_cast<std::size_t>(i)].machine == m) {
      idx = i;
      break;
    }
  }
  if (idx >= 0) {
    const TopEntry worst = topk_[static_cast<std::size_t>(topk_size_ - 1)];
    for (int i = idx; i < topk_size_ - 1; ++i) {
      topk_[static_cast<std::size_t>(i)] =
          topk_[static_cast<std::size_t>(i + 1)];
    }
    --topk_size_;
    if (topk_size_ + 1 == num_machines() ||
        !top_better(worst.completion, worst.machine, completion, m)) {
      // Either every machine is cached (no unknowns to fall behind) or the
      // new value still dominates the old cut line: re-insert in place.
      topk_offer(completion, m);
    } else {
      // The machine dropped below the old worst entry; an uncached machine
      // may now outrank it, so rebuild the cache from scratch. O(m), but
      // only on applies (previews never take this path).
      topk_rebuild();
    }
    return;
  }
  if (topk_size_ < top_capacity() ||
      top_better(completion, m,
                 topk_[static_cast<std::size_t>(topk_size_ - 1)].completion,
                 topk_[static_cast<std::size_t>(topk_size_ - 1)].machine)) {
    topk_offer(completion, m);
  }
  // else: still dominated by the cached worst — the invariant holds as-is.
}

void ScheduleEvaluator::topk_rebuild() {
  topk_size_ = 0;
  for (MachineId m = 0; m < num_machines(); ++m) {
    topk_offer(machines_[static_cast<std::size_t>(m)].completion, m);
  }
}

void ScheduleEvaluator::recompute_machine(MachineId m) {
  auto& state = machines_[static_cast<std::size_t>(m)];
  const double ready = etc_->ready_time(m);
  const std::size_t k = state.jobs.size();
  double sum = 0.0;
  double flow = 0.0;
  // Ascending ETC = SPT execution order: the i-th job (0-based) finishes at
  // ready + prefix_sum(i); summing those gives
  //   flow = k*ready + sum_i (k - i) * etc_i.
  state.prefix.resize(k + 1);
  state.prefix[0] = 0.0;
  state.keys.resize(k);
  for (std::size_t i = 0; i < k; ++i) {
    sum += state.jobs[i].first;
    state.prefix[i + 1] = sum;
    flow += static_cast<double>(k - i) * state.jobs[i].first;
    state.keys[i] = state.jobs[i].first;
    job_pos_[static_cast<std::size_t>(state.jobs[i].second)] =
        static_cast<int>(i);
  }
  state.completion = ready + sum;
  state.flow = flow + static_cast<double>(k) * ready;
}

void ScheduleEvaluator::rebuild_prefix(MachineState& state) {
  const std::size_t k = state.jobs.size();
  state.prefix.resize(k + 1);
  state.prefix[0] = 0.0;
  double sum = 0.0;
  for (std::size_t i = 0; i < k; ++i) {
    sum += state.jobs[i].first;
    state.prefix[i + 1] = sum;
  }
}

void ScheduleEvaluator::list_insert(MachineState& state, double etc,
                                    JobId job) {
  const std::pair<double, JobId> entry{etc, job};
  const std::size_t q = sorted_pos(state.jobs, entry);
  state.jobs.insert(state.jobs.begin() + static_cast<std::ptrdiff_t>(q),
                    entry);
  state.keys.insert(state.keys.begin() + static_cast<std::ptrdiff_t>(q), etc);
  // The insert shifted every later job one slot right; refresh their ranks.
  for (std::size_t i = q; i < state.jobs.size(); ++i) {
    job_pos_[static_cast<std::size_t>(state.jobs[i].second)] =
        static_cast<int>(i);
  }
}

void ScheduleEvaluator::list_erase(MachineState& state, double etc,
                                   JobId job) {
  const std::pair<double, JobId> entry{etc, job};
  const std::size_t p = sorted_pos(state.jobs, entry);
  if (p >= state.jobs.size() || state.jobs[p].second != job) {
    throw std::logic_error("ScheduleEvaluator: job not on expected machine");
  }
  state.jobs.erase(state.jobs.begin() + static_cast<std::ptrdiff_t>(p));
  state.keys.erase(state.keys.begin() + static_cast<std::ptrdiff_t>(p));
  for (std::size_t i = p; i < state.jobs.size(); ++i) {
    job_pos_[static_cast<std::size_t>(state.jobs[i].second)] =
        static_cast<int>(i);
  }
}

void ScheduleEvaluator::commit_machine(MachineId m, double flow,
                                       double completion) {
  auto& state = machines_[static_cast<std::size_t>(m)];
  total_flow_ += flow - state.flow;
  state.flow = flow;
  state.completion = completion;
  topk_update(m, completion);
  mark_dirty(m);
}

void ScheduleEvaluator::mark_dirty(MachineId m) {
  auto& flag = dirty_flag_[static_cast<std::size_t>(m)];
  if (!flag) {
    flag = 1;
    dirty_list_.push_back(m);
  }
}

void ScheduleEvaluator::rebuild_caches() {
  total_flow_ = 0.0;
  for (const auto& state : machines_) total_flow_ += state.flow;
  topk_rebuild();
  for (const MachineId m : dirty_list_) {
    dirty_flag_[static_cast<std::size_t>(m)] = 0;
  }
  dirty_list_.clear();
}

void ScheduleEvaluator::canonicalize() {
  if (dirty_list_.empty()) return;
  for (const MachineId m : dirty_list_) recompute_machine(m);
  rebuild_caches();
}

std::pair<double, double> ScheduleEvaluator::flow_completion_with(
    MachineId m, JobId skip, JobId add_job, double add_etc) const {
  // Closed-form flow deltas over the cached prefix sums; rank lookups are
  // O(1) (position index) for the removal and a vectorized count for the
  // insertion.
  //   remove at p (0-based, list size k):
  //     flow -= ready + prefix[p] + (k - p) * e_p
  //   insert x at q (list size k after removal):
  //     flow += ready + prefix'(q) + (k + 1 - q) * x
  const auto& state = machines_[static_cast<std::size_t>(m)];
  const double ready = etc_->ready_time(m);
  std::size_t k = state.jobs.size();
  // An emptied machine contributes exactly {0, ready}; snapping here keeps
  // the closed form residue-free so apply can adopt the values verbatim.
  if (k - (skip >= 0 ? 1u : 0u) + (add_job >= 0 ? 1u : 0u) == 0) {
    return {0.0, ready};
  }
  double flow = state.flow;
  double sum = state.completion - ready;

  std::size_t removed_at = k;  // sentinel: nothing removed
  double removed_etc = 0.0;
  if (skip >= 0) {
    // The position index answers "where does skip sit in m's list" in O(1);
    // the cached key is the same double the ETC matrix holds.
    removed_at = static_cast<std::size_t>(
        job_pos_[static_cast<std::size_t>(skip)]);
    removed_etc = state.jobs[removed_at].first;
    flow -= ready + state.prefix[removed_at] +
            static_cast<double>(k - removed_at) * removed_etc;
    sum -= removed_etc;
    --k;
  }
  if (add_job >= 0) {
    // Insertion rank of (add_etc, add_job) in the pre-removal list: a
    // branchless strictly-less count over the contiguous key array, four
    // independent accumulator chains so the compare/set latency overlaps
    // (no serial binary-search dependency), then an id-ordered walk across
    // the — almost always empty — tie range.
    const double* keys = state.keys.data();
    const std::size_t kk = state.keys.size();
    std::size_t q0 = 0, q1 = 0, q2 = 0, q3 = 0;
    std::size_t i = 0;
    for (; i + 4 <= kk; i += 4) {
      q0 += keys[i] < add_etc ? 1u : 0u;
      q1 += keys[i + 1] < add_etc ? 1u : 0u;
      q2 += keys[i + 2] < add_etc ? 1u : 0u;
      q3 += keys[i + 3] < add_etc ? 1u : 0u;
    }
    for (; i < kk; ++i) q0 += keys[i] < add_etc ? 1u : 0u;
    std::size_t q = q0 + q1 + q2 + q3;
    while (q < kk && keys[q] == add_etc && state.jobs[q].second < add_job) {
      ++q;
    }
    double prefix_q = state.prefix[q];
    if (q > removed_at) {
      --q;
      prefix_q -= removed_etc;
    }
    flow += ready + prefix_q + static_cast<double>(k + 1 - q) * add_etc;
    sum += add_etc;
  }
  return {flow, ready + sum};
}

PreviewResult ScheduleEvaluator::preview_move(JobId job, MachineId to) const {
  const MachineId from = schedule_[job];
  if (from == to) return {objectives()};

  const auto [flow_from, completion_from] =
      flow_completion_with(from, job, -1, 0.0);
  const auto [flow_to, completion_to] =
      flow_completion_with(to, -1, job, (*etc_)(job, to));

  // O(1): the rest of the fleet is summarized by the running flow total and
  // the top-3 cache. The arithmetic mirrors apply_move's commit sequence
  // (from first, then to) so the preview is bitwise reproducible.
  double new_flowtime =
      total_flow_ +
      (flow_from - machines_[static_cast<std::size_t>(from)].flow);
  new_flowtime += flow_to - machines_[static_cast<std::size_t>(to)].flow;
  const double new_makespan =
      std::max(rest_completion(from, to),
               std::max(completion_from, completion_to));
  return {Objectives{std::max(0.0, new_makespan), new_flowtime}};
}

PreviewResult ScheduleEvaluator::preview_swap(JobId a, JobId b) const {
  const MachineId ma = schedule_[a];
  const MachineId mb = schedule_[b];
  if (ma == mb) {
    throw std::invalid_argument("preview_swap: jobs share a machine");
  }
  const auto [flow_a, completion_a] =
      flow_completion_with(ma, a, b, (*etc_)(b, ma));
  const auto [flow_b, completion_b] =
      flow_completion_with(mb, b, a, (*etc_)(a, mb));

  double new_flowtime =
      total_flow_ + (flow_a - machines_[static_cast<std::size_t>(ma)].flow);
  new_flowtime += flow_b - machines_[static_cast<std::size_t>(mb)].flow;
  const double new_makespan =
      std::max(rest_completion(ma, mb), std::max(completion_a, completion_b));
  return {Objectives{std::max(0.0, new_makespan), new_flowtime}};
}

void ScheduleEvaluator::apply_move(JobId job, MachineId to) {
  const MachineId from = schedule_[job];
  if (from == to) return;
  if (to < 0 || to >= num_machines()) {
    throw std::invalid_argument("apply_move: machine out of range");
  }
  // Closed-form scalars from the PRE-edit state: identical expressions to
  // preview_move, so the preview's objectives are adopted bitwise.
  const auto [flow_from, completion_from] =
      flow_completion_with(from, job, -1, 0.0);
  const double etc_to = (*etc_)(job, to);
  const auto [flow_to, completion_to] =
      flow_completion_with(to, -1, job, etc_to);

  auto& state_from = machines_[static_cast<std::size_t>(from)];
  list_erase(state_from, (*etc_)(job, from), job);
  rebuild_prefix(state_from);
  auto& state_to = machines_[static_cast<std::size_t>(to)];
  list_insert(state_to, etc_to, job);
  rebuild_prefix(state_to);

  commit_machine(from, flow_from, completion_from);
  commit_machine(to, flow_to, completion_to);
  schedule_[job] = to;
}

void ScheduleEvaluator::apply_swap(JobId a, JobId b) {
  const MachineId ma = schedule_[a];
  const MachineId mb = schedule_[b];
  if (ma == mb) {
    throw std::invalid_argument("apply_swap: jobs share a machine");
  }
  const double etc_b_on_ma = (*etc_)(b, ma);
  const double etc_a_on_mb = (*etc_)(a, mb);
  const auto [flow_a, completion_a] =
      flow_completion_with(ma, a, b, etc_b_on_ma);
  const auto [flow_b, completion_b] =
      flow_completion_with(mb, b, a, etc_a_on_mb);

  auto& state_a = machines_[static_cast<std::size_t>(ma)];
  auto& state_b = machines_[static_cast<std::size_t>(mb)];
  list_erase(state_a, (*etc_)(a, ma), a);
  list_erase(state_b, (*etc_)(b, mb), b);
  list_insert(state_a, etc_b_on_ma, b);
  list_insert(state_b, etc_a_on_mb, a);
  rebuild_prefix(state_a);
  rebuild_prefix(state_b);

  commit_machine(ma, flow_a, completion_a);
  commit_machine(mb, flow_b, completion_b);
  schedule_[a] = mb;
  schedule_[b] = ma;
}

void ScheduleEvaluator::check_consistency() const {
  ScheduleEvaluator fresh(*etc_);
  fresh.reset(schedule_);
  for (MachineId m = 0; m < num_machines(); ++m) {
    const auto& a = machines_[static_cast<std::size_t>(m)];
    const auto& b = fresh.machines_[static_cast<std::size_t>(m)];
    if (a.jobs != b.jobs) {
      throw std::logic_error("evaluator drift: job lists differ");
    }
    if (a.prefix != b.prefix) {
      throw std::logic_error("evaluator drift: prefix sums differ");
    }
    if (a.keys.size() != a.jobs.size()) {
      throw std::logic_error("evaluator drift: key mirror size");
    }
    for (std::size_t i = 0; i < a.jobs.size(); ++i) {
      if (a.keys[i] != a.jobs[i].first) {
        throw std::logic_error("evaluator drift: key mirror out of sync");
      }
      if (job_pos_[static_cast<std::size_t>(a.jobs[i].second)] !=
          static_cast<int>(i)) {
        throw std::logic_error("evaluator drift: job position index");
      }
    }
    const double tol = 1e-6 * std::max(1.0, std::abs(b.completion));
    if (std::abs(a.completion - b.completion) > tol ||
        std::abs(a.flow - b.flow) > 1e-6 * std::max(1.0, std::abs(b.flow))) {
      throw std::logic_error("evaluator drift: cached sums differ");
    }
  }
  // Aggregate caches: the running flow total tracks the per-machine sum,
  // and makespan() agrees with a full scan (both within closed-form
  // tolerance of the canonical rebuild).
  if (std::abs(total_flow_ - fresh.flowtime()) >
      1e-6 * std::max(1.0, std::abs(fresh.flowtime()))) {
    throw std::logic_error("evaluator drift: total flowtime cache differs");
  }
  if (num_machines() > 0 &&
      std::abs(makespan() - fresh.makespan()) >
          1e-6 * std::max(1.0, fresh.makespan())) {
    throw std::logic_error("evaluator drift: makespan cache differs");
  }
  // Top-3 cache structural invariants are exact over the CURRENT cached
  // completions (not the canonical rebuild): entries mirror their
  // machines, are sorted best-first, and dominate every uncached machine.
  if (topk_size_ != top_capacity()) {
    throw std::logic_error("evaluator drift: top-k cache size");
  }
  for (int i = 0; i < topk_size_; ++i) {
    const auto& entry = topk_[static_cast<std::size_t>(i)];
    if (entry.machine < 0 || entry.machine >= num_machines() ||
        entry.completion !=
            machines_[static_cast<std::size_t>(entry.machine)].completion) {
      throw std::logic_error("evaluator drift: top-k entry mismatch");
    }
    if (i > 0) {
      const auto& prev = topk_[static_cast<std::size_t>(i - 1)];
      if (top_better(entry.completion, entry.machine, prev.completion,
                     prev.machine)) {
        throw std::logic_error("evaluator drift: top-k cache unsorted");
      }
    }
  }
  if (topk_size_ > 0) {
    const auto& worst = topk_[static_cast<std::size_t>(topk_size_ - 1)];
    for (MachineId m = 0; m < num_machines(); ++m) {
      bool cached = false;
      for (int i = 0; i < topk_size_; ++i) {
        cached = cached || topk_[static_cast<std::size_t>(i)].machine == m;
      }
      if (cached) continue;
      const double c = machines_[static_cast<std::size_t>(m)].completion;
      if (top_better(c, m, worst.completion, worst.machine)) {
        throw std::logic_error("evaluator drift: top-k invariant violated");
      }
    }
  }
}

}  // namespace gridsched
