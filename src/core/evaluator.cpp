#include "core/evaluator.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace gridsched {

ScheduleEvaluator::ScheduleEvaluator(const EtcMatrix& etc) : etc_(&etc) {
  machines_.resize(static_cast<std::size_t>(etc.num_machines()));
}

void ScheduleEvaluator::reset(const Schedule& schedule) {
  if (schedule.num_jobs() != etc_->num_jobs()) {
    throw std::invalid_argument("ScheduleEvaluator: schedule size mismatch");
  }
  if (!schedule.complete(etc_->num_machines())) {
    throw std::invalid_argument("ScheduleEvaluator: incomplete schedule");
  }
  schedule_ = schedule;
  for (auto& m : machines_) m.jobs.clear();
  for (JobId j = 0; j < etc_->num_jobs(); ++j) {
    const MachineId m = schedule_[j];
    machines_[static_cast<std::size_t>(m)].jobs.emplace_back((*etc_)(j, m), j);
  }
  for (MachineId m = 0; m < num_machines(); ++m) {
    auto& state = machines_[static_cast<std::size_t>(m)];
    std::sort(state.jobs.begin(), state.jobs.end());
    recompute_machine(m);
  }
}

double ScheduleEvaluator::makespan() const noexcept {
  double best = 0.0;
  for (const auto& m : machines_) best = std::max(best, m.completion);
  return best;
}

double ScheduleEvaluator::flowtime() const noexcept {
  double total = 0.0;
  for (const auto& m : machines_) total += m.flow;
  return total;
}

MachineId ScheduleEvaluator::makespan_machine() const noexcept {
  MachineId arg = 0;
  double best = machines_[0].completion;
  for (MachineId m = 1; m < num_machines(); ++m) {
    const double c = machines_[static_cast<std::size_t>(m)].completion;
    if (c > best) {
      best = c;
      arg = m;
    }
  }
  return arg;
}

void ScheduleEvaluator::recompute_machine(MachineId m) {
  auto& state = machines_[static_cast<std::size_t>(m)];
  const double ready = etc_->ready_time(m);
  const std::size_t k = state.jobs.size();
  double sum = 0.0;
  double flow = 0.0;
  // Ascending ETC = SPT execution order: the i-th job (0-based) finishes at
  // ready + prefix_sum(i); summing those gives
  //   flow = k*ready + sum_i (k - i) * etc_i.
  state.prefix.resize(k + 1);
  state.prefix[0] = 0.0;
  for (std::size_t i = 0; i < k; ++i) {
    sum += state.jobs[i].first;
    state.prefix[i + 1] = sum;
    flow += static_cast<double>(k - i) * state.jobs[i].first;
  }
  state.completion = ready + sum;
  state.flow = flow + static_cast<double>(k) * ready;
}

void ScheduleEvaluator::insert_job(MachineId m, JobId job) {
  auto& state = machines_[static_cast<std::size_t>(m)];
  const std::pair<double, JobId> entry{(*etc_)(job, m), job};
  state.jobs.insert(
      std::lower_bound(state.jobs.begin(), state.jobs.end(), entry), entry);
  recompute_machine(m);
}

void ScheduleEvaluator::remove_job(MachineId m, JobId job) {
  auto& state = machines_[static_cast<std::size_t>(m)];
  const std::pair<double, JobId> entry{(*etc_)(job, m), job};
  const auto it =
      std::lower_bound(state.jobs.begin(), state.jobs.end(), entry);
  if (it == state.jobs.end() || it->second != job) {
    throw std::logic_error("ScheduleEvaluator: job not on expected machine");
  }
  state.jobs.erase(it);
  recompute_machine(m);
}

std::pair<double, double> ScheduleEvaluator::flow_completion_with(
    MachineId m, JobId skip, JobId add_job, double add_etc) const {
  // O(log k): closed-form flow deltas over the cached prefix sums.
  //   remove at p (0-based, list size k):
  //     flow -= ready + prefix[p] + (k - p) * e_p
  //   insert x at q (list size k after removal):
  //     flow += ready + prefix'(q) + (k + 1 - q) * x
  const auto& state = machines_[static_cast<std::size_t>(m)];
  const double ready = etc_->ready_time(m);
  double flow = state.flow;
  double sum = state.completion - ready;
  std::size_t k = state.jobs.size();

  std::size_t removed_at = k;  // sentinel: nothing removed
  double removed_etc = 0.0;
  if (skip >= 0) {
    const std::pair<double, JobId> key{(*etc_)(skip, m), skip};
    const auto it =
        std::lower_bound(state.jobs.begin(), state.jobs.end(), key);
    removed_at = static_cast<std::size_t>(it - state.jobs.begin());
    removed_etc = key.first;
    flow -= ready + state.prefix[removed_at] +
            static_cast<double>(k - removed_at) * removed_etc;
    sum -= removed_etc;
    --k;
  }
  if (add_job >= 0) {
    const std::pair<double, JobId> key{add_etc, add_job};
    const auto it =
        std::lower_bound(state.jobs.begin(), state.jobs.end(), key);
    std::size_t q = static_cast<std::size_t>(it - state.jobs.begin());
    double prefix_q = state.prefix[q];
    if (q > removed_at) {
      --q;
      prefix_q -= removed_etc;
    }
    flow += ready + prefix_q + static_cast<double>(k + 1 - q) * add_etc;
    sum += add_etc;
  }
  return {flow, ready + sum};
}

PreviewResult ScheduleEvaluator::preview_move(JobId job, MachineId to) const {
  const MachineId from = schedule_[job];
  if (from == to) return {objectives()};

  const auto [flow_from, completion_from] =
      flow_completion_with(from, job, -1, 0.0);
  const auto [flow_to, completion_to] =
      flow_completion_with(to, -1, job, (*etc_)(job, to));

  double new_makespan = 0.0;
  double new_flowtime = 0.0;
  for (MachineId m = 0; m < num_machines(); ++m) {
    const auto& state = machines_[static_cast<std::size_t>(m)];
    const double completion = m == from ? completion_from
                              : m == to ? completion_to
                                        : state.completion;
    const double flow = m == from ? flow_from : m == to ? flow_to : state.flow;
    new_makespan = std::max(new_makespan, completion);
    new_flowtime += flow;
  }
  return {Objectives{new_makespan, new_flowtime}};
}

PreviewResult ScheduleEvaluator::preview_swap(JobId a, JobId b) const {
  const MachineId ma = schedule_[a];
  const MachineId mb = schedule_[b];
  if (ma == mb) {
    throw std::invalid_argument("preview_swap: jobs share a machine");
  }
  const auto [flow_a, completion_a] =
      flow_completion_with(ma, a, b, (*etc_)(b, ma));
  const auto [flow_b, completion_b] =
      flow_completion_with(mb, b, a, (*etc_)(a, mb));

  double new_makespan = 0.0;
  double new_flowtime = 0.0;
  for (MachineId m = 0; m < num_machines(); ++m) {
    const auto& state = machines_[static_cast<std::size_t>(m)];
    const double completion = m == ma ? completion_a
                              : m == mb ? completion_b
                                        : state.completion;
    const double flow = m == ma ? flow_a : m == mb ? flow_b : state.flow;
    new_makespan = std::max(new_makespan, completion);
    new_flowtime += flow;
  }
  return {Objectives{new_makespan, new_flowtime}};
}

void ScheduleEvaluator::apply_move(JobId job, MachineId to) {
  const MachineId from = schedule_[job];
  if (from == to) return;
  remove_job(from, job);
  insert_job(to, job);
  schedule_[job] = to;
}

void ScheduleEvaluator::apply_swap(JobId a, JobId b) {
  const MachineId ma = schedule_[a];
  const MachineId mb = schedule_[b];
  if (ma == mb) {
    throw std::invalid_argument("apply_swap: jobs share a machine");
  }
  remove_job(ma, a);
  remove_job(mb, b);
  insert_job(mb, a);
  insert_job(ma, b);
  schedule_[a] = mb;
  schedule_[b] = ma;
}

void ScheduleEvaluator::check_consistency() const {
  ScheduleEvaluator fresh(*etc_);
  fresh.reset(schedule_);
  for (MachineId m = 0; m < num_machines(); ++m) {
    const auto& a = machines_[static_cast<std::size_t>(m)];
    const auto& b = fresh.machines_[static_cast<std::size_t>(m)];
    if (a.jobs != b.jobs) {
      throw std::logic_error("evaluator drift: job lists differ");
    }
    const double tol = 1e-6 * std::max(1.0, std::abs(b.completion));
    if (std::abs(a.completion - b.completion) > tol ||
        std::abs(a.flow - b.flow) > 1e-6 * std::max(1.0, std::abs(b.flow))) {
      throw std::logic_error("evaluator drift: cached sums differ");
    }
  }
}

}  // namespace gridsched
