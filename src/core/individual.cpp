#include "core/individual.h"

namespace gridsched {

Individual make_individual(Schedule schedule, const EtcMatrix& etc,
                           const FitnessWeights& weights) {
  Individual individual;
  individual.schedule = std::move(schedule);
  evaluate_individual(individual, etc, weights);
  return individual;
}

void evaluate_individual(Individual& individual, const EtcMatrix& etc,
                         const FitnessWeights& weights) {
  ScheduleEvaluator evaluator(etc);
  evaluator.reset(individual.schedule);
  individual.objectives = evaluator.objectives();
  individual.fitness =
      individual.objectives.fitness(weights, etc.num_machines());
}

Individual individual_from_evaluator(const ScheduleEvaluator& evaluator,
                                     const FitnessWeights& weights) {
  Individual individual;
  individual.schedule = evaluator.schedule();
  individual.objectives = evaluator.objectives();
  individual.fitness = individual.objectives.fitness(
      weights, evaluator.num_machines());
  return individual;
}

void assign_from_evaluator(Individual& out, ScheduleEvaluator& evaluator,
                           const FitnessWeights& weights) {
  evaluator.canonicalize();
  out.schedule = evaluator.schedule();
  out.objectives = evaluator.objectives();
  out.fitness = out.objectives.fitness(weights, evaluator.num_machines());
}

}  // namespace gridsched
