#include "core/pareto.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <numeric>

namespace gridsched {

bool dominates(const Objectives& a, const Objectives& b) noexcept {
  const bool no_worse =
      a.makespan <= b.makespan && a.flowtime <= b.flowtime;
  const bool strictly_better =
      a.makespan < b.makespan || a.flowtime < b.flowtime;
  return no_worse && strictly_better;
}

bool ParetoArchive::would_reject(const Objectives& objectives) const noexcept {
  for (const auto& member : members_) {
    if (dominates(member.objectives, objectives)) return true;
    if (member.objectives.makespan == objectives.makespan &&
        member.objectives.flowtime == objectives.flowtime) {
      return true;
    }
  }
  return false;
}

bool ParetoArchive::offer(Individual candidate) {
  if (would_reject(candidate.objectives)) return false;
  std::erase_if(members_, [&](const Individual& member) {
    return dominates(candidate.objectives, member.objectives);
  });
  members_.push_back(std::move(candidate));
  return true;
}

std::vector<Individual> ParetoArchive::front() const {
  std::vector<Individual> sorted = members_;
  std::sort(sorted.begin(), sorted.end(),
            [](const Individual& a, const Individual& b) {
              return a.objectives.makespan < b.objectives.makespan;
            });
  return sorted;
}

std::vector<Individual> pareto_front(std::span<const Individual> candidates) {
  ParetoArchive archive;
  for (const auto& candidate : candidates) archive.offer(candidate);
  return archive.front();
}

double hypervolume(std::span<const Individual> front,
                   const Objectives& reference) {
  // Reduce to the non-dominated subset inside the reference box, sorted by
  // ascending makespan (flowtime then strictly descends along the front).
  std::vector<Individual> kept;
  for (const auto& member : front) {
    if (member.objectives.makespan < reference.makespan &&
        member.objectives.flowtime < reference.flowtime) {
      kept.push_back(member);
    }
  }
  const auto clean = pareto_front(kept);

  // Sweep left to right; each member contributes a rectangle from its
  // makespan to the next member's (or the reference wall), with height
  // down from the reference flowtime.
  double volume = 0.0;
  for (std::size_t i = 0; i < clean.size(); ++i) {
    const double right = i + 1 < clean.size()
                             ? clean[i + 1].objectives.makespan
                             : reference.makespan;
    volume += (right - clean[i].objectives.makespan) *
              (reference.flowtime - clean[i].objectives.flowtime);
  }
  return volume;
}

bool dominates(std::span<const double> a, std::span<const double> b) noexcept {
  assert(a.size() == b.size());
  bool strictly_better = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] > b[i]) return false;
    if (a[i] < b[i]) strictly_better = true;
  }
  return strictly_better;
}

std::vector<std::size_t> pareto_front_indices(
    std::span<const std::vector<double>> points) {
  std::vector<std::size_t> front;
  for (std::size_t i = 0; i < points.size(); ++i) {
    bool dominated = false;
    for (std::size_t j = 0; j < points.size() && !dominated; ++j) {
      dominated = j != i && dominates(points[j], points[i]);
    }
    if (!dominated) front.push_back(i);
  }
  return front;
}

std::vector<double> crowding_distances(
    std::span<const std::vector<double>> points) {
  const std::size_t n = points.size();
  std::vector<double> distance(n, 0.0);
  if (n == 0) return distance;
  constexpr double kInf = std::numeric_limits<double>::infinity();
  if (n <= 2) {
    std::fill(distance.begin(), distance.end(), kInf);
    return distance;
  }
  const std::size_t dims = points.front().size();
  std::vector<std::size_t> order(n);
  for (std::size_t d = 0; d < dims; ++d) {
    std::iota(order.begin(), order.end(), std::size_t{0});
    // Stable, so equal keys keep index order and the boundary picks (and
    // thus the distances) are deterministic under ties.
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                       return points[a][d] < points[b][d];
                     });
    const double spread = points[order.back()][d] - points[order.front()][d];
    // A fully tied objective carries no crowding information; skipping it
    // (instead of crowning two arbitrary tied points "boundary") keeps
    // the result independent of sort order among equal keys.
    if (spread <= 0.0) continue;
    distance[order.front()] = kInf;
    distance[order.back()] = kInf;
    for (std::size_t k = 1; k + 1 < n; ++k) {
      distance[order[k]] +=
          (points[order[k + 1]][d] - points[order[k - 1]][d]) / spread;
    }
  }
  return distance;
}

}  // namespace gridsched
