#include "core/pareto.h"

#include <algorithm>

namespace gridsched {

bool dominates(const Objectives& a, const Objectives& b) noexcept {
  const bool no_worse =
      a.makespan <= b.makespan && a.flowtime <= b.flowtime;
  const bool strictly_better =
      a.makespan < b.makespan || a.flowtime < b.flowtime;
  return no_worse && strictly_better;
}

bool ParetoArchive::would_reject(const Objectives& objectives) const noexcept {
  for (const auto& member : members_) {
    if (dominates(member.objectives, objectives)) return true;
    if (member.objectives.makespan == objectives.makespan &&
        member.objectives.flowtime == objectives.flowtime) {
      return true;
    }
  }
  return false;
}

bool ParetoArchive::offer(Individual candidate) {
  if (would_reject(candidate.objectives)) return false;
  std::erase_if(members_, [&](const Individual& member) {
    return dominates(candidate.objectives, member.objectives);
  });
  members_.push_back(std::move(candidate));
  return true;
}

std::vector<Individual> ParetoArchive::front() const {
  std::vector<Individual> sorted = members_;
  std::sort(sorted.begin(), sorted.end(),
            [](const Individual& a, const Individual& b) {
              return a.objectives.makespan < b.objectives.makespan;
            });
  return sorted;
}

std::vector<Individual> pareto_front(std::span<const Individual> candidates) {
  ParetoArchive archive;
  for (const auto& candidate : candidates) archive.offer(candidate);
  return archive.front();
}

double hypervolume(std::span<const Individual> front,
                   const Objectives& reference) {
  // Reduce to the non-dominated subset inside the reference box, sorted by
  // ascending makespan (flowtime then strictly descends along the front).
  std::vector<Individual> kept;
  for (const auto& member : front) {
    if (member.objectives.makespan < reference.makespan &&
        member.objectives.flowtime < reference.flowtime) {
      kept.push_back(member);
    }
  }
  const auto clean = pareto_front(kept);

  // Sweep left to right; each member contributes a rectangle from its
  // makespan to the next member's (or the reference wall), with height
  // down from the reference flowtime.
  double volume = 0.0;
  for (std::size_t i = 0; i < clean.size(); ++i) {
    const double right = i + 1 < clean.size()
                             ? clean[i + 1].objectives.makespan
                             : reference.makespan;
    volume += (right - clean[i].objectives.makespan) *
              (reference.flowtime - clean[i].objectives.flowtime);
  }
  return volume;
}

}  // namespace gridsched
