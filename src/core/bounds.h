// Lower bounds on the achievable makespan of an ETC instance.
//
// No schedule can beat these, whatever the algorithm, so they give tests a
// hard floor to assert against and benches a sense of how much headroom a
// result still has:
//
//   ready bound   max_m ready[m]                    (an empty machine still
//                                                    finishes its backlog)
//   job bound     max_j min_m (ready[m] + ETC[j][m])
//   load bound    (sum_j min_m ETC[j][m] + sum_m ready[m]) / num_machines
//
// The overall bound is the max of the three. All are weak on purpose —
// exact bounds for R||Cmax are themselves NP-hard — but they catch
// objective-function bugs instantly.
#pragma once

#include "etc/etc_matrix.h"

namespace gridsched {

[[nodiscard]] double ready_time_bound(const EtcMatrix& etc) noexcept;
[[nodiscard]] double job_lower_bound(const EtcMatrix& etc) noexcept;
[[nodiscard]] double load_lower_bound(const EtcMatrix& etc) noexcept;

/// max of the three bounds above.
[[nodiscard]] double makespan_lower_bound(const EtcMatrix& etc) noexcept;

/// Lower bound on flowtime: every job needs at least its fastest ETC, and
/// the per-machine SPT structure cannot beat running every job alone on
/// its best machine: sum_j min_m ETC[j][m].
[[nodiscard]] double flowtime_lower_bound(const EtcMatrix& etc) noexcept;

}  // namespace gridsched
