// Solution representation: the paper's direct encoding.
//
// A schedule is a vector of size num_jobs whose j-th entry is the machine
// the job is assigned to. This is the chromosome every evolutionary operator
// in the library works on.
#pragma once

#include <span>
#include <vector>

#include "common/rng.h"
#include "etc/etc_matrix.h"

namespace gridsched {

class Schedule {
 public:
  /// Gene value for a job rejected by admission control (src/qos/
  /// admission.h): deliberately not scheduled, as opposed to -1 =
  /// not scheduled *yet*. complete() accepts it; schedulers never emit
  /// it — only the service's ingress does.
  static constexpr MachineId kRejected = -2;

  Schedule() = default;

  /// Creates a schedule of `num_jobs` genes, all set to `fill` (default -1 =
  /// unassigned; a complete schedule has every gene in [0, num_machines)).
  explicit Schedule(int num_jobs, MachineId fill = -1);

  [[nodiscard]] int num_jobs() const noexcept {
    return static_cast<int>(assign_.size());
  }

  [[nodiscard]] MachineId operator[](JobId job) const noexcept {
    return assign_[static_cast<std::size_t>(job)];
  }
  MachineId& operator[](JobId job) noexcept {
    return assign_[static_cast<std::size_t>(job)];
  }

  [[nodiscard]] std::span<const MachineId> genes() const noexcept {
    return assign_;
  }

  /// True when every job is assigned to a machine in [0, num_machines)
  /// or explicitly rejected (kRejected). -1/unassigned genes make a
  /// schedule incomplete.
  [[nodiscard]] bool complete(int num_machines) const noexcept;

  /// Number of genes in which two schedules differ (used by the Struggle
  /// GA's similarity-based replacement). Schedules must be the same size.
  [[nodiscard]] int hamming_distance(const Schedule& other) const noexcept;

  /// Uniformly random complete schedule.
  [[nodiscard]] static Schedule random(int num_jobs, int num_machines,
                                       Rng& rng);

  /// Re-assigns each gene with probability `rate` to a uniform machine.
  /// This is the paper's "large perturbation" population seeding step.
  void perturb(double rate, int num_machines, Rng& rng);

  friend bool operator==(const Schedule&, const Schedule&) = default;

 private:
  std::vector<MachineId> assign_;
};

}  // namespace gridsched
