// Bi-objective (makespan, flowtime) Pareto utilities.
//
// The paper scalarizes the two objectives with a fixed lambda and names
// "tackling the problem with a multi-objective algorithm in order to find a
// set of non-dominated solutions" as future work. This module implements
// the bookkeeping half of that: dominance tests and a non-dominated
// archive. bench/pareto_front sweeps lambda through the scalarized cMA and
// archives the outcomes, which approximates the front the future-work
// algorithm would target.
#pragma once

#include <span>
#include <vector>

#include "core/individual.h"

namespace gridsched {

/// True when `a` is at least as good on both objectives and strictly
/// better on at least one (minimization).
[[nodiscard]] bool dominates(const Objectives& a, const Objectives& b) noexcept;

/// Maintains the set of mutually non-dominated individuals seen so far.
class ParetoArchive {
 public:
  /// Offers a candidate. Returns true if it entered the archive (it is not
  /// dominated by any member); dominated members are evicted. Duplicate
  /// objective vectors are kept only once.
  bool offer(Individual candidate);

  /// Current front, sorted by ascending makespan.
  [[nodiscard]] std::vector<Individual> front() const;

  [[nodiscard]] std::size_t size() const noexcept { return members_.size(); }
  [[nodiscard]] bool empty() const noexcept { return members_.empty(); }

  /// True if `objectives` would be rejected (dominated or duplicate).
  [[nodiscard]] bool would_reject(const Objectives& objectives) const noexcept;

 private:
  std::vector<Individual> members_;
};

/// Filters a batch to its non-dominated subset (sorted by makespan).
[[nodiscard]] std::vector<Individual> pareto_front(
    std::span<const Individual> candidates);

/// Hypervolume indicator (2-D): the area dominated by `front` and bounded
/// by `reference` (a point worse than every member on both objectives).
/// The standard scalar quality measure for bi-objective fronts: larger is
/// better; 0 for an empty front or one entirely beyond the reference.
/// Members beyond the reference point are clipped out.
[[nodiscard]] double hypervolume(std::span<const Individual> front,
                                 const Objectives& reference);

// --- N-objective generalization -------------------------------------
//
// The QoS layer (src/qos/qos.h) scores schedules on (makespan, missed
// deadlines, cost) — three objectives, so the bi-objective Objectives
// overloads above no longer fit. These point-vector variants accept any
// number of objectives (all minimized). A point is a span/vector of
// doubles; every point in one call must have the same dimension.

/// True when `a` is no worse than `b` on every objective and strictly
/// better on at least one. One-dimensional points degenerate to plain
/// `a < b`; equal points never dominate each other.
[[nodiscard]] bool dominates(std::span<const double> a,
                             std::span<const double> b) noexcept;

/// Indices of the non-dominated subset of `points`, ascending. Duplicate
/// points are mutually non-dominating, so every copy of a non-dominated
/// point is kept.
[[nodiscard]] std::vector<std::size_t> pareto_front_indices(
    std::span<const std::vector<double>> points);

/// NSGA-II crowding distance of each point within its set (assumed to be
/// one front). Boundary points (an extreme on any objective) get
/// +infinity; interior points sum normalized neighbor gaps per objective.
/// Objectives with zero spread contribute nothing (ties crowd to zero,
/// not NaN).
[[nodiscard]] std::vector<double> crowding_distances(
    std::span<const std::vector<double>> points);

}  // namespace gridsched
