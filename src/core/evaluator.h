// Incremental schedule evaluation.
//
// The local search methods of the cMA preview tens of thousands of candidate
// moves and swaps per second, so evaluating a neighbor from scratch
// (O(jobs)) would dominate the runtime. ScheduleEvaluator maintains
// per-machine state (assigned jobs sorted by ETC, completion time, SPT
// flowtime) plus two aggregate caches — a running total flowtime and a
// top-3 completion-time cache — so that:
//   - previewing a move/swap costs O(log k) in the two affected machines'
//     job counts and is INDEPENDENT of the machine count: the flowtime is
//     the running total plus two closed-form machine deltas, and the
//     makespan is the maximum of the two new completion times and the
//     first top-3 cache entry not owned by an affected machine,
//   - applying one costs O(k) for the two affected machines (sorted-list
//     surgery plus a prefix-sum rebuild) and adopts the exact closed-form
//     scalars the preview computed, so a preview is bitwise equal to
//     apply-then-measure,
//   - re-targeting the evaluator at a sibling schedule (`reset_to`) costs
//     O(n + d k) where d is the number of differing genes, instead of the
//     full O(n log n) rebuild — the delta path the cMA offspring pipeline
//     rides (docs/performance.md documents the invariants and formulas).
//
// Canonical vs. fast scalars: closed-form deltas round differently than a
// from-scratch summation, so machines touched by apply_move/apply_swap are
// marked dirty and carry "fast" scalars that may sit a few ULP from the
// canonical values (the job lists themselves are always exact).
// canonicalize() — called implicitly by reset()/reset_to() — recomputes the
// dirty machines and the aggregate caches so the state is bitwise identical
// to a fresh reset() of the same schedule. check_consistency() verifies
// both layers (exact lists + caches within tolerance) against a rebuild.
//
// Objective conventions (Section 2 of the paper; DESIGN.md section 4):
//   completion[m] = ready[m] + sum of ETC of jobs on m          (Eq. 1)
//   makespan      = max over machines of completion[m]          (Eq. 2)
//   flowtime      = sum over jobs of their finishing times, with each
//                   machine running its jobs in SPT (ascending ETC) order,
//                   which minimizes flowtime for a fixed assignment.
#pragma once

#include <array>
#include <cstdint>
#include <utility>
#include <vector>

#include "core/fitness.h"
#include "core/schedule.h"
#include "etc/etc_matrix.h"

namespace gridsched {

/// The objective values a hypothetical edit would produce.
struct PreviewResult {
  Objectives objectives;
  [[nodiscard]] double fitness(const FitnessWeights& w,
                               int num_machines) const noexcept {
    return objectives.fitness(w, num_machines);
  }
};

class ScheduleEvaluator {
 public:
  /// Binds to an ETC matrix; the matrix must outlive the evaluator.
  explicit ScheduleEvaluator(const EtcMatrix& etc);

  /// Loads a complete schedule and (re)builds all machine state from
  /// scratch. O(n log n). Recycles every internal buffer, so a warm reset
  /// allocates nothing once capacities have grown to steady state.
  void reset(const Schedule& schedule);

  /// Re-targets the evaluator at `target` by replaying only the genes that
  /// differ from the current schedule, then canonicalizing the touched
  /// machines — bitwise identical to reset(target) at a fraction of the
  /// cost when the two schedules are similar (offspring vs. parent).
  /// Falls back to reset(target) when the evaluator is empty or the diff
  /// is large enough that the full rebuild is cheaper.
  void reset_to(const Schedule& target);

  [[nodiscard]] const Schedule& schedule() const noexcept { return schedule_; }
  [[nodiscard]] const EtcMatrix& etc() const noexcept { return *etc_; }
  [[nodiscard]] int num_jobs() const noexcept { return etc_->num_jobs(); }
  [[nodiscard]] int num_machines() const noexcept {
    return etc_->num_machines();
  }

  [[nodiscard]] double completion(MachineId m) const noexcept {
    return machines_[static_cast<std::size_t>(m)].completion;
  }
  [[nodiscard]] double machine_flow(MachineId m) const noexcept {
    return machines_[static_cast<std::size_t>(m)].flow;
  }
  /// Jobs currently assigned to machine m, ascending by (ETC, job id).
  [[nodiscard]] const std::vector<std::pair<double, JobId>>& machine_jobs(
      MachineId m) const noexcept {
    return machines_[static_cast<std::size_t>(m)].jobs;
  }

  /// O(1) from the top-3 cache. Throws std::logic_error on a zero-machine
  /// evaluator (there is no completion time to report).
  [[nodiscard]] double makespan() const;
  /// O(1): the running total maintained across applies.
  [[nodiscard]] double flowtime() const noexcept { return total_flow_; }
  [[nodiscard]] Objectives objectives() const {
    return {makespan(), flowtime()};
  }
  [[nodiscard]] double fitness(const FitnessWeights& w) const {
    return objectives().fitness(w, num_machines());
  }
  /// A machine whose completion time equals the makespan (lowest id).
  /// O(1). Throws std::logic_error on a zero-machine evaluator.
  [[nodiscard]] MachineId makespan_machine() const;

  /// Objectives if job were moved to machine `to` (no state change).
  /// O(log k) in the two affected machines — independent of machine count.
  [[nodiscard]] PreviewResult preview_move(JobId job, MachineId to) const;

  /// Objectives if jobs a and b (on different machines) swapped machines.
  /// Precondition: schedule()[a] != schedule()[b].
  [[nodiscard]] PreviewResult preview_swap(JobId a, JobId b) const;

  /// Moves job to machine `to`. Adopts the closed-form scalars a preview
  /// of the same edit computes, so preview_move(job, to) followed by
  /// apply_move(job, to) leaves makespan()/flowtime() bitwise equal to the
  /// preview. Marks the two machines dirty (see canonicalize()).
  void apply_move(JobId job, MachineId to);

  /// Swaps the machines of jobs a and b (must differ). Same exactness
  /// contract as apply_move.
  void apply_swap(JobId a, JobId b);

  /// Recomputes every dirty machine from its (exact) job list and rebuilds
  /// the aggregate caches, leaving the state bitwise identical to a fresh
  /// reset() of the current schedule. No-op when nothing is dirty. Call
  /// before publishing objectives that must match a from-scratch
  /// evaluation (the evolutionary loops do this at readback).
  void canonicalize();

  /// Rebuilds everything from the current schedule and asserts the cached
  /// state matches (test hook). Throws std::logic_error on mismatch.
  void check_consistency() const;

 private:
  struct MachineState {
    std::vector<std::pair<double, JobId>> jobs;  // ascending (etc, job)
    // prefix[i] = sum of the first i ETC values; size jobs.size() + 1.
    // Lets previews answer "flow without job at p / with x inserted" from
    // closed forms instead of re-merging the whole list. Always canonical
    // (rebuilt by full summation after every structural edit).
    std::vector<double> prefix;
    // Structure-of-arrays mirror of jobs[i].first: previews find a virtual
    // job's insertion rank by a branchless count over this contiguous
    // double array (vectorizable) instead of a serial binary search over
    // the pair list. Kept coherent by the same list surgery as `jobs`.
    std::vector<double> keys;
    double completion = 0.0;  // ready + sum of etc
    double flow = 0.0;        // SPT flowtime contribution of this machine
  };

  // Top-3 completion-time cache, ordered by (completion desc, machine id
  // asc). Invariant: every machine not in the cache compares not-better
  // than the last cache entry, so the first entry is always the makespan
  // machine and the first entry not owned by an edit's two affected
  // machines bounds the rest exactly.
  struct TopEntry {
    double completion = 0.0;
    MachineId machine = -1;
  };

  [[nodiscard]] static bool top_better(double ca, MachineId ma, double cb,
                                       MachineId mb) noexcept {
    return ca != cb ? ca > cb : ma < mb;
  }
  [[nodiscard]] int top_capacity() const noexcept {
    return num_machines() < 3 ? num_machines() : 3;
  }
  /// Largest completion among machines other than x and y (0.0 when none).
  [[nodiscard]] double rest_completion(MachineId x, MachineId y) const noexcept;
  void topk_offer(double completion, MachineId m);
  void topk_update(MachineId m, double completion);
  void topk_rebuild();

  /// Recomputes prefix sums, completion and flow of one machine from its
  /// job list — the canonical (from-scratch) summation order.
  void recompute_machine(MachineId m);
  /// Rebuilds just the prefix sums (canonical order) after list surgery.
  static void rebuild_prefix(MachineState& state);

  void list_insert(MachineState& state, double etc, JobId job);
  void list_erase(MachineState& state, double etc, JobId job);

  /// Installs closed-form scalars on a machine, folds the flow delta into
  /// the running total, refreshes the top-3 cache and marks it dirty.
  void commit_machine(MachineId m, double flow, double completion);
  void mark_dirty(MachineId m);
  /// Recomputes the aggregate caches (total flow in machine-id order, then
  /// the top-3 scan) and clears the dirty set.
  void rebuild_caches();

  /// Flow and completion of machine m with `skip` removed (if >= 0) and a
  /// virtual job `add` of the given ETC inserted (if add_job >= 0). Snaps
  /// to {0.0, ready} exactly when the machine ends up empty.
  [[nodiscard]] std::pair<double, double> flow_completion_with(
      MachineId m, JobId skip, JobId add_job, double add_etc) const;

  const EtcMatrix* etc_;
  Schedule schedule_;
  std::vector<MachineState> machines_;

  double total_flow_ = 0.0;        // sum of machine flows, delta-maintained
  std::array<TopEntry, 3> topk_{};  // see TopEntry invariant above
  int topk_size_ = 0;

  std::vector<std::uint8_t> dirty_flag_;  // per-machine: scalars non-canonical
  std::vector<MachineId> dirty_list_;

  // job_pos_[j] = index of job j in its machine's sorted job list. Gives
  // previews the "remove at p" rank in O(1); maintained by the list
  // surgery (stale for jobs mid-flight between erase and insert, which
  // previews never observe).
  std::vector<int> job_pos_;
};

}  // namespace gridsched
