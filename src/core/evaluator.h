// Incremental schedule evaluation.
//
// The local search methods of the cMA preview tens of thousands of candidate
// moves and swaps per second, so evaluating a neighbor from scratch
// (O(jobs)) would dominate the runtime. ScheduleEvaluator maintains
// per-machine state (assigned jobs sorted by ETC, completion time, SPT
// flowtime) so that:
//   - previewing a move/swap costs O(k) where k = jobs on the two affected
//     machines (~ jobs / machines),
//   - applying one costs O(k) and recomputes the affected machines' sums
//     exactly (no floating-point drift accumulates across a run).
//
// Objective conventions (Section 2 of the paper; DESIGN.md section 4):
//   completion[m] = ready[m] + sum of ETC of jobs on m          (Eq. 1)
//   makespan      = max over machines of completion[m]          (Eq. 2)
//   flowtime      = sum over jobs of their finishing times, with each
//                   machine running its jobs in SPT (ascending ETC) order,
//                   which minimizes flowtime for a fixed assignment.
#pragma once

#include <utility>
#include <vector>

#include "core/fitness.h"
#include "core/schedule.h"
#include "etc/etc_matrix.h"

namespace gridsched {

/// The objective values a hypothetical edit would produce.
struct PreviewResult {
  Objectives objectives;
  [[nodiscard]] double fitness(const FitnessWeights& w,
                               int num_machines) const noexcept {
    return objectives.fitness(w, num_machines);
  }
};

class ScheduleEvaluator {
 public:
  /// Binds to an ETC matrix; the matrix must outlive the evaluator.
  explicit ScheduleEvaluator(const EtcMatrix& etc);

  /// Loads a complete schedule and (re)builds all machine state. O(n log n).
  void reset(const Schedule& schedule);

  [[nodiscard]] const Schedule& schedule() const noexcept { return schedule_; }
  [[nodiscard]] const EtcMatrix& etc() const noexcept { return *etc_; }
  [[nodiscard]] int num_jobs() const noexcept { return etc_->num_jobs(); }
  [[nodiscard]] int num_machines() const noexcept {
    return etc_->num_machines();
  }

  [[nodiscard]] double completion(MachineId m) const noexcept {
    return machines_[static_cast<std::size_t>(m)].completion;
  }
  [[nodiscard]] double machine_flow(MachineId m) const noexcept {
    return machines_[static_cast<std::size_t>(m)].flow;
  }
  /// Jobs currently assigned to machine m, ascending by (ETC, job id).
  [[nodiscard]] const std::vector<std::pair<double, JobId>>& machine_jobs(
      MachineId m) const noexcept {
    return machines_[static_cast<std::size_t>(m)].jobs;
  }

  [[nodiscard]] double makespan() const noexcept;
  [[nodiscard]] double flowtime() const noexcept;
  [[nodiscard]] Objectives objectives() const noexcept {
    return {makespan(), flowtime()};
  }
  [[nodiscard]] double fitness(const FitnessWeights& w) const noexcept {
    return objectives().fitness(w, num_machines());
  }
  /// A machine whose completion time equals the makespan (lowest id).
  [[nodiscard]] MachineId makespan_machine() const noexcept;

  /// Objectives if job were moved to machine `to` (no state change).
  [[nodiscard]] PreviewResult preview_move(JobId job, MachineId to) const;

  /// Objectives if jobs a and b (on different machines) swapped machines.
  /// Precondition: schedule()[a] != schedule()[b].
  [[nodiscard]] PreviewResult preview_swap(JobId a, JobId b) const;

  /// Moves job to machine `to`, updating state incrementally.
  void apply_move(JobId job, MachineId to);

  /// Swaps the machines of jobs a and b (must differ).
  void apply_swap(JobId a, JobId b);

  /// Rebuilds everything from the current schedule and asserts the cached
  /// state matches (test hook). Throws std::logic_error on mismatch.
  void check_consistency() const;

 private:
  struct MachineState {
    std::vector<std::pair<double, JobId>> jobs;  // ascending (etc, job)
    // prefix[i] = sum of the first i ETC values; size jobs.size() + 1.
    // Lets previews answer "flow without job at p / with x inserted" in
    // O(log k) instead of re-merging the whole list.
    std::vector<double> prefix;
    double completion = 0.0;  // ready + sum of etc
    double flow = 0.0;        // SPT flowtime contribution of this machine
  };

  /// Recomputes completion and flow of one machine from its job list.
  void recompute_machine(MachineId m);

  void insert_job(MachineId m, JobId job);
  void remove_job(MachineId m, JobId job);

  /// Flow and completion of machine m with `skip` removed (if >= 0) and a
  /// virtual job `add` of the given ETC inserted (if add_job >= 0).
  [[nodiscard]] std::pair<double, double> flow_completion_with(
      MachineId m, JobId skip, JobId add_job, double add_etc) const;

  const EtcMatrix* etc_;
  Schedule schedule_;
  std::vector<MachineState> machines_;
};

}  // namespace gridsched
