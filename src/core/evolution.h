// Types shared by all evolutionary engines (cMA and the baseline GAs):
// stop conditions, progress traces, and the result bundle benches consume.
#pragma once

#include <cstdint>
#include <vector>

#include "common/cancellation.h"
#include "common/stopwatch.h"
#include "core/individual.h"

namespace gridsched {

/// A run stops as soon as ANY enabled bound is hit. Bounds set to 0 are
/// disabled; at least one must be enabled.
struct StopCondition {
  double max_time_ms = 0.0;
  std::int64_t max_evaluations = 0;
  std::int64_t max_iterations = 0;
  /// Stop after this many iterations without best-fitness improvement
  /// (0 = disabled). The Braun GA uses 150.
  std::int64_t max_stagnation = 0;
  /// Cooperative external stop signal (invalid token = disabled). The
  /// portfolio scheduler shares one token across every engine it races so
  /// all of them stop at the activation deadline, however late they were
  /// dequeued (see common/cancellation.h).
  CancellationToken cancel{};

  [[nodiscard]] bool any_enabled() const noexcept {
    return max_time_ms > 0 || max_evaluations > 0 || max_iterations > 0 ||
           max_stagnation > 0 || cancel.valid();
  }
};

/// One sample of the best-so-far trajectory (the data behind Figs. 2-5).
struct ProgressPoint {
  double time_ms = 0.0;
  std::int64_t evaluations = 0;
  std::int64_t iteration = 0;
  double best_makespan = 0.0;
  double best_flowtime = 0.0;
  double best_fitness = 0.0;
};

struct EvolutionResult {
  Individual best;
  std::int64_t evaluations = 0;
  std::int64_t iterations = 0;
  double elapsed_ms = 0.0;
  std::vector<ProgressPoint> progress;
  /// Final population snapshot; only filled by engines whose config sets
  /// `keep_final_population` (the warm-start cache feeds on it).
  std::vector<Individual> population;
};

/// Bookkeeping helper used inside engine loops: tracks the best individual,
/// stagnation, and appends progress samples on improvement.
class EvolutionTracker {
 public:
  EvolutionTracker(StopCondition stop, bool record_progress)
      : stop_(stop), record_progress_(record_progress) {}

  /// Offers a candidate; returns true if it became the new best.
  bool offer(const Individual& candidate) {
    if (candidate.fitness < best_.fitness) {
      best_ = candidate;
      improved_this_iteration_ = true;
      sample();
      return true;
    }
    return false;
  }

  void count_evaluations(std::int64_t n = 1) noexcept { evaluations_ += n; }

  /// Ends an iteration: updates stagnation and records a trace sample.
  void end_iteration() {
    ++iterations_;
    stagnation_ = improved_this_iteration_ ? 0 : stagnation_ + 1;
    improved_this_iteration_ = false;
    sample();
  }

  [[nodiscard]] bool should_stop() const noexcept {
    if (stop_.cancel.cancelled()) return true;
    if (stop_.max_time_ms > 0 && watch_.elapsed_ms() >= stop_.max_time_ms) {
      return true;
    }
    if (stop_.max_evaluations > 0 && evaluations_ >= stop_.max_evaluations) {
      return true;
    }
    if (stop_.max_iterations > 0 && iterations_ >= stop_.max_iterations) {
      return true;
    }
    if (stop_.max_stagnation > 0 && stagnation_ >= stop_.max_stagnation) {
      return true;
    }
    return false;
  }

  [[nodiscard]] const Individual& best() const noexcept { return best_; }
  [[nodiscard]] std::int64_t evaluations() const noexcept {
    return evaluations_;
  }
  [[nodiscard]] std::int64_t iterations() const noexcept { return iterations_; }
  [[nodiscard]] double elapsed_ms() const noexcept {
    return watch_.elapsed_ms();
  }

  [[nodiscard]] EvolutionResult finish() {
    EvolutionResult result;
    result.best = best_;
    result.evaluations = evaluations_;
    result.iterations = iterations_;
    result.elapsed_ms = watch_.elapsed_ms();
    result.progress = std::move(progress_);
    return result;
  }

 private:
  void sample() {
    if (!record_progress_) return;
    progress_.push_back(ProgressPoint{watch_.elapsed_ms(), evaluations_,
                                      iterations_, best_.objectives.makespan,
                                      best_.objectives.flowtime,
                                      best_.fitness});
  }

  StopCondition stop_;
  bool record_progress_;
  Stopwatch watch_;
  Individual best_;
  std::int64_t evaluations_ = 0;
  std::int64_t iterations_ = 0;
  std::int64_t stagnation_ = 0;
  bool improved_this_iteration_ = false;
  std::vector<ProgressPoint> progress_;
};

}  // namespace gridsched
