#include "core/schedule.h"

namespace gridsched {

Schedule::Schedule(int num_jobs, MachineId fill)
    : assign_(static_cast<std::size_t>(num_jobs), fill) {}

bool Schedule::complete(int num_machines) const noexcept {
  for (MachineId m : assign_) {
    if ((m < 0 || m >= num_machines) && m != kRejected) return false;
  }
  return !assign_.empty();
}

int Schedule::hamming_distance(const Schedule& other) const noexcept {
  int distance = 0;
  const std::size_t n = assign_.size();
  for (std::size_t j = 0; j < n; ++j) {
    distance += (assign_[j] != other.assign_[j]) ? 1 : 0;
  }
  return distance;
}

Schedule Schedule::random(int num_jobs, int num_machines, Rng& rng) {
  Schedule s(num_jobs);
  for (JobId j = 0; j < num_jobs; ++j) {
    s[j] = rng.uniform_int(0, num_machines - 1);
  }
  return s;
}

void Schedule::perturb(double rate, int num_machines, Rng& rng) {
  for (MachineId& gene : assign_) {
    if (rng.chance(rate)) gene = rng.uniform_int(0, num_machines - 1);
  }
}

}  // namespace gridsched
