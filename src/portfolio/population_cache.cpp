#include "portfolio/population_cache.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>

namespace gridsched {

PopulationCache::PopulationCache(int capacity) : capacity_(capacity) {
  if (capacity <= 0) {
    throw std::invalid_argument("PopulationCache: capacity must be > 0");
  }
}

void PopulationCache::store(const BatchContext& context,
                            std::span<const Individual> elites) {
  if (elites.empty()) return;
  std::vector<const Individual*> ranked;
  ranked.reserve(elites.size());
  for (const Individual& individual : elites) ranked.push_back(&individual);
  std::stable_sort(ranked.begin(), ranked.end(),
                   [](const Individual* a, const Individual* b) {
                     return a->fitness < b->fitness;
                   });
  if (ranked.size() > static_cast<std::size_t>(capacity_)) {
    ranked.resize(static_cast<std::size_t>(capacity_));
  }
  elites_.clear();
  for (const Individual* individual : ranked) {
    elites_.push_back(individual->schedule);
  }
  job_ids_ = context.job_ids;
  machine_ids_ = context.machine_ids;
}

bool PopulationCache::erase_job(int global_job) {
  const auto it = std::find(job_ids_.begin(), job_ids_.end(), global_job);
  if (it == job_ids_.end()) return false;
  const auto row = static_cast<JobId>(it - job_ids_.begin());
  job_ids_.erase(it);
  for (Schedule& elite : elites_) {
    Schedule shrunk(elite.num_jobs() - 1);
    for (JobId job = 0, kept = 0; job < elite.num_jobs(); ++job) {
      if (job == row) continue;
      shrunk[kept++] = elite[job];
    }
    elite = std::move(shrunk);
  }
  return true;
}

void PopulationCache::adopt_job(int global_job, int global_machine) {
  if (elites_.empty()) return;
  auto column_it =
      std::find(machine_ids_.begin(), machine_ids_.end(), global_machine);
  if (column_it == machine_ids_.end()) {
    machine_ids_.push_back(global_machine);
    column_it = machine_ids_.end() - 1;
  }
  const auto column =
      static_cast<MachineId>(column_it - machine_ids_.begin());
  const auto row_it = std::find(job_ids_.begin(), job_ids_.end(), global_job);
  if (row_it != job_ids_.end()) {
    const auto row = static_cast<JobId>(row_it - job_ids_.begin());
    for (Schedule& elite : elites_) elite[row] = column;
    return;
  }
  job_ids_.push_back(global_job);
  for (Schedule& elite : elites_) {
    Schedule grown(static_cast<int>(job_ids_.size()));
    for (JobId job = 0; job < elite.num_jobs(); ++job) grown[job] = elite[job];
    grown[static_cast<JobId>(job_ids_.size() - 1)] = column;
    elite = std::move(grown);
  }
}

std::vector<Schedule> PopulationCache::warm_start(
    const EtcMatrix& etc, const BatchContext& context) const {
  if (elites_.empty()) return {};
  const int new_jobs = etc.num_jobs();
  const int new_machines = etc.num_machines();
  const int old_jobs = static_cast<int>(job_ids_.size());
  if (old_jobs == 0) return {};

  // Global machine id -> new batch column (machines may have failed,
  // recovered, or been reordered between activations).
  std::unordered_map<int, MachineId> new_column_of;
  new_column_of.reserve(context.machine_ids.size());
  for (std::size_t column = 0; column < context.machine_ids.size(); ++column) {
    new_column_of.emplace(context.machine_ids[column],
                          static_cast<MachineId>(column));
  }
  // Global job id -> old batch row (for re-queued jobs).
  std::unordered_map<int, JobId> old_row_of;
  old_row_of.reserve(job_ids_.size());
  for (std::size_t row = 0; row < job_ids_.size(); ++row) {
    old_row_of.emplace(job_ids_[row], static_cast<JobId>(row));
  }

  // Deterministic fallback column per new job: its fastest machine.
  auto fastest_column = [&](JobId job) {
    MachineId best = 0;
    for (MachineId m = 1; m < new_machines; ++m) {
      if (etc(job, m) < etc(job, best)) best = m;
    }
    return best;
  };

  std::vector<Schedule> warm;
  warm.reserve(elites_.size());
  for (const Schedule& elite : elites_) {
    Schedule mapped(new_jobs);
    for (JobId job = 0; job < new_jobs; ++job) {
      const int global_job =
          job < static_cast<int>(context.job_ids.size())
              ? context.job_ids[static_cast<std::size_t>(job)]
              : job;
      const auto seen = old_row_of.find(global_job);
      const JobId old_row = seen != old_row_of.end()
                                ? seen->second
                                : static_cast<JobId>(job % old_jobs);
      const int old_column = elite[old_row];
      const int global_machine =
          old_column < static_cast<int>(machine_ids_.size())
              ? machine_ids_[static_cast<std::size_t>(old_column)]
              : -1;
      const auto still_there = new_column_of.find(global_machine);
      mapped[job] = still_there != new_column_of.end() ? still_there->second
                                                       : fastest_column(job);
    }
    warm.push_back(std::move(mapped));
  }
  return warm;
}

}  // namespace gridsched
