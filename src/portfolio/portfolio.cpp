#include "portfolio/portfolio.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "common/cancellation.h"
#include "common/stopwatch.h"
#include "obs/metrics_registry.h"
#include "obs/trace_recorder.h"
#include "qos/qos.h"

namespace gridsched {

PortfolioBatchScheduler::PortfolioBatchScheduler(
    PortfolioConfig config,
    std::vector<std::unique_ptr<PortfolioMember>> members)
    : PortfolioBatchScheduler(std::move(config), std::move(members),
                              /*owned_pool=*/nullptr,
                              /*shared_pool=*/nullptr) {}

PortfolioBatchScheduler::PortfolioBatchScheduler(
    PortfolioConfig config,
    std::vector<std::unique_ptr<PortfolioMember>> members,
    ThreadPool& shared_pool)
    : PortfolioBatchScheduler(std::move(config), std::move(members),
                              /*owned_pool=*/nullptr, &shared_pool) {}

PortfolioBatchScheduler::PortfolioBatchScheduler(
    PortfolioConfig config,
    std::vector<std::unique_ptr<PortfolioMember>> members,
    std::unique_ptr<ThreadPool> owned_pool, ThreadPool* shared_pool)
    : config_(std::move(config)),
      members_(std::move(members)),
      policy_(make_policy(config_.policy, config_.ucb)),
      cache_(config_.elite_capacity),
      owned_pool_(shared_pool != nullptr
                      ? std::move(owned_pool)
                      : std::make_unique<ThreadPool>(config_.threads)),
      pool_(shared_pool != nullptr ? shared_pool : owned_pool_.get()),
      name_(std::string("Portfolio(") + std::string(policy_->name()) + ")") {
  if (members_.empty()) {
    throw std::invalid_argument("Portfolio: need at least one member");
  }
  if (config_.budget_ms <= 0) {
    throw std::invalid_argument("Portfolio: budget_ms must be > 0");
  }
  for (std::size_t i = 0; i < members_.size(); ++i) {
    stats_.push_back(MemberStats{std::string(members_[i]->name())});
    if (!members_[i]->negligible_cost()) expensive_.push_back(i);
  }
}

void PortfolioBatchScheduler::bind_observability(obs::MetricsRegistry* metrics,
                                                 obs::TraceRecorder* trace,
                                                 std::string_view prefix) {
  trace_ = trace;
  races_counter_ = nullptr;
  win_counters_.assign(members_.size(), nullptr);
  if (metrics == nullptr) return;
  const std::string base(prefix);
  races_counter_ = &metrics->counter(base + ".races");
  for (std::size_t i = 0; i < members_.size(); ++i) {
    win_counters_[i] =
        &metrics->counter(base + ".wins." + std::string(members_[i]->name()));
  }
}

void PortfolioBatchScheduler::set_budget_ms(double budget_ms) {
  if (budget_ms <= 0) {
    throw std::invalid_argument("Portfolio: budget_ms must be > 0");
  }
  config_.budget_ms = budget_ms;
}

std::vector<std::unique_ptr<PortfolioMember>>
PortfolioBatchScheduler::default_members(const PortfolioConfig& config) {
  std::vector<std::unique_ptr<PortfolioMember>> members;
  members.push_back(
      std::make_unique<HeuristicMember>(HeuristicKind::kMct, config.weights));
  members.push_back(std::make_unique<HeuristicMember>(HeuristicKind::kMinMin,
                                                      config.weights));
  StruggleGaConfig ga;
  ga.weights = config.weights;
  members.push_back(std::make_unique<StruggleGaMember>(ga));
  LahcConfig lahc;
  lahc.weights = config.weights;
  members.push_back(std::make_unique<LahcMember>(lahc));
  CmaConfig cma;  // Table 1 settings
  cma.weights = config.weights;
  members.push_back(std::make_unique<CmaMember>(cma, /*synchronous=*/false));
  members.push_back(std::make_unique<CmaMember>(cma, /*synchronous=*/true));
  return members;
}

std::string_view PortfolioBatchScheduler::name() const noexcept {
  return name_;
}

Schedule PortfolioBatchScheduler::schedule_batch(const EtcMatrix& etc) {
  return schedule_batch(etc, BatchContext::identity(etc, activation_));
}

Schedule PortfolioBatchScheduler::schedule_batch(const EtcMatrix& etc,
                                                 const BatchContext& context) {
  ++activation_;
  // Degenerate batch: every member would return MCT's answer (or worse).
  if (etc.num_jobs() == 1) {
    Schedule s(1);
    s[0] = mct(etc)[0];
    return s;
  }

  const std::vector<Schedule> warm =
      config_.warm_start ? cache_.warm_start(etc, context)
                         : std::vector<Schedule>{};

  // --- Decide who races: free members always, expensive ones by policy. ---
  const std::vector<double> shares = policy_->plan(expensive_.size());
  struct Runner {
    std::size_t member;
    double share = 1.0;
  };
  std::vector<Runner> runners;
  for (std::size_t i = 0; i < members_.size(); ++i) {
    if (members_[i]->negligible_cost()) runners.push_back({i, 1.0});
  }
  for (std::size_t e = 0; e < expensive_.size(); ++e) {
    if (shares[e] > 0) runners.push_back({expensive_[e], shares[e]});
  }

  // --- Race them under one deadline. ---
  CancellationSource deadline;
  deadline.set_deadline_in_ms(config_.budget_ms);
  std::uint64_t seed_state =
      config_.seed ^ (activation_ * 0x9e3779b97f4a7c15ULL);
  std::vector<MemberResult> results(runners.size());
  Stopwatch race_watch;
  // The race runs in its own task group: waiting drains THIS portfolio's
  // members only (helping on the calling thread), so several portfolios —
  // the sharded service's concurrent shard activations — can share one
  // pool without false barriers, and a member failure here never leaks
  // into a neighboring race.
  TaskGroup race = pool_->make_group();
  for (std::size_t slot = 0; slot < runners.size(); ++slot) {
    const Runner runner = runners[slot];
    StopCondition stop = config_.member_stop;
    stop.cancel = deadline.token();
    const double slice = config_.budget_ms * runner.share;
    stop.max_time_ms =
        stop.max_time_ms > 0 ? std::min(stop.max_time_ms, slice) : slice;
    const std::uint64_t seed = splitmix64(seed_state);
    PortfolioMember* member = members_[runner.member].get();
    MemberResult* out = &results[slot];
    // The span lives inside the task so it opens and closes on whichever
    // pool thread actually ran the solve — per-tid nesting stays correct.
    obs::TraceRecorder* const trace = trace_;
    pool_->submit(race, [member, &etc, stop, &warm, seed, out, trace] {
      const obs::TraceSpan span(trace, member->name(), "member");
      *out = member->solve(etc, stop, warm, seed);
    });
  }
  race.wait();
  const double race_ms = race_watch.elapsed_ms();

  // --- Pick the winner under the portfolio's own weights (members could
  // carry different scalarizations; normalize before comparing). ---
  std::vector<Individual> normalized(runners.size());
  for (std::size_t slot = 0; slot < runners.size(); ++slot) {
    normalized[slot] =
        make_individual(results[slot].best.schedule, etc, config_.weights);
  }
  // QoS batches (any finite relative deadline) pick the winner on the
  // (makespan, missed deadlines, cost) Pareto front instead of scalar
  // fitness alone — a member that keeps one more promise beats one that
  // shaved a second of makespan. Without deadlines the front degenerates
  // and the historical min-fitness scan runs untouched, so non-QoS runs
  // are bitwise identical to before.
  const bool qos = qos_active(context.job_deadlines);
  std::vector<QosOutcome> qos_outcomes;
  std::size_t winner_slot = 0;
  if (qos) {
    qos_outcomes.reserve(runners.size());
    for (const Individual& candidate : normalized) {
      qos_outcomes.push_back(evaluate_qos(candidate.schedule, etc,
                                          context.job_deadlines,
                                          context.machine_cost_rates));
    }
    winner_slot = pick_qos_winner(normalized, qos_outcomes);
  } else {
    for (std::size_t slot = 1; slot < runners.size(); ++slot) {
      if (normalized[slot].fitness < normalized[winner_slot].fitness) {
        winner_slot = slot;
      }
    }
  }
  const double best_fitness = normalized[winner_slot].fitness;
  if (races_counter_ != nullptr) races_counter_->add();
  if (!win_counters_.empty() &&
      win_counters_[runners[winner_slot].member] != nullptr) {
    win_counters_[runners[winner_slot].member]->add();
  }

  // --- Credit assignment and bookkeeping. ---
  for (std::size_t slot = 0; slot < runners.size(); ++slot) {
    const double reward = normalized[slot].fitness > 0
                              ? best_fitness / normalized[slot].fitness
                              : 1.0;
    MemberStats& stat = stats_[runners[slot].member];
    ++stat.runs;
    if (slot == winner_slot) ++stat.wins;
    stat.total_ms += results[slot].elapsed_ms;
    stat.total_reward += reward;
    stat.evaluations += results[slot].evaluations;
    const auto expensive_index =
        std::find(expensive_.begin(), expensive_.end(), runners[slot].member);
    if (expensive_index != expensive_.end()) {
      policy_->record(
          static_cast<std::size_t>(expensive_index - expensive_.begin()),
          reward, results[slot].elapsed_ms);
    }
  }

  // --- Feed the warm-start cache with this activation's elites. ---
  if (config_.warm_start) {
    std::vector<Individual> elites;
    for (MemberResult& result : results) {
      for (Individual& individual : result.elites) {
        elites.push_back(std::move(individual));
      }
    }
    cache_.store(context, elites);
  }

  ActivationRecord record;
  record.activation = context.activation;
  record.batch_jobs = etc.num_jobs();
  record.winner = static_cast<int>(runners[winner_slot].member);
  record.winner_name = stats_[runners[winner_slot].member].name;
  record.best_fitness = best_fitness;
  record.race_ms = race_ms;
  if (qos) {
    record.qos_pareto = true;
    record.winner_missed = qos_outcomes[winner_slot].missed;
    record.winner_cost = qos_outcomes[winner_slot].total_cost;
  }
  records_.push_back(std::move(record));

  return std::move(normalized[winner_slot].schedule);
}

}  // namespace gridsched
