// Warm-start cache: elite schedules carried across grid activations.
//
// The dynamic grid hands the scheduler a fresh ETC sub-problem at every
// activation, but consecutive activations are strongly related: the same
// machines (minus churn) with updated backlogs, and occasionally the same
// jobs (re-queued after a machine failure). The cache stores the best
// individuals of the previous activation together with that batch's global
// job/machine identities, and remaps them onto the next batch:
//
//   * a job that reappears (re-queued) keeps its previous machine when that
//     machine is still in the new batch;
//   * a new job inherits the assignment of the old batch row at its index
//     modulo the old batch size — transferring the elite's load *pattern*
//     (how many jobs each machine took) rather than job identity;
//   * assignments to machines that left the grid fall back to the job's
//     fastest machine in the new batch (MET rule), deterministically.
//
// The result seeds the cMA mesh via CellularMemeticAlgorithm::run(etc,
// warm), so a 20 ms activation does not restart the search from scratch.
#pragma once

#include <span>
#include <vector>

#include "core/individual.h"
#include "sim/batch_scheduler.h"

namespace gridsched {

class PopulationCache {
 public:
  /// Keeps at most `capacity` elites per activation.
  explicit PopulationCache(int capacity = 8);

  /// Replaces the cache contents with the best `capacity` of `elites`
  /// (by fitness), remembering the batch identities in `context`.
  void store(const BatchContext& context, std::span<const Individual> elites);

  /// Remaps the cached elites onto a new batch. Returns one complete
  /// schedule per cached elite (best first); empty when nothing is cached.
  [[nodiscard]] std::vector<Schedule> warm_start(
      const EtcMatrix& etc, const BatchContext& context) const;

  /// Drops a job from the stored batch: its row leaves `stored_job_ids`
  /// and every elite. Returns false (no-op) when the job is not stored.
  /// The sharded service calls this on the VICTIM shard's cache when a
  /// drain-tail steal moves the job to another shard, so a stolen job is
  /// remembered by exactly one cache.
  bool erase_job(int global_job);

  /// Adds (or reassigns) a job in the stored batch: every elite maps it to
  /// `global_machine`, which joins `stored_machine_ids` if new. No-op on
  /// an empty cache — there is no elite to extend. The THIEF shard's cache
  /// learns a stolen job this way: if churn re-queues the job, the warm
  /// start remembers the machine it actually landed on.
  void adopt_job(int global_job, int global_machine);

  [[nodiscard]] bool empty() const noexcept { return elites_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return elites_.size(); }
  [[nodiscard]] int capacity() const noexcept { return capacity_; }

  /// Identities of the batch the current elites came from (diagnostics;
  /// the sharded service's isolation tests assert a shard's cache only
  /// ever sees that shard's jobs and machines).
  [[nodiscard]] const std::vector<int>& stored_job_ids() const noexcept {
    return job_ids_;
  }
  [[nodiscard]] const std::vector<int>& stored_machine_ids() const noexcept {
    return machine_ids_;
  }

 private:
  int capacity_;
  std::vector<Schedule> elites_;  // sorted best-fitness-first
  std::vector<int> job_ids_;      // previous batch row -> global job id
  std::vector<int> machine_ids_;  // previous batch column -> global machine
};

}  // namespace gridsched
