#include "portfolio/member.h"

#include <algorithm>
#include <limits>
#include <utility>
#include <vector>

#include "common/stopwatch.h"
#include "core/evolution.h"

namespace gridsched {
namespace {

/// Elites for the cache: the final population sorted best-first, or just
/// the best individual when the engine keeps no population.
std::vector<Individual> rank_elites(EvolutionResult& result) {
  if (result.population.empty()) return {result.best};
  std::stable_sort(result.population.begin(), result.population.end(),
                   [](const Individual& a, const Individual& b) {
                     return a.fitness < b.fitness;
                   });
  return std::move(result.population);
}

}  // namespace

HeuristicMember::HeuristicMember(HeuristicKind kind, FitnessWeights weights)
    : kind_(kind), weights_(weights) {}

std::string_view HeuristicMember::name() const noexcept {
  return heuristic_name(kind_);
}

MemberResult HeuristicMember::solve(const EtcMatrix& etc,
                                    const StopCondition& stop,
                                    std::span<const Schedule> warm,
                                    std::uint64_t seed) {
  (void)warm;
  Stopwatch watch;
  Rng rng(seed);
  MemberResult result;
  // Every heuristic runs in its budget-honoring form: identical output
  // while the token stays quiet, a complete schedule from a cheap tail
  // rule once the activation deadline fires (the O(n^2 m) batch
  // heuristics would otherwise bust it by orders of magnitude on
  // production-size batches, and even the O(n m) passes hurt at 10^5
  // jobs).
  const Schedule schedule = construct_schedule(kind_, etc, rng, stop.cancel);
  result.best = make_individual(schedule, etc, weights_);
  result.elites = {result.best};
  result.evaluations = 1;
  result.elapsed_ms = watch.elapsed_ms();
  return result;
}

CmaMember::CmaMember(CmaConfig config, bool synchronous)
    : config_(std::move(config)),
      synchronous_(synchronous),
      name_(synchronous ? "cMA-sync" : "cMA") {}

std::string_view CmaMember::name() const noexcept { return name_; }

MemberResult CmaMember::solve(const EtcMatrix& etc, const StopCondition& stop,
                              std::span<const Schedule> warm,
                              std::uint64_t seed) {
  Stopwatch watch;
  CmaConfig config = config_;
  config.stop = stop;
  config.seed = seed;
  config.record_progress = false;
  config.keep_final_population = true;
  // The portfolio already saturates the machine by racing members; the
  // sync engine runs its generations sequentially inside its lane.
  EvolutionResult evolved =
      synchronous_ ? SynchronousCellularMa(config, /*threads=*/0).run(etc, warm)
                   : CellularMemeticAlgorithm(config).run(etc, warm);
  MemberResult result;
  result.best = evolved.best;
  result.evaluations = evolved.evaluations;
  result.elites = rank_elites(evolved);
  result.elapsed_ms = watch.elapsed_ms();
  return result;
}

LahcMember::LahcMember(LahcConfig config) : config_(config) {}

std::string_view LahcMember::name() const noexcept { return "LAHC"; }

MemberResult LahcMember::solve(const EtcMatrix& etc, const StopCondition& stop,
                               std::span<const Schedule> warm,
                               std::uint64_t seed) {
  Stopwatch watch;
  Rng rng(seed);
  const int n = etc.num_jobs();
  const int m = etc.num_machines();
  ScheduleEvaluator evaluator(etc);
  EvolutionTracker tracker(stop, /*record_progress=*/false);

  // Seed: the best warm-start elite if the cache offered any, else MCT
  // (cheap, and distinct from the portfolio's Min-Min heuristic member).
  // The warm evaluations count against the budget like everything else.
  Schedule start;
  double start_fitness = std::numeric_limits<double>::infinity();
  for (const Schedule& candidate : warm) {
    evaluator.reset(candidate);
    tracker.count_evaluations();
    const double fitness = evaluator.fitness(config_.weights);
    if (fitness < start_fitness) {
      start_fitness = fitness;
      start = candidate;
    }
  }
  if (start.num_jobs() == 0) {
    start = construct_schedule(HeuristicKind::kMct, etc, rng, stop.cancel);
    tracker.count_evaluations();
  }
  evaluator.reset(start);
  double current = evaluator.fitness(config_.weights);
  tracker.offer(individual_from_evaluator(evaluator, config_.weights));

  // The late-acceptance history, initialized to the seed's fitness.
  const std::size_t history_length =
      static_cast<std::size_t>(std::max(1, config_.history_length));
  std::vector<double> history(history_length, current);
  Individual best_scratch;

  std::uint64_t step = 0;
  while (n >= 1 && m >= 2 && !tracker.should_stop()) {
    // Candidate: a random move, or a random cross-machine swap half the
    // time (when one exists; same-machine draws degrade to a move so
    // every step costs exactly one preview and the budget stays honest).
    const JobId job = rng.uniform_int(0, n - 1);
    const MachineId from = evaluator.schedule()[job];
    double candidate_fitness;
    JobId swap_partner = -1;
    MachineId move_to = -1;
    if (n >= 2 && rng.bounded(2) == 1) {
      const JobId other = rng.uniform_int(0, n - 1);
      if (other != job && evaluator.schedule()[other] != from) {
        swap_partner = other;
      }
    }
    if (swap_partner >= 0) {
      candidate_fitness = evaluator.preview_swap(job, swap_partner)
                              .fitness(config_.weights, m);
    } else {
      move_to = rng.uniform_int(0, m - 2);
      if (move_to >= from) ++move_to;
      candidate_fitness =
          evaluator.preview_move(job, move_to).fitness(config_.weights, m);
    }
    tracker.count_evaluations();

    const std::size_t slot = step % history_length;
    if (candidate_fitness <= history[slot] || candidate_fitness <= current) {
      if (swap_partner >= 0) {
        evaluator.apply_swap(job, swap_partner);
      } else {
        evaluator.apply_move(job, move_to);
      }
      current = candidate_fitness;
      if (current < tracker.best().fitness) {
        // Canonicalize before publishing (the exactness contract every
        // engine follows), then resync `current` with the canonical
        // scalars so later acceptances compare consistently.
        assign_from_evaluator(best_scratch, evaluator, config_.weights);
        current = best_scratch.fitness;
        tracker.offer(best_scratch);
      }
    }
    history[slot] = current;
    ++step;
  }

  MemberResult result;
  result.best = tracker.best();
  result.elites = {result.best};
  result.evaluations = tracker.evaluations();
  result.elapsed_ms = watch.elapsed_ms();
  return result;
}

StruggleGaMember::StruggleGaMember(StruggleGaConfig config)
    : config_(std::move(config)) {}

std::string_view StruggleGaMember::name() const noexcept {
  return "StruggleGA";
}

MemberResult StruggleGaMember::solve(const EtcMatrix& etc,
                                     const StopCondition& stop,
                                     std::span<const Schedule> warm,
                                     std::uint64_t seed) {
  (void)warm;  // the GA reseeds from heuristics; no mesh to warm-start
  Stopwatch watch;
  StruggleGaConfig config = config_;
  config.stop = stop;
  config.seed = seed;
  config.record_progress = false;
  config.population_size =
      std::min(config.population_size, std::max(2, etc.num_jobs() * 4));
  EvolutionResult evolved = StruggleGa(config).run(etc);
  MemberResult result;
  result.best = evolved.best;
  result.evaluations = evolved.evaluations;
  result.elites = {result.best};
  result.elapsed_ms = watch.elapsed_ms();
  return result;
}

}  // namespace gridsched
