#include "portfolio/member.h"

#include <algorithm>
#include <utility>

#include "common/stopwatch.h"

namespace gridsched {
namespace {

/// Elites for the cache: the final population sorted best-first, or just
/// the best individual when the engine keeps no population.
std::vector<Individual> rank_elites(EvolutionResult& result) {
  if (result.population.empty()) return {result.best};
  std::stable_sort(result.population.begin(), result.population.end(),
                   [](const Individual& a, const Individual& b) {
                     return a.fitness < b.fitness;
                   });
  return std::move(result.population);
}

}  // namespace

HeuristicMember::HeuristicMember(HeuristicKind kind, FitnessWeights weights)
    : kind_(kind), weights_(weights) {}

std::string_view HeuristicMember::name() const noexcept {
  return heuristic_name(kind_);
}

MemberResult HeuristicMember::solve(const EtcMatrix& etc,
                                    const StopCondition& stop,
                                    std::span<const Schedule> warm,
                                    std::uint64_t seed) {
  (void)warm;
  Stopwatch watch;
  Rng rng(seed);
  MemberResult result;
  // Every heuristic runs in its budget-honoring form: identical output
  // while the token stays quiet, a complete schedule from a cheap tail
  // rule once the activation deadline fires (the O(n^2 m) batch
  // heuristics would otherwise bust it by orders of magnitude on
  // production-size batches, and even the O(n m) passes hurt at 10^5
  // jobs).
  const Schedule schedule = construct_schedule(kind_, etc, rng, stop.cancel);
  result.best = make_individual(schedule, etc, weights_);
  result.elites = {result.best};
  result.evaluations = 1;
  result.elapsed_ms = watch.elapsed_ms();
  return result;
}

CmaMember::CmaMember(CmaConfig config, bool synchronous)
    : config_(std::move(config)),
      synchronous_(synchronous),
      name_(synchronous ? "cMA-sync" : "cMA") {}

std::string_view CmaMember::name() const noexcept { return name_; }

MemberResult CmaMember::solve(const EtcMatrix& etc, const StopCondition& stop,
                              std::span<const Schedule> warm,
                              std::uint64_t seed) {
  Stopwatch watch;
  CmaConfig config = config_;
  config.stop = stop;
  config.seed = seed;
  config.record_progress = false;
  config.keep_final_population = true;
  // The portfolio already saturates the machine by racing members; the
  // sync engine runs its generations sequentially inside its lane.
  EvolutionResult evolved =
      synchronous_ ? SynchronousCellularMa(config, /*threads=*/0).run(etc, warm)
                   : CellularMemeticAlgorithm(config).run(etc, warm);
  MemberResult result;
  result.best = evolved.best;
  result.evaluations = evolved.evaluations;
  result.elites = rank_elites(evolved);
  result.elapsed_ms = watch.elapsed_ms();
  return result;
}

StruggleGaMember::StruggleGaMember(StruggleGaConfig config)
    : config_(std::move(config)) {}

std::string_view StruggleGaMember::name() const noexcept {
  return "StruggleGA";
}

MemberResult StruggleGaMember::solve(const EtcMatrix& etc,
                                     const StopCondition& stop,
                                     std::span<const Schedule> warm,
                                     std::uint64_t seed) {
  (void)warm;  // the GA reseeds from heuristics; no mesh to warm-start
  Stopwatch watch;
  StruggleGaConfig config = config_;
  config.stop = stop;
  config.seed = seed;
  config.record_progress = false;
  config.population_size =
      std::min(config.population_size, std::max(2, etc.num_jobs() * 4));
  EvolutionResult evolved = StruggleGa(config).run(etc);
  MemberResult result;
  result.best = evolved.best;
  result.evaluations = evolved.evaluations;
  result.elites = {result.best};
  result.elapsed_ms = watch.elapsed_ms();
  return result;
}

}  // namespace gridsched
