#include "portfolio/budget_policy.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

namespace gridsched {

UcbPolicy::UcbPolicy(UcbConfig config) : config_(config) {
  if (config_.max_active == 0) {
    throw std::invalid_argument("UcbPolicy: max_active must be >= 1");
  }
  if (config_.exploration < 0) {
    throw std::invalid_argument("UcbPolicy: exploration must be >= 0");
  }
}

double UcbPolicy::score(std::size_t member) const {
  const Arm& arm = arms_[member];
  if (arm.plays == 0) return std::numeric_limits<double>::infinity();
  double value = arm.mean_reward();
  if (config_.cost_aware && total_plays_ > 0) {
    // Reward per unit cost, rescaled by the policy-wide mean cost so the
    // value stays on the reward scale (and equals the plain mean reward
    // when every arm costs the same). The floor guards heuristically cheap
    // arms whose measured cost rounds to ~0 ms.
    constexpr double kMinCostMs = 1e-3;
    const double mean_cost_all = std::max(
        total_cost_ms_ / static_cast<double>(total_plays_), kMinCostMs);
    const double mean_cost_arm = std::max(arm.mean_cost_ms(), kMinCostMs);
    value *= mean_cost_all / mean_cost_arm;
  }
  const double bonus =
      config_.exploration *
      std::sqrt(std::log(static_cast<double>(std::max<std::int64_t>(
                    total_plays_, 2))) /
                static_cast<double>(arm.plays));
  return value + bonus;
}

std::vector<double> UcbPolicy::plan(std::size_t num_members) {
  if (arms_.size() < num_members) arms_.resize(num_members);
  std::vector<std::size_t> order(num_members);
  std::iota(order.begin(), order.end(), 0);
  // Highest score first; ties break toward the lower index so planning is
  // deterministic.
  std::stable_sort(order.begin(), order.end(),
                   [this](std::size_t a, std::size_t b) {
                     return score(a) > score(b);
                   });
  std::vector<double> shares(num_members, 0.0);
  const std::size_t active = std::min(config_.max_active, num_members);
  for (std::size_t i = 0; i < active; ++i) shares[order[i]] = 1.0;
  return shares;
}

void UcbPolicy::record(std::size_t member, double reward, double cost_ms) {
  if (arms_.size() <= member) arms_.resize(member + 1);
  Arm& arm = arms_[member];
  ++arm.plays;
  arm.total_reward += reward;
  arm.total_cost_ms += cost_ms;
  ++total_plays_;
  total_cost_ms_ += cost_ms;
}

std::unique_ptr<BudgetPolicy> make_policy(PolicyKind kind,
                                          const UcbConfig& ucb) {
  switch (kind) {
    case PolicyKind::kStaticRace:
      return std::make_unique<StaticRacePolicy>();
    case PolicyKind::kUcb:
      return std::make_unique<UcbPolicy>(ucb);
  }
  throw std::invalid_argument("make_policy: unknown policy kind");
}

}  // namespace gridsched
