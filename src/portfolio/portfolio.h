// The concurrent portfolio batch scheduler.
//
// At every grid activation the portfolio races a set of member algorithms
// (constructive heuristics, Struggle GA, async/sync cMA) concurrently on a
// thread pool, all under one shared wall-clock budget enforced by a
// cancellation token (common/cancellation.h), and commits the schedule
// with the best batch fitness. Cheap one-pass heuristics always race — they
// are the safety net that makes the portfolio never worse than its best
// constructive member — while a BudgetPolicy decides which expensive
// members run (static: all of them; UCB: the historically most rewarding).
// A PopulationCache carries each activation's elite schedules to the next,
// remapped to the new batch, so the cMA members start from yesterday's
// answer instead of from scratch.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "portfolio/budget_policy.h"
#include "portfolio/member.h"
#include "portfolio/population_cache.h"
#include "sim/batch_scheduler.h"

namespace gridsched {

namespace obs {
class Counter;
class MetricsRegistry;
class TraceRecorder;
}  // namespace obs

struct PortfolioConfig {
  /// Wall-clock budget per activation (all members share the deadline).
  double budget_ms = 25.0;
  /// Racing pool width; 0 = hardware concurrency.
  std::size_t threads = 0;
  PolicyKind policy = PolicyKind::kStaticRace;
  UcbConfig ucb{};
  /// Scalarization used to pick the winner; member configs should use the
  /// same weights so cached elites rank consistently.
  FitnessWeights weights{};
  /// Extra bounds merged into every member's stop condition. Tests set
  /// `max_evaluations` here (with a generous budget) to make a whole
  /// portfolio run bitwise deterministic.
  StopCondition member_stop{};
  bool warm_start = true;
  /// Elites kept per activation for warm-starting the next one.
  int elite_capacity = 8;
  std::uint64_t seed = 1;
};

/// Per-member aggregate over all activations so far.
struct MemberStats {
  std::string name;
  int runs = 0;
  int wins = 0;
  double total_ms = 0.0;
  double total_reward = 0.0;
  std::int64_t evaluations = 0;

  [[nodiscard]] double mean_reward() const noexcept {
    return runs > 0 ? total_reward / runs : 0.0;
  }
};

/// What happened in one activation (degenerate single-job batches are
/// resolved by MCT directly and not recorded).
struct ActivationRecord {
  std::uint64_t activation = 0;
  int batch_jobs = 0;
  int winner = -1;  // member index
  std::string winner_name;
  double best_fitness = 0.0;
  double race_ms = 0.0;  // wall time of the whole activation race
  /// True when the batch carried finite deadlines and the winner was
  /// picked on the (makespan, missed, cost) Pareto front (src/qos/qos.h)
  /// instead of scalar fitness; the winner's promise outcomes follow.
  bool qos_pareto = false;
  int winner_missed = 0;
  double winner_cost = 0.0;
};

class PortfolioBatchScheduler final : public BatchScheduler {
 public:
  PortfolioBatchScheduler(PortfolioConfig config,
                          std::vector<std::unique_ptr<PortfolioMember>> members);

  /// Races on `shared_pool` instead of spawning an own pool. The sharded
  /// service runs one portfolio per shard, so N shards share one set of
  /// workers instead of oversubscribing the host with N pools. Each race
  /// waits on its own TaskGroup, so portfolios sharing a pool may run
  /// schedule_batch CONCURRENTLY (one call per portfolio instance) — the
  /// service overlaps whole shard activations this way. The pool must
  /// outlive the scheduler.
  PortfolioBatchScheduler(PortfolioConfig config,
                          std::vector<std::unique_ptr<PortfolioMember>> members,
                          ThreadPool& shared_pool);

  /// MCT + Min-Min + Struggle GA + LAHC + async cMA + sync cMA, all
  /// configured with `config.weights` (paper Table 1 settings for the
  /// cMAs; default history length for LAHC).
  [[nodiscard]] static std::vector<std::unique_ptr<PortfolioMember>>
  default_members(const PortfolioConfig& config);

  [[nodiscard]] std::string_view name() const noexcept override;

  [[nodiscard]] Schedule schedule_batch(const EtcMatrix& etc) override;
  [[nodiscard]] Schedule schedule_batch(const EtcMatrix& etc,
                                        const BatchContext& context) override;

  [[nodiscard]] const std::vector<MemberStats>& member_stats() const noexcept {
    return stats_;
  }
  [[nodiscard]] const std::vector<ActivationRecord>& activations()
      const noexcept {
    return records_;
  }
  [[nodiscard]] const PortfolioConfig& config() const noexcept {
    return config_;
  }
  [[nodiscard]] const PopulationCache& cache() const noexcept {
    return cache_;
  }

  /// Mutable cache view for the sharded service's stolen-job handoff: when
  /// a drain-tail steal moves a committed job to another shard, the victim
  /// portfolio's cache drops the job and the thief's adopts it on the
  /// machine it landed on (PopulationCache::erase_job / adopt_job), so the
  /// one-cache-per-job isolation invariant survives stealing and a churn
  /// re-queue warm-starts from where the job actually ran.
  [[nodiscard]] PopulationCache& cache() noexcept { return cache_; }

  /// Re-arms the per-activation budget. The sharded service splits its
  /// total budget over the shards that have work, which varies activation
  /// to activation.
  void set_budget_ms(double budget_ms);

  /// Replaces the warm-start cache wholesale. The sharded service uses
  /// this when it splits a shard: the child portfolio inherits a copy of
  /// the parent's elites, whose remapping machinery (MET fallback for
  /// departed machines, pattern transfer for new jobs) absorbs the
  /// partition change at the next activation.
  void seed_cache(const PopulationCache& cache) { cache_ = cache; }

  /// Wires this portfolio into a shared metrics registry and/or trace
  /// recorder (either may be null; both must outlive the scheduler).
  /// Races count under `<prefix>.races`, wins under
  /// `<prefix>.wins.<member name>`, and every member solve emits a
  /// cat "member" trace span named after the member. The sharded service
  /// binds each shard's portfolio with a per-shard prefix; an unbound
  /// portfolio records nothing (PR 1-6 behavior).
  void bind_observability(obs::MetricsRegistry* metrics,
                          obs::TraceRecorder* trace, std::string_view prefix);

 private:
  PortfolioBatchScheduler(PortfolioConfig config,
                          std::vector<std::unique_ptr<PortfolioMember>> members,
                          std::unique_ptr<ThreadPool> owned_pool,
                          ThreadPool* shared_pool);

  PortfolioConfig config_;
  std::vector<std::unique_ptr<PortfolioMember>> members_;
  std::vector<std::size_t> expensive_;  // member indices the policy governs
  std::unique_ptr<BudgetPolicy> policy_;
  PopulationCache cache_;
  std::unique_ptr<ThreadPool> owned_pool_;  // null when racing on a shared pool
  ThreadPool* pool_;                        // owned or shared, never null
  std::vector<MemberStats> stats_;
  std::vector<ActivationRecord> records_;
  std::string name_;
  std::uint64_t activation_ = 0;
  // Observability handles (bind_observability); null = not recording.
  obs::TraceRecorder* trace_ = nullptr;
  obs::Counter* races_counter_ = nullptr;
  std::vector<obs::Counter*> win_counters_;  // parallel to members_
};

}  // namespace gridsched
