// Portfolio members: the algorithms the racing scheduler can field.
//
// A member is a batch solver with a uniform contract: given the batch ETC,
// a StopCondition (which carries the activation's shared cancellation
// token), optional warm-start schedules, and a per-activation seed, return
// your best individual plus the elites the warm-start cache may keep.
// Members must honor the stop condition cooperatively — the portfolio
// never kills threads — and must always return a complete schedule, even
// when cancelled before their first iteration (every member here falls
// back to a constructive solution at worst).
#pragma once

#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "cma/cma.h"
#include "cma/sync_cma.h"
#include "core/individual.h"
#include "etc/etc_matrix.h"
#include "ga/struggle_ga.h"
#include "heuristics/constructive.h"

namespace gridsched {

struct MemberResult {
  Individual best;
  std::vector<Individual> elites;  // candidates for the warm-start cache
  std::int64_t evaluations = 0;
  double elapsed_ms = 0.0;  // wall time spent inside solve()
};

class PortfolioMember {
 public:
  virtual ~PortfolioMember() = default;

  [[nodiscard]] virtual std::string_view name() const noexcept = 0;

  /// Members whose runtime is negligible against any realistic budget
  /// (one-pass heuristics). The portfolio always races them and keeps the
  /// budget policy focused on the expensive members.
  [[nodiscard]] virtual bool negligible_cost() const noexcept {
    return false;
  }

  /// Solves one batch. `stop` aggregates the member's own bounds with the
  /// activation budget and cancellation token; `warm` may be empty.
  [[nodiscard]] virtual MemberResult solve(const EtcMatrix& etc,
                                           const StopCondition& stop,
                                           std::span<const Schedule> warm,
                                           std::uint64_t seed) = 0;
};

/// One-pass constructive heuristic (MCT, Min-Min, ...). Negligible cost.
class HeuristicMember final : public PortfolioMember {
 public:
  explicit HeuristicMember(HeuristicKind kind, FitnessWeights weights = {});

  [[nodiscard]] std::string_view name() const noexcept override;
  [[nodiscard]] bool negligible_cost() const noexcept override {
    return true;
  }
  [[nodiscard]] MemberResult solve(const EtcMatrix& etc,
                                   const StopCondition& stop,
                                   std::span<const Schedule> warm,
                                   std::uint64_t seed) override;

 private:
  HeuristicKind kind_;
  FitnessWeights weights_;
};

/// Cellular memetic algorithm, asynchronous (the paper's engine) or
/// synchronous sweep. Accepts warm starts into its mesh.
class CmaMember final : public PortfolioMember {
 public:
  CmaMember(CmaConfig config, bool synchronous);

  [[nodiscard]] std::string_view name() const noexcept override;
  [[nodiscard]] MemberResult solve(const EtcMatrix& etc,
                                   const StopCondition& stop,
                                   std::span<const Schedule> warm,
                                   std::uint64_t seed) override;

 private:
  CmaConfig config_;
  bool synchronous_;
  std::string name_;
};

/// Tuning for the LAHC member below.
struct LahcConfig {
  FitnessWeights weights{};
  /// Length of the late-acceptance fitness history. The classic
  /// Burke-Bykov guidance: longer = slower convergence, better quality;
  /// the default suits 25 ms activation slices.
  int history_length = 64;
};

/// Late Acceptance Hill-Climbing (Burke & Bykov) over the evaluator's
/// allocation-free move/swap previews. Near-parameter-free: a candidate
/// is accepted when it beats either the current solution or the solution
/// from `history_length` steps ago, which lets the walk traverse plateaus
/// and shallow worsenings without a cooling schedule. Seeds from the best
/// warm-start elite when the cache offers one, else from MCT, and tracks
/// the best-so-far separately — so it is never worse than its seed.
class LahcMember final : public PortfolioMember {
 public:
  explicit LahcMember(LahcConfig config = {});

  [[nodiscard]] std::string_view name() const noexcept override;
  [[nodiscard]] MemberResult solve(const EtcMatrix& etc,
                                   const StopCondition& stop,
                                   std::span<const Schedule> warm,
                                   std::uint64_t seed) override;

 private:
  LahcConfig config_;
};

/// Struggle GA baseline under the activation budget.
class StruggleGaMember final : public PortfolioMember {
 public:
  explicit StruggleGaMember(StruggleGaConfig config);

  [[nodiscard]] std::string_view name() const noexcept override;
  [[nodiscard]] MemberResult solve(const EtcMatrix& etc,
                                   const StopCondition& stop,
                                   std::span<const Schedule> warm,
                                   std::uint64_t seed) override;

 private:
  StruggleGaConfig config_;
};

}  // namespace gridsched
