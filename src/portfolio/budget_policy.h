// Budget allocation across portfolio members.
//
// No single scheduler dominates across batch sizes and grid consistency
// classes, but on one grid the same member tends to keep winning — paying
// the full race cost at every activation is wasted CPU once the ranking is
// clear. A BudgetPolicy decides, per activation, which expensive members
// run and what share of the wall-clock budget each gets; after the race it
// receives each runner's reward (best_fitness / member_fitness, 1 for the
// winner) to update its credit. Two policies:
//
//   StaticRacePolicy  everyone races with the full budget, every time —
//                     the baseline, and the right choice for short runs.
//   UcbPolicy         UCB1 over members: race the top `max_active` arms by
//                     mean reward + exploration bonus. Unplayed arms score
//                     +inf, so every member gets raced early; afterwards
//                     the policy concentrates the budget on members that
//                     keep producing winning or near-winning schedules. By
//                     default the credit is cost-aware (reward scaled by
//                     how cheap the arm is against the policy-wide mean
//                     cost); `UcbConfig::cost_aware = false` restores the
//                     original cost-blind ranking.
#pragma once

#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

namespace gridsched {

enum class PolicyKind {
  kStaticRace,
  kUcb,
};

class BudgetPolicy {
 public:
  virtual ~BudgetPolicy() = default;

  [[nodiscard]] virtual std::string_view name() const noexcept = 0;

  /// Share of the activation budget per member, in [0, 1]; 0 = skip this
  /// activation. Called once per activation, before the race.
  [[nodiscard]] virtual std::vector<double> plan(std::size_t num_members) = 0;

  /// Credit update for one raced member. `reward` in (0, 1], 1 = winner;
  /// `cost_ms` is the wall time the member actually spent.
  virtual void record(std::size_t member, double reward, double cost_ms) = 0;
};

/// Full budget for everyone, unconditionally.
class StaticRacePolicy final : public BudgetPolicy {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "static";
  }
  [[nodiscard]] std::vector<double> plan(std::size_t num_members) override {
    return std::vector<double>(num_members, 1.0);
  }
  void record(std::size_t, double, double) override {}
};

struct UcbConfig {
  /// Exploration constant `c` in  mean + c * sqrt(ln(T) / n).
  double exploration = 0.5;
  /// How many members race per activation once every arm has been tried.
  std::size_t max_active = 2;
  /// Cost-aware credit: scale each arm's mean reward by how cheap it is
  /// relative to the policy-wide mean cost (`mean_reward * mean_cost_all /
  /// mean_cost_arm`), so a cheap member that nearly wins outranks an
  /// expensive member that barely wins. When every arm costs the same this
  /// reduces exactly to the plain mean reward. Set false for the original
  /// cost-blind UCB1 ranking.
  bool cost_aware = true;
};

class UcbPolicy final : public BudgetPolicy {
 public:
  struct Arm {
    std::int64_t plays = 0;
    double total_reward = 0.0;
    double total_cost_ms = 0.0;

    [[nodiscard]] double mean_reward() const noexcept {
      return plays > 0 ? total_reward / static_cast<double>(plays) : 0.0;
    }
    [[nodiscard]] double mean_cost_ms() const noexcept {
      return plays > 0 ? total_cost_ms / static_cast<double>(plays) : 0.0;
    }
  };

  explicit UcbPolicy(UcbConfig config = {});

  [[nodiscard]] std::string_view name() const noexcept override {
    return "ucb";
  }
  [[nodiscard]] std::vector<double> plan(std::size_t num_members) override;
  void record(std::size_t member, double reward, double cost_ms) override;

  /// UCB score of one arm given the current play totals (exposed for
  /// tests; +inf for unplayed arms).
  [[nodiscard]] double score(std::size_t member) const;

  [[nodiscard]] const std::vector<Arm>& arms() const noexcept {
    return arms_;
  }

 private:
  UcbConfig config_;
  std::vector<Arm> arms_;
  std::int64_t total_plays_ = 0;
  double total_cost_ms_ = 0.0;
};

[[nodiscard]] std::unique_ptr<BudgetPolicy> make_policy(PolicyKind kind,
                                                        const UcbConfig& ucb);

}  // namespace gridsched
