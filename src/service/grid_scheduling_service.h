// The sharded multi-queue scheduling service.
//
// PR 1's PortfolioBatchScheduler optimizes one batch queue; a
// production-scale grid serves many. GridSchedulingService partitions the
// grid's machines into `num_shards` static shards (grid machine id modulo
// shard count, so a machine keeps its shard across failures and repairs)
// and runs one full portfolio — with its own PopulationCache and budget
// policy — per shard, all racing on ONE shared ThreadPool. Each arriving
// job is routed to a shard by a pluggable RoutingPolicy; the service then
// activates the shards one at a time, splitting its total wall-clock
// budget evenly over the shards that actually have work, so N shards cost
// the same real time as one portfolio with the whole budget.
//
// Cross-shard rebalancing runs at every activation boundary, after
// routing and before the races: while the hottest shard's backlog (ready
// times + estimated routed work) exceeds `imbalance_factor` times the
// lightest shard's, the hot shard migrates its newest queued jobs to the
// lightest shard — so a hot queue cannot starve while neighbors idle. A
// migration only happens when it strictly shrinks the spread, which makes
// the loop terminate without job ping-pong.
//
// The service is itself a BatchScheduler, so GridSimulator drives it
// unchanged: machine failures shrink a shard's column set for the
// activation, and re-queued jobs re-enter routing like any arrival (a
// re-queued job may legitimately land on a new shard — its old machine may
// be the dead one). ShardedSimDriver (sharded_driver.h) splits the
// simulator's per-job records back into per-shard SimMetrics.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "portfolio/portfolio.h"
#include "service/routing_policy.h"

namespace gridsched {

struct ServiceConfig {
  int num_shards = 4;
  RoutingKind routing = RoutingKind::kLeastBacklog;
  /// Wall-clock budget per service activation, split evenly over the
  /// shards that have queued work (a lone active shard gets all of it).
  double total_budget_ms = 25.0;
  /// Rebalance trigger: migrate newest jobs away from the hottest shard
  /// while its backlog exceeds `imbalance_factor` times the lightest
  /// shard's. Must be >= 1; 0 disables rebalancing.
  double imbalance_factor = 2.0;
  /// Width of the shared racing pool; 0 = hardware concurrency.
  std::size_t threads = 0;
  /// Per-shard portfolio knobs (see PortfolioConfig).
  PolicyKind policy = PolicyKind::kStaticRace;
  UcbConfig ucb{};
  FitnessWeights weights{};
  StopCondition member_stop{};
  bool warm_start = true;
  int elite_capacity = 8;
  std::uint64_t seed = 1;
};

/// One shard's slice of one service activation.
struct ShardActivationRecord {
  std::uint64_t activation = 0;
  int shard = 0;
  int jobs = 0;          // jobs raced by this shard (after rebalancing)
  int migrated_in = 0;   // jobs received from hotter shards
  int migrated_out = 0;  // jobs shed to lighter shards
  double backlog = 0.0;  // ready-time sum + est. routed work, pre-race
  double budget_ms = 0.0;
  double race_ms = 0.0;  // wall time of this shard's portfolio race
};

/// Per-shard aggregate over all activations so far.
struct ShardStats {
  int shard = 0;
  int activations = 0;  // activations in which the shard raced
  int jobs_scheduled = 0;
  int migrated_in = 0;
  int migrated_out = 0;
  double total_race_ms = 0.0;
  double max_race_ms = 0.0;
};

class GridSchedulingService final : public BatchScheduler {
 public:
  explicit GridSchedulingService(ServiceConfig config);

  [[nodiscard]] std::string_view name() const noexcept override;

  [[nodiscard]] Schedule schedule_batch(const EtcMatrix& etc) override;
  [[nodiscard]] Schedule schedule_batch(const EtcMatrix& etc,
                                        const BatchContext& context) override;

  [[nodiscard]] int num_shards() const noexcept { return config_.num_shards; }

  /// Static machine partition: the shard that owns a grid machine.
  [[nodiscard]] int shard_of_machine(int grid_machine) const noexcept {
    return grid_machine % config_.num_shards;
  }

  /// Shard the job was routed to (after rebalancing) in the most recent
  /// activation; -1 if that batch did not contain it. Scoped to one
  /// batch so a long-lived service's memory stays flat.
  [[nodiscard]] int shard_of_job(int global_job) const noexcept;

  /// The portfolio serving one shard (its stats, activations and cache).
  [[nodiscard]] const PortfolioBatchScheduler& shard_scheduler(
      int shard) const {
    return *shards_.at(static_cast<std::size_t>(shard));
  }

  [[nodiscard]] const std::vector<ShardStats>& shard_stats() const noexcept {
    return stats_;
  }
  [[nodiscard]] const std::vector<ShardActivationRecord>& shard_activations()
      const noexcept {
    return records_;
  }
  [[nodiscard]] std::string_view router_name() const noexcept {
    return router_->name();
  }
  [[nodiscard]] const ServiceConfig& config() const noexcept {
    return config_;
  }

 private:
  ServiceConfig config_;
  ThreadPool pool_;  // shared by every shard's portfolio race
  std::vector<std::unique_ptr<PortfolioBatchScheduler>> shards_;
  std::unique_ptr<RoutingPolicy> router_;
  std::vector<ShardStats> stats_;
  std::vector<ShardActivationRecord> records_;
  std::unordered_map<int, int> shard_of_job_;
  std::string name_;
  std::uint64_t activation_ = 0;
};

}  // namespace gridsched
