// The sharded multi-queue scheduling service.
//
// PR 1's PortfolioBatchScheduler optimizes one batch queue; a
// production-scale grid serves many. GridSchedulingService partitions the
// grid's machines into shards and runs one full portfolio — with its own
// PopulationCache and budget policy — per shard, all racing on ONE shared
// ThreadPool. Each arriving job is routed to a shard by a pluggable
// RoutingPolicy; the service then activates every shard with work
// CONCURRENTLY — one TaskGroup per shard, results folded from a per-shard
// slot array after the groups drain — splitting its total wall-clock
// budget evenly over those shards. Overlapped races mean an activation's
// wall-clock is the *slice*, not the sum of slices; `concurrent_shards =
// false` restores the PR 2 one-at-a-time behavior (bench/sharded_service
// measures the overlap win between the two).
//
// The machine partition starts static (grid machine id modulo the initial
// shard count, so a machine keeps its shard across failures and repairs)
// and can SCALE DYNAMICALLY: at an activation boundary, when machine
// churn pushes the mean alive-machines-per-shard above
// `split_above_machines`, the hottest shard (by ready-time backlog)
// splits — its alive machines are cut into MIPS-balanced, class-diverse
// halves (count-balanced when speeds are unreported) and one half moves
// to a fresh (or recycled empty) shard whose portfolio inherits a copy of
// the parent's warm-start cache — and when the mean falls below
// `merge_below_machines`, the two lightest shards merge (the lighter
// one's machines fold into the other; the emptied slot idles at zero cost
// until a split recycles it). Both bounds zero disables scaling and the
// partition is exactly PR 2's. Resize decisions carry HYSTERESIS: each
// trigger has a threshold band, and any resize opens a cooldown window of
// `resize_cooldown` activations, so churn noise hovering at a bound
// cannot flap split/merge across consecutive activations.
//
// With `drain_steal` enabled, a cross-shard WORK-STEALING pass runs after
// the races commit: at the drain tail (arrivals stopped, most queues
// empty), the straggler shard's jobs spill onto neighbors' idle machines
// whenever the exact completion estimate there is strictly earlier —
// reclaiming the makespan residue a strict partition pays once the dying
// queue no longer spans the full pool (see plan_drain_steals and
// bench/sharded_service's steal-on/off drain-tail verdict). Stolen jobs
// are handed off between the shard caches (the victim keeps the entry
// when the thief has no cache to extend), so at most one warm-start
// cache knows each job.
//
// Cross-shard rebalancing runs at every activation boundary, after
// routing and before the races: while the hottest shard's backlog (ready
// times + estimated routed work) exceeds `imbalance_factor` times the
// lightest shard's, the hot shard migrates its newest queued jobs to the
// lightest shard — so a hot queue cannot starve while neighbors idle. A
// migration only happens when it strictly shrinks the spread, which makes
// the loop terminate without job ping-pong.
//
// The service is itself a BatchScheduler, so GridSimulator drives it
// unchanged: machine failures shrink a shard's column set for the
// activation, and re-queued jobs re-enter routing like any arrival (a
// re-queued job may legitimately land on a new shard — its old machine may
// be the dead one). On class-structured grids the simulator reports job
// classes through BatchContext, enabling class-aware routing
// (RoutingKind::kClassBacklog) and class-corrected work estimates.
// ShardedSimDriver (sharded_driver.h) splits the simulator's per-job
// records back into per-shard and per-class SimMetrics.
#pragma once

#include <fstream>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/stats.h"
#include "obs/metrics_registry.h"
#include "obs/trace_recorder.h"
#include "portfolio/portfolio.h"
#include "qos/admission.h"
#include "service/routing_policy.h"

namespace gridsched {

struct ServiceConfig {
  /// Initial shard count; dynamic scaling (below) may grow it.
  int num_shards = 4;
  RoutingKind routing = RoutingKind::kLeastBacklog;
  /// Wall-clock budget per service activation, split evenly over the
  /// shards that have queued work (a lone active shard gets all of it).
  double total_budget_ms = 25.0;
  /// Rebalance trigger: migrate newest jobs away from the hottest shard
  /// while its backlog exceeds `imbalance_factor` times the lightest
  /// shard's. Must be >= 1; 0 disables rebalancing.
  double imbalance_factor = 2.0;
  /// Width of the shared racing pool; 0 = hardware concurrency.
  std::size_t threads = 0;
  /// Overlap the shard races on the shared pool (one TaskGroup per
  /// shard). false = activate shards one at a time — same schedules on a
  /// deterministic config, but the activation wall-clock is the SUM of
  /// the slices instead of the slice.
  bool concurrent_shards = true;
  /// Dynamic shard scaling at activation boundaries (0 disables each
  /// bound): split the hottest shard while mean alive machines per active
  /// shard exceeds `split_above_machines` (up to `max_shards`); merge the
  /// two lightest while it falls below `merge_below_machines`. Splits cut
  /// the parent's alive machines into MIPS-balanced halves when the batch
  /// context reports machine speeds (count-balanced otherwise), preserving
  /// hardware-class diversity on class-structured grids.
  int split_above_machines = 0;
  int merge_below_machines = 0;
  int max_shards = 32;
  /// Resize hysteresis. A split or merge opens a cooldown window of
  /// `resize_cooldown` activations during which no further resize fires
  /// (0 = react every activation), and both triggers carry a threshold
  /// band: a split needs the mean to exceed `split_above_machines` by the
  /// band fraction, a merge to undercut `merge_below_machines` by it.
  /// Together they keep a churn-noisy pool that hovers at a bound from
  /// flapping split/merge across consecutive activations.
  int resize_cooldown = 2;
  double resize_band = 0.1;
  /// Cross-shard drain-tail work stealing. After the shard races commit,
  /// the service re-examines the exact per-machine drain times: while the
  /// critical machine (the activation's straggler) holds a job that some
  /// FOREIGN machine could finish strictly earlier, the job moves there —
  /// so once a neighbor's queue has drained, the dying queue spreads over
  /// the full machine pool instead of one partition. Scoring uses real
  /// ETC entries, so class affinity is respected (see plan_drain_steals);
  /// stolen jobs are handed off between the shard caches. Off by default:
  /// the strict partition keeps the PR 2/4 invariants bitwise.
  bool drain_steal = false;
  /// Admission control at service ingress (disabled by default — every
  /// job is accepted, PR 5 behavior bitwise). When enabled, jobs whose
  /// deadline is already infeasible are degraded to best effort, shed
  /// entirely under overload, or rejected when their user's cost budget
  /// is exhausted — see src/qos/admission.h and docs/qos.md. Rejected
  /// rows come back as Schedule::kRejected genes; the simulator records
  /// them as dropped (they still count as deadline misses).
  AdmissionConfig admission{};
  /// Optional Chrome-trace recording (null = off, the zero-cost default:
  /// every instrumentation site is one null check). The recorder must
  /// outlive the service; the service flushes it at each activation
  /// boundary. See src/obs/trace_recorder.h for the span schema.
  obs::TraceRecorder* trace = nullptr;
  /// When non-empty, the service appends one JSONL metrics-snapshot line
  /// per activation to this file (opened at construction, truncating).
  std::string metrics_jsonl_path;
  /// Per-shard portfolio knobs (see PortfolioConfig).
  PolicyKind policy = PolicyKind::kStaticRace;
  UcbConfig ucb{};
  FitnessWeights weights{};
  StopCondition member_stop{};
  bool warm_start = true;
  int elite_capacity = 8;
  std::uint64_t seed = 1;
};

/// One shard's slice of one service activation.
struct ShardActivationRecord {
  std::uint64_t activation = 0;
  int shard = 0;
  int jobs = 0;          // jobs raced by this shard (after rebalancing)
  int migrated_in = 0;   // jobs received from hotter shards
  int migrated_out = 0;  // jobs shed to lighter shards
  double backlog = 0.0;  // ready-time sum + est. routed work, pre-race
  double budget_ms = 0.0;
  double race_ms = 0.0;  // wall time of this shard's portfolio race
};

/// One whole service activation: how many shards raced and how long the
/// activation took end to end. Under concurrent activation `wall_ms`
/// tracks the budget slice (races overlap); sequentially it tracks the
/// sum of the races — the contrast bench/sharded_service reports. Either
/// way it includes the serial tail of the activation (result fold and,
/// when enabled, the drain-steal pass), so a slow steal pass cannot hide
/// from the latency books.
struct ServiceActivationRecord {
  std::uint64_t activation = 0;
  int shards_raced = 0;
  double wall_ms = 0.0;
  bool concurrent = false;
  int jobs_stolen = 0;    // drain-tail steal MOVES applied after the races
  int jobs_rejected = 0;  // rows shed at ingress by admission control
  int jobs_rerouted = 0;  // rows rescued by the stranded-row guard
};

/// One dynamic shard-scaling step (split or merge) and what moved.
struct ShardResizeEvent {
  std::uint64_t activation = 0;
  bool split = false;      // true = split, false = merge
  int from_shard = 0;      // split: the parent; merge: the emptied shard
  int to_shard = 0;        // split: the child; merge: the absorber
  int machines_moved = 0;
  int alive_machines = 0;  // grid pool size that triggered the step
};

/// Per-shard aggregate over all activations so far.
struct ShardStats {
  int shard = 0;
  int activations = 0;  // activations in which the shard raced
  int jobs_scheduled = 0;
  int migrated_in = 0;
  int migrated_out = 0;
  int stolen_in = 0;   // steal moves landing here (a re-stolen job counts
                       // once per move, like a re-migrated one)
  int stolen_out = 0;  // steal moves this shard's stragglers lost
  double total_race_ms = 0.0;
  double max_race_ms = 0.0;
  /// Distribution of this shard's per-activation race wall times — the
  /// mean (total/activations) hides budget-overrun tails, so p99 race
  /// latency reads from here.
  LatencyHistogram race_ms_hist;
};

class GridSchedulingService final : public BatchScheduler {
 public:
  explicit GridSchedulingService(ServiceConfig config);

  [[nodiscard]] std::string_view name() const noexcept override;

  [[nodiscard]] Schedule schedule_batch(const EtcMatrix& etc) override;
  [[nodiscard]] Schedule schedule_batch(const EtcMatrix& etc,
                                        const BatchContext& context) override;

  /// Current shard-slot count (grows on splits; merged slots persist,
  /// empty, until a split recycles them).
  [[nodiscard]] int num_shards() const noexcept {
    return static_cast<int>(shards_.size());
  }

  /// The shard currently owning a grid machine. Machines the service
  /// never saw default to the static partition (id modulo the initial
  /// shard count) — identical to the full map when scaling is disabled.
  [[nodiscard]] int shard_of_machine(int grid_machine) const noexcept;

  /// Shard whose machine executes the job in the most recent activation —
  /// the routed shard after rebalancing, or the thief shard when a
  /// drain-tail steal moved the job; -1 if that batch did not contain it.
  /// Scoped to one batch so a long-lived service's memory stays flat.
  [[nodiscard]] int shard_of_job(int global_job) const noexcept;

  /// The portfolio serving one shard (its stats, activations and cache).
  [[nodiscard]] const PortfolioBatchScheduler& shard_scheduler(
      int shard) const {
    return *shards_.at(static_cast<std::size_t>(shard));
  }

  [[nodiscard]] const std::vector<ShardStats>& shard_stats() const noexcept {
    return stats_;
  }
  [[nodiscard]] const std::vector<ShardActivationRecord>& shard_activations()
      const noexcept {
    return records_;
  }
  [[nodiscard]] const std::vector<ServiceActivationRecord>&
  service_activations() const noexcept {
    return service_records_;
  }
  [[nodiscard]] const std::vector<ShardResizeEvent>& resize_events()
      const noexcept {
    return resizes_;
  }
  [[nodiscard]] std::string_view router_name() const noexcept {
    return router_->name();
  }
  /// Ingress admission books (all zeros while admission is disabled).
  [[nodiscard]] const AdmissionStats& admission_stats() const noexcept {
    return admission_.stats();
  }
  /// The service's metric namespace: `service.*` counters and histograms
  /// plus every shard portfolio's `portfolio.shard<N>.*` — the registry
  /// behind the per-activation JSONL stream and the driver's
  /// migration/steal books.
  [[nodiscard]] const obs::MetricsRegistry& metrics() const noexcept {
    return metrics_;
  }
  [[nodiscard]] const ServiceConfig& config() const noexcept {
    return config_;
  }

 private:
  /// Adds one shard slot (portfolio + stats); returns its id.
  int add_shard_slot();
  /// Assigns never-seen machines to their static default shard.
  void adopt_new_machines(const std::vector<int>& machine_ids);
  /// Split/merge pass for this activation's alive machine set.
  void maybe_resize(const EtcMatrix& etc, const BatchContext& context);

  ServiceConfig config_;
  ThreadPool pool_;  // shared by every shard's portfolio race
  // Declared before shards_: each shard portfolio binds handles into the
  // registry, so it must be constructed first and destroyed last.
  obs::MetricsRegistry metrics_;
  std::vector<std::unique_ptr<PortfolioBatchScheduler>> shards_;
  std::unique_ptr<RoutingPolicy> router_;
  AdmissionController admission_;
  std::vector<ShardStats> stats_;
  std::vector<ShardActivationRecord> records_;
  std::vector<ServiceActivationRecord> service_records_;
  std::vector<ShardResizeEvent> resizes_;
  std::unordered_map<int, int> machine_shard_;  // grid machine -> shard
  std::unordered_map<int, int> shard_of_job_;
  std::string name_;
  std::uint64_t activation_ = 0;
  // Hysteresis: the activation of the last split/merge (cooldown anchor).
  std::uint64_t last_resize_activation_ = 0;
  bool resized_ever_ = false;
  // Cached registry handles (registered once at construction; a handle
  // add is an atomic bump, never a name lookup).
  obs::Counter* jobs_routed_counter_ = nullptr;
  obs::Counter* jobs_migrated_counter_ = nullptr;
  obs::Counter* jobs_stolen_counter_ = nullptr;
  obs::Counter* jobs_rejected_counter_ = nullptr;
  obs::Counter* jobs_rerouted_counter_ = nullptr;
  obs::Counter* splits_counter_ = nullptr;
  obs::Counter* merges_counter_ = nullptr;
  obs::Histogram* activation_wall_histogram_ = nullptr;
  std::ofstream metrics_jsonl_;
};

}  // namespace gridsched
