#include "service/grid_scheduling_service.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <unordered_set>
#include <utility>

#include "common/rng.h"
#include "common/stopwatch.h"

namespace gridsched {
namespace {

/// Portfolio knobs for one shard. The budget is a placeholder — the
/// service re-arms it every activation with the fair share of its total.
PortfolioConfig shard_portfolio_config(const ServiceConfig& service,
                                       int shard) {
  PortfolioConfig config;
  config.budget_ms =
      service.total_budget_ms / static_cast<double>(service.num_shards);
  config.policy = service.policy;
  config.ucb = service.ucb;
  config.weights = service.weights;
  config.member_stop = service.member_stop;
  config.warm_start = service.warm_start;
  config.elite_capacity = service.elite_capacity;
  std::uint64_t state = service.seed ^ (static_cast<std::uint64_t>(shard) + 1) *
                                           0x9e3779b97f4a7c15ULL;
  config.seed = splitmix64(state);
  return config;
}

/// Routing/rebalancing state of one available shard this activation. The
/// authoritative load view (ready sums, routed work) lives in the
/// parallel ShardSnapshot vector the router reads — keeping it in one
/// place only, so there is no stale second copy to misread.
struct ActiveShard {
  int shard = 0;
  std::vector<JobId> queue;  // batch rows, oldest first
  int migrated_in = 0;
  int migrated_out = 0;
};

/// One shard's race, built serially and filled concurrently: the
/// mutex-free slot the folding step reads after the task groups drain.
struct ShardRace {
  std::size_t active_index = 0;  // into the `active`/`snapshots` vectors
  EtcMatrix sub;
  BatchContext sub_context;
  Schedule plan;
  double race_ms = 0.0;
};

/// Alive-machine view of one shard while deciding splits and merges.
struct ShardLoad {
  int shard = 0;
  int alive = 0;
  double ready_sum = 0.0;
};

}  // namespace

GridSchedulingService::GridSchedulingService(ServiceConfig config)
    : config_(std::move(config)),
      pool_(config_.threads),
      router_(make_routing_policy(config_.routing)),
      admission_(config_.admission),
      name_(std::string("ShardedService(") +
            std::to_string(config_.num_shards) + "x " +
            std::string(routing_name(config_.routing)) + ")") {
  if (config_.num_shards < 1) {
    throw std::invalid_argument("Service: need at least one shard");
  }
  if (config_.total_budget_ms <= 0) {
    throw std::invalid_argument("Service: total_budget_ms must be > 0");
  }
  if (config_.imbalance_factor != 0 && config_.imbalance_factor < 1.0) {
    throw std::invalid_argument(
        "Service: imbalance_factor must be 0 (off) or >= 1");
  }
  if (config_.split_above_machines < 0 || config_.merge_below_machines < 0) {
    throw std::invalid_argument("Service: shard-scaling bounds must be >= 0");
  }
  if (config_.split_above_machines > 0 && config_.merge_below_machines > 0 &&
      config_.split_above_machines < 2 * config_.merge_below_machines) {
    // A split leaves the mean at least half its old value, so this gap
    // guarantees one activation cannot split and merge in a cycle.
    throw std::invalid_argument(
        "Service: split_above_machines must be at least twice "
        "merge_below_machines");
  }
  if (config_.resize_cooldown < 0) {
    throw std::invalid_argument("Service: resize_cooldown must be >= 0");
  }
  // Negated form rejects NaN too: a NaN band would turn both triggers
  // into NaN comparisons that never fire — silently disabling scaling. A
  // band of 1 would push the merge trigger to zero and below — the merge
  // bound could never fire again, silently.
  if (!(config_.resize_band >= 0.0 && config_.resize_band < 1.0)) {
    throw std::invalid_argument("Service: resize_band must be in [0, 1)");
  }
  if (config_.max_shards < config_.num_shards) {
    throw std::invalid_argument(
        "Service: max_shards must be >= the initial num_shards");
  }
  jobs_routed_counter_ = &metrics_.counter("service.jobs_routed");
  jobs_migrated_counter_ = &metrics_.counter("service.jobs_migrated");
  jobs_stolen_counter_ = &metrics_.counter("service.jobs_stolen");
  jobs_rejected_counter_ = &metrics_.counter("service.jobs_rejected");
  jobs_rerouted_counter_ = &metrics_.counter("service.jobs_rerouted");
  splits_counter_ = &metrics_.counter("service.splits");
  merges_counter_ = &metrics_.counter("service.merges");
  activation_wall_histogram_ =
      &metrics_.histogram("service.activation_wall_ms");
  if (!config_.metrics_jsonl_path.empty()) {
    metrics_jsonl_.open(config_.metrics_jsonl_path,
                        std::ios::out | std::ios::trunc);
    if (!metrics_jsonl_) {
      throw std::invalid_argument("Service: cannot open metrics_jsonl_path " +
                                  config_.metrics_jsonl_path);
    }
  }
  for (int shard = 0; shard < config_.num_shards; ++shard) {
    (void)add_shard_slot();
  }
}

int GridSchedulingService::add_shard_slot() {
  const int shard = static_cast<int>(shards_.size());
  PortfolioConfig portfolio = shard_portfolio_config(config_, shard);
  shards_.push_back(std::make_unique<PortfolioBatchScheduler>(
      portfolio, PortfolioBatchScheduler::default_members(portfolio), pool_));
  shards_.back()->bind_observability(
      &metrics_, config_.trace, "portfolio.shard" + std::to_string(shard));
  ShardStats stat;
  stat.shard = shard;
  stats_.push_back(std::move(stat));
  return shard;
}

std::string_view GridSchedulingService::name() const noexcept { return name_; }

int GridSchedulingService::shard_of_machine(int grid_machine) const noexcept {
  const auto it = machine_shard_.find(grid_machine);
  return it != machine_shard_.end() ? it->second
                                    : grid_machine % config_.num_shards;
}

int GridSchedulingService::shard_of_job(int global_job) const noexcept {
  const auto it = shard_of_job_.find(global_job);
  return it != shard_of_job_.end() ? it->second : -1;
}

void GridSchedulingService::adopt_new_machines(
    const std::vector<int>& machine_ids) {
  for (const int machine : machine_ids) {
    machine_shard_.try_emplace(machine, machine % config_.num_shards);
  }
}

void GridSchedulingService::maybe_resize(const EtcMatrix& etc,
                                         const BatchContext& context) {
  if (config_.split_above_machines <= 0 && config_.merge_below_machines <= 0) {
    return;
  }
  // Hysteresis, part 1: a resize opens a cooldown window — the partition
  // gets `resize_cooldown` activations to settle (caches re-warm, backlogs
  // redistribute) before the census may trigger again.
  if (config_.resize_cooldown > 0 && resized_ever_ &&
      activation_ - last_resize_activation_ <=
          static_cast<std::uint64_t>(config_.resize_cooldown)) {
    return;
  }
  const obs::TraceSpan resize_span(config_.trace, "resize_scan", "resize");
  // Hysteresis, part 2: band-widened triggers. A pool hovering exactly at
  // a bound (churn flipping one machine in and out) stays put; only a
  // clear excursion past the band resizes.
  const double split_trigger =
      static_cast<double>(config_.split_above_machines) *
      (1.0 + config_.resize_band);
  const double merge_trigger =
      static_cast<double>(config_.merge_below_machines) *
      (1.0 - config_.resize_band);
  const int alive_total = static_cast<int>(context.machine_ids.size());
  const std::unordered_set<int> alive_ids(context.machine_ids.begin(),
                                          context.machine_ids.end());
  // Grid machine id -> reported MIPS, built lazily: only a split that
  // actually fires consumes it, and the steady state (no resize) should
  // not pay a per-activation map build. Empty map = unreported; the
  // split cut then balances counts, which is the old parity behavior.
  std::unordered_map<int, double> mips_of;
  bool mips_mapped = false;
  const auto ensure_mips_map = [&] {
    if (mips_mapped) return;
    mips_mapped = true;
    for (std::size_t column = 0; column < context.machine_mips.size();
         ++column) {
      mips_of.emplace(context.machine_ids[column],
                      context.machine_mips[column]);
    }
  };
  // Bounded walk: each iteration either splits (capped by max_shards) or
  // merges (capped by the active count), and the ctor's bound gap forbids
  // a split/merge cycle.
  for (int step = 0; step < 2 * config_.max_shards; ++step) {
    // Alive-machine census of the current partition.
    std::vector<ShardLoad> loads(shards_.size());
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      loads[s].shard = static_cast<int>(s);
    }
    for (int column = 0; column < etc.num_machines(); ++column) {
      const auto shard = static_cast<std::size_t>(shard_of_machine(
          context.machine_ids[static_cast<std::size_t>(column)]));
      loads[shard].alive += 1;
      loads[shard].ready_sum += etc.ready_time(static_cast<MachineId>(column));
    }
    std::vector<ShardLoad> active;
    for (const ShardLoad& load : loads) {
      if (load.alive > 0) active.push_back(load);
    }
    const double mean = static_cast<double>(alive_total) /
                        static_cast<double>(active.size());

    if (config_.split_above_machines > 0 &&
        static_cast<int>(shards_.size()) < config_.max_shards &&
        mean > split_trigger) {
      // Split the hottest shard (largest alive backlog; ties toward more
      // machines, then the lower id) that has at least two machines.
      const ShardLoad* hot = nullptr;
      for (const ShardLoad& load : active) {
        if (load.alive < 2) continue;
        if (hot == nullptr || load.ready_sum > hot->ready_sum ||
            (load.ready_sum == hot->ready_sum && load.alive > hot->alive)) {
          hot = &load;
        }
      }
      if (hot == nullptr) return;
      // Recycle an empty slot if one exists (a previous merge left it),
      // else grow.
      int child = -1;
      std::vector<bool> owns_machine(shards_.size(), false);
      for (const auto& [machine, shard] : machine_shard_) {
        owns_machine[static_cast<std::size_t>(shard)] = true;
      }
      for (std::size_t s = 0; s < owns_machine.size(); ++s) {
        if (!owns_machine[s]) {
          child = static_cast<int>(s);
          break;
        }
      }
      if (child < 0) child = add_shard_slot();
      // Cut the parent's ALIVE machines into two load-balanced halves.
      // The greedy runs PER hardware class with class-local MIPS sums —
      // heaviest machine first, each to the class's lighter side — so
      // every class with two or more machines lands on BOTH sides
      // (diversity first: a globally-balanced cut could strand a whole
      // class on one shard, recreating the off-class regime class-aware
      // routing exists to avoid). Class-local ties (including each
      // class's first machine, and every machine when speeds are
      // unreported and all weights are 1) fall through to the globally
      // lighter side, then to the parent — which is what makes the
      // classless equal-weight cut reduce to the old id-parity
      // alternation, and hands singleton classes to whichever side is
      // lighter overall. The child is guaranteed real capacity: the
      // second machine of the first multi-machine class (or the second
      // singleton) always lands on it. Splitting the alive list
      // separately from the dead one matters for the same reason it
      // always did — a cut over the mixed list could hand the child only
      // corpses, leaving the alive mean unchanged and the loop splitting
      // the same parent again. Dead machines still move by id parity (no
      // reported speed) so repairs rejoin a coherent partition.
      ensure_mips_map();
      std::vector<int> owned_alive;
      std::vector<int> owned_dead;
      for (const auto& [machine, shard] : machine_shard_) {
        if (shard != hot->shard) continue;
        (alive_ids.count(machine) > 0 ? owned_alive : owned_dead)
            .push_back(machine);
      }
      const int num_classes = context.num_job_classes;
      auto weight_of = [&](int machine) {
        const auto it = mips_of.find(machine);
        return it != mips_of.end() ? it->second : 1.0;
      };
      auto class_of = [&](int machine) {
        return num_classes > 0 ? machine % num_classes : 0;
      };
      std::sort(owned_alive.begin(), owned_alive.end(),
                [&](int a, int b) {
                  const int class_a = class_of(a);
                  const int class_b = class_of(b);
                  if (class_a != class_b) return class_a < class_b;
                  const double weight_a = weight_of(a);
                  const double weight_b = weight_of(b);
                  if (weight_a != weight_b) return weight_a > weight_b;
                  return a < b;
                });
      int moved = 0;
      double parent_mips = 0.0;
      double child_mips = 0.0;
      double class_parent = 0.0;
      double class_child = 0.0;
      int current_class = -1;
      for (const int machine : owned_alive) {
        if (class_of(machine) != current_class) {
          current_class = class_of(machine);
          class_parent = 0.0;
          class_child = 0.0;
        }
        const double weight = weight_of(machine);
        const bool to_child =
            class_child != class_parent ? class_child < class_parent
                                        : child_mips < parent_mips;
        if (to_child) {
          machine_shard_[machine] = child;
          class_child += weight;
          child_mips += weight;
          ++moved;
        } else {
          class_parent += weight;
          parent_mips += weight;
        }
      }
      std::sort(owned_dead.begin(), owned_dead.end());
      for (std::size_t i = 1; i < owned_dead.size(); i += 2) {
        machine_shard_[owned_dead[i]] = child;
        ++moved;
      }
      // The child's portfolio warms up from a copy of the parent's cache;
      // the cache's remapping (MET fallback, pattern transfer) absorbs
      // the machine move at its next activation.
      shards_[static_cast<std::size_t>(child)]->seed_cache(
          shards_[static_cast<std::size_t>(hot->shard)]->cache());
      resizes_.push_back(ShardResizeEvent{
          .activation = context.activation,
          .split = true,
          .from_shard = hot->shard,
          .to_shard = child,
          .machines_moved = moved,
          .alive_machines = alive_total,
      });
      splits_counter_->add();
      if (config_.trace != nullptr) {
        config_.trace->instant("split", "resize",
                               {{"from", hot->shard},
                                {"to", child},
                                {"machines_moved", moved}});
      }
      resized_ever_ = true;
      last_resize_activation_ = activation_;
      continue;
    }

    if (config_.merge_below_machines > 0 && active.size() > 1 &&
        mean < merge_trigger) {
      // Merge the two lightest shards (smallest alive backlog; ties
      // toward fewer machines, then the lower id). The lower-id one
      // absorbs, so long-lived shard identities stay stable.
      std::sort(active.begin(), active.end(),
                [](const ShardLoad& a, const ShardLoad& b) {
                  if (a.ready_sum != b.ready_sum)
                    return a.ready_sum < b.ready_sum;
                  if (a.alive != b.alive) return a.alive < b.alive;
                  return a.shard < b.shard;
                });
      const int first = active[0].shard;
      const int second = active[1].shard;
      const int absorber = std::min(first, second);
      const int emptied = std::max(first, second);
      int moved = 0;
      for (auto& [machine, shard] : machine_shard_) {
        if (shard == emptied) {
          shard = absorber;
          ++moved;
        }
      }
      resizes_.push_back(ShardResizeEvent{
          .activation = context.activation,
          .split = false,
          .from_shard = emptied,
          .to_shard = absorber,
          .machines_moved = moved,
          .alive_machines = alive_total,
      });
      merges_counter_->add();
      if (config_.trace != nullptr) {
        config_.trace->instant("merge", "resize",
                               {{"from", emptied},
                                {"to", absorber},
                                {"machines_moved", moved}});
      }
      resized_ever_ = true;
      last_resize_activation_ = activation_;
      continue;
    }
    return;
  }
}

Schedule GridSchedulingService::schedule_batch(const EtcMatrix& etc) {
  return schedule_batch(etc, BatchContext::identity(etc, activation_));
}

Schedule GridSchedulingService::schedule_batch(const EtcMatrix& etc,
                                               const BatchContext& context) {
  if (context.job_ids.size() != static_cast<std::size_t>(etc.num_jobs()) ||
      context.machine_ids.size() !=
          static_cast<std::size_t>(etc.num_machines())) {
    throw std::invalid_argument(
        "Service: batch context does not match the ETC dimensions");
  }
  // machine_mips is indexed alongside machine_ids by the split cut; a
  // caller reporting speeds for a different machine set (say the full
  // grid while machine_ids holds only the alive subset) would silently
  // weight the wrong machines.
  if (!context.machine_mips.empty()) {
    if (context.machine_mips.size() !=
        static_cast<std::size_t>(etc.num_machines())) {
      throw std::invalid_argument(
          "Service: machine_mips must be empty or one entry per batch "
          "machine");
    }
    for (const double mips : context.machine_mips) {
      // Negated comparison rejects NaN too. A zero or garbage rating
      // would freeze the greedy split cut's running sums and hand the
      // child shard no alive capacity.
      if (!(mips > 0.0) || !std::isfinite(mips)) {
        throw std::invalid_argument(
            "Service: machine_mips entries must be finite and > 0");
      }
    }
  }
  // QoS vectors are indexed by batch row/column below (admission, the
  // deadline-aware router, sub-context slicing); a size mismatch would
  // silently read the wrong job's promise.
  if (!context.job_deadlines.empty() &&
      context.job_deadlines.size() !=
          static_cast<std::size_t>(etc.num_jobs())) {
    throw std::invalid_argument(
        "Service: job_deadlines must be empty or one entry per batch job");
  }
  if (!context.machine_cost_rates.empty() &&
      context.machine_cost_rates.size() !=
          static_cast<std::size_t>(etc.num_machines())) {
    throw std::invalid_argument(
        "Service: machine_cost_rates must be empty or one entry per batch "
        "machine");
  }
  if ((!context.job_users.empty() &&
       context.job_users.size() !=
           static_cast<std::size_t>(etc.num_jobs())) ||
      (!context.job_budgets.empty() &&
       context.job_budgets.size() !=
           static_cast<std::size_t>(etc.num_jobs()))) {
    throw std::invalid_argument(
        "Service: job_users/job_budgets must be empty or one entry per "
        "batch job");
  }
  // Class info must be coherent before anything indexes by class: the
  // simulator resolves classes modulo num_job_classes, but this is a
  // public BatchScheduler entry point, and an out-of-range class would
  // otherwise index the per-class books out of bounds. -1 (unclassed) is
  // legal and routes classless.
  if (context.num_job_classes > 0) {
    if (!context.job_classes.empty() &&
        context.job_classes.size() !=
            static_cast<std::size_t>(etc.num_jobs())) {
      throw std::invalid_argument(
          "Service: job_classes must be empty or one entry per batch job");
    }
    for (const int job_class : context.job_classes) {
      if (job_class < -1 || job_class >= context.num_job_classes) {
        throw std::invalid_argument(
            "Service: job class out of range for num_job_classes");
      }
    }
  }
  ++activation_;
  // The job->shard map describes the current batch only; dropping older
  // entries keeps a long-lived service's memory flat (finished jobs need
  // no routing record, and a re-queued job re-enters routing anyway).
  shard_of_job_.clear();
  if (etc.num_jobs() == 0) return Schedule(0);

  // Explicit begin/end (not TraceSpan): the activation span must close
  // BEFORE the end-of-activation flush below, and a scoped span would
  // still be open there.
  obs::TraceRecorder* const trace = config_.trace;
  if (trace != nullptr) {
    trace->begin("activation", "service",
                 {{"activation",
                   static_cast<std::int64_t>(context.activation)},
                  {"jobs", etc.num_jobs()}});
  }

  adopt_new_machines(context.machine_ids);
  maybe_resize(etc, context);

  const int num_classes = context.num_job_classes;
  auto job_class_of = [&](JobId row) {
    return static_cast<std::size_t>(row) < context.job_classes.size()
               ? context.job_classes[static_cast<std::size_t>(row)]
               : -1;
  };

  // --- Partition the batch's machines into their shards. ---
  std::vector<ShardSnapshot> snapshots;  // authoritative shard load view
  std::vector<ActiveShard> active;       // only shards with alive machines
  std::vector<int> active_index(shards_.size(), -1);
  for (int column = 0; column < etc.num_machines(); ++column) {
    const int machine =
        context.machine_ids[static_cast<std::size_t>(column)];
    const int shard = shard_of_machine(machine);
    if (active_index[static_cast<std::size_t>(shard)] < 0) {
      active_index[static_cast<std::size_t>(shard)] =
          static_cast<int>(active.size());
      ActiveShard entry;
      entry.shard = shard;
      active.push_back(std::move(entry));
      ShardSnapshot snapshot;
      snapshot.shard = shard;
      if (num_classes > 0) {
        snapshot.class_machines.assign(static_cast<std::size_t>(num_classes),
                                       0);
        snapshot.class_routed_work.assign(
            static_cast<std::size_t>(num_classes), 0.0);
        snapshot.class_speedup = context.class_speedup;
      }
      snapshots.push_back(std::move(snapshot));
    }
    ShardSnapshot& snapshot = snapshots[static_cast<std::size_t>(
        active_index[static_cast<std::size_t>(shard)])];
    snapshot.columns.push_back(column);
    snapshot.ready_sum += etc.ready_time(static_cast<MachineId>(column));
    if (num_classes > 0) {
      snapshot.class_machines[static_cast<std::size_t>(machine %
                                                       num_classes)] += 1;
    }
  }
  // The simulator only activates on alive machines, so `active` cannot be
  // empty here; a defensive check keeps misuse loud.
  if (active.empty()) {
    throw std::invalid_argument("Service: batch has no machines");
  }

  // --- Admission triage at ingress, before any routing. Rejected rows
  // never enter a shard queue (their gene becomes kRejected at the fold);
  // degraded rows keep running but with the deadline stripped, so they
  // stop competing for the urgent machines downstream. ---
  constexpr double kInf = std::numeric_limits<double>::infinity();
  auto deadline_of = [&](JobId row) {
    return static_cast<std::size_t>(row) < context.job_deadlines.size()
               ? context.job_deadlines[static_cast<std::size_t>(row)]
               : kInf;
  };
  std::vector<bool> row_rejected(static_cast<std::size_t>(etc.num_jobs()),
                                 false);
  std::vector<bool> row_degraded(static_cast<std::size_t>(etc.num_jobs()),
                                 false);
  int jobs_rejected = 0;
  int jobs_degraded = 0;
  if (config_.admission.enabled) {
    const obs::TraceSpan admission_span(trace, "admission", "admission");
    double ready_sum = 0.0;
    for (MachineId column = 0; column < etc.num_machines(); ++column) {
      ready_sum += etc.ready_time(column);
    }
    const double mean_backlog =
        ready_sum / static_cast<double>(etc.num_machines());
    for (JobId row = 0; row < etc.num_jobs(); ++row) {
      double best_etc = kInf;
      for (MachineId column = 0; column < etc.num_machines(); ++column) {
        best_etc = std::min(best_etc, etc(row, column));
      }
      // Cheapest money cost of the row anywhere — what the budget account
      // is charged on acceptance. Zero when costs are not modelled, so
      // budget rejection never fires on a cost-free grid.
      double cost_estimate = 0.0;
      if (!context.machine_cost_rates.empty()) {
        cost_estimate = kInf;
        for (MachineId column = 0; column < etc.num_machines(); ++column) {
          cost_estimate = std::min(
              cost_estimate,
              etc(row, column) *
                  context.machine_cost_rates[static_cast<std::size_t>(
                      column)]);
        }
      }
      const auto index = static_cast<std::size_t>(row);
      const int user =
          index < context.job_users.size() ? context.job_users[index] : -1;
      const double budget = index < context.job_budgets.size()
                                ? context.job_budgets[index]
                                : -1.0;
      switch (admission_.admit(deadline_of(row), best_etc, mean_backlog,
                               user, budget, cost_estimate)) {
        case AdmissionDecision::kReject:
          row_rejected[index] = true;
          ++jobs_rejected;
          break;
        case AdmissionDecision::kBestEffort:
          row_degraded[index] = true;
          ++jobs_degraded;
          break;
        case AdmissionDecision::kAccept:
          break;
      }
    }
    if (trace != nullptr) {
      trace->instant("admission.decisions", "admission",
                     {{"accepted",
                       etc.num_jobs() - jobs_rejected - jobs_degraded},
                      {"degraded", jobs_degraded},
                      {"rejected", jobs_rejected}});
    }
  }
  auto routed_deadline_of = [&](JobId row) {
    return row_degraded[static_cast<std::size_t>(row)] ? kInf
                                                       : deadline_of(row);
  };

  // --- Route every admitted job to a shard. ---
  for (JobId row = 0; row < etc.num_jobs(); ++row) {
    if (row_rejected[static_cast<std::size_t>(row)]) continue;
    const RoutedJob job(row, job_class_of(row), routed_deadline_of(row));
    const std::size_t pick = router_->route(job, etc, snapshots);
    active[pick].queue.push_back(row);
    const double work = shard_work_estimate(etc, job, snapshots[pick]);
    snapshots[pick].routed_work += work;
    snapshots[pick].routed_jobs += 1;
    if (job.job_class >= 0 && !snapshots[pick].class_routed_work.empty()) {
      snapshots[pick].class_routed_work[static_cast<std::size_t>(
          job.job_class)] += work;
    }
    shard_of_job_[context.job_ids[static_cast<std::size_t>(row)]] =
        active[pick].shard;
  }
  jobs_routed_counter_->add(etc.num_jobs() - jobs_rejected);

  // --- Rebalance: the hottest shard sheds its newest jobs to the
  // lightest while the backlogs differ by more than the imbalance factor.
  // Each migration must strictly shrink the hot/light spread, which
  // guarantees termination and forbids ping-pong. ---
  if (config_.imbalance_factor >= 1.0 && active.size() > 1) {
    const std::size_t max_migrations =
        static_cast<std::size_t>(etc.num_jobs());
    for (std::size_t moves = 0; moves < max_migrations; ++moves) {
      std::size_t hot = 0;
      std::size_t light = 0;
      for (std::size_t s = 1; s < snapshots.size(); ++s) {
        if (snapshots[s].backlog() > snapshots[hot].backlog()) hot = s;
        if (snapshots[s].backlog() < snapshots[light].backlog()) light = s;
      }
      if (active[hot].queue.empty() ||
          snapshots[hot].backlog() <=
              config_.imbalance_factor * snapshots[light].backlog() + 1e-12) {
        break;
      }
      const RoutedJob job(active[hot].queue.back(),
                          job_class_of(active[hot].queue.back()));
      const double out_work = shard_work_estimate(etc, job, snapshots[hot]);
      const double in_work = shard_work_estimate(etc, job, snapshots[light]);
      if (snapshots[light].backlog() + in_work >= snapshots[hot].backlog()) {
        break;  // moving the job would just swap who is hot
      }
      active[hot].queue.pop_back();
      active[light].queue.push_back(job.row);
      snapshots[hot].routed_work -= out_work;
      snapshots[hot].routed_jobs -= 1;
      snapshots[light].routed_work += in_work;
      snapshots[light].routed_jobs += 1;
      if (job.job_class >= 0) {
        const auto job_class = static_cast<std::size_t>(job.job_class);
        if (!snapshots[hot].class_routed_work.empty()) {
          snapshots[hot].class_routed_work[job_class] -= out_work;
        }
        if (!snapshots[light].class_routed_work.empty()) {
          snapshots[light].class_routed_work[job_class] += in_work;
        }
      }
      active[hot].migrated_out += 1;
      active[light].migrated_in += 1;
      jobs_migrated_counter_->add();
      shard_of_job_[context.job_ids[static_cast<std::size_t>(job.row)]] =
          active[light].shard;
    }
  }

  // --- Build every racing shard's sub-problem (serially — cheap), then
  // race them on the shared pool, one TaskGroup per shard, folding the
  // results from the per-shard slots afterwards. ---
  std::vector<ShardRace> races;
  for (std::size_t s = 0; s < active.size(); ++s) {
    ActiveShard& entry = active[s];
    if (entry.queue.empty()) {
      // A shard that shed its whole queue still owes its migration
      // counts (it may also have received jobs while it was light and
      // shed them again once it turned hot).
      ShardStats& stat = stats_[static_cast<std::size_t>(entry.shard)];
      stat.migrated_in += entry.migrated_in;
      stat.migrated_out += entry.migrated_out;
      continue;
    }
    const ShardSnapshot& shard = snapshots[s];
    ShardRace race;
    race.active_index = s;
    race.sub = EtcMatrix(static_cast<int>(entry.queue.size()),
                         static_cast<int>(shard.columns.size()));
    race.sub_context.activation = context.activation;
    race.sub_context.num_job_classes = context.num_job_classes;
    race.sub_context.class_speedup = context.class_speedup;
    for (std::size_t row = 0; row < entry.queue.size(); ++row) {
      const JobId job = entry.queue[row];
      race.sub_context.job_ids.push_back(
          context.job_ids[static_cast<std::size_t>(job)]);
      if (num_classes > 0) {
        race.sub_context.job_classes.push_back(job_class_of(job));
      }
      if (!context.job_deadlines.empty()) {
        // Degraded rows pass +infinity: the shard's Pareto race must not
        // chase a promise admission already declared broken.
        race.sub_context.job_deadlines.push_back(routed_deadline_of(job));
      }
      for (std::size_t column = 0; column < shard.columns.size(); ++column) {
        race.sub.set(static_cast<JobId>(row), static_cast<MachineId>(column),
                     etc(job, static_cast<MachineId>(shard.columns[column])));
      }
    }
    for (std::size_t column = 0; column < shard.columns.size(); ++column) {
      race.sub.set_ready_time(static_cast<MachineId>(column),
                              etc.ready_time(static_cast<MachineId>(
                                  shard.columns[column])));
      race.sub_context.machine_ids.push_back(context.machine_ids[
          static_cast<std::size_t>(shard.columns[column])]);
      if (!context.machine_cost_rates.empty()) {
        race.sub_context.machine_cost_rates.push_back(
            context.machine_cost_rates[static_cast<std::size_t>(
                shard.columns[column])]);
      }
    }
    races.push_back(std::move(race));
  }

  const double slice =
      config_.total_budget_ms / static_cast<double>(races.size());
  const bool concurrent = config_.concurrent_shards && races.size() > 1;
  Stopwatch activation_watch;
  if (concurrent) {
    // One group per shard: a group's wait drains exactly that shard's
    // race, so the activations overlap instead of queueing behind a
    // whole-pool barrier. Budgets are armed serially before any race
    // starts (the portfolios are only ever touched by their own task).
    std::vector<TaskGroup> groups;
    groups.reserve(races.size());
    for (ShardRace& race : races) {
      const int shard_id = active[race.active_index].shard;
      PortfolioBatchScheduler* scheduler =
          shards_[static_cast<std::size_t>(shard_id)].get();
      scheduler->set_budget_ms(slice);
      groups.push_back(pool_.make_group());
      ShardRace* slot = &race;
      // The span opens inside the task, on the pool thread running this
      // shard's race — so per-tid nesting holds and the member spans the
      // portfolio emits sit inside it.
      pool_.submit(groups.back(), [scheduler, slot, trace, shard_id] {
        const obs::TraceSpan span(
            trace, "shard_race", "shard",
            {{"shard", shard_id},
             {"jobs", slot->sub.num_jobs()}});
        Stopwatch watch;
        slot->plan = scheduler->schedule_batch(slot->sub, slot->sub_context);
        slot->race_ms = watch.elapsed_ms();
      });
    }
    // Wait on EVERY group even when one throws — the others still hold
    // references into `races` — then rethrow with the multi-failure
    // contract.
    std::vector<std::exception_ptr> failures;
    for (TaskGroup& group : groups) {
      try {
        group.wait();
      } catch (...) {
        failures.push_back(std::current_exception());
      }
    }
    if (failures.size() == 1) std::rethrow_exception(failures.front());
    if (failures.size() > 1) throw TaskGroupError(std::move(failures));
  } else {
    for (ShardRace& race : races) {
      const int shard_id = active[race.active_index].shard;
      PortfolioBatchScheduler& scheduler =
          *shards_[static_cast<std::size_t>(shard_id)];
      scheduler.set_budget_ms(slice);
      const obs::TraceSpan span(trace, "shard_race", "shard",
                                {{"shard", shard_id},
                                 {"jobs", race.sub.num_jobs()}});
      Stopwatch watch;
      race.plan = scheduler.schedule_batch(race.sub, race.sub_context);
      race.race_ms = watch.elapsed_ms();
    }
  }
  // --- Fold the slots back into the global plan and the books. ---
  Schedule plan(etc.num_jobs());
  for (const ShardRace& race : races) {
    const ActiveShard& entry = active[race.active_index];
    const ShardSnapshot& shard = snapshots[race.active_index];
    for (std::size_t row = 0; row < entry.queue.size(); ++row) {
      plan[entry.queue[row]] = static_cast<MachineId>(
          shard.columns[static_cast<std::size_t>(
              race.plan[static_cast<JobId>(row)])]);
    }
    ShardStats& stat = stats_[static_cast<std::size_t>(shard.shard)];
    ++stat.activations;
    stat.jobs_scheduled += static_cast<int>(entry.queue.size());
    stat.migrated_in += entry.migrated_in;
    stat.migrated_out += entry.migrated_out;
    stat.total_race_ms += race.race_ms;
    stat.max_race_ms = std::max(stat.max_race_ms, race.race_ms);
    stat.race_ms_hist.add(race.race_ms);
    records_.push_back(ShardActivationRecord{
        .activation = context.activation,
        .shard = shard.shard,
        .jobs = static_cast<int>(entry.queue.size()),
        .migrated_in = entry.migrated_in,
        .migrated_out = entry.migrated_out,
        .backlog = shard.backlog(),
        .budget_ms = slice,
        .race_ms = race.race_ms,
    });
  }
  // --- Seal the plan: rejected rows get their explicit kRejected gene,
  // and any OTHER still-unassigned row is rescued by a whole-batch MCT
  // pick. The partition invariants make a stranded row impossible today
  // (a shard only races when it has alive columns, and every race plans
  // its whole queue), but the cost of a strand is a thrown activation and
  // a lost job — so the guard re-routes instead of trusting the
  // invariant, and the books (`jobs_rerouted`) make any rescue visible. ---
  int jobs_rerouted = 0;
  for (JobId row = 0; row < etc.num_jobs(); ++row) {
    if (row_rejected[static_cast<std::size_t>(row)]) {
      plan[row] = Schedule::kRejected;
      continue;
    }
    if (plan[row] >= 0) continue;
    MachineId best_column = 0;
    double best_completion = kInf;
    for (MachineId column = 0; column < etc.num_machines(); ++column) {
      const double completion = etc.ready_time(column) + etc(row, column);
      if (completion < best_completion) {
        best_completion = completion;
        best_column = column;
      }
    }
    plan[row] = best_column;
    shard_of_job_[context.job_ids[static_cast<std::size_t>(row)]] =
        shard_of_machine(
            context.machine_ids[static_cast<std::size_t>(best_column)]);
    ++jobs_rerouted;
  }

  // --- Drain-tail work stealing: with the races committed, the exact
  // per-machine drain times are known; while a FOREIGN machine can finish
  // one of the critical machine's jobs strictly earlier, the job moves
  // there (plan_drain_steals). This is where a dying queue stops being a
  // one-partition problem: once neighbors drain, their idle machines
  // absorb the last shard's stragglers. Every move updates the job map,
  // the steal books, and hands the job's cache entry from the victim
  // portfolio to the thief's, so at most one cache knows each job.
  int jobs_stolen = 0;
  if (config_.drain_steal && active.size() > 1) {
    const obs::TraceSpan steal_span(trace, "drain_steal", "steal");
    std::vector<int> column_shard(
        static_cast<std::size_t>(etc.num_machines()));
    for (int column = 0; column < etc.num_machines(); ++column) {
      column_shard[static_cast<std::size_t>(column)] = shard_of_machine(
          context.machine_ids[static_cast<std::size_t>(column)]);
    }
    const std::vector<StealMove> steals =
        plan_drain_steals(etc, plan, column_shard, etc.num_jobs());
    for (const StealMove& steal : steals) {
      plan[steal.row] = static_cast<MachineId>(steal.to_column);
      const int job = context.job_ids[static_cast<std::size_t>(steal.row)];
      shard_of_job_[job] = steal.to_shard;
      stats_[static_cast<std::size_t>(steal.from_shard)].stolen_out += 1;
      stats_[static_cast<std::size_t>(steal.to_shard)].stolen_in += 1;
      // Hand the warm-start entry to the thief — but only when its cache
      // has elites to extend (adopt_job is a no-op on an empty cache, and
      // erasing first would drop the entry from EVERY cache). When the
      // thief cannot hold it, the victim keeps the entry: at most one
      // cache knows the job either way, and a stale hint beats none.
      PopulationCache& victim_cache =
          shards_[static_cast<std::size_t>(steal.from_shard)]->cache();
      PopulationCache& thief_cache =
          shards_[static_cast<std::size_t>(steal.to_shard)]->cache();
      if (!thief_cache.empty() && victim_cache.erase_job(job)) {
        thief_cache.adopt_job(
            job, context.machine_ids[static_cast<std::size_t>(
                     steal.to_column)]);
      }
    }
    jobs_stolen = static_cast<int>(steals.size());
  }

  // The activation wall stops HERE so the record owns every serial cost
  // of the activation — fold and steal pass included, not just the
  // overlapped races. A regression that made stealing slow must show up
  // in the bench's activation-wall columns, not hide behind them.
  const double wall_ms = activation_watch.elapsed_ms();
  service_records_.push_back(ServiceActivationRecord{
      .activation = context.activation,
      .shards_raced = static_cast<int>(races.size()),
      .wall_ms = wall_ms,
      .concurrent = concurrent,
      .jobs_stolen = jobs_stolen,
      .jobs_rejected = jobs_rejected,
      .jobs_rerouted = jobs_rerouted,
  });
  jobs_stolen_counter_->add(jobs_stolen);
  jobs_rejected_counter_->add(jobs_rejected);
  jobs_rerouted_counter_->add(jobs_rerouted);
  activation_wall_histogram_->add(wall_ms);
  if (trace != nullptr) {
    trace->end("activation");
    // Flush at the boundary: every racing thread's buffer drains while no
    // race is in flight, so the central log grows between activations,
    // not during them.
    trace->flush();
  }
  if (metrics_jsonl_.is_open()) {
    obs::JsonValue extra;
    extra.set("activation", obs::JsonValue(static_cast<double>(
                                context.activation)));
    extra.set("wall_ms", obs::JsonValue(wall_ms));
    extra.set("shards_raced",
              obs::JsonValue(static_cast<double>(races.size())));
    metrics_.write_jsonl_line(metrics_jsonl_, extra);
  }
  return plan;
}

}  // namespace gridsched
