#include "service/grid_scheduling_service.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "common/rng.h"
#include "common/stopwatch.h"

namespace gridsched {
namespace {

/// Portfolio knobs for one shard. The budget is a placeholder — the
/// service re-arms it every activation with the fair share of its total.
PortfolioConfig shard_portfolio_config(const ServiceConfig& service,
                                       int shard) {
  PortfolioConfig config;
  config.budget_ms =
      service.total_budget_ms / static_cast<double>(service.num_shards);
  config.policy = service.policy;
  config.ucb = service.ucb;
  config.weights = service.weights;
  config.member_stop = service.member_stop;
  config.warm_start = service.warm_start;
  config.elite_capacity = service.elite_capacity;
  std::uint64_t state = service.seed ^ (static_cast<std::uint64_t>(shard) + 1) *
                                           0x9e3779b97f4a7c15ULL;
  config.seed = splitmix64(state);
  return config;
}

/// Routing/rebalancing state of one available shard this activation. The
/// authoritative load view (ready sums, routed work) lives in the
/// parallel ShardSnapshot vector the router reads — keeping it in one
/// place only, so there is no stale second copy to misread.
struct ActiveShard {
  int shard = 0;
  std::vector<JobId> queue;  // batch rows, oldest first
  int migrated_in = 0;
  int migrated_out = 0;
};

}  // namespace

GridSchedulingService::GridSchedulingService(ServiceConfig config)
    : config_(std::move(config)),
      pool_(config_.threads),
      router_(make_routing_policy(config_.routing)),
      name_(std::string("ShardedService(") +
            std::to_string(config_.num_shards) + "x " +
            std::string(routing_name(config_.routing)) + ")") {
  if (config_.num_shards < 1) {
    throw std::invalid_argument("Service: need at least one shard");
  }
  if (config_.total_budget_ms <= 0) {
    throw std::invalid_argument("Service: total_budget_ms must be > 0");
  }
  if (config_.imbalance_factor != 0 && config_.imbalance_factor < 1.0) {
    throw std::invalid_argument(
        "Service: imbalance_factor must be 0 (off) or >= 1");
  }
  for (int shard = 0; shard < config_.num_shards; ++shard) {
    PortfolioConfig portfolio = shard_portfolio_config(config_, shard);
    shards_.push_back(std::make_unique<PortfolioBatchScheduler>(
        portfolio, PortfolioBatchScheduler::default_members(portfolio),
        pool_));
    stats_.push_back(ShardStats{.shard = shard});
  }
}

std::string_view GridSchedulingService::name() const noexcept { return name_; }

int GridSchedulingService::shard_of_job(int global_job) const noexcept {
  const auto it = shard_of_job_.find(global_job);
  return it != shard_of_job_.end() ? it->second : -1;
}

Schedule GridSchedulingService::schedule_batch(const EtcMatrix& etc) {
  return schedule_batch(etc, BatchContext::identity(etc, activation_));
}

Schedule GridSchedulingService::schedule_batch(const EtcMatrix& etc,
                                               const BatchContext& context) {
  if (context.job_ids.size() != static_cast<std::size_t>(etc.num_jobs()) ||
      context.machine_ids.size() !=
          static_cast<std::size_t>(etc.num_machines())) {
    throw std::invalid_argument(
        "Service: batch context does not match the ETC dimensions");
  }
  ++activation_;
  // The job->shard map describes the current batch only; dropping older
  // entries keeps a long-lived service's memory flat (finished jobs need
  // no routing record, and a re-queued job re-enters routing anyway).
  shard_of_job_.clear();
  if (etc.num_jobs() == 0) return Schedule(0);

  // --- Partition the batch's machines into their static shards. ---
  std::vector<ShardSnapshot> snapshots;  // authoritative shard load view
  std::vector<ActiveShard> active;       // only shards with alive machines
  std::vector<int> active_index(static_cast<std::size_t>(config_.num_shards),
                                -1);
  for (int column = 0; column < etc.num_machines(); ++column) {
    const int shard = shard_of_machine(context.machine_ids[
        static_cast<std::size_t>(column)]);
    if (active_index[static_cast<std::size_t>(shard)] < 0) {
      active_index[static_cast<std::size_t>(shard)] =
          static_cast<int>(active.size());
      ActiveShard entry;
      entry.shard = shard;
      active.push_back(std::move(entry));
      ShardSnapshot snapshot;
      snapshot.shard = shard;
      snapshots.push_back(std::move(snapshot));
    }
    ShardSnapshot& snapshot = snapshots[static_cast<std::size_t>(
        active_index[static_cast<std::size_t>(shard)])];
    snapshot.columns.push_back(column);
    snapshot.ready_sum += etc.ready_time(static_cast<MachineId>(column));
  }
  // The simulator only activates on alive machines, so `active` cannot be
  // empty here; a defensive check keeps misuse loud.
  if (active.empty()) {
    throw std::invalid_argument("Service: batch has no machines");
  }

  // --- Route every job to a shard. ---
  for (JobId row = 0; row < etc.num_jobs(); ++row) {
    const std::size_t pick = router_->route(row, etc, snapshots);
    active[pick].queue.push_back(row);
    snapshots[pick].routed_work +=
        shard_work_estimate(etc, row, snapshots[pick]);
    snapshots[pick].routed_jobs += 1;
    shard_of_job_[context.job_ids[static_cast<std::size_t>(row)]] =
        active[pick].shard;
  }

  // --- Rebalance: the hottest shard sheds its newest jobs to the
  // lightest while the backlogs differ by more than the imbalance factor.
  // Each migration must strictly shrink the hot/light spread, which
  // guarantees termination and forbids ping-pong. ---
  if (config_.imbalance_factor >= 1.0 && active.size() > 1) {
    const std::size_t max_migrations =
        static_cast<std::size_t>(etc.num_jobs());
    for (std::size_t moves = 0; moves < max_migrations; ++moves) {
      std::size_t hot = 0;
      std::size_t light = 0;
      for (std::size_t s = 1; s < snapshots.size(); ++s) {
        if (snapshots[s].backlog() > snapshots[hot].backlog()) hot = s;
        if (snapshots[s].backlog() < snapshots[light].backlog()) light = s;
      }
      if (active[hot].queue.empty() ||
          snapshots[hot].backlog() <=
              config_.imbalance_factor * snapshots[light].backlog() + 1e-12) {
        break;
      }
      const JobId job = active[hot].queue.back();
      const double out_work = shard_work_estimate(etc, job, snapshots[hot]);
      const double in_work = shard_work_estimate(etc, job, snapshots[light]);
      if (snapshots[light].backlog() + in_work >= snapshots[hot].backlog()) {
        break;  // moving the job would just swap who is hot
      }
      active[hot].queue.pop_back();
      active[light].queue.push_back(job);
      snapshots[hot].routed_work -= out_work;
      snapshots[hot].routed_jobs -= 1;
      snapshots[light].routed_work += in_work;
      snapshots[light].routed_jobs += 1;
      active[hot].migrated_out += 1;
      active[light].migrated_in += 1;
      shard_of_job_[context.job_ids[static_cast<std::size_t>(job)]] =
          active[light].shard;
    }
  }

  // --- Race the shards, one at a time on the shared pool, each with a
  // fair slice of the total budget. ---
  std::size_t shards_with_work = 0;
  for (const ActiveShard& entry : active) {
    if (!entry.queue.empty()) ++shards_with_work;
  }
  const double slice =
      config_.total_budget_ms / static_cast<double>(shards_with_work);

  Schedule plan(etc.num_jobs());
  for (std::size_t s = 0; s < active.size(); ++s) {
    ActiveShard& entry = active[s];
    if (entry.queue.empty()) {
      // A shard that shed its whole queue still owes its migration
      // counts (it may also have received jobs while it was light and
      // shed them again once it turned hot).
      ShardStats& stat = stats_[static_cast<std::size_t>(entry.shard)];
      stat.migrated_in += entry.migrated_in;
      stat.migrated_out += entry.migrated_out;
      continue;
    }
    const ShardSnapshot& shard = snapshots[s];

    EtcMatrix sub(static_cast<int>(entry.queue.size()),
                  static_cast<int>(shard.columns.size()));
    BatchContext sub_context;
    sub_context.activation = context.activation;
    for (std::size_t row = 0; row < entry.queue.size(); ++row) {
      const JobId job = entry.queue[row];
      sub_context.job_ids.push_back(
          context.job_ids[static_cast<std::size_t>(job)]);
      for (std::size_t column = 0; column < shard.columns.size(); ++column) {
        sub(static_cast<JobId>(row), static_cast<MachineId>(column)) =
            etc(job, static_cast<MachineId>(shard.columns[column]));
      }
    }
    for (std::size_t column = 0; column < shard.columns.size(); ++column) {
      sub.set_ready_time(static_cast<MachineId>(column),
                         etc.ready_time(static_cast<MachineId>(
                             shard.columns[column])));
      sub_context.machine_ids.push_back(context.machine_ids[
          static_cast<std::size_t>(shard.columns[column])]);
    }

    PortfolioBatchScheduler& scheduler =
        *shards_[static_cast<std::size_t>(shard.shard)];
    scheduler.set_budget_ms(slice);
    Stopwatch watch;
    const Schedule sub_plan = scheduler.schedule_batch(sub, sub_context);
    const double race_ms = watch.elapsed_ms();

    for (std::size_t row = 0; row < entry.queue.size(); ++row) {
      plan[entry.queue[row]] = static_cast<MachineId>(
          shard.columns[static_cast<std::size_t>(
              sub_plan[static_cast<JobId>(row)])]);
    }

    ShardStats& stat = stats_[static_cast<std::size_t>(shard.shard)];
    ++stat.activations;
    stat.jobs_scheduled += static_cast<int>(entry.queue.size());
    stat.migrated_in += entry.migrated_in;
    stat.migrated_out += entry.migrated_out;
    stat.total_race_ms += race_ms;
    stat.max_race_ms = std::max(stat.max_race_ms, race_ms);
    records_.push_back(ShardActivationRecord{
        .activation = context.activation,
        .shard = shard.shard,
        .jobs = static_cast<int>(entry.queue.size()),
        .migrated_in = entry.migrated_in,
        .migrated_out = entry.migrated_out,
        .backlog = shard.backlog(),
        .budget_ms = slice,
        .race_ms = race_ms,
    });
  }
  return plan;
}

}  // namespace gridsched
