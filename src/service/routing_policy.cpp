#include "service/routing_policy.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>

namespace gridsched {
namespace {

/// The job's best ETC over the shard's machines, uncorrected — the real
/// cost of running the job THERE (routing scores want this; backlog
/// bookings want the class-corrected shard_work_estimate instead).
double shard_min_etc(const EtcMatrix& etc, JobId job,
                     const ShardSnapshot& shard) {
  double best = std::numeric_limits<double>::infinity();
  for (int column : shard.columns) {
    best = std::min(best, etc(job, static_cast<MachineId>(column)));
  }
  return shard.columns.empty() ? 0.0 : best;
}

/// The least-backlog pick (ties toward the lower index) — the shared
/// definition behind LeastBacklogRouting AND class-backlog's classless
/// fallback, so the documented "degrades to least-backlog" guarantee
/// cannot silently diverge.
std::size_t least_backlog_index(std::span<const ShardSnapshot> shards) {
  std::size_t best = 0;
  for (std::size_t s = 1; s < shards.size(); ++s) {
    if (shards[s].backlog() < shards[best].backlog()) best = s;
  }
  return best;
}

}  // namespace

std::string_view routing_name(RoutingKind kind) noexcept {
  switch (kind) {
    case RoutingKind::kRoundRobin: return "round-robin";
    case RoutingKind::kLeastBacklog: return "least-backlog";
    case RoutingKind::kBestFit: return "best-fit";
    case RoutingKind::kShardMct: return "shard-mct";
    case RoutingKind::kClassBacklog: return "class-backlog";
    case RoutingKind::kDeadlineAware: return "deadline-aware";
  }
  return "?";
}

std::span<const RoutingKind> all_routing_kinds() noexcept {
  static constexpr RoutingKind kAll[] = {
      RoutingKind::kRoundRobin,
      RoutingKind::kLeastBacklog,
      RoutingKind::kBestFit,
      RoutingKind::kShardMct,
      RoutingKind::kClassBacklog,
      RoutingKind::kDeadlineAware,
  };
  return kAll;
}

RoutingKind routing_kind_from_name(std::string_view name) {
  for (const RoutingKind kind : all_routing_kinds()) {
    if (routing_name(kind) == name) return kind;
  }
  std::string message = "unknown routing policy '";
  message += name;
  message += "'; valid:";
  for (const RoutingKind kind : all_routing_kinds()) {
    message += ' ';
    message += routing_name(kind);
  }
  throw std::invalid_argument(message);
}

double shard_work_estimate(const EtcMatrix& etc, RoutedJob job,
                           const ShardSnapshot& shard) {
  double best = shard_min_etc(etc, job.row, shard);
  // Normalize class-starved bookings to matched-machine seconds (see the
  // header): only when classes are reported, the job is classed, and the
  // shard holds none of its machines.
  if (job.job_class >= 0 && !shard.class_machines.empty() &&
      !shard.has_class(job.job_class) && shard.class_speedup > 1.0) {
    best /= shard.class_speedup;
  }
  return best;
}

std::vector<StealMove> plan_drain_steals(const EtcMatrix& etc,
                                         const Schedule& plan,
                                         std::span<const int> column_shard,
                                         int max_moves) {
  std::vector<StealMove> moves;
  if (etc.num_jobs() == 0 || etc.num_machines() < 2 || max_moves <= 0) {
    return moves;
  }
  // Exact drain times and per-machine job lists of the committed plan.
  std::vector<double> completion(static_cast<std::size_t>(etc.num_machines()));
  for (MachineId machine = 0; machine < etc.num_machines(); ++machine) {
    completion[static_cast<std::size_t>(machine)] = etc.ready_time(machine);
  }
  std::vector<std::vector<JobId>> on_machine(
      static_cast<std::size_t>(etc.num_machines()));
  for (JobId job = 0; job < etc.num_jobs(); ++job) {
    if (plan[job] < 0) continue;  // rejected rows run on no machine
    const auto machine = static_cast<std::size_t>(plan[job]);
    completion[machine] += etc(job, plan[job]);
    on_machine[machine].push_back(job);
  }
  // The 1e-9 slack keeps float-identical completions from trading jobs
  // forever; every accepted move must shrink the tail by a real amount.
  constexpr double kGain = 1e-9;
  while (static_cast<int>(moves.size()) < max_moves) {
    std::size_t critical = 0;
    for (std::size_t m = 1; m < completion.size(); ++m) {
      if (completion[m] > completion[critical]) critical = m;
    }
    if (on_machine[critical].empty()) break;
    const int victim_shard = column_shard[critical];
    JobId best_job = -1;
    std::size_t best_target = 0;
    double best_finish = completion[critical] - kGain;
    for (const JobId job : on_machine[critical]) {
      for (std::size_t target = 0; target < completion.size(); ++target) {
        if (column_shard[target] == victim_shard) continue;
        const double finish =
            completion[target] + etc(job, static_cast<MachineId>(target));
        if (finish < best_finish) {
          best_finish = finish;
          best_job = job;
          best_target = target;
        }
      }
    }
    if (best_job < 0) break;  // the straggler machine cannot shed profitably
    completion[critical] -= etc(best_job, static_cast<MachineId>(critical));
    completion[best_target] +=
        etc(best_job, static_cast<MachineId>(best_target));
    auto& queue = on_machine[critical];
    queue.erase(std::find(queue.begin(), queue.end(), best_job));
    on_machine[best_target].push_back(best_job);
    moves.push_back(StealMove{
        .row = best_job,
        .from_column = static_cast<int>(critical),
        .to_column = static_cast<int>(best_target),
        .from_shard = victim_shard,
        .to_shard = column_shard[best_target],
    });
  }
  return moves;
}

std::size_t RoundRobinRouting::route(RoutedJob job, const EtcMatrix& etc,
                                     std::span<const ShardSnapshot> shards) {
  (void)job;
  (void)etc;
  const std::size_t pick = next_ % shards.size();
  ++next_;
  return pick;
}

std::size_t LeastBacklogRouting::route(RoutedJob job, const EtcMatrix& etc,
                                       std::span<const ShardSnapshot> shards) {
  (void)job;
  (void)etc;
  return least_backlog_index(shards);
}

std::size_t BestFitRouting::route(RoutedJob job, const EtcMatrix& etc,
                                  std::span<const ShardSnapshot> shards) {
  std::size_t best = 0;
  double best_etc = std::numeric_limits<double>::infinity();
  for (std::size_t s = 0; s < shards.size(); ++s) {
    for (int column : shards[s].columns) {
      const double cost = etc(job.row, static_cast<MachineId>(column));
      if (cost < best_etc) {
        best_etc = cost;
        best = s;
      }
    }
  }
  return best;
}

std::size_t ShardMctRouting::route(RoutedJob job, const EtcMatrix& etc,
                                   std::span<const ShardSnapshot> shards) {
  std::size_t best = 0;
  double best_completion = std::numeric_limits<double>::infinity();
  for (std::size_t s = 0; s < shards.size(); ++s) {
    // Estimated completion: the shard's mean per-machine backlog (how long
    // until *a* machine frees up) plus the job's best run time there.
    const double completion =
        shards[s].backlog() /
            static_cast<double>(shards[s].columns.size()) +
        shard_min_etc(etc, job.row, shards[s]);
    if (completion < best_completion) {
      best_completion = completion;
      best = s;
    }
  }
  return best;
}

std::size_t ClassBacklogRouting::route(RoutedJob job, const EtcMatrix& etc,
                                       std::span<const ShardSnapshot> shards) {
  // Classless job, or a grid without reported classes: per-class queues
  // do not exist, so fall back to plain least-backlog.
  if (job.job_class < 0 || shards.front().class_machines.empty()) {
    return least_backlog_index(shards);
  }
  const auto job_class = static_cast<std::size_t>(job.job_class);
  std::size_t best = 0;
  double best_score = std::numeric_limits<double>::infinity();
  for (std::size_t s = 0; s < shards.size(); ++s) {
    const ShardSnapshot& shard = shards[s];
    const double congestion =
        shard.backlog() / static_cast<double>(shard.columns.size());
    // My class's queue depth on its matched machines. A shard with no
    // matched machine carries the whole class queue on one virtual slot —
    // the class effectively has a single (slow) lane there.
    const double matched =
        shard.has_class(job.job_class)
            ? static_cast<double>(
                  shard.class_machines[job_class])
            : 1.0;
    const double class_queue =
        (job_class < shard.class_routed_work.size()
             ? shard.class_routed_work[job_class]
             : 0.0) /
        matched;
    const double score =
        congestion + class_queue + shard_min_etc(etc, job.row, shard);
    if (score < best_score) {
      best_score = score;
      best = s;
    }
  }
  return best;
}

std::size_t DeadlineAwareRouting::route(RoutedJob job, const EtcMatrix& etc,
                                        std::span<const ShardSnapshot> shards) {
  // Best-effort jobs spread by backlog; the completion-minimizing picks
  // below are reserved for the jobs whose promise depends on them.
  if (!std::isfinite(job.deadline)) return least_backlog_index(shards);
  const bool classed =
      job.job_class >= 0 && !shards.front().class_machines.empty();
  std::size_t best = 0;
  double best_score = std::numeric_limits<double>::infinity();
  for (std::size_t s = 0; s < shards.size(); ++s) {
    const ShardSnapshot& shard = shards[s];
    const double congestion =
        shard.backlog() / static_cast<double>(shard.columns.size());
    double class_queue = 0.0;
    if (classed) {
      const auto job_class = static_cast<std::size_t>(job.job_class);
      const double matched =
          shard.has_class(job.job_class)
              ? static_cast<double>(shard.class_machines[job_class])
              : 1.0;
      class_queue = (job_class < shard.class_routed_work.size()
                         ? shard.class_routed_work[job_class]
                         : 0.0) /
                    matched;
    }
    const double score =
        congestion + class_queue + shard_min_etc(etc, job.row, shard);
    if (score < best_score) {
      best_score = score;
      best = s;
    }
  }
  return best;
}

std::unique_ptr<RoutingPolicy> make_routing_policy(RoutingKind kind) {
  switch (kind) {
    case RoutingKind::kRoundRobin:
      return std::make_unique<RoundRobinRouting>();
    case RoutingKind::kLeastBacklog:
      return std::make_unique<LeastBacklogRouting>();
    case RoutingKind::kBestFit:
      return std::make_unique<BestFitRouting>();
    case RoutingKind::kShardMct:
      return std::make_unique<ShardMctRouting>();
    case RoutingKind::kClassBacklog:
      return std::make_unique<ClassBacklogRouting>();
    case RoutingKind::kDeadlineAware:
      return std::make_unique<DeadlineAwareRouting>();
  }
  throw std::invalid_argument("make_routing_policy: unknown routing kind");
}

}  // namespace gridsched
