#include "service/routing_policy.h"

#include <limits>
#include <stdexcept>

namespace gridsched {

std::string_view routing_name(RoutingKind kind) noexcept {
  switch (kind) {
    case RoutingKind::kRoundRobin: return "round-robin";
    case RoutingKind::kLeastBacklog: return "least-backlog";
    case RoutingKind::kBestFit: return "best-fit";
    case RoutingKind::kShardMct: return "shard-mct";
  }
  return "?";
}

std::span<const RoutingKind> all_routing_kinds() noexcept {
  static constexpr RoutingKind kAll[] = {
      RoutingKind::kRoundRobin,
      RoutingKind::kLeastBacklog,
      RoutingKind::kBestFit,
      RoutingKind::kShardMct,
  };
  return kAll;
}

double shard_work_estimate(const EtcMatrix& etc, JobId job,
                           const ShardSnapshot& shard) {
  double best = std::numeric_limits<double>::infinity();
  for (int column : shard.columns) {
    best = std::min(best, etc(job, static_cast<MachineId>(column)));
  }
  return shard.columns.empty() ? 0.0 : best;
}

std::size_t RoundRobinRouting::route(JobId job, const EtcMatrix& etc,
                                     std::span<const ShardSnapshot> shards) {
  (void)job;
  (void)etc;
  const std::size_t pick = next_ % shards.size();
  ++next_;
  return pick;
}

std::size_t LeastBacklogRouting::route(JobId job, const EtcMatrix& etc,
                                       std::span<const ShardSnapshot> shards) {
  (void)job;
  (void)etc;
  std::size_t best = 0;
  for (std::size_t s = 1; s < shards.size(); ++s) {
    if (shards[s].backlog() < shards[best].backlog()) best = s;
  }
  return best;
}

std::size_t BestFitRouting::route(JobId job, const EtcMatrix& etc,
                                  std::span<const ShardSnapshot> shards) {
  std::size_t best = 0;
  double best_etc = std::numeric_limits<double>::infinity();
  for (std::size_t s = 0; s < shards.size(); ++s) {
    for (int column : shards[s].columns) {
      const double cost = etc(job, static_cast<MachineId>(column));
      if (cost < best_etc) {
        best_etc = cost;
        best = s;
      }
    }
  }
  return best;
}

std::size_t ShardMctRouting::route(JobId job, const EtcMatrix& etc,
                                   std::span<const ShardSnapshot> shards) {
  std::size_t best = 0;
  double best_completion = std::numeric_limits<double>::infinity();
  for (std::size_t s = 0; s < shards.size(); ++s) {
    double min_etc = std::numeric_limits<double>::infinity();
    for (int column : shards[s].columns) {
      min_etc = std::min(min_etc, etc(job, static_cast<MachineId>(column)));
    }
    // Estimated completion: the shard's mean per-machine backlog (how long
    // until *a* machine frees up) plus the job's best run time there.
    const double completion =
        shards[s].backlog() /
            static_cast<double>(shards[s].columns.size()) +
        min_etc;
    if (completion < best_completion) {
      best_completion = completion;
      best = s;
    }
  }
  return best;
}

std::unique_ptr<RoutingPolicy> make_routing_policy(RoutingKind kind) {
  switch (kind) {
    case RoutingKind::kRoundRobin:
      return std::make_unique<RoundRobinRouting>();
    case RoutingKind::kLeastBacklog:
      return std::make_unique<LeastBacklogRouting>();
    case RoutingKind::kBestFit:
      return std::make_unique<BestFitRouting>();
    case RoutingKind::kShardMct:
      return std::make_unique<ShardMctRouting>();
  }
  throw std::invalid_argument("make_routing_policy: unknown routing kind");
}

}  // namespace gridsched
