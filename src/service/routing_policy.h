// Job routing across portfolio shards.
//
// The sharded scheduling service partitions the grid's machines into
// shards and must decide, per arriving job, which shard's queue it joins.
// A RoutingPolicy sees the batch ETC plus a snapshot of every *available*
// shard (one with at least one alive machine this activation) and picks
// one. Three built-ins:
//
//   RoundRobinRouting    cycle over the available shards — the oblivious
//                        baseline, perfect spread by count, blind to load
//                        and to ETC.
//   LeastBacklogRouting  shard with the smallest backlog: sum of its
//                        machines' ready times plus the estimated work
//                        already routed to it this activation (without the
//                        second term every job of a batch would pile onto
//                        the shard that was lightest when the batch
//                        opened).
//   BestFitRouting       shard containing the machine with the lowest ETC
//                        for this job — chases machine affinity on
//                        inconsistent grids, ignoring load.
//   ShardMctRouting      shard with the least estimated completion time
//                        for the job: per-machine backlog plus the job's
//                        best ETC in the shard — MCT lifted to shard
//                        granularity, combining load AND affinity. On
//                        inconsistent grids this is the policy that keeps
//                        a sharded service at single-queue quality (see
//                        bench/sharded_service).
//
// Ties break toward the lower shard id, so routing is deterministic given
// the snapshots. Policies may be stateful (round-robin's cursor).
#pragma once

#include <memory>
#include <span>
#include <string_view>
#include <vector>

#include "etc/etc_matrix.h"

namespace gridsched {

enum class RoutingKind {
  kRoundRobin,
  kLeastBacklog,
  kBestFit,
  kShardMct,
};

[[nodiscard]] std::string_view routing_name(RoutingKind kind) noexcept;

/// All routing kinds, in a stable display order.
[[nodiscard]] std::span<const RoutingKind> all_routing_kinds() noexcept;

/// What a routing policy knows about one shard at routing time. `columns`
/// are batch ETC column indices (not grid machine ids), so policies can
/// read ETC entries directly.
struct ShardSnapshot {
  int shard = 0;
  std::vector<int> columns;  // batch columns of this shard's alive machines
  double ready_sum = 0.0;    // sum of those machines' ready times
  double routed_work = 0.0;  // est. work routed to the shard this activation
  int routed_jobs = 0;

  [[nodiscard]] double backlog() const noexcept {
    return ready_sum + routed_work;
  }
};

class RoutingPolicy {
 public:
  virtual ~RoutingPolicy() = default;

  [[nodiscard]] virtual std::string_view name() const noexcept = 0;

  /// Picks the index *into `shards`* (not the shard id) for batch row
  /// `job`. `shards` is never empty and every snapshot has at least one
  /// column.
  [[nodiscard]] virtual std::size_t route(
      JobId job, const EtcMatrix& etc,
      std::span<const ShardSnapshot> shards) = 0;
};

class RoundRobinRouting final : public RoutingPolicy {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "round-robin";
  }
  [[nodiscard]] std::size_t route(JobId job, const EtcMatrix& etc,
                                  std::span<const ShardSnapshot> shards)
      override;

 private:
  std::size_t next_ = 0;
};

class LeastBacklogRouting final : public RoutingPolicy {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "least-backlog";
  }
  [[nodiscard]] std::size_t route(JobId job, const EtcMatrix& etc,
                                  std::span<const ShardSnapshot> shards)
      override;
};

class BestFitRouting final : public RoutingPolicy {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "best-fit";
  }
  [[nodiscard]] std::size_t route(JobId job, const EtcMatrix& etc,
                                  std::span<const ShardSnapshot> shards)
      override;
};

class ShardMctRouting final : public RoutingPolicy {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "shard-mct";
  }
  [[nodiscard]] std::size_t route(JobId job, const EtcMatrix& etc,
                                  std::span<const ShardSnapshot> shards)
      override;
};

[[nodiscard]] std::unique_ptr<RoutingPolicy> make_routing_policy(
    RoutingKind kind);

/// Work estimate the service books against a shard when it routes or
/// migrates the job: the job's best ETC over the shard's machines. On
/// heterogeneous grids the shard scheduler places a job at or near its
/// best machine, so the min tracks realized cost far better than the mean
/// (which counts machines the job will never run on, and systematically
/// overestimates class-matched jobs — skewing least-backlog toward
/// balancing fictional work).
[[nodiscard]] double shard_work_estimate(const EtcMatrix& etc, JobId job,
                                         const ShardSnapshot& shard);

}  // namespace gridsched
