// Job routing across portfolio shards.
//
// The sharded scheduling service partitions the grid's machines into
// shards and must decide, per arriving job, which shard's queue it joins.
// A RoutingPolicy sees the batch ETC plus a snapshot of every *available*
// shard (one with at least one alive machine this activation) and picks
// one. Five built-ins:
//
//   RoundRobinRouting    cycle over the available shards — the oblivious
//                        baseline, perfect spread by count, blind to load
//                        and to ETC.
//   LeastBacklogRouting  shard with the smallest backlog: sum of its
//                        machines' ready times plus the estimated work
//                        already routed to it this activation (without the
//                        second term every job of a batch would pile onto
//                        the shard that was lightest when the batch
//                        opened).
//   BestFitRouting       shard containing the machine with the lowest ETC
//                        for this job — chases machine affinity on
//                        inconsistent grids, ignoring load.
//   ShardMctRouting      shard with the least estimated completion time
//                        for the job: per-machine backlog plus the job's
//                        best ETC in the shard — MCT lifted to shard
//                        granularity, combining load AND affinity. On
//                        inconsistent grids this is the policy that keeps
//                        a sharded service at single-queue quality (see
//                        bench/sharded_service).
//   ClassBacklogRouting  least per-CLASS completion estimate: the shard's
//                        general congestion, plus how deep the job's own
//                        class queue already is on that shard's matched
//                        machines, plus the job's real cost there — the
//                        QoS "partition by user class" policy for
//                        class-structured grids. Classless jobs degrade
//                        to least-backlog.
//   DeadlineAwareRouting deadline jobs chase the shard with the least
//                        class-corrected completion estimate (their miss
//                        risk is a completion-time problem); best-effort
//                        jobs spread by least-backlog, leaving the
//                        affinity headroom to the urgent work. See
//                        docs/qos.md.
//
// Ties break toward the lower shard id, so routing is deterministic given
// the snapshots. Policies may be stateful (round-robin's cursor).
#pragma once

#include <limits>
#include <memory>
#include <span>
#include <string_view>
#include <vector>

#include "core/schedule.h"
#include "etc/etc_matrix.h"

namespace gridsched {

enum class RoutingKind {
  kRoundRobin,
  kLeastBacklog,
  kBestFit,
  kShardMct,
  kClassBacklog,
  kDeadlineAware,
};

[[nodiscard]] std::string_view routing_name(RoutingKind kind) noexcept;

/// All routing kinds, in a stable display order.
[[nodiscard]] std::span<const RoutingKind> all_routing_kinds() noexcept;

/// Parses a display name ("least-backlog", "class-backlog", ...) back to
/// its kind; throws std::invalid_argument on an unknown name, listing the
/// valid ones (CLI surfaces pick routing policies by name).
[[nodiscard]] RoutingKind routing_kind_from_name(std::string_view name);

/// The job a routing decision is about: its batch ETC row, its class on
/// class-structured grids (-1 = unclassed), and its relative deadline on
/// QoS runs (+infinity = best effort). Implicitly constructible from a
/// bare row so class-oblivious callers just pass the JobId.
struct RoutedJob {
  JobId row = 0;
  int job_class = -1;
  /// Deadline minus the activation time; +infinity = no deadline.
  double deadline = std::numeric_limits<double>::infinity();

  // NOLINTNEXTLINE(google-explicit-constructor): a bare row IS a routed
  // job on classless grids; the implicit form keeps old call sites valid.
  RoutedJob(JobId row) noexcept : row(row) {}
  RoutedJob(JobId row, int job_class) noexcept
      : row(row), job_class(job_class) {}
  RoutedJob(JobId row, int job_class, double deadline) noexcept
      : row(row), job_class(job_class), deadline(deadline) {}
};

/// What a routing policy knows about one shard at routing time. `columns`
/// are batch ETC column indices (not grid machine ids), so policies can
/// read ETC entries directly. The class fields are filled only on
/// class-structured grids (empty vectors otherwise).
struct ShardSnapshot {
  int shard = 0;
  std::vector<int> columns;  // batch columns of this shard's alive machines
  double ready_sum = 0.0;    // sum of those machines' ready times
  double routed_work = 0.0;  // est. work routed to the shard this activation
  int routed_jobs = 0;
  /// Alive machines per hardware class in this shard (index = class).
  std::vector<int> class_machines;
  /// Estimated work routed per job class this activation (index = class).
  std::vector<double> class_routed_work;
  /// Matched-pair speedup of the grid (1 = classless).
  double class_speedup = 1.0;

  [[nodiscard]] double backlog() const noexcept {
    return ready_sum + routed_work;
  }

  /// Whether the shard holds at least one alive machine of `job_class`.
  [[nodiscard]] bool has_class(int job_class) const noexcept {
    return job_class >= 0 &&
           job_class < static_cast<int>(class_machines.size()) &&
           class_machines[static_cast<std::size_t>(job_class)] > 0;
  }
};

class RoutingPolicy {
 public:
  virtual ~RoutingPolicy() = default;

  [[nodiscard]] virtual std::string_view name() const noexcept = 0;

  /// Picks the index *into `shards`* (not the shard id) for `job`.
  /// `shards` is never empty and every snapshot has at least one column.
  [[nodiscard]] virtual std::size_t route(
      RoutedJob job, const EtcMatrix& etc,
      std::span<const ShardSnapshot> shards) = 0;
};

class RoundRobinRouting final : public RoutingPolicy {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "round-robin";
  }
  [[nodiscard]] std::size_t route(RoutedJob job, const EtcMatrix& etc,
                                  std::span<const ShardSnapshot> shards)
      override;

 private:
  std::size_t next_ = 0;
};

class LeastBacklogRouting final : public RoutingPolicy {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "least-backlog";
  }
  [[nodiscard]] std::size_t route(RoutedJob job, const EtcMatrix& etc,
                                  std::span<const ShardSnapshot> shards)
      override;
};

class BestFitRouting final : public RoutingPolicy {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "best-fit";
  }
  [[nodiscard]] std::size_t route(RoutedJob job, const EtcMatrix& etc,
                                  std::span<const ShardSnapshot> shards)
      override;
};

class ShardMctRouting final : public RoutingPolicy {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "shard-mct";
  }
  [[nodiscard]] std::size_t route(RoutedJob job, const EtcMatrix& etc,
                                  std::span<const ShardSnapshot> shards)
      override;
};

/// Per-class backlog routing: score(s) = the shard's mean per-machine
/// backlog (general congestion) + the job's class queue depth on the
/// shard's matched machines (class_routed_work / matched machines; a
/// shard with NO matched machine carries the whole class queue on one
/// virtual slot, so class-starved shards repel the class) + the job's
/// real best ETC there. Minimizing that estimate gives every job class
/// its own view of the queues — the paper-adjacent QoS partition-by-class
/// story — while classless jobs fall back to plain least-backlog.
class ClassBacklogRouting final : public RoutingPolicy {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "class-backlog";
  }
  [[nodiscard]] std::size_t route(RoutedJob job, const EtcMatrix& etc,
                                  std::span<const ShardSnapshot> shards)
      override;
};

/// Deadline-pressure routing for QoS runs (src/qos/qos.h). A job with a
/// deadline is a completion-time problem: it takes the class-corrected
/// completion estimate (congestion + its class queue depth + its best ETC
/// there — class-backlog's score, degrading to shard-MCT's when classes
/// are not reported) and joins the shard minimizing it. Best-effort jobs
/// spread by plain least-backlog, which keeps overall balance AND leaves
/// the low-ETC matched machines available to the jobs whose promise
/// depends on them. Without deadlines in the batch it behaves exactly
/// like least-backlog.
class DeadlineAwareRouting final : public RoutingPolicy {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "deadline-aware";
  }
  [[nodiscard]] std::size_t route(RoutedJob job, const EtcMatrix& etc,
                                  std::span<const ShardSnapshot> shards)
      override;
};

[[nodiscard]] std::unique_ptr<RoutingPolicy> make_routing_policy(
    RoutingKind kind);

/// Work estimate the service books against a shard when it routes or
/// migrates the job: the job's best ETC over the shard's machines. On
/// heterogeneous grids the shard scheduler places a job at or near its
/// best machine, so the min tracks realized cost far better than the mean
/// (which counts machines the job will never run on).
///
/// Class correction: when the simulator reports classes and the shard
/// holds NO machine of the job's class, the raw minimum is the off-class
/// time — `class_speedup` times the matched-machine cost the same job
/// books on a class-complete shard. Booking it raw makes least-backlog
/// read a class-starved shard as several times busier per routed job than
/// a matched shard absorbing identical intrinsic work, over-diverting the
/// jobs that follow; dividing by the speedup keeps every booking in
/// matched-machine seconds so backlogs stay comparable across shards.
[[nodiscard]] double shard_work_estimate(const EtcMatrix& etc, RoutedJob job,
                                         const ShardSnapshot& shard);

/// One accepted drain-tail steal: the job at batch row `row`, committed to
/// batch column `from_column` by its shard's race, moves to `to_column` —
/// a machine of a DIFFERENT shard that drains earlier and can absorb the
/// job without becoming the new straggler.
struct StealMove {
  JobId row = 0;
  int from_column = 0;
  int to_column = 0;
  int from_shard = 0;
  int to_shard = 0;
};

/// Plans the cross-shard drain-tail steal pass over a committed plan.
///
/// Completion estimates are exact here: a machine's drain time is its
/// ready time plus the summed ETC of the jobs the plan put on it (the
/// execution order on one machine does not change when it drains). The
/// pass repeatedly takes the CRITICAL machine — the one defining the
/// activation's drain tail — and moves one of its jobs to the foreign
/// machine minimizing `completion + etc(job, there)`, accepting the move
/// only when that estimate lands strictly below the critical machine's
/// old drain time. That acceptance rule is the whole contract:
///
///   * the donor pair's max completion strictly shrinks, so the global
///     drain tail is monotonically non-increasing and the pass cannot
///     ping-pong a job back at the same activation;
///   * only cross-shard moves are considered — intra-shard placement is
///     the shard portfolio's job, and second-guessing it here would just
///     re-run local search serially;
///   * class affinity costs nothing extra: the scoring uses the job's
///     REAL ETC on the candidate machine, which already carries the
///     class-speedup structure (an off-class machine only wins when its
///     queue is so short that even the speedup-corrected cost — the same
///     correction `shard_work_estimate` applies to routing books — still
///     beats every matched alternative).
///
/// `column_shard[c]` is the owning shard of batch column `c`. At most
/// `max_moves` moves are planned (a cap, not a target; the pass stops as
/// soon as the critical machine cannot shed profitably). The plan itself
/// is NOT mutated — the service applies the returned moves so its books
/// (job map, steal stats, cache handoff) stay in one place.
[[nodiscard]] std::vector<StealMove> plan_drain_steals(
    const EtcMatrix& etc, const Schedule& plan,
    std::span<const int> column_shard, int max_moves);

}  // namespace gridsched
