// Thin driver gluing GridSimulator to the sharded service's reporting.
//
// The service is a BatchScheduler, so the simulator already pushes machine
// failures, re-queues and per-job records through it unchanged. What the
// simulator cannot produce on its own is the per-shard view: this driver
// runs one simulation and then folds the simulator's per-job records and
// per-machine busy times back onto the service's static machine partition,
// yielding one SimMetrics per shard next to the global one. Jobs are
// attributed to the shard of the machine that finally completed them
// (identical to the service's own routing map except for jobs still
// unfinished at the end of a no-drain run, which belong to no shard).
#pragma once

#include <string>
#include <vector>

#include "service/grid_scheduling_service.h"
#include "sim/grid_simulator.h"

namespace gridsched {

struct ShardedSimReport {
  SimMetrics global;
  /// Which workload source fed the run ("poisson", "bursty", "trace", ...)
  /// so multi-scenario benches can label rows from the report alone.
  std::string workload;
  /// Index = shard id. Per-shard fields: jobs_completed, jobs_requeued,
  /// activations, mean/max flowtime, mean_wait, makespan, utilization and
  /// scheduler_cpu_ms are shard-local; arrival/batch statistics stay 0
  /// (arrivals are a property of the grid, not of a shard).
  std::vector<SimMetrics> per_shard;
  /// Jobs that crossed shards during rebalancing, summed over activations.
  int migrations = 0;
};

/// Runs `sim` with `service` and splits the outcome per shard. The
/// service's books (activations, migrations, race times) are cumulative,
/// so pass a freshly constructed service for an exact per-run report.
[[nodiscard]] ShardedSimReport run_sharded(GridSimulator& sim,
                                           GridSchedulingService& service);

}  // namespace gridsched
