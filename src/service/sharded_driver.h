// Thin driver gluing GridSimulator to the sharded service's reporting.
//
// The service is a BatchScheduler, so the simulator already pushes machine
// failures, re-queues and per-job records through it unchanged. What the
// simulator cannot produce on its own is the per-shard and per-class view:
// this driver runs one simulation and then folds the simulator's per-job
// records and per-machine busy times back onto the service's machine
// partition (one SimMetrics per shard next to the global one) and onto the
// workload's job classes (one SimMetrics per class — the view class-aware
// routing is judged by). Jobs are attributed to the shard of the machine
// that finally completed them, under the machine partition as it stands at
// the END of the run (identical to the service's own routing map except
// for jobs still unfinished at the end of a no-drain run, which belong to
// no shard; with dynamic split/merge enabled, jobs completed before a
// resize are attributed to their machine's final shard).
#pragma once

#include <string>
#include <vector>

#include "service/grid_scheduling_service.h"
#include "sim/grid_simulator.h"

namespace gridsched {

/// Deadline SLO outcome of one job class (or of the whole run when
/// `job_class` is -1). Tardiness percentiles are over LATE COMPLETED jobs
/// only — a job that was rejected or never finished counts as missed but
/// contributes no tardiness sample (there is no finish time to measure).
struct ClassSlo {
  int job_class = -1;
  int deadline_jobs = 0;
  int missed = 0;  // late, rejected at ingress, or never finished
  double tardiness_p50 = 0.0;
  double tardiness_p99 = 0.0;
  /// True when the p99 rank fell among samples at or beyond the
  /// histogram's range end — tardiness_p99 is then a clamped floor, not
  /// an estimate, and tables should print ">1e5" instead of the value.
  bool tardiness_p99_overflow = false;

  [[nodiscard]] double miss_rate() const noexcept {
    return deadline_jobs > 0 ? static_cast<double>(missed) / deadline_jobs
                             : 0.0;
  }
};

struct ShardedSimReport {
  SimMetrics global;
  /// Which workload source fed the run ("poisson", "bursty", "trace", ...)
  /// so multi-scenario benches can label rows from the report alone.
  std::string workload;
  /// Index = shard id. Per-shard fields: jobs_completed, jobs_requeued,
  /// activations, mean/max flowtime, mean_wait, makespan, utilization and
  /// scheduler_cpu_ms are shard-local; arrival/batch statistics stay 0
  /// (arrivals are a property of the grid, not of a shard).
  std::vector<SimMetrics> per_shard;
  /// Index = job class; empty on classless runs. Per-class fields:
  /// jobs_arrived, jobs_completed, jobs_requeued, mean/max flowtime,
  /// mean_wait and makespan; grid-level fields (utilization, activations)
  /// stay 0. Macro-averaging mean_flowtime over classes is the QoS view
  /// bench/sharded_service's class-routing verdict uses.
  std::vector<SimMetrics> per_class;
  /// Run-wide deadline SLO (job_class = -1); zeros when the workload
  /// carries no deadlines.
  ClassSlo global_slo;
  /// Per-class deadline SLOs (index = job class); empty on classless runs
  /// or when no job carries a deadline. The view bench/qos_slo's
  /// miss-rate-vs-load verdict reads.
  std::vector<ClassSlo> per_class_slo;
  /// Jobs that crossed shards during rebalancing, summed over activations.
  int migrations = 0;
  /// Jobs that crossed shards via drain-tail work stealing (post-race
  /// moves onto a neighbor's earlier-draining machine), summed likewise.
  int steals = 0;
};

/// Runs `sim` with `service` and splits the outcome per shard and per job
/// class. The service's books (activations, migrations, race times) are
/// cumulative, so pass a freshly constructed service for an exact per-run
/// report.
///
/// Works in both arrival modes: with `SimConfig::stream` set the driver
/// installs its own job observer (clobbering any caller-installed one)
/// and folds each job as it finalizes, so the report is identical to a
/// materialized run of the same jobs bit for bit — except shard
/// attribution under dynamic split/merge, which uses the partition at
/// finalize time rather than end of run.
[[nodiscard]] ShardedSimReport run_sharded(GridSimulator& sim,
                                           GridSchedulingService& service);

}  // namespace gridsched
