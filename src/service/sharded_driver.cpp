#include "service/sharded_driver.h"

#include <algorithm>

namespace gridsched {

ShardedSimReport run_sharded(GridSimulator& sim,
                             GridSchedulingService& service) {
  ShardedSimReport report;
  report.global = sim.run(service);
  report.workload = std::string(sim.workload_name());
  // num_shards() reflects the end-of-run partition (splits may have grown
  // it); merged-away slots simply report zeros.
  report.per_shard.assign(static_cast<std::size_t>(service.num_shards()),
                          SimMetrics{});

  // --- Job outcomes, attributed to the completing machine's shard. ---
  std::vector<double> flow_sum(report.per_shard.size(), 0.0);
  std::vector<double> wait_sum(report.per_shard.size(), 0.0);
  for (const SimJobRecord& record : sim.job_records()) {
    if (record.finish < 0) continue;
    const auto shard = static_cast<std::size_t>(
        service.shard_of_machine(record.machine));
    SimMetrics& metrics = report.per_shard[shard];
    ++metrics.jobs_completed;
    metrics.jobs_requeued += record.attempts - 1;
    flow_sum[shard] += record.flowtime();
    wait_sum[shard] += record.wait();
    metrics.max_flowtime = std::max(metrics.max_flowtime, record.flowtime());
    metrics.makespan = std::max(metrics.makespan, record.finish);
  }

  // --- Job outcomes again, grouped by job class (class-structured runs
  // only: the simulator resolves every job's effective class into the
  // arrival trace, so the record index addresses it directly). ---
  const std::vector<TraceJob>& trace = sim.arrival_trace();
  const int num_classes = sim.config().num_job_classes;
  if (num_classes > 0) {
    report.per_class.assign(static_cast<std::size_t>(num_classes),
                            SimMetrics{});
    std::vector<double> class_flow(report.per_class.size(), 0.0);
    std::vector<double> class_wait(report.per_class.size(), 0.0);
    for (const SimJobRecord& record : sim.job_records()) {
      const int job_class =
          trace[static_cast<std::size_t>(record.id)].job_class;
      if (job_class < 0 || job_class >= num_classes) continue;
      SimMetrics& metrics =
          report.per_class[static_cast<std::size_t>(job_class)];
      ++metrics.jobs_arrived;
      if (record.finish < 0) continue;
      ++metrics.jobs_completed;
      metrics.jobs_requeued += record.attempts - 1;
      class_flow[static_cast<std::size_t>(job_class)] += record.flowtime();
      class_wait[static_cast<std::size_t>(job_class)] += record.wait();
      metrics.max_flowtime = std::max(metrics.max_flowtime,
                                      record.flowtime());
      metrics.makespan = std::max(metrics.makespan, record.finish);
    }
    for (std::size_t job_class = 0; job_class < report.per_class.size();
         ++job_class) {
      SimMetrics& metrics = report.per_class[job_class];
      if (metrics.jobs_completed > 0) {
        metrics.mean_flowtime = class_flow[job_class] /
                                metrics.jobs_completed;
        metrics.mean_wait = class_wait[job_class] / metrics.jobs_completed;
      }
    }
  }

  // --- Deadline SLOs, globally and per class. Misses follow the
  // simulator's accounting exactly (late, rejected, or unfinished);
  // tardiness percentiles come from fixed-bucket histograms over the late
  // completions. ---
  const bool qos = std::any_of(
      trace.begin(), trace.end(),
      [](const TraceJob& job) { return job.deadline >= 0; });
  if (qos) {
    LatencyHistogram global_tardiness;
    std::vector<LatencyHistogram> class_tardiness(
        num_classes > 0 ? static_cast<std::size_t>(num_classes) : 0);
    if (num_classes > 0) {
      report.per_class_slo.assign(static_cast<std::size_t>(num_classes),
                                  ClassSlo{});
      for (std::size_t job_class = 0;
           job_class < report.per_class_slo.size(); ++job_class) {
        report.per_class_slo[job_class].job_class =
            static_cast<int>(job_class);
      }
    }
    for (const SimJobRecord& record : sim.job_records()) {
      const TraceJob& job = trace[static_cast<std::size_t>(record.id)];
      if (job.deadline < 0) continue;
      const bool missed = record.rejected || record.finish < 0 ||
                          record.finish > job.deadline;
      const bool late = record.finish >= 0 && record.finish > job.deadline;
      const double tardiness = late ? record.finish - job.deadline : 0.0;
      report.global_slo.deadline_jobs += 1;
      if (missed) report.global_slo.missed += 1;
      if (late) global_tardiness.add(tardiness);
      if (job.job_class >= 0 && job.job_class < num_classes) {
        ClassSlo& slo =
            report.per_class_slo[static_cast<std::size_t>(job.job_class)];
        slo.deadline_jobs += 1;
        if (missed) slo.missed += 1;
        if (late) {
          class_tardiness[static_cast<std::size_t>(job.job_class)].add(
              tardiness);
        }
      }
    }
    report.global_slo.tardiness_p50 = global_tardiness.p50();
    report.global_slo.tardiness_p99 = global_tardiness.p99();
    report.global_slo.tardiness_p99_overflow =
        global_tardiness.percentile_overflows(99.0);
    for (std::size_t job_class = 0; job_class < report.per_class_slo.size();
         ++job_class) {
      report.per_class_slo[job_class].tardiness_p50 =
          class_tardiness[job_class].p50();
      report.per_class_slo[job_class].tardiness_p99 =
          class_tardiness[job_class].p99();
      report.per_class_slo[job_class].tardiness_p99_overflow =
          class_tardiness[job_class].percentile_overflows(99.0);
    }
  }

  // --- Shard-local machine utilization over the global elapsed time. ---
  const std::vector<double>& busy = sim.machine_busy();
  std::vector<double> busy_sum(report.per_shard.size(), 0.0);
  std::vector<int> machine_count(report.per_shard.size(), 0);
  for (std::size_t machine = 0; machine < busy.size(); ++machine) {
    const auto shard = static_cast<std::size_t>(
        service.shard_of_machine(static_cast<int>(machine)));
    busy_sum[shard] += busy[machine];
    machine_count[shard] += 1;
  }

  const double elapsed =
      std::max(report.global.makespan, sim.config().horizon);
  for (std::size_t shard = 0; shard < report.per_shard.size(); ++shard) {
    SimMetrics& metrics = report.per_shard[shard];
    if (metrics.jobs_completed > 0) {
      metrics.mean_flowtime = flow_sum[shard] / metrics.jobs_completed;
      metrics.mean_wait = wait_sum[shard] / metrics.jobs_completed;
    }
    if (machine_count[shard] > 0 && elapsed > 0) {
      metrics.utilization =
          busy_sum[shard] /
          (elapsed * static_cast<double>(machine_count[shard]));
    }
  }

  // --- Scheduler-side aggregates from the service's own books. ---
  for (const ShardStats& stat : service.shard_stats()) {
    SimMetrics& metrics = report.per_shard[static_cast<std::size_t>(
        stat.shard)];
    metrics.activations = stat.activations;
    metrics.scheduler_cpu_ms = stat.total_race_ms;
  }
  // Service-wide totals read from the metrics registry — the one place
  // the service counts cross-shard moves — instead of re-summing the
  // per-shard books here (the summation and the counter could drift).
  if (const obs::Counter* migrated =
          service.metrics().find_counter("service.jobs_migrated")) {
    report.migrations = static_cast<int>(migrated->value());
  }
  if (const obs::Counter* stolen =
          service.metrics().find_counter("service.jobs_stolen")) {
    report.steals = static_cast<int>(stolen->value());
  }
  return report;
}

}  // namespace gridsched
