#include "service/sharded_driver.h"

#include <algorithm>
#include <utility>

namespace gridsched {
namespace {

/// One pass over per-job outcomes, shared by both arrival modes:
/// materialized folds the end-of-run record vector, streaming folds each
/// job as the simulator finalizes it via the job observer. Both arrive
/// in id order, so every floating-point accumulation happens in the same
/// sequence — the per-shard/per-class views are bit-identical across
/// modes. Shard attribution calls shard_of_machine at fold time: the
/// end-of-run partition in materialized mode, the finalize-time
/// partition in streaming mode — identical unless dynamic split/merge
/// moved a machine between a job's completion and the end of the run.
struct JobFold {
  GridSchedulingService& service;
  int num_classes;

  std::vector<SimMetrics> shard_metrics;
  std::vector<double> shard_flow;
  std::vector<double> shard_wait;

  std::vector<SimMetrics> class_metrics;
  std::vector<double> class_flow;
  std::vector<double> class_wait;

  ClassSlo global_slo;
  LatencyHistogram global_tardiness;
  std::vector<ClassSlo> class_slo;
  std::vector<LatencyHistogram> class_tardiness;

  JobFold(GridSchedulingService& svc, int classes)
      : service(svc), num_classes(classes) {
    if (num_classes > 0) {
      const auto n = static_cast<std::size_t>(num_classes);
      class_metrics.assign(n, SimMetrics{});
      class_flow.assign(n, 0.0);
      class_wait.assign(n, 0.0);
      class_slo.assign(n, ClassSlo{});
      class_tardiness.resize(n);
      for (std::size_t job_class = 0; job_class < n; ++job_class) {
        class_slo[job_class].job_class = static_cast<int>(job_class);
      }
    }
  }

  void ensure_shards(std::size_t count) {
    if (shard_metrics.size() < count) {
      shard_metrics.resize(count);
      shard_flow.resize(count, 0.0);
      shard_wait.resize(count, 0.0);
    }
  }

  void add(const SimJobRecord& record, const TraceJob& job) {
    // --- Completing machine's shard. ---
    if (record.finish >= 0) {
      const auto shard = static_cast<std::size_t>(
          service.shard_of_machine(record.machine));
      ensure_shards(shard + 1);
      SimMetrics& metrics = shard_metrics[shard];
      ++metrics.jobs_completed;
      metrics.jobs_requeued += record.attempts - 1;
      shard_flow[shard] += record.flowtime();
      shard_wait[shard] += record.wait();
      metrics.max_flowtime = std::max(metrics.max_flowtime,
                                      record.flowtime());
      metrics.makespan = std::max(metrics.makespan, record.finish);
    }

    // --- Job class (class-structured runs only: the simulator resolves
    // every job's effective class before handing it over). ---
    if (job.job_class >= 0 && job.job_class < num_classes) {
      SimMetrics& metrics =
          class_metrics[static_cast<std::size_t>(job.job_class)];
      ++metrics.jobs_arrived;
      if (record.finish >= 0) {
        ++metrics.jobs_completed;
        metrics.jobs_requeued += record.attempts - 1;
        class_flow[static_cast<std::size_t>(job.job_class)] +=
            record.flowtime();
        class_wait[static_cast<std::size_t>(job.job_class)] += record.wait();
        metrics.max_flowtime = std::max(metrics.max_flowtime,
                                        record.flowtime());
        metrics.makespan = std::max(metrics.makespan, record.finish);
      }
    }

    // --- Deadline SLOs. Misses follow the simulator's accounting
    // exactly (late, rejected, or unfinished); tardiness percentiles
    // come from fixed-bucket histograms over the late completions. ---
    if (job.deadline >= 0) {
      const bool missed = record.rejected || record.finish < 0 ||
                          record.finish > job.deadline;
      const bool late = record.finish >= 0 && record.finish > job.deadline;
      const double tardiness = late ? record.finish - job.deadline : 0.0;
      global_slo.deadline_jobs += 1;
      if (missed) global_slo.missed += 1;
      if (late) global_tardiness.add(tardiness);
      if (job.job_class >= 0 && job.job_class < num_classes) {
        ClassSlo& slo = class_slo[static_cast<std::size_t>(job.job_class)];
        slo.deadline_jobs += 1;
        if (missed) slo.missed += 1;
        if (late) {
          class_tardiness[static_cast<std::size_t>(job.job_class)].add(
              tardiness);
        }
      }
    }
  }
};

}  // namespace

ShardedSimReport run_sharded(GridSimulator& sim,
                             GridSchedulingService& service) {
  ShardedSimReport report;
  const int num_classes = sim.config().num_job_classes;
  const bool streaming = sim.config().stream != nullptr;
  JobFold fold(service, num_classes);
  if (streaming) {
    // Streaming leaves job_records()/arrival_trace() empty by design, so
    // fold each job the moment the simulator finalizes it.
    sim.set_job_observer([&fold](const SimJobRecord& record,
                                 const TraceJob& job) {
      fold.add(record, job);
    });
  }
  report.global = sim.run(service);
  if (streaming) sim.set_job_observer({});
  report.workload = std::string(sim.workload_name());
  if (!streaming) {
    const std::vector<TraceJob>& trace = sim.arrival_trace();
    for (const SimJobRecord& record : sim.job_records()) {
      fold.add(record, trace[static_cast<std::size_t>(record.id)]);
    }
  }

  // num_shards() reflects the end-of-run partition (splits may have grown
  // it); merged-away slots simply report zeros.
  fold.ensure_shards(static_cast<std::size_t>(service.num_shards()));
  report.per_shard = std::move(fold.shard_metrics);

  if (num_classes > 0) {
    report.per_class = std::move(fold.class_metrics);
    for (std::size_t job_class = 0; job_class < report.per_class.size();
         ++job_class) {
      SimMetrics& metrics = report.per_class[job_class];
      if (metrics.jobs_completed > 0) {
        metrics.mean_flowtime = fold.class_flow[job_class] /
                                metrics.jobs_completed;
        metrics.mean_wait = fold.class_wait[job_class] /
                            metrics.jobs_completed;
      }
    }
  }

  if (fold.global_slo.deadline_jobs > 0) {
    report.global_slo = fold.global_slo;
    report.global_slo.tardiness_p50 = fold.global_tardiness.p50();
    report.global_slo.tardiness_p99 = fold.global_tardiness.p99();
    report.global_slo.tardiness_p99_overflow =
        fold.global_tardiness.percentile_overflows(99.0);
    if (num_classes > 0) {
      report.per_class_slo = std::move(fold.class_slo);
      for (std::size_t job_class = 0;
           job_class < report.per_class_slo.size(); ++job_class) {
        report.per_class_slo[job_class].tardiness_p50 =
            fold.class_tardiness[job_class].p50();
        report.per_class_slo[job_class].tardiness_p99 =
            fold.class_tardiness[job_class].p99();
        report.per_class_slo[job_class].tardiness_p99_overflow =
            fold.class_tardiness[job_class].percentile_overflows(99.0);
      }
    }
  }

  // --- Shard-local machine utilization over the global elapsed time
  // (machine_busy() is populated in both modes). ---
  const std::vector<double>& busy = sim.machine_busy();
  std::vector<double> busy_sum(report.per_shard.size(), 0.0);
  std::vector<int> machine_count(report.per_shard.size(), 0);
  for (std::size_t machine = 0; machine < busy.size(); ++machine) {
    const auto shard = static_cast<std::size_t>(
        service.shard_of_machine(static_cast<int>(machine)));
    busy_sum[shard] += busy[machine];
    machine_count[shard] += 1;
  }

  const double elapsed =
      std::max(report.global.makespan, sim.config().horizon);
  for (std::size_t shard = 0; shard < report.per_shard.size(); ++shard) {
    SimMetrics& metrics = report.per_shard[shard];
    if (metrics.jobs_completed > 0) {
      metrics.mean_flowtime = fold.shard_flow[shard] /
                              metrics.jobs_completed;
      metrics.mean_wait = fold.shard_wait[shard] / metrics.jobs_completed;
    }
    if (machine_count[shard] > 0 && elapsed > 0) {
      metrics.utilization =
          busy_sum[shard] /
          (elapsed * static_cast<double>(machine_count[shard]));
    }
  }

  // --- Scheduler-side aggregates from the service's own books. ---
  for (const ShardStats& stat : service.shard_stats()) {
    SimMetrics& metrics = report.per_shard[static_cast<std::size_t>(
        stat.shard)];
    metrics.activations = stat.activations;
    metrics.scheduler_cpu_ms = stat.total_race_ms;
  }
  // Service-wide totals read from the metrics registry — the one place
  // the service counts cross-shard moves — instead of re-summing the
  // per-shard books here (the summation and the counter could drift).
  if (const obs::Counter* migrated =
          service.metrics().find_counter("service.jobs_migrated")) {
    report.migrations = static_cast<int>(migrated->value());
  }
  if (const obs::Counter* stolen =
          service.metrics().find_counter("service.jobs_stolen")) {
    report.steals = static_cast<int>(stolen->value());
  }
  return report;
}

}  // namespace gridsched
