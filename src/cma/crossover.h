// Recombination operators on the direct encoding.
//
// The paper's tuned operator is One-Point crossover; Two-Point and Uniform
// are provided for ablation studies. Multi-parent recombination (the
// paper's "nb solutions to recombine = 3") folds the parents pairwise:
// ((p1 x p2) x p3) x ... ; see DESIGN.md section 4.
#pragma once

#include <span>
#include <string_view>

#include "common/rng.h"
#include "core/schedule.h"

namespace gridsched {

enum class CrossoverKind { kOnePoint, kTwoPoint, kUniform };

[[nodiscard]] std::string_view crossover_name(CrossoverKind k) noexcept;

/// Child of two parents (must be the same length, >= 2 genes for the point
/// operators to have a real cut).
[[nodiscard]] Schedule crossover(CrossoverKind kind, const Schedule& a,
                                 const Schedule& b, Rng& rng);

/// Left-fold of `parents` (non-empty) through `crossover`.
[[nodiscard]] Schedule recombine_fold(CrossoverKind kind,
                                      std::span<const Schedule* const> parents,
                                      Rng& rng);

}  // namespace gridsched
