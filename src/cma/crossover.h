// Recombination operators on the direct encoding.
//
// The paper's tuned operator is One-Point crossover; Two-Point and Uniform
// are provided for ablation studies. Multi-parent recombination (the
// paper's "nb solutions to recombine = 3") folds the parents pairwise:
// ((p1 x p2) x p3) x ... ; see DESIGN.md section 4.
#pragma once

#include <span>
#include <string_view>

#include "common/rng.h"
#include "core/schedule.h"

namespace gridsched {

enum class CrossoverKind { kOnePoint, kTwoPoint, kUniform };

[[nodiscard]] std::string_view crossover_name(CrossoverKind k) noexcept;

/// Child of two parents (must be the same length, >= 2 genes for the point
/// operators to have a real cut).
[[nodiscard]] Schedule crossover(CrossoverKind kind, const Schedule& a,
                                 const Schedule& b, Rng& rng);

/// In-place variant: overwrites `child` (reusing its capacity — the
/// offspring pipeline calls this once per recombination, so the fresh
/// allocation of the return-by-value form would churn the heap at steady
/// state). Draws the same RNG sequence as `crossover`, so results are
/// identical gene for gene. `child` may not alias `a` or `b`.
void crossover_into(Schedule& child, CrossoverKind kind, const Schedule& a,
                    const Schedule& b, Rng& rng);

/// Left-fold of `parents` (non-empty) through `crossover`.
[[nodiscard]] Schedule recombine_fold(CrossoverKind kind,
                                      std::span<const Schedule* const> parents,
                                      Rng& rng);

/// In-place left-fold: same RNG draws and result as `recombine_fold`,
/// reusing `child`'s capacity. `child` may not alias any parent.
void recombine_fold_into(Schedule& child, CrossoverKind kind,
                         std::span<const Schedule* const> parents, Rng& rng);

}  // namespace gridsched
