#include "cma/selection.h"

#include <algorithm>
#include <stdexcept>

namespace gridsched {

std::string_view selection_name(SelectionKind k) noexcept {
  switch (k) {
    case SelectionKind::kTournament: return "Tournament";
    case SelectionKind::kUniform: return "Uniform";
    case SelectionKind::kBest: return "Best";
  }
  return "?";
}

int select_one(const SelectionConfig& config, std::span<const int> candidates,
               std::span<const Individual> population, Rng& rng) {
  if (candidates.empty()) {
    throw std::invalid_argument("select_one: no candidates");
  }
  switch (config.kind) {
    case SelectionKind::kUniform:
      return rng.pick(candidates);
    case SelectionKind::kBest: {
      return *std::min_element(
          candidates.begin(), candidates.end(), [&](int a, int b) {
            return population[static_cast<std::size_t>(a)].fitness <
                   population[static_cast<std::size_t>(b)].fitness;
          });
    }
    case SelectionKind::kTournament: {
      int winner = rng.pick(candidates);
      for (int round = 1; round < config.tournament_size; ++round) {
        const int challenger = rng.pick(candidates);
        if (population[static_cast<std::size_t>(challenger)].fitness <
            population[static_cast<std::size_t>(winner)].fitness) {
          winner = challenger;
        }
      }
      return winner;
    }
  }
  throw std::invalid_argument("select_one: unknown selection kind");
}

std::vector<int> select_many(const SelectionConfig& config, int count,
                             std::span<const int> candidates,
                             std::span<const Individual> population, Rng& rng) {
  std::vector<int> chosen;
  chosen.reserve(static_cast<std::size_t>(count));
  const int distinct_possible =
      std::min<int>(count, static_cast<int>(candidates.size()));
  for (int i = 0; i < count; ++i) {
    int pick = select_one(config, candidates, population, rng);
    // A few retries keep parents distinct when the pool is large enough;
    // on tiny neighborhoods duplicates are allowed rather than looping.
    for (int retry = 0;
         retry < 8 && static_cast<int>(chosen.size()) < distinct_possible &&
         std::find(chosen.begin(), chosen.end(), pick) != chosen.end();
         ++retry) {
      pick = select_one(config, candidates, population, rng);
    }
    chosen.push_back(pick);
  }
  return chosen;
}

}  // namespace gridsched
