#include "cma/diversity.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace gridsched {

double mean_pairwise_distance(std::span<const Individual> population) {
  const std::size_t n = population.size();
  if (n < 2) return 0.0;
  const int genes = population[0].schedule.num_jobs();
  if (genes == 0) return 0.0;
  double total = 0.0;
  std::size_t pairs = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      total += population[i].schedule.hamming_distance(population[j].schedule);
      ++pairs;
    }
  }
  return total / (static_cast<double>(pairs) * genes);
}

double fitness_spread(std::span<const Individual> population) {
  if (population.empty()) return 0.0;
  double best = population[0].fitness;
  double worst = population[0].fitness;
  for (const auto& individual : population) {
    best = std::min(best, individual.fitness);
    worst = std::max(worst, individual.fitness);
  }
  return best > 0.0 ? (worst - best) / best : 0.0;
}

double mean_gene_entropy(std::span<const Individual> population,
                         int num_machines) {
  if (population.empty() || num_machines < 2) return 0.0;
  const int genes = population[0].schedule.num_jobs();
  if (genes == 0) return 0.0;
  const double norm = std::log(static_cast<double>(num_machines));
  std::vector<int> counts(static_cast<std::size_t>(num_machines));
  double entropy_sum = 0.0;
  for (JobId gene = 0; gene < genes; ++gene) {
    std::fill(counts.begin(), counts.end(), 0);
    for (const auto& individual : population) {
      const MachineId m = individual.schedule[gene];
      if (m >= 0 && m < num_machines) ++counts[static_cast<std::size_t>(m)];
    }
    double entropy = 0.0;
    for (int count : counts) {
      if (count == 0) continue;
      const double p = static_cast<double>(count) /
                       static_cast<double>(population.size());
      entropy -= p * std::log(p);
    }
    entropy_sum += entropy / norm;
  }
  return entropy_sum / genes;
}

}  // namespace gridsched
