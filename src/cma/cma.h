// The Cellular Memetic Algorithm engine — Algorithm 1 of the paper.
//
// Asynchronous cellular model: within one iteration, first
// `recombinations_per_iteration` cells are visited in the recombination
// sweep order (each recombines parents selected from its neighborhood,
// offspring is locally improved, and replaces the cell if better), then
// `mutations_per_iteration` cells are visited in the independent mutation
// sweep order (mutate, improve, replace if better). Because updates are
// asynchronous, a cell sees earlier replacements of the same iteration.
//
// Note on the paper's pseudo-code: its mutation loop reads
// "Replace P[rec_order.current]" / "rec_order.next()", which contradicts
// the surrounding text and Table 1 (mutation has its own NRS order). We use
// mut_order there; DESIGN.md section 4 records the decision.
#pragma once

#include <span>
#include <vector>

#include "cma/config.h"
#include "core/evolution.h"
#include "etc/etc_matrix.h"

namespace gridsched {

class CellularMemeticAlgorithm {
 public:
  explicit CellularMemeticAlgorithm(CmaConfig config);

  /// Runs the full algorithm on an instance. Deterministic in config.seed.
  [[nodiscard]] EvolutionResult run(const EtcMatrix& etc) const;

  /// Warm-started run: the mesh is built by `initialize_population` as
  /// usual, then cells starting at index 1 are overwritten with the given
  /// schedules (cell 0 keeps the LJFR-SJFR seed so the constructive anchor
  /// survives a bad cache). Surplus schedules are ignored; schedules must
  /// be complete for the instance. Deterministic in (config.seed, warm).
  [[nodiscard]] EvolutionResult run(const EtcMatrix& etc,
                                    std::span<const Schedule> warm) const;

  [[nodiscard]] const CmaConfig& config() const noexcept { return config_; }

  /// Builds the initial mesh population for an instance (exposed for tests
  /// and for warm-started dynamic scheduling).
  [[nodiscard]] std::vector<Individual> initialize_population(
      const EtcMatrix& etc, Rng& rng) const;

  /// Overwrites mesh cells [1, 1 + warm.size()) with the warm schedules
  /// (shared by the async and sync engines). Throws if a schedule does not
  /// fit the instance. When a tracker is given, each inserted elite is
  /// offered (and counted) immediately, so a cancellation during mesh
  /// initialization can never discard a warm-start best.
  void apply_warm_start(std::vector<Individual>& population,
                        std::span<const Schedule> warm, const EtcMatrix& etc,
                        EvolutionTracker* tracker = nullptr) const;

 private:
  CmaConfig config_;
};

}  // namespace gridsched
