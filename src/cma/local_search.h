// The memetic component: local search applied to every offspring.
//
// The paper studies three methods (Section 3.2, Fig. 2):
//   LM    Local Move             - random job to a random machine, kept only
//                                  if it improves.
//   SLM   Steepest Local Move    - random job, moved to the best machine if
//                                  that improves.
//   LMCTS Local Minimum Completion Time Swap - the best improving swap of
//                                  two jobs on different machines.
//
// The improvement metric defaults to the scalarized fitness (what the
// replacement rule uses); a makespan-only mode matches the paper's
// "reduction of the completion time" wording — both are kept and compared
// in bench/ablation_local_search (DESIGN.md section 4).
//
// LMCTS pair scan: the paper's "the pair of jobs that yields the best
// reduction in the completion time is applied" leaves the candidate set
// open. The literal all-pairs reading is O(n^2) per step — far beyond what
// the paper's 450 MHz testbed could have sustained at 37 offspring x 5 LS
// steps per iteration — so the default mirrors LM/SLM's "one random focus
// job per step" shape: a random job on the makespan machine is paired
// against every other job (O(n) previews). The heavier scans are kept as
// config options and compared in bench/ablation_local_search.
#pragma once

#include <string_view>

#include "common/cancellation.h"
#include "common/rng.h"
#include "core/evaluator.h"
#include "core/fitness.h"

namespace gridsched {

// VNS (kVns) is a post-paper addition: a variable-neighborhood ladder
// over the paper's own operators. Rung 0 is a steepest move, rung 1 the
// LMCTS swap scan, rung 2 a two-move ejection chain off the critical
// machine (move a critical job to its best target, then relocate one job
// from that target to a third machine — a compound edit neither single
// operator can express). The rung escalates on stagnation and resets to
// 0 on improvement; with `vns_max_rung = 0` the walk degenerates to SLM
// exactly (bitwise — tests pin this).
enum class LocalSearchKind {
  kNone,
  kLocalMove,
  kSteepestLocalMove,
  kLmcts,
  kVns,
};
enum class LsObjective { kFitness, kMakespan };
enum class LmctsScan {
  kCriticalRandomJob,  // random job on the makespan machine x all partners
  kCriticalAllJobs,    // every job on the makespan machine x all partners
  kFull,               // every pair of jobs on different machines
  kSampled,            // `sampled_pairs` random pairs
};

[[nodiscard]] std::string_view local_search_name(LocalSearchKind k) noexcept;

struct LocalSearchConfig {
  LocalSearchKind kind = LocalSearchKind::kLmcts;
  int iterations = 5;  // paper's tuned "nb local search iterations"
  LsObjective objective = LsObjective::kFitness;
  LmctsScan scan = LmctsScan::kCriticalRandomJob;
  int sampled_pairs = 512;  // budget for LmctsScan::kSampled
  /// Highest VNS rung (0 = moves only, 1 = +swaps, 2 = +ejection chains).
  int vns_max_rung = 2;
};

/// Statistics of one local_search() call (useful for tests and ablations).
struct LocalSearchStats {
  int iterations_run = 0;
  int improvements = 0;
  std::int64_t previews = 0;  // candidate evaluations performed
};

/// Improves the evaluator's schedule in place. Never worsens the schedule
/// under the configured objective. Stops early once an iteration finds no
/// improving neighbor (the walk reached a local optimum for its operator).
/// `cancel` is polled between neighborhood moves so a portfolio deadline
/// cuts a pass short mid-walk instead of overshooting by a whole pass
/// (matters once per-activation budgets drop below ~5 ms); the schedule is
/// left in a valid, never-worse state at whatever move the poll fired.
LocalSearchStats local_search(const LocalSearchConfig& config,
                              const FitnessWeights& weights,
                              ScheduleEvaluator& evaluator, Rng& rng,
                              const CancellationToken& cancel = {});

}  // namespace gridsched
