#include "cma/local_search.h"

#include <limits>

namespace gridsched {
namespace {

/// Scalar the local search minimizes for a previewed candidate.
double score_of(const PreviewResult& preview, LsObjective objective,
                const FitnessWeights& weights, int num_machines) {
  return objective == LsObjective::kFitness
             ? preview.fitness(weights, num_machines)
             : preview.objectives.makespan;
}

double current_score(const ScheduleEvaluator& evaluator, LsObjective objective,
                     const FitnessWeights& weights) {
  return objective == LsObjective::kFitness
             ? evaluator.fitness(weights)
             : evaluator.makespan();
}

/// One LM step: random (job, machine); keep if improving.
bool step_local_move(const LocalSearchConfig& config,
                     const FitnessWeights& weights,
                     ScheduleEvaluator& evaluator, Rng& rng,
                     LocalSearchStats& stats) {
  const int n = evaluator.num_jobs();
  const int m = evaluator.num_machines();
  if (m < 2) return false;
  const JobId job = rng.uniform_int(0, n - 1);
  MachineId to = rng.uniform_int(0, m - 2);
  if (to >= evaluator.schedule()[job]) ++to;

  const double before = current_score(evaluator, config.objective, weights);
  const auto preview = evaluator.preview_move(job, to);
  ++stats.previews;
  if (score_of(preview, config.objective, weights, m) < before) {
    evaluator.apply_move(job, to);
    return true;
  }
  return false;
}

/// One SLM step: random job, best machine.
bool step_steepest_move(const LocalSearchConfig& config,
                        const FitnessWeights& weights,
                        ScheduleEvaluator& evaluator, Rng& rng,
                        LocalSearchStats& stats) {
  const int n = evaluator.num_jobs();
  const int m = evaluator.num_machines();
  if (m < 2) return false;
  const JobId job = rng.uniform_int(0, n - 1);
  const MachineId from = evaluator.schedule()[job];

  double best_score = current_score(evaluator, config.objective, weights);
  MachineId best_machine = from;
  for (MachineId to = 0; to < m; ++to) {
    if (to == from) continue;
    const auto preview = evaluator.preview_move(job, to);
    ++stats.previews;
    const double score = score_of(preview, config.objective, weights, m);
    if (score < best_score) {
      best_score = score;
      best_machine = to;
    }
  }
  if (best_machine != from) {
    evaluator.apply_move(job, best_machine);
    return true;
  }
  return false;
}

/// One LMCTS step: best improving swap under the configured scan strategy.
bool step_lmcts(const LocalSearchConfig& config, const FitnessWeights& weights,
                ScheduleEvaluator& evaluator, Rng& rng,
                LocalSearchStats& stats) {
  const int n = evaluator.num_jobs();
  const int m = evaluator.num_machines();
  if (m < 2 || n < 2) return false;

  double best_score = current_score(evaluator, config.objective, weights);
  JobId best_a = -1;
  JobId best_b = -1;
  auto consider = [&](JobId a, JobId b) {
    const auto preview = evaluator.preview_swap(a, b);
    ++stats.previews;
    const double score = score_of(preview, config.objective, weights, m);
    if (score < best_score) {
      best_score = score;
      best_a = a;
      best_b = b;
    }
  };

  switch (config.scan) {
    case LmctsScan::kCriticalRandomJob: {
      const MachineId critical = evaluator.makespan_machine();
      const auto& critical_jobs = evaluator.machine_jobs(critical);
      if (critical_jobs.empty()) break;  // only ready time on the machine
      const JobId a =
          critical_jobs[static_cast<std::size_t>(
                            rng.bounded(critical_jobs.size()))]
              .second;
      for (JobId b = 0; b < n; ++b) {
        if (evaluator.schedule()[b] == critical) continue;
        consider(a, b);
      }
      break;
    }
    case LmctsScan::kCriticalAllJobs: {
      const MachineId critical = evaluator.makespan_machine();
      // By reference: consider() only previews, and previews never touch
      // the job lists, so there is nothing to keep iteration robust
      // against — and the copy was an allocation per LMCTS step.
      const auto& critical_jobs = evaluator.machine_jobs(critical);
      for (const auto& [etc_a, a] : critical_jobs) {
        for (JobId b = 0; b < n; ++b) {
          if (evaluator.schedule()[b] == critical) continue;
          consider(a, b);
        }
      }
      break;
    }
    case LmctsScan::kFull: {
      for (JobId a = 0; a < n; ++a) {
        for (JobId b = a + 1; b < n; ++b) {
          if (evaluator.schedule()[a] == evaluator.schedule()[b]) continue;
          consider(a, b);
        }
      }
      break;
    }
    case LmctsScan::kSampled: {
      for (int i = 0; i < config.sampled_pairs; ++i) {
        const JobId a = rng.uniform_int(0, n - 1);
        const JobId b = rng.uniform_int(0, n - 1);
        if (a == b || evaluator.schedule()[a] == evaluator.schedule()[b]) {
          continue;
        }
        consider(a, b);
      }
      break;
    }
  }

  if (best_a >= 0) {
    evaluator.apply_swap(best_a, best_b);
    return true;
  }
  return false;
}

/// One VNS rung-2 step: a two-move ejection chain off the critical
/// machine. Leg 1 moves a random critical job to its best target machine
/// (allowed to worsen); leg 2 relocates the best other job off that
/// target. Commits the better of {leg 1 alone, leg 1 + leg 2} when it
/// beats the starting score, otherwise reverts leg 1 and re-canonicalizes
/// the touched machines so a failed chain leaves no ULP residue in the
/// fast scalars.
bool step_exchange_chain(const LocalSearchConfig& config,
                         const FitnessWeights& weights,
                         ScheduleEvaluator& evaluator, Rng& rng,
                         LocalSearchStats& stats,
                         const CancellationToken& cancel) {
  const int n = evaluator.num_jobs();
  const int m = evaluator.num_machines();
  if (m < 2 || n < 1) return false;
  const MachineId critical = evaluator.makespan_machine();
  const auto& critical_jobs = evaluator.machine_jobs(critical);
  if (critical_jobs.empty()) return false;
  const JobId a =
      critical_jobs[static_cast<std::size_t>(rng.bounded(critical_jobs.size()))]
          .second;
  const double before = current_score(evaluator, config.objective, weights);

  // Leg 1: best target for `a`, improving or not.
  MachineId to1 = -1;
  double score1 = std::numeric_limits<double>::infinity();
  for (MachineId to = 0; to < m; ++to) {
    if (to == critical) continue;
    const auto preview = evaluator.preview_move(a, to);
    ++stats.previews;
    const double score = score_of(preview, config.objective, weights, m);
    if (score < score1) {
      score1 = score;
      to1 = to;
    }
  }
  if (to1 < 0) return false;
  evaluator.apply_move(a, to1);

  // Leg 2: best relocation of another job off the now-heavier target.
  // "Leg 1 alone" competes as the empty second move.
  const auto& target_jobs = evaluator.machine_jobs(to1);
  JobId best_b = -1;
  MachineId to2 = -1;
  double best_chain = score1;
  for (const auto& [etc_b, b] : target_jobs) {
    if (b == a) continue;
    if (cancel.cancelled()) break;
    for (MachineId to = 0; to < m; ++to) {
      if (to == to1) continue;
      const auto preview = evaluator.preview_move(b, to);
      ++stats.previews;
      const double score = score_of(preview, config.objective, weights, m);
      if (score < best_chain) {
        best_chain = score;
        best_b = b;
        to2 = to;
      }
    }
  }

  if (best_chain < before) {
    if (best_b >= 0) evaluator.apply_move(best_b, to2);
    return true;
  }
  evaluator.apply_move(a, critical);
  evaluator.canonicalize();
  return false;
}

}  // namespace

std::string_view local_search_name(LocalSearchKind k) noexcept {
  switch (k) {
    case LocalSearchKind::kNone: return "None";
    case LocalSearchKind::kLocalMove: return "LM";
    case LocalSearchKind::kSteepestLocalMove: return "SLM";
    case LocalSearchKind::kLmcts: return "LMCTS";
    case LocalSearchKind::kVns: return "VNS";
  }
  return "?";
}

LocalSearchStats local_search(const LocalSearchConfig& config,
                              const FitnessWeights& weights,
                              ScheduleEvaluator& evaluator, Rng& rng,
                              const CancellationToken& cancel) {
  LocalSearchStats stats;
  if (config.kind == LocalSearchKind::kNone) return stats;

  // VNS ladder state: the current neighborhood rung. Escalates one rung
  // per stagnant iteration, resets on improvement, wraps past the top
  // (the stochastic rungs draw fresh focus jobs, so a rescan at rung 0
  // is not a wasted iteration the way a deterministic rescan would be).
  int rung = 0;

  for (int it = 0; it < config.iterations; ++it) {
    if (cancel.cancelled()) break;
    bool improved = false;
    switch (config.kind) {
      case LocalSearchKind::kLocalMove:
        improved = step_local_move(config, weights, evaluator, rng, stats);
        break;
      case LocalSearchKind::kSteepestLocalMove:
        improved = step_steepest_move(config, weights, evaluator, rng, stats);
        break;
      case LocalSearchKind::kLmcts:
        improved = step_lmcts(config, weights, evaluator, rng, stats);
        break;
      case LocalSearchKind::kVns:
        if (rung == 0) {
          improved = step_steepest_move(config, weights, evaluator, rng, stats);
        } else if (rung == 1) {
          improved = step_lmcts(config, weights, evaluator, rng, stats);
        } else {
          improved = step_exchange_chain(config, weights, evaluator, rng,
                                         stats, cancel);
        }
        rung = improved || rung >= config.vns_max_rung ? 0 : rung + 1;
        break;
      case LocalSearchKind::kNone:
        break;
    }
    ++stats.iterations_run;
    if (improved) {
      ++stats.improvements;
    } else if (config.kind == LocalSearchKind::kLmcts &&
               (config.scan == LmctsScan::kCriticalAllJobs ||
                config.scan == LmctsScan::kFull)) {
      // A deterministic LMCTS scan that found no improving swap will find
      // none on an identical rescan either. The stochastic variants (and
      // LM/SLM, which draw a fresh random job per iteration) keep using
      // their budget.
      break;
    }
  }
  return stats;
}

}  // namespace gridsched
