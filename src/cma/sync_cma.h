// Synchronous cellular MA — the updating mode the paper mentions and sets
// aside ("we have considered the asynchronous updating since it is less
// computationally expensive"). Provided as an extension so the choice can
// be measured instead of assumed (bench/ablation_sync_async).
//
// In synchronous mode every cell produces its offspring from the *previous*
// generation's neighborhood, and all replacements commit at once (two
// population buffers). Cells are therefore independent within a generation,
// which yields the property the asynchronous engine cannot have: the
// generation can be evaluated in parallel, and because every cell draws
// from its own counter-derived RNG stream, the result is bitwise identical
// for any thread count (tests/test_sync_cma.cpp pins this).
#pragma once

#include <span>

#include "cma/config.h"
#include "common/thread_pool.h"
#include "core/evolution.h"
#include "etc/etc_matrix.h"

namespace gridsched {

class SynchronousCellularMa {
 public:
  /// `threads` = 0 runs sequentially; otherwise a pool of that many workers
  /// evaluates each generation. The result is identical either way.
  explicit SynchronousCellularMa(CmaConfig config, int threads = 0);

  [[nodiscard]] EvolutionResult run(const EtcMatrix& etc) const;

  /// Warm-started run; same semantics as the asynchronous engine (cell 0
  /// keeps the constructive seed, cells 1.. take the warm schedules).
  [[nodiscard]] EvolutionResult run(const EtcMatrix& etc,
                                    std::span<const Schedule> warm) const;

  [[nodiscard]] const CmaConfig& config() const noexcept { return config_; }

 private:
  CmaConfig config_;
  int threads_;
};

}  // namespace gridsched
