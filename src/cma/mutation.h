// Mutation operators.
//
// The paper's tuned operator is Rebalance: move a random job off an
// overloaded machine (one whose completion time equals the makespan,
// load_factor = 1) onto one of the 25% least-loaded machines. Move and Swap
// are classic alternatives kept for ablations and for the baseline GAs.
#pragma once

#include <string_view>
#include <vector>

#include "common/rng.h"
#include "core/evaluator.h"

namespace gridsched {

enum class MutationKind { kRebalance, kMove, kSwap };

[[nodiscard]] std::string_view mutation_name(MutationKind k) noexcept;

/// Reusable working buffers for the Rebalance operator. The mutation sweep
/// runs thousands of times per second; passing one of these (owned by the
/// caller, reused across calls) makes the operator allocation-free at
/// steady state. A default-constructed scratch is always valid.
struct MutationScratch {
  std::vector<MachineId> overloaded;
  std::vector<MachineId> by_load;
  std::vector<MachineId> targets;
};

/// Applies one mutation to the evaluator's schedule in place. All operators
/// keep the schedule complete. No-ops when the instance is too small for
/// the operator (e.g. a single machine). `scratch` (optional) is reused
/// working memory; results are identical with or without it.
void mutate(MutationKind kind, ScheduleEvaluator& evaluator, Rng& rng,
            MutationScratch* scratch = nullptr);

/// The Rebalance operator, exposed directly for tests: returns the (job,
/// from, to) triple it executed, or {-1, -1, -1} if no transfer was possible.
struct RebalanceMove {
  JobId job = -1;
  MachineId from = -1;
  MachineId to = -1;
};
RebalanceMove rebalance_mutation(ScheduleEvaluator& evaluator, Rng& rng,
                                 MutationScratch* scratch = nullptr);

}  // namespace gridsched
