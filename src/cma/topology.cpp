#include "cma/topology.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace gridsched {
namespace {

/// (row, col) offsets of each pattern, center first.
std::vector<std::pair<int, int>> pattern_offsets(NeighborhoodKind kind) {
  switch (kind) {
    case NeighborhoodKind::kPanmictic:
      return {};  // handled specially
    case NeighborhoodKind::kL5:
      return {{0, 0}, {-1, 0}, {1, 0}, {0, -1}, {0, 1}};
    case NeighborhoodKind::kL9:
      return {{0, 0}, {-1, 0}, {1, 0}, {0, -1}, {0, 1},
              {-2, 0}, {2, 0}, {0, -2}, {0, 2}};
    case NeighborhoodKind::kC9: {
      std::vector<std::pair<int, int>> offsets;
      for (int dr = -1; dr <= 1; ++dr) {
        for (int dc = -1; dc <= 1; ++dc) offsets.emplace_back(dr, dc);
      }
      return offsets;
    }
    case NeighborhoodKind::kC13: {
      auto offsets = pattern_offsets(NeighborhoodKind::kC9);
      offsets.emplace_back(-2, 0);
      offsets.emplace_back(2, 0);
      offsets.emplace_back(0, -2);
      offsets.emplace_back(0, 2);
      return offsets;
    }
  }
  throw std::invalid_argument("unknown neighborhood kind");
}

}  // namespace

std::string_view neighborhood_name(NeighborhoodKind k) noexcept {
  switch (k) {
    case NeighborhoodKind::kPanmictic: return "Panmictic";
    case NeighborhoodKind::kL5: return "L5";
    case NeighborhoodKind::kL9: return "L9";
    case NeighborhoodKind::kC9: return "C9";
    case NeighborhoodKind::kC13: return "C13";
  }
  return "?";
}

Topology::Topology(int height, int width, NeighborhoodKind kind)
    : height_(height), width_(width), kind_(kind) {
  if (height <= 0 || width <= 0) {
    throw std::invalid_argument("Topology: dimensions must be positive");
  }
  offsets_.reserve(static_cast<std::size_t>(size()) + 1);
  offsets_.push_back(0);

  if (kind == NeighborhoodKind::kPanmictic) {
    neighbors_.reserve(static_cast<std::size_t>(size()) *
                       static_cast<std::size_t>(size()));
    for (int cell = 0; cell < size(); ++cell) {
      // Center first for uniformity with the local patterns.
      neighbors_.push_back(cell);
      for (int other = 0; other < size(); ++other) {
        if (other != cell) neighbors_.push_back(other);
      }
      offsets_.push_back(neighbors_.size());
    }
    return;
  }

  const auto offsets = pattern_offsets(kind);
  std::vector<int> list;
  for (int row = 0; row < height_; ++row) {
    for (int col = 0; col < width_; ++col) {
      list.clear();
      for (const auto& [dr, dc] : offsets) {
        const int r = ((row + dr) % height_ + height_) % height_;
        const int c = ((col + dc) % width_ + width_) % width_;
        const int cell = cell_at(r, c);
        // Small meshes can wrap two offsets onto the same cell; keep the
        // first occurrence so lists stay duplicate-free.
        if (std::find(list.begin(), list.end(), cell) == list.end()) {
          list.push_back(cell);
        }
      }
      neighbors_.insert(neighbors_.end(), list.begin(), list.end());
      offsets_.push_back(neighbors_.size());
    }
  }
}

}  // namespace gridsched
