#include "cma/sync_cma.h"

#include <algorithm>
#include <memory>
#include <stdexcept>

#include "cma/cma.h"
#include "heuristics/constructive.h"

namespace gridsched {
namespace {

/// Independent, reproducible stream for (seed, generation, cell): the
/// parallel schedule can hand any cell to any worker without perturbing
/// the random sequence.
Rng cell_rng(std::uint64_t seed, std::int64_t generation, int cell) {
  std::uint64_t state = seed ^ (0x9e3779b97f4a7c15ULL *
                                (static_cast<std::uint64_t>(generation) + 1));
  state ^= splitmix64(state) + static_cast<std::uint64_t>(cell);
  return Rng(splitmix64(state));
}

}  // namespace

SynchronousCellularMa::SynchronousCellularMa(CmaConfig config, int threads)
    : config_(std::move(config)), threads_(threads) {
  if (config_.pop_height <= 0 || config_.pop_width <= 0) {
    throw std::invalid_argument("SyncCma: population must be non-empty");
  }
  if (config_.parents_per_recombination < 2) {
    throw std::invalid_argument("SyncCma: need at least 2 parents");
  }
  if (!config_.stop.any_enabled()) {
    throw std::invalid_argument("SyncCma: no stop condition enabled");
  }
  if (threads_ < 0) {
    throw std::invalid_argument("SyncCma: negative thread count");
  }
}

EvolutionResult SynchronousCellularMa::run(const EtcMatrix& etc) const {
  return run(etc, {});
}

EvolutionResult SynchronousCellularMa::run(
    const EtcMatrix& etc, std::span<const Schedule> warm) const {
  Rng init_rng(config_.seed);
  EvolutionTracker tracker(config_.stop, config_.record_progress);

  // Initial mesh: same recipe as the asynchronous engine.
  const CellularMemeticAlgorithm initializer(config_);
  std::vector<Individual> current =
      initializer.initialize_population(etc, init_rng);
  initializer.apply_warm_start(current, warm, etc, &tracker);
  {
    ScheduleEvaluator evaluator(etc);
    for (Individual& individual : current) {
      evaluator.reset_to(individual.schedule);
      Rng rng = init_rng.split();
      local_search(config_.local_search, config_.weights, evaluator, rng,
                   config_.stop.cancel);
      assign_from_evaluator(individual, evaluator, config_.weights);
      tracker.count_evaluations();
      tracker.offer(individual);
      // Same early-out as the asynchronous engine: keep cancellation
      // overshoot to one local-search pass, never less than one offer.
      if (tracker.should_stop()) break;
    }
  }

  const Topology topology(config_.pop_height, config_.pop_width,
                          config_.neighborhood);
  const int pop_size = topology.size();
  // Each cell mutates its offspring with the probability the asynchronous
  // engine implies: `mutations per iteration` spread over the mesh.
  const double mutation_probability =
      std::min(1.0, static_cast<double>(config_.mutations_per_iteration) /
                        static_cast<double>(pop_size));

  std::vector<Individual> next(current.size());
  std::unique_ptr<ThreadPool> pool;
  if (threads_ > 0) {
    pool = std::make_unique<ThreadPool>(static_cast<std::size_t>(threads_));
  }

  // One workspace per cell, persistent across generations: the evaluator
  // re-targets each generation's offspring via the gene-diff path instead
  // of a from-scratch rebuild, and every scratch buffer (offspring
  // schedule, parent list, mutation working sets, candidate) keeps its
  // capacity. Cells map 1:1 to workspaces, so the parallel schedule can
  // hand any cell to any worker without sharing mutable state.
  struct CellWorkspace {
    ScheduleEvaluator evaluator;
    Schedule offspring;
    Individual candidate;
    MutationScratch mutation_scratch;
    std::vector<const Schedule*> parent_schedules;
    explicit CellWorkspace(const EtcMatrix& matrix) : evaluator(matrix) {}
  };
  std::vector<CellWorkspace> workspaces;
  workspaces.reserve(current.size());
  for (std::size_t i = 0; i < current.size(); ++i) workspaces.emplace_back(etc);

  std::int64_t generation = 0;
  while (!tracker.should_stop()) {
    auto evolve_cell = [&](std::size_t cell_index) {
      // In-generation stop poll: under the portfolio's deadline token a
      // generation on a large batch can cost several budgets, so remaining
      // cells carry their resident forward instead of evolving. Counters
      // only advance between generations, so evaluation/iteration-bounded
      // runs see a constant answer here and stay bitwise reproducible.
      if (tracker.should_stop()) {
        next[cell_index] = current[cell_index];
        return;
      }
      const int cell = static_cast<int>(cell_index);
      Rng rng = cell_rng(config_.seed, generation, cell);
      CellWorkspace& ws = workspaces[cell_index];

      const auto neighborhood = topology.neighbors(cell);
      const std::vector<int> parents =
          select_many(config_.selection, config_.parents_per_recombination,
                      neighborhood, current, rng);
      ws.parent_schedules.clear();
      ws.parent_schedules.reserve(parents.size());
      for (int p : parents) {
        ws.parent_schedules.push_back(
            &current[static_cast<std::size_t>(p)].schedule);
      }
      recombine_fold_into(ws.offspring, config_.crossover, ws.parent_schedules,
                          rng);
      ws.evaluator.reset_to(ws.offspring);
      if (rng.chance(mutation_probability)) {
        mutate(config_.mutation, ws.evaluator, rng, &ws.mutation_scratch);
      }
      local_search(config_.local_search, config_.weights, ws.evaluator, rng,
                   config_.stop.cancel);
      assign_from_evaluator(ws.candidate, ws.evaluator, config_.weights);

      const Individual& resident = current[cell_index];
      next[cell_index] = (!config_.add_only_if_better ||
                          ws.candidate.fitness < resident.fitness)
                             ? ws.candidate
                             : resident;
    };

    if (pool) {
      pool->parallel_for(current.size(), evolve_cell);
    } else {
      for (std::size_t i = 0; i < current.size(); ++i) evolve_cell(i);
    }

    current.swap(next);
    tracker.count_evaluations(pop_size);
    for (const Individual& individual : current) tracker.offer(individual);
    ++generation;
    tracker.end_iteration();
    if (config_.observer) config_.observer(tracker.iterations(), current);
  }
  EvolutionResult result = tracker.finish();
  if (config_.keep_final_population) result.population = std::move(current);
  return result;
}

}  // namespace gridsched
