// Population diversity measurement.
//
// The paper's central argument for cellular populations is that the
// structured mesh "is able to better control the tradeoff between the
// exploitation and exploration of the solution space" and that cMAs
// "maintain a high diversity of the population in many generations".
// These helpers quantify that claim so bench/ablation_diversity can show
// the diversity trajectories of C9 vs a panmictic population.
#pragma once

#include <span>

#include "core/individual.h"

namespace gridsched {

/// Mean pairwise Hamming distance between schedules, normalized to [0, 1]
/// by the gene count. 0 = all identical, ~1 - 1/m for uniform random
/// populations on m machines. O(pop^2 * genes); fine for mesh-sized
/// populations.
[[nodiscard]] double mean_pairwise_distance(std::span<const Individual> population);

/// Relative spread of fitness across the population:
/// (worst - best) / best. 0 = fully converged fitness.
[[nodiscard]] double fitness_spread(std::span<const Individual> population);

/// Per-gene allele entropy averaged over genes, normalized to [0, 1] by
/// log(num_machines): 1 = every machine equally likely at every gene.
[[nodiscard]] double mean_gene_entropy(std::span<const Individual> population,
                                       int num_machines);

}  // namespace gridsched
