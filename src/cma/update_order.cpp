#include "cma/update_order.h"

#include <numeric>
#include <stdexcept>

namespace gridsched {

std::string_view sweep_name(SweepKind k) noexcept {
  switch (k) {
    case SweepKind::kFixedLineSweep: return "FLS";
    case SweepKind::kFixedRandomSweep: return "FRS";
    case SweepKind::kNewRandomSweep: return "NRS";
  }
  return "?";
}

SweepOrder::SweepOrder(SweepKind kind, int n, Rng& rng)
    : kind_(kind), order_(static_cast<std::size_t>(n)) {
  if (n <= 0) throw std::invalid_argument("SweepOrder: empty population");
  std::iota(order_.begin(), order_.end(), 0);
  if (kind_ != SweepKind::kFixedLineSweep) {
    rng.shuffle(std::span<int>{order_});
  }
}

void SweepOrder::next(Rng& rng) {
  ++pos_;
  if (pos_ == size()) {
    pos_ = 0;
    if (kind_ == SweepKind::kNewRandomSweep) {
      rng.shuffle(std::span<int>{order_});
    }
  }
}

}  // namespace gridsched
