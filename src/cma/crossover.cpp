#include "cma/crossover.h"

#include <stdexcept>

namespace gridsched {
namespace {

/// child = crossover(child-before-call, b): every operator only ever
/// copies genes FROM b INTO child, so folding in place is safe and the
/// whole pipeline needs a single offspring buffer.
void crossover_overlay(CrossoverKind kind, Schedule& child, const Schedule& b,
                       Rng& rng) {
  const int n = child.num_jobs();
  if (n != b.num_jobs()) {
    throw std::invalid_argument("crossover: parent size mismatch");
  }
  switch (kind) {
    case CrossoverKind::kOnePoint: {
      // cut in [1, n-1]: both parents always contribute.
      const int cut = n >= 2 ? rng.uniform_int(1, n - 1) : 0;
      for (JobId j = cut; j < n; ++j) child[j] = b[j];
      break;
    }
    case CrossoverKind::kTwoPoint: {
      if (n >= 3) {
        int lo = rng.uniform_int(1, n - 2);
        int hi = rng.uniform_int(lo + 1, n - 1);
        for (JobId j = lo; j < hi; ++j) child[j] = b[j];
      } else if (n == 2) {
        child[1] = b[1];
      }
      break;
    }
    case CrossoverKind::kUniform: {
      for (JobId j = 0; j < n; ++j) {
        if (rng.chance(0.5)) child[j] = b[j];
      }
      break;
    }
  }
}

}  // namespace

std::string_view crossover_name(CrossoverKind k) noexcept {
  switch (k) {
    case CrossoverKind::kOnePoint: return "OnePoint";
    case CrossoverKind::kTwoPoint: return "TwoPoint";
    case CrossoverKind::kUniform: return "Uniform";
  }
  return "?";
}

void crossover_into(Schedule& child, CrossoverKind kind, const Schedule& a,
                    const Schedule& b, Rng& rng) {
  child = a;
  crossover_overlay(kind, child, b, rng);
}

Schedule crossover(CrossoverKind kind, const Schedule& a, const Schedule& b,
                   Rng& rng) {
  Schedule child;
  crossover_into(child, kind, a, b, rng);
  return child;
}

void recombine_fold_into(Schedule& child, CrossoverKind kind,
                         std::span<const Schedule* const> parents, Rng& rng) {
  if (parents.empty()) {
    throw std::invalid_argument("recombine_fold: no parents");
  }
  child = *parents[0];
  for (std::size_t i = 1; i < parents.size(); ++i) {
    crossover_overlay(kind, child, *parents[i], rng);
  }
}

Schedule recombine_fold(CrossoverKind kind,
                        std::span<const Schedule* const> parents, Rng& rng) {
  Schedule child;
  recombine_fold_into(child, kind, parents, rng);
  return child;
}

}  // namespace gridsched
