#include "cma/cma.h"

#include <stdexcept>
#include <vector>

#include "heuristics/constructive.h"

namespace gridsched {

CellularMemeticAlgorithm::CellularMemeticAlgorithm(CmaConfig config)
    : config_(std::move(config)) {
  if (config_.pop_height <= 0 || config_.pop_width <= 0) {
    throw std::invalid_argument("CmaConfig: population must be non-empty");
  }
  if (config_.parents_per_recombination < 2) {
    throw std::invalid_argument("CmaConfig: need at least 2 parents");
  }
  if (!config_.stop.any_enabled()) {
    throw std::invalid_argument("CmaConfig: no stop condition enabled");
  }
}

std::vector<Individual> CellularMemeticAlgorithm::initialize_population(
    const EtcMatrix& etc, Rng& rng) const {
  const int pop_size = config_.pop_height * config_.pop_width;
  std::vector<Individual> population;
  population.reserve(static_cast<std::size_t>(pop_size));

  if (config_.init == InitKind::kLjfrSjfr) {
    const Schedule seed = ljfr_sjfr(etc);
    population.push_back(make_individual(seed, etc, config_.weights));
    for (int i = 1; i < pop_size; ++i) {
      Schedule perturbed = seed;
      perturbed.perturb(config_.init_perturbation, etc.num_machines(), rng);
      population.push_back(
          make_individual(std::move(perturbed), etc, config_.weights));
    }
  } else {
    for (int i = 0; i < pop_size; ++i) {
      population.push_back(make_individual(
          Schedule::random(etc.num_jobs(), etc.num_machines(), rng), etc,
          config_.weights));
    }
  }
  return population;
}

void CellularMemeticAlgorithm::apply_warm_start(
    std::vector<Individual>& population, std::span<const Schedule> warm,
    const EtcMatrix& etc, EvolutionTracker* tracker) const {
  // Cell 0 keeps the constructive seed; warm elites fill the next cells.
  std::size_t cell = 1;
  for (const Schedule& schedule : warm) {
    if (cell >= population.size()) break;
    if (schedule.num_jobs() != etc.num_jobs() ||
        !schedule.complete(etc.num_machines())) {
      throw std::invalid_argument(
          "CellularMemeticAlgorithm: warm-start schedule does not fit the "
          "instance");
    }
    population[cell] = make_individual(schedule, etc, config_.weights);
    if (tracker != nullptr) {
      tracker->count_evaluations();
      tracker->offer(population[cell]);
    }
    ++cell;
  }
}

EvolutionResult CellularMemeticAlgorithm::run(const EtcMatrix& etc) const {
  return run(etc, {});
}

EvolutionResult CellularMemeticAlgorithm::run(
    const EtcMatrix& etc, std::span<const Schedule> warm) const {
  Rng rng(config_.seed);
  EvolutionTracker tracker(config_.stop, config_.record_progress);

  // --- Initialize the mesh; improve every individual by local search. ---
  std::vector<Individual> population = initialize_population(etc, rng);
  apply_warm_start(population, warm, etc, &tracker);
  ScheduleEvaluator evaluator(etc);
  for (Individual& individual : population) {
    evaluator.reset_to(individual.schedule);
    local_search(config_.local_search, config_.weights, evaluator, rng,
                 config_.stop.cancel);
    assign_from_evaluator(individual, evaluator, config_.weights);
    tracker.count_evaluations();
    tracker.offer(individual);
    // Poll after the first offer so a cancelled run still returns a valid
    // best; bounds the portfolio's deadline overshoot to one local-search
    // pass instead of a whole-mesh initialization.
    if (tracker.should_stop()) break;
  }

  const Topology topology(config_.pop_height, config_.pop_width,
                          config_.neighborhood);
  SweepOrder rec_order(config_.recombination_order, topology.size(), rng);
  SweepOrder mut_order(config_.mutation_order, topology.size(), rng);

  // Offspring pipeline shared by both loops: local-search then evaluate,
  // replace the cell if better (or unconditionally when add_only_if_better
  // is disabled — kept for ablation). The buffers below live across the
  // whole run: reset_to replays only the genes where the offspring differs
  // from the evaluator's current schedule, crossover writes into one
  // reused Schedule, and the candidate/resident swap recycles both
  // individuals' capacity — the loop allocates nothing at steady state.
  Individual candidate;
  Schedule offspring_buf;
  MutationScratch mutation_scratch;
  std::vector<const Schedule*> parent_schedules;
  auto improve_and_replace = [&](int cell, const Schedule& offspring) {
    evaluator.reset_to(offspring);
    local_search(config_.local_search, config_.weights, evaluator, rng,
                 config_.stop.cancel);
    assign_from_evaluator(candidate, evaluator, config_.weights);
    tracker.count_evaluations();
    auto& resident = population[static_cast<std::size_t>(cell)];
    if (!config_.add_only_if_better || candidate.fitness < resident.fitness) {
      std::swap(resident, candidate);
      tracker.offer(resident);
    }
  };

  while (!tracker.should_stop()) {
    // --- Recombination sweep. ---
    for (int j = 0; j < config_.recombinations_per_iteration; ++j) {
      const int cell = rec_order.current();
      const auto neighborhood = topology.neighbors(cell);
      const std::vector<int> parents =
          select_many(config_.selection, config_.parents_per_recombination,
                      neighborhood, population, rng);
      parent_schedules.clear();
      parent_schedules.reserve(parents.size());
      for (int p : parents) {
        parent_schedules.push_back(
            &population[static_cast<std::size_t>(p)].schedule);
      }
      recombine_fold_into(offspring_buf, config_.crossover, parent_schedules,
                          rng);
      improve_and_replace(cell, offspring_buf);
      rec_order.next(rng);
      if (tracker.should_stop()) break;
    }
    if (tracker.should_stop()) break;

    // --- Mutation sweep (independent order; see header note). ---
    for (int j = 0; j < config_.mutations_per_iteration; ++j) {
      const int cell = mut_order.current();
      evaluator.reset_to(population[static_cast<std::size_t>(cell)].schedule);
      mutate(config_.mutation, evaluator, rng, &mutation_scratch);
      improve_and_replace(cell, evaluator.schedule());
      mut_order.next(rng);
      if (tracker.should_stop()) break;
    }

    tracker.end_iteration();
    if (config_.observer) config_.observer(tracker.iterations(), population);
  }
  EvolutionResult result = tracker.finish();
  if (config_.keep_final_population) result.population = std::move(population);
  return result;
}

}  // namespace gridsched
