// Population topology: a 2-D toroidal mesh with the neighborhood patterns
// of Fig. 1 of the paper. The neighborhood decides which individuals may
// recombine with a cell and therefore sets the algorithm's selective
// pressure (panmictic = maximal pressure, L5 = minimal).
#pragma once

#include <span>
#include <string_view>
#include <vector>

namespace gridsched {

enum class NeighborhoodKind {
  kPanmictic,  // whole population
  kL5,         // center + N,S,E,W                      (5 cells)
  kL9,         // L5 + the same at distance 2           (9 cells)
  kC9,         // 3x3 Moore block                       (9 cells)
  kC13,        // C9 + N,S,E,W at distance 2            (13 cells)
};

[[nodiscard]] std::string_view neighborhood_name(NeighborhoodKind k) noexcept;

/// Immutable toroidal grid with precomputed neighbor lists. Neighborhoods
/// include the center cell. On meshes too small for a pattern (e.g. width 2
/// with distance-2 offsets) wrapped duplicates are removed, so lists may be
/// shorter than the nominal pattern size but never contain repeats.
class Topology {
 public:
  Topology(int height, int width, NeighborhoodKind kind);

  [[nodiscard]] int height() const noexcept { return height_; }
  [[nodiscard]] int width() const noexcept { return width_; }
  [[nodiscard]] int size() const noexcept { return height_ * width_; }
  [[nodiscard]] NeighborhoodKind kind() const noexcept { return kind_; }

  [[nodiscard]] int cell_at(int row, int col) const noexcept {
    return row * width_ + col;
  }
  [[nodiscard]] int row_of(int cell) const noexcept { return cell / width_; }
  [[nodiscard]] int col_of(int cell) const noexcept { return cell % width_; }

  /// Neighbor cell indices of `cell` (center included, no duplicates).
  [[nodiscard]] std::span<const int> neighbors(int cell) const noexcept {
    return {neighbors_.data() + offsets_[static_cast<std::size_t>(cell)],
            offsets_[static_cast<std::size_t>(cell) + 1] -
                offsets_[static_cast<std::size_t>(cell)]};
  }

 private:
  int height_;
  int width_;
  NeighborhoodKind kind_;
  std::vector<int> neighbors_;        // concatenated per-cell lists
  std::vector<std::size_t> offsets_;  // size() + 1 entries
};

}  // namespace gridsched
