// Parent selection inside a neighborhood.
//
// The paper uses N-tournament: N random neighborhood members compete and the
// fittest wins. Alternatives (uniform random, best-of-neighborhood) are kept
// for ablations.
#pragma once

#include <span>
#include <string_view>
#include <vector>

#include "common/rng.h"
#include "core/individual.h"

namespace gridsched {

enum class SelectionKind { kTournament, kUniform, kBest };

[[nodiscard]] std::string_view selection_name(SelectionKind k) noexcept;

struct SelectionConfig {
  SelectionKind kind = SelectionKind::kTournament;
  int tournament_size = 3;  // the paper's tuned N
};

/// Selects one cell index out of `candidates` (cell indices into
/// `population`). Candidates must be non-empty.
[[nodiscard]] int select_one(const SelectionConfig& config,
                             std::span<const int> candidates,
                             std::span<const Individual> population, Rng& rng);

/// Selects `count` cells, attempting (best effort, bounded retries) to make
/// them distinct when the candidate pool allows it.
[[nodiscard]] std::vector<int> select_many(
    const SelectionConfig& config, int count, std::span<const int> candidates,
    std::span<const Individual> population, Rng& rng);

}  // namespace gridsched
