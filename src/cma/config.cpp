#include "cma/config.h"

#include <sstream>

namespace gridsched {

std::string CmaConfig::describe() const {
  std::ostringstream out;
  out << "cMA[" << pop_height << 'x' << pop_width << ' '
      << neighborhood_name(neighborhood) << " rec="
      << recombinations_per_iteration << '/'
      << sweep_name(recombination_order) << " mut="
      << mutations_per_iteration << '/' << sweep_name(mutation_order) << ' '
      << crossover_name(crossover) << '+' << mutation_name(mutation) << ' '
      << local_search_name(local_search.kind) << 'x'
      << local_search.iterations << " sel="
      << selection_name(selection.kind) << '(' << selection.tournament_size
      << ") lambda=" << weights.lambda << ']';
  return out.str();
}

}  // namespace gridsched
