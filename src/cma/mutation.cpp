#include "cma/mutation.h"

#include <algorithm>
#include <numeric>
#include <vector>

namespace gridsched {

std::string_view mutation_name(MutationKind k) noexcept {
  switch (k) {
    case MutationKind::kRebalance: return "Rebalance";
    case MutationKind::kMove: return "Move";
    case MutationKind::kSwap: return "Swap";
  }
  return "?";
}

RebalanceMove rebalance_mutation(ScheduleEvaluator& evaluator, Rng& rng,
                                 MutationScratch* scratch) {
  const int m = evaluator.num_machines();
  if (m < 2) return {};
  MutationScratch local;  // fallback when the caller keeps no scratch
  MutationScratch& buf = scratch != nullptr ? *scratch : local;

  // Overloaded machines: completion == makespan (load_factor == 1). Ties
  // are real under consistent instances, so collect and pick at random.
  const double makespan = evaluator.makespan();
  std::vector<MachineId>& overloaded = buf.overloaded;
  overloaded.clear();
  for (MachineId machine = 0; machine < m; ++machine) {
    if (evaluator.completion(machine) >= makespan) overloaded.push_back(machine);
  }
  const MachineId from =
      overloaded[static_cast<std::size_t>(rng.bounded(overloaded.size()))];
  const auto& jobs = evaluator.machine_jobs(from);
  if (jobs.empty()) return {};  // makespan machine holds only ready time

  // The 25% least-loaded machines (at least one, excluding `from`).
  std::vector<MachineId>& by_load = buf.by_load;
  by_load.resize(static_cast<std::size_t>(m));
  std::iota(by_load.begin(), by_load.end(), 0);
  std::sort(by_load.begin(), by_load.end(), [&](MachineId a, MachineId b) {
    const double ca = evaluator.completion(a);
    const double cb = evaluator.completion(b);
    return ca != cb ? ca < cb : a < b;
  });
  const int quartile = std::max(1, m / 4);
  std::vector<MachineId>& targets = buf.targets;
  targets.clear();
  for (int i = 0; i < quartile; ++i) {
    if (by_load[static_cast<std::size_t>(i)] != from) {
      targets.push_back(by_load[static_cast<std::size_t>(i)]);
    }
  }
  if (targets.empty()) {
    // `from` is simultaneously the most and least loaded (all equal);
    // fall back to any other machine.
    targets.push_back(by_load[static_cast<std::size_t>(quartile % m)]);
    if (targets[0] == from) return {};
  }

  const JobId job =
      jobs[static_cast<std::size_t>(rng.bounded(jobs.size()))].second;
  const MachineId to =
      targets[static_cast<std::size_t>(rng.bounded(targets.size()))];
  evaluator.apply_move(job, to);
  return {job, from, to};
}

void mutate(MutationKind kind, ScheduleEvaluator& evaluator, Rng& rng,
            MutationScratch* scratch) {
  const int n = evaluator.num_jobs();
  const int m = evaluator.num_machines();
  if (m < 2) return;
  switch (kind) {
    case MutationKind::kRebalance:
      rebalance_mutation(evaluator, rng, scratch);
      return;
    case MutationKind::kMove: {
      const JobId job = rng.uniform_int(0, n - 1);
      MachineId to = rng.uniform_int(0, m - 2);
      if (to >= evaluator.schedule()[job]) ++to;  // uniform over others
      evaluator.apply_move(job, to);
      return;
    }
    case MutationKind::kSwap: {
      const JobId a = rng.uniform_int(0, n - 1);
      // Bounded retries to find a partner on a different machine; degenerate
      // schedules (all jobs on one machine) fall back to a Move.
      for (int attempt = 0; attempt < 16; ++attempt) {
        const JobId b = rng.uniform_int(0, n - 1);
        if (evaluator.schedule()[a] != evaluator.schedule()[b]) {
          evaluator.apply_swap(a, b);
          return;
        }
      }
      mutate(MutationKind::kMove, evaluator, rng, scratch);
      return;
    }
  }
}

}  // namespace gridsched
