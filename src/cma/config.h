// Full configuration of the Cellular Memetic Algorithm.
//
// The defaults are exactly the tuned configuration of Table 1 of the paper;
// tests/test_cma_config.cpp pins them. Anything the paper varied in its
// tuning study (Figs. 2-5) is a field here so the bench harness can sweep it.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>

#include "cma/crossover.h"
#include "cma/local_search.h"
#include "cma/mutation.h"
#include "cma/selection.h"
#include "cma/topology.h"
#include "cma/update_order.h"
#include "core/evolution.h"
#include "core/fitness.h"

namespace gridsched {

/// How the initial mesh is seeded.
enum class InitKind {
  kLjfrSjfr,  // paper: individual 0 = LJFR-SJFR, rest = large perturbations
  kRandom,    // all uniform random (control)
};

struct CmaConfig {
  // Table 1: population height/width 5 x 5.
  int pop_height = 5;
  int pop_width = 5;

  // Table 1: neighborhood pattern C9.
  NeighborhoodKind neighborhood = NeighborhoodKind::kC9;

  // Table 1: recombination order FLS, mutation order NRS.
  SweepKind recombination_order = SweepKind::kFixedLineSweep;
  SweepKind mutation_order = SweepKind::kNewRandomSweep;

  // Table 1: nb recombinations 25, nb mutations 12 (per iteration).
  int recombinations_per_iteration = 25;
  int mutations_per_iteration = 12;

  // Table 1: nb solutions to recombine 3, 3-tournament selection.
  int parents_per_recombination = 3;
  SelectionConfig selection{SelectionKind::kTournament, 3};

  // Table 1: One-Point recombination, Rebalance mutation, LMCTS local
  // search with 5 iterations.
  CrossoverKind crossover = CrossoverKind::kOnePoint;
  MutationKind mutation = MutationKind::kRebalance;
  LocalSearchConfig local_search{LocalSearchKind::kLmcts, 5};

  // Table 1: add only if better.
  bool add_only_if_better = true;

  // Table 1: start choice LJFR-SJFR; the rest of the mesh is obtained by
  // "large perturbations" — each gene re-randomized with this probability.
  InitKind init = InitKind::kLjfrSjfr;
  double init_perturbation = 0.5;

  // Eq. 3: lambda = 0.75.
  FitnessWeights weights{};

  // Table 1: max 90 s wall clock. Benches scale this down (DESIGN.md §3).
  StopCondition stop{.max_time_ms = 90'000.0};

  std::uint64_t seed = 1;

  /// Keep the best-so-far trajectory (needed by the Fig. 2-5 benches; off
  /// by default to keep inner-loop allocations away from timing runs).
  bool record_progress = false;

  /// Copy the final mesh into EvolutionResult::population. The portfolio's
  /// warm-start cache uses it to carry elites across grid activations.
  bool keep_final_population = false;

  /// Optional hook invoked after every iteration with the live population
  /// (read-only). Used by the diversity study (bench/ablation_diversity)
  /// and available for custom instrumentation. Leave empty for zero cost.
  std::function<void(std::int64_t iteration,
                     std::span<const Individual> population)>
      observer;

  /// One-line human-readable summary (used in bench output headers).
  [[nodiscard]] std::string describe() const;
};

}  // namespace gridsched
