// Asynchronous cell-update orders (Section 3.2 of the paper).
//
// In asynchronous cellular updating, cells are visited sequentially: a cell
// sees neighbor updates made earlier in the same sweep. The paper studies
// three visit orders:
//   FLS  Fixed Line Sweep  - row by row, every sweep.
//   FRS  Fixed Random Sweep - one random permutation drawn at start-up and
//                             reused for every sweep.
//   NRS  New Random Sweep   - a fresh permutation per sweep.
// Recombination and mutation each maintain their own independent order.
#pragma once

#include <string_view>
#include <vector>

#include "common/rng.h"

namespace gridsched {

enum class SweepKind { kFixedLineSweep, kFixedRandomSweep, kNewRandomSweep };

[[nodiscard]] std::string_view sweep_name(SweepKind k) noexcept;

class SweepOrder {
 public:
  /// `n` is the population size. FRS draws its permutation from `rng` here.
  SweepOrder(SweepKind kind, int n, Rng& rng);

  /// The cell the sweep currently points at.
  [[nodiscard]] int current() const noexcept {
    return order_[static_cast<std::size_t>(pos_)];
  }

  /// Advances to the next cell; wraps around at the end of the sweep,
  /// reshuffling first when the kind is NewRandomSweep.
  void next(Rng& rng);

  [[nodiscard]] SweepKind kind() const noexcept { return kind_; }
  [[nodiscard]] int size() const noexcept {
    return static_cast<int>(order_.size());
  }

 private:
  SweepKind kind_;
  std::vector<int> order_;
  int pos_ = 0;
};

}  // namespace gridsched
