#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace gridsched {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double RunningStats::cv() const noexcept {
  return mean_ != 0.0 ? stddev() / std::abs(mean_) : 0.0;
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto n1 = static_cast<double>(n_);
  const auto n2 = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  mean_ += delta * n2 / (n1 + n2);
  m2_ += other.m2_ + delta * delta * n1 * n2 / (n1 + n2);
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

namespace {

// log(kMaxValue / kMinValue), the histogram's span in natural-log space.
const double kLogSpan =
    std::log(LatencyHistogram::kMaxValue / LatencyHistogram::kMinValue);

std::size_t bucket_of(double value) noexcept {
  if (!(value >= LatencyHistogram::kMinValue)) return 0;  // also NaN
  if (value >= LatencyHistogram::kMaxValue) {
    return LatencyHistogram::kBuckets - 1;
  }
  const double frac = std::log(value / LatencyHistogram::kMinValue) / kLogSpan;
  const auto index = static_cast<std::size_t>(
      frac * static_cast<double>(LatencyHistogram::kBuckets));
  return std::min(index, LatencyHistogram::kBuckets - 1);
}

/// Geometric midpoint of a bucket — the representative value reported for
/// any percentile that lands in it.
double bucket_value(std::size_t index) noexcept {
  const double width = kLogSpan / static_cast<double>(
                                      LatencyHistogram::kBuckets);
  return LatencyHistogram::kMinValue *
         std::exp((static_cast<double>(index) + 0.5) * width);
}

}  // namespace

void LatencyHistogram::add(double value) noexcept {
  ++counts_[bucket_of(value)];
  ++count_;
  // Not merely "landed in the last bucket": a genuine sample in
  // [last bucket's lower edge, kMaxValue) is estimable; only samples at or
  // beyond the range end lost their magnitude to the clamp.
  if (value >= kMaxValue) ++overflow_;
}

std::uint64_t LatencyHistogram::rank_of(double p) const noexcept {
  const double clamped = std::clamp(p, 0.0, 100.0);
  // Rank of the target sample, 1-based; p=0 picks the first sample's
  // bucket, p=100 the last's.
  const auto target = static_cast<std::uint64_t>(
      std::ceil(clamped / 100.0 * static_cast<double>(count_)));
  return std::max<std::uint64_t>(target, 1);
}

double LatencyHistogram::percentile(double p) const noexcept {
  if (count_ == 0) return 0.0;
  const std::uint64_t target = rank_of(p);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    seen += counts_[i];
    if (seen >= target) return bucket_value(i);
  }
  return bucket_value(kBuckets - 1);
}

bool LatencyHistogram::percentile_overflows(double p) const noexcept {
  if (count_ == 0 || overflow_ == 0) return false;
  // Overflow samples occupy the top `overflow_` ranks (they clamp into
  // the last bucket, and nothing sorts above kMaxValue).
  return rank_of(p) > count_ - overflow_;
}

LatencyHistogram LatencyHistogram::from_buckets(
    std::span<const std::uint64_t> counts, std::uint64_t overflow) {
  if (counts.size() != kBuckets) {
    throw std::invalid_argument(
        "LatencyHistogram::from_buckets: need exactly kBuckets counts");
  }
  LatencyHistogram histogram;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    histogram.counts_[i] = counts[i];
    histogram.count_ += counts[i];
  }
  if (overflow > histogram.counts_[kBuckets - 1]) {
    throw std::invalid_argument(
        "LatencyHistogram::from_buckets: overflow exceeds the last bucket");
  }
  histogram.overflow_ = overflow;
  return histogram;
}

void LatencyHistogram::merge(const LatencyHistogram& other) noexcept {
  for (std::size_t i = 0; i < kBuckets; ++i) counts_[i] += other.counts_[i];
  count_ += other.count_;
  overflow_ += other.overflow_;
}

Summary summarize(std::span<const double> values) {
  Summary s;
  if (values.empty()) return s;
  RunningStats acc;
  for (double v : values) acc.add(v);
  s.count = acc.count();
  s.mean = acc.mean();
  s.stddev = acc.stddev();
  s.min = acc.min();
  s.max = acc.max();
  s.median = percentile(values, 50.0);
  return s;
}

double percentile(std::span<const double> values, double p) {
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  const double rank = std::clamp(p, 0.0, 100.0) / 100.0 *
                      static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double percent_delta(double a, double b) noexcept {
  return b != 0.0 ? (a - b) / b * 100.0 : 0.0;
}

double ci95_half_width(std::size_t n, double stddev) noexcept {
  if (n < 2) return 0.0;
  // Two-sided 95% Student-t quantiles, indexed by degrees of freedom - 1.
  static constexpr double kT975[30] = {
      12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
      2.201,  2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
      2.080,  2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042};
  const std::size_t df = n - 1;
  const double t = df <= 30 ? kT975[df - 1] : 1.96;
  return t * stddev / std::sqrt(static_cast<double>(n));
}

double ci95_half_width(const RunningStats& stats) noexcept {
  return ci95_half_width(stats.count(), stats.stddev());
}

}  // namespace gridsched
