// Tiny command-line flag parser shared by benches, examples and tools.
//
// Supports `--name value`, `--name=value` and boolean `--name` forms.
// Unknown flags raise an error listing the registered options, so every
// binary gets consistent --help behaviour for free.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace gridsched {

class CliParser {
 public:
  /// `program_summary` is printed at the top of --help output.
  explicit CliParser(std::string program_summary);

  /// Registers a flag with a default value and help text. Returns *this for
  /// chaining. Values are stored as strings and converted on access.
  CliParser& flag(const std::string& name, const std::string& default_value,
                  const std::string& help);

  /// Parses argv. Returns false if --help was requested (help text printed
  /// to stdout). Throws std::invalid_argument on unknown or malformed flags.
  bool parse(int argc, const char* const* argv);

  [[nodiscard]] std::string get(const std::string& name) const;
  [[nodiscard]] long long get_int(const std::string& name) const;
  [[nodiscard]] double get_double(const std::string& name) const;
  [[nodiscard]] bool get_bool(const std::string& name) const;

  [[nodiscard]] std::string help_text() const;

 private:
  struct Option {
    std::string value;
    std::string default_value;
    std::string help;
  };

  std::string summary_;
  std::map<std::string, Option> options_;
  std::vector<std::string> order_;
};

}  // namespace gridsched
