// Minimal CSV writer for bench/experiment output.
#pragma once

#include <fstream>
#include <initializer_list>
#include <string>
#include <string_view>
#include <vector>

namespace gridsched {

/// Writes RFC-4180-style CSV rows. Fields containing commas, quotes or
/// newlines are quoted and embedded quotes doubled.
class CsvWriter {
 public:
  /// Opens `path` for writing (truncates). Throws std::runtime_error on
  /// failure.
  explicit CsvWriter(const std::string& path);

  void write_row(std::initializer_list<std::string_view> fields);
  void write_row(const std::vector<std::string>& fields);

  /// Convenience: formats doubles with full round-trip precision.
  static std::string field(double value);
  static std::string field(long long value);

 private:
  void write_fields(const std::vector<std::string_view>& fields);

  std::ofstream out_;
};

}  // namespace gridsched
