#include "common/csv.h"

#include <charconv>
#include <stdexcept>
#include <system_error>

namespace gridsched {
namespace {

bool needs_quoting(std::string_view field) {
  return field.find_first_of(",\"\n\r") != std::string_view::npos;
}

std::string quoted(std::string_view field) {
  std::string out;
  out.reserve(field.size() + 2);
  out.push_back('"');
  for (char c : field) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

}  // namespace

CsvWriter::CsvWriter(const std::string& path) : out_(path) {
  if (!out_) throw std::runtime_error("CsvWriter: cannot open " + path);
}

void CsvWriter::write_row(std::initializer_list<std::string_view> fields) {
  write_fields(std::vector<std::string_view>(fields));
}

void CsvWriter::write_row(const std::vector<std::string>& fields) {
  std::vector<std::string_view> views(fields.begin(), fields.end());
  write_fields(views);
}

void CsvWriter::write_fields(const std::vector<std::string_view>& fields) {
  bool first = true;
  for (auto field : fields) {
    if (!first) out_ << ',';
    first = false;
    out_ << (needs_quoting(field) ? quoted(field) : std::string(field));
  }
  out_ << '\n';
}

std::string CsvWriter::field(double value) {
  char buf[64];
  const auto [ptr, ec] =
      std::to_chars(buf, buf + sizeof buf, value, std::chars_format::general, 17);
  if (ec != std::errc{}) return "nan";
  return std::string(buf, ptr);
}

std::string CsvWriter::field(long long value) { return std::to_string(value); }

}  // namespace gridsched
