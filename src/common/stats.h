// Streaming and batch statistics used by the experiment harness.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace gridsched {

/// Numerically stable streaming mean/variance/min/max (Welford's algorithm).
class RunningStats {
 public:
  void add(double x) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }
  /// Coefficient of variation (stddev / mean); 0 when mean is 0.
  [[nodiscard]] double cv() const noexcept;

  /// Merges another accumulator (parallel reduction support).
  void merge(const RunningStats& other) noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Fixed-memory log-spaced histogram for latency-style metrics. 128
/// geometric buckets span [1e-3, 1e5) (eight decades, ~15% bucket width),
/// with underflow clamped into the first bucket and overflow into the
/// last — recording never fails and never allocates, so per-shard and
/// per-class metrics structs can carry one by value. Percentiles are
/// answered at bucket resolution (geometric bucket midpoint), which is
/// plenty for p50/p99 tables; exact means stay with RunningStats.
class LatencyHistogram {
 public:
  static constexpr std::size_t kBuckets = 128;
  static constexpr double kMinValue = 1e-3;
  static constexpr double kMaxValue = 1e5;

  /// Records one sample. Non-finite and negative samples clamp into the
  /// boundary buckets (NaN lands in the first).
  void add(double value) noexcept;

  /// Value at percentile p in [0, 100]; 0 when empty.
  [[nodiscard]] double percentile(double p) const noexcept;
  [[nodiscard]] double p50() const noexcept { return percentile(50.0); }
  [[nodiscard]] double p99() const noexcept { return percentile(99.0); }

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] bool empty() const noexcept { return count_ == 0; }

  /// Raw bucket occupancy (index = bucket, geometric midpoints) — lets
  /// exporters ship the whole distribution, not just p50/p99 scalars.
  [[nodiscard]] const std::array<std::uint64_t, kBuckets>& bucket_counts()
      const noexcept {
    return counts_;
  }

  /// Samples that clamped into the last bucket because they were >=
  /// kMaxValue. Such samples have no meaningful bucket midpoint, so a
  /// percentile answered from them is a floor, not an estimate —
  /// percentile_overflows() tells a table to print ">1e5" instead.
  [[nodiscard]] std::uint64_t overflow_count() const noexcept {
    return overflow_;
  }

  /// True when the rank sample of percentile p falls among the overflow
  /// samples — i.e. percentile(p) would report the clamped last-bucket
  /// midpoint with no signal about how far beyond the range the tail
  /// really is.
  [[nodiscard]] bool percentile_overflows(double p) const noexcept;

  /// Rebuilds a histogram from exported bucket counts (the
  /// to_json/from_json round trip in src/obs/). `counts` must have
  /// exactly kBuckets entries and `overflow` must not exceed the last
  /// bucket's count; throws std::invalid_argument otherwise.
  [[nodiscard]] static LatencyHistogram from_buckets(
      std::span<const std::uint64_t> counts, std::uint64_t overflow);

  /// Adds another histogram's counts (parallel/per-shard reduction).
  void merge(const LatencyHistogram& other) noexcept;

  friend bool operator==(const LatencyHistogram&,
                         const LatencyHistogram&) = default;

 private:
  [[nodiscard]] std::uint64_t rank_of(double p) const noexcept;

  std::array<std::uint64_t, kBuckets> counts_{};
  std::uint64_t count_ = 0;
  std::uint64_t overflow_ = 0;
};

/// Summary of a finished sample set.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;
};

/// Computes a full summary of `values` (copies to sort for the median).
[[nodiscard]] Summary summarize(std::span<const double> values);

/// Linear-interpolation percentile, p in [0, 100]. Requires non-empty input.
[[nodiscard]] double percentile(std::span<const double> values, double p);

/// Relative difference (a - b) / b in percent, matching the paper's
/// Delta(%) columns. Returns 0 when b == 0.
[[nodiscard]] double percent_delta(double a, double b) noexcept;

/// Half-width of the 95% confidence interval of the mean for `n` samples
/// with sample standard deviation `stddev`: t_{0.975, n-1} * stddev /
/// sqrt(n). Uses a small-sample t table up to 30 degrees of freedom and
/// the normal quantile 1.96 beyond. Returns 0 for fewer than two samples
/// (no interval can be formed).
[[nodiscard]] double ci95_half_width(std::size_t n, double stddev) noexcept;

/// Convenience overload over an accumulator.
[[nodiscard]] double ci95_half_width(const RunningStats& stats) noexcept;

}  // namespace gridsched
