#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <string>
#include <utility>

namespace gridsched {
namespace {

std::string describe_errors(const std::vector<std::exception_ptr>& errors) {
  std::string message =
      "ThreadPool: " + std::to_string(errors.size()) + " tasks failed:";
  for (const std::exception_ptr& error : errors) {
    try {
      std::rethrow_exception(error);
    } catch (const std::exception& e) {
      message += std::string(" [") + e.what() + "]";
    } catch (...) {
      message += " [non-standard exception]";
    }
  }
  return message;
}

}  // namespace

TaskGroupError::TaskGroupError(std::vector<std::exception_ptr> errors)
    : std::runtime_error(describe_errors(errors)),
      errors_(std::move(errors)) {}

void TaskGroup::wait() {
  pool_->help_until_done(*state_);
  std::vector<std::exception_ptr> errors;
  {
    std::scoped_lock lock(state_->mutex);
    errors = std::exchange(state_->errors, {});
  }
  if (errors.empty()) return;
  if (errors.size() == 1) std::rethrow_exception(errors.front());
  throw TaskGroupError(std::move(errors));
}

std::size_t TaskGroup::pending() const {
  std::scoped_lock lock(state_->mutex);
  return state_->pending;
}

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::scoped_lock lock(mutex_);
    stopping_ = true;
  }
  work_available_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::enqueue(QueuedTask task) {
  {
    std::scoped_lock lock(mutex_);
    queue_.push_back(std::move(task));
  }
  work_available_.notify_one();
}

void ThreadPool::submit(std::function<void()> task) {
  enqueue(QueuedTask{std::move(task), nullptr});
}

TaskGroup ThreadPool::make_group() { return TaskGroup(*this); }

void ThreadPool::submit(TaskGroup& group, std::function<void()> task) {
  std::shared_ptr<TaskGroup::State> state = group.state_;
  {
    std::scoped_lock lock(state->mutex);
    ++state->pending;
  }
  // The wrapper owns the error path: a group task never throws into the
  // pool's slate, so wait_idle() and unrelated groups stay clean.
  QueuedTask queued;
  queued.group = state.get();
  queued.fn = [state, task = std::move(task)] {
    std::exception_ptr error;
    try {
      task();
    } catch (...) {
      error = std::current_exception();
    }
    std::scoped_lock lock(state->mutex);
    if (error) state->errors.push_back(std::move(error));
    if (--state->pending == 0) state->done.notify_all();
  };
  enqueue(std::move(queued));
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
  if (errors_.empty()) return;
  auto errors = std::exchange(errors_, {});
  lock.unlock();
  if (errors.size() == 1) std::rethrow_exception(errors.front());
  throw TaskGroupError(std::move(errors));
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  // Dynamic scheduling over a shared counter: work items may have very
  // uneven cost (e.g. different algorithm configurations). The wait helps,
  // so the calling thread is a lane too.
  auto next = std::make_shared<std::atomic<std::size_t>>(0);
  TaskGroup group = make_group();
  const std::size_t lanes = std::min(n, size() + 1);
  for (std::size_t lane = 0; lane < lanes; ++lane) {
    submit(group, [next, n, &fn] {
      for (std::size_t i = (*next)++; i < n; i = (*next)++) fn(i);
    });
  }
  group.wait();
}

bool ThreadPool::run_one_queued_task(const TaskGroup::State* only) {
  QueuedTask task;
  {
    std::scoped_lock lock(mutex_);
    if (queue_.empty()) return false;
    auto pick = queue_.begin();
    if (only != nullptr) {
      // A helping waiter runs ITS OWN group's queued tasks only. Stealing
      // an arbitrary task would be deadlock-free too, but a stolen
      // long-runner (say, a whole neighboring shard race) would then
      // stall this wait long after its own group finished — inflating
      // the waiter's latency by unrelated work. Restricting to the own
      // group keeps waits tight and still guarantees progress: tasks the
      // waiter is blocked on are either queued (run here) or already
      // running on other threads (their completion wakes the sleep in
      // help_until_done).
      pick = std::find_if(
          queue_.begin(), queue_.end(),
          [only](const QueuedTask& queued) { return queued.group == only; });
      if (pick == queue_.end()) return false;
    }
    task = std::move(*pick);
    queue_.erase(pick);
    ++active_;
  }
  try {
    task.fn();
  } catch (...) {
    std::scoped_lock lock(mutex_);
    errors_.push_back(std::current_exception());
  }
  {
    std::scoped_lock lock(mutex_);
    --active_;
    if (queue_.empty() && active_ == 0) idle_.notify_all();
  }
  return true;
}

void ThreadPool::help_until_done(TaskGroup::State& state) {
  for (;;) {
    {
      std::scoped_lock lock(state.mutex);
      if (state.pending == 0) return;
    }
    if (run_one_queued_task(&state)) continue;
    // None of the group's tasks are queued: the stragglers are running on
    // other threads (or a running group task is about to fan out more —
    // its completion notifies `done`, and the loop re-checks the queue).
    // Sleep until a group task completes, then help again.
    std::unique_lock lock(state.mutex);
    if (state.pending == 0) return;
    state.done.wait(lock);
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    {
      std::unique_lock lock(mutex_);
      work_available_.wait(lock,
                           [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
    }
    // Another thread (a helping waiter) may have raced us to the task;
    // run_one re-checks under the lock and we simply wait again.
    (void)run_one_queued_task(nullptr);
  }
}

}  // namespace gridsched
