#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <string>
#include <utility>

namespace gridsched {
namespace {

std::string describe_errors(const std::vector<std::exception_ptr>& errors) {
  std::string message =
      "ThreadPool: " + std::to_string(errors.size()) + " tasks failed:";
  for (const std::exception_ptr& error : errors) {
    try {
      std::rethrow_exception(error);
    } catch (const std::exception& e) {
      message += std::string(" [") + e.what() + "]";
    } catch (...) {
      message += " [non-standard exception]";
    }
  }
  return message;
}

}  // namespace

TaskGroupError::TaskGroupError(std::vector<std::exception_ptr> errors)
    : std::runtime_error(describe_errors(errors)),
      errors_(std::move(errors)) {}

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::scoped_lock lock(mutex_);
    stopping_ = true;
  }
  work_available_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::scoped_lock lock(mutex_);
    queue_.push_back(std::move(task));
  }
  work_available_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
  if (errors_.empty()) return;
  auto errors = std::exchange(errors_, {});
  lock.unlock();
  if (errors.size() == 1) std::rethrow_exception(errors.front());
  throw TaskGroupError(std::move(errors));
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  // Dynamic scheduling over a shared counter: work items may have very
  // uneven cost (e.g. different algorithm configurations).
  auto next = std::make_shared<std::atomic<std::size_t>>(0);
  const std::size_t lanes = std::min(n, size());
  for (std::size_t lane = 0; lane < lanes; ++lane) {
    submit([next, n, &fn] {
      for (std::size_t i = (*next)++; i < n; i = (*next)++) fn(i);
    });
  }
  wait_idle();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      work_available_.wait(lock,
                           [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    try {
      task();
    } catch (...) {
      std::scoped_lock lock(mutex_);
      errors_.push_back(std::current_exception());
    }
    {
      std::scoped_lock lock(mutex_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_.notify_all();
    }
  }
}

}  // namespace gridsched
