#include "common/rng.h"

#include <cmath>
#include <numbers>

namespace gridsched {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  // SplitMix64 expansion guarantees a non-zero xoshiro state even for seed 0.
  std::uint64_t sm = seed;
  for (auto& word : state_) word = splitmix64(sm);
}

Rng::result_type Rng::operator()() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

Rng Rng::split() noexcept {
  // Two fresh draws feed a SplitMix chain, decorrelating the child from both
  // the parent state and any sibling split at a different point.
  std::uint64_t mix = (*this)() ^ 0xa3ec647659359acdULL;
  const std::uint64_t child_seed = splitmix64(mix) ^ (*this)();
  return Rng{child_seed};
}

int Rng::uniform_int(int lo, int hi) noexcept {
  return lo + static_cast<int>(bounded(static_cast<std::uint64_t>(hi - lo) + 1));
}

std::uint64_t Rng::bounded(std::uint64_t n) noexcept {
  if (n <= 1) return 0;
  // Lemire's multiply-shift rejection method: unbiased, one division in the
  // rare rejection path only.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  auto low = static_cast<std::uint64_t>(m);
  if (low < n) {
    const std::uint64_t threshold = -n % n;
    while (low < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * n;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::uniform(double lo, double hi) noexcept {
  // 53 random bits -> [0,1) with full double precision.
  const double unit = static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  return lo + unit * (hi - lo);
}

bool Rng::chance(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

double Rng::exponential(double rate) noexcept {
  // Inverse CDF; uniform() < 1 so the log argument is strictly positive.
  return -std::log(1.0 - uniform()) / rate;
}

double Rng::normal(double mean, double stddev) noexcept {
  const double u1 = 1.0 - uniform();  // avoid log(0)
  const double u2 = uniform();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * mag * std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::gamma(double shape, double scale) noexcept {
  // Marsaglia & Tsang (2000). For shape < 1, boost via the
  // Gamma(shape) = Gamma(shape + 1) * U^(1/shape) identity.
  if (shape < 1.0) {
    const double boost = std::pow(1.0 - uniform(), 1.0 / shape);
    return gamma(shape + 1.0, scale) * boost;
  }
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x = 0.0;
    double v = 0.0;
    do {
      x = normal();
      v = 1.0 + c * x;
    } while (v <= 0.0);
    v = v * v * v;
    const double u = 1.0 - uniform();  // strictly positive for the log
    if (u < 1.0 - 0.0331 * x * x * x * x) return d * v * scale;
    if (std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) {
      return d * v * scale;
    }
  }
}

std::vector<int> Rng::permutation(int n) {
  std::vector<int> perm(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) perm[static_cast<std::size_t>(i)] = i;
  shuffle(std::span<int>{perm});
  return perm;
}

}  // namespace gridsched
