// Cooperative cancellation for time-budgeted algorithm runs.
//
// The portfolio scheduler races several engines on a thread pool under one
// per-activation wall-clock budget. A per-engine `max_time_ms` bound is not
// enough to enforce it: an engine that starts late (queued behind others)
// would happily run its full slice past the activation deadline. A
// `CancellationSource` owns the shared stop signal — an explicit cancel
// flag plus an optional absolute deadline — and hands out cheap copyable
// `CancellationToken`s that `StopCondition` carries into every engine loop
// (see core/evolution.h). Engines poll `cancelled()` at the same points
// they poll their other bounds, so cancellation latency is one offspring
// pipeline step, not a thread interrupt.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>
#include <memory>

#include "common/stopwatch.h"

namespace gridsched {

namespace detail {
struct CancelState {
  std::atomic<bool> cancelled{false};
  // Absolute steady-clock deadline in nanoseconds since epoch; the minimum
  // value means "no deadline". Written only by the owning source.
  std::atomic<std::int64_t> deadline_ns{
      std::numeric_limits<std::int64_t>::max()};

  [[nodiscard]] bool expired() const noexcept {
    const std::int64_t deadline =
        deadline_ns.load(std::memory_order_relaxed);
    if (cancelled.load(std::memory_order_relaxed)) return true;
    if (deadline == std::numeric_limits<std::int64_t>::max()) return false;
    const auto now = std::chrono::duration_cast<std::chrono::nanoseconds>(
                         Stopwatch::clock::now().time_since_epoch())
                         .count();
    return now >= deadline;
  }
};
}  // namespace detail

/// Read-only view of a cancellation source. Default-constructed tokens are
/// invalid and never report cancellation, so a plain `StopCondition` keeps
/// its old behaviour.
class CancellationToken {
 public:
  CancellationToken() = default;

  [[nodiscard]] bool valid() const noexcept { return state_ != nullptr; }

  /// True once the source was cancelled or its deadline passed.
  [[nodiscard]] bool cancelled() const noexcept {
    return state_ != nullptr && state_->expired();
  }

 private:
  friend class CancellationSource;
  explicit CancellationToken(
      std::shared_ptr<const detail::CancelState> state) noexcept
      : state_(std::move(state)) {}

  std::shared_ptr<const detail::CancelState> state_;
};

/// Owner of the stop signal. Copies share the same underlying state.
class CancellationSource {
 public:
  CancellationSource() : state_(std::make_shared<detail::CancelState>()) {}

  [[nodiscard]] CancellationToken token() const noexcept {
    return CancellationToken(state_);
  }

  /// Trips the cancel flag; every token reports cancelled from now on.
  void request_cancel() noexcept {
    state_->cancelled.store(true, std::memory_order_relaxed);
  }

  /// Arms (or re-arms) an absolute deadline `ms` from now. Tokens report
  /// cancelled once it passes, with no further action from the owner.
  void set_deadline_in_ms(double ms) noexcept {
    const auto now = std::chrono::duration_cast<std::chrono::nanoseconds>(
                         Stopwatch::clock::now().time_since_epoch())
                         .count();
    state_->deadline_ns.store(
        now + static_cast<std::int64_t>(ms * 1e6),
        std::memory_order_relaxed);
  }

  [[nodiscard]] bool cancel_requested() const noexcept {
    return state_->expired();
  }

 private:
  std::shared_ptr<detail::CancelState> state_;
};

}  // namespace gridsched
