// Wall-clock measurement helpers.
//
// All time-budgeted algorithms in the library (cMA, GAs, simulator-embedded
// schedulers) use `Deadline` so that "run for T milliseconds" means the same
// thing everywhere, and tests can substitute a zero/huge budget.
#pragma once

#include <chrono>
#include <limits>

namespace gridsched {

/// Monotonic stopwatch started at construction.
class Stopwatch {
 public:
  using clock = std::chrono::steady_clock;

  Stopwatch() noexcept : start_(clock::now()) {}

  void restart() noexcept { start_ = clock::now(); }

  [[nodiscard]] double elapsed_seconds() const noexcept {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  [[nodiscard]] double elapsed_ms() const noexcept {
    return elapsed_seconds() * 1e3;
  }

 private:
  clock::time_point start_;
};

/// A wall-clock budget. Default-constructed deadlines never expire, which is
/// what evaluation-count-bounded runs use.
class Deadline {
 public:
  Deadline() noexcept = default;

  static Deadline after_ms(double ms) noexcept {
    Deadline d;
    d.bounded_ = true;
    d.end_ = Stopwatch::clock::now() +
             std::chrono::duration_cast<Stopwatch::clock::duration>(
                 std::chrono::duration<double, std::milli>(ms));
    return d;
  }

  static Deadline unbounded() noexcept { return Deadline{}; }

  [[nodiscard]] bool expired() const noexcept {
    return bounded_ && Stopwatch::clock::now() >= end_;
  }

  [[nodiscard]] bool bounded() const noexcept { return bounded_; }

  /// Remaining milliseconds; +inf for unbounded, clamped at 0 when expired.
  [[nodiscard]] double remaining_ms() const noexcept {
    if (!bounded_) return std::numeric_limits<double>::infinity();
    const auto left = std::chrono::duration<double, std::milli>(
        end_ - Stopwatch::clock::now());
    return left.count() > 0 ? left.count() : 0.0;
  }

 private:
  bool bounded_ = false;
  Stopwatch::clock::time_point end_{};
};

}  // namespace gridsched
