// Deterministic random number generation for gridsched.
//
// All stochastic components of the library (instance generation, population
// initialization, evolutionary operators, the simulator) draw from an
// explicitly threaded `Rng` instance rather than global state, so every run
// is bitwise reproducible from a single 64-bit seed, and independent streams
// (e.g. per parallel run) are derived with `split()`.
//
// The generator is xoshiro256** (Blackman & Vigna), seeded through
// SplitMix64; both are public-domain algorithms re-implemented here so the
// library has zero external dependencies and identical output on every
// platform (std::mt19937 distributions are not portable across standard
// library implementations).
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

namespace gridsched {

/// SplitMix64 step: used for seeding and for deriving child stream seeds.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Deterministic, splittable pseudo-random generator (xoshiro256**).
///
/// Satisfies the C++ UniformRandomBitGenerator requirements, but the
/// distribution helpers below should be preferred over <random>
/// distributions for cross-platform reproducibility.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four-word state via SplitMix64 from a single 64-bit seed.
  explicit Rng(std::uint64_t seed = 0x9d2c5680aull) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~result_type{0}; }

  /// Next 64 random bits.
  result_type operator()() noexcept;

  /// Derives an independent child stream. Children produced by successive
  /// calls are distinct, and the parent's sequence is advanced so that
  /// interleaving splits with draws stays deterministic.
  [[nodiscard]] Rng split() noexcept;

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  [[nodiscard]] int uniform_int(int lo, int hi) noexcept;

  /// Uniform 64-bit value in [0, n) using Lemire's unbiased method.
  [[nodiscard]] std::uint64_t bounded(std::uint64_t n) noexcept;

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo = 0.0, double hi = 1.0) noexcept;

  /// Bernoulli trial with success probability p.
  [[nodiscard]] bool chance(double p) noexcept;

  /// Exponentially distributed value with the given rate (mean 1/rate).
  [[nodiscard]] double exponential(double rate) noexcept;

  /// Standard normal via Box-Muller (deterministic, no cached spare).
  [[nodiscard]] double normal(double mean = 0.0, double stddev = 1.0) noexcept;

  /// Gamma(shape, scale) via Marsaglia-Tsang squeeze; mean = shape * scale.
  /// Requires shape > 0 and scale > 0.
  [[nodiscard]] double gamma(double shape, double scale) noexcept;

  /// Fisher-Yates shuffle of a span.
  template <typename T>
  void shuffle(std::span<T> items) noexcept {
    for (std::size_t i = items.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(bounded(i));
      std::swap(items[i - 1], items[j]);
    }
  }

  /// Returns a random permutation of {0, 1, ..., n-1}.
  [[nodiscard]] std::vector<int> permutation(int n);

  /// Picks a uniformly random element of a non-empty span.
  template <typename T>
  [[nodiscard]] const T& pick(std::span<const T> items) noexcept {
    return items[static_cast<std::size_t>(bounded(items.size()))];
  }

 private:
  std::array<std::uint64_t, 4> state_{};
};

}  // namespace gridsched
