// A small fixed-size thread pool with task-group completion tracking.
//
// Used by the experiment harness to run independent algorithm repetitions in
// parallel (each with its own split RNG stream), by the synchronous cMA
// variant to evaluate cell offspring concurrently, by the portfolio
// scheduler to race batch schedulers against each other, and by the sharded
// service to overlap whole shard activations. Tasks are plain std::function
// jobs; exceptions thrown by tasks are captured and surfaced — by
// wait_idle() for plain submissions and by TaskGroup::wait() for group
// submissions — so failures are never silently swallowed, including when
// SEVERAL tasks of the same wave fail (see TaskGroupError).
//
// A TaskGroup is a handle minted by make_group(): tasks submitted through
// `submit(group, fn)` are tracked per group, `group.wait()` blocks until
// exactly that group's tasks are done, and a waiting thread HELPS — it runs
// its own group's queued tasks instead of sleeping — so a task running on
// the pool may itself submit a subgroup and wait on it without
// deadlocking, even on a one-thread pool. That is what lets N portfolio
// races share one pool concurrently: each race waits on its own group
// instead of draining the whole pool.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

namespace gridsched {

class ThreadPool;

/// Thrown when more than one task of a wave (a whole-pool wait_idle() wave
/// or one TaskGroup) failed: carries every captured exception, in capture
/// order, so concurrent failures are never dropped. A single failure is
/// rethrown as its original type instead.
class TaskGroupError : public std::runtime_error {
 public:
  explicit TaskGroupError(std::vector<std::exception_ptr> errors);

  /// All captured task exceptions (size >= 2), first failure first.
  [[nodiscard]] const std::vector<std::exception_ptr>& errors()
      const noexcept {
    return errors_;
  }

 private:
  std::vector<std::exception_ptr> errors_;
};

/// Handle to an independently waitable set of pool tasks. Mint one with
/// ThreadPool::make_group(), submit through ThreadPool::submit(group, fn),
/// then wait(). Reusable across waves (wait() wipes the error slate); must
/// not outlive its pool while tasks are pending. Failures of one group
/// never surface in another group's wait() nor in wait_idle().
///
/// Threading contract: submissions must happen-before the wait() they are
/// covered by — from the waiting thread itself, or from within one of the
/// group's own running tasks (fan-out; the submitter's completion re-arms
/// the waiter). An unrelated thread racing submit(group, ...) against
/// wait() is not supported.
class TaskGroup {
 public:
  /// Blocks until every task submitted to this group completed, running
  /// the group's queued tasks on the calling thread while it waits (it
  /// never steals other groups' work — a stolen long-runner would stall
  /// this wait past its own group's finish). If exactly one task failed,
  /// rethrows that
  /// exception as its original type; if several failed, throws
  /// TaskGroupError with all of them. Either way the group's error slate
  /// is wiped and the group stays reusable.
  void wait();

  /// Tasks submitted to the group and not yet completed (diagnostics).
  [[nodiscard]] std::size_t pending() const;

 private:
  friend class ThreadPool;

  struct State {
    std::mutex mutex;
    std::condition_variable done;
    std::size_t pending = 0;
    std::vector<std::exception_ptr> errors;
  };

  explicit TaskGroup(ThreadPool& pool)
      : pool_(&pool), state_(std::make_shared<State>()) {}

  ThreadPool* pool_;
  std::shared_ptr<State> state_;
};

class ThreadPool {
 public:
  /// Spawns `threads` workers (defaults to hardware concurrency, minimum 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueues a task for execution. Errors surface in wait_idle().
  void submit(std::function<void()> task);

  /// Mints a group handle for independently waitable submissions.
  [[nodiscard]] TaskGroup make_group();

  /// Enqueues a task tracked by `group`. Errors surface in group.wait()
  /// only — never in wait_idle() or another group's wait.
  void submit(TaskGroup& group, std::function<void()> task);

  /// Blocks until the queue is empty and all workers are idle — the
  /// whole-pool wrapper over every in-flight task, group or not. If
  /// exactly one plain-submitted task failed since the previous
  /// wait_idle(), rethrows that exception as its original type; if several
  /// failed concurrently, throws TaskGroupError carrying all of them in
  /// capture order. Either way the error slate is wiped and the pool stays
  /// usable. Group-submitted failures are NOT reported here; they belong
  /// to their group's wait().
  void wait_idle();

  /// Runs fn(i) for i in [0, n), distributing indices over the pool, and
  /// blocks until all complete; the calling thread takes a lane too. `fn`
  /// must be safe to call concurrently. Runs in its own task group, so
  /// concurrent parallel_for calls on a shared pool wait independently.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  /// A queued task, tagged with its group so helping waiters can pick
  /// their own group's work first (null for plain submissions).
  struct QueuedTask {
    std::function<void()> fn;
    const TaskGroup::State* group = nullptr;
  };

  void worker_loop();
  void enqueue(QueuedTask task);
  /// Pops and runs one queued task — restricted to `only`'s tasks when
  /// given — with full active/idle/error accounting. Returns false when
  /// nothing eligible was queued.
  bool run_one_queued_task(const TaskGroup::State* only);
  /// The helping wait: runs queued tasks until `state.pending == 0`,
  /// sleeping only while the group's tasks are all running on other
  /// threads.
  void help_until_done(TaskGroup::State& state);

  friend class TaskGroup;

  std::vector<std::thread> workers_;
  std::deque<QueuedTask> queue_;
  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable idle_;
  std::size_t active_ = 0;
  bool stopping_ = false;
  std::vector<std::exception_ptr> errors_;  // plain-task failures since last wait
};

}  // namespace gridsched
