// A small fixed-size thread pool.
//
// Used by the experiment harness to run independent algorithm repetitions in
// parallel (each with its own split RNG stream), and by the synchronous cMA
// variant to evaluate cell offspring concurrently. Tasks are plain
// std::function jobs; exceptions thrown by a task are captured and rethrown
// from wait_idle() so failures are never silently swallowed.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace gridsched {

class ThreadPool {
 public:
  /// Spawns `threads` workers (defaults to hardware concurrency, minimum 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueues a task for execution.
  void submit(std::function<void()> task);

  /// Blocks until the queue is empty and all workers are idle. Rethrows the
  /// first exception raised by any task since the previous wait_idle().
  void wait_idle();

  /// Runs fn(i) for i in [0, n), distributing indices over the pool, and
  /// blocks until all complete. `fn` must be safe to call concurrently.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable idle_;
  std::size_t active_ = 0;
  bool stopping_ = false;
  std::exception_ptr first_error_;
};

}  // namespace gridsched
