// A small fixed-size thread pool.
//
// Used by the experiment harness to run independent algorithm repetitions in
// parallel (each with its own split RNG stream), by the synchronous cMA
// variant to evaluate cell offspring concurrently, and by the portfolio
// scheduler to race batch schedulers against each other. Tasks are plain
// std::function jobs; exceptions thrown by tasks are captured and surfaced
// by wait_idle() so failures are never silently swallowed — including when
// SEVERAL tasks of the same wave fail (see wait_idle).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

namespace gridsched {

/// Thrown by ThreadPool::wait_idle() when more than one task failed since
/// the previous wait: carries every captured exception, in capture order,
/// so concurrent failures are never dropped. A single failure is rethrown
/// as its original type instead.
class TaskGroupError : public std::runtime_error {
 public:
  explicit TaskGroupError(std::vector<std::exception_ptr> errors);

  /// All captured task exceptions (size >= 2), first failure first.
  [[nodiscard]] const std::vector<std::exception_ptr>& errors()
      const noexcept {
    return errors_;
  }

 private:
  std::vector<std::exception_ptr> errors_;
};

class ThreadPool {
 public:
  /// Spawns `threads` workers (defaults to hardware concurrency, minimum 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueues a task for execution.
  void submit(std::function<void()> task);

  /// Blocks until the queue is empty and all workers are idle. If exactly
  /// one task failed since the previous wait_idle(), rethrows that
  /// exception as its original type; if several failed concurrently, throws
  /// TaskGroupError carrying all of them in capture order. Either way the
  /// error slate is wiped and the pool stays usable.
  void wait_idle();

  /// Runs fn(i) for i in [0, n), distributing indices over the pool, and
  /// blocks until all complete. `fn` must be safe to call concurrently.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable idle_;
  std::size_t active_ = 0;
  bool stopping_ = false;
  std::vector<std::exception_ptr> errors_;  // all failures since last wait
};

}  // namespace gridsched
