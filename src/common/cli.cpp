#include "common/cli.h"

#include <iostream>
#include <sstream>
#include <stdexcept>

namespace gridsched {

CliParser::CliParser(std::string program_summary)
    : summary_(std::move(program_summary)) {
  flag("help", "false", "print this help text and exit");
}

CliParser& CliParser::flag(const std::string& name,
                           const std::string& default_value,
                           const std::string& help) {
  if (options_.emplace(name, Option{default_value, default_value, help}).second) {
    order_.push_back(name);
  }
  return *this;
}

bool CliParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      throw std::invalid_argument("unexpected positional argument: " + arg +
                                  "\n" + help_text());
    }
    arg.erase(0, 2);
    std::string value;
    bool has_value = false;
    if (const auto eq = arg.find('='); eq != std::string::npos) {
      value = arg.substr(eq + 1);
      arg.erase(eq);
      has_value = true;
    }
    const auto it = options_.find(arg);
    if (it == options_.end()) {
      throw std::invalid_argument("unknown flag --" + arg + "\n" + help_text());
    }
    if (!has_value) {
      // Boolean flags may omit the value; others consume the next token.
      const bool looks_bool = it->second.default_value == "true" ||
                              it->second.default_value == "false";
      if (looks_bool) {
        value = "true";
      } else if (i + 1 < argc) {
        value = argv[++i];
      } else {
        throw std::invalid_argument("flag --" + arg + " expects a value");
      }
    }
    it->second.value = value;
  }
  if (get_bool("help")) {
    std::cout << help_text();
    return false;
  }
  return true;
}

std::string CliParser::get(const std::string& name) const {
  const auto it = options_.find(name);
  if (it == options_.end()) {
    throw std::invalid_argument("flag --" + name + " was never registered");
  }
  return it->second.value;
}

long long CliParser::get_int(const std::string& name) const {
  return std::stoll(get(name));
}

double CliParser::get_double(const std::string& name) const {
  return std::stod(get(name));
}

bool CliParser::get_bool(const std::string& name) const {
  const std::string v = get(name);
  return v == "true" || v == "1" || v == "yes" || v == "on";
}

std::string CliParser::help_text() const {
  std::ostringstream out;
  out << summary_ << "\n\nOptions:\n";
  for (const auto& name : order_) {
    const auto& opt = options_.at(name);
    out << "  --" << name;
    if (opt.default_value != "true" && opt.default_value != "false") {
      out << " <value>";
    }
    out << "  (default: " << opt.default_value << ")\n      " << opt.help
        << "\n";
  }
  return out.str();
}

}  // namespace gridsched
