#include "etc/instance.h"

#include <algorithm>
#include <stdexcept>

namespace gridsched {
namespace {

char consistency_code(Consistency c) {
  switch (c) {
    case Consistency::kConsistent: return 'c';
    case Consistency::kInconsistent: return 'i';
    case Consistency::kSemiConsistent: return 's';
  }
  return '?';
}

std::string heterogeneity_code(Heterogeneity h) {
  return h == Heterogeneity::kHigh ? "hi" : "lo";
}

/// Stable 64-bit hash of the class identity, used to derive per-class seeds
/// so that "the canonical u_c_hihi.0" is the same matrix in every binary.
std::uint64_t class_seed(const InstanceSpec& spec, int k) {
  std::uint64_t h = 0x6a09e667f3bcc908ULL;
  auto mix = [&h](std::uint64_t v) {
    h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    h = splitmix64(h);
  };
  mix(static_cast<std::uint64_t>(spec.num_jobs));
  mix(static_cast<std::uint64_t>(spec.num_machines));
  mix(static_cast<std::uint64_t>(consistency_code(spec.consistency)));
  mix(spec.job_heterogeneity == Heterogeneity::kHigh ? 2u : 1u);
  mix(spec.machine_heterogeneity == Heterogeneity::kHigh ? 2u : 1u);
  mix(static_cast<std::uint64_t>(k));
  return h;
}

}  // namespace

std::string InstanceSpec::name(int k) const {
  std::string label = "u_";
  label += consistency_code(consistency);
  label += '_';
  label += heterogeneity_code(job_heterogeneity);
  label += heterogeneity_code(machine_heterogeneity);
  label += '.';
  label += std::to_string(k);
  return label;
}

std::optional<InstanceSpec> parse_instance_name(const std::string& label) {
  // Expected shape: u_<c|i|s>_<hi|lo><hi|lo>.<k>
  if (label.size() < 10 || label.rfind("u_", 0) != 0 || label[3] != '_') {
    return std::nullopt;
  }
  InstanceSpec spec;
  switch (label[2]) {
    case 'c': spec.consistency = Consistency::kConsistent; break;
    case 'i': spec.consistency = Consistency::kInconsistent; break;
    case 's': spec.consistency = Consistency::kSemiConsistent; break;
    default: return std::nullopt;
  }
  const std::string jobs_code = label.substr(4, 2);
  const std::string machines_code = label.substr(6, 2);
  auto parse_het = [](const std::string& code) -> std::optional<Heterogeneity> {
    if (code == "hi") return Heterogeneity::kHigh;
    if (code == "lo") return Heterogeneity::kLow;
    return std::nullopt;
  };
  const auto job_het = parse_het(jobs_code);
  const auto machine_het = parse_het(machines_code);
  if (!job_het || !machine_het || label[8] != '.') return std::nullopt;
  for (std::size_t i = 9; i < label.size(); ++i) {
    if (label[i] < '0' || label[i] > '9') return std::nullopt;
  }
  spec.job_heterogeneity = *job_het;
  spec.machine_heterogeneity = *machine_het;
  return spec;
}

std::array<InstanceSpec, 12> braun_benchmark_suite() {
  std::array<InstanceSpec, 12> suite;
  int idx = 0;
  for (Consistency c : {Consistency::kConsistent, Consistency::kInconsistent,
                        Consistency::kSemiConsistent}) {
    for (auto [job_h, mach_h] :
         {std::pair{Heterogeneity::kHigh, Heterogeneity::kHigh},
          std::pair{Heterogeneity::kHigh, Heterogeneity::kLow},
          std::pair{Heterogeneity::kLow, Heterogeneity::kHigh},
          std::pair{Heterogeneity::kLow, Heterogeneity::kLow}}) {
      suite[static_cast<std::size_t>(idx)] = InstanceSpec{
          .consistency = c, .job_heterogeneity = job_h,
          .machine_heterogeneity = mach_h};
      ++idx;
    }
  }
  // Reorder within each consistency block to the paper's hihi, hilo, lohi,
  // lolo sequence (already the pair order above) -- nothing further to do.
  return suite;
}

EtcMatrix generate_instance(const InstanceSpec& spec) {
  return generate_instance(spec, 0);
}

EtcMatrix generate_instance(const InstanceSpec& spec, int k) {
  if (spec.num_jobs <= 0 || spec.num_machines <= 0) {
    throw std::invalid_argument("generate_instance: bad shape");
  }
  const std::uint64_t seed =
      spec.seed != 0 ? spec.seed + static_cast<std::uint64_t>(k)
                     : class_seed(spec, k);
  Rng rng(seed);

  const double phi_job = job_range_bound(spec.job_heterogeneity);
  const double phi_mach = machine_range_bound(spec.machine_heterogeneity);

  EtcMatrix etc(spec.num_jobs, spec.num_machines);
  // Range-based method: baseline vector B(i) ~ U(1, phi_job); each row is
  // B(i) scaled by independent machine factors U(1, phi_mach).
  for (JobId j = 0; j < spec.num_jobs; ++j) {
    const double baseline = rng.uniform(1.0, phi_job);
    for (MachineId m = 0; m < spec.num_machines; ++m) {
      etc.set(j, m, baseline * rng.uniform(1.0, phi_mach));
    }
  }

  // Impose the consistency structure by partially sorting rows.
  if (spec.consistency == Consistency::kConsistent) {
    std::vector<double> row(static_cast<std::size_t>(spec.num_machines));
    for (JobId j = 0; j < spec.num_jobs; ++j) {
      for (MachineId m = 0; m < spec.num_machines; ++m) {
        row[static_cast<std::size_t>(m)] = etc(j, m);
      }
      std::sort(row.begin(), row.end());
      for (MachineId m = 0; m < spec.num_machines; ++m) {
        etc.set(j, m, row[static_cast<std::size_t>(m)]);
      }
    }
  } else if (spec.consistency == Consistency::kSemiConsistent) {
    // Even-indexed columns form the consistent sub-matrix.
    std::vector<double> evens;
    for (JobId j = 0; j < spec.num_jobs; ++j) {
      evens.clear();
      for (MachineId m = 0; m < spec.num_machines; m += 2) {
        evens.push_back(etc(j, m));
      }
      std::sort(evens.begin(), evens.end());
      std::size_t idx = 0;
      for (MachineId m = 0; m < spec.num_machines; m += 2) {
        etc.set(j, m, evens[idx++]);
      }
    }
  }
  return etc;
}

}  // namespace gridsched
