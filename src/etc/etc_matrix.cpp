#include "etc/etc_matrix.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace gridsched {

EtcMatrix::EtcMatrix(int num_jobs, int num_machines)
    : num_jobs_(num_jobs), num_machines_(num_machines) {
  // Validate before sizing the vectors: a negative dimension cast to
  // size_t would otherwise surface as an obscure std::length_error.
  if (num_jobs <= 0 || num_machines <= 0) {
    throw std::invalid_argument("EtcMatrix: dimensions must be positive");
  }
  values_.resize(static_cast<std::size_t>(num_jobs) *
                 static_cast<std::size_t>(num_machines));
  values_cm_.resize(values_.size());
  ready_times_.assign(static_cast<std::size_t>(num_machines), 0.0);
}

EtcMatrix::EtcMatrix(int num_jobs, int num_machines, std::vector<double> values)
    : EtcMatrix(num_jobs, num_machines) {
  if (values.size() != values_.size()) {
    throw std::invalid_argument("EtcMatrix: value count does not match shape");
  }
  values_ = std::move(values);
  rebuild_mirror();
}

void EtcMatrix::rebuild_mirror() {
  for (JobId j = 0; j < num_jobs_; ++j) {
    const std::size_t row_base = static_cast<std::size_t>(j) *
                                 static_cast<std::size_t>(num_machines_);
    for (MachineId m = 0; m < num_machines_; ++m) {
      values_cm_[static_cast<std::size_t>(m) *
                     static_cast<std::size_t>(num_jobs_) +
                 static_cast<std::size_t>(j)] = values_[row_base +
                                                        static_cast<std::size_t>(m)];
    }
  }
}

double EtcMatrix::mean_row(JobId job) const noexcept {
  const auto r = row(job);
  return std::accumulate(r.begin(), r.end(), 0.0) /
         static_cast<double>(r.size());
}

double EtcMatrix::min_row(JobId job) const noexcept {
  const auto r = row(job);
  return *std::min_element(r.begin(), r.end());
}

double EtcMatrix::total() const noexcept {
  return std::accumulate(values_.begin(), values_.end(), 0.0);
}

}  // namespace gridsched
