#include "etc/etc_matrix.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace gridsched {

EtcMatrix::EtcMatrix(int num_jobs, int num_machines)
    : num_jobs_(num_jobs), num_machines_(num_machines) {
  // Validate before sizing the vectors: a negative dimension cast to
  // size_t would otherwise surface as an obscure std::length_error.
  if (num_jobs <= 0 || num_machines <= 0) {
    throw std::invalid_argument("EtcMatrix: dimensions must be positive");
  }
  values_.resize(static_cast<std::size_t>(num_jobs) *
                 static_cast<std::size_t>(num_machines));
  ready_times_.assign(static_cast<std::size_t>(num_machines), 0.0);
}

EtcMatrix::EtcMatrix(int num_jobs, int num_machines, std::vector<double> values)
    : EtcMatrix(num_jobs, num_machines) {
  if (values.size() != values_.size()) {
    throw std::invalid_argument("EtcMatrix: value count does not match shape");
  }
  values_ = std::move(values);
}

double EtcMatrix::mean_row(JobId job) const noexcept {
  const auto r = row(job);
  return std::accumulate(r.begin(), r.end(), 0.0) /
         static_cast<double>(r.size());
}

double EtcMatrix::min_row(JobId job) const noexcept {
  const auto r = row(job);
  return *std::min_element(r.begin(), r.end());
}

double EtcMatrix::total() const noexcept {
  return std::accumulate(values_.begin(), values_.end(), 0.0);
}

}  // namespace gridsched
