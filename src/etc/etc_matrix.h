// The Expected Time to Compute (ETC) problem model of Braun et al. (2001).
//
// An instance of the batch scheduling problem is an ETC matrix: for every
// (job, machine) pair, the wall-clock time the job is expected to take on
// that machine, plus a per-machine ready time (when the machine finishes the
// work it already has). This is the only input the schedulers see.
#pragma once

#include <cassert>
#include <span>
#include <vector>

namespace gridsched {

using JobId = int;
using MachineId = int;

/// Dense ETC matrix with per-machine ready times. Stored twice: row-major
/// (job-major, the layout every per-job scan reads) and a machine-major
/// mirror (one contiguous column per machine), so per-machine reductions —
/// LJFR-SJFR's column means, load heat-maps, machine-axis statistics —
/// run over contiguous memory the compiler can vectorize instead of a
/// stride-m gather. Writes go through set(), which keeps both layouts
/// coherent; all reads are const, so a built matrix can be shared across
/// threads (the portfolio races do exactly that).
class EtcMatrix {
 public:
  EtcMatrix() = default;

  /// Creates a jobs x machines matrix initialized to zero, ready times zero.
  EtcMatrix(int num_jobs, int num_machines);

  /// Creates a matrix from row-major values (size must be jobs * machines).
  EtcMatrix(int num_jobs, int num_machines, std::vector<double> values);

  [[nodiscard]] int num_jobs() const noexcept { return num_jobs_; }
  [[nodiscard]] int num_machines() const noexcept { return num_machines_; }

  [[nodiscard]] double operator()(JobId job, MachineId machine) const noexcept {
    assert(job >= 0 && job < num_jobs_);
    assert(machine >= 0 && machine < num_machines_);
    return values_[static_cast<std::size_t>(job) *
                       static_cast<std::size_t>(num_machines_) +
                   static_cast<std::size_t>(machine)];
  }

  /// Writes one entry, updating both the row-major storage and the
  /// machine-major mirror (the reason there is no mutable operator()).
  void set(JobId job, MachineId machine, double value) noexcept {
    assert(job >= 0 && job < num_jobs_);
    assert(machine >= 0 && machine < num_machines_);
    values_[static_cast<std::size_t>(job) *
                static_cast<std::size_t>(num_machines_) +
            static_cast<std::size_t>(machine)] = value;
    values_cm_[static_cast<std::size_t>(machine) *
                   static_cast<std::size_t>(num_jobs_) +
               static_cast<std::size_t>(job)] = value;
  }

  /// The ETC row of one job across all machines.
  [[nodiscard]] std::span<const double> row(JobId job) const noexcept {
    assert(job >= 0 && job < num_jobs_);
    return {values_.data() + static_cast<std::size_t>(job) *
                                 static_cast<std::size_t>(num_machines_),
            static_cast<std::size_t>(num_machines_)};
  }

  /// The ETC column of one machine across all jobs, contiguous (from the
  /// machine-major mirror).
  [[nodiscard]] std::span<const double> machine_row(
      MachineId machine) const noexcept {
    assert(machine >= 0 && machine < num_machines_);
    return {values_cm_.data() + static_cast<std::size_t>(machine) *
                                    static_cast<std::size_t>(num_jobs_),
            static_cast<std::size_t>(num_jobs_)};
  }

  /// Ready time of `machine` (time at which it becomes free for this batch).
  [[nodiscard]] double ready_time(MachineId machine) const noexcept {
    return ready_times_[static_cast<std::size_t>(machine)];
  }

  void set_ready_time(MachineId machine, double t) noexcept {
    ready_times_[static_cast<std::size_t>(machine)] = t;
  }

  [[nodiscard]] std::span<const double> ready_times() const noexcept {
    return ready_times_;
  }

  /// Mean ETC of a job across machines. Used as the "workload" proxy for
  /// heuristics that order jobs by size (ETC-only instances carry no
  /// separate workload column); see DESIGN.md section 3.
  [[nodiscard]] double mean_row(JobId job) const noexcept;

  /// Smallest ETC of a job across machines.
  [[nodiscard]] double min_row(JobId job) const noexcept;

  /// Sum of all entries (useful for magnitude sanity checks in tests).
  [[nodiscard]] double total() const noexcept;

  [[nodiscard]] std::span<const double> raw() const noexcept { return values_; }

 private:
  /// Rebuilds the machine-major mirror from the row-major storage.
  void rebuild_mirror();

  int num_jobs_ = 0;
  int num_machines_ = 0;
  std::vector<double> values_;     // row-major: values_[job * m + machine]
  std::vector<double> values_cm_;  // machine-major: values_cm_[machine*n + job]
  std::vector<double> ready_times_;
};

}  // namespace gridsched
