// Coefficient-of-Variation-Based (CVB) ETC generation.
//
// The ETC-model literature (Ali, Siegel, Maheswaran, Hensgen; the method
// Braun et al. adopt alongside the range-based one) characterizes
// heterogeneity by coefficients of variation instead of range bounds:
//
//   q(i)       ~ Gamma(alpha_task, beta_task)     task baseline
//   ETC[i][j]  ~ Gamma(alpha_mach, q(i)/alpha_mach)
//   alpha_task = 1 / V_task^2,  beta_task = mean_task / alpha_task
//   alpha_mach = 1 / V_machine^2
//
// so E[ETC row i] = q(i) and the spread of rows/columns is set directly by
// V_task / V_machine. The paper's conclusions mention ongoing evaluation
// "using instances generated according to the ETC model"; this module
// provides that second generator, with the same consistency post-pass as
// the range-based one.
#pragma once

#include <cstdint>
#include <string>

#include "etc/instance.h"

namespace gridsched {

struct CvbInstanceSpec {
  int num_jobs = 512;
  int num_machines = 16;
  Consistency consistency = Consistency::kConsistent;
  /// Mean task execution time (the mu_task of the method).
  double task_mean = 1'000.0;
  /// Coefficient of variation across tasks; ~0.9 models high task
  /// heterogeneity, ~0.1 low (Ali et al.'s typical settings).
  double v_task = 0.9;
  /// Coefficient of variation across machines.
  double v_machine = 0.9;
  std::uint64_t seed = 1;

  /// Label in the spirit of the benchmark's, e.g. "cvb_c_90_10".
  [[nodiscard]] std::string name() const;
};

/// Generates a CVB instance. Deterministic in the spec.
[[nodiscard]] EtcMatrix generate_cvb_instance(const CvbInstanceSpec& spec);

}  // namespace gridsched
