#include "etc/instance_io.h"

#include <fstream>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace gridsched {

void write_instance(std::ostream& out, const EtcMatrix& etc) {
  out << etc.num_jobs() << ' ' << etc.num_machines() << '\n';
  out << std::setprecision(17);
  for (JobId j = 0; j < etc.num_jobs(); ++j) {
    for (MachineId m = 0; m < etc.num_machines(); ++m) {
      out << etc(j, m) << (m + 1 == etc.num_machines() ? '\n' : ' ');
    }
  }
  bool any_ready = false;
  for (double r : etc.ready_times()) any_ready |= (r != 0.0);
  if (any_ready) {
    out << "ready:";
    for (double r : etc.ready_times()) out << ' ' << r;
    out << '\n';
  }
  if (!out) throw std::runtime_error("write_instance: stream failure");
}

void save_instance(const std::string& path, const EtcMatrix& etc) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("save_instance: cannot open " + path);
  write_instance(out, etc);
}

EtcMatrix read_instance(std::istream& in) {
  int jobs = 0;
  int machines = 0;
  if (!(in >> jobs >> machines) || jobs <= 0 || machines <= 0) {
    throw std::runtime_error("read_instance: malformed header");
  }
  std::vector<double> values;
  values.reserve(static_cast<std::size_t>(jobs) *
                 static_cast<std::size_t>(machines));
  for (std::size_t i = 0,
                   n = static_cast<std::size_t>(jobs) *
                       static_cast<std::size_t>(machines);
       i < n; ++i) {
    double v = 0.0;
    if (!(in >> v)) {
      throw std::runtime_error("read_instance: expected " + std::to_string(n) +
                               " ETC values, got " + std::to_string(i));
    }
    if (v < 0.0) throw std::runtime_error("read_instance: negative ETC value");
    values.push_back(v);
  }
  EtcMatrix etc(jobs, machines, std::move(values));

  std::string tag;
  if (in >> tag) {
    if (tag != "ready:") {
      throw std::runtime_error("read_instance: unexpected trailing token '" +
                               tag + "'");
    }
    for (MachineId m = 0; m < machines; ++m) {
      double r = 0.0;
      if (!(in >> r)) {
        throw std::runtime_error("read_instance: truncated ready-time line");
      }
      etc.set_ready_time(m, r);
    }
  }
  return etc;
}

EtcMatrix load_instance(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("load_instance: cannot open " + path);
  return read_instance(in);
}

}  // namespace gridsched
