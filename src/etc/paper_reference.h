// Reference values published in the paper (Tables 2-5).
//
// The bench harness prints these next to our measured numbers so the reader
// can check the *shape* of each comparison (who wins, by roughly what
// factor) without claiming absolute equality: our instances are fresh
// samples of the same Braun classes, not the authors' exact data files
// (DESIGN.md section 3).
#pragma once

#include <array>
#include <optional>
#include <string_view>

namespace gridsched {

/// One row spanning the paper's Tables 2-5 for a benchmark instance.
struct PaperRow {
  std::string_view instance;      // e.g. "u_c_hihi.0"
  double braun_ga_makespan;       // Table 2, col 2
  double cma_makespan;            // Table 2/3, cMA column
  double cx_ga_makespan;          // Table 3, Carretero & Xhafa GA
  double struggle_ga_makespan;    // Table 3, Struggle GA
  double ljfr_sjfr_flowtime;      // Table 4, col 2
  double cma_flowtime;            // Table 4/5, cMA column
  double struggle_ga_flowtime;    // Table 5, col 2
};

/// All 12 rows in the paper's order (c, i, s) x (hihi, hilo, lohi, lolo).
[[nodiscard]] const std::array<PaperRow, 12>& paper_reference_rows();

/// Looks a row up by instance label; nullopt if the label is not in the
/// benchmark.
[[nodiscard]] std::optional<PaperRow> paper_reference(std::string_view label);

}  // namespace gridsched
