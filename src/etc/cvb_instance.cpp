#include "etc/cvb_instance.h"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "common/rng.h"

namespace gridsched {

std::string CvbInstanceSpec::name() const {
  auto code = [](Consistency c) {
    switch (c) {
      case Consistency::kConsistent: return 'c';
      case Consistency::kInconsistent: return 'i';
      case Consistency::kSemiConsistent: return 's';
    }
    return '?';
  };
  std::string label = "cvb_";
  label += code(consistency);
  label += '_' + std::to_string(static_cast<int>(v_task * 100));
  label += '_' + std::to_string(static_cast<int>(v_machine * 100));
  return label;
}

EtcMatrix generate_cvb_instance(const CvbInstanceSpec& spec) {
  if (spec.num_jobs <= 0 || spec.num_machines <= 0) {
    throw std::invalid_argument("generate_cvb_instance: bad shape");
  }
  if (spec.task_mean <= 0 || spec.v_task <= 0 || spec.v_machine <= 0) {
    throw std::invalid_argument(
        "generate_cvb_instance: mean and CVs must be positive");
  }
  Rng rng(spec.seed);

  const double alpha_task = 1.0 / (spec.v_task * spec.v_task);
  const double beta_task = spec.task_mean / alpha_task;
  const double alpha_mach = 1.0 / (spec.v_machine * spec.v_machine);

  EtcMatrix etc(spec.num_jobs, spec.num_machines);
  for (JobId j = 0; j < spec.num_jobs; ++j) {
    const double q = rng.gamma(alpha_task, beta_task);
    const double beta_mach = q / alpha_mach;
    for (MachineId m = 0; m < spec.num_machines; ++m) {
      etc.set(j, m, rng.gamma(alpha_mach, beta_mach));
    }
  }

  // Same consistency post-pass as the range-based generator.
  if (spec.consistency == Consistency::kConsistent) {
    std::vector<double> row(static_cast<std::size_t>(spec.num_machines));
    for (JobId j = 0; j < spec.num_jobs; ++j) {
      for (MachineId m = 0; m < spec.num_machines; ++m) {
        row[static_cast<std::size_t>(m)] = etc(j, m);
      }
      std::sort(row.begin(), row.end());
      for (MachineId m = 0; m < spec.num_machines; ++m) {
        etc.set(j, m, row[static_cast<std::size_t>(m)]);
      }
    }
  } else if (spec.consistency == Consistency::kSemiConsistent) {
    std::vector<double> evens;
    for (JobId j = 0; j < spec.num_jobs; ++j) {
      evens.clear();
      for (MachineId m = 0; m < spec.num_machines; m += 2) {
        evens.push_back(etc(j, m));
      }
      std::sort(evens.begin(), evens.end());
      std::size_t idx = 0;
      for (MachineId m = 0; m < spec.num_machines; m += 2) {
        etc.set(j, m, evens[idx++]);
      }
    }
  }
  return etc;
}

}  // namespace gridsched
