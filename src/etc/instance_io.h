// Text serialization of ETC instances.
//
// The on-disk format matches the classic Braun benchmark distribution: the
// first line holds `num_jobs num_machines`, followed by num_jobs*num_machines
// whitespace-separated ETC values in row-major (job-major) order. An optional
// trailing line `ready: r0 r1 ...` carries non-zero ready times (an extension
// of ours; absent for pure Braun files).
#pragma once

#include <iosfwd>
#include <string>

#include "etc/etc_matrix.h"

namespace gridsched {

/// Writes an instance to a stream. Throws std::runtime_error on I/O failure.
void write_instance(std::ostream& out, const EtcMatrix& etc);

/// Writes an instance to `path` (truncates).
void save_instance(const std::string& path, const EtcMatrix& etc);

/// Reads an instance from a stream. Throws std::runtime_error on malformed
/// input (bad header, missing values, non-numeric tokens).
[[nodiscard]] EtcMatrix read_instance(std::istream& in);

/// Reads an instance from `path`.
[[nodiscard]] EtcMatrix load_instance(const std::string& path);

}  // namespace gridsched
