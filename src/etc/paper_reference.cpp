#include "etc/paper_reference.h"

namespace gridsched {

const std::array<PaperRow, 12>& paper_reference_rows() {
  // Values transcribed from Tables 2, 3, 4 and 5 of the paper. The
  // u_s_hilo.0 Carretero&Xhafa makespan is printed as 983334.64 in Table 3,
  // an obvious typo for 98334.64 (an order of magnitude above every other
  // algorithm on that instance); we keep the printed value and flag it in
  // EXPERIMENTS.md rather than silently correcting the source.
  static const std::array<PaperRow, 12> rows = {{
      {"u_c_hihi.0", 8050844.5, 7700929.751, 7752349.37, 7752689.08,
       2025822398.665, 1037049914.209, 1039048563.0},
      {"u_c_hilo.0", 156249.2, 155334.805, 155571.80, 156680.58,
       35565379.565, 27487998.874, 27620519.9},
      {"u_c_lohi.0", 258756.77, 251360.202, 250550.86, 253926.06,
       66300486.264, 34454029.416, 34566883.8},
      {"u_c_lolo.0", 5272.25, 5218.18, 5240.14, 5251.15,
       1175661.381, 913976.235, 917647.31},
      {"u_i_hihi.0", 3104762.5, 3186664.713, 3080025.77, 3161104.92,
       3665062510.364, 361613627.327, 379768078.0},
      {"u_i_hilo.0", 75816.13, 75856.623, 76307.90, 75598.48,
       41345273.211, 12572126.577, 12674329.1},
      {"u_i_lohi.0", 107500.72, 110620.786, 107294.23, 111792.17,
       118925452.958, 12707611.511, 13417596.7},
      {"u_i_lolo.0", 2614.39, 2624.211, 2610.23, 2620.72,
       1385846.186, 439073.652, 440728.98},
      {"u_s_hihi.0", 4566206.0, 4424540.894, 4371324.45, 4433792.28,
       2631459406.501, 513769399.117, 524874694.0},
      {"u_s_hilo.0", 98519.4, 98283.742, 983334.64, 98560.04,
       35745658.309, 16300484.885, 16372763.2},
      {"u_s_lohi.0", 130616.53, 130014.529, 127762.53, 130425.85,
       86390552.327, 15179363.456, 15639622.5},
      {"u_s_lolo.0", 3583.44, 3522.099, 3539.43, 3534.31,
       1389828.755, 594665.973, 598332.69},
  }};
  return rows;
}

std::optional<PaperRow> paper_reference(std::string_view label) {
  for (const auto& row : paper_reference_rows()) {
    if (row.instance == label) return row;
  }
  return std::nullopt;
}

}  // namespace gridsched
