// Braun-et-al.-style benchmark instance specification and generator.
//
// The paper evaluates on the 12-class benchmark of Braun et al. (JPDC 2001):
// `u_x_yyzz.k` where x in {c,i,s} is the consistency class, yy/zz in
// {hi,lo} are job and machine heterogeneity, all 512 jobs x 16 machines,
// entries drawn with the range-based method under a uniform distribution.
//
// The original data files are not redistributable, so this module implements
// the same generative process (DESIGN.md section 3): a canonical instance of
// each class is obtained with a fixed per-class seed, playing the role of
// the `.0` file of that class.
#pragma once

#include <array>
#include <optional>
#include <string>

#include "common/rng.h"
#include "etc/etc_matrix.h"

namespace gridsched {

/// ETC consistency class (Braun et al. section on matrix structure).
enum class Consistency {
  kConsistent,      // machine that is faster for one job is faster for all
  kInconsistent,    // no structure
  kSemiConsistent,  // a consistent sub-matrix (even-indexed columns)
};

/// Heterogeneity level of the job or machine dimension.
enum class Heterogeneity { kLow, kHigh };

/// Upper bounds of the uniform ranges in the range-based method.
/// Braun et al.: job baseline ~ U(1, phi_b), column multiplier ~ U(1, phi_r).
[[nodiscard]] constexpr double job_range_bound(Heterogeneity h) noexcept {
  return h == Heterogeneity::kHigh ? 3000.0 : 100.0;
}
[[nodiscard]] constexpr double machine_range_bound(Heterogeneity h) noexcept {
  return h == Heterogeneity::kHigh ? 1000.0 : 10.0;
}

/// Full description of one benchmark instance.
struct InstanceSpec {
  int num_jobs = 512;
  int num_machines = 16;
  Consistency consistency = Consistency::kConsistent;
  Heterogeneity job_heterogeneity = Heterogeneity::kHigh;
  Heterogeneity machine_heterogeneity = Heterogeneity::kHigh;
  std::uint64_t seed = 0;  // 0 means "derive from the class name"

  /// Braun-style label, e.g. "u_c_hihi.0". The trailing index is always 0
  /// for canonical instances; `k` tags re-sampled replicas.
  [[nodiscard]] std::string name(int k = 0) const;
};

/// Parses a Braun-style label ("u_c_hihi.0", "u_s_lohi.3") into a spec with
/// the default 512x16 shape. Returns nullopt if the label is malformed.
[[nodiscard]] std::optional<InstanceSpec> parse_instance_name(
    const std::string& label);

/// The 12 canonical benchmark classes in the paper's table order:
/// consistent, inconsistent, semi-consistent x {hihi, hilo, lohi, lolo}.
[[nodiscard]] std::array<InstanceSpec, 12> braun_benchmark_suite();

/// Generates the ETC matrix for a spec. Deterministic: the same spec always
/// yields the same matrix. Ready times are zero (batch of fresh machines),
/// matching the benchmark; dynamic scenarios set them afterwards.
[[nodiscard]] EtcMatrix generate_instance(const InstanceSpec& spec);

/// Same, with an explicit replica index k (k = 0 is the canonical instance).
[[nodiscard]] EtcMatrix generate_instance(const InstanceSpec& spec, int k);

}  // namespace gridsched
