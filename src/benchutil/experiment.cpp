#include "benchutil/experiment.h"

#include <stdexcept>

namespace gridsched {

MultiRunResult aggregate_runs(std::vector<EvolutionResult> runs) {
  if (runs.empty()) {
    throw std::invalid_argument("aggregate_runs: no runs");
  }
  MultiRunResult result;
  result.runs = std::move(runs);

  std::vector<double> makespans;
  std::vector<double> flowtimes;
  std::vector<double> fitnesses;
  for (std::size_t i = 0; i < result.runs.size(); ++i) {
    const auto& best = result.runs[i].best;
    makespans.push_back(best.objectives.makespan);
    flowtimes.push_back(best.objectives.flowtime);
    fitnesses.push_back(best.fitness);
    if (best.fitness < result.runs[result.best_run].best.fitness) {
      result.best_run = i;
    }
  }
  result.makespan = summarize(makespans);
  result.flowtime = summarize(flowtimes);
  result.fitness = summarize(fitnesses);
  return result;
}

MultiRunResult run_many(int runs, std::uint64_t seed0,
                        const SeededRun& run_with_seed, ThreadPool* pool) {
  if (runs <= 0) throw std::invalid_argument("run_many: runs must be > 0");
  std::vector<EvolutionResult> results(static_cast<std::size_t>(runs));

  auto one = [&](std::size_t i) {
    results[i] = run_with_seed(seed0 + 1 + static_cast<std::uint64_t>(i));
  };
  if (pool != nullptr) {
    pool->parallel_for(static_cast<std::size_t>(runs), one);
  } else {
    for (std::size_t i = 0; i < static_cast<std::size_t>(runs); ++i) one(i);
  }
  return aggregate_runs(std::move(results));
}

std::vector<MultiRunResult> run_matrix(const std::vector<SeededRun>& jobs,
                                       int runs, std::uint64_t seed0,
                                       ThreadPool& pool) {
  if (runs <= 0) throw std::invalid_argument("run_matrix: runs must be > 0");
  std::vector<std::vector<EvolutionResult>> grid(
      jobs.size(), std::vector<EvolutionResult>(static_cast<std::size_t>(runs)));
  pool.parallel_for(jobs.size() * static_cast<std::size_t>(runs),
                    [&](std::size_t index) {
                      const std::size_t j = index / static_cast<std::size_t>(runs);
                      const std::size_t r = index % static_cast<std::size_t>(runs);
                      grid[j][r] =
                          jobs[j](seed0 + 1 + static_cast<std::uint64_t>(r));
                    });
  std::vector<MultiRunResult> results;
  results.reserve(jobs.size());
  for (auto& runs_of_job : grid) {
    results.push_back(aggregate_runs(std::move(runs_of_job)));
  }
  return results;
}

}  // namespace gridsched
