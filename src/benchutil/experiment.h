// Multi-run experiment driver: runs an algorithm factory N times with
// derived seeds (optionally across a thread pool — every engine in the
// library is single-threaded and deterministic, so independent runs
// parallelize perfectly) and aggregates best/mean/stddev, which is exactly
// the protocol of Section 5 ("10 runs per instance, best reported",
// stddev for the robustness claim).
#pragma once

#include <functional>
#include <vector>

#include "common/stats.h"
#include "common/thread_pool.h"
#include "core/evolution.h"
#include "etc/etc_matrix.h"

namespace gridsched {

/// Runs `run_with_seed` for seeds seed0+1 .. seed0+runs and aggregates.
struct MultiRunResult {
  std::vector<EvolutionResult> runs;
  Summary makespan;
  Summary flowtime;
  Summary fitness;
  /// Index into `runs` of the best-fitness run.
  std::size_t best_run = 0;

  [[nodiscard]] const EvolutionResult& best() const { return runs[best_run]; }
};

using SeededRun = std::function<EvolutionResult(std::uint64_t seed)>;

/// `pool` may be nullptr for sequential execution.
[[nodiscard]] MultiRunResult run_many(int runs, std::uint64_t seed0,
                                      const SeededRun& run_with_seed,
                                      ThreadPool* pool = nullptr);

/// Aggregates already-collected runs (shared by run_many and run_matrix).
[[nodiscard]] MultiRunResult aggregate_runs(std::vector<EvolutionResult> runs);

/// Runs a whole experiment grid — `jobs.size()` configurations x `runs`
/// repetitions — as one flat parallel workload, so a 24-core box saturates
/// even when each configuration only repeats 3 times. Result i aggregates
/// the repetitions of jobs[i]. Seeds match run_many's convention, so a
/// matrix run reproduces the corresponding sequential runs exactly.
[[nodiscard]] std::vector<MultiRunResult> run_matrix(
    const std::vector<SeededRun>& jobs, int runs, std::uint64_t seed0,
    ThreadPool& pool);

}  // namespace gridsched
