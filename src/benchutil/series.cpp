#include "benchutil/series.h"

#include <cmath>
#include <limits>
#include <ostream>

#include "benchutil/table.h"
#include "common/csv.h"

namespace gridsched {

double series_value_at(const std::vector<ProgressPoint>& points, double t_ms) {
  if (points.empty()) return std::numeric_limits<double>::quiet_NaN();
  double value = points.front().best_makespan;
  for (const auto& p : points) {
    if (p.time_ms > t_ms) break;
    value = p.best_makespan;
  }
  return value;
}

namespace {

std::vector<double> time_grid(double t0_ms, double t1_ms, int samples) {
  std::vector<double> grid;
  grid.reserve(static_cast<std::size_t>(samples));
  for (int i = 0; i < samples; ++i) {
    const double frac =
        samples > 1 ? static_cast<double>(i) / (samples - 1) : 1.0;
    grid.push_back(t0_ms + frac * (t1_ms - t0_ms));
  }
  return grid;
}

}  // namespace

void print_series_table(std::ostream& out,
                        const std::vector<NamedSeries>& series, double t0_ms,
                        double t1_ms, int samples) {
  std::vector<std::string> headers{"time (s)"};
  for (const auto& s : series) headers.push_back(s.name);
  TablePrinter table(std::move(headers));
  for (double t : time_grid(t0_ms, t1_ms, samples)) {
    std::vector<std::string> row{TablePrinter::num(t / 1000.0, 2)};
    for (const auto& s : series) {
      const double v = series_value_at(s.points, t);
      row.push_back(std::isnan(v) ? "-" : TablePrinter::num(v, 1));
    }
    table.add_row(std::move(row));
  }
  table.print(out);
}

void write_series_csv(const std::string& path,
                      const std::vector<NamedSeries>& series, double t0_ms,
                      double t1_ms, int samples) {
  CsvWriter csv(path);
  std::vector<std::string> header{"time_ms"};
  for (const auto& s : series) header.push_back(s.name);
  csv.write_row(header);
  for (double t : time_grid(t0_ms, t1_ms, samples)) {
    std::vector<std::string> row{CsvWriter::field(t)};
    for (const auto& s : series) {
      row.push_back(CsvWriter::field(series_value_at(s.points, t)));
    }
    csv.write_row(row);
  }
}

}  // namespace gridsched
