// Time-series recording for the Fig. 2-5 style "makespan vs execution
// time" plots: resamples best-so-far trajectories onto a common time grid
// and renders them as aligned columns or CSV.
#pragma once

#include <string>
#include <vector>

#include "core/evolution.h"

namespace gridsched {

/// One named best-so-far trajectory.
struct NamedSeries {
  std::string name;
  std::vector<ProgressPoint> points;
};

/// Value of the best-so-far `makespan` trajectory at time t (step function:
/// the last sample at or before t; the first sample's value before that;
/// NaN for an empty trajectory).
[[nodiscard]] double series_value_at(const std::vector<ProgressPoint>& points,
                                     double t_ms);

/// Resamples all series onto `samples` evenly spaced instants spanning
/// [t0, t1] and prints one row per instant:  time_s  <one column per series>.
void print_series_table(std::ostream& out,
                        const std::vector<NamedSeries>& series, double t0_ms,
                        double t1_ms, int samples);

/// Writes the same grid as CSV (header: time_ms, <names...>).
void write_series_csv(const std::string& path,
                      const std::vector<NamedSeries>& series, double t0_ms,
                      double t1_ms, int samples);

}  // namespace gridsched
