// Fixed-width text tables for bench output (the harness prints the paper's
// tables next to measured values, so alignment matters for readability).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "common/stats.h"

namespace gridsched {

class TablePrinter {
 public:
  enum class Align { kLeft, kRight };

  /// Defines the columns. Each column gets the width of its widest cell.
  explicit TablePrinter(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  /// Horizontal separator line between the previous and next row.
  void add_separator();

  /// Renders with a header rule. Numeric-looking cells are right-aligned.
  void print(std::ostream& out) const;

  /// Formats a double with `decimals` digits after the point, grouping
  /// thousands ("7 700 929.751" style used in the paper's tables reads
  /// poorly in ASCII; we use plain "7700929.751").
  static std::string num(double value, int decimals = 3);
  /// Percent with sign, e.g. "+4.35" / "-0.59".
  static std::string pct(double value, int decimals = 2);
  /// Mean with a 95% CI half-width when there is more than one sample,
  /// e.g. "431.2 ± 12.7" — the cell format of every multi-seed bench.
  static std::string mean_ci(const RunningStats& stats, int decimals = 3);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;  // empty row = separator
};

}  // namespace gridsched
