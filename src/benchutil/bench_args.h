// Flags shared by every bench binary.
//
// Defaults are CI-scale: a fraction of a second per algorithm run (a modern
// core is roughly three orders of magnitude faster than the paper's AMD K6
// 450 MHz, so sub-second budgets already exceed the paper's effective
// search effort; see DESIGN.md section 3). `--paper` restores the literal
// protocol: 90 s per run, 10 runs per instance.
#pragma once

#include <cstdint>
#include <string>

#include "common/cli.h"

namespace gridsched {

struct BenchArgs {
  int runs = 3;
  double time_ms = 5'000.0;
  int jobs = 512;
  int machines = 16;
  std::uint64_t seed = 20070325;  // IPDPS 2007, 25-29 March
  std::string csv_dir;            // empty = no CSV dumps
  int threads = 0;                // 0 = hardware concurrency
  bool paper = false;
  /// Evaluation budget per run (0 = wall clock only). Setting it makes
  /// every run a pure function of its seed — what the CI gap gate records
  /// in its baseline so foreign runner speed cannot move the verdicts.
  std::int64_t evals = 0;
  /// Report optimality gaps against the LP/cheap makespan lower bound
  /// (bounds/lower_bound.h). Implied by --json.
  bool gap = false;
  /// Simplex pivot budget for the LP bound; 0 falls back to the cheap
  /// closed-form floors alone.
  int lp_max_pivots = 20'000;
  /// BENCH_*.json verdict report path (empty = none).
  std::string json;

  /// Registers the shared flags on a parser.
  static void register_flags(CliParser& cli);

  /// Reads the shared flags back; applies --paper overrides (90 s, 10 runs).
  static BenchArgs from_cli(const CliParser& cli);
};

}  // namespace gridsched
