// Flags shared by every bench binary.
//
// Defaults are CI-scale: a fraction of a second per algorithm run (a modern
// core is roughly three orders of magnitude faster than the paper's AMD K6
// 450 MHz, so sub-second budgets already exceed the paper's effective
// search effort; see DESIGN.md section 3). `--paper` restores the literal
// protocol: 90 s per run, 10 runs per instance.
#pragma once

#include <cstdint>
#include <string>

#include "common/cli.h"

namespace gridsched {

struct BenchArgs {
  int runs = 3;
  double time_ms = 5'000.0;
  int jobs = 512;
  int machines = 16;
  std::uint64_t seed = 20070325;  // IPDPS 2007, 25-29 March
  std::string csv_dir;            // empty = no CSV dumps
  int threads = 0;                // 0 = hardware concurrency
  bool paper = false;

  /// Registers the shared flags on a parser.
  static void register_flags(CliParser& cli);

  /// Reads the shared flags back; applies --paper overrides (90 s, 10 runs).
  static BenchArgs from_cli(const CliParser& cli);
};

}  // namespace gridsched
