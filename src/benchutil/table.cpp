#include "benchutil/table.h"

#include <algorithm>
#include <cctype>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace gridsched {
namespace {

bool looks_numeric(const std::string& cell) {
  if (cell.empty()) return false;
  for (char c : cell) {
    if (!std::isdigit(static_cast<unsigned char>(c)) && c != '.' && c != '-' &&
        c != '+' && c != 'e' && c != 'E' && c != '%') {
      return false;
    }
  }
  return true;
}

}  // namespace

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

void TablePrinter::add_separator() { rows_.emplace_back(); }

void TablePrinter::print(std::ostream& out) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto print_rule = [&] {
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      out << (c == 0 ? "+-" : "-+-") << std::string(widths[c], '-');
    }
    out << "-+\n";
  };
  auto print_cells = [&](const std::vector<std::string>& cells,
                         bool is_header) {
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string cell = c < cells.size() ? cells[c] : std::string{};
      out << (c == 0 ? "| " : " | ");
      const bool right = !is_header && c > 0 && looks_numeric(cell);
      if (right) {
        out << std::setw(static_cast<int>(widths[c])) << std::right << cell;
      } else {
        out << std::setw(static_cast<int>(widths[c])) << std::left << cell;
      }
    }
    out << " |\n";
  };

  print_rule();
  print_cells(headers_, /*is_header=*/true);
  print_rule();
  for (const auto& row : rows_) {
    if (row.empty()) {
      print_rule();
    } else {
      print_cells(row, /*is_header=*/false);
    }
  }
  print_rule();
}

std::string TablePrinter::num(double value, int decimals) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(decimals) << value;
  return out.str();
}

std::string TablePrinter::pct(double value, int decimals) {
  std::ostringstream out;
  out << std::showpos << std::fixed << std::setprecision(decimals) << value;
  return out.str();
}

std::string TablePrinter::mean_ci(const RunningStats& stats, int decimals) {
  std::string out = num(stats.mean(), decimals);
  if (stats.count() > 1) {
    out += " ± " + num(ci95_half_width(stats), decimals);
  }
  return out;
}

}  // namespace gridsched
