#include "benchutil/bench_args.h"

namespace gridsched {

void BenchArgs::register_flags(CliParser& cli) {
  const BenchArgs defaults;
  cli.flag("runs", std::to_string(defaults.runs),
           "independent runs per configuration (best/mean/stddev reported)");
  cli.flag("time-ms", std::to_string(static_cast<int>(defaults.time_ms)),
           "wall-clock budget per run, in milliseconds");
  cli.flag("jobs", std::to_string(defaults.jobs), "jobs per instance");
  cli.flag("machines", std::to_string(defaults.machines),
           "machines per instance");
  cli.flag("seed", std::to_string(defaults.seed), "base RNG seed");
  cli.flag("csv-dir", "", "directory for CSV dumps (empty = none)");
  cli.flag("threads", "0",
           "thread-pool size for independent runs (0 = hardware)");
  cli.flag("paper", "false",
           "use the paper's protocol: 90 s per run, 10 runs per instance");
  cli.flag("evals", "0",
           "evaluation budget per run (0 = none; makes runs a pure "
           "function of the seed, independent of machine speed)");
  cli.flag("gap", "false",
           "report optimality gaps vs the LP/cheap makespan lower bound");
  cli.flag("lp-max-pivots", std::to_string(defaults.lp_max_pivots),
           "simplex pivot budget for the LP bound (0 = cheap bounds only)");
  cli.flag("json", "", "write a BENCH_*.json verdict report (implies --gap)");
}

BenchArgs BenchArgs::from_cli(const CliParser& cli) {
  BenchArgs args;
  args.runs = static_cast<int>(cli.get_int("runs"));
  args.time_ms = cli.get_double("time-ms");
  args.jobs = static_cast<int>(cli.get_int("jobs"));
  args.machines = static_cast<int>(cli.get_int("machines"));
  args.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  args.csv_dir = cli.get("csv-dir");
  args.threads = static_cast<int>(cli.get_int("threads"));
  args.paper = cli.get_bool("paper");
  args.evals = cli.get_int("evals");
  args.lp_max_pivots = static_cast<int>(cli.get_int("lp-max-pivots"));
  args.json = cli.get("json");
  args.gap = cli.get_bool("gap") || !args.json.empty();
  if (args.paper) {
    args.time_ms = 90'000.0;
    args.runs = 10;
  }
  return args;
}

}  // namespace gridsched
