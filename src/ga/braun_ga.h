// Generational GA in the style of Braun et al. (JPDC 2001), the Table 2
// baseline: 200 chromosomes, elitism, roulette-wheel selection, one-point
// crossover, per-offspring reassignment mutation, Min-Min-seeded initial
// population, stopping on budget / generations / 150-generation stagnation.
//
// Parameters follow the published description where given; everything is a
// config field so sensitivity can be explored.
#pragma once

#include <cstdint>

#include "cma/crossover.h"
#include "cma/mutation.h"
#include "core/evolution.h"
#include "core/fitness.h"
#include "etc/etc_matrix.h"
#include "ga/ga_common.h"

namespace gridsched {

struct BraunGaConfig {
  int population_size = 200;
  int elite_count = 2;
  double crossover_rate = 0.6;
  double mutation_rate = 0.4;
  CrossoverKind crossover = CrossoverKind::kOnePoint;
  MutationKind mutation = MutationKind::kMove;
  GaSeeding seeding{{HeuristicKind::kMinMin}};
  FitnessWeights weights{};
  StopCondition stop{.max_time_ms = 90'000.0, .max_stagnation = 150};
  std::uint64_t seed = 1;
  bool record_progress = false;
};

class BraunGa {
 public:
  explicit BraunGa(BraunGaConfig config);

  [[nodiscard]] EvolutionResult run(const EtcMatrix& etc) const;

  [[nodiscard]] const BraunGaConfig& config() const noexcept {
    return config_;
  }

 private:
  BraunGaConfig config_;
};

}  // namespace gridsched
