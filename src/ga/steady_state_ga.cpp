#include "ga/steady_state_ga.h"

#include <numeric>
#include <stdexcept>

namespace gridsched {

std::string_view replacement_name(ReplacementPolicy p) noexcept {
  switch (p) {
    case ReplacementPolicy::kWorst: return "ReplaceWorst";
    case ReplacementPolicy::kRandom: return "ReplaceRandom";
    case ReplacementPolicy::kOldest: return "ReplaceOldest";
    case ReplacementPolicy::kMostSimilar: return "Struggle";
    case ReplacementPolicy::kDeterministicCrowding:
      return "DeterministicCrowding";
  }
  return "?";
}

SteadyStateGa::SteadyStateGa(SteadyStateGaConfig config)
    : config_(std::move(config)) {
  if (config_.population_size < 2) {
    throw std::invalid_argument("SteadyStateGa: population must hold >= 2");
  }
  if (!config_.stop.any_enabled()) {
    throw std::invalid_argument("SteadyStateGa: no stop condition enabled");
  }
}

EvolutionResult SteadyStateGa::run(const EtcMatrix& etc) const {
  Rng rng(config_.seed);
  EvolutionTracker tracker(config_.stop, config_.record_progress);

  std::vector<Individual> population =
      seed_population(config_.population_size, config_.seeding, etc,
                      config_.weights, rng, config_.stop.cancel);
  tracker.count_evaluations(config_.population_size);
  for (const auto& individual : population) tracker.offer(individual);

  // Tournament selection expects candidate *indices*.
  std::vector<int> all_indices(population.size());
  std::iota(all_indices.begin(), all_indices.end(), 0);
  // Birth step of each slot, for kOldest.
  std::vector<std::int64_t> birth(population.size(), 0);
  std::int64_t step_counter = 0;

  ScheduleEvaluator evaluator(etc);
  MutationScratch mutation_scratch;
  Individual child;  // reused across steps; copy-assigns recycle capacity
  while (!tracker.should_stop()) {
    for (int step = 0; step < config_.steps_per_iteration; ++step) {
      ++step_counter;
      const int pa =
          select_one(config_.selection, all_indices, population, rng);
      int pb = pa;
      child = population[static_cast<std::size_t>(pa)];
      if (rng.chance(config_.crossover_rate)) {
        pb = select_one(config_.selection, all_indices, population, rng);
        crossover_into(
            child.schedule, config_.crossover,
            population[static_cast<std::size_t>(pa)].schedule,
            population[static_cast<std::size_t>(pb)].schedule, rng);
      }
      // One shared evaluator re-targeted per child: the gene-diff reset
      // replaces both the per-mutation full rebuild and the from-scratch
      // evaluator evaluate_individual() would construct. Same RNG draws,
      // same (canonical) objective values.
      const bool do_mutate = rng.chance(config_.mutation_rate);
      evaluator.reset_to(child.schedule);
      if (do_mutate) {
        mutate(config_.mutation, evaluator, rng, &mutation_scratch);
      }
      assign_from_evaluator(child, evaluator, config_.weights);
      tracker.count_evaluations();

      std::size_t victim = 0;
      switch (config_.replacement) {
        case ReplacementPolicy::kWorst:
          victim = worst_index(population);
          break;
        case ReplacementPolicy::kRandom:
          victim = static_cast<std::size_t>(rng.bounded(population.size()));
          break;
        case ReplacementPolicy::kOldest: {
          victim = 0;
          for (std::size_t i = 1; i < population.size(); ++i) {
            if (birth[i] < birth[victim]) victim = i;
          }
          break;
        }
        case ReplacementPolicy::kMostSimilar:
          victim = most_similar_index(population, child.schedule);
          break;
        case ReplacementPolicy::kDeterministicCrowding: {
          const auto& sa = population[static_cast<std::size_t>(pa)].schedule;
          const auto& sb = population[static_cast<std::size_t>(pb)].schedule;
          victim = (child.schedule.hamming_distance(sa) <=
                    child.schedule.hamming_distance(sb))
                       ? static_cast<std::size_t>(pa)
                       : static_cast<std::size_t>(pb);
          break;
        }
      }
      if (child.fitness < population[victim].fitness) {
        population[victim] = child;  // copy: `child` keeps its buffers
        birth[victim] = step_counter;
        tracker.offer(population[victim]);
      }
      if (tracker.should_stop()) break;
    }
    tracker.end_iteration();
  }
  return tracker.finish();
}

}  // namespace gridsched
