#include "ga/ga_common.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace gridsched {

std::vector<Individual> seed_population(int size, const GaSeeding& seeding,
                                        const EtcMatrix& etc,
                                        const FitnessWeights& weights,
                                        Rng& rng,
                                        const CancellationToken& cancel) {
  if (size <= 0) throw std::invalid_argument("seed_population: empty");
  std::vector<Individual> population;
  population.reserve(static_cast<std::size_t>(size));
  for (HeuristicKind kind : seeding.heuristic_seeds) {
    if (static_cast<int>(population.size()) >= size) break;
    if (cancel.cancelled()) break;  // random fill is all the budget allows
    const Schedule seed = kind == HeuristicKind::kMinMin
                              ? min_min(etc, cancel)
                              : construct_schedule(kind, etc, rng);
    population.push_back(make_individual(seed, etc, weights));
  }
  while (static_cast<int>(population.size()) < size) {
    population.push_back(make_individual(
        Schedule::random(etc.num_jobs(), etc.num_machines(), rng), etc,
        weights));
  }
  return population;
}

std::size_t roulette_select(std::span<const Individual> population, Rng& rng) {
  double worst = -std::numeric_limits<double>::infinity();
  for (const auto& individual : population) {
    worst = std::max(worst, individual.fitness);
  }
  // epsilon keeps the worst individual selectable and the wheel non-empty
  // when all fitnesses are equal.
  const double epsilon = 1e-9 * std::max(1.0, std::abs(worst));
  double total = 0.0;
  for (const auto& individual : population) {
    total += worst - individual.fitness + epsilon;
  }
  double ticket = rng.uniform(0.0, total);
  for (std::size_t i = 0; i < population.size(); ++i) {
    ticket -= worst - population[i].fitness + epsilon;
    if (ticket <= 0.0) return i;
  }
  return population.size() - 1;  // numeric edge: land on the last slot
}

std::size_t best_index(std::span<const Individual> population) {
  return static_cast<std::size_t>(std::distance(
      population.begin(),
      std::min_element(population.begin(), population.end(),
                       [](const Individual& a, const Individual& b) {
                         return a.fitness < b.fitness;
                       })));
}

std::size_t worst_index(std::span<const Individual> population) {
  return static_cast<std::size_t>(std::distance(
      population.begin(),
      std::max_element(population.begin(), population.end(),
                       [](const Individual& a, const Individual& b) {
                         return a.fitness < b.fitness;
                       })));
}

std::size_t most_similar_index(std::span<const Individual> population,
                               const Schedule& candidate) {
  std::size_t arg = 0;
  int best_distance = std::numeric_limits<int>::max();
  for (std::size_t i = 0; i < population.size(); ++i) {
    const int d = population[i].schedule.hamming_distance(candidate);
    if (d < best_distance) {
      best_distance = d;
      arg = i;
    }
  }
  return arg;
}

}  // namespace gridsched
