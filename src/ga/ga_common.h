// Shared building blocks of the three baseline GAs the paper compares
// against (Tables 2, 3 and 5). None of them is cellular: their populations
// are unstructured (panmictic), which is exactly the property the cMA's
// structured mesh is meant to improve on.
#pragma once

#include <span>
#include <vector>

#include "common/rng.h"
#include "core/evolution.h"
#include "core/fitness.h"
#include "core/individual.h"
#include "etc/etc_matrix.h"
#include "heuristics/constructive.h"

namespace gridsched {

/// How a GA population is seeded.
struct GaSeeding {
  /// Heuristics whose solutions are injected once each (the remainder of
  /// the population is uniform random). Braun et al. seed with Min-Min.
  std::vector<HeuristicKind> heuristic_seeds;
};

/// Builds a population of `size` individuals: the heuristic seeds first,
/// then uniform random schedules. `cancel` keeps seeding inside an
/// activation budget: once it fires, remaining heuristic seeds are skipped
/// (the Min-Min seed itself runs budget-honoring) and the population is
/// completed with cheap random schedules, so the caller always gets `size`
/// evaluated individuals.
[[nodiscard]] std::vector<Individual> seed_population(
    int size, const GaSeeding& seeding, const EtcMatrix& etc,
    const FitnessWeights& weights, Rng& rng,
    const CancellationToken& cancel = {});

/// Roulette-wheel selection for minimization: each individual gets weight
/// (worst - fitness + epsilon), so the best individual has the largest
/// share. Returns an index into `population`.
[[nodiscard]] std::size_t roulette_select(std::span<const Individual> population,
                                          Rng& rng);

/// Index of the fittest individual.
[[nodiscard]] std::size_t best_index(std::span<const Individual> population);

/// Index of the least fit individual.
[[nodiscard]] std::size_t worst_index(std::span<const Individual> population);

/// Index of the individual whose schedule is closest (minimum Hamming
/// distance) to `candidate` — the Struggle GA replacement target.
[[nodiscard]] std::size_t most_similar_index(
    std::span<const Individual> population, const Schedule& candidate);

}  // namespace gridsched
