// Struggle GA (Xhafa, BIOMA 2006), the Tables 3 & 5 baseline.
//
// A steady-state GA whose replacement rule preserves diversity: a new
// offspring competes with ("struggles against") the *most similar*
// individual of the population — by Hamming distance over the assignment
// vector — and replaces it only if fitter. This similarity-based crowding
// is the defining feature; the rest of the loop is a plain GA.
#pragma once

#include <cstdint>

#include "cma/crossover.h"
#include "cma/mutation.h"
#include "cma/selection.h"
#include "core/evolution.h"
#include "core/fitness.h"
#include "etc/etc_matrix.h"
#include "ga/ga_common.h"

namespace gridsched {

struct StruggleGaConfig {
  int population_size = 70;
  SelectionConfig selection{SelectionKind::kTournament, 3};
  double crossover_rate = 1.0;  // struggle GAs typically always recombine
  double mutation_rate = 0.4;
  CrossoverKind crossover = CrossoverKind::kOnePoint;
  MutationKind mutation = MutationKind::kRebalance;
  // Seeded with both classic heuristics: the published Tables 3/5 numbers
  // show this GA within ~1% of the cMA, which a plain GA only reaches
  // from a strong start (EXPERIMENTS.md discusses the calibration).
  GaSeeding seeding{{HeuristicKind::kLjfrSjfr, HeuristicKind::kMinMin}};
  FitnessWeights weights{};
  StopCondition stop{.max_time_ms = 90'000.0};
  std::uint64_t seed = 1;
  bool record_progress = false;
  int steps_per_iteration = 32;
};

class StruggleGa {
 public:
  explicit StruggleGa(StruggleGaConfig config);

  [[nodiscard]] EvolutionResult run(const EtcMatrix& etc) const;

  [[nodiscard]] const StruggleGaConfig& config() const noexcept {
    return config_;
  }

 private:
  StruggleGaConfig config_;
};

}  // namespace gridsched
