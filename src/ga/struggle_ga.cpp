#include "ga/struggle_ga.h"

#include <numeric>
#include <stdexcept>

namespace gridsched {

StruggleGa::StruggleGa(StruggleGaConfig config) : config_(std::move(config)) {
  if (config_.population_size < 2) {
    throw std::invalid_argument("StruggleGa: population must hold >= 2");
  }
  if (!config_.stop.any_enabled()) {
    throw std::invalid_argument("StruggleGa: no stop condition enabled");
  }
}

EvolutionResult StruggleGa::run(const EtcMatrix& etc) const {
  Rng rng(config_.seed);
  EvolutionTracker tracker(config_.stop, config_.record_progress);

  std::vector<Individual> population =
      seed_population(config_.population_size, config_.seeding, etc,
                      config_.weights, rng, config_.stop.cancel);
  tracker.count_evaluations(config_.population_size);
  for (const auto& individual : population) tracker.offer(individual);

  std::vector<int> all_indices(population.size());
  std::iota(all_indices.begin(), all_indices.end(), 0);

  ScheduleEvaluator evaluator(etc);
  MutationScratch mutation_scratch;
  Individual child;  // reused across steps; copy-assigns recycle capacity
  while (!tracker.should_stop()) {
    for (int step = 0; step < config_.steps_per_iteration; ++step) {
      const int pa =
          select_one(config_.selection, all_indices, population, rng);
      child = population[static_cast<std::size_t>(pa)];
      if (rng.chance(config_.crossover_rate)) {
        const int pb =
            select_one(config_.selection, all_indices, population, rng);
        crossover_into(
            child.schedule, config_.crossover,
            population[static_cast<std::size_t>(pa)].schedule,
            population[static_cast<std::size_t>(pb)].schedule, rng);
      }
      // One shared evaluator re-targeted per child: the gene-diff reset
      // replaces both the per-mutation full rebuild and the from-scratch
      // evaluator evaluate_individual() would construct. Same RNG draws,
      // same (canonical) objective values.
      const bool do_mutate = rng.chance(config_.mutation_rate);
      evaluator.reset_to(child.schedule);
      if (do_mutate) {
        mutate(config_.mutation, evaluator, rng, &mutation_scratch);
      }
      assign_from_evaluator(child, evaluator, config_.weights);
      tracker.count_evaluations();

      // The struggle: compete with the most similar resident, not the worst.
      const std::size_t rival = most_similar_index(population, child.schedule);
      if (child.fitness < population[rival].fitness) {
        population[rival] = child;  // copy: `child` keeps its buffers
        tracker.offer(population[rival]);
      }
      if (tracker.should_stop()) break;
    }
    tracker.end_iteration();
  }
  return tracker.finish();
}

}  // namespace gridsched
