// Steady-state GA in the style of Carretero & Xhafa (2006), the second
// Table 3 baseline: small unstructured population, tournament selection,
// one offspring per step replacing an incumbent when better.
//
// The replacement rule is pluggable because it is exactly the dimension
// Xhafa's BIOMA 2006 study (the paper's reference [21], origin of the
// Struggle GA baseline) explores; bench/ablation_replacement reruns that
// comparison:
//   kWorst                 offspring replaces the least-fit individual
//   kRandom                offspring replaces a uniformly random one
//   kOldest                offspring replaces the longest-resident one
//   kMostSimilar           the Struggle rule (minimum Hamming distance)
//   kDeterministicCrowding offspring competes with its more similar parent
// All rules are gated on "only if fitter".
#pragma once

#include <cstdint>
#include <string_view>

#include "cma/crossover.h"
#include "cma/mutation.h"
#include "cma/selection.h"
#include "core/evolution.h"
#include "core/fitness.h"
#include "etc/etc_matrix.h"
#include "ga/ga_common.h"

namespace gridsched {

enum class ReplacementPolicy {
  kWorst,
  kRandom,
  kOldest,
  kMostSimilar,
  kDeterministicCrowding,
};

[[nodiscard]] std::string_view replacement_name(ReplacementPolicy p) noexcept;

struct SteadyStateGaConfig {
  int population_size = 70;
  ReplacementPolicy replacement = ReplacementPolicy::kWorst;
  SelectionConfig selection{SelectionKind::kTournament, 3};
  double crossover_rate = 0.8;
  double mutation_rate = 0.4;
  CrossoverKind crossover = CrossoverKind::kOnePoint;
  MutationKind mutation = MutationKind::kRebalance;
  // Seeded with both classic heuristics: the published Table 3 numbers
  // show these GAs within ~1% of the cMA, which a plain GA only reaches
  // from a strong start (EXPERIMENTS.md discusses the calibration).
  GaSeeding seeding{{HeuristicKind::kLjfrSjfr, HeuristicKind::kMinMin}};
  FitnessWeights weights{};
  StopCondition stop{.max_time_ms = 90'000.0};
  std::uint64_t seed = 1;
  bool record_progress = false;

  /// Steps folded into one reported "iteration" (progress granularity).
  int steps_per_iteration = 32;
};

class SteadyStateGa {
 public:
  explicit SteadyStateGa(SteadyStateGaConfig config);

  [[nodiscard]] EvolutionResult run(const EtcMatrix& etc) const;

  [[nodiscard]] const SteadyStateGaConfig& config() const noexcept {
    return config_;
  }

 private:
  SteadyStateGaConfig config_;
};

}  // namespace gridsched
