#include "ga/braun_ga.h"

#include <algorithm>
#include <stdexcept>

namespace gridsched {

BraunGa::BraunGa(BraunGaConfig config) : config_(std::move(config)) {
  if (config_.population_size < 2) {
    throw std::invalid_argument("BraunGa: population must hold >= 2");
  }
  if (config_.elite_count < 0 ||
      config_.elite_count >= config_.population_size) {
    throw std::invalid_argument("BraunGa: bad elite count");
  }
  if (!config_.stop.any_enabled()) {
    throw std::invalid_argument("BraunGa: no stop condition enabled");
  }
}

EvolutionResult BraunGa::run(const EtcMatrix& etc) const {
  Rng rng(config_.seed);
  EvolutionTracker tracker(config_.stop, config_.record_progress);

  std::vector<Individual> population =
      seed_population(config_.population_size, config_.seeding, etc,
                      config_.weights, rng, config_.stop.cancel);
  tracker.count_evaluations(config_.population_size);
  for (const auto& individual : population) tracker.offer(individual);

  ScheduleEvaluator evaluator(etc);
  MutationScratch mutation_scratch;
  std::vector<Individual> next;
  next.reserve(population.size());

  while (!tracker.should_stop()) {
    next.clear();

    // Elitism: carry over the fittest unchanged.
    std::vector<std::size_t> order(population.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::partial_sort(order.begin(),
                      order.begin() + config_.elite_count, order.end(),
                      [&](std::size_t a, std::size_t b) {
                        return population[a].fitness < population[b].fitness;
                      });
    for (int e = 0; e < config_.elite_count; ++e) {
      next.push_back(population[order[static_cast<std::size_t>(e)]]);
    }

    while (static_cast<int>(next.size()) < config_.population_size) {
      const Individual& parent_a = population[roulette_select(population, rng)];
      Individual child = parent_a;
      if (rng.chance(config_.crossover_rate)) {
        const Individual& parent_b =
            population[roulette_select(population, rng)];
        crossover_into(child.schedule, config_.crossover, parent_a.schedule,
                       parent_b.schedule, rng);
      }
      // One shared evaluator re-targeted per child: the gene-diff reset
      // replaces both the per-mutation full rebuild and the from-scratch
      // evaluator evaluate_individual() would construct. Same RNG draws,
      // same (canonical) objective values.
      const bool do_mutate = rng.chance(config_.mutation_rate);
      evaluator.reset_to(child.schedule);
      if (do_mutate) {
        mutate(config_.mutation, evaluator, rng, &mutation_scratch);
      }
      assign_from_evaluator(child, evaluator, config_.weights);
      tracker.count_evaluations();
      tracker.offer(child);
      next.push_back(std::move(child));
      if (tracker.should_stop()) break;
    }

    // A truncated last generation (budget hit mid-fill) is discarded; the
    // tracker already saw every evaluated child.
    if (static_cast<int>(next.size()) == config_.population_size) {
      population.swap(next);
    }
    tracker.end_iteration();
  }
  return tracker.finish();
}

}  // namespace gridsched
