#include "obs/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace gridsched::obs {

std::string json_escape(std::string_view text) {
  std::string escaped;
  escaped.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"':
        escaped += "\\\"";
        break;
      case '\\':
        escaped += "\\\\";
        break;
      case '\n':
        escaped += "\\n";
        break;
      case '\t':
        escaped += "\\t";
        break;
      case '\r':
        escaped += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          escaped += buffer;
        } else {
          escaped += c;
        }
    }
  }
  return escaped;
}

std::string json_number(double value) {
  if (!std::isfinite(value)) return "null";
  // Shortest round-trip-exact form: try increasing precision until the
  // value survives a strtod round trip (17 significant digits always do).
  char buffer[32];
  for (int precision = 6; precision <= 17; ++precision) {
    std::snprintf(buffer, sizeof buffer, "%.*g", precision, value);
    if (std::strtod(buffer, nullptr) == value) break;
  }
  return buffer;
}

const JsonValue* JsonValue::find(std::string_view key) const noexcept {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& [name, value] : object_) {
    if (name == key) return &value;
  }
  return nullptr;
}

void JsonValue::set(std::string key, JsonValue value) {
  type_ = Type::kObject;
  object_.emplace_back(std::move(key), std::move(value));
}

namespace {

class Parser {
 public:
  Parser(std::string_view text, std::string* error)
      : text_(text), error_(error) {}

  std::optional<JsonValue> run() {
    skip_ws();
    JsonValue value;
    if (!parse_value(value)) return std::nullopt;
    skip_ws();
    if (pos_ != text_.size()) {
      fail("trailing characters after document");
      return std::nullopt;
    }
    return value;
  }

 private:
  void fail(const std::string& message) {
    if (error_ != nullptr && error_->empty()) {
      *error_ = "offset " + std::to_string(pos_) + ": " + message;
    }
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) {
      fail("invalid literal");
      return false;
    }
    pos_ += word.size();
    return true;
  }

  bool parse_value(JsonValue& out) {
    if (++depth_ > kMaxDepth) {
      fail("nesting too deep");
      return false;
    }
    bool ok = parse_value_inner(out);
    --depth_;
    return ok;
  }

  bool parse_value_inner(JsonValue& out) {
    if (pos_ >= text_.size()) {
      fail("unexpected end of input");
      return false;
    }
    switch (text_[pos_]) {
      case 'n':
        out = JsonValue();
        return literal("null");
      case 't':
        out = JsonValue(true);
        return literal("true");
      case 'f':
        out = JsonValue(false);
        return literal("false");
      case '"': {
        std::string value;
        if (!parse_string(value)) return false;
        out = JsonValue(std::move(value));
        return true;
      }
      case '[':
        return parse_array(out);
      case '{':
        return parse_object(out);
      default:
        return parse_number(out);
    }
  }

  bool parse_number(JsonValue& out) {
    const char* begin = text_.data() + pos_;
    char* end = nullptr;
    const double value = std::strtod(begin, &end);
    if (end == begin) {
      fail("invalid number");
      return false;
    }
    pos_ += static_cast<std::size_t>(end - begin);
    out = JsonValue(value);
    return true;
  }

  bool parse_hex4(unsigned& out) {
    if (pos_ + 4 > text_.size()) {
      fail("truncated \\u escape");
      return false;
    }
    out = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_ + static_cast<std::size_t>(i)];
      out <<= 4;
      if (c >= '0' && c <= '9') {
        out |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        out |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        out |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        fail("invalid \\u escape");
        return false;
      }
    }
    pos_ += 4;
    return true;
  }

  static void append_utf8(std::string& out, unsigned code) {
    if (code < 0x80) {
      out += static_cast<char>(code);
    } else if (code < 0x800) {
      out += static_cast<char>(0xc0 | (code >> 6));
      out += static_cast<char>(0x80 | (code & 0x3f));
    } else {
      out += static_cast<char>(0xe0 | (code >> 12));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
      out += static_cast<char>(0x80 | (code & 0x3f));
    }
  }

  bool parse_string(std::string& out) {
    ++pos_;  // opening quote
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) break;
        const char escape = text_[pos_++];
        switch (escape) {
          case '"':
          case '\\':
          case '/':
            out += escape;
            break;
          case 'b':
            out += '\b';
            break;
          case 'f':
            out += '\f';
            break;
          case 'n':
            out += '\n';
            break;
          case 'r':
            out += '\r';
            break;
          case 't':
            out += '\t';
            break;
          case 'u': {
            unsigned code = 0;
            if (!parse_hex4(code)) return false;
            // Surrogate pairs (rare in our artifacts) decode when the low
            // half follows; a lone surrogate renders as-is.
            if (code >= 0xd800 && code <= 0xdbff &&
                text_.substr(pos_, 2) == "\\u") {
              pos_ += 2;
              unsigned low = 0;
              if (!parse_hex4(low)) return false;
              if (low >= 0xdc00 && low <= 0xdfff) {
                const unsigned pair =
                    0x10000 + ((code - 0xd800) << 10) + (low - 0xdc00);
                out += static_cast<char>(0xf0 | (pair >> 18));
                out += static_cast<char>(0x80 | ((pair >> 12) & 0x3f));
                out += static_cast<char>(0x80 | ((pair >> 6) & 0x3f));
                out += static_cast<char>(0x80 | (pair & 0x3f));
                break;
              }
              append_utf8(out, code);
              append_utf8(out, low);
              break;
            }
            append_utf8(out, code);
            break;
          }
          default:
            fail("invalid escape");
            return false;
        }
        continue;
      }
      out += c;
      ++pos_;
    }
    fail("unterminated string");
    return false;
  }

  bool parse_array(JsonValue& out) {
    ++pos_;  // '['
    JsonValue::Array items;
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      out = JsonValue(std::move(items));
      return true;
    }
    while (true) {
      JsonValue item;
      skip_ws();
      if (!parse_value(item)) return false;
      items.push_back(std::move(item));
      skip_ws();
      if (pos_ >= text_.size()) {
        fail("unterminated array");
        return false;
      }
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        out = JsonValue(std::move(items));
        return true;
      }
      fail("expected ',' or ']'");
      return false;
    }
  }

  bool parse_object(JsonValue& out) {
    ++pos_;  // '{'
    JsonValue::Object members;
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      out = JsonValue(std::move(members));
      return true;
    }
    while (true) {
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        fail("expected object key");
        return false;
      }
      std::string key;
      if (!parse_string(key)) return false;
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        fail("expected ':'");
        return false;
      }
      ++pos_;
      skip_ws();
      JsonValue value;
      if (!parse_value(value)) return false;
      members.emplace_back(std::move(key), std::move(value));
      skip_ws();
      if (pos_ >= text_.size()) {
        fail("unterminated object");
        return false;
      }
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        out = JsonValue(std::move(members));
        return true;
      }
      fail("expected ',' or '}'");
      return false;
    }
  }

  static constexpr int kMaxDepth = 256;

  std::string_view text_;
  std::string* error_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

std::optional<JsonValue> JsonValue::parse(std::string_view text,
                                          std::string* error) {
  return Parser(text, error).run();
}

void JsonValue::dump_to(std::string& out, int indent, int depth) const {
  const auto newline_pad = [&](int levels) {
    if (indent < 0) return;
    out += '\n';
    out.append(static_cast<std::size_t>(indent * levels), ' ');
  };
  switch (type_) {
    case Type::kNull:
      out += "null";
      break;
    case Type::kBool:
      out += bool_ ? "true" : "false";
      break;
    case Type::kNumber:
      out += json_number(number_);
      break;
    case Type::kString:
      out += '"';
      out += json_escape(string_);
      out += '"';
      break;
    case Type::kArray: {
      out += '[';
      for (std::size_t i = 0; i < array_.size(); ++i) {
        if (i > 0) out += indent < 0 ? "," : ",";
        newline_pad(depth + 1);
        array_[i].dump_to(out, indent, depth + 1);
      }
      if (!array_.empty()) newline_pad(depth);
      out += ']';
      break;
    }
    case Type::kObject: {
      out += '{';
      for (std::size_t i = 0; i < object_.size(); ++i) {
        if (i > 0) out += ",";
        newline_pad(depth + 1);
        out += '"';
        out += json_escape(object_[i].first);
        out += "\": ";
        object_[i].second.dump_to(out, indent, depth + 1);
      }
      if (!object_.empty()) newline_pad(depth);
      out += '}';
      break;
    }
  }
}

std::string JsonValue::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

}  // namespace gridsched::obs
