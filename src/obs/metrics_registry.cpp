#include "obs/metrics_registry.h"

#include <array>
#include <cmath>
#include <ostream>
#include <utility>
#include <vector>

namespace gridsched::obs {

namespace {

template <typename Map, typename Metric>
Metric& find_or_create(std::mutex& mutex, Map& map, std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex);
  const auto it = map.find(name);
  if (it != map.end()) return *it->second;
  auto metric = std::make_unique<Metric>();
  Metric& ref = *metric;
  map.emplace(std::string(name), std::move(metric));
  return ref;
}

template <typename Map>
auto find_only(std::mutex& mutex, const Map& map, std::string_view name)
    -> const typename Map::mapped_type::element_type* {
  std::lock_guard<std::mutex> lock(mutex);
  const auto it = map.find(name);
  return it != map.end() ? it->second.get() : nullptr;
}

}  // namespace

Counter& MetricsRegistry::counter(std::string_view name) {
  return find_or_create<decltype(counters_), Counter>(mutex_, counters_, name);
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  return find_or_create<decltype(gauges_), Gauge>(mutex_, gauges_, name);
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  return find_or_create<decltype(histograms_), Histogram>(mutex_, histograms_,
                                                          name);
}

const Counter* MetricsRegistry::find_counter(std::string_view name) const {
  return find_only(mutex_, counters_, name);
}

const Gauge* MetricsRegistry::find_gauge(std::string_view name) const {
  return find_only(mutex_, gauges_, name);
}

const Histogram* MetricsRegistry::find_histogram(std::string_view name) const {
  return find_only(mutex_, histograms_, name);
}

JsonValue MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  JsonValue::Object counters;
  for (const auto& [name, counter] : counters_) {
    counters.emplace_back(name,
                          JsonValue(static_cast<double>(counter->value())));
  }
  JsonValue::Object gauges;
  for (const auto& [name, gauge] : gauges_) {
    gauges.emplace_back(name, JsonValue(gauge->value()));
  }
  JsonValue::Object histograms;
  for (const auto& [name, histogram] : histograms_) {
    const LatencyHistogram snap = histogram->snapshot();
    const RunningStats stats = histogram->stats();
    JsonValue entry;
    entry.set("count", JsonValue(static_cast<double>(snap.count())));
    entry.set("mean", JsonValue(stats.mean()));
    entry.set("p50", JsonValue(snap.p50()));
    entry.set("p99", JsonValue(snap.p99()));
    entry.set("max", JsonValue(stats.max()));
    entry.set("overflow",
              JsonValue(static_cast<double>(snap.overflow_count())));
    histograms.emplace_back(name, std::move(entry));
  }
  JsonValue out;
  out.set("counters", JsonValue(std::move(counters)));
  out.set("gauges", JsonValue(std::move(gauges)));
  out.set("histograms", JsonValue(std::move(histograms)));
  return out;
}

void MetricsRegistry::write_jsonl_line(std::ostream& out,
                                       const JsonValue& extra) const {
  JsonValue line;
  if (extra.is_object()) {
    for (const auto& [key, value] : extra.as_object()) {
      line.set(key, value);
    }
  }
  // Named variable on purpose: a `snapshot().as_object()` range expression
  // would dangle — C++20 does not lifetime-extend the intermediate
  // temporary.
  JsonValue snap = snapshot();
  for (auto& [key, value] : snap.as_object()) {
    line.set(key, std::move(value));
  }
  out << line.dump() << "\n";
}

JsonValue histogram_to_json(const LatencyHistogram& histogram) {
  JsonValue::Array buckets;
  const auto& counts = histogram.bucket_counts();
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    JsonValue::Array pair;
    pair.emplace_back(JsonValue(static_cast<double>(i)));
    pair.emplace_back(JsonValue(static_cast<double>(counts[i])));
    buckets.emplace_back(JsonValue(std::move(pair)));
  }
  JsonValue out;
  out.set("min", JsonValue(LatencyHistogram::kMinValue));
  out.set("max", JsonValue(LatencyHistogram::kMaxValue));
  out.set("num_buckets",
          JsonValue(static_cast<double>(LatencyHistogram::kBuckets)));
  out.set("count", JsonValue(static_cast<double>(histogram.count())));
  out.set("overflow",
          JsonValue(static_cast<double>(histogram.overflow_count())));
  out.set("buckets", JsonValue(std::move(buckets)));
  return out;
}

std::optional<LatencyHistogram> histogram_from_json(const JsonValue& value) {
  if (!value.is_object()) return std::nullopt;
  const JsonValue* min = value.find("min");
  const JsonValue* max = value.find("max");
  const JsonValue* num_buckets = value.find("num_buckets");
  const JsonValue* count = value.find("count");
  const JsonValue* overflow = value.find("overflow");
  const JsonValue* buckets = value.find("buckets");
  if (min == nullptr || !min->is_number() ||
      min->as_number() != LatencyHistogram::kMinValue ||
      max == nullptr || !max->is_number() ||
      max->as_number() != LatencyHistogram::kMaxValue ||
      num_buckets == nullptr || !num_buckets->is_number() ||
      num_buckets->as_number() !=
          static_cast<double>(LatencyHistogram::kBuckets) ||
      count == nullptr || !count->is_number() || overflow == nullptr ||
      !overflow->is_number() || buckets == nullptr || !buckets->is_array()) {
    return std::nullopt;
  }
  std::array<std::uint64_t, LatencyHistogram::kBuckets> counts{};
  std::uint64_t total = 0;
  for (const JsonValue& pair : buckets->as_array()) {
    if (!pair.is_array() || pair.as_array().size() != 2 ||
        !pair.as_array()[0].is_number() || !pair.as_array()[1].is_number()) {
      return std::nullopt;
    }
    const double index = pair.as_array()[0].as_number();
    const double bucket_count = pair.as_array()[1].as_number();
    if (index < 0 || index >= static_cast<double>(counts.size()) ||
        index != std::floor(index) || bucket_count < 0 ||
        bucket_count != std::floor(bucket_count)) {
      return std::nullopt;
    }
    counts[static_cast<std::size_t>(index)] =
        static_cast<std::uint64_t>(bucket_count);
    total += static_cast<std::uint64_t>(bucket_count);
  }
  if (total != static_cast<std::uint64_t>(count->as_number())) {
    return std::nullopt;
  }
  const auto overflow_count =
      static_cast<std::uint64_t>(overflow->as_number());
  if (overflow_count > counts[LatencyHistogram::kBuckets - 1]) {
    return std::nullopt;
  }
  return LatencyHistogram::from_buckets(counts, overflow_count);
}

}  // namespace gridsched::obs
