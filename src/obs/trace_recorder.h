// Chrome-trace-event span recording for the scheduling service.
//
// A TraceRecorder collects duration ('B'/'E') and instant ('i') events
// into PER-THREAD buffers — the hot path touches only the calling
// thread's own buffer, so concurrent shard races and member solves never
// contend a shared lock while recording — and flushes them into one
// central log at activation boundaries (GridSchedulingService calls
// flush() once per schedule_batch, after every task group has drained).
// write()/write_file() render the log as Chrome trace-event JSON, loadable
// in chrome://tracing or Perfetto: span nesting is per-tid, and the RAII
// TraceSpan guarantees begin/end pairs balance on the emitting thread.
//
// The disabled path is a null recorder pointer: every entry point takes
// `TraceRecorder*` and a nullptr makes spans and instants no-ops, so a
// service built without tracing pays one branch per site (the
// tracing-off-overhead verdict in bench/sharded_service holds this to
// within noise).
//
// Instrumented spans (docs/observability.md has the full schema):
//   cat "service"   name "activation"      one whole service activation
//   cat "shard"     name "shard_race"      one shard's portfolio race
//   cat "member"    name = member name     one member solve inside a race
//   cat "steal"     name "drain_steal"     the post-race stealing pass
//   cat "resize"    name "resize_scan"     the split/merge decision pass
//                   + instant "split"/"merge" per applied resize
//   cat "admission" name "admission"       the ingress triage pass
//                   + instant "admission.decisions" with the counts
#pragma once

#include <cstdint>
#include <initializer_list>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace gridsched::obs {

/// One key plus a pre-rendered JSON literal — the `args` payload of a
/// trace event. Rendering at the call site keeps TraceEvent trivially
/// copyable into buffers without knowing the value's type.
struct TraceArg {
  TraceArg(std::string_view key, double value);
  TraceArg(std::string_view key, std::int64_t value);
  TraceArg(std::string_view key, int value)
      : TraceArg(key, static_cast<std::int64_t>(value)) {}
  TraceArg(std::string_view key, std::uint64_t value);
  TraceArg(std::string_view key, std::string_view value);
  TraceArg(std::string_view key, const char* value)
      : TraceArg(key, std::string_view(value)) {}

  std::string key;
  std::string literal;  // rendered JSON (number, quoted string, or null)
};

/// One recorded event. `phase` follows the Chrome trace-event format:
/// 'B' begin, 'E' end, 'i' instant.
struct TraceEvent {
  std::string name;
  std::string cat;
  char phase = 'i';
  std::int64_t ts_us = 0;  // microseconds since recorder construction
  std::uint32_t tid = 0;   // recorder-local sequential thread id
  std::string args;        // rendered "{...}" object, or empty
};

class TraceRecorder {
 public:
  TraceRecorder();
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// Opens a span on the calling thread. Must be balanced by end() on the
  /// SAME thread — prefer the RAII TraceSpan, which cannot get it wrong.
  void begin(std::string_view name, std::string_view cat,
             std::initializer_list<TraceArg> args = {});
  /// Closes the innermost open span on the calling thread. The name is
  /// repeated so trace consumers can verify balance without replaying a
  /// stack.
  void end(std::string_view name);

  /// A point event (resize applied, admission counts, ...).
  void instant(std::string_view name, std::string_view cat,
               std::initializer_list<TraceArg> args = {});

  /// Drains every thread's buffer into the central log, preserving each
  /// thread's event order. Called at activation boundaries; safe to call
  /// concurrently with recording (each buffer hands off under its own
  /// lock), though a mid-span flush simply moves the 'B' now and its 'E'
  /// at the next flush.
  void flush();

  /// Events drained so far (recording threads may hold more until the
  /// next flush).
  [[nodiscard]] std::size_t event_count() const;

  /// Renders the drained log as Chrome trace-event JSON. Call flush()
  /// first to include the latest events.
  void write(std::ostream& out) const;
  /// Flushes, then writes to `path`; false when the file cannot be
  /// opened/written.
  bool write_file(const std::string& path);

 private:
  struct ThreadBuffer {
    // Appends take the OWN thread's lock, which is contended only while a
    // flush drains this buffer — in steady state the hot path pays one
    // uncontended lock, never a shared one.
    std::mutex mutex;
    std::vector<TraceEvent> events;
    std::uint32_t tid = 0;
  };

  ThreadBuffer& local_buffer();
  [[nodiscard]] std::int64_t now_us() const noexcept;
  void record(TraceEvent event);

  const std::uint64_t id_;  // process-unique, keys the thread-local cache
  std::int64_t epoch_us_ = 0;
  mutable std::mutex mutex_;  // guards buffers_ registration and log_
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
  std::vector<TraceEvent> log_;
  std::uint32_t next_tid_ = 1;
};

/// RAII span: begin at construction, end at destruction, on whichever
/// thread runs the scope. A null recorder makes both no-ops, so call
/// sites need no branching of their own.
class TraceSpan {
 public:
  TraceSpan(TraceRecorder* recorder, std::string_view name,
            std::string_view cat, std::initializer_list<TraceArg> args = {})
      : recorder_(recorder), name_(name) {
    if (recorder_ != nullptr) recorder_->begin(name, cat, args);
  }
  ~TraceSpan() {
    if (recorder_ != nullptr) recorder_->end(name_);
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  TraceRecorder* recorder_;
  std::string name_;
};

}  // namespace gridsched::obs
