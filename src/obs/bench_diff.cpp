#include "obs/bench_diff.h"

#include <cmath>
#include <limits>
#include <map>
#include <ostream>
#include <sstream>
#include <utility>

#include "benchutil/table.h"
#include "obs/metrics_registry.h"

namespace gridsched::obs {

namespace {

bool contains(std::string_view haystack, std::string_view needle) {
  return haystack.find(needle) != std::string_view::npos;
}

bool ends_with(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

bool is_ci_companion(std::string_view name) { return ends_with(name, "_ci"); }

/// One verdict's metrics, split into base metrics and their CI companions.
struct ParsedVerdict {
  bool ok = true;
  std::map<std::string, double> metrics;
  std::map<std::string, double> cis;  // keyed by the base metric's name
  std::map<std::string, LatencyHistogram> histograms;
};

struct ParsedBench {
  std::string bench;
  bool ok = true;
  // Insertion order preserved separately so the diff table follows the
  // bench's own verdict order, not lexicographic.
  std::vector<std::string> order;
  std::map<std::string, ParsedVerdict> verdicts;
};

/// Resolves a `_ci` companion to its base metric within `metrics`:
/// `makespan_ci` belongs to `makespan_pct`, `miss_ci` to `miss_pp`,
/// falling back to the bare stem.
std::string ci_base_key(std::string_view ci_name,
                        const std::map<std::string, double>& metrics) {
  const std::string stem(ci_name.substr(0, ci_name.size() - 3));
  for (const char* suffix : {"_pct", "_pp", ""}) {
    const std::string key = stem + suffix;
    if (metrics.count(key) != 0) return key;
  }
  return stem;
}

std::optional<ParsedBench> parse_bench(const JsonValue& root,
                                       std::string* error) {
  const auto fail = [&](const std::string& message) {
    if (error != nullptr) *error = message;
    return std::nullopt;
  };
  if (!root.is_object()) return fail("bench report is not a JSON object");
  const JsonValue* bench = root.find("bench");
  const JsonValue* ok = root.find("ok");
  const JsonValue* verdicts = root.find("verdicts");
  if (bench == nullptr || !bench->is_string() || ok == nullptr ||
      !ok->is_bool() || verdicts == nullptr || !verdicts->is_array()) {
    return fail("bench report missing bench/ok/verdicts members");
  }
  ParsedBench parsed;
  parsed.bench = bench->as_string();
  parsed.ok = ok->as_bool();
  for (const JsonValue& entry : verdicts->as_array()) {
    if (!entry.is_object()) return fail("verdict entry is not an object");
    const JsonValue* name = entry.find("name");
    const JsonValue* verdict_ok = entry.find("ok");
    const JsonValue* metrics = entry.find("metrics");
    if (name == nullptr || !name->is_string() || verdict_ok == nullptr ||
        !verdict_ok->is_bool() || metrics == nullptr ||
        !metrics->is_object()) {
      return fail("verdict entry missing name/ok/metrics members");
    }
    ParsedVerdict verdict;
    verdict.ok = verdict_ok->as_bool();
    for (const auto& [key, value] : metrics->as_object()) {
      // Null metrics (serialized non-finite values) are skipped: there is
      // nothing numeric to compare.
      if (!value.is_number()) continue;
      verdict.metrics[key] = value.as_number();
    }
    // Second pass so a companion resolves no matter the member order.
    for (auto it = verdict.metrics.begin(); it != verdict.metrics.end();) {
      if (is_ci_companion(it->first)) {
        verdict.cis[ci_base_key(it->first, verdict.metrics)] = it->second;
        it = verdict.metrics.erase(it);
      } else {
        ++it;
      }
    }
    if (const JsonValue* histograms = entry.find("histograms");
        histograms != nullptr && histograms->is_object()) {
      for (const auto& [key, value] : histograms->as_object()) {
        if (auto histogram = histogram_from_json(value)) {
          verdict.histograms.emplace(key, *std::move(histogram));
        }
      }
    }
    parsed.order.push_back(name->as_string());
    parsed.verdicts.emplace(name->as_string(), std::move(verdict));
  }
  return parsed;
}

double signed_delta_pct(double baseline, double candidate) {
  if (baseline == 0.0) {
    return candidate == 0.0 ? 0.0
                            : std::numeric_limits<double>::quiet_NaN();
  }
  return (candidate - baseline) / std::abs(baseline) * 100.0;
}

bool intervals_overlap(double a, double a_half, double b, double b_half) {
  return a - a_half <= b + b_half && b - b_half <= a + a_half;
}

}  // namespace

MetricClass classify_metric(std::string_view name,
                            const DiffOptions& options) {
  if (contains(name, "bound") || contains(name, "tolerance")) {
    return MetricClass::kInformational;
  }
  if (!options.gate_time &&
      (ends_with(name, "_ms") || ends_with(name, "_us") ||
       ends_with(name, "_ns") || contains(name, "overshoot"))) {
    return MetricClass::kInformational;
  }
  if (contains(name, "per_run")) return MetricClass::kInformational;
  return MetricClass::kGated;
}

bool metric_higher_is_better(std::string_view name) {
  for (const char* token : {"speedup", "throughput", "utilization",
                            "completed", "best_effort"}) {
    if (contains(name, token)) return true;
  }
  return false;
}

std::optional<DiffReport> diff_bench_reports(const JsonValue& baseline,
                                             const JsonValue& candidate,
                                             const DiffOptions& options,
                                             std::string* error) {
  const std::optional<ParsedBench> base = parse_bench(baseline, error);
  if (!base) {
    if (error != nullptr) *error = "baseline: " + *error;
    return std::nullopt;
  }
  const std::optional<ParsedBench> cand = parse_bench(candidate, error);
  if (!cand) {
    if (error != nullptr) *error = "candidate: " + *error;
    return std::nullopt;
  }

  DiffReport report;
  report.bench = cand->bench;
  if (base->bench != cand->bench) {
    report.notes.push_back("comparing different benches: baseline '" +
                           base->bench + "' vs candidate '" + cand->bench +
                           "'");
  }
  if (base->ok && !cand->ok) {
    report.notes.push_back(
        "REGRESSION: bench-level ok flipped true -> false");
    report.regression = true;
  }

  for (const std::string& name : base->order) {
    const ParsedVerdict& bv = base->verdicts.at(name);
    const auto cit = cand->verdicts.find(name);
    if (cit == cand->verdicts.end()) {
      report.notes.push_back("verdict '" + name +
                             "' present only in baseline (coverage lost?)");
      continue;
    }
    const ParsedVerdict& cv = cit->second;
    if (bv.ok && !cv.ok) {
      report.notes.push_back("REGRESSION: verdict '" + name +
                             "' ok flipped true -> false");
      report.regression = true;
    } else if (!bv.ok && cv.ok) {
      report.notes.push_back("verdict '" + name +
                             "' ok flipped false -> true (fixed)");
    }

    for (const auto& [metric, base_value] : bv.metrics) {
      const auto mit = cv.metrics.find(metric);
      if (mit == cv.metrics.end()) {
        report.notes.push_back("metric '" + name + "/" + metric +
                               "' present only in baseline");
        continue;
      }
      MetricDiff row;
      row.verdict = name;
      row.metric = metric;
      row.baseline = base_value;
      row.candidate = mit->second;
      row.delta_pct = signed_delta_pct(base_value, mit->second);
      row.klass = classify_metric(metric, options);
      row.higher_is_better = metric_higher_is_better(metric);
      if (const auto ci = bv.cis.find(metric); ci != bv.cis.end()) {
        row.baseline_ci = ci->second;
      }
      if (const auto ci = cv.cis.find(metric); ci != cv.cis.end()) {
        row.candidate_ci = ci->second;
      }
      if (row.baseline_ci && row.candidate_ci) {
        row.ci_overlap = intervals_overlap(row.baseline, *row.baseline_ci,
                                           row.candidate, *row.candidate_ci);
      }

      if (row.klass == MetricClass::kInformational) {
        row.status = "info";
      } else {
        const double bad_shift =
            row.higher_is_better ? row.baseline - row.candidate
                                 : row.candidate - row.baseline;
        // Percentage change in the bad direction; a zero baseline with a
        // nonzero candidate is an unquantifiable shift — gate on the
        // tolerance being finite, i.e. always beyond it.
        const double bad_pct =
            std::isnan(row.delta_pct)
                ? (bad_shift > 0.0 ? std::numeric_limits<double>::infinity()
                                   : 0.0)
                : (row.higher_is_better ? -row.delta_pct : row.delta_pct);
        const bool beyond_tolerance = bad_pct > options.tolerance_pct;
        const bool distinguishable = !row.ci_overlap.value_or(false);
        if (beyond_tolerance && distinguishable) {
          row.regression = true;
          row.status = "REGRESSION";
          report.regression = true;
        } else if (bad_pct < -options.tolerance_pct && distinguishable) {
          row.status = "improved";
        } else {
          row.status = "ok";
        }
      }
      report.rows.push_back(std::move(row));
    }
    for (const auto& [metric, value] : cv.metrics) {
      (void)value;
      if (bv.metrics.count(metric) == 0) {
        report.notes.push_back("metric '" + name + "/" + metric +
                               "' present only in candidate");
      }
    }

    // Histogram tails travel as full distributions; surface p99 movement
    // as a note (bucket-resolution values, never gated).
    for (const auto& [metric, base_hist] : bv.histograms) {
      const auto hit = cv.histograms.find(metric);
      if (hit == cv.histograms.end()) continue;
      const double base_p99 = base_hist.p99();
      const double cand_p99 = hit->second.p99();
      if (base_p99 == cand_p99) continue;
      std::ostringstream note;
      note << "histogram '" << name << "/" << metric << "' p99 "
           << TablePrinter::num(base_p99, 3) << " -> "
           << TablePrinter::num(cand_p99, 3);
      if (base_hist.percentile_overflows(99.0) ||
          hit->second.percentile_overflows(99.0)) {
        note << " (tail overflows range)";
      }
      report.notes.push_back(note.str());
    }
  }
  for (const std::string& name : cand->order) {
    if (base->verdicts.count(name) == 0) {
      report.notes.push_back("verdict '" + name +
                             "' present only in candidate (new coverage)");
    }
  }
  return report;
}

void print_diff_report(const DiffReport& report, std::ostream& out) {
  out << "bench_diff: " << report.bench << "\n";
  TablePrinter table(
      {"verdict", "metric", "baseline", "candidate", "delta %", "ci95",
       "status"});
  for (const MetricDiff& row : report.rows) {
    std::string ci = "-";
    if (row.ci_overlap.has_value()) {
      ci = *row.ci_overlap ? "overlap" : "disjoint";
    }
    table.add_row({row.verdict, row.metric, TablePrinter::num(row.baseline, 3),
                   TablePrinter::num(row.candidate, 3),
                   std::isnan(row.delta_pct)
                       ? std::string("n/a")
                       : TablePrinter::pct(row.delta_pct, 2),
                   ci, row.status});
  }
  table.print(out);
  for (const std::string& note : report.notes) {
    out << "note: " << note << "\n";
  }
  out << "bench_diff: " << (report.regression ? "REGRESSION" : "OK") << "\n";
}

}  // namespace gridsched::obs
