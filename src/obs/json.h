// Minimal JSON value: parse, inspect, serialize.
//
// The observability layer speaks JSON in three places — Chrome trace
// files, per-activation metric snapshots (JSONL), and the BENCH_*.json
// perf artifacts bench_diff compares across commits — and the tests must
// be able to load all three back. This is a deliberately small recursive-
// descent implementation (objects keep insertion order, numbers are
// doubles, \uXXXX decodes to UTF-8) rather than a third-party dependency:
// the container builds offline.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace gridsched::obs {

/// Escapes a string for embedding inside a JSON string literal (quotes,
/// backslashes, control characters). Shared by every writer in the repo so
/// a parameterized label can never corrupt an artifact.
[[nodiscard]] std::string json_escape(std::string_view text);

/// Renders a double as a JSON number literal. JSON has no NaN/Inf, so
/// non-finite values serialize as `null` — the convention the BENCH
/// artifacts established (a degenerate statistic must not corrupt the
/// file).
[[nodiscard]] std::string json_number(double value);

class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  using Array = std::vector<JsonValue>;
  /// Insertion-ordered members: the artifacts are stable, diffable files,
  /// so round-tripping must not reorder keys.
  using Object = std::vector<std::pair<std::string, JsonValue>>;

  JsonValue() = default;  // null
  explicit JsonValue(bool value) : type_(Type::kBool), bool_(value) {}
  explicit JsonValue(double value) : type_(Type::kNumber), number_(value) {}
  explicit JsonValue(std::string value)
      : type_(Type::kString), string_(std::move(value)) {}
  explicit JsonValue(Array value)
      : type_(Type::kArray), array_(std::move(value)) {}
  explicit JsonValue(Object value)
      : type_(Type::kObject), object_(std::move(value)) {}

  [[nodiscard]] Type type() const noexcept { return type_; }
  [[nodiscard]] bool is_null() const noexcept { return type_ == Type::kNull; }
  [[nodiscard]] bool is_bool() const noexcept { return type_ == Type::kBool; }
  [[nodiscard]] bool is_number() const noexcept {
    return type_ == Type::kNumber;
  }
  [[nodiscard]] bool is_string() const noexcept {
    return type_ == Type::kString;
  }
  [[nodiscard]] bool is_array() const noexcept {
    return type_ == Type::kArray;
  }
  [[nodiscard]] bool is_object() const noexcept {
    return type_ == Type::kObject;
  }

  [[nodiscard]] bool as_bool() const noexcept { return bool_; }
  [[nodiscard]] double as_number() const noexcept { return number_; }
  [[nodiscard]] const std::string& as_string() const noexcept {
    return string_;
  }
  [[nodiscard]] const Array& as_array() const noexcept { return array_; }
  [[nodiscard]] const Object& as_object() const noexcept { return object_; }
  [[nodiscard]] Array& as_array() noexcept { return array_; }
  [[nodiscard]] Object& as_object() noexcept { return object_; }

  /// Object member lookup (first match); nullptr when absent or not an
  /// object.
  [[nodiscard]] const JsonValue* find(std::string_view key) const noexcept;

  /// Appends a member (objects only; no duplicate-key check — callers own
  /// their schemas).
  void set(std::string key, JsonValue value);

  /// Parses one JSON document. Trailing non-whitespace is an error.
  /// Returns nullopt on malformed input; `error` (when given) receives a
  /// byte offset + message.
  [[nodiscard]] static std::optional<JsonValue> parse(
      std::string_view text, std::string* error = nullptr);

  /// Serializes. `indent` < 0 renders compact one-line JSON; >= 0 pretty-
  /// prints with that many spaces per level.
  [[nodiscard]] std::string dump(int indent = -1) const;

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  Array array_;
  Object object_;
};

}  // namespace gridsched::obs
