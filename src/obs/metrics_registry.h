// Named counters, gauges and histograms with a streamable JSONL exporter.
//
// The service, driver and portfolio used to each keep their own ad-hoc
// tallies (struct fields summed at report time); a MetricsRegistry gives
// them one namespace of named metrics instead. Callers register a metric
// once (mutex-guarded) and keep the returned handle — recording through a
// handle is an atomic add (Counter/Gauge) or a per-metric lock
// (Histogram wraps the fixed-bucket LatencyHistogram plus exact
// RunningStats), so concurrent shard activations never contend a registry-
// wide lock on the hot path.
//
// Snapshots are DETERMINISTIC: metrics export sorted by name, so two runs
// of a deterministic configuration produce byte-identical counter
// snapshots — the property the perf-trajectory tooling diffs across
// commits. write_jsonl_line() appends one compact JSON object per call
// (the service calls it once per activation), so a million-activation run
// streams instead of accumulating.
//
// Naming convention (docs/observability.md): dot-separated lowercase
// paths, `<subsystem>.<metric>` — e.g. `service.jobs_routed`,
// `service.activation_wall_ms` (histogram), `portfolio.member_wins`.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

#include "common/stats.h"
#include "obs/json.h"

namespace gridsched::obs {

/// Monotonic integer metric; add() is lock-free.
class Counter {
 public:
  void add(std::int64_t delta = 1) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Last-write-wins floating-point metric; set() is lock-free.
class Gauge {
 public:
  void set(double value) noexcept {
    value_.store(value, std::memory_order_relaxed);
  }
  [[nodiscard]] double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0.0};
};

/// Distribution metric: fixed-bucket percentiles (LatencyHistogram) plus
/// exact mean/min/max (RunningStats), guarded by a per-metric mutex.
class Histogram {
 public:
  void add(double value) noexcept {
    std::lock_guard<std::mutex> lock(mutex_);
    histogram_.add(value);
    stats_.add(value);
  }
  [[nodiscard]] LatencyHistogram snapshot() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return histogram_;
  }
  [[nodiscard]] RunningStats stats() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
  }

 private:
  mutable std::mutex mutex_;
  LatencyHistogram histogram_;
  RunningStats stats_;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Finds or creates the named metric. The returned reference is stable
  /// for the registry's lifetime — cache it, don't re-look-up per record.
  [[nodiscard]] Counter& counter(std::string_view name);
  [[nodiscard]] Gauge& gauge(std::string_view name);
  [[nodiscard]] Histogram& histogram(std::string_view name);

  /// Read-only lookups; nullptr when the metric was never registered.
  [[nodiscard]] const Counter* find_counter(std::string_view name) const;
  [[nodiscard]] const Gauge* find_gauge(std::string_view name) const;
  [[nodiscard]] const Histogram* find_histogram(std::string_view name) const;

  /// One snapshot of every metric, keys sorted by name:
  ///   {"counters": {...}, "gauges": {...},
  ///    "histograms": {name: {"count", "mean", "p50", "p99", "max",
  ///                          "overflow"}}}
  [[nodiscard]] JsonValue snapshot() const;

  /// Appends one compact line: the snapshot merged with `extra`'s members
  /// first (activation number, wall time, ...), newline-terminated — the
  /// JSONL stream docs/observability.md describes.
  void write_jsonl_line(std::ostream& out,
                        const JsonValue& extra = JsonValue()) const;

 private:
  mutable std::mutex mutex_;
  // Node-based maps: handles returned to callers must survive later
  // registrations. Sorted keys make every snapshot deterministic.
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

/// Full-fidelity histogram export: sparse [bucket, count] pairs plus the
/// range so a reader can reject a histogram recorded under different
/// constants. Round-trips through histogram_from_json bit-exactly.
[[nodiscard]] JsonValue histogram_to_json(const LatencyHistogram& histogram);

/// Rebuilds a histogram exported by histogram_to_json; nullopt when the
/// document is malformed or its range does not match this build's
/// LatencyHistogram constants.
[[nodiscard]] std::optional<LatencyHistogram> histogram_from_json(
    const JsonValue& value);

}  // namespace gridsched::obs
