// Perf-trajectory diffing of two BENCH_*.json artifacts.
//
// A bench run emits verdicts (named operating points) with scalar metrics
// and optional CI95 half-widths. diff_bench_reports() lines up baseline
// and candidate by verdict and metric name and classifies every pair:
//
//   - `<x>_ci` metrics are CI95 half-width companions of `<x>_pct`,
//     `<x>_pp` or `<x>` — they attach to their base metric instead of
//     being diffed on their own.
//   - Names containing "bound" or "tolerance" echo bench configuration;
//     informational only.
//   - Wall-clock metrics (`*_ms`, `*overshoot*`) depend on the recording
//     hardware, so a baseline committed from one machine cannot gate them
//     on another; informational unless DiffOptions::gate_time.
//   - Everything else gates. Direction comes from the name: speedup,
//     throughput, utilization, completed and best_effort count as
//     higher-is-better, the rest (makespan, flowtime, miss, tardiness,
//     cost, shed) as lower-is-better.
//
// A gated metric is a REGRESSION when it moves in the bad direction by
// more than tolerance_pct AND — when both sides carry a CI companion —
// the two CI95 intervals do not overlap (overlapping intervals mean the
// change is within seed noise). A verdict whose ok flag flips true→false
// is always a regression, metrics notwithstanding.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "obs/json.h"

namespace gridsched::obs {

struct DiffOptions {
  /// Bad-direction percent change a gated metric may drift before it can
  /// count as a regression.
  double tolerance_pct = 5.0;
  /// Gate wall-clock (`*_ms`, overshoot) metrics too — only meaningful
  /// when baseline and candidate ran on the same hardware.
  bool gate_time = false;
};

enum class MetricClass {
  kGated,          ///< Participates in the regression verdict.
  kInformational,  ///< Reported, never gates (time, bounds, counts).
};

struct MetricDiff {
  std::string verdict;  ///< Operating-point name, "" for bench-level rows.
  std::string metric;
  double baseline = 0.0;
  double candidate = 0.0;
  /// Signed percent change (candidate - baseline) / |baseline| * 100;
  /// NaN when the baseline is 0 and the candidate is not.
  double delta_pct = 0.0;
  MetricClass klass = MetricClass::kGated;
  bool higher_is_better = false;
  /// CI95 half-widths when a `_ci` companion exists on that side.
  std::optional<double> baseline_ci;
  std::optional<double> candidate_ci;
  /// Whether the two CI95 intervals overlap; unset without CIs.
  std::optional<bool> ci_overlap;
  bool regression = false;
  std::string status;  ///< "ok" / "improved" / "info" / "REGRESSION".
};

struct DiffReport {
  std::string bench;
  std::vector<MetricDiff> rows;
  /// Structural findings: ok-flag flips, verdicts or metrics present on
  /// only one side, histogram-tail movements.
  std::vector<std::string> notes;
  bool regression = false;
};

/// Classifies `name`; exposed for tests.
[[nodiscard]] MetricClass classify_metric(std::string_view name,
                                          const DiffOptions& options);
[[nodiscard]] bool metric_higher_is_better(std::string_view name);

/// Diffs two parsed BENCH_*.json documents. Returns std::nullopt (with a
/// message in *error) when either document does not have the bench report
/// shape.
[[nodiscard]] std::optional<DiffReport> diff_bench_reports(
    const JsonValue& baseline, const JsonValue& candidate,
    const DiffOptions& options, std::string* error = nullptr);

/// Renders the per-metric verdict table plus notes and the final verdict
/// line ("bench_diff: OK" / "bench_diff: REGRESSION").
void print_diff_report(const DiffReport& report, std::ostream& out);

}  // namespace gridsched::obs
