#include "obs/trace_recorder.h"

#include <atomic>
#include <chrono>
#include <fstream>
#include <ostream>
#include <utility>

#include "obs/json.h"

namespace gridsched::obs {

namespace {

std::string render_args(std::initializer_list<TraceArg> args) {
  if (args.size() == 0) return {};
  std::string rendered = "{";
  bool first = true;
  for (const TraceArg& arg : args) {
    if (!first) rendered += ", ";
    first = false;
    rendered += '"';
    rendered += json_escape(arg.key);
    rendered += "\": ";
    rendered += arg.literal;
  }
  rendered += '}';
  return rendered;
}

std::int64_t steady_now_us() noexcept {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::uint64_t next_recorder_id() noexcept {
  static std::atomic<std::uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

TraceArg::TraceArg(std::string_view key_in, double value)
    : key(key_in), literal(json_number(value)) {}

TraceArg::TraceArg(std::string_view key_in, std::int64_t value)
    : key(key_in), literal(std::to_string(value)) {}

TraceArg::TraceArg(std::string_view key_in, std::uint64_t value)
    : key(key_in), literal(std::to_string(value)) {}

TraceArg::TraceArg(std::string_view key_in, std::string_view value)
    : key(key_in), literal('"' + json_escape(value) + '"') {}

TraceRecorder::TraceRecorder()
    : id_(next_recorder_id()), epoch_us_(steady_now_us()) {}

std::int64_t TraceRecorder::now_us() const noexcept {
  return steady_now_us() - epoch_us_;
}

TraceRecorder::ThreadBuffer& TraceRecorder::local_buffer() {
  // Recorder ids are process-unique, so a stale entry (its recorder long
  // destroyed) can never be confused with this one even if the allocator
  // reuses the address.
  struct CacheEntry {
    std::uint64_t recorder_id;
    ThreadBuffer* buffer;
  };
  thread_local std::vector<CacheEntry> cache;
  for (const CacheEntry& entry : cache) {
    if (entry.recorder_id == id_) return *entry.buffer;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  buffers_.push_back(std::make_unique<ThreadBuffer>());
  ThreadBuffer& buffer = *buffers_.back();
  buffer.tid = next_tid_++;
  // Stale entries pile up only when a thread outlives many recorders
  // (test suites); cap the scan.
  if (cache.size() > 64) cache.clear();
  cache.push_back({id_, &buffer});
  return buffer;
}

void TraceRecorder::record(TraceEvent event) {
  ThreadBuffer& buffer = local_buffer();
  event.tid = buffer.tid;
  std::lock_guard<std::mutex> lock(buffer.mutex);
  buffer.events.push_back(std::move(event));
}

void TraceRecorder::begin(std::string_view name, std::string_view cat,
                          std::initializer_list<TraceArg> args) {
  TraceEvent event;
  event.name = std::string(name);
  event.cat = std::string(cat);
  event.phase = 'B';
  event.ts_us = now_us();
  event.args = render_args(args);
  record(std::move(event));
}

void TraceRecorder::end(std::string_view name) {
  TraceEvent event;
  event.name = std::string(name);
  event.phase = 'E';
  event.ts_us = now_us();
  record(std::move(event));
}

void TraceRecorder::instant(std::string_view name, std::string_view cat,
                            std::initializer_list<TraceArg> args) {
  TraceEvent event;
  event.name = std::string(name);
  event.cat = std::string(cat);
  event.phase = 'i';
  event.ts_us = now_us();
  event.args = render_args(args);
  record(std::move(event));
}

void TraceRecorder::flush() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const std::unique_ptr<ThreadBuffer>& buffer : buffers_) {
    std::vector<TraceEvent> drained;
    {
      std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
      drained.swap(buffer->events);
    }
    for (TraceEvent& event : drained) log_.push_back(std::move(event));
  }
}

std::size_t TraceRecorder::event_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return log_.size();
}

void TraceRecorder::write(std::ostream& out) const {
  std::lock_guard<std::mutex> lock(mutex_);
  out << "{\"traceEvents\": [\n";
  for (std::size_t i = 0; i < log_.size(); ++i) {
    const TraceEvent& event = log_[i];
    out << "  {\"name\": \"" << json_escape(event.name) << "\", \"ph\": \""
        << event.phase << "\", \"ts\": " << event.ts_us
        << ", \"pid\": 1, \"tid\": " << event.tid;
    if (!event.cat.empty()) {
      out << ", \"cat\": \"" << json_escape(event.cat) << "\"";
    }
    if (!event.args.empty()) out << ", \"args\": " << event.args;
    out << "}" << (i + 1 < log_.size() ? "," : "") << "\n";
  }
  out << "]}\n";
}

bool TraceRecorder::write_file(const std::string& path) {
  flush();
  std::ofstream out(path);
  if (!out) return false;
  write(out);
  return out.good();
}

}  // namespace gridsched::obs
